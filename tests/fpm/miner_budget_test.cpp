// Fault-injected budget breaches across every miner: cancellation, pattern
// caps and deadlines must yield clean partial results (each emitted pattern
// support-correct), never crashes or corrupted state.
#include <gtest/gtest.h>

#include "data/graph.hpp"
#include "fpm/apriori.hpp"
#include "fpm/closed_miner.hpp"
#include "fpm/eclat.hpp"
#include "fpm/fpgrowth.hpp"
#include "fpm/pathminer.hpp"
#include "fpm/prefixspan.hpp"

namespace dfp {
namespace {

// Deterministic pseudo-random membership: dense enough that min_sup = 1
// enumeration is combinatorially explosive for every miner.
TransactionDatabase Explosive(std::size_t num_txns = 30,
                              std::size_t num_items = 20) {
    std::vector<std::vector<ItemId>> txns(num_txns);
    std::vector<ClassLabel> labels(num_txns);
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    for (std::size_t t = 0; t < num_txns; ++t) {
        for (ItemId i = 0; i < num_items; ++i) {
            state = state * 6364136223846793005ull + 1442695040888963407ull;
            if ((state >> 33) & 1) txns[t].push_back(i);
        }
        if (txns[t].empty()) txns[t].push_back(static_cast<ItemId>(t % num_items));
        labels[t] = static_cast<ClassLabel>(t % 2);
    }
    return TransactionDatabase::FromTransactions(std::move(txns),
                                                 std::move(labels), num_items, 2);
}

void ExpectSupportsExact(const TransactionDatabase& db,
                         const std::vector<Pattern>& patterns) {
    for (const Pattern& p : patterns) {
        EXPECT_EQ(p.support, db.SupportOf(p.items));
    }
}

class MinerBudgetTest : public ::testing::TestWithParam<const char*> {
  protected:
    std::unique_ptr<Miner> MakeNamed() const {
        const std::string name = GetParam();
        if (name == "fpgrowth") return std::make_unique<FpGrowthMiner>();
        if (name == "apriori") return std::make_unique<AprioriMiner>();
        if (name == "eclat") return std::make_unique<EclatMiner>();
        if (name == "closed") return std::make_unique<ClosedMiner>();
        return nullptr;
    }
};

TEST_P(MinerBudgetTest, FaultInjectedCancellationYieldsPartialResult) {
    const auto db = Explosive();
    CancelToken token;
    token.CancelAfterChecks(100);
    MinerConfig config;
    config.min_sup_abs = 1;
    config.budget.cancel = &token;
    const auto outcome = MakeNamed()->MineBudgeted(db, config);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_EQ(outcome->breach, BudgetBreach::kCancelled);
    ExpectSupportsExact(db, outcome->patterns);
}

TEST_P(MinerBudgetTest, StrictMineReportsCancelledStatus) {
    const auto db = Explosive();
    CancelToken token;
    token.CancelAfterChecks(100);
    MinerConfig config;
    config.min_sup_abs = 1;
    config.budget.cancel = &token;
    const auto result = MakeNamed()->Mine(db, config);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_P(MinerBudgetTest, PatternCapTruncatesWithExactSupports) {
    const auto db = Explosive();
    MinerConfig config;
    config.min_sup_abs = 1;
    config.budget.max_patterns = 50;
    const auto outcome = MakeNamed()->MineBudgeted(db, config);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_EQ(outcome->breach, BudgetBreach::kPatternCap);
    EXPECT_LE(outcome->patterns.size(), 50u);
    ExpectSupportsExact(db, outcome->patterns);
}

TEST_P(MinerBudgetTest, ExpiredDeadlineStopsEnumeration) {
    const auto db = Explosive();
    MinerConfig config;
    config.min_sup_abs = 1;
    config.budget.time_budget_ms = 0.0;
    // Also cap patterns so a pathological clock can't let the test run away.
    config.budget.max_patterns = 200'000;
    const auto outcome = MakeNamed()->MineBudgeted(db, config);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_TRUE(outcome->truncated());
    EXPECT_EQ(outcome->breach, BudgetBreach::kDeadline);
    ExpectSupportsExact(db, outcome->patterns);
}

TEST_P(MinerBudgetTest, MemoryCapStopsEnumeration) {
    const auto db = Explosive();
    MinerConfig config;
    config.min_sup_abs = 1;
    config.budget.max_memory_bytes = 4096;
    config.budget.max_patterns = 200'000;
    const auto outcome = MakeNamed()->MineBudgeted(db, config);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_TRUE(outcome->truncated());
    ExpectSupportsExact(db, outcome->patterns);
}

INSTANTIATE_TEST_SUITE_P(AllMiners, MinerBudgetTest,
                         ::testing::Values("fpgrowth", "apriori", "eclat",
                                           "closed"));

TEST(PrefixSpanBudgetTest, CancellationYieldsPartialResult) {
    SequenceDatabase db({{0, 1, 2, 0, 1}, {0, 2, 1, 2}, {1, 0, 2, 1}, {2, 1, 0}},
                        {0, 0, 1, 1}, 3, 2);
    CancelToken token;
    token.CancelAfterChecks(2);
    PrefixSpanConfig config;
    config.min_sup_abs = 1;
    config.budget.cancel = &token;
    const auto outcome = MineSequencesBudgeted(db, config);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_EQ(outcome->breach, BudgetBreach::kCancelled);

    token.Reset();
    token.CancelAfterChecks(2);
    const auto strict = MineSequences(db, config);
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.status().code(), StatusCode::kCancelled);
}

TEST(PathMinerBudgetTest, CancellationYieldsPartialResult) {
    GraphSpec spec;
    spec.rows = 20;
    spec.seed = 3;
    const GraphDatabase db = GenerateGraphs(spec);
    CancelToken token;
    token.CancelAfterChecks(2);
    PathMinerConfig config;
    config.min_sup_abs = 1;
    config.budget.cancel = &token;
    const auto outcome = MinePathsBudgeted(db, config);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_EQ(outcome->breach, BudgetBreach::kCancelled);

    token.Reset();
    token.CancelAfterChecks(2);
    const auto strict = MinePaths(db, config);
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace dfp
