#include "fpm/pathminer.hpp"

#include <gtest/gtest.h>

#include <map>

namespace dfp {
namespace {

// Triangle with labels: v0(0) -a- v1(1) -b- v2(2) -a- v0, plus pendant
// v3(1) attached to v2 with label a.   (a = edge label 0, b = 1)
LabeledGraph Triangle() {
    LabeledGraph g({0, 1, 2, 1});
    EXPECT_TRUE(g.AddEdge(0, 1, 0).ok());
    EXPECT_TRUE(g.AddEdge(1, 2, 1).ok());
    EXPECT_TRUE(g.AddEdge(2, 0, 0).ok());
    EXPECT_TRUE(g.AddEdge(2, 3, 0).ok());
    return g;
}

PathPattern MakePath(std::vector<VertexLabel> vs, std::vector<EdgeLabel> es) {
    PathPattern p;
    p.vertices = std::move(vs);
    p.edges = std::move(es);
    return p;
}

TEST(ContainsPathTest, SingleVertex) {
    const auto g = Triangle();
    EXPECT_TRUE(ContainsPath(g, MakePath({0}, {})));
    EXPECT_TRUE(ContainsPath(g, MakePath({2}, {})));
    EXPECT_FALSE(ContainsPath(g, MakePath({5}, {})));
}

TEST(ContainsPathTest, EdgesAndLabels) {
    const auto g = Triangle();
    EXPECT_TRUE(ContainsPath(g, MakePath({0, 1}, {0})));   // v0 -a- v1
    EXPECT_TRUE(ContainsPath(g, MakePath({1, 2}, {1})));   // v1 -b- v2
    EXPECT_FALSE(ContainsPath(g, MakePath({0, 1}, {1})));  // wrong edge label
    EXPECT_FALSE(ContainsPath(g, MakePath({0, 2}, {1})));  // wrong pair
}

TEST(ContainsPathTest, SimplePathConstraint) {
    // v1 -b- v2 -a- v1: needs TWO distinct label-1 vertices adjacent to v2 —
    // present thanks to the pendant (v1 and v3).
    const auto g = Triangle();
    EXPECT_TRUE(ContainsPath(g, MakePath({1, 2, 1}, {1, 0})));
    // A 4-vertex path revisiting would be required here: label sequence
    // 1-2-1-2 needs two label-2 vertices; only one exists.
    EXPECT_FALSE(ContainsPath(g, MakePath({1, 2, 1, 2}, {1, 0, 1})));
}

TEST(PathPatternTest, CanonicalizationPicksSmallerOrientation) {
    auto p = MakePath({2, 0, 1}, {1, 0});
    p.Canonicalize();
    EXPECT_EQ(p.vertices, (std::vector<VertexLabel>{1, 0, 2}));
    EXPECT_EQ(p.edges, (std::vector<EdgeLabel>{0, 1}));
    // Already-canonical stays put.
    auto q = MakePath({0, 1}, {0});
    q.Canonicalize();
    EXPECT_EQ(q.vertices, (std::vector<VertexLabel>{0, 1}));
}

TEST(PathMinerTest, HandCheckedSupports) {
    std::vector<LabeledGraph> graphs = {Triangle(), Triangle()};
    // Second graph: break the pendant by relabeling — rebuild a simpler one.
    LabeledGraph g2({0, 1});
    ASSERT_TRUE(g2.AddEdge(0, 1, 0).ok());
    graphs[1] = g2;
    GraphDatabase db(std::move(graphs), {0, 1}, 3, 2, 2);

    PathMinerConfig config;
    config.min_sup_abs = 1;
    config.max_edges = 2;
    auto mined = MinePaths(db, config);
    ASSERT_TRUE(mined.ok()) << mined.status();
    std::map<PathPattern, std::size_t> support;
    for (const auto& p : *mined) support[p] = p.support;

    EXPECT_EQ(support.at(MakePath({0}, {})), 2u);
    EXPECT_EQ(support.at(MakePath({2}, {})), 1u);
    EXPECT_EQ(support.at(MakePath({0, 1}, {0})), 2u);  // in both graphs
    auto bc = MakePath({2, 1}, {1});
    bc.Canonicalize();
    EXPECT_EQ(support.at(bc), 1u);
}

TEST(PathMinerTest, SupportsMatchBruteForceContainment) {
    GraphSpec spec;
    spec.rows = 40;
    spec.seed = 3;
    const auto db = GenerateGraphs(spec);
    PathMinerConfig config;
    config.min_sup_rel = 0.3;
    config.max_edges = 3;
    auto mined = MinePaths(db, config);
    ASSERT_TRUE(mined.ok());
    ASSERT_FALSE(mined->empty());
    for (const auto& p : *mined) {
        std::size_t support = 0;
        for (std::size_t g = 0; g < db.size(); ++g) {
            support += ContainsPath(db.graph(g), p);
        }
        EXPECT_EQ(p.support, support) << p.ToString();
    }
}

TEST(PathMinerTest, CanonicalOutputHasNoDuplicates) {
    GraphSpec spec;
    spec.rows = 30;
    spec.seed = 4;
    const auto db = GenerateGraphs(spec);
    PathMinerConfig config;
    config.min_sup_rel = 0.25;
    config.max_edges = 3;
    auto mined = MinePaths(db, config);
    ASSERT_TRUE(mined.ok());
    std::set<PathPattern> unique;
    for (auto p : *mined) {
        PathPattern canon = p;
        canon.Canonicalize();
        EXPECT_EQ(canon, p) << "non-canonical pattern emitted: " << p.ToString();
        EXPECT_TRUE(unique.insert(p).second) << "duplicate: " << p.ToString();
    }
}

TEST(PathMinerTest, BudgetSurfaces) {
    GraphSpec spec;
    spec.rows = 30;
    spec.seed = 5;
    const auto db = GenerateGraphs(spec);
    PathMinerConfig config;
    config.min_sup_abs = 1;
    config.max_edges = 3;
    config.max_patterns = 5;
    const auto mined = MinePaths(db, config);
    ASSERT_FALSE(mined.ok());
    EXPECT_EQ(mined.status().code(), StatusCode::kResourceExhausted);
}

TEST(GraphDbTest, GeneratorShapeAndDeterminism) {
    GraphSpec spec;
    spec.rows = 50;
    spec.seed = 6;
    const auto a = GenerateGraphs(spec);
    const auto b = GenerateGraphs(spec);
    ASSERT_EQ(a.size(), 50u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.label(i), b.label(i));
        EXPECT_EQ(a.graph(i).num_vertices(), b.graph(i).num_vertices());
        EXPECT_EQ(a.graph(i).num_edges(), b.graph(i).num_edges());
        EXPECT_GE(a.graph(i).num_vertices(), spec.vertices_min);
        EXPECT_LE(a.graph(i).num_vertices(), spec.vertices_max);
    }
    const auto c0 = a.FilterByClass(0);
    EXPECT_LT(c0.size(), a.size());
}

TEST(GraphTest, AddEdgeValidation) {
    LabeledGraph g({0, 1});
    EXPECT_FALSE(g.AddEdge(0, 5, 0).ok());
    EXPECT_FALSE(g.AddEdge(1, 1, 0).ok());  // self-loop
    EXPECT_TRUE(g.AddEdge(0, 1, 2).ok());
    EXPECT_EQ(g.num_edges(), 1u);
    EXPECT_EQ(g.neighbours(0).size(), 1u);
    EXPECT_EQ(g.neighbours(1)[0].to, 0u);
}

}  // namespace
}  // namespace dfp
