#include "fpm/fptree.hpp"

#include <gtest/gtest.h>

namespace dfp {
namespace {

std::vector<FpTree::WeightedTransaction> ToyTransactions() {
    // Classic FP-growth example shape.
    return {
        {{0, 1, 2}, 1}, {{0, 1}, 1}, {{0, 2}, 1}, {{1, 2}, 1}, {{0, 1, 2, 3}, 1},
    };
}

TEST(FpTreeTest, HeaderCountsMatchSupports) {
    const FpTree tree = FpTree::Build(ToyTransactions(), 2);
    ASSERT_EQ(tree.header().size(), 3u);  // item 3 (support 1) filtered
    for (const auto& entry : tree.header()) {
        EXPECT_EQ(entry.count, 4u);  // items 0,1,2 each appear in 4 transactions
    }
}

TEST(FpTreeTest, HeaderSortedByDescendingSupport) {
    const std::vector<FpTree::WeightedTransaction> txns = {
        {{0, 1}, 1}, {{0, 1}, 1}, {{0, 2}, 1}, {{0}, 1}};
    const FpTree tree = FpTree::Build(txns, 1);
    ASSERT_EQ(tree.header().size(), 3u);
    EXPECT_EQ(tree.header()[0].item, 0u);  // support 4
    EXPECT_EQ(tree.header()[1].item, 1u);  // support 2
    EXPECT_EQ(tree.header()[2].item, 2u);  // support 1
}

TEST(FpTreeTest, EmptyWhenNothingFrequent) {
    const std::vector<FpTree::WeightedTransaction> txns = {{{0}, 1}, {{1}, 1}};
    const FpTree tree = FpTree::Build(txns, 2);
    EXPECT_TRUE(tree.empty());
}

TEST(FpTreeTest, PrefixSharingCompresses) {
    // Three identical transactions must share one path: root + 2 nodes.
    const std::vector<FpTree::WeightedTransaction> txns = {
        {{0, 1}, 1}, {{0, 1}, 1}, {{0, 1}, 1}};
    const FpTree tree = FpTree::Build(txns, 1);
    EXPECT_EQ(tree.num_nodes(), 3u);  // root, 0, 1
    EXPECT_TRUE(tree.IsSinglePath());
}

TEST(FpTreeTest, WeightedTransactionsCount) {
    const std::vector<FpTree::WeightedTransaction> txns = {{{0, 1}, 5}, {{0}, 2}};
    const FpTree tree = FpTree::Build(txns, 1);
    ASSERT_FALSE(tree.empty());
    EXPECT_EQ(tree.header()[0].item, 0u);
    EXPECT_EQ(tree.header()[0].count, 7u);
    EXPECT_EQ(tree.header()[1].count, 5u);
}

TEST(FpTreeTest, ConditionalBaseOfLeastFrequentItem) {
    const FpTree tree = FpTree::Build(ToyTransactions(), 2);
    // Least frequent header entry is last. Its conditional base consists of the
    // prefix paths above every occurrence.
    const std::size_t last = tree.header().size() - 1;
    const auto base = tree.ConditionalBase(last);
    std::size_t total = 0;
    for (const auto& wt : base) {
        total += wt.count;
        EXPECT_FALSE(wt.items.empty());
    }
    // The last item has support 4 but one occurrence may sit directly under the
    // root (empty prefix excluded), so the base mass is ≤ the support.
    EXPECT_LE(total, 4u);
    EXPECT_GE(total, 2u);
}

TEST(FpTreeTest, IsSinglePathFalseOnBranching) {
    const FpTree tree = FpTree::Build(ToyTransactions(), 2);
    EXPECT_FALSE(tree.IsSinglePath());
}

}  // namespace
}  // namespace dfp
