#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "fpm/apriori.hpp"
#include "fpm/closed_miner.hpp"
#include "fpm/eclat.hpp"
#include "fpm/fpgrowth.hpp"

namespace dfp {
namespace {

// T0{0,1,2} T1{0,1} T2{0,2} T3{1,2} T4{0,1,2,3}; labels unused by miners.
TransactionDatabase Toy() {
    return TransactionDatabase::FromTransactions(
        {{0, 1, 2}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2, 3}}, {0, 0, 0, 1, 1}, 4, 2);
}

// Expected frequent itemsets at min_sup=2 with their supports.
std::map<Itemset, std::size_t> ExpectedFrequentAt2() {
    return {
        {{0}, 4}, {{1}, 4}, {{2}, 4}, {{0, 1}, 3},
        {{0, 2}, 3}, {{1, 2}, 3}, {{0, 1, 2}, 2},
    };
}

std::map<Itemset, std::size_t> ToMap(const std::vector<Pattern>& patterns) {
    std::map<Itemset, std::size_t> m;
    for (const auto& p : patterns) m[p.items] = p.support;
    return m;
}

class AllMinersTest : public ::testing::TestWithParam<const char*> {
  protected:
    std::unique_ptr<Miner> MakeNamed() const {
        const std::string name = GetParam();
        if (name == "fpgrowth") return std::make_unique<FpGrowthMiner>();
        if (name == "apriori") return std::make_unique<AprioriMiner>();
        if (name == "eclat") return std::make_unique<EclatMiner>();
        return nullptr;
    }
};

TEST_P(AllMinersTest, HandCheckedFrequentSets) {
    const auto db = Toy();
    MinerConfig config;
    config.min_sup_abs = 2;
    auto result = MakeNamed()->Mine(db, config);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(ToMap(*result), ExpectedFrequentAt2());
}

TEST_P(AllMinersTest, RelativeMinSup) {
    const auto db = Toy();
    MinerConfig config;
    config.min_sup_rel = 0.4;  // ceil(0.4*5) = 2
    auto result = MakeNamed()->Mine(db, config);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(ToMap(*result), ExpectedFrequentAt2());
}

TEST_P(AllMinersTest, MaxPatternLength) {
    const auto db = Toy();
    MinerConfig config;
    config.min_sup_abs = 2;
    config.max_pattern_len = 2;
    auto result = MakeNamed()->Mine(db, config);
    ASSERT_TRUE(result.ok());
    for (const auto& p : *result) EXPECT_LE(p.length(), 2u);
    EXPECT_EQ(result->size(), 6u);  // expected set minus {0,1,2}
}

TEST_P(AllMinersTest, ExcludeSingletons) {
    const auto db = Toy();
    MinerConfig config;
    config.min_sup_abs = 2;
    config.include_singletons = false;
    auto result = MakeNamed()->Mine(db, config);
    ASSERT_TRUE(result.ok());
    for (const auto& p : *result) EXPECT_GE(p.length(), 2u);
    EXPECT_EQ(result->size(), 4u);
}

TEST_P(AllMinersTest, BudgetExhaustionReported) {
    const auto db = Toy();
    MinerConfig config;
    config.min_sup_abs = 1;
    config.max_patterns = 3;
    const auto result = MakeNamed()->Mine(db, config);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_P(AllMinersTest, HighMinSupYieldsNothing) {
    const auto db = Toy();
    MinerConfig config;
    config.min_sup_abs = 6;
    auto result = MakeNamed()->Mine(db, config);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->empty());
}

INSTANTIATE_TEST_SUITE_P(Miners, AllMinersTest,
                         ::testing::Values("fpgrowth", "apriori", "eclat"));

TEST(ClosedMinerTest, HandCheckedClosedSets) {
    // T0{0,3} T1{0,1,3} T2{0,2,3} T3{1,2}: 0 and 3 always co-occur, so neither
    // {0} nor {3} is closed; their closure {0,3} is.
    const auto db = TransactionDatabase::FromTransactions(
        {{0, 3}, {0, 1, 3}, {0, 2, 3}, {1, 2}}, {0, 0, 1, 1}, 4, 2);
    MinerConfig config;
    config.min_sup_abs = 2;
    ClosedMiner miner;
    auto result = miner.Mine(db, config);
    ASSERT_TRUE(result.ok()) << result.status();
    const auto got = ToMap(*result);
    const std::map<Itemset, std::size_t> expected = {
        {{0, 3}, 3}, {{1}, 2}, {{2}, 2},
    };
    EXPECT_EQ(got, expected);
}

TEST(ClosedMinerTest, ClosedSubsetOfFrequent) {
    const auto db = Toy();
    MinerConfig config;
    config.min_sup_abs = 2;
    ClosedMiner closed;
    FpGrowthMiner all;
    auto closed_result = closed.Mine(db, config);
    auto all_result = all.Mine(db, config);
    ASSERT_TRUE(closed_result.ok());
    ASSERT_TRUE(all_result.ok());
    const auto all_map = ToMap(*all_result);
    for (const auto& p : *closed_result) {
        const auto it = all_map.find(p.items);
        ASSERT_NE(it, all_map.end());
        EXPECT_EQ(it->second, p.support);
    }
    EXPECT_LE(closed_result->size(), all_result->size());
}

TEST(ClosedMinerTest, FullSupportClosureEmitted) {
    // Item 0 appears in all transactions → closure of the empty set is {0}.
    const auto db = TransactionDatabase::FromTransactions(
        {{0, 1}, {0, 2}, {0}}, {0, 0, 1}, 3, 2);
    MinerConfig config;
    config.min_sup_abs = 1;
    ClosedMiner miner;
    auto result = miner.Mine(db, config);
    ASSERT_TRUE(result.ok());
    const auto got = ToMap(*result);
    ASSERT_TRUE(got.count({0}));
    EXPECT_EQ(got.at({0}), 3u);
}

TEST(ClosedMinerTest, MatchesBruteForceOnToy) {
    const auto db = Toy();
    MinerConfig config;
    config.min_sup_abs = 2;
    ClosedMiner miner;
    auto fast = miner.Mine(db, config);
    auto slow = BruteForceClosed(db, config);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(ToMap(*fast), ToMap(*slow));
}

TEST(MinerConfigTest, ResolveMinSup) {
    MinerConfig config;
    config.min_sup_abs = 5;
    EXPECT_EQ(ResolveMinSup(config, 100), 5u);
    config.min_sup_rel = 0.1;
    EXPECT_EQ(ResolveMinSup(config, 100), 10u);
    config.min_sup_rel = 0.101;
    EXPECT_EQ(ResolveMinSup(config, 100), 11u);  // ceil
    config.min_sup_rel = 0.0;
    EXPECT_EQ(ResolveMinSup(config, 100), 1u);  // clamped to >= 1
}

TEST(PatternTest, MajorityClassAndConfidence) {
    Pattern p;
    p.support = 10;
    p.class_counts = {3, 7};
    EXPECT_EQ(p.MajorityClass(), 1u);
    EXPECT_DOUBLE_EQ(p.Confidence(), 0.7);
}

TEST(PatternTest, AttachMetadata) {
    const auto db = Toy();
    std::vector<Pattern> patterns(1);
    patterns[0].items = {0, 1};
    AttachMetadata(db, &patterns);
    EXPECT_EQ(patterns[0].support, 3u);
    EXPECT_EQ(patterns[0].cover.ToIndices(),
              (std::vector<std::uint32_t>{0, 1, 4}));
    EXPECT_EQ(patterns[0].class_counts, (std::vector<std::size_t>{2, 1}));
}

TEST(ItemsetTest, SubsetAndToString) {
    EXPECT_TRUE(IsSubsetOf({1, 3}, {0, 1, 2, 3}));
    EXPECT_FALSE(IsSubsetOf({1, 5}, {0, 1, 2, 3}));
    EXPECT_TRUE(IsSubsetOf({}, {0}));
    EXPECT_EQ(ItemsetToString({1, 3}), "{1, 3}");
}

}  // namespace
}  // namespace dfp
