// Property tests: on random databases, all frequent-itemset miners agree with
// each other, every emitted pattern satisfies min_sup with a correct support
// value, and the closed miner matches the brute-force closure filter.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "fpm/apriori.hpp"
#include "fpm/closed_miner.hpp"
#include "fpm/eclat.hpp"
#include "fpm/fpgrowth.hpp"

namespace dfp {
namespace {

TransactionDatabase RandomDb(std::uint64_t seed, std::size_t n, std::size_t items,
                             double density) {
    Rng rng(seed);
    std::vector<std::vector<ItemId>> txns(n);
    std::vector<ClassLabel> labels(n);
    for (std::size_t t = 0; t < n; ++t) {
        for (ItemId i = 0; i < items; ++i) {
            if (rng.Bernoulli(density)) txns[t].push_back(i);
        }
        labels[t] = static_cast<ClassLabel>(rng.UniformInt(std::uint64_t{2}));
    }
    return TransactionDatabase::FromTransactions(std::move(txns), std::move(labels),
                                                 items, 2);
}

std::map<Itemset, std::size_t> ToMap(const std::vector<Pattern>& patterns) {
    std::map<Itemset, std::size_t> m;
    for (const auto& p : patterns) m[p.items] = p.support;
    return m;
}

struct PropertyCase {
    std::uint64_t seed;
    std::size_t n;
    std::size_t items;
    double density;
    double min_sup_rel;
};

class MinerAgreementTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(MinerAgreementTest, AllMinersProduceIdenticalOutput) {
    const auto& param = GetParam();
    const auto db = RandomDb(param.seed, param.n, param.items, param.density);
    MinerConfig config;
    config.min_sup_rel = param.min_sup_rel;

    auto fp = FpGrowthMiner().Mine(db, config);
    auto ap = AprioriMiner().Mine(db, config);
    auto ec = EclatMiner().Mine(db, config);
    ASSERT_TRUE(fp.ok()) << fp.status();
    ASSERT_TRUE(ap.ok()) << ap.status();
    ASSERT_TRUE(ec.ok()) << ec.status();

    const auto fp_map = ToMap(*fp);
    EXPECT_EQ(fp_map, ToMap(*ap)) << "fpgrowth vs apriori diverge";
    EXPECT_EQ(fp_map, ToMap(*ec)) << "fpgrowth vs eclat diverge";
}

TEST_P(MinerAgreementTest, SupportsAreCorrectAndAboveThreshold) {
    const auto& param = GetParam();
    const auto db = RandomDb(param.seed, param.n, param.items, param.density);
    MinerConfig config;
    config.min_sup_rel = param.min_sup_rel;
    const std::size_t min_sup = ResolveMinSup(config, db.num_transactions());

    auto mined = FpGrowthMiner().Mine(db, config);
    ASSERT_TRUE(mined.ok());
    for (const auto& p : *mined) {
        EXPECT_GE(p.support, min_sup);
        EXPECT_EQ(p.support, db.SupportOf(p.items))
            << "support mismatch for " << ItemsetToString(p.items);
    }
}

TEST_P(MinerAgreementTest, SupportIsAntiMonotone) {
    const auto& param = GetParam();
    const auto db = RandomDb(param.seed, param.n, param.items, param.density);
    MinerConfig config;
    config.min_sup_rel = param.min_sup_rel;
    auto mined = FpGrowthMiner().Mine(db, config);
    ASSERT_TRUE(mined.ok());
    const auto by_items = ToMap(*mined);
    for (const auto& [items, support] : by_items) {
        if (items.size() < 2) continue;
        // Every (k-1)-subset is also frequent with support >= this one.
        for (std::size_t drop = 0; drop < items.size(); ++drop) {
            Itemset sub;
            for (std::size_t i = 0; i < items.size(); ++i) {
                if (i != drop) sub.push_back(items[i]);
            }
            const auto it = by_items.find(sub);
            ASSERT_NE(it, by_items.end())
                << "missing subset " << ItemsetToString(sub);
            EXPECT_GE(it->second, support);
        }
    }
}

TEST_P(MinerAgreementTest, ClosedMinerMatchesBruteForce) {
    const auto& param = GetParam();
    const auto db = RandomDb(param.seed, param.n, param.items, param.density);
    MinerConfig config;
    config.min_sup_rel = param.min_sup_rel;
    auto fast = ClosedMiner().Mine(db, config);
    auto slow = BruteForceClosed(db, config);
    ASSERT_TRUE(fast.ok()) << fast.status();
    ASSERT_TRUE(slow.ok()) << slow.status();
    EXPECT_EQ(ToMap(*fast), ToMap(*slow));
}

TEST_P(MinerAgreementTest, ClosedPatternsHaveUniqueCovers) {
    const auto& param = GetParam();
    const auto db = RandomDb(param.seed, param.n, param.items, param.density);
    MinerConfig config;
    config.min_sup_rel = param.min_sup_rel;
    auto mined = ClosedMiner().Mine(db, config);
    ASSERT_TRUE(mined.ok());
    std::vector<Pattern> patterns = std::move(*mined);
    AttachMetadata(db, &patterns);
    // Two distinct closed itemsets can never share a cover set.
    std::map<std::string, Itemset> by_cover;
    for (const auto& p : patterns) {
        const auto [it, inserted] = by_cover.emplace(p.cover.ToString(), p.items);
        EXPECT_TRUE(inserted) << "duplicate cover for " << ItemsetToString(p.items)
                              << " and " << ItemsetToString(it->second);
    }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDatabases, MinerAgreementTest,
    ::testing::Values(PropertyCase{1, 40, 8, 0.30, 0.10},
                      PropertyCase{2, 60, 10, 0.25, 0.10},
                      PropertyCase{3, 80, 12, 0.20, 0.08},
                      PropertyCase{4, 50, 9, 0.40, 0.15},
                      PropertyCase{5, 100, 10, 0.15, 0.05},
                      PropertyCase{6, 30, 14, 0.35, 0.20},
                      PropertyCase{7, 120, 8, 0.50, 0.25},
                      PropertyCase{8, 70, 11, 0.30, 0.12}));

}  // namespace
}  // namespace dfp
