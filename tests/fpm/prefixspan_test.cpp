#include "fpm/prefixspan.hpp"

#include <gtest/gtest.h>

#include <map>

namespace dfp {
namespace {

SequenceDatabase Toy() {
    // 4 sequences over alphabet {0,1,2}.
    return SequenceDatabase({{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {2, 2, 2}},
                            {0, 0, 1, 1}, 3, 2);
}

std::map<Sequence, std::size_t> ToMap(const std::vector<SequentialPattern>& ps) {
    std::map<Sequence, std::size_t> m;
    for (const auto& p : ps) m[p.items] = p.support;
    return m;
}

TEST(SubsequenceTest, Containment) {
    EXPECT_TRUE(IsSubsequence({0, 2}, {0, 1, 2}));
    EXPECT_TRUE(IsSubsequence({}, {0, 1}));
    EXPECT_TRUE(IsSubsequence({1, 1}, {1, 0, 1}));
    EXPECT_FALSE(IsSubsequence({2, 0}, {0, 1, 2}));  // order matters
    EXPECT_FALSE(IsSubsequence({1, 1}, {1, 0, 2}));  // multiplicity matters
    EXPECT_FALSE(IsSubsequence({0}, {}));
}

TEST(PrefixSpanTest, HandCheckedSupports) {
    PrefixSpanConfig config;
    config.min_sup_abs = 2;
    config.max_pattern_len = 3;
    auto mined = MineSequences(Toy(), config);
    ASSERT_TRUE(mined.ok()) << mined.status();
    const auto m = ToMap(*mined);
    // Singletons.
    EXPECT_EQ(m.at({0}), 3u);
    EXPECT_EQ(m.at({1}), 3u);
    EXPECT_EQ(m.at({2}), 4u);
    // <0,2> occurs in sequences 0, 1 and 2.
    EXPECT_EQ(m.at({0, 2}), 3u);
    // <0,1> occurs in sequences 0 and 1 (non-contiguous in {0,2,1}).
    EXPECT_EQ(m.at({0, 1}), 2u);
    // <1,0> occurs in sequence 2 only: below min_sup, absent.
    EXPECT_EQ(m.count({1, 0}), 0u);
    // <2,2> occurs in sequence 3 only: absent.
    EXPECT_EQ(m.count({2, 2}), 0u);
}

TEST(PrefixSpanTest, SupportsMatchBruteForceContainment) {
    PrefixSpanConfig config;
    config.min_sup_abs = 1;
    config.max_pattern_len = 3;
    const auto db = Toy();
    auto mined = MineSequences(db, config);
    ASSERT_TRUE(mined.ok());
    for (const auto& p : *mined) {
        std::size_t support = 0;
        for (std::size_t i = 0; i < db.size(); ++i) {
            support += IsSubsequence(p.items, db.sequence(i));
        }
        EXPECT_EQ(p.support, support) << "pattern size " << p.items.size();
    }
}

TEST(PrefixSpanTest, RepeatedItemsHandled) {
    // <2,2,2> has support 1 (only the last sequence).
    PrefixSpanConfig config;
    config.min_sup_abs = 1;
    auto mined = MineSequences(Toy(), config);
    ASSERT_TRUE(mined.ok());
    const auto m = ToMap(*mined);
    EXPECT_EQ(m.at({2, 2, 2}), 1u);
    EXPECT_EQ(m.at({2, 2}), 1u);
}

TEST(PrefixSpanTest, MaxLenAndBudget) {
    PrefixSpanConfig config;
    config.min_sup_abs = 1;
    config.max_pattern_len = 2;
    auto mined = MineSequences(Toy(), config);
    ASSERT_TRUE(mined.ok());
    for (const auto& p : *mined) EXPECT_LE(p.items.size(), 2u);

    config.max_patterns = 2;
    const auto blown = MineSequences(Toy(), config);
    ASSERT_FALSE(blown.ok());
    EXPECT_EQ(blown.status().code(), StatusCode::kResourceExhausted);
}

TEST(PrefixSpanTest, RelativeMinSup) {
    PrefixSpanConfig config;
    config.min_sup_rel = 0.75;  // ceil(0.75·4) = 3
    auto mined = MineSequences(Toy(), config);
    ASSERT_TRUE(mined.ok());
    for (const auto& p : *mined) EXPECT_GE(p.support, 3u);
}

TEST(SequenceDbTest, FilterAndSubset) {
    const auto db = Toy();
    const auto c0 = db.FilterByClass(0);
    EXPECT_EQ(c0.size(), 2u);
    EXPECT_EQ(c0.sequence(1), (Sequence{0, 2, 1}));
    EXPECT_EQ(db.ClassCounts(), (std::vector<std::size_t>{2, 2}));
    const auto sub = db.Subset({3});
    EXPECT_EQ(sub.size(), 1u);
    EXPECT_EQ(sub.label(0), 1u);
}

TEST(SequenceGeneratorTest, DeterministicAndShaped) {
    SequenceSpec spec;
    spec.rows = 100;
    spec.seed = 5;
    const auto a = GenerateSequences(spec);
    const auto b = GenerateSequences(spec);
    ASSERT_EQ(a.size(), 100u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.sequence(i), b.sequence(i));
        EXPECT_EQ(a.label(i), b.label(i));
        EXPECT_GE(a.sequence(i).size(), spec.length_min);
        EXPECT_LE(a.sequence(i).size(), spec.length_max);
    }
}

TEST(SequenceGeneratorTest, MotifsMakeClassesSeparable) {
    SequenceSpec spec;
    spec.rows = 600;
    spec.carrier_prob = 0.9;
    spec.label_noise = 0.0;
    spec.seed = 6;
    const auto db = GenerateSequences(spec);
    // Mining per class at 40% support must find class-discriminative
    // subsequences of motif length.
    PrefixSpanConfig config;
    config.min_sup_rel = 0.4;
    config.max_pattern_len = 3;
    const auto part = db.FilterByClass(0);
    auto mined = MineSequences(part, config);
    ASSERT_TRUE(mined.ok());
    bool found_discriminative = false;
    for (const auto& p : *mined) {
        if (p.items.size() < 3) continue;
        std::size_t on[2] = {0, 0};
        for (std::size_t i = 0; i < db.size(); ++i) {
            if (IsSubsequence(p.items, db.sequence(i))) on[db.label(i)]++;
        }
        if (on[0] > 3 * std::max<std::size_t>(on[1], 1)) {
            found_discriminative = true;
            break;
        }
    }
    EXPECT_TRUE(found_discriminative);
}

}  // namespace
}  // namespace dfp
