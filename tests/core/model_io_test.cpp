#include "core/model_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "data/encoder.hpp"
#include "data/synthetic.hpp"
#include "ml/dtree/c45.hpp"
#include "ml/nb/naive_bayes.hpp"
#include "ml/svm/pegasos.hpp"
#include "ml/svm/svm.hpp"

namespace dfp {
namespace {

TransactionDatabase Db(std::uint64_t seed) {
    SyntheticSpec spec;
    spec.rows = 250;
    spec.classes = 2;
    spec.attributes = 8;
    spec.arity = 3;
    spec.seed = seed;
    const Dataset data = GenerateSynthetic(spec);
    const auto encoder = ItemEncoder::FromSchema(data);
    return TransactionDatabase::FromDataset(data, *encoder);
}

PipelineConfig SmallConfig() {
    PipelineConfig config;
    config.miner.min_sup_rel = 0.12;
    config.miner.max_pattern_len = 4;
    config.mmrfs.coverage_delta = 2;
    return config;
}

TEST(FeatureSpaceIoTest, RoundTrip) {
    const auto db = Db(1);
    PatternClassifierPipeline pipeline(SmallConfig());
    ASSERT_TRUE(pipeline.Train(db, std::make_unique<NaiveBayesClassifier>()).ok());
    std::stringstream stream;
    ASSERT_TRUE(SaveFeatureSpace(pipeline.feature_space(), stream).ok());
    auto loaded = LoadFeatureSpace(stream);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(loaded->dim(), pipeline.feature_space().dim());
    EXPECT_EQ(loaded->num_patterns(), pipeline.feature_space().num_patterns());
    // Identical encodings on every transaction.
    std::vector<double> a(loaded->dim());
    std::vector<double> b(loaded->dim());
    for (std::size_t t = 0; t < db.num_transactions(); ++t) {
        loaded->Encode(db.transaction(t), a);
        pipeline.feature_space().Encode(db.transaction(t), b);
        EXPECT_EQ(a, b) << "row " << t;
    }
}

template <typename LearnerT>
void RoundTripPredictions(std::uint64_t seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto db = Db(seed);
    PatternClassifierPipeline pipeline(SmallConfig());
    ASSERT_TRUE(pipeline.Train(db, std::make_unique<LearnerT>()).ok());

    std::stringstream stream;
    ASSERT_TRUE(SavePipelineModel(pipeline, stream).ok());
    const std::string bundle = stream.str();
    auto loaded = LoadPipelineModel(stream);
    ASSERT_TRUE(loaded.ok()) << loaded.status();

    for (std::size_t t = 0; t < db.num_transactions(); ++t) {
        EXPECT_EQ(loaded->Predict(db.transaction(t)),
                  pipeline.Predict(db.transaction(t)))
            << "row " << t;
    }

    // Save→Load→Save is byte-stable: the loaded learner re-serializes to the
    // exact bundle it was parsed from, so the format loses no precision.
    std::stringstream again;
    again << "dfp-model v1 " << loaded->learner().TypeId() << '\n';
    ASSERT_TRUE(SaveFeatureSpace(loaded->feature_space(), again).ok());
    ASSERT_TRUE(loaded->learner().SaveModel(again).ok());
    EXPECT_EQ(again.str(), bundle);
}

// Round-trip matrix: every serializable learner × several mining seeds, each
// checked for prediction bit-equivalence and re-save idempotence.
constexpr std::uint64_t kMatrixSeeds[] = {2, 3, 4, 5, 23};

TEST(ModelIoTest, SvmRoundTripMatrix) {
    for (std::uint64_t seed : kMatrixSeeds) RoundTripPredictions<SvmClassifier>(seed);
}
TEST(ModelIoTest, C45RoundTripMatrix) {
    for (std::uint64_t seed : kMatrixSeeds) RoundTripPredictions<C45Classifier>(seed);
}
TEST(ModelIoTest, NaiveBayesRoundTripMatrix) {
    for (std::uint64_t seed : kMatrixSeeds) {
        RoundTripPredictions<NaiveBayesClassifier>(seed);
    }
}
TEST(ModelIoTest, PegasosRoundTripMatrix) {
    for (std::uint64_t seed : kMatrixSeeds) {
        RoundTripPredictions<PegasosClassifier>(seed);
    }
}

TEST(ModelIoTest, RbfSvmRoundTrip) {
    const auto db = Db(6);
    PatternClassifierPipeline pipeline(SmallConfig());
    SmoConfig smo;
    smo.kernel.type = KernelType::kRbf;
    smo.kernel.gamma = 0.05;
    ASSERT_TRUE(pipeline.Train(db, std::make_unique<SvmClassifier>(smo)).ok());
    std::stringstream stream;
    ASSERT_TRUE(SavePipelineModel(pipeline, stream).ok());
    auto loaded = LoadPipelineModel(stream);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    for (std::size_t t = 0; t < db.num_transactions(); t += 3) {
        EXPECT_EQ(loaded->Predict(db.transaction(t)),
                  pipeline.Predict(db.transaction(t)));
    }
}

TEST(ModelIoTest, FileRoundTrip) {
    const auto db = Db(7);
    PatternClassifierPipeline pipeline(SmallConfig());
    ASSERT_TRUE(pipeline.Train(db, std::make_unique<C45Classifier>()).ok());
    const std::string path = ::testing::TempDir() + "/dfp_model_io_test.model";
    ASSERT_TRUE(SavePipelineModelToFile(pipeline, path).ok());
    auto loaded = LoadPipelineModelFromFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_NEAR(loaded->Accuracy(db), pipeline.Accuracy(db), 1e-12);
}

TEST(ModelIoTest, LoadRejectsGarbage) {
    std::stringstream bad("not-a-model at all");
    EXPECT_FALSE(LoadPipelineModel(bad).ok());
    std::stringstream truncated("dfp-model v1 c4.5\nfeature-space 5");
    EXPECT_FALSE(LoadPipelineModel(truncated).ok());
    std::stringstream unknown("dfp-model v1 martian\nfeature-space 5 0\n");
    EXPECT_FALSE(LoadPipelineModel(unknown).ok());
}

TEST(ModelIoTest, SaveWithoutTrainingFails) {
    PatternClassifierPipeline pipeline(SmallConfig());
    std::stringstream stream;
    EXPECT_FALSE(SavePipelineModel(pipeline, stream).ok());
}

TEST(ModelIoTest, MakeLearnerByTypeId) {
    EXPECT_TRUE(MakeLearnerByTypeId("svm").ok());
    EXPECT_TRUE(MakeLearnerByTypeId("c4.5").ok());
    EXPECT_TRUE(MakeLearnerByTypeId("nb").ok());
    EXPECT_TRUE(MakeLearnerByTypeId("pegasos").ok());
    EXPECT_FALSE(MakeLearnerByTypeId("nope").ok());
}

}  // namespace
}  // namespace dfp
