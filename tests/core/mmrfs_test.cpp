#include "core/mmrfs.hpp"

#include <gtest/gtest.h>

#include "fpm/closed_miner.hpp"

namespace dfp {
namespace {

// 8 transactions, 2 balanced classes. Item 0 perfectly predicts class 0;
// item 1 duplicates item 0 (fully redundant); item 2 is independent noise;
// item 3 covers the class-1 rows.
TransactionDatabase Toy() {
    return TransactionDatabase::FromTransactions(
        {
            {0, 1, 2}, {0, 1}, {0, 1, 2}, {0, 1},  // class 0
            {3, 2}, {3}, {3, 2}, {3},              // class 1
        },
        {0, 0, 0, 0, 1, 1, 1, 1}, 4, 2);
}

std::vector<Pattern> SingletonCandidates(const TransactionDatabase& db) {
    std::vector<Pattern> candidates;
    for (ItemId i = 0; i < db.num_items(); ++i) {
        Pattern p;
        p.items = {i};
        candidates.push_back(std::move(p));
    }
    AttachMetadata(db, &candidates);
    return candidates;
}

TEST(MmrfsTest, MostRelevantSelectedFirst) {
    const auto db = Toy();
    const auto candidates = SingletonCandidates(db);
    MmrfsConfig config;
    config.coverage_delta = 1;
    const auto result = RunMmrfs(db, candidates, config);
    ASSERT_FALSE(result.selected.empty());
    // Items 0 and 3 have IG = 1 (perfect); item 2 has IG 0. The first pick must
    // be one of the perfect ones.
    EXPECT_TRUE(result.selected[0] == 0 || result.selected[0] == 3);
}

TEST(MmrfsTest, RedundantDuplicateSuppressed) {
    const auto db = Toy();
    const auto candidates = SingletonCandidates(db);
    MmrfsConfig config;
    config.coverage_delta = 1;
    const auto result = RunMmrfs(db, candidates, config);
    // Items 0 and 1 have identical covers: selecting both is pointless; with
    // δ=1, once 0 (or 1) and 3 are in, every instance is covered.
    EXPECT_EQ(result.selected.size(), 2u);
    bool has01 = false;
    bool has3 = false;
    for (std::size_t i : result.selected) {
        if (i == 0 || i == 1) has01 = true;
        if (i == 3) has3 = true;
    }
    EXPECT_TRUE(has01);
    EXPECT_TRUE(has3);
}

TEST(MmrfsTest, CoverageDeltaGrowsSelection) {
    const auto db = Toy();
    const auto candidates = SingletonCandidates(db);
    MmrfsConfig one;
    one.coverage_delta = 1;
    MmrfsConfig three;
    three.coverage_delta = 3;
    const auto small = RunMmrfs(db, candidates, one);
    const auto large = RunMmrfs(db, candidates, three);
    EXPECT_GE(large.selected.size(), small.selected.size());
}

TEST(MmrfsTest, CoverageAccountingIsCorrect) {
    const auto db = Toy();
    const auto candidates = SingletonCandidates(db);
    MmrfsConfig config;
    config.coverage_delta = 2;
    const auto result = RunMmrfs(db, candidates, config);
    // Recompute coverage from scratch: counts capped at δ, only correct covers.
    std::vector<std::size_t> expected(db.num_transactions(), 0);
    for (std::size_t idx : result.selected) {
        const Pattern& p = candidates[idx];
        const ClassLabel maj = p.MajorityClass();
        p.cover.ForEach([&](std::uint32_t t) {
            if (db.label(t) == maj && expected[t] < config.coverage_delta) {
                expected[t]++;
            }
        });
    }
    EXPECT_EQ(result.coverage, expected);
}

TEST(MmrfsTest, MaxFeaturesCap) {
    const auto db = Toy();
    const auto candidates = SingletonCandidates(db);
    MmrfsConfig config;
    config.coverage_delta = 5;
    config.max_features = 1;
    const auto result = RunMmrfs(db, candidates, config);
    EXPECT_EQ(result.selected.size(), 1u);
}

TEST(MmrfsTest, GainsAreNonIncreasingInformation) {
    const auto db = Toy();
    const auto candidates = SingletonCandidates(db);
    MmrfsConfig config;
    config.coverage_delta = 3;
    const auto result = RunMmrfs(db, candidates, config);
    ASSERT_GE(result.selected.size(), 2u);
    // First gain is the raw max relevance (no redundancy yet).
    double max_rel = 0.0;
    for (double r : result.relevance) max_rel = std::max(max_rel, r);
    EXPECT_DOUBLE_EQ(result.gains[0], max_rel);
}

TEST(MmrfsTest, EmptyCandidatesSafe) {
    const auto db = Toy();
    const auto result = RunMmrfs(db, {}, MmrfsConfig{});
    EXPECT_TRUE(result.selected.empty());
}

TEST(MmrfsTest, UselessPatternNotSelectedWhenCovered) {
    const auto db = Toy();
    auto candidates = SingletonCandidates(db);
    MmrfsConfig config;
    config.coverage_delta = 1;
    const auto result = RunMmrfs(db, candidates, config);
    // Item 2 straddles both classes with IG 0; with items 0/3 covering all
    // instances at δ=1, it must not appear.
    for (std::size_t idx : result.selected) EXPECT_NE(idx, 2u);
}

TEST(MmrfsTest, SelectPatternsConvenience) {
    const auto db = Toy();
    const auto candidates = SingletonCandidates(db);
    MmrfsConfig config;
    config.coverage_delta = 1;
    const auto patterns = SelectPatterns(db, candidates, config);
    EXPECT_EQ(patterns.size(), RunMmrfs(db, candidates, config).selected.size());
}

TEST(MmrfsTest, FisherRelevanceVariant) {
    const auto db = Toy();
    const auto candidates = SingletonCandidates(db);
    MmrfsConfig config;
    config.relevance = RelevanceMeasure::kFisher;
    config.coverage_delta = 1;
    const auto result = RunMmrfs(db, candidates, config);
    EXPECT_FALSE(result.selected.empty());
}

TEST(TopKTest, TopKByRelevanceIgnoresRedundancy) {
    const auto db = Toy();
    const auto candidates = SingletonCandidates(db);
    const auto top =
        TopKByRelevance(db, candidates, RelevanceMeasure::kInfoGain, 2);
    ASSERT_EQ(top.size(), 2u);
    // Relevance-only selection happily takes the two identical items 0 and 1 —
    // exactly the failure mode MMRFS exists to avoid.
    EXPECT_EQ(top[0], 0u);
    EXPECT_EQ(top[1], 1u);
}

TEST(MmrfsTest, RealPipelineCandidates) {
    // End-to-end smoke: closed patterns from a mined DB through MMRFS.
    const auto db = Toy();
    MinerConfig mc;
    mc.min_sup_abs = 2;
    auto mined = ClosedMiner().Mine(db, mc);
    ASSERT_TRUE(mined.ok());
    std::vector<Pattern> patterns = std::move(*mined);
    AttachMetadata(db, &patterns);
    MmrfsConfig config;
    config.coverage_delta = 2;
    const auto result = RunMmrfs(db, patterns, config);
    EXPECT_FALSE(result.selected.empty());
    EXPECT_LE(result.selected.size(), patterns.size());
}

}  // namespace
}  // namespace dfp
