#include "core/feature_space.hpp"

#include <gtest/gtest.h>

namespace dfp {
namespace {

TransactionDatabase Toy() {
    return TransactionDatabase::FromTransactions(
        {{0, 1, 2}, {0, 2}, {1, 3}}, {0, 0, 1}, 4, 2);
}

std::vector<Pattern> TwoPatterns(const TransactionDatabase& db) {
    std::vector<Pattern> patterns(2);
    patterns[0].items = {0, 2};
    patterns[1].items = {1, 3};
    AttachMetadata(db, &patterns);
    return patterns;
}

TEST(FeatureSpaceTest, DimensionIsItemsPlusPatterns) {
    const auto db = Toy();
    const auto fs = FeatureSpace::Build(4, TwoPatterns(db));
    EXPECT_EQ(fs.num_items(), 4u);
    EXPECT_EQ(fs.num_patterns(), 2u);
    EXPECT_EQ(fs.dim(), 6u);
}

TEST(FeatureSpaceTest, SingletonPatternsDropped) {
    const auto db = Toy();
    auto patterns = TwoPatterns(db);
    Pattern single;
    single.items = {2};
    patterns.push_back(single);
    const auto fs = FeatureSpace::Build(4, patterns);
    EXPECT_EQ(fs.num_patterns(), 2u);  // the singleton duplicates item 2
}

TEST(FeatureSpaceTest, EncodeSetsItemAndPatternBits) {
    const auto db = Toy();
    const auto fs = FeatureSpace::Build(4, TwoPatterns(db));
    std::vector<double> out(fs.dim());
    fs.Encode({0, 1, 2}, out);
    EXPECT_EQ(out, (std::vector<double>{1, 1, 1, 0, 1, 0}));
    fs.Encode({1, 3}, out);
    EXPECT_EQ(out, (std::vector<double>{0, 1, 0, 1, 0, 1}));
    fs.Encode({3}, out);
    EXPECT_EQ(out, (std::vector<double>{0, 0, 0, 1, 0, 0}));
}

TEST(FeatureSpaceTest, TransformMatchesRowwiseEncode) {
    const auto db = Toy();
    const auto fs = FeatureSpace::Build(4, TwoPatterns(db));
    const FeatureMatrix x = fs.Transform(db);
    ASSERT_EQ(x.rows(), 3u);
    ASSERT_EQ(x.cols(), 6u);
    std::vector<double> expected(fs.dim());
    for (std::size_t t = 0; t < db.num_transactions(); ++t) {
        fs.Encode(db.transaction(t), expected);
        for (std::size_t c = 0; c < fs.dim(); ++c) {
            EXPECT_DOUBLE_EQ(x.At(t, c), expected[c]);
        }
    }
}

TEST(FeatureSpaceTest, ItemsOnly) {
    const auto fs = FeatureSpace::ItemsOnly(5);
    EXPECT_EQ(fs.dim(), 5u);
    EXPECT_EQ(fs.num_patterns(), 0u);
    std::vector<double> out(5);
    fs.Encode({1, 4}, out);
    EXPECT_EQ(out, (std::vector<double>{0, 1, 0, 0, 1}));
}

TEST(FeatureSpaceTest, UnseenItemsIgnored) {
    // A transaction may carry item ids beyond the training universe (e.g. a
    // test-fold value bin never seen in training); they must be ignored.
    const auto fs = FeatureSpace::ItemsOnly(3);
    std::vector<double> out(3);
    fs.Encode({1, 7}, out);
    EXPECT_EQ(out, (std::vector<double>{0, 1, 0}));
}

TEST(FeatureMatrixTest, SelectRowsAndCols) {
    FeatureMatrix m(2, 3);
    m.At(0, 0) = 1;
    m.At(0, 2) = 2;
    m.At(1, 1) = 3;
    const auto rows = m.SelectRows({1});
    EXPECT_EQ(rows.rows(), 1u);
    EXPECT_DOUBLE_EQ(rows.At(0, 1), 3.0);
    const auto cols = m.SelectCols({2, 0});
    EXPECT_EQ(cols.cols(), 2u);
    EXPECT_DOUBLE_EQ(cols.At(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(cols.At(0, 1), 1.0);
}

}  // namespace
}  // namespace dfp
