// Malformed model-bundle hardening: LoadPipelineModel must answer every
// corrupt input with an error Status (kInvalidArgument / kParseError /
// kNotFound) — never abort, throw, or over-allocate. The mutations cover the
// failure classes the serving reload path is exposed to: truncation, item ids
// outside the declared universe, duplicate patterns, non-numeric weights, and
// hostile count fields that would otherwise drive multi-gigabyte allocations.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/model_io.hpp"
#include "core/pipeline.hpp"
#include "data/encoder.hpp"
#include "data/synthetic.hpp"
#include "ml/dtree/c45.hpp"
#include "ml/nb/naive_bayes.hpp"
#include "ml/svm/pegasos.hpp"
#include "ml/svm/svm.hpp"

namespace dfp {
namespace {

template <typename LearnerT>
std::string TrainedBundle(std::uint64_t seed) {
    SyntheticSpec spec;
    spec.rows = 200;
    spec.classes = 2;
    spec.attributes = 8;
    spec.arity = 3;
    spec.seed = seed;
    const Dataset data = GenerateSynthetic(spec);
    const auto encoder = ItemEncoder::FromSchema(data);
    const auto db = TransactionDatabase::FromDataset(data, *encoder);
    PipelineConfig config;
    config.miner.min_sup_rel = 0.12;
    config.miner.max_pattern_len = 4;
    config.mmrfs.coverage_delta = 2;
    PatternClassifierPipeline pipeline(config);
    EXPECT_TRUE(pipeline.Train(db, std::make_unique<LearnerT>()).ok());
    std::stringstream out;
    EXPECT_TRUE(SavePipelineModel(pipeline, out).ok());
    return out.str();
}

/// Loading must fail with a Status — reaching this point at all already
/// certifies "no abort"; the asserts pin the error contract.
void ExpectRejected(const std::string& bundle, const std::string& what) {
    SCOPED_TRACE(what);
    std::stringstream in(bundle);
    auto loaded = LoadPipelineModel(in);
    ASSERT_FALSE(loaded.ok());
    EXPECT_FALSE(loaded.status().message().empty());
}

std::string ReplaceFirst(std::string s, const std::string& from,
                         const std::string& to) {
    const auto pos = s.find(from);
    EXPECT_NE(pos, std::string::npos) << "mutation anchor '" << from << "'";
    if (pos != std::string::npos) s.replace(pos, from.size(), to);
    return s;
}

class CorruptModelTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() {
        svm_bundle_ = new std::string(TrainedBundle<SvmClassifier>(31));
        nb_bundle_ = new std::string(TrainedBundle<NaiveBayesClassifier>(32));
        c45_bundle_ = new std::string(TrainedBundle<C45Classifier>(33));
        pegasos_bundle_ = new std::string(TrainedBundle<PegasosClassifier>(34));
    }
    static void TearDownTestSuite() {
        delete svm_bundle_;
        delete nb_bundle_;
        delete c45_bundle_;
        delete pegasos_bundle_;
    }

    static std::string* svm_bundle_;
    static std::string* nb_bundle_;
    static std::string* c45_bundle_;
    static std::string* pegasos_bundle_;
};

std::string* CorruptModelTest::svm_bundle_ = nullptr;
std::string* CorruptModelTest::nb_bundle_ = nullptr;
std::string* CorruptModelTest::c45_bundle_ = nullptr;
std::string* CorruptModelTest::pegasos_bundle_ = nullptr;

TEST_F(CorruptModelTest, SanityBundlesLoadClean) {
    for (const std::string* bundle :
         {svm_bundle_, nb_bundle_, c45_bundle_, pegasos_bundle_}) {
        std::stringstream in(*bundle);
        auto loaded = LoadPipelineModel(in);
        ASSERT_TRUE(loaded.ok()) << loaded.status();
    }
}

TEST_F(CorruptModelTest, TruncatedAtEveryStage) {
    const std::string& bundle = *svm_bundle_;
    // Chop at a spread of offsets: inside the header, inside the feature
    // space, inside the learner section, and with exactly the final token
    // missing (cutting mid-token would leave a shorter-but-parseable number).
    const auto last_token_char = bundle.find_last_not_of(" \n");
    ASSERT_NE(last_token_char, std::string::npos);
    const auto last_token_start =
        bundle.find_last_of(" \n", last_token_char) + 1;
    const std::size_t cuts[] = {0,
                                5,
                                bundle.find('\n'),
                                bundle.find('\n') + 10,
                                bundle.size() / 4,
                                bundle.size() / 2,
                                3 * bundle.size() / 4,
                                last_token_start};
    for (std::size_t cut : cuts) {
        ExpectRejected(bundle.substr(0, cut),
                       "truncated at byte " + std::to_string(cut));
    }
}

TEST_F(CorruptModelTest, HeaderMutations) {
    ExpectRejected(ReplaceFirst(*nb_bundle_, "dfp-model", "dfp-modle"),
                   "misspelled magic");
    ExpectRejected(ReplaceFirst(*nb_bundle_, "v1", "v9"), "future version");
    ExpectRejected(ReplaceFirst(*nb_bundle_, " nb\n", " martian\n"),
                   "unknown learner type id");
}

TEST_F(CorruptModelTest, FeatureSpaceMutations) {
    const std::string& bundle = *nb_bundle_;
    // Parse the real "feature-space <items> <patterns>" header so the textual
    // surgery below never depends on the exact mined pattern count.
    std::size_t num_items = 0;
    std::size_t num_patterns = 0;
    const auto space_pos = bundle.find("feature-space ");
    ASSERT_NE(space_pos, std::string::npos);
    ASSERT_EQ(std::sscanf(bundle.c_str() + space_pos, "feature-space %zu %zu",
                          &num_items, &num_patterns),
              2);
    ASSERT_GE(num_patterns, 1u);
    const std::string space_header = "feature-space " + std::to_string(num_items) +
                                     " " + std::to_string(num_patterns);

    // Item id at/above the declared universe: shrink the universe to 1 so
    // every pattern (length ≥ 2, hence containing an item ≥ 1) is out of range.
    ExpectRejected(
        ReplaceFirst(bundle, space_header,
                     "feature-space 1 " + std::to_string(num_patterns)),
        "item id >= universe");

    // Hostile counts: a lying pattern total and an absurd universe. Both must
    // be rejected (by EOF or the sanity cap) without a matching allocation.
    ExpectRejected(
        ReplaceFirst(bundle, space_header,
                     "feature-space " + std::to_string(num_items) + " 999999"),
        "pattern count beyond data");
    ExpectRejected(
        ReplaceFirst(bundle, "feature-space ", "feature-space 99999999999 "),
        "universe above the sanity cap");

    // Structural pattern damage. Locate the first pattern line: it follows
    // the feature-space header line.
    const auto header_end = bundle.find('\n', space_pos);
    ASSERT_NE(header_end, std::string::npos);
    const auto line_end = bundle.find('\n', header_end + 1);
    const std::string pattern_line =
        bundle.substr(header_end + 1, line_end - header_end - 1);

    // Duplicate pattern: list the first pattern twice, bumping the count.
    {
        std::string dup = bundle;
        dup.insert(line_end + 1, pattern_line + "\n");
        dup = ReplaceFirst(dup, space_header,
                           "feature-space " + std::to_string(num_items) + " " +
                               std::to_string(num_patterns + 1));
        ExpectRejected(dup, "duplicate pattern id");
    }
    // Non-ascending items inside a pattern (also covers duplicates-in-pattern).
    {
        const auto first_space = pattern_line.find(' ');
        const auto second_space = pattern_line.find(' ', first_space + 1);
        const std::string first_item =
            pattern_line.substr(first_space + 1, second_space - first_space - 1);
        std::string shuffled = pattern_line;
        // Repeat the first item where the second should be: "2 10 17" → "2 10 10".
        shuffled = pattern_line.substr(0, second_space + 1) + first_item +
                   pattern_line.substr(pattern_line.find(' ', second_space + 1) ==
                                               std::string::npos
                                           ? pattern_line.size()
                                           : pattern_line.find(' ', second_space + 1));
        std::string bad = bundle;
        bad.replace(header_end + 1, pattern_line.size(), shuffled);
        ExpectRejected(bad, "non-ascending pattern items");
    }
    // Pattern shorter than 2 items.
    {
        std::string bad = bundle;
        bad.replace(header_end + 1, pattern_line.find(' '), "1");
        ExpectRejected(bad, "pattern of length < 2");
    }
    // Non-numeric where an item id belongs.
    {
        std::string bad = bundle;
        bad.replace(header_end + 1 + pattern_line.find(' ') + 1, 1, "x");
        ExpectRejected(bad, "non-numeric item id");
    }
}

TEST_F(CorruptModelTest, LearnerWeightMutations) {
    // Non-numeric weights in each learner's parameter block: corrupt the
    // final token of the bundle (deep inside the learner section) from its
    // FIRST character, so no parseable numeric prefix survives.
    for (const std::string* bundle :
         {svm_bundle_, nb_bundle_, c45_bundle_, pegasos_bundle_}) {
        std::string bad = *bundle;
        const auto last_token_char = bad.find_last_not_of(" \n");
        ASSERT_NE(last_token_char, std::string::npos);
        bad[bad.find_last_of(" \n", last_token_char) + 1] = '?';
        ExpectRejected(bad, "non-numeric learner parameter");
    }
}

TEST_F(CorruptModelTest, HostileLearnerCounts) {
    // Count fields that would drive huge allocations must hit the sanity cap
    // (kInvalidArgument), not bad_alloc/abort. Hand-built minimal bundles.
    const std::string space = "feature-space 4 1\n2 0 1\n";
    ExpectRejected("dfp-model v1 nb\n" + space +
                       "nb-model 99999999 99999999 1.0\n",
                   "NB matrix above cap");
    ExpectRejected("dfp-model v1 pegasos\n" + space +
                       "pegasos-model 99999999 99999999\n",
                   "pegasos matrix above cap");
    ExpectRejected("dfp-model v1 c4.5\n" + space +
                       "c45-model 2 0 184467440737095516\n",
                   "c4.5 node count above cap");
    ExpectRejected("dfp-model v1 svm\n" + space +
                       "svm-model 0 0.5 0 3 1 2 1\n0 1 0.0 99999999999 ",
                   "SVM weight count above cap");
    ExpectRejected("dfp-model v1 svm\n" + space +
                       "svm-model 0 0.5 0 3 1 2 1\n0 1 0.0 1 0.5 20000000 20000000\n",
                   "SVM sv matrix above cap");
}

TEST_F(CorruptModelTest, NegativeCountsRejected) {
    const std::string space = "feature-space 4 1\n2 0 1\n";
    ExpectRejected("dfp-model v1 nb\n" + space + "nb-model -3 5 1.0\n",
                   "negative class count");
    ExpectRejected("dfp-model v1 c4.5\n" + space + "c45-model 2 0 -7\n",
                   "negative node count");
}

}  // namespace
}  // namespace dfp
