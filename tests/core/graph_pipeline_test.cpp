#include "core/graph_pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "ml/dtree/c45.hpp"
#include "ml/svm/svm.hpp"

namespace dfp {
namespace {

GraphDatabase MakeDb(std::uint64_t seed, std::size_t rows = 300) {
    GraphSpec spec;
    spec.rows = rows;
    spec.seed = seed;
    spec.carrier_prob = 0.85;
    spec.label_noise = 0.02;
    return GenerateGraphs(spec);
}

GraphPipelineConfig SmallConfig() {
    GraphPipelineConfig config;
    config.miner.min_sup_rel = 0.25;
    config.miner.max_edges = 3;
    config.max_features = 60;
    return config;
}

TEST(GraphPipelineTest, BeatsMajorityBaseline) {
    const auto db = MakeDb(1);
    const auto counts = db.ClassCounts();
    const double majority =
        static_cast<double>(*std::max_element(counts.begin(), counts.end())) /
        static_cast<double>(db.size());
    GraphClassifierPipeline pipeline(SmallConfig());
    ASSERT_TRUE(pipeline.Train(db, std::make_unique<SvmClassifier>()).ok());
    EXPECT_GT(pipeline.Accuracy(db), majority + 0.1);
}

TEST(GraphPipelineTest, SelectedFeaturesHaveEdgesAndRelevance) {
    const auto db = MakeDb(2);
    GraphClassifierPipeline pipeline(SmallConfig());
    ASSERT_TRUE(pipeline.Train(db, std::make_unique<C45Classifier>()).ok());
    ASSERT_FALSE(pipeline.features().empty());
    EXPECT_GE(pipeline.num_candidates(), pipeline.features().size());
    for (const auto& f : pipeline.features()) {
        EXPECT_GE(f.pattern.length(), 1u);
        EXPECT_GT(f.relevance, 0.0);
    }
}

TEST(GraphPipelineTest, GeneralizesToHoldout) {
    const auto db = MakeDb(3, 400);
    std::vector<std::size_t> train_rows;
    std::vector<std::size_t> test_rows;
    for (std::size_t i = 0; i < db.size(); ++i) {
        (i % 5 == 0 ? test_rows : train_rows).push_back(i);
    }
    const auto train = db.Subset(train_rows);
    const auto test = db.Subset(test_rows);
    GraphClassifierPipeline pipeline(SmallConfig());
    ASSERT_TRUE(pipeline.Train(train, std::make_unique<SvmClassifier>()).ok());
    EXPECT_GT(pipeline.Accuracy(test), 0.65);
}

TEST(GraphPipelineTest, MaxFeaturesRespected) {
    const auto db = MakeDb(4);
    GraphPipelineConfig config = SmallConfig();
    config.max_features = 7;
    GraphClassifierPipeline pipeline(config);
    ASSERT_TRUE(pipeline.Train(db, std::make_unique<C45Classifier>()).ok());
    EXPECT_LE(pipeline.features().size(), 7u);
}

TEST(GraphPipelineTest, ErrorsPropagate) {
    GraphClassifierPipeline pipeline(SmallConfig());
    EXPECT_FALSE(pipeline.Train(MakeDb(5), nullptr).ok());
    const GraphDatabase empty({}, {}, 6, 3, 2);
    GraphClassifierPipeline pipeline2(SmallConfig());
    EXPECT_FALSE(pipeline2.Train(empty, std::make_unique<C45Classifier>()).ok());
}

}  // namespace
}  // namespace dfp
