#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"

namespace dfp {
namespace {

TEST(IgBoundTest, ZeroAtDegenerateSupports) {
    EXPECT_DOUBLE_EQ(IgUpperBound(0.0, 0.3), 0.0);
    EXPECT_DOUBLE_EQ(IgUpperBound(1.0, 0.3), 0.0);
}

TEST(IgBoundTest, ZeroForDegeneratePrior) {
    EXPECT_DOUBLE_EQ(IgUpperBound(0.5, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(IgUpperBound(0.5, 1.0), 0.0);
}

TEST(IgBoundTest, ReachesClassEntropyAtThetaEqualsP) {
    // At θ = p the covered branch can be exactly class 1 → IG = H(C).
    for (double p : {0.2, 0.35, 0.5}) {
        EXPECT_NEAR(IgUpperBound(p, p), BinaryEntropy(p), 1e-9);
    }
}

TEST(IgBoundTest, MatchesPaperClosedFormBelowP) {
    // For θ ≤ p with q = 1 the bound is H(p) − (1−θ)·H((p−θ)/(1−θ)) (Eq. 3).
    const double p = 0.4;
    for (double theta : {0.05, 0.1, 0.2, 0.3}) {
        const double expected =
            BinaryEntropy(p) -
            (1.0 - theta) * BinaryEntropy((p - theta) / (1.0 - theta));
        EXPECT_NEAR(IgUpperBound(theta, p), expected, 1e-12) << "theta=" << theta;
    }
}

TEST(IgBoundTest, MatchesNumericMinimizationOverQ) {
    // Independent check: IG_ub(θ) = H(p) − min over feasible q of H(C|X).
    // A fine grid over q approximates the exact concave minimum (which sits at
    // a feasible endpoint, so the grid min matches to grid resolution).
    for (double p : {0.2, 0.3, 0.5}) {
        for (double theta : {0.05, 0.2, 0.35, 0.5, 0.6, 0.8, 0.95}) {
            const double q_lo = std::max(0.0, (p - (1.0 - theta)) / theta);
            const double q_hi = std::min(1.0, p / theta);
            double h_min = 1e9;
            const int grid = 10000;
            for (int g = 0; g <= grid; ++g) {
                const double q = q_lo + (q_hi - q_lo) * g / grid;
                const double r = (p - theta * q) / (1.0 - theta);
                const double h = theta * BinaryEntropy(q) +
                                 (1.0 - theta) * BinaryEntropy(Clamp(r, 0.0, 1.0));
                h_min = std::min(h_min, h);
            }
            EXPECT_NEAR(IgUpperBound(theta, p), BinaryEntropy(p) - h_min, 1e-6)
                << "p=" << p << " theta=" << theta;
        }
    }
}

TEST(IgBoundTest, PaperCaseExpressionsAreNeverAboveTheBound) {
    // The paper's candidate minimizers (q = 1 for θ ≤ p; q = p/θ and
    // q = 1 − (1−p)/θ for θ > p) each induce an achievable IG; the exact
    // envelope must dominate every one of them.
    for (double p : {0.2, 0.4}) {
        for (double theta = 0.05; theta < 1.0; theta += 0.05) {
            const double bound = IgUpperBound(theta, p);
            if (theta <= p) {
                const double ig =
                    BinaryEntropy(p) -
                    (1.0 - theta) * BinaryEntropy((p - theta) / (1.0 - theta));
                EXPECT_GE(bound + 1e-12, ig) << "p=" << p << " theta=" << theta;
            } else {
                const double ig = BinaryEntropy(p) - theta * BinaryEntropy(p / theta);
                EXPECT_GE(bound + 1e-12, ig) << "p=" << p << " theta=" << theta;
            }
        }
    }
}

TEST(IgBoundTest, MonotoneIncreasingBelowP) {
    const double p = 0.4;
    double prev = 0.0;
    for (double theta = 0.01; theta < p; theta += 0.01) {
        const double bound = IgUpperBound(theta, p);
        EXPECT_GE(bound, prev - 1e-12) << "theta=" << theta;
        prev = bound;
    }
}

TEST(IgBoundTest, LowSupportMeansLowBound) {
    // The paper's headline: the discriminative power of a low-support feature
    // is bounded by a small value. At θ = 5% and p = 0.5 the bound is tiny.
    EXPECT_LT(IgUpperBound(0.05, 0.5), 0.30);
    EXPECT_LT(IgUpperBound(0.01, 0.5), 0.09);
    // And symmetric: very high support is weak too.
    EXPECT_LT(IgUpperBound(0.99, 0.5), 0.09);
}

TEST(IgBoundTest, SymmetricInPriorComplement) {
    for (double theta : {0.1, 0.3, 0.6}) {
        EXPECT_NEAR(IgUpperBound(theta, 0.3), IgUpperBound(theta, 0.7), 1e-12);
    }
}

TEST(FisherBoundTest, MatchesEquation6BelowP) {
    // Eq. 6: Fr_ub|q=1 = θ(1−p)/(p−θ) for θ ≤ p.
    const double p = 0.4;
    for (double theta : {0.05, 0.1, 0.2, 0.3}) {
        EXPECT_NEAR(FisherUpperBound(theta, p), theta * (1.0 - p) / (p - theta),
                    1e-9)
            << "theta=" << theta;
    }
}

TEST(FisherBoundTest, MonotoneIncreasingBelowP) {
    const double p = 0.35;
    double prev = 0.0;
    for (double theta = 0.01; theta < p - 0.02; theta += 0.01) {
        const double bound = FisherUpperBound(theta, p);
        EXPECT_GE(bound, prev) << "theta=" << theta;
        prev = bound;
    }
}

TEST(FisherBoundTest, DivergesAtThetaEqualsP) {
    EXPECT_TRUE(std::isinf(FisherUpperBound(0.4, 0.4)));
    EXPECT_GT(FisherUpperBound(0.399, 0.4), 100.0);
}

TEST(FisherBoundTest, ZeroAtDegenerateInputs) {
    EXPECT_DOUBLE_EQ(FisherUpperBound(0.0, 0.4), 0.0);
    EXPECT_DOUBLE_EQ(FisherUpperBound(1.0, 0.4), 0.0);
    EXPECT_DOUBLE_EQ(FisherUpperBound(0.3, 0.0), 0.0);
}

TEST(MulticlassBoundTest, ReducesToBinary) {
    for (double theta : {0.1, 0.25, 0.4}) {
        EXPECT_NEAR(IgUpperBoundMulticlass(theta, {0.3, 0.7}),
                    IgUpperBound(theta, 0.3), 1e-12);
    }
}

TEST(MulticlassBoundTest, BoundedByClassEntropy) {
    const std::vector<double> priors = {0.5, 0.3, 0.2};
    const double h = Entropy(priors);
    for (double theta = 0.05; theta < 1.0; theta += 0.05) {
        const double bound = IgUpperBoundMulticlass(theta, priors);
        EXPECT_GE(bound, 0.0);
        EXPECT_LE(bound, h + 1e-9);
    }
}

TEST(MulticlassBoundTest, SmallSupportSmallBound) {
    const std::vector<double> priors = {0.4, 0.3, 0.3};
    EXPECT_LT(IgUpperBoundMulticlass(0.02, priors), 0.2);
    EXPECT_GT(IgUpperBoundMulticlass(0.3, priors), 0.5);
}

}  // namespace
}  // namespace dfp
