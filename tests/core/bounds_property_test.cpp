// The paper's central theorem, checked empirically: the information gain /
// Fisher score of EVERY mined pattern is below the theoretical upper bound at
// the pattern's support (Section 3.1.2, Figures 2-3).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/bounds.hpp"
#include "core/measures.hpp"
#include "data/encoder.hpp"
#include "data/synthetic.hpp"
#include "fpm/fpgrowth.hpp"

namespace dfp {
namespace {

TransactionDatabase MakeDb(std::uint64_t seed, std::size_t classes) {
    SyntheticSpec spec;
    spec.rows = 250;
    spec.classes = classes;
    spec.attributes = 8;
    spec.arity = 3;
    spec.seed = seed;
    spec.marginal_skew = 0.3;
    const Dataset data = GenerateSynthetic(spec);
    auto encoder = ItemEncoder::FromSchema(data);
    return TransactionDatabase::FromDataset(data, *encoder);
}

class BoundHoldsTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundHoldsTest, InformationGainBelowBoundBinary) {
    const auto db = MakeDb(GetParam(), 2);
    const double p = db.ClassPriors()[0];
    MinerConfig config;
    config.min_sup_rel = 0.05;
    auto mined = FpGrowthMiner().Mine(db, config);
    ASSERT_TRUE(mined.ok());
    std::vector<Pattern> patterns = std::move(*mined);
    AttachMetadata(db, &patterns);
    ASSERT_GT(patterns.size(), 20u);
    for (const Pattern& pat : patterns) {
        const auto stats = StatsOfPattern(db, pat);
        const double ig = InformationGain(stats);
        const double bound = IgUpperBound(stats.theta(), p);
        EXPECT_LE(ig, bound + 1e-9)
            << ItemsetToString(pat.items) << " support=" << pat.support;
    }
}

TEST_P(BoundHoldsTest, FisherScoreBelowBoundBinary) {
    const auto db = MakeDb(GetParam(), 2);
    const double p = db.ClassPriors()[0];
    MinerConfig config;
    config.min_sup_rel = 0.05;
    auto mined = FpGrowthMiner().Mine(db, config);
    ASSERT_TRUE(mined.ok());
    std::vector<Pattern> patterns = std::move(*mined);
    AttachMetadata(db, &patterns);
    for (const Pattern& pat : patterns) {
        const auto stats = StatsOfPattern(db, pat);
        const double fr = FisherScore(stats);
        const double bound = FisherUpperBound(stats.theta(), p);
        if (std::isinf(bound)) continue;
        EXPECT_LE(fr, bound + 1e-6)
            << ItemsetToString(pat.items) << " support=" << pat.support;
    }
}

TEST_P(BoundHoldsTest, OneVsRestBoundHoldsMulticlass) {
    const auto db = MakeDb(GetParam(), 4);
    const auto priors = db.ClassPriors();
    MinerConfig config;
    config.min_sup_rel = 0.08;
    auto mined = FpGrowthMiner().Mine(db, config);
    ASSERT_TRUE(mined.ok());
    std::vector<Pattern> patterns = std::move(*mined);
    AttachMetadata(db, &patterns);
    for (const Pattern& pat : patterns) {
        const auto stats = StatsOfPattern(db, pat);
        // For each class c, the IG of the pattern w.r.t. the indicator of c is
        // bounded by the binary bound with prior p_c (the provable statement).
        for (std::size_t c = 0; c < priors.size(); ++c) {
            FeatureStats ovr;
            ovr.n = stats.n;
            ovr.support = stats.support;
            ovr.class_totals = {stats.class_totals[c], stats.n - stats.class_totals[c]};
            ovr.class_support = {stats.class_support[c],
                                 stats.support - stats.class_support[c]};
            const double ig = InformationGain(ovr);
            EXPECT_LE(ig, IgUpperBoundOneVsRest(stats.theta(), priors[c]) + 1e-9)
                << ItemsetToString(pat.items) << " class " << c;
        }
    }
}

TEST_P(BoundHoldsTest, MulticlassHeuristicBoundHoldsEmpirically) {
    const auto db = MakeDb(GetParam(), 3);
    const auto priors = db.ClassPriors();
    MinerConfig config;
    config.min_sup_rel = 0.08;
    auto mined = FpGrowthMiner().Mine(db, config);
    ASSERT_TRUE(mined.ok());
    std::vector<Pattern> patterns = std::move(*mined);
    AttachMetadata(db, &patterns);
    for (const Pattern& pat : patterns) {
        const auto stats = StatsOfPattern(db, pat);
        const double ig = InformationGain(stats);
        EXPECT_LE(ig, IgUpperBoundMulticlass(stats.theta(), priors) + 1e-9)
            << ItemsetToString(pat.items);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundHoldsTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace dfp
