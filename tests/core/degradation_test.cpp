// Pipeline-level graceful degradation: adaptive min_sup escalation under a
// pattern cap, survival under an expired deadline, cancellation propagation,
// and guard observability (dfp.guard.* counters + run-report events).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/minsup_strategy.hpp"
#include "core/mmrfs.hpp"
#include "core/pipeline.hpp"
#include "ml/nb/naive_bayes.hpp"
#include "ml/svm/svm.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace dfp {
namespace {

// Deterministic dense database whose min_sup = 1 enumeration is explosive.
TransactionDatabase Explosive(std::size_t num_txns = 30,
                              std::size_t num_items = 20) {
    std::vector<std::vector<ItemId>> txns(num_txns);
    std::vector<ClassLabel> labels(num_txns);
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    for (std::size_t t = 0; t < num_txns; ++t) {
        for (ItemId i = 0; i < num_items; ++i) {
            state = state * 6364136223846793005ull + 1442695040888963407ull;
            if ((state >> 33) & 1) txns[t].push_back(i);
        }
        if (txns[t].empty()) txns[t].push_back(static_cast<ItemId>(t % num_items));
        labels[t] = static_cast<ClassLabel>(t % 2);
    }
    return TransactionDatabase::FromTransactions(std::move(txns),
                                                 std::move(labels), num_items, 2);
}

std::vector<Pattern> SingletonCandidates(const TransactionDatabase& db) {
    std::vector<Pattern> candidates;
    for (ItemId i = 0; i < db.num_items(); ++i) {
        Pattern p;
        p.items = {i};
        candidates.push_back(std::move(p));
    }
    AttachMetadata(db, &candidates);
    return candidates;
}

bool HasEvent(const std::vector<GuardEvent>& events, const std::string& kind) {
    return std::any_of(events.begin(), events.end(),
                       [&](const GuardEvent& e) { return e.kind == kind; });
}

TEST(MinSupLadderTest, RungsStrictlyCoarser) {
    const auto ladder =
        MinSupEscalationLadder(1.0 / 30.0, {0.5, 0.5}, 30, 4);
    ASSERT_FALSE(ladder.empty());
    std::size_t prev = 1;  // ceil(θ_start · n)
    for (const auto& rung : ladder) {
        EXPECT_GT(rung.min_sup_abs, prev);
        EXPECT_LE(rung.min_sup_abs, 30u);
        prev = rung.min_sup_abs;
    }
}

TEST(PipelineDegradationTest, FreshPipelineReportsNoDegradation) {
    PatternClassifierPipeline pipeline(PipelineConfig{});
    EXPECT_FALSE(pipeline.budget_report().degraded());
}

TEST(PipelineDegradationTest, PatternCapEscalatesMinSup) {
    GuardLog::Get().Clear();
    const auto db = Explosive();
    PipelineConfig config;
    config.miner.min_sup_abs = 1;  // explosive on purpose
    config.budget.max_patterns = 64;
    PatternClassifierPipeline pipeline(config);
    const Status st =
        pipeline.Train(db, std::make_unique<NaiveBayesClassifier>());
    ASSERT_TRUE(st.ok()) << st;

    const BudgetReport& report = pipeline.budget_report();
    EXPECT_TRUE(report.degraded());
    EXPECT_GE(report.mine_attempts, 2u);
    EXPECT_GE(report.minsup_escalations, 1u);
    EXPECT_GT(report.escalated_min_sup_rel, 0.0);
    EXPECT_TRUE(HasEvent(report.events, "minsup_escalated"));

    // Degradation is visible, not silent: the guard counter moved and the run
    // report drains the same events.
    const auto counters = obs::Registry::Get().Snapshot().counters;
    const auto it = counters.find("dfp.guard.minsup_escalated");
    ASSERT_NE(it, counters.end());
    EXPECT_GE(it->second, 1u);
    const obs::RunReport run = obs::CollectRunReport("degradation-test");
    EXPECT_TRUE(HasEvent(run.guard, "minsup_escalated"));

    // The degraded pipeline is still a working classifier.
    EXPECT_GT(pipeline.Accuracy(db), 0.0);
}

TEST(PipelineDegradationTest, ExpiredDeadlineStillTrains) {
    const auto db = Explosive(40, 20);
    PipelineConfig config;
    config.miner.min_sup_abs = 1;
    config.budget.time_budget_ms = 0.0;  // already expired: worst case
    PatternClassifierPipeline pipeline(config);
    const Status st = pipeline.Train(db, std::make_unique<SvmClassifier>());
    ASSERT_TRUE(st.ok()) << st;

    const BudgetReport& report = pipeline.budget_report();
    EXPECT_EQ(report.mine_breach, BudgetBreach::kDeadline);
    EXPECT_EQ(report.mine_attempts, 1u);  // no clock left: no retry
    EXPECT_TRUE(report.degraded());
    // Predictions still work on whatever was trained.
    (void)pipeline.Predict(db.transaction(0));
}

TEST(PipelineDegradationTest, TightDeadlineCompletes) {
    const auto db = Explosive(40, 20);
    PipelineConfig config;
    config.miner.min_sup_abs = 1;
    config.budget.time_budget_ms = 200.0;
    PatternClassifierPipeline pipeline(config);
    const Status st =
        pipeline.Train(db, std::make_unique<NaiveBayesClassifier>());
    ASSERT_TRUE(st.ok()) << st;
    EXPECT_GE(pipeline.budget_report().mine_attempts, 1u);
    EXPECT_GT(pipeline.Accuracy(db), 0.0);
}

TEST(PipelineDegradationTest, CancellationFailsTraining) {
    const auto db = Explosive();
    CancelToken token;
    token.CancelAfterChecks(1);
    PipelineConfig config;
    config.miner.min_sup_abs = 1;
    config.budget.cancel = &token;
    PatternClassifierPipeline pipeline(config);
    const Status st =
        pipeline.Train(db, std::make_unique<NaiveBayesClassifier>());
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kCancelled);
    EXPECT_EQ(pipeline.budget_report().mine_breach, BudgetBreach::kCancelled);
}

TEST(PipelineDegradationTest, EscalationCanBeDisabled) {
    const auto db = Explosive();
    PipelineConfig config;
    config.miner.min_sup_abs = 1;
    config.budget.max_patterns = 64;
    config.degrade.escalate_min_sup = false;
    PatternClassifierPipeline pipeline(config);
    const Status st =
        pipeline.Train(db, std::make_unique<NaiveBayesClassifier>());
    ASSERT_TRUE(st.ok()) << st;
    const BudgetReport& report = pipeline.budget_report();
    EXPECT_EQ(report.mine_attempts, 1u);
    EXPECT_EQ(report.minsup_escalations, 0u);
    EXPECT_EQ(report.mine_breach, BudgetBreach::kPatternCap);
}

TEST(MmrfsBudgetTest, CancellationDuringScoring) {
    const auto db = Explosive();
    const auto candidates = SingletonCandidates(db);
    CancelToken token;
    token.CancelAfterChecks(1);
    MmrfsConfig config;
    config.budget.cancel = &token;
    const auto result = RunMmrfs(db, candidates, config);
    EXPECT_EQ(result.breach, BudgetBreach::kCancelled);
    EXPECT_TRUE(result.selected.empty());
}

TEST(MmrfsBudgetTest, ExpiredDeadlineStops) {
    const auto db = Explosive();
    const auto candidates = SingletonCandidates(db);
    MmrfsConfig config;
    config.budget.time_budget_ms = 0.0;
    const auto result = RunMmrfs(db, candidates, config);
    EXPECT_EQ(result.breach, BudgetBreach::kDeadline);
}

TEST(MmrfsBudgetTest, CancellationMidSelectionKeepsPrefix) {
    const auto db = Explosive();
    const auto candidates = SingletonCandidates(db);
    CancelToken token;
    // Survive the |F| scoring checks, then fire during greedy selection.
    token.CancelAfterChecks(static_cast<std::int64_t>(candidates.size()) + 2);
    MmrfsConfig config;
    config.coverage_delta = 8;  // force many rounds
    config.budget.cancel = &token;
    const auto result = RunMmrfs(db, candidates, config);
    EXPECT_EQ(result.breach, BudgetBreach::kCancelled);
    // The greedily selected prefix before the breach is preserved.
    EXPECT_LE(result.selected.size(), candidates.size());
}

}  // namespace
}  // namespace dfp
