#include "core/measures.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"

namespace dfp {
namespace {

// Balanced two-class dataset of 8 rows; feature covers rows {0,1,2,3}.
FeatureStats MakeStats(std::size_t n, std::vector<std::size_t> class_totals,
                       std::vector<std::size_t> class_support) {
    FeatureStats s;
    s.n = n;
    s.class_totals = std::move(class_totals);
    s.class_support = std::move(class_support);
    s.support = 0;
    for (auto c : s.class_support) s.support += c;
    return s;
}

TEST(MeasuresTest, PerfectFeatureHasFullGain) {
    // Feature == class indicator: IG = H(C) = 1 bit for balanced classes.
    const auto s = MakeStats(8, {4, 4}, {4, 0});
    EXPECT_NEAR(InformationGain(s), 1.0, 1e-12);
}

TEST(MeasuresTest, IndependentFeatureHasZeroGain) {
    // Feature hits half of each class: no information.
    const auto s = MakeStats(8, {4, 4}, {2, 2});
    EXPECT_NEAR(InformationGain(s), 0.0, 1e-12);
}

TEST(MeasuresTest, HandComputedGain) {
    // n=10, p(c1)=0.4; feature covers 5 rows, 4 of class 1.
    const auto s = MakeStats(10, {6, 4}, {1, 4});
    const double h_c = BinaryEntropy(0.4);
    const double h_cond = 0.5 * BinaryEntropy(4.0 / 5.0) + 0.5 * BinaryEntropy(0.0);
    EXPECT_NEAR(InformationGain(s), h_c - h_cond, 1e-12);
}

TEST(MeasuresTest, ClassEntropyMatchesDistribution) {
    const auto s = MakeStats(8, {4, 4}, {4, 0});
    EXPECT_NEAR(ClassEntropy(s), 1.0, 1e-12);
    const auto s3 = MakeStats(12, {4, 4, 4}, {1, 1, 1});
    EXPECT_NEAR(ClassEntropy(s3), std::log2(3.0), 1e-12);
}

TEST(MeasuresTest, FisherScoreZeroWhenIndependent) {
    const auto s = MakeStats(8, {4, 4}, {2, 2});
    EXPECT_NEAR(FisherScore(s), 0.0, 1e-12);
}

TEST(MeasuresTest, FisherScoreInfiniteOnPerfectSeparation) {
    const auto s = MakeStats(8, {4, 4}, {4, 0});
    EXPECT_TRUE(std::isinf(FisherScore(s)));
}

TEST(MeasuresTest, FisherMatchesPaperEquation5) {
    // Eq. 5: Fr = θ(p−q)² / (p(1−p)(1−θ) − θ(p−q)²), with p = P(c=1),
    // q = P(c=1 | x=1). Use n=20, p=0.5, θ=0.4, q=0.75.
    const auto s = MakeStats(20, {10, 10}, {2, 6});
    const double p = 0.5;
    const double theta = 0.4;
    const double q = 0.75;
    const double z = theta * (p - q) * (p - q);
    const double expected = z / (p * (1 - p) * (1 - theta) - z);
    EXPECT_NEAR(FisherScore(s), expected, 1e-12);
}

TEST(MeasuresTest, GiniGainPositiveForInformativeFeature) {
    EXPECT_GT(GiniGain(MakeStats(8, {4, 4}, {4, 0})), 0.4);
    EXPECT_NEAR(GiniGain(MakeStats(8, {4, 4}, {2, 2})), 0.0, 1e-12);
}

TEST(MeasuresTest, RelevanceDispatch) {
    const auto s = MakeStats(8, {4, 4}, {3, 1});
    EXPECT_DOUBLE_EQ(Relevance(RelevanceMeasure::kInfoGain, s), InformationGain(s));
    EXPECT_DOUBLE_EQ(Relevance(RelevanceMeasure::kFisher, s), FisherScore(s));
    EXPECT_DOUBLE_EQ(Relevance(RelevanceMeasure::kGini, s), GiniGain(s));
}

TEST(MeasuresTest, StatsOfCoverAgainstDatabase) {
    const auto db = TransactionDatabase::FromTransactions(
        {{0, 1}, {0}, {1}, {0, 1}}, {0, 0, 1, 1}, 2, 2);
    const auto s = StatsOfCover(db, db.ItemCover(1));
    EXPECT_EQ(s.n, 4u);
    EXPECT_EQ(s.support, 3u);
    EXPECT_EQ(s.class_totals, (std::vector<std::size_t>{2, 2}));
    EXPECT_EQ(s.class_support, (std::vector<std::size_t>{1, 2}));
}

TEST(MeasuresTest, StatsOfPatternUsesAttachedMetadata) {
    const auto db = TransactionDatabase::FromTransactions(
        {{0, 1}, {0}, {1}, {0, 1}}, {0, 0, 1, 1}, 2, 2);
    std::vector<Pattern> patterns(1);
    patterns[0].items = {0, 1};
    AttachMetadata(db, &patterns);
    const auto s = StatsOfPattern(db, patterns[0]);
    EXPECT_EQ(s.support, 2u);
    EXPECT_EQ(s.class_support, (std::vector<std::size_t>{1, 1}));
    EXPECT_NEAR(InformationGain(s), 0.0, 1e-12);
}

TEST(MeasuresTest, ZeroRowsAreSafe) {
    FeatureStats s;
    s.class_totals = {0, 0};
    s.class_support = {0, 0};
    EXPECT_DOUBLE_EQ(InformationGain(s), 0.0);
    EXPECT_DOUBLE_EQ(FisherScore(s), 0.0);
    EXPECT_DOUBLE_EQ(GiniGain(s), 0.0);
}

}  // namespace
}  // namespace dfp
