#include "core/direct_miner.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/encoder.hpp"
#include "data/synthetic.hpp"
#include "fpm/fpgrowth.hpp"

namespace dfp {
namespace {

TransactionDatabase BinaryDb(std::uint64_t seed) {
    SyntheticSpec spec;
    spec.rows = 200;
    spec.classes = 2;
    spec.attributes = 7;
    spec.arity = 3;
    spec.seed = seed;
    const Dataset data = GenerateSynthetic(spec);
    const auto encoder = ItemEncoder::FromSchema(data);
    return TransactionDatabase::FromDataset(data, *encoder);
}

// Exhaustive reference: IG of every frequent pattern via FP-growth.
std::vector<double> AllIgsSorted(const TransactionDatabase& db,
                                 const MinerConfig& mc) {
    auto mined = FpGrowthMiner().Mine(db, mc);
    EXPECT_TRUE(mined.ok());
    std::vector<Pattern> patterns = std::move(*mined);
    AttachMetadata(db, &patterns);
    std::vector<double> igs;
    for (const Pattern& p : patterns) {
        igs.push_back(InformationGain(StatsOfPattern(db, p)));
    }
    std::sort(igs.rbegin(), igs.rend());
    return igs;
}

TEST(DirectMinerTest, MatchesExhaustiveTopKOnBinaryData) {
    const auto db = BinaryDb(21);
    DirectMinerConfig config;
    config.top_k = 10;
    config.miner.min_sup_rel = 0.08;
    config.miner.max_pattern_len = 4;
    auto top = MineTopKDiscriminative(db, config);
    ASSERT_TRUE(top.ok()) << top.status();
    ASSERT_EQ(top->size(), 10u);

    const auto reference = AllIgsSorted(db, config.miner);
    ASSERT_GE(reference.size(), 10u);
    for (std::size_t i = 0; i < 10; ++i) {
        const double ig = InformationGain(StatsOfPattern(db, (*top)[i]));
        EXPECT_NEAR(ig, reference[i], 1e-9) << "rank " << i;
    }
}

TEST(DirectMinerTest, ResultsSortedByIgDescending) {
    const auto db = BinaryDb(22);
    DirectMinerConfig config;
    config.top_k = 15;
    config.miner.min_sup_rel = 0.1;
    auto top = MineTopKDiscriminative(db, config);
    ASSERT_TRUE(top.ok());
    double prev = 1e9;
    for (const Pattern& p : *top) {
        const double ig = InformationGain(StatsOfPattern(db, p));
        EXPECT_LE(ig, prev + 1e-12);
        prev = ig;
    }
}

TEST(DirectMinerTest, RespectsMinSup) {
    const auto db = BinaryDb(23);
    DirectMinerConfig config;
    config.top_k = 50;
    config.miner.min_sup_rel = 0.2;
    auto top = MineTopKDiscriminative(db, config);
    ASSERT_TRUE(top.ok());
    const std::size_t min_sup = ResolveMinSup(config.miner, db.num_transactions());
    for (const Pattern& p : *top) EXPECT_GE(p.support, min_sup);
}

TEST(DirectMinerTest, PruningActuallyHappens) {
    const auto db = BinaryDb(24);
    DirectMinerConfig config;
    config.top_k = 5;
    config.miner.min_sup_rel = 0.05;
    config.miner.max_pattern_len = 5;
    DirectMinerStats stats;
    auto top = MineTopKDiscriminative(db, config, &stats);
    ASSERT_TRUE(top.ok());
    EXPECT_GT(stats.nodes_explored, 0u);
    EXPECT_GT(stats.nodes_pruned_bound, 0u);
}

TEST(DirectMinerTest, NodeBudgetSurfaces) {
    const auto db = BinaryDb(25);
    DirectMinerConfig config;
    config.top_k = 5;
    config.miner.min_sup_rel = 0.02;
    config.max_nodes = 10;
    const auto top = MineTopKDiscriminative(db, config);
    ASSERT_FALSE(top.ok());
    EXPECT_EQ(top.status().code(), StatusCode::kResourceExhausted);
}

TEST(DirectMinerTest, ExcludeSingletons) {
    const auto db = BinaryDb(26);
    DirectMinerConfig config;
    config.top_k = 10;
    config.miner.min_sup_rel = 0.1;
    config.miner.include_singletons = false;
    auto top = MineTopKDiscriminative(db, config);
    ASSERT_TRUE(top.ok());
    for (const Pattern& p : *top) EXPECT_GE(p.length(), 2u);
}

TEST(SubCoverBoundTest, DominatesEverySubPattern) {
    const auto db = BinaryDb(27);
    MinerConfig mc;
    mc.min_sup_rel = 0.1;
    auto mined = FpGrowthMiner().Mine(db, mc);
    ASSERT_TRUE(mined.ok());
    std::vector<Pattern> patterns = std::move(*mined);
    AttachMetadata(db, &patterns);
    // For every pattern pair (α, β) with β ⊇ α: IG(β) ≤ bound(cover(α)).
    for (const Pattern& alpha : patterns) {
        const double bound = SubCoverIgBound(db, alpha.cover, 1);
        for (const Pattern& beta : patterns) {
            if (!IsSubsetOf(alpha.items, beta.items)) continue;
            const double ig = InformationGain(StatsOfPattern(db, beta));
            EXPECT_LE(ig, bound + 1e-9)
                << ItemsetToString(alpha.items) << " -> "
                << ItemsetToString(beta.items);
        }
    }
}

TEST(SubCoverBoundTest, FullCoverBoundIsClassEntropyCap) {
    const auto db = BinaryDb(28);
    BitVector all(db.num_transactions());
    all.Fill();
    const double bound = SubCoverIgBound(db, all, 1);
    FeatureStats stats;
    stats.n = db.num_transactions();
    stats.class_totals = db.ClassCounts();
    stats.class_support = stats.class_totals;
    stats.support = stats.n;
    EXPECT_LE(bound, ClassEntropy(stats) + 1e-9);
    EXPECT_GT(bound, 0.0);
}

}  // namespace
}  // namespace dfp
