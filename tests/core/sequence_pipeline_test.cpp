#include "core/sequence_pipeline.hpp"

#include <gtest/gtest.h>

#include "ml/dtree/c45.hpp"
#include "ml/nb/naive_bayes.hpp"
#include "ml/svm/svm.hpp"

namespace dfp {
namespace {

SequenceDatabase MakeDb(std::uint64_t seed, std::size_t rows = 400) {
    SequenceSpec spec;
    spec.rows = rows;
    spec.seed = seed;
    spec.carrier_prob = 0.8;
    spec.label_noise = 0.02;
    return GenerateSequences(spec);
}

SequencePipelineConfig SmallConfig() {
    SequencePipelineConfig config;
    config.miner.min_sup_rel = 0.25;
    config.miner.max_pattern_len = 4;
    config.max_features = 60;
    return config;
}

TEST(SequencePipelineTest, BeatsMajorityBaseline) {
    const auto db = MakeDb(1);
    const auto counts = db.ClassCounts();
    const double majority =
        static_cast<double>(*std::max_element(counts.begin(), counts.end())) /
        static_cast<double>(db.size());

    SequenceClassifierPipeline pipeline(SmallConfig());
    ASSERT_TRUE(pipeline.Train(db, std::make_unique<SvmClassifier>()).ok());
    EXPECT_GT(pipeline.Accuracy(db), majority + 0.1);
}

TEST(SequencePipelineTest, GeneralizesToUnseenSequences) {
    const auto train = MakeDb(2, 500);
    SequenceClassifierPipeline pipeline(SmallConfig());
    ASSERT_TRUE(pipeline.Train(train, std::make_unique<SvmClassifier>()).ok());

    // Same generative process, different seed offset for rows: regenerate with
    // the same spec seed keeps the same motifs only if seed matches, so build
    // a holdout by splitting instead.
    std::vector<std::size_t> test_rows;
    for (std::size_t i = 0; i < train.size(); i += 5) test_rows.push_back(i);
    const auto holdout = train.Subset(test_rows);
    EXPECT_GT(pipeline.Accuracy(holdout), 0.7);
}

TEST(SequencePipelineTest, FeaturesHaveMinLengthAndMetadata) {
    const auto db = MakeDb(3);
    SequenceClassifierPipeline pipeline(SmallConfig());
    ASSERT_TRUE(pipeline.Train(db, std::make_unique<C45Classifier>()).ok());
    ASSERT_FALSE(pipeline.features().empty());
    EXPECT_GT(pipeline.num_candidates(), pipeline.features().size());
    for (const auto& f : pipeline.features()) {
        EXPECT_GE(f.items.size(), 2u);
        EXPECT_GT(f.support, 0u);
        EXPECT_GE(f.relevance, 0.0);
    }
}

TEST(SequencePipelineTest, MaxFeaturesRespected) {
    const auto db = MakeDb(4);
    SequencePipelineConfig config = SmallConfig();
    config.max_features = 5;
    SequenceClassifierPipeline pipeline(config);
    ASSERT_TRUE(pipeline.Train(db, std::make_unique<NaiveBayesClassifier>()).ok());
    EXPECT_LE(pipeline.features().size(), 5u);
}

TEST(SequencePipelineTest, ErrorsPropagate) {
    SequenceClassifierPipeline pipeline(SmallConfig());
    EXPECT_FALSE(pipeline.Train(MakeDb(5), nullptr).ok());

    const SequenceDatabase empty({}, {}, 5, 2);
    SequenceClassifierPipeline pipeline2(SmallConfig());
    EXPECT_FALSE(pipeline2.Train(empty, std::make_unique<C45Classifier>()).ok());

    SequencePipelineConfig tiny = SmallConfig();
    tiny.miner.max_patterns = 1;
    tiny.miner.min_sup_rel = 0.01;
    SequenceClassifierPipeline pipeline3(tiny);
    const Status st = pipeline3.Train(MakeDb(6), std::make_unique<C45Classifier>());
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(SequencePipelineTest, GlobalMiningAlsoWorks) {
    const auto db = MakeDb(7);
    SequencePipelineConfig config = SmallConfig();
    config.per_class_mining = false;
    SequenceClassifierPipeline pipeline(config);
    ASSERT_TRUE(pipeline.Train(db, std::make_unique<C45Classifier>()).ok());
    EXPECT_GT(pipeline.Accuracy(db), 0.6);
}

}  // namespace
}  // namespace dfp
