// Span nesting, JSON round-trip, and the disabled (no-collection) fast path.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace dfp::obs {
namespace {

// RAII guard: every test leaves tracing off and the tracer empty.
class TracingFixture : public ::testing::Test {
  protected:
    void SetUp() override {
        Tracer::Get().Clear();
        EnableTracing(true);
    }
    void TearDown() override {
        EnableTracing(false);
        Tracer::Get().Clear();
    }
};

using TraceSpanTest = TracingFixture;

TEST_F(TraceSpanTest, BuildsNestedTree) {
    {
        Span root("train");
        {
            Span mine("mine");
            { Span c0("mine.class_0"); }
            { Span c1("mine.class_1"); }
        }
        { Span select("mmrfs"); }
        root.Annotate("candidates", 12.0);
    }
    const auto& roots = Tracer::Get().roots();
    ASSERT_EQ(roots.size(), 1u);
    const SpanNode& root = *roots[0];
    EXPECT_EQ(root.name, "train");
    EXPECT_GE(root.seconds, 0.0);
    ASSERT_EQ(root.children.size(), 2u);
    EXPECT_EQ(root.children[0]->name, "mine");
    ASSERT_EQ(root.children[0]->children.size(), 2u);
    EXPECT_EQ(root.children[0]->children[0]->name, "mine.class_0");
    EXPECT_EQ(root.children[0]->children[1]->name, "mine.class_1");
    EXPECT_EQ(root.children[1]->name, "mmrfs");
    ASSERT_EQ(root.annotations.size(), 1u);
    EXPECT_EQ(root.annotations[0].first, "candidates");
    EXPECT_DOUBLE_EQ(root.annotations[0].second, 12.0);
    EXPECT_EQ(root.TreeSize(), 5u);
    // Parent time covers its children.
    EXPECT_GE(root.seconds,
              root.children[0]->seconds + root.children[1]->seconds);
}

TEST_F(TraceSpanTest, SequentialRootsAccumulateInOrder) {
    { Span a("first"); }
    { Span b("second"); }
    const auto& roots = Tracer::Get().roots();
    ASSERT_EQ(roots.size(), 2u);
    EXPECT_EQ(roots[0]->name, "first");
    EXPECT_EQ(roots[1]->name, "second");
    EXPECT_EQ(Tracer::Get().depth(), 0u);
}

TEST_F(TraceSpanTest, TakeRootsDrainsTheTracer) {
    { Span a("run"); }
    auto taken = Tracer::Get().TakeRoots();
    ASSERT_EQ(taken.size(), 1u);
    EXPECT_EQ(taken[0]->name, "run");
    EXPECT_TRUE(Tracer::Get().roots().empty());
}

TEST_F(TraceSpanTest, JsonRoundTripsStructure) {
    {
        Span root("train");
        root.Annotate("rows", 800.0);
        {
            Span mine("mine");
            mine.Annotate("patterns", 42.0);
        }
        { Span learn("learn"); }
    }
    std::ostringstream out;
    WriteSpanJson(out, *Tracer::Get().roots()[0]);

    const auto parsed = ParseJson(out.str());
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    const JsonValue& root = *parsed;
    ASSERT_TRUE(root.is_object());
    ASSERT_NE(root.Find("name"), nullptr);
    EXPECT_EQ(root.Find("name")->string(), "train");
    ASSERT_NE(root.Find("seconds"), nullptr);
    EXPECT_GE(root.Find("seconds")->number(), 0.0);
    const JsonValue* annotations = root.Find("annotations");
    ASSERT_NE(annotations, nullptr);
    ASSERT_NE(annotations->Find("rows"), nullptr);
    EXPECT_DOUBLE_EQ(annotations->Find("rows")->number(), 800.0);
    const JsonValue* children = root.Find("children");
    ASSERT_NE(children, nullptr);
    ASSERT_TRUE(children->is_array());
    ASSERT_EQ(children->array().size(), 2u);
    EXPECT_EQ(children->array()[0].Find("name")->string(), "mine");
    EXPECT_DOUBLE_EQ(
        children->array()[0].Find("annotations")->Find("patterns")->number(),
        42.0);
    EXPECT_EQ(children->array()[1].Find("name")->string(), "learn");
}

TEST_F(TraceSpanTest, DisabledTracingCollectsNothing) {
    EnableTracing(false);
    {
        Span root("ignored");
        { Span child("also_ignored"); }
        root.Annotate("k", 1.0);  // must be a no-op, not a crash
        EXPECT_GE(root.ElapsedSeconds(), 0.0);  // timing still works
    }
    EXPECT_TRUE(Tracer::Get().roots().empty());
    EXPECT_EQ(Tracer::Get().depth(), 0u);
}

TEST_F(TraceSpanTest, SpansOpenedWhileDisabledStayDetached) {
    EnableTracing(false);
    Span outer("outer");  // not collected: tracing was off at construction
    EnableTracing(true);
    { Span inner("inner"); }  // becomes its own root, not a child of `outer`
    const auto& roots = Tracer::Get().roots();
    ASSERT_EQ(roots.size(), 1u);
    EXPECT_EQ(roots[0]->name, "inner");
}

TEST(TraceJsonTest, ParserRejectsGarbage) {
    EXPECT_FALSE(ParseJson("{\"unterminated\": ").ok());
    EXPECT_FALSE(ParseJson("{} trailing").ok());
    EXPECT_FALSE(ParseJson("{1: 2}").ok());
    EXPECT_TRUE(ParseJson(" { \"a\" : [1, 2.5, null, true, \"s\"] } ").ok());
}

}  // namespace
}  // namespace dfp::obs
