#include "core/redundancy.hpp"

#include <gtest/gtest.h>

namespace dfp {
namespace {

BitVector Bits(std::size_t size, std::initializer_list<std::size_t> on) {
    BitVector v(size);
    for (std::size_t i : on) v.Set(i);
    return v;
}

TEST(JaccardTest, IdenticalCovers) {
    const auto a = Bits(10, {1, 2, 3});
    EXPECT_DOUBLE_EQ(CoverJaccard(a, a), 1.0);
}

TEST(JaccardTest, DisjointCovers) {
    EXPECT_DOUBLE_EQ(CoverJaccard(Bits(10, {1, 2}), Bits(10, {3, 4})), 0.0);
}

TEST(JaccardTest, PartialOverlap) {
    // |∩| = 1, |∪| = 3.
    EXPECT_NEAR(CoverJaccard(Bits(10, {1, 2}), Bits(10, {2, 3})), 1.0 / 3.0, 1e-12);
}

TEST(JaccardTest, BothEmpty) {
    EXPECT_DOUBLE_EQ(CoverJaccard(Bits(10, {}), Bits(10, {})), 0.0);
}

TEST(RedundancyTest, Equation9Value) {
    Pattern a;
    Pattern b;
    a.cover = Bits(10, {0, 1, 2, 3});
    b.cover = Bits(10, {2, 3, 4, 5});
    // Jaccard = 2/6; min(S) = 0.4.
    EXPECT_NEAR(Redundancy(a, b, 0.9, 0.4), (2.0 / 6.0) * 0.4, 1e-12);
}

TEST(RedundancyTest, NonClosedPatternFullyRedundantWithClosure) {
    // Same cover (the non-closed/closure relationship) → redundancy equals the
    // weaker relevance entirely: nothing marginal is left.
    Pattern sub;
    Pattern closed;
    sub.cover = Bits(10, {1, 4, 7});
    closed.cover = Bits(10, {1, 4, 7});
    EXPECT_DOUBLE_EQ(Redundancy(sub, closed, 0.35, 0.35), 0.35);
}

TEST(RedundancyTest, SymmetricInArguments) {
    Pattern a;
    Pattern b;
    a.cover = Bits(12, {0, 1, 2});
    b.cover = Bits(12, {2, 3});
    EXPECT_DOUBLE_EQ(Redundancy(a, b, 0.5, 0.7), Redundancy(b, a, 0.7, 0.5));
}

}  // namespace
}  // namespace dfp
