#include "core/minsup_strategy.hpp"

#include <gtest/gtest.h>

#include "common/math_util.hpp"
#include "core/bounds.hpp"

namespace dfp {
namespace {

TEST(MinSupStrategyTest, BoundAtThetaStarRespectsThreshold) {
    const std::vector<double> priors = {0.4, 0.6};
    for (double ig0 : {0.02, 0.05, 0.1, 0.3}) {
        const auto rec = RecommendMinSup(ig0, priors, 1000);
        EXPECT_LE(rec.bound_at_theta_star, ig0 + 1e-9) << "ig0=" << ig0;
        EXPECT_GE(rec.theta_star, 0.0);
        EXPECT_LE(rec.theta_star, 0.4);
    }
}

TEST(MinSupStrategyTest, ThetaStarIsMaximal) {
    // Slightly above θ* the bound must exceed IG0 (θ* is the arg max).
    const std::vector<double> priors = {0.4, 0.6};
    const double ig0 = 0.1;
    const auto rec = RecommendMinSup(ig0, priors, 1000);
    ASSERT_GT(rec.theta_star, 0.0);
    ASSERT_LT(rec.theta_star, 0.4 - 1e-3);
    EXPECT_GT(IgUpperBound(rec.theta_star + 1e-3, 0.4), ig0);
}

TEST(MinSupStrategyTest, LargerThresholdLargerTheta) {
    const std::vector<double> priors = {0.3, 0.7};
    const auto lo = RecommendMinSup(0.02, priors, 500);
    const auto hi = RecommendMinSup(0.2, priors, 500);
    EXPECT_LT(lo.theta_star, hi.theta_star);
    EXPECT_LE(lo.min_sup_abs, hi.min_sup_abs);
}

TEST(MinSupStrategyTest, HugeThresholdSaturatesAtPrior) {
    // If IG0 >= H(C) every support is filterable; θ* caps at min(p, 1−p).
    const std::vector<double> priors = {0.3, 0.7};
    const auto rec = RecommendMinSup(2.0, priors, 100);
    EXPECT_NEAR(rec.theta_star, 0.3, 1e-6);
}

TEST(MinSupStrategyTest, ZeroThresholdMeansMineEverything) {
    const std::vector<double> priors = {0.5, 0.5};
    const auto rec = RecommendMinSup(0.0, priors, 100);
    EXPECT_NEAR(rec.theta_star, 0.0, 1e-6);
    EXPECT_EQ(rec.min_sup_abs, 1u);  // clamped
}

TEST(MinSupStrategyTest, AbsoluteThresholdIsCeiled) {
    const std::vector<double> priors = {0.4, 0.6};
    const auto rec = RecommendMinSup(0.1, priors, 730);
    EXPECT_EQ(rec.min_sup_abs,
              static_cast<std::size_t>(std::ceil(rec.theta_star * 730)));
}

TEST(MinSupStrategyTest, MulticlassUsesSmallestPrior) {
    // The binding constraint comes from the rarest class.
    const std::vector<double> priors = {0.1, 0.3, 0.6};
    const auto rec = RecommendMinSup(10.0, priors, 1000);
    EXPECT_NEAR(rec.theta_star, 0.1, 1e-6);
}

TEST(MinSupStrategyFisherTest, BoundRespectedAndMonotone) {
    const std::vector<double> priors = {0.4, 0.6};
    for (double f0 : {0.05, 0.2, 1.0}) {
        const auto rec = RecommendMinSupFisher(f0, priors, 1000);
        EXPECT_LE(rec.bound_at_theta_star, f0 + 1e-6);
        EXPECT_LE(FisherUpperBound(rec.theta_star, 0.4), f0 + 1e-6);
    }
    const auto lo = RecommendMinSupFisher(0.05, priors, 1000);
    const auto hi = RecommendMinSupFisher(1.0, priors, 1000);
    EXPECT_LT(lo.theta_star, hi.theta_star);
}

TEST(MinSupStrategyTest, SafetyGuarantee) {
    // The paper's guarantee: every pattern with support ≤ θ* has IG ≤ IG0, so
    // mining at min_sup = θ* loses nothing w.r.t. an IG0 feature filter.
    const std::vector<double> priors = {0.45, 0.55};
    const double ig0 = 0.15;
    const auto rec = RecommendMinSup(ig0, priors, 1000);
    for (double theta = 0.001; theta <= rec.theta_star; theta += 0.001) {
        EXPECT_LE(IgUpperBound(theta, 0.45), ig0 + 1e-9) << "theta=" << theta;
    }
}

TEST(IgBoundCurveTest, CurveShape) {
    const auto curve = IgBoundCurve({0.5, 0.5}, 101);
    ASSERT_EQ(curve.size(), 101u);
    EXPECT_DOUBLE_EQ(curve.front().first, 0.0);
    EXPECT_DOUBLE_EQ(curve.back().first, 1.0);
    EXPECT_NEAR(curve.front().second, 0.0, 1e-9);
    EXPECT_NEAR(curve.back().second, 0.0, 1e-9);
    // Peak of 1 bit at θ = 0.5 for balanced binary classes.
    EXPECT_NEAR(curve[50].second, 1.0, 1e-9);
}

}  // namespace
}  // namespace dfp
