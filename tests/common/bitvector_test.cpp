#include "common/bitvector.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dfp {
namespace {

TEST(BitVectorTest, StartsEmpty) {
    BitVector v(100);
    EXPECT_EQ(v.size(), 100u);
    EXPECT_EQ(v.Count(), 0u);
    for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(v.Test(i));
}

TEST(BitVectorTest, SetClearTest) {
    BitVector v(130);
    v.Set(0);
    v.Set(63);
    v.Set(64);
    v.Set(129);
    EXPECT_TRUE(v.Test(0));
    EXPECT_TRUE(v.Test(63));
    EXPECT_TRUE(v.Test(64));
    EXPECT_TRUE(v.Test(129));
    EXPECT_FALSE(v.Test(1));
    EXPECT_EQ(v.Count(), 4u);
    v.Clear(63);
    EXPECT_FALSE(v.Test(63));
    EXPECT_EQ(v.Count(), 3u);
}

TEST(BitVectorTest, FillRespectsTailMask) {
    BitVector v(70);
    v.Fill();
    EXPECT_EQ(v.Count(), 70u);
    for (std::size_t i = 0; i < 70; ++i) EXPECT_TRUE(v.Test(i));
}

TEST(BitVectorTest, FillOnWordBoundary) {
    BitVector v(128);
    v.Fill();
    EXPECT_EQ(v.Count(), 128u);
}

TEST(BitVectorTest, ResetClearsAll) {
    BitVector v(70);
    v.Fill();
    v.Reset();
    EXPECT_EQ(v.Count(), 0u);
}

TEST(BitVectorTest, AndOrXor) {
    BitVector a(10);
    BitVector b(10);
    a.Set(1);
    a.Set(2);
    b.Set(2);
    b.Set(3);
    EXPECT_EQ((a & b).ToIndices(), (std::vector<std::uint32_t>{2}));
    EXPECT_EQ((a | b).ToIndices(), (std::vector<std::uint32_t>{1, 2, 3}));
    EXPECT_EQ((a ^ b).ToIndices(), (std::vector<std::uint32_t>{1, 3}));
}

TEST(BitVectorTest, AndNot) {
    BitVector a(10);
    BitVector b(10);
    a.Set(1);
    a.Set(2);
    b.Set(2);
    a.AndNot(b);
    EXPECT_EQ(a.ToIndices(), (std::vector<std::uint32_t>{1}));
}

TEST(BitVectorTest, CountingWithoutMaterializing) {
    Rng rng(11);
    BitVector a(300);
    BitVector b(300);
    for (std::size_t i = 0; i < 300; ++i) {
        if (rng.Bernoulli(0.4)) a.Set(i);
        if (rng.Bernoulli(0.4)) b.Set(i);
    }
    EXPECT_EQ(a.AndCount(b), (a & b).Count());
    EXPECT_EQ(a.OrCount(b), (a | b).Count());
}

TEST(BitVectorTest, SubsetAndDisjoint) {
    BitVector small(100);
    BitVector big(100);
    BitVector other(100);
    small.Set(5);
    small.Set(70);
    big.Set(5);
    big.Set(70);
    big.Set(90);
    other.Set(1);
    EXPECT_TRUE(small.IsSubsetOf(big));
    EXPECT_FALSE(big.IsSubsetOf(small));
    EXPECT_TRUE(small.IsSubsetOf(small));
    EXPECT_TRUE(small.IsDisjointWith(other));
    EXPECT_FALSE(small.IsDisjointWith(big));
}

TEST(BitVectorTest, ForEachVisitsAscending) {
    BitVector v(200);
    v.Set(3);
    v.Set(64);
    v.Set(199);
    std::vector<std::uint32_t> seen;
    v.ForEach([&seen](std::uint32_t i) { seen.push_back(i); });
    EXPECT_EQ(seen, (std::vector<std::uint32_t>{3, 64, 199}));
}

TEST(BitVectorTest, EqualityAndHash) {
    BitVector a(64);
    BitVector b(64);
    a.Set(10);
    b.Set(10);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.Hash(), b.Hash());
    b.Set(11);
    EXPECT_NE(a, b);
    EXPECT_NE(a.Hash(), b.Hash());
}

TEST(BitVectorTest, ToStringMarksBits) {
    BitVector v(5);
    v.Set(0);
    v.Set(4);
    EXPECT_EQ(v.ToString(), "10001");
}

TEST(BitVectorTest, EmptyVector) {
    BitVector v;
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.Count(), 0u);
    EXPECT_TRUE(v.ToIndices().empty());
}

}  // namespace
}  // namespace dfp
