#include "common/string_util.hpp"

#include <gtest/gtest.h>

namespace dfp {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
    EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
    EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(Split("a,", ','), (std::vector<std::string>{"a", ""}));
}

TEST(TrimTest, RemovesEdgesOnly) {
    EXPECT_EQ(Trim("  x y  "), "x y");
    EXPECT_EQ(Trim("\t\nabc\r "), "abc");
    EXPECT_EQ(Trim(""), "");
    EXPECT_EQ(Trim("   "), "");
}

TEST(JoinTest, JoinsWithSeparator) {
    EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(Join({}, ","), "");
    EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(ParseDoubleTest, AcceptsNumbers) {
    double v = 0.0;
    EXPECT_TRUE(ParseDouble("3.25", &v));
    EXPECT_DOUBLE_EQ(v, 3.25);
    EXPECT_TRUE(ParseDouble(" -1e3 ", &v));
    EXPECT_DOUBLE_EQ(v, -1000.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
    double v = 0.0;
    EXPECT_FALSE(ParseDouble("abc", &v));
    EXPECT_FALSE(ParseDouble("1.2x", &v));
    EXPECT_FALSE(ParseDouble("", &v));
    EXPECT_FALSE(ParseDouble("nan", &v));  // non-finite rejected
}

TEST(ParseIntTest, AcceptsAndRejects) {
    long v = 0;
    EXPECT_TRUE(ParseInt("42", &v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(ParseInt(" -7 ", &v));
    EXPECT_EQ(v, -7);
    EXPECT_FALSE(ParseInt("4.5", &v));
    EXPECT_FALSE(ParseInt("x", &v));
}

TEST(StrFormatTest, FormatsLikePrintf) {
    EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
    EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
    EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace dfp
