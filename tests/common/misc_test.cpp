// Tests for the small utilities: logging, stopwatch, serialization tokens.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "common/serialize.hpp"
#include "common/stopwatch.hpp"

namespace dfp {
namespace {

TEST(LoggingTest, LevelGate) {
    const LogLevel original = GetLogLevel();
    SetLogLevel(LogLevel::kError);
    EXPECT_EQ(GetLogLevel(), LogLevel::kError);
    // Emitting below the gate is a no-op (no crash, nothing observable).
    LogMessage(LogLevel::kDebug, "ignored");
    SetLogLevel(LogLevel::kOff);
    LogMessage(LogLevel::kError, "also ignored");
    SetLogLevel(original);
}

TEST(LoggingTest, ParseLogLevelAcceptsNamesAndNumbers) {
    LogLevel level = LogLevel::kInfo;
    EXPECT_TRUE(ParseLogLevel("debug", &level));
    EXPECT_EQ(level, LogLevel::kDebug);
    EXPECT_TRUE(ParseLogLevel("WARN", &level));
    EXPECT_EQ(level, LogLevel::kWarn);
    EXPECT_TRUE(ParseLogLevel("warning", &level));
    EXPECT_EQ(level, LogLevel::kWarn);
    EXPECT_TRUE(ParseLogLevel("Error", &level));
    EXPECT_EQ(level, LogLevel::kError);
    EXPECT_TRUE(ParseLogLevel("off", &level));
    EXPECT_EQ(level, LogLevel::kOff);
    EXPECT_TRUE(ParseLogLevel("0", &level));
    EXPECT_EQ(level, LogLevel::kDebug);
    EXPECT_FALSE(ParseLogLevel("loud", &level));
    EXPECT_FALSE(ParseLogLevel("", &level));
}

TEST(LoggingTest, InjectedSinkCapturesMessages) {
    const LogLevel original = GetLogLevel();
    SetLogLevel(LogLevel::kInfo);
    std::vector<std::pair<LogLevel, std::string>> captured;
    SetLogSink([&captured](LogLevel level, const std::string& message) {
        captured.emplace_back(level, message);
    });
    LogMessage(LogLevel::kInfo, "hello");
    LogMessage(LogLevel::kDebug, "filtered out");
    LogMessage(LogLevel::kWarn, "careful");
    SetLogSink(nullptr);  // restore stderr
    SetLogLevel(original);

    ASSERT_EQ(captured.size(), 2u);
    EXPECT_EQ(captured[0].first, LogLevel::kInfo);
    EXPECT_EQ(captured[0].second, "hello");
    EXPECT_EQ(captured[1].first, LogLevel::kWarn);
    EXPECT_EQ(captured[1].second, "careful");
}

TEST(LoggingTest, ConcurrentLoggingIsSafe) {
    const LogLevel original = GetLogLevel();
    SetLogLevel(LogLevel::kInfo);
    std::atomic<int> delivered{0};
    SetLogSink([&delivered](LogLevel, const std::string&) {
        delivered.fetch_add(1, std::memory_order_relaxed);
    });
    constexpr int kThreads = 4;
    constexpr int kMessages = 250;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kMessages; ++i) {
                LogMessage(LogLevel::kInfo, "burst");
            }
        });
    }
    for (auto& t : threads) t.join();
    SetLogSink(nullptr);
    SetLogLevel(original);
    EXPECT_EQ(delivered.load(), kThreads * kMessages);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
    Stopwatch watch;
    // Busy-wait a tiny bit; elapsed must be non-negative and monotone.
    const double t0 = watch.ElapsedSeconds();
    double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink += i;
    volatile double keep = sink;
    (void)keep;
    const double t1 = watch.ElapsedSeconds();
    EXPECT_GE(t0, 0.0);
    EXPECT_GE(t1, t0);
    watch.Reset();
    EXPECT_LT(watch.ElapsedSeconds(), t1 + 1.0);
    EXPECT_GE(watch.ElapsedMillis(), 0.0);
}

TEST(SerializeTest, DoubleRoundTripsExactly) {
    std::stringstream stream;
    const double values[] = {0.1, -1.0 / 3.0, 1e-300, 12345.678901234567};
    for (double v : values) {
        WriteDouble(stream, v);
        stream << ' ';
    }
    TokenReader reader(stream);
    for (double v : values) {
        double back = 0.0;
        ASSERT_TRUE(reader.Read(&back).ok());
        EXPECT_EQ(back, v);
    }
}

TEST(SerializeTest, ExpectDetectsMismatch) {
    std::stringstream stream("hello world");
    TokenReader reader(stream);
    EXPECT_TRUE(reader.Expect("hello").ok());
    const Status st = reader.Expect("mars");
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(SerializeTest, EndOfStreamIsError) {
    std::stringstream stream("42");
    TokenReader reader(stream);
    std::size_t v = 0;
    EXPECT_TRUE(reader.Read(&v).ok());
    EXPECT_EQ(v, 42u);
    EXPECT_FALSE(reader.Read(&v).ok());
}

TEST(SerializeTest, NegativeCountRejected) {
    std::stringstream stream("-3");
    TokenReader reader(stream);
    std::size_t v = 0;
    EXPECT_FALSE(reader.Read(&v).ok());
}

TEST(SerializeTest, ReadDoublesBulk) {
    std::stringstream stream("1 2 3");
    TokenReader reader(stream);
    std::vector<double> v;
    ASSERT_TRUE(reader.ReadDoubles(3, &v).ok());
    EXPECT_EQ(v, (std::vector<double>{1.0, 2.0, 3.0}));
    EXPECT_FALSE(reader.ReadDoubles(1, &v).ok());  // exhausted
}

}  // namespace
}  // namespace dfp
