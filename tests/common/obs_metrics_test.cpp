// Counter/gauge/histogram semantics, snapshot isolation, concurrent updates.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace dfp::obs {
namespace {

TEST(ObsCounterTest, IncrementsAndResets) {
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.Inc();
    c.Inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.Reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGaugeTest, SetAddAndReset) {
    Gauge g;
    g.Set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.Add(0.5);
    EXPECT_DOUBLE_EQ(g.value(), 3.0);
    g.Set(-1.0);  // last write wins
    EXPECT_DOUBLE_EQ(g.value(), -1.0);
    g.Reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsHistogramTest, BucketsObservationsByUpperBound) {
    Histogram h({1.0, 10.0, 100.0});
    h.Observe(0.5);    // <= 1      -> bucket 0
    h.Observe(1.0);    // <= 1      -> bucket 0 (bounds are inclusive)
    h.Observe(5.0);    // <= 10     -> bucket 1
    h.Observe(1000.0); // overflow  -> bucket 3
    const HistogramData data = h.Read();
    ASSERT_EQ(data.bucket_counts.size(), 4u);
    EXPECT_EQ(data.bucket_counts[0], 2u);
    EXPECT_EQ(data.bucket_counts[1], 1u);
    EXPECT_EQ(data.bucket_counts[2], 0u);
    EXPECT_EQ(data.bucket_counts[3], 1u);
    EXPECT_EQ(data.count, 4u);
    EXPECT_DOUBLE_EQ(data.sum, 1006.5);
    h.Reset();
    EXPECT_EQ(h.Read().count, 0u);
}

TEST(ObsHistogramTest, EmptyBoundsFallBackToDefaults) {
    Histogram h({});
    const HistogramData data = h.Read();
    EXPECT_EQ(data.bounds, Histogram::DefaultBounds());
    EXPECT_EQ(data.bucket_counts.size(), data.bounds.size() + 1);
}

TEST(ObsRegistryTest, ReturnsStableReferencesByName) {
    auto& registry = Registry::Get();
    Counter& a = registry.GetCounter("dfp.test.registry.stable");
    Counter& b = registry.GetCounter("dfp.test.registry.stable");
    EXPECT_EQ(&a, &b);
    Gauge& g1 = registry.GetGauge("dfp.test.registry.stable");  // distinct kind
    Gauge& g2 = registry.GetGauge("dfp.test.registry.stable");
    EXPECT_EQ(&g1, &g2);
}

TEST(ObsRegistryTest, SnapshotIsAnIsolatedCopy) {
    auto& registry = Registry::Get();
    Counter& c = registry.GetCounter("dfp.test.snapshot.counter");
    c.Reset();
    c.Inc(7);
    const MetricsSnapshot snap = registry.Snapshot();
    ASSERT_TRUE(snap.counters.contains("dfp.test.snapshot.counter"));
    EXPECT_EQ(snap.counters.at("dfp.test.snapshot.counter"), 7u);
    // Mutating the live metric must not change the already-taken snapshot.
    c.Inc(100);
    EXPECT_EQ(snap.counters.at("dfp.test.snapshot.counter"), 7u);
    EXPECT_EQ(registry.Snapshot().counters.at("dfp.test.snapshot.counter"),
              107u);
}

TEST(ObsRegistryTest, HistogramBoundsFixedAtFirstRegistration) {
    auto& registry = Registry::Get();
    Histogram& h1 =
        registry.GetHistogram("dfp.test.hist.bounds", {1.0, 2.0});
    Histogram& h2 =
        registry.GetHistogram("dfp.test.hist.bounds", {99.0});  // ignored
    EXPECT_EQ(&h1, &h2);
    EXPECT_EQ(h2.Read().bounds, (std::vector<double>{1.0, 2.0}));
}

TEST(ObsRegistryTest, ResetValuesKeepsNamesButZeroes) {
    auto& registry = Registry::Get();
    registry.GetCounter("dfp.test.reset.counter").Inc(5);
    registry.GetGauge("dfp.test.reset.gauge").Set(5.0);
    registry.ResetValues();
    const MetricsSnapshot snap = registry.Snapshot();
    EXPECT_EQ(snap.counters.at("dfp.test.reset.counter"), 0u);
    EXPECT_DOUBLE_EQ(snap.gauges.at("dfp.test.reset.gauge"), 0.0);
}

TEST(ObsRegistryTest, ConcurrentIncrementsAreLossless) {
    auto& registry = Registry::Get();
    Counter& c = registry.GetCounter("dfp.test.concurrent.counter");
    c.Reset();
    Histogram& h = registry.GetHistogram("dfp.test.concurrent.hist", {0.5});
    h.Reset();
    constexpr int kThreads = 8;
    constexpr int kIncrements = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c, &h] {
            for (int i = 0; i < kIncrements; ++i) {
                c.Inc();
                h.Observe(i % 2 == 0 ? 0.25 : 1.0);
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
    const HistogramData data = h.Read();
    EXPECT_EQ(data.count, static_cast<std::uint64_t>(kThreads) * kIncrements);
    EXPECT_EQ(data.bucket_counts[0] + data.bucket_counts[1], data.count);
}

// Regression: Histogram::Read() used to load `count`, `sum`, and the bucket
// array independently, so a snapshot taken during a concurrent Observe could
// report count != sum-of-buckets. Read() now derives count/sum from the same
// bucket loads, so every snapshot is internally consistent even while
// writers are mid-Observe. Run under TSan (DFP_SANITIZE=tsan) to also prove
// the accesses are race-annotated, not just numerically coherent.
TEST(ObsHistogramTest, ReadIsInternallyConsistentUnderConcurrentObserve) {
    Histogram h({0.5, 5.0});
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < 4; ++w) {
        writers.emplace_back([&h, &stop] {
            int i = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                h.Observe(i++ % 3 == 0 ? 0.25 : 1.0);
            }
        });
    }
    for (int round = 0; round < 2000; ++round) {
        const HistogramData data = h.Read();
        std::uint64_t bucket_total = 0;
        for (const std::uint64_t b : data.bucket_counts) bucket_total += b;
        // The invariant the exporters rely on: +Inf bucket == _count.
        EXPECT_EQ(bucket_total, data.count) << "round " << round;
    }
    stop.store(true);
    for (auto& w : writers) w.join();
}

// Regression: Registry::ResetValues() used to zero count/sum/buckets as
// separate non-atomic stores, racing with Observe. It now goes through the
// same atomic slots as Observe/Read, so resetting while writers are active
// is safe (the final totals are unknowable mid-race, but every intermediate
// Read stays consistent and nothing crashes or tears under TSan).
TEST(ObsRegistryTest, ResetValuesIsSafeAgainstConcurrentObserve) {
    auto& registry = Registry::Get();
    Histogram& h =
        registry.GetHistogram("dfp.test.reset.race.hist", {0.5, 5.0});
    Counter& c = registry.GetCounter("dfp.test.reset.race.counter");
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < 4; ++w) {
        writers.emplace_back([&h, &c, &stop] {
            int i = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                h.Observe(i++ % 2 == 0 ? 0.25 : 10.0);
                c.Inc();
            }
        });
    }
    for (int round = 0; round < 500; ++round) {
        registry.ResetValues();
        const HistogramData data = h.Read();
        std::uint64_t bucket_total = 0;
        for (const std::uint64_t b : data.bucket_counts) bucket_total += b;
        EXPECT_EQ(bucket_total, data.count) << "round " << round;
    }
    stop.store(true);
    for (auto& w : writers) w.join();
    registry.ResetValues();
    EXPECT_EQ(h.Read().count, 0u);
    EXPECT_EQ(c.value(), 0u);
}

TEST(ObsRegistryTest, ConcurrentRegistrationReturnsOneMetricPerName) {
    auto& registry = Registry::Get();
    constexpr int kThreads = 8;
    std::vector<Counter*> seen(kThreads, nullptr);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&registry, &seen, t] {
            seen[static_cast<std::size_t>(t)] =
                &registry.GetCounter("dfp.test.concurrent.registration");
        });
    }
    for (auto& t : threads) t.join();
    for (int t = 1; t < kThreads; ++t) {
        EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
    }
}

}  // namespace
}  // namespace dfp::obs
