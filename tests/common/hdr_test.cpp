// obs/hdr: log-linear layout math, quantile accuracy against exact sorted
// values (the documented relative-error bound), sharded concurrent
// recording, snapshot merging, and trailing-window rotation.
#include "obs/hdr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/rng.hpp"

namespace dfp::obs {
namespace {

TEST(HdrLayoutTest, BucketsCoverRangeInOrder) {
    const HdrLayout layout = HdrLayout::FromConfig(HdrConfig{});
    ASSERT_GT(layout.num_buckets, 0u);
    // Lower bounds are strictly increasing and every bound maps back into
    // its own bucket.
    double prev = -1.0;
    for (std::size_t i = 0; i < layout.num_buckets; ++i) {
        const double lo = layout.LowerBound(i);
        EXPECT_GT(lo, prev) << "bucket " << i;
        prev = lo;
    }
    // Spot values round-trip through IndexFor/LowerBound.
    for (const double v : {0.001, 0.0017, 0.01, 0.5, 1.0, 3.14, 250.0, 5e4}) {
        const std::size_t idx = layout.IndexFor(v);
        ASSERT_LT(idx, layout.num_buckets) << v;
        EXPECT_GE(v, layout.LowerBound(idx)) << v;
        if (idx + 1 < layout.num_buckets) {
            EXPECT_LT(v, layout.LowerBound(idx + 1)) << v;
        }
    }
}

TEST(HdrLayoutTest, UnderflowAndOverflowClampToEdgeBuckets) {
    const HdrLayout layout = HdrLayout::FromConfig(HdrConfig{});
    EXPECT_EQ(layout.IndexFor(0.0), 0u);
    EXPECT_EQ(layout.IndexFor(-5.0), 0u);
    EXPECT_EQ(layout.IndexFor(1e-9), 0u);
    EXPECT_EQ(layout.IndexFor(1e12), layout.num_buckets - 1);
}

TEST(HdrHistogramTest, CountSumAndMean) {
    HdrHistogram hist{HdrConfig{}};
    hist.Record(1.0);
    hist.Record(2.0);
    hist.Record(3.0);
    const HdrSnapshot snap = hist.Snapshot();
    EXPECT_EQ(snap.count, 3u);
    EXPECT_NEAR(snap.sum, 6.0, 1e-9);
    EXPECT_NEAR(snap.mean(), 2.0, 1e-9);
}

TEST(HdrHistogramTest, EmptySnapshotIsZero) {
    HdrHistogram hist{HdrConfig{}};
    const HdrSnapshot snap = hist.Snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.sum, 0.0);
    EXPECT_EQ(snap.mean(), 0.0);
    EXPECT_EQ(snap.ValueAtQuantile(0.99), 0.0);
}

double ExactQuantile(std::vector<double>& sorted, double q) {
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

// The acceptance criterion: HDR quantiles agree with exact sorted-array
// quantiles within the layout's documented relative-error bound (plus a hair
// of rank slack at the extreme tail, where the exact estimator itself jumps
// between adjacent order statistics).
TEST(HdrHistogramTest, QuantilesMatchExactWithinDocumentedBound) {
    HdrConfig config;
    config.subbuckets_per_octave = 64;
    HdrHistogram hist{config};
    Rng rng(42);
    std::vector<double> values;
    values.reserve(200000);
    for (int i = 0; i < 200000; ++i) {
        // Log-normal-ish latencies: most around 0.1 ms, tail into hundreds.
        const double v = 0.05 * std::exp(2.0 * rng.Gaussian());
        values.push_back(v);
        hist.Record(v);
    }
    std::sort(values.begin(), values.end());
    const HdrSnapshot snap = hist.Snapshot();
    ASSERT_EQ(snap.count, values.size());
    const double bound = snap.layout.RelativeErrorBound();
    EXPECT_NEAR(bound, 1.0 / 128.0, 1e-12);  // S=64 -> 1/(2S)
    for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
        const double exact = ExactQuantile(values, q);
        const double approx = snap.ValueAtQuantile(q);
        // 2x the per-value bound: one factor for the recorded value's
        // bucket, one for where the exact rank sits inside that bucket.
        EXPECT_NEAR(approx, exact, 2.0 * bound * exact)
            << "q=" << q << " exact=" << exact << " approx=" << approx;
    }
}

TEST(HdrHistogramTest, ConcurrentShardedRecordingLosesNothing) {
    HdrConfig config;
    config.shards = 4;
    HdrHistogram hist{config};
    constexpr int kThreads = 8;
    constexpr int kPerThread = 50000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&hist] {
            for (int i = 0; i < kPerThread; ++i) {
                hist.Record(0.1 + 0.001 * (i % 100));
            }
        });
    }
    for (auto& thread : threads) thread.join();
    const HdrSnapshot snap = hist.Snapshot();
    EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(HdrSnapshotTest, MergeAddsCountsAndSums) {
    HdrHistogram a{HdrConfig{}};
    HdrHistogram b{HdrConfig{}};
    a.Record(1.0);
    a.Record(2.0);
    b.Record(100.0);
    HdrSnapshot merged = a.Snapshot();
    merged.MergeFrom(b.Snapshot());
    EXPECT_EQ(merged.count, 3u);
    EXPECT_NEAR(merged.sum, 103.0, 1e-9);
    // p99 must now come from b's tail value.
    EXPECT_GT(merged.ValueAtQuantile(0.99), 50.0);
}

TEST(WindowedHdrTest, RotationEvictsOldEpochs) {
    WindowedHdrHistogram window{HdrConfig{}, /*epochs=*/3,
                                /*epoch_seconds=*/1000.0};
    window.Record(1.0);
    EXPECT_EQ(window.TrailingSnapshot().count, 1u);
    window.Rotate();  // epoch 1: the 1.0 is now one epoch old, still inside
    window.Record(2.0);
    EXPECT_EQ(window.TrailingSnapshot().count, 2u);
    window.Rotate();  // epoch 2
    window.Rotate();  // epoch 3: the ring wraps, 1.0's epoch is cleared
    const HdrSnapshot snap = window.TrailingSnapshot();
    EXPECT_EQ(snap.count, 1u);
    EXPECT_NEAR(snap.sum, 2.0, 1e-9);
}

TEST(WindowedHdrTest, ResetClearsEverything) {
    WindowedHdrHistogram window{HdrConfig{}, 4, 1000.0};
    window.Record(1.0);
    window.Rotate();
    window.Record(2.0);
    window.Reset();
    EXPECT_EQ(window.TrailingSnapshot().count, 0u);
}

TEST(WindowedHdrTest, RotateIfDueIsTimeGated) {
    WindowedHdrHistogram window{HdrConfig{}, 4, /*epoch_seconds=*/3600.0};
    window.Record(1.0);
    // Not due for an hour: any number of calls must not rotate.
    for (int i = 0; i < 100; ++i) window.RotateIfDue();
    EXPECT_EQ(window.CurrentEpochSnapshot().count, 1u);
}

TEST(WindowFlusherTest, BackgroundRotationEventuallyEvicts) {
    WindowedHdrHistogram window{HdrConfig{}, /*epochs=*/2,
                                /*epoch_seconds=*/0.05};
    window.Record(1.0);
    {
        WindowFlusher flusher({&window}, /*period_seconds=*/0.01);
        // 2 epochs x 50 ms: the recorded value must age out well within 2 s.
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(2);
        while (window.TrailingSnapshot().count != 0 &&
               std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        flusher.Stop();
    }
    EXPECT_EQ(window.TrailingSnapshot().count, 0u);
}

}  // namespace
}  // namespace dfp::obs
