// obs/reqtrace: trace-ring push/overwrite/dump semantics, Chrome trace-event
// JSON schema, and the slow-request sampler's threshold/counting behavior.
#include "obs/reqtrace.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace dfp::obs {
namespace {

RequestTrace MakeTrace(std::uint64_t id, double base_us) {
    RequestTrace trace;
    trace.id = id;
    trace.submit_tid = 1;
    trace.score_tid = 2;
    trace.submit_us = base_us;
    trace.dequeue_us = base_us + 10;
    trace.score_start_us = base_us + 15;
    trace.score_end_us = base_us + 40;
    trace.serialize_start_us = base_us + 42;
    trace.serialize_end_us = base_us + 45;
    trace.batch_size = 4;
    return trace;
}

TEST(RequestTraceTest, NextIdIsUniqueAndMonotonic) {
    const std::uint64_t a = RequestTrace::NextId();
    const std::uint64_t b = RequestTrace::NextId();
    EXPECT_LT(a, b);
}

TEST(RequestTraceTest, TotalMsPrefersSerializeEnd) {
    RequestTrace trace = MakeTrace(1, 1000.0);
    EXPECT_NEAR(trace.TotalMs(), 0.045, 1e-9);
    trace.serialize_end_us = 0.0;  // dispatcher never stamped it
    EXPECT_NEAR(trace.TotalMs(), 0.040, 1e-9);
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
    EXPECT_EQ(TraceRing(5).capacity(), 8u);
    EXPECT_EQ(TraceRing(8).capacity(), 8u);
    EXPECT_EQ(TraceRing(0).capacity(), 2u);
}

TEST(TraceRingTest, DumpReturnsPushedTracesOldestFirst) {
    TraceRing ring(8);
    for (std::uint64_t i = 1; i <= 5; ++i) ring.Push(MakeTrace(i, 1000.0 * i));
    const auto dumped = ring.Dump();
    ASSERT_EQ(dumped.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(dumped[i].id, i + 1);
}

TEST(TraceRingTest, OverwritesOldestWhenFull) {
    TraceRing ring(4);
    for (std::uint64_t i = 1; i <= 10; ++i) ring.Push(MakeTrace(i, 100.0 * i));
    EXPECT_EQ(ring.total_pushed(), 10u);
    const auto dumped = ring.Dump();
    ASSERT_EQ(dumped.size(), 4u);
    EXPECT_EQ(dumped.front().id, 7u);
    EXPECT_EQ(dumped.back().id, 10u);
}

TEST(TraceRingTest, ConcurrentPushersNeverProduceTornDumps) {
    // Writers stamp every field of a trace with its id; a torn read would
    // surface as a dumped trace with mixed ids. The seqlock must prevent it.
    TraceRing ring(64);
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < 4; ++w) {
        writers.emplace_back([&ring, &stop, w] {
            std::uint64_t i = 1;
            while (!stop.load(std::memory_order_relaxed)) {
                const std::uint64_t id =
                    static_cast<std::uint64_t>(w + 1) * 1000000 + i++;
                RequestTrace trace;
                trace.id = id;
                trace.submit_us = static_cast<double>(id);
                trace.score_end_us = static_cast<double>(id);
                trace.batch_size = static_cast<std::uint32_t>(id % 97);
                ring.Push(trace);
            }
        });
    }
    for (int round = 0; round < 200; ++round) {
        for (const RequestTrace& trace : ring.Dump()) {
            EXPECT_EQ(trace.submit_us, static_cast<double>(trace.id));
            EXPECT_EQ(trace.score_end_us, static_cast<double>(trace.id));
            EXPECT_EQ(trace.batch_size,
                      static_cast<std::uint32_t>(trace.id % 97));
        }
    }
    stop.store(true);
    for (auto& writer : writers) writer.join();
}

TEST(RenderChromeTraceTest, SchemaAndStageEvents) {
    std::vector<RequestTrace> traces = {MakeTrace(7, 5000.0)};
    const std::string json = RenderChromeTrace(traces);
    auto parsed = ParseJson(json);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    const JsonValue* events = parsed->Find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    // One complete event per stamped stage: queue, batch_wait, score,
    // serialize.
    std::set<std::string> names;
    for (const JsonValue& event : events->array()) {
        ASSERT_TRUE(event.is_object());
        const JsonValue* name = event.Find("name");
        const JsonValue* ph = event.Find("ph");
        const JsonValue* ts = event.Find("ts");
        const JsonValue* dur = event.Find("dur");
        ASSERT_NE(name, nullptr);
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(ts, nullptr);
        ASSERT_NE(dur, nullptr);
        EXPECT_EQ(ph->string(), "X");
        EXPECT_GE(dur->number(), 0.0);
        ASSERT_NE(event.Find("pid"), nullptr);
        ASSERT_NE(event.Find("tid"), nullptr);
        const JsonValue* args = event.Find("args");
        ASSERT_NE(args, nullptr);
        EXPECT_EQ(args->Find("req")->number(), 7.0);
        names.insert(name->string());
    }
    EXPECT_EQ(names, (std::set<std::string>{"queue", "batch_wait", "score",
                                            "serialize"}));
}

TEST(RenderChromeTraceTest, EmptyDumpIsValidDocument) {
    auto parsed = ParseJson(RenderChromeTrace({}));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_TRUE(parsed->Find("traceEvents")->array().empty());
}

TEST(SlowRequestSamplerTest, ThresholdGatesAndCounterCounts) {
    Registry::Get().ResetValues();
    SlowRequestSampler sampler(/*threshold_ms=*/0.042 * 0.5);
    ASSERT_TRUE(sampler.enabled());
    EXPECT_TRUE(sampler.Sample(MakeTrace(1, 100.0)));  // 0.045 ms total
    RequestTrace fast = MakeTrace(2, 100.0);
    fast.serialize_end_us = fast.submit_us + 1.0;  // 0.001 ms total
    EXPECT_FALSE(sampler.Sample(fast));
    EXPECT_EQ(Registry::Get()
                  .GetCounter("dfp.serve.slow_requests")
                  .value(),
              1u);
}

TEST(SlowRequestSamplerTest, NegativeThresholdDisables) {
    SlowRequestSampler sampler(-1.0);
    EXPECT_FALSE(sampler.enabled());
}

}  // namespace
}  // namespace dfp::obs
