#include "common/math_util.hpp"

#include <gtest/gtest.h>

namespace dfp {
namespace {

TEST(MathUtilTest, XLog2XConvention) {
    EXPECT_DOUBLE_EQ(XLog2X(0.0), 0.0);
    EXPECT_DOUBLE_EQ(XLog2X(1.0), 0.0);
    EXPECT_DOUBLE_EQ(XLog2X(0.5), -0.5);
}

TEST(MathUtilTest, BinaryEntropyShape) {
    EXPECT_DOUBLE_EQ(BinaryEntropy(0.0), 0.0);
    EXPECT_DOUBLE_EQ(BinaryEntropy(1.0), 0.0);
    EXPECT_DOUBLE_EQ(BinaryEntropy(0.5), 1.0);
    // Symmetric.
    EXPECT_NEAR(BinaryEntropy(0.2), BinaryEntropy(0.8), 1e-12);
    // Monotone toward 0.5.
    EXPECT_LT(BinaryEntropy(0.1), BinaryEntropy(0.3));
}

TEST(MathUtilTest, EntropyOfUniform) {
    EXPECT_NEAR(Entropy({1.0, 1.0, 1.0, 1.0}), 2.0, 1e-12);
    EXPECT_NEAR(Entropy({2.5, 2.5}), 1.0, 1e-12);
}

TEST(MathUtilTest, EntropyDegenerate) {
    EXPECT_DOUBLE_EQ(Entropy({}), 0.0);
    EXPECT_DOUBLE_EQ(Entropy({0.0, 0.0}), 0.0);
    EXPECT_DOUBLE_EQ(Entropy({5.0, 0.0}), 0.0);
}

TEST(MathUtilTest, EntropyCountsMatchesEntropy) {
    EXPECT_NEAR(EntropyCounts({3, 1}), Entropy({3.0, 1.0}), 1e-12);
    EXPECT_NEAR(EntropyCounts({10, 20, 30}), Entropy({1.0, 2.0, 3.0}), 1e-12);
}

TEST(MathUtilTest, Clamp) {
    EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
    EXPECT_DOUBLE_EQ(Clamp(-1.0, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(Clamp(2.0, 0.0, 1.0), 1.0);
}

TEST(MathUtilTest, AlmostEqual) {
    EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(AlmostEqual(1.0, 1.001));
}

}  // namespace
}  // namespace dfp
