// obs/export: Prometheus text-exposition golden output (name sanitization,
// HELP escaping, cumulative le buckets, deterministic ordering), JSON
// snapshot rendering, atomic file writes, and the GET /metrics side-port.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/hdr.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace dfp::obs {
namespace {

TEST(PrometheusNameTest, SanitizesToLegalCharset) {
    EXPECT_EQ(PrometheusName("dfp.serve.latency_ms"), "dfp_serve_latency_ms");
    EXPECT_EQ(PrometheusName("a-b c/d"), "a_b_c_d");
    EXPECT_EQ(PrometheusName("name:with:colons"), "name:with:colons");
    EXPECT_EQ(PrometheusName("9lives"), "_9lives");
    EXPECT_EQ(PrometheusName(""), "_");
}

TEST(PrometheusHelpEscapeTest, EscapesBackslashAndNewline) {
    EXPECT_EQ(PrometheusHelpEscape("plain"), "plain");
    EXPECT_EQ(PrometheusHelpEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(PrometheusHelpEscape("line1\nline2"), "line1\\nline2");
}

MetricsSnapshot HandBuiltSnapshot() {
    MetricsSnapshot snap;
    snap.counters["dfp.test.requests"] = 12;
    snap.gauges["dfp.test.depth"] = 2.5;
    HistogramData hist;
    hist.bounds = {0.1, 1.0};
    hist.bucket_counts = {3, 2, 1};  // per-bucket; exposition must cumulate
    hist.count = 6;
    hist.sum = 4.2;
    snap.histograms["dfp.test.latency"] = hist;
    return snap;
}

// Golden: the full exposition for a hand-built snapshot, byte for byte.
// If this changes, scrapers see a different payload — change it knowingly.
TEST(RenderPrometheusTest, GoldenOutput) {
    const std::string expected =
        "# HELP dfp_test_requests dfp.test.requests\n"
        "# TYPE dfp_test_requests counter\n"
        "dfp_test_requests 12\n"
        "# HELP dfp_test_depth dfp.test.depth\n"
        "# TYPE dfp_test_depth gauge\n"
        "dfp_test_depth 2.5\n"
        "# HELP dfp_test_latency dfp.test.latency\n"
        "# TYPE dfp_test_latency histogram\n"
        "dfp_test_latency_bucket{le=\"0.1\"} 3\n"
        "dfp_test_latency_bucket{le=\"1\"} 5\n"
        "dfp_test_latency_bucket{le=\"+Inf\"} 6\n"
        "dfp_test_latency_sum 4.2\n"
        "dfp_test_latency_count 6\n";
    EXPECT_EQ(RenderPrometheus(HandBuiltSnapshot()), expected);
}

TEST(RenderPrometheusTest, BucketsAreCumulativeAndEndAtCount) {
    const std::string text = RenderPrometheus(HandBuiltSnapshot());
    // The +Inf bucket must equal _count (Prometheus invariant).
    EXPECT_NE(text.find("dfp_test_latency_bucket{le=\"+Inf\"} 6\n"),
              std::string::npos);
    EXPECT_NE(text.find("dfp_test_latency_count 6\n"), std::string::npos);
}

TEST(RenderPrometheusTest, HdrRendersAsQuantileSummary) {
    MetricsSnapshot snap;
    HdrHistogram hist{HdrConfig{}};
    for (int i = 1; i <= 100; ++i) hist.Record(0.1 * i);
    snap.hdrs["dfp.test.hdr"] = hist.Snapshot();
    const std::string text = RenderPrometheus(snap);
    EXPECT_NE(text.find("# TYPE dfp_test_hdr summary\n"), std::string::npos);
    EXPECT_NE(text.find("dfp_test_hdr{quantile=\"0.5\"} "), std::string::npos);
    EXPECT_NE(text.find("dfp_test_hdr{quantile=\"0.999\"} "), std::string::npos);
    EXPECT_NE(text.find("dfp_test_hdr_count 100\n"), std::string::npos);
}

TEST(RenderPrometheusTest, DeterministicAcrossCalls) {
    const MetricsSnapshot snap = HandBuiltSnapshot();
    EXPECT_EQ(RenderPrometheus(snap), RenderPrometheus(snap));
}

TEST(RenderSnapshotJsonTest, ParsesBackAndCarriesQuantiles) {
    MetricsSnapshot snap = HandBuiltSnapshot();
    HdrHistogram hist{HdrConfig{}};
    hist.Record(1.0);
    hist.Record(2.0);
    snap.windows["dfp.test.win"] = hist.Snapshot();
    auto parsed = ParseJson(RenderSnapshotJson(snap));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    const JsonValue* counters = parsed->Find("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_NE(counters->Find("dfp.test.requests"), nullptr);
    EXPECT_EQ(counters->Find("dfp.test.requests")->number(), 12.0);
    const JsonValue* windows = parsed->Find("windows");
    ASSERT_NE(windows, nullptr);
    const JsonValue* win = windows->Find("dfp.test.win");
    ASSERT_NE(win, nullptr);
    EXPECT_EQ(win->Find("count")->number(), 2.0);
    ASSERT_NE(win->Find("p0.999"), nullptr);
    ASSERT_NE(win->Find("rel_error"), nullptr);
}

TEST(WriteFileAtomicTest, WritesContentAndLeavesNoTmp) {
    const std::string path = ::testing::TempDir() + "dfp_export_atomic.txt";
    ASSERT_TRUE(WriteFileAtomic(path, "hello\n").ok());
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), "hello\n");
    // The tmp staging file must be gone.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
    // Overwrite is atomic-replace, not append.
    ASSERT_TRUE(WriteFileAtomic(path, "v2\n").ok());
    std::ifstream in2(path);
    std::stringstream buf2;
    buf2 << in2.rdbuf();
    EXPECT_EQ(buf2.str(), "v2\n");
    std::remove(path.c_str());
}

std::string HttpGet(std::uint16_t port, const std::string& path) {
    auto socket = TcpConnect("127.0.0.1", port);
    EXPECT_TRUE(socket.ok()) << socket.status();
    if (!socket.ok()) return "";
    EXPECT_TRUE(socket
                    ->SendAll("GET " + path +
                              " HTTP/1.1\r\nHost: localhost\r\n\r\n")
                    .ok());
    std::string response;
    char chunk[4096];
    for (;;) {
        auto n = socket->Recv(chunk, sizeof(chunk));
        if (!n.ok() || *n == 0) break;
        response.append(chunk, *n);
    }
    return response;
}

TEST(MetricsHttpServerTest, ServesPrometheusAndJson) {
    Registry::Get().ResetValues();
    Registry::Get().GetCounter("dfp.test.http_requests").Inc(7);

    MetricsHttpConfig config;
    config.port = 0;
    MetricsHttpServer server(config);
    ASSERT_TRUE(server.Start().ok());
    ASSERT_NE(server.port(), 0);

    const std::string response = HttpGet(server.port(), "/metrics");
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
    EXPECT_NE(response.find("dfp_test_http_requests 7\n"), std::string::npos);
    // The body is exactly RenderPrometheus of a registry snapshot modulo
    // whatever changed between the two snapshots; the metric line presence
    // above is the stable part.

    const std::string json_response = HttpGet(server.port(), "/metrics.json");
    EXPECT_NE(json_response.find("application/json"), std::string::npos);
    const std::size_t body_at = json_response.find("\r\n\r\n");
    ASSERT_NE(body_at, std::string::npos);
    auto parsed = ParseJson(
        std::string_view(json_response).substr(body_at + 4));
    ASSERT_TRUE(parsed.ok()) << parsed.status();

    EXPECT_NE(HttpGet(server.port(), "/nope").find("404"), std::string::npos);

    server.Stop();
}

TEST(MetricsHttpServerTest, RejectsNonGet) {
    MetricsHttpServer server(MetricsHttpConfig{});
    ASSERT_TRUE(server.Start().ok());
    auto socket = TcpConnect("127.0.0.1", server.port());
    ASSERT_TRUE(socket.ok());
    ASSERT_TRUE(socket->SendAll("POST /metrics HTTP/1.1\r\n\r\n").ok());
    std::string response;
    char chunk[1024];
    for (;;) {
        auto n = socket->Recv(chunk, sizeof(chunk));
        if (!n.ok() || *n == 0) break;
        response.append(chunk, *n);
    }
    EXPECT_NE(response.find("405"), std::string::npos);
    server.Stop();
}

TEST(PeriodicSnapshotWriterTest, StopWritesFinalSnapshot) {
    Registry::Get().ResetValues();
    Registry::Get().GetGauge("dfp.test.final").Set(3.0);
    const std::string path = ::testing::TempDir() + "dfp_export_periodic.json";
    std::remove(path.c_str());
    {
        PeriodicSnapshotWriter writer(path, /*period_seconds=*/60.0);
        writer.Stop();  // no period elapsed; Stop must still flush once
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    auto parsed = ParseJson(buf.str());
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    const JsonValue* gauges = parsed->Find("gauges");
    ASSERT_NE(gauges, nullptr);
    ASSERT_NE(gauges->Find("dfp.test.final"), nullptr);
    EXPECT_EQ(gauges->Find("dfp.test.final")->number(), 3.0);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace dfp::obs
