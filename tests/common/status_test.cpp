#include "common/status.hpp"

#include <gtest/gtest.h>

namespace dfp {
namespace {

TEST(StatusTest, DefaultIsOk) {
    Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
    const Status s = Status::InvalidArgument("bad thing");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(s.message(), "bad thing");
    EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllFactoriesSetCodes) {
    EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
    EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
    EXPECT_EQ(Status::FailedPrecondition("x").code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(Status::ResourceExhausted("x").code(),
              StatusCode::kResourceExhausted);
    EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
    EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
    Result<int> r(42);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, 42);
    EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
    Result<int> r(Status::NotFound("nope"));
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
    EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
    Result<std::string> r(std::string("payload"));
    ASSERT_TRUE(r.ok());
    const std::string moved = std::move(r).value();
    EXPECT_EQ(moved, "payload");
}

Status Inner(bool fail) {
    if (fail) return Status::Internal("inner failed");
    return Status::Ok();
}

Status Outer(bool fail) {
    DFP_RETURN_NOT_OK(Inner(fail));
    return Status::Ok();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
    EXPECT_TRUE(Outer(false).ok());
    const Status s = Outer(true);
    EXPECT_EQ(s.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace dfp
