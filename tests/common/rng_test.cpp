#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace dfp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
    EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.Uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformMeanNearHalf) {
    Rng rng(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.Uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntInRange) {
    Rng rng(3);
    std::vector<int> histogram(7, 0);
    for (int i = 0; i < 7000; ++i) {
        const auto v = rng.UniformInt(std::uint64_t{7});
        ASSERT_LT(v, 7u);
        histogram[v]++;
    }
    // Each bucket should be near 1000.
    for (int count : histogram) EXPECT_NEAR(count, 1000, 150);
}

TEST(RngTest, UniformIntInclusiveBounds) {
    Rng rng(5);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.UniformInt(std::int64_t{2}, std::int64_t{4});
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 4);
        saw_lo |= (v == 2);
        saw_hi |= (v == 4);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliFrequency) {
    Rng rng(9);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
    Rng rng(11);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.Gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, CategoricalFollowsWeights) {
    Rng rng(13);
    std::vector<double> weights = {1.0, 3.0};
    int ones = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) ones += (rng.Categorical(weights) == 1);
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
    Rng rng(17);
    std::vector<int> v(50);
    std::iota(v.begin(), v.end(), 0);
    auto shuffled = v;
    rng.Shuffle(shuffled);
    EXPECT_NE(shuffled, v);  // astronomically unlikely to match
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, v);
}

}  // namespace
}  // namespace dfp
