#include "common/budget.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "obs/metrics.hpp"

namespace dfp {
namespace {

TEST(CancelTokenTest, FiresOnNthPoll) {
    CancelToken token;
    token.CancelAfterChecks(3);
    EXPECT_FALSE(token.Poll());
    EXPECT_FALSE(token.Poll());
    EXPECT_TRUE(token.Poll());
    EXPECT_TRUE(token.cancelled());
    EXPECT_TRUE(token.Poll());  // stays fired
}

TEST(CancelTokenTest, ResetDisarms) {
    CancelToken token;
    token.CancelAfterChecks(1);
    EXPECT_TRUE(token.Poll());
    token.Reset();
    EXPECT_FALSE(token.cancelled());
    for (int i = 0; i < 100; ++i) EXPECT_FALSE(token.Poll());
}

TEST(CancelTokenTest, ManualCancelObservedByPoll) {
    CancelToken token;
    EXPECT_FALSE(token.Poll());
    token.Cancel();
    EXPECT_TRUE(token.Poll());
}

TEST(DeadlineTimerTest, NegativeBudgetMeansUnlimited) {
    DeadlineTimer timer(-1.0);
    EXPECT_TRUE(timer.unlimited());
    EXPECT_FALSE(timer.expired());
    EXPECT_LT(timer.remaining_ms(), 0.0);
}

TEST(DeadlineTimerTest, ZeroBudgetExpiresImmediately) {
    DeadlineTimer timer(0.0);
    EXPECT_FALSE(timer.unlimited());
    EXPECT_TRUE(timer.expired());
    EXPECT_EQ(timer.remaining_ms(), 0.0);
}

TEST(BudgetGuardTest, PatternCapIsSticky) {
    ExecutionBudget budget;
    BudgetGuard guard(budget, 3);
    EXPECT_EQ(guard.Check(2), BudgetBreach::kNone);
    EXPECT_TRUE(guard.ok());
    EXPECT_EQ(guard.Check(3), BudgetBreach::kPatternCap);
    // Sticky: later calls report the first breach even with smaller counts.
    EXPECT_EQ(guard.Check(0), BudgetBreach::kPatternCap);
    EXPECT_FALSE(guard.ok());
}

TEST(BudgetGuardTest, BudgetMaxPatternsTightensAlgorithmCap) {
    ExecutionBudget budget;
    budget.max_patterns = 2;
    BudgetGuard guard(budget, 10);
    EXPECT_EQ(guard.Check(2), BudgetBreach::kPatternCap);
}

TEST(BudgetGuardTest, MemoryCap) {
    ExecutionBudget budget;
    budget.max_memory_bytes = 100;
    BudgetGuard guard(budget);
    EXPECT_EQ(guard.Check(0, 100), BudgetBreach::kNone);  // at cap is fine
    EXPECT_EQ(guard.Check(0, 101), BudgetBreach::kMemoryCap);
}

TEST(BudgetGuardTest, CancelTokenBreach) {
    CancelToken token;
    token.CancelAfterChecks(2);
    ExecutionBudget budget;
    budget.cancel = &token;
    BudgetGuard guard(budget);
    EXPECT_EQ(guard.Check(0), BudgetBreach::kNone);
    EXPECT_EQ(guard.Check(0), BudgetBreach::kCancelled);
}

TEST(BudgetGuardTest, DeadlineReadEveryCheckWithStrideOne) {
    ExecutionBudget budget;
    budget.time_budget_ms = 0.0;
    BudgetGuard guard(budget, std::numeric_limits<std::size_t>::max(),
                      /*clock_stride=*/1);
    EXPECT_EQ(guard.Check(0), BudgetBreach::kDeadline);
}

TEST(BudgetGuardTest, DeadlineAmortizedOverDefaultStride) {
    ExecutionBudget budget;
    budget.time_budget_ms = 0.0;
    BudgetGuard guard(budget);
    // The clock is only read every kClockStride-th check.
    for (std::uint64_t i = 0; i + 1 < BudgetGuard::kClockStride; ++i) {
        EXPECT_EQ(guard.Check(0), BudgetBreach::kNone);
    }
    EXPECT_EQ(guard.Check(0), BudgetBreach::kDeadline);
}

TEST(BudgetGuardTest, UnlimitedBudgetNeverBreaches) {
    ExecutionBudget budget;
    EXPECT_TRUE(budget.Unlimited());
    BudgetGuard guard(budget);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(guard.Check(static_cast<std::size_t>(i), 1u << 20),
                  BudgetBreach::kNone);
    }
}

TEST(MineOutcomeTest, CompleteVsTruncated) {
    MineOutcome<int> outcome;
    EXPECT_TRUE(outcome.complete());
    EXPECT_FALSE(outcome.truncated());
    outcome.breach = BudgetBreach::kDeadline;
    EXPECT_TRUE(outcome.truncated());
}

TEST(BudgetBreachNameTest, AllNamesDistinct) {
    EXPECT_STREQ(BudgetBreachName(BudgetBreach::kNone), "none");
    EXPECT_STREQ(BudgetBreachName(BudgetBreach::kDeadline), "deadline");
    EXPECT_STREQ(BudgetBreachName(BudgetBreach::kPatternCap), "pattern_cap");
    EXPECT_STREQ(BudgetBreachName(BudgetBreach::kMemoryCap), "memory_cap");
    EXPECT_STREQ(BudgetBreachName(BudgetBreach::kCancelled), "cancelled");
}

TEST(GuardLogTest, RecordAppendsAndBumpsCounter) {
    GuardLog::Get().Clear();
    const auto before =
        obs::Registry::Get().Snapshot().counters["dfp.guard.test_kind"];
    GuardLog::Get().Record("test.stage", "test_kind", 42.0);
    ASSERT_EQ(GuardLog::Get().size(), 1u);
    const auto events = GuardLog::Get().Snapshot();
    EXPECT_EQ(events[0].stage, "test.stage");
    EXPECT_EQ(events[0].kind, "test_kind");
    EXPECT_EQ(events[0].value, 42.0);
    const auto after =
        obs::Registry::Get().Snapshot().counters["dfp.guard.test_kind"];
    EXPECT_EQ(after, before + 1);
}

TEST(GuardLogTest, DrainMovesEventsOut) {
    GuardLog::Get().Clear();
    GuardLog::Get().Record("a", "deadline");
    GuardLog::Get().Record("b", "cancelled");
    const auto drained = GuardLog::Get().Drain();
    EXPECT_EQ(drained.size(), 2u);
    EXPECT_EQ(GuardLog::Get().size(), 0u);
}

TEST(GuardLogTest, RecordBreachIgnoresNone) {
    GuardLog::Get().Clear();
    RecordBreach("stage", BudgetBreach::kNone);
    EXPECT_EQ(GuardLog::Get().size(), 0u);
    RecordBreach("stage", BudgetBreach::kDeadline, 7.0);
    ASSERT_EQ(GuardLog::Get().size(), 1u);
    EXPECT_EQ(GuardLog::Get().Snapshot()[0].kind, "deadline");
}

TEST(BudgetReportTest, DegradedConditions) {
    BudgetReport report;
    EXPECT_FALSE(report.degraded());
    report.minsup_escalations = 1;
    EXPECT_TRUE(report.degraded());
    report = BudgetReport{};
    report.mine_breach = BudgetBreach::kPatternCap;
    EXPECT_TRUE(report.mine_truncated());
    EXPECT_TRUE(report.degraded());
    report = BudgetReport{};
    report.select_breach = BudgetBreach::kDeadline;
    EXPECT_TRUE(report.select_truncated());
    EXPECT_TRUE(report.degraded());
}

}  // namespace
}  // namespace dfp
