// Full-stack integration: synthetic UCI-shaped data through the experiment
// harness — the same path the paper-table benches take.
#include <gtest/gtest.h>

#include "core/minsup_strategy.hpp"
#include "exp/experiment.hpp"
#include "exp/table_printer.hpp"

namespace dfp {
namespace {

SyntheticSpec SmallSpec(std::uint64_t seed) {
    SyntheticSpec spec;
    spec.rows = 240;
    spec.classes = 2;
    spec.attributes = 10;
    spec.arity = 3;
    spec.numeric_fraction = 0.2;
    // Signal lives in the planted patterns, not in single-feature marginals —
    // the regime the paper's Pat_FS vs Item_* comparison addresses.
    spec.marginal_skew = 0.08;
    spec.carrier_prob = 0.75;
    spec.leak_prob = 0.08;
    spec.label_noise = 0.02;
    spec.seed = seed;
    return spec;
}

ExperimentConfig FastConfig() {
    ExperimentConfig config;
    config.folds = 3;
    config.min_sup_rel = 0.15;
    config.max_pattern_len = 4;
    return config;
}

TEST(EndToEndTest, PreparedDatabaseIsConsistent) {
    const auto db = PrepareTransactions(SmallSpec(1));
    EXPECT_EQ(db.num_transactions(), 240u);
    EXPECT_EQ(db.num_classes(), 2u);
    EXPECT_GT(db.num_items(), 10u);
    // Every transaction carries one item per non-constant attribute (the MDL
    // discretizer may collapse an uninformative numeric column to one bin,
    // which the encoder then skips).
    ASSERT_GT(db.num_transactions(), 0u);
    const std::size_t items_per_row = db.transaction(0).size();
    EXPECT_GE(items_per_row, 6u);
    EXPECT_LE(items_per_row, 10u);
    for (std::size_t t = 1; t < db.num_transactions(); ++t) {
        EXPECT_EQ(db.transaction(t).size(), items_per_row);
    }
}

TEST(EndToEndTest, PatFsBeatsItemAllOnPatternData) {
    // The paper's headline comparison on data with planted pattern structure.
    const auto db = PrepareTransactions(SmallSpec(2));
    const auto config = FastConfig();
    const auto item_all =
        RunVariantCv(db, ModelVariant::kItemAll, LearnerKind::kSvmLinear, config);
    const auto pat_fs =
        RunVariantCv(db, ModelVariant::kPatFs, LearnerKind::kSvmLinear, config);
    ASSERT_TRUE(item_all.ok) << item_all.error;
    ASSERT_TRUE(pat_fs.ok) << pat_fs.error;
    EXPECT_GT(pat_fs.accuracy, item_all.accuracy - 0.02)
        << "Pat_FS should not lose to Item_All on planted-pattern data";
    EXPECT_GT(pat_fs.accuracy, 0.6);
}

TEST(EndToEndTest, AllVariantsRunUnderBothLearners) {
    const auto db = PrepareTransactions(SmallSpec(3));
    ExperimentConfig config = FastConfig();
    for (LearnerKind learner : {LearnerKind::kSvmLinear, LearnerKind::kC45}) {
        for (ModelVariant variant :
             {ModelVariant::kItemAll, ModelVariant::kItemFs, ModelVariant::kItemRbf,
              ModelVariant::kPatAll, ModelVariant::kPatFs}) {
            const auto outcome = RunVariantCv(db, variant, learner, config);
            ASSERT_TRUE(outcome.ok)
                << ModelVariantName(variant) << "/" << LearnerKindName(learner)
                << ": " << outcome.error;
            EXPECT_GT(outcome.accuracy, 0.4)
                << ModelVariantName(variant) << "/" << LearnerKindName(learner);
        }
    }
}

TEST(EndToEndTest, PatFsUsesFewerFeaturesThanPatAll) {
    const auto db = PrepareTransactions(SmallSpec(4));
    const auto config = FastConfig();
    const auto pat_all =
        RunVariantCv(db, ModelVariant::kPatAll, LearnerKind::kC45, config);
    const auto pat_fs =
        RunVariantCv(db, ModelVariant::kPatFs, LearnerKind::kC45, config);
    ASSERT_TRUE(pat_all.ok);
    ASSERT_TRUE(pat_fs.ok);
    EXPECT_GT(pat_fs.mean_candidates, 0.0);
    EXPECT_LT(pat_fs.mean_selected, pat_all.mean_selected);
}

TEST(EndToEndTest, MinSupStrategyFeedsPipeline) {
    // Use the θ* strategy to choose min_sup, then run the pipeline with it.
    const auto db = PrepareTransactions(SmallSpec(5));
    const auto rec = RecommendMinSup(0.05, db.ClassPriors(), db.num_transactions());
    EXPECT_GT(rec.theta_star, 0.0);

    ExperimentConfig config = FastConfig();
    config.min_sup_rel = rec.theta_star;
    const auto outcome =
        RunVariantCv(db, ModelVariant::kPatFs, LearnerKind::kC45, config);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    EXPECT_GT(outcome.accuracy, 0.5);
}

TEST(EndToEndTest, MiningBudgetDegradesGracefully) {
    const auto db = PrepareTransactions(SmallSpec(6));
    ExperimentConfig config = FastConfig();
    config.min_sup_rel = 0.01;
    config.mining_budget = 10;
    const auto outcome =
        RunVariantCv(db, ModelVariant::kPatFs, LearnerKind::kC45, config);
    // A tiny mining budget truncates the candidate pool (recorded in the
    // guard log) but no longer fails the experiment outright.
    EXPECT_TRUE(outcome.ok) << outcome.error;
}

TEST(TablePrinterTest, AlignsColumns) {
    TablePrinter table({"name", "value"});
    table.AddRow({"a", "1"});
    table.AddRow({"long-name", "22"});
    const std::string out = table.ToString();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name | 22"), std::string::npos);
    EXPECT_EQ(FormatPercent(0.9114), "91.14");
}

}  // namespace
}  // namespace dfp
