#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "data/encoder.hpp"
#include "data/synthetic.hpp"
#include "ml/dtree/c45.hpp"
#include "ml/nb/naive_bayes.hpp"
#include "ml/svm/svm.hpp"

namespace dfp {
namespace {

TransactionDatabase XorDb(std::size_t rows, std::uint64_t seed) {
    const Dataset data = GenerateXor(rows, 2, 0.0, seed);
    auto encoder = ItemEncoder::FromSchema(data);
    return TransactionDatabase::FromDataset(data, *encoder);
}

PipelineConfig DefaultConfig() {
    PipelineConfig config;
    config.miner.min_sup_rel = 0.1;
    config.miner.max_pattern_len = 4;
    config.mmrfs.coverage_delta = 3;
    return config;
}

TEST(PipelineTest, SolvesXorWhereSingleItemsCannot) {
    // The paper's §3.1.1 motivation: XOR is not linearly separable on single
    // features, but is once pattern features are added.
    const auto db = XorDb(400, 1);

    // Baseline: linear SVM on items only fails (≈ 50%).
    PipelineConfig items_only = DefaultConfig();
    items_only.miner.min_sup_rel = 0.99;  // effectively no patterns
    items_only.feature_selection = false;
    PatternClassifierPipeline baseline(items_only);
    ASSERT_TRUE(baseline.Train(db, std::make_unique<SvmClassifier>()).ok());
    const double base_acc = baseline.Accuracy(db);
    EXPECT_LT(base_acc, 0.70);

    // Pattern pipeline: mines {x=a, y=b} combinations and separates perfectly.
    PatternClassifierPipeline pipeline(DefaultConfig());
    ASSERT_TRUE(pipeline.Train(db, std::make_unique<SvmClassifier>()).ok());
    EXPECT_GT(pipeline.Accuracy(db), 0.95);
}

TEST(PipelineTest, StatsArePopulated) {
    const auto db = XorDb(200, 2);
    PatternClassifierPipeline pipeline(DefaultConfig());
    ASSERT_TRUE(pipeline.Train(db, std::make_unique<C45Classifier>()).ok());
    const auto& stats = pipeline.stats();
    EXPECT_GT(stats.num_candidates, 0u);
    EXPECT_GT(stats.num_selected, 0u);
    EXPECT_LE(stats.num_selected, stats.num_candidates);
    EXPECT_GE(stats.mine_seconds, 0.0);
}

TEST(PipelineTest, FeatureSelectionShrinksFeatureSpace) {
    const auto db = XorDb(300, 3);
    PipelineConfig with_fs = DefaultConfig();
    PipelineConfig without_fs = DefaultConfig();
    without_fs.feature_selection = false;

    PatternClassifierPipeline selected(with_fs);
    PatternClassifierPipeline all(without_fs);
    ASSERT_TRUE(selected.Train(db, std::make_unique<C45Classifier>()).ok());
    ASSERT_TRUE(all.Train(db, std::make_unique<C45Classifier>()).ok());
    EXPECT_LT(selected.feature_space().num_patterns(),
              all.feature_space().num_patterns());
}

TEST(PipelineTest, PerClassVsGlobalMining) {
    const auto db = XorDb(200, 4);
    PipelineConfig global = DefaultConfig();
    global.per_class_mining = false;
    PatternClassifierPipeline pipeline(global);
    ASSERT_TRUE(pipeline.Train(db, std::make_unique<C45Classifier>()).ok());
    EXPECT_GT(pipeline.Accuracy(db), 0.9);
}

TEST(PipelineTest, AllMinerKindsWork) {
    const auto db = XorDb(150, 5);
    for (MinerKind kind : {MinerKind::kClosed, MinerKind::kFpGrowth,
                           MinerKind::kApriori, MinerKind::kEclat}) {
        PipelineConfig config = DefaultConfig();
        config.miner_kind = kind;
        PatternClassifierPipeline pipeline(config);
        ASSERT_TRUE(pipeline.Train(db, std::make_unique<C45Classifier>()).ok());
        EXPECT_GT(pipeline.Accuracy(db), 0.9)
            << "miner kind " << static_cast<int>(kind);
    }
}

TEST(PipelineTest, WorksWithEveryLearner) {
    const auto db = XorDb(200, 6);
    PatternClassifierPipeline svm_pipe(DefaultConfig());
    ASSERT_TRUE(svm_pipe.Train(db, std::make_unique<SvmClassifier>()).ok());
    PatternClassifierPipeline tree_pipe(DefaultConfig());
    ASSERT_TRUE(tree_pipe.Train(db, std::make_unique<C45Classifier>()).ok());
    PatternClassifierPipeline nb_pipe(DefaultConfig());
    ASSERT_TRUE(nb_pipe.Train(db, std::make_unique<NaiveBayesClassifier>()).ok());
    EXPECT_GT(svm_pipe.Accuracy(db), 0.9);
    EXPECT_GT(tree_pipe.Accuracy(db), 0.9);
    EXPECT_GT(nb_pipe.Accuracy(db), 0.8);
}

TEST(PipelineTest, ErrorsPropagate) {
    const auto db = XorDb(100, 7);
    PatternClassifierPipeline pipeline(DefaultConfig());
    EXPECT_FALSE(pipeline.Train(db, nullptr).ok());

    const auto empty = TransactionDatabase::FromTransactions({}, {}, 3, 2);
    PatternClassifierPipeline pipeline2(DefaultConfig());
    EXPECT_FALSE(pipeline2.Train(empty, std::make_unique<C45Classifier>()).ok());

    // A breached mining budget no longer hard-fails Train: the pipeline
    // degrades (escalating min_sup / truncating) and reports it.
    PipelineConfig tiny_budget = DefaultConfig();
    tiny_budget.miner.max_patterns = 1;
    tiny_budget.miner.min_sup_rel = 0.01;
    PatternClassifierPipeline pipeline3(tiny_budget);
    const Status st = pipeline3.Train(db, std::make_unique<C45Classifier>());
    EXPECT_TRUE(st.ok()) << st;
    EXPECT_TRUE(pipeline3.budget_report().degraded());

    // The strict MineCandidates entry point keeps the all-or-nothing error.
    const auto strict = pipeline3.MineCandidates(db);
    EXPECT_FALSE(strict.ok());
    EXPECT_EQ(strict.status().code(), StatusCode::kResourceExhausted);
}

TEST(PipelineTest, CandidatesAreDeduplicatedAcrossClasses) {
    const auto db = XorDb(200, 8);
    PatternClassifierPipeline pipeline(DefaultConfig());
    auto candidates = pipeline.MineCandidates(db);
    ASSERT_TRUE(candidates.ok());
    std::set<Itemset> seen;
    for (const auto& p : *candidates) {
        EXPECT_TRUE(seen.insert(p.items).second)
            << "duplicate " << ItemsetToString(p.items);
        EXPECT_GE(p.length(), 2u);  // singletons excluded from candidates
    }
}

TEST(PipelineTest, PredictionOnUnseenTransactions) {
    const auto train = XorDb(300, 9);
    const auto test = XorDb(100, 10);
    PatternClassifierPipeline pipeline(DefaultConfig());
    ASSERT_TRUE(pipeline.Train(train, std::make_unique<SvmClassifier>()).ok());
    EXPECT_GT(pipeline.Accuracy(test), 0.9);
}

}  // namespace
}  // namespace dfp
