// Runs a tiny mining→selection→learning pipeline with tracing enabled and
// validates the emitted JSON run report against the schema in obs/report.hpp —
// the same artifact quickstart --report and the BENCH_* harnesses produce.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "core/pipeline.hpp"
#include "data/encoder.hpp"
#include "data/synthetic.hpp"
#include "ml/svm/svm.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"

namespace dfp {
namespace {

// Names every phase in a span tree (depth-first).
void CollectPhaseNames(const obs::JsonValue& span, std::set<std::string>* out) {
    const obs::JsonValue* name = span.Find("name");
    ASSERT_NE(name, nullptr);
    out->insert(name->string());
    const obs::JsonValue* children = span.Find("children");
    ASSERT_NE(children, nullptr);
    for (const auto& child : children->array()) {
        CollectPhaseNames(child, out);
    }
}

TEST(ReportSmokeTest, PipelineRunEmitsValidJsonReport) {
    obs::Registry::Get().ResetValues();
    obs::Tracer::Get().Clear();
    obs::EnableTracing(true);

    // Tiny but non-degenerate: enough rows that mining, MMRFS and SMO all do
    // real work and flush their metrics.
    SyntheticSpec spec;
    spec.name = "report_smoke";
    spec.rows = 200;
    spec.attributes = 8;
    spec.classes = 2;
    spec.seed = 11;
    const Dataset data = GenerateSynthetic(spec);
    const auto encoder = ItemEncoder::FromSchema(data);
    const auto db = TransactionDatabase::FromDataset(data, *encoder);

    PipelineConfig config;
    config.miner.min_sup_rel = 0.15;
    config.miner.max_pattern_len = 4;
    config.mmrfs.coverage_delta = 2;
    PatternClassifierPipeline pipeline(config);
    ASSERT_TRUE(pipeline.Train(db, std::make_unique<SvmClassifier>()).ok());

    const obs::RunReport report = obs::CollectRunReport("report_smoke");
    obs::EnableTracing(false);

    // Write the file exactly as the CLI surfaces do, then read it back.
    const std::filesystem::path path =
        std::filesystem::temp_directory_path() / "dfp_report_smoke.json";
    ASSERT_TRUE(obs::WriteReportJsonFile(report, path.string()).ok());
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::filesystem::remove(path);

    const auto parsed = obs::ParseJson(buffer.str());
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    const obs::JsonValue& doc = *parsed;
    ASSERT_TRUE(doc.is_object());

    // -- top level --
    ASSERT_NE(doc.Find("name"), nullptr);
    EXPECT_EQ(doc.Find("name")->string(), "report_smoke");

    // -- span tree: the full nested pipeline phase structure --
    const obs::JsonValue* spans = doc.Find("spans");
    ASSERT_NE(spans, nullptr);
    ASSERT_TRUE(spans->is_array());
    ASSERT_EQ(spans->array().size(), 1u);  // one Train call → one root
    const obs::JsonValue& root = spans->array()[0];
    EXPECT_EQ(root.Find("name")->string(), "train");
    std::set<std::string> phases;
    CollectPhaseNames(root, &phases);
    for (const char* phase :
         {"train", "mine", "mine.class_0", "mine.class_1", "pool_dedup",
          "mmrfs", "transform", "learn"}) {
        EXPECT_TRUE(phases.contains(phase)) << "missing phase: " << phase;
    }
    EXPECT_GE(phases.size(), 4u);

    // -- metrics: ≥10 distinct names spanning fpm, core and ml --
    const obs::JsonValue* metrics = doc.Find("metrics");
    ASSERT_NE(metrics, nullptr);
    const obs::JsonValue* counters = metrics->Find("counters");
    const obs::JsonValue* gauges = metrics->Find("gauges");
    const obs::JsonValue* histograms = metrics->Find("histograms");
    ASSERT_NE(counters, nullptr);
    ASSERT_NE(gauges, nullptr);
    ASSERT_NE(histograms, nullptr);

    std::set<std::string> names;
    std::set<std::string> modules;
    auto collect = [&](const obs::JsonValue& object) {
        for (const auto& [name, value] : object.object()) {
            names.insert(name);
            // "dfp.<module>.<...>" → <module>
            const std::size_t start = name.find('.');
            const std::size_t end = name.find('.', start + 1);
            if (start != std::string::npos && end != std::string::npos) {
                modules.insert(name.substr(start + 1, end - start - 1));
            }
        }
    };
    collect(*counters);
    collect(*gauges);
    collect(*histograms);
    EXPECT_GE(names.size(), 10u) << "too few distinct metrics";
    for (const char* module : {"fpm", "core", "ml"}) {
        EXPECT_TRUE(modules.contains(module))
            << "no metrics from module: " << module;
    }

    // -- specific cross-layer signals the pipeline must have produced --
    EXPECT_GT(counters->Find("dfp.fpm.closed.nodes_expanded")->number(), 0.0);
    EXPECT_GT(counters->Find("dfp.core.mmrfs.iterations")->number(), 0.0);
    EXPECT_GT(counters->Find("dfp.ml.smo.take_steps")->number(), 0.0);
    EXPECT_GT(gauges->Find("dfp.core.pipeline.num_candidates")->number(), 0.0);
    // PipelineStats façade and the registry tell the same story.
    EXPECT_DOUBLE_EQ(gauges->Find("dfp.core.pipeline.num_selected")->number(),
                     static_cast<double>(pipeline.stats().num_selected));
    // The MMRFS gain histogram has the declared bucket layout.
    const obs::JsonValue* gain = histograms->Find("dfp.core.mmrfs.gain");
    ASSERT_NE(gain, nullptr);
    ASSERT_NE(gain->Find("buckets"), nullptr);
    EXPECT_EQ(gain->Find("buckets")->array().size(), 9u);  // 8 bounds + overflow
    EXPECT_GT(gain->Find("count")->number(), 0.0);
}

TEST(ReportSmokeTest, TableRenderingDoesNotThrow) {
    obs::Registry::Get().GetCounter("dfp.test.table.counter").Inc(3);
    const obs::RunReport report = obs::CollectRunReport("table_smoke");
    std::ostringstream out;
    obs::WriteReportTable(out, report);
    EXPECT_NE(out.str().find("dfp.test.table.counter"), std::string::npos);
}

}  // namespace
}  // namespace dfp
