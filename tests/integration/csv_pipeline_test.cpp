// Adoption-path integration: CSV text in, trained pattern classifier out.
#include <gtest/gtest.h>

#include <sstream>

#include "data/csv.hpp"
#include "exp/experiment.hpp"
#include "ml/dtree/c45.hpp"

namespace dfp {
namespace {

// Builds a CSV with a numeric column, a categorical column and a class that
// depends on their combination.
std::string MakeCsvText(std::size_t rows) {
    std::ostringstream out;
    out << "temp,sky,play\n";
    for (std::size_t i = 0; i < rows; ++i) {
        const bool hot = (i % 3) == 0;
        const bool sunny = (i % 2) == 0;
        const double temp = hot ? 30.0 + (i % 5) : 10.0 + (i % 5);
        const char* sky = sunny ? "sunny" : "rain";
        // Play only when sunny AND not hot — a conjunction.
        const char* play = (sunny && !hot) ? "yes" : "no";
        out << temp << ',' << sky << ',' << play << '\n';
    }
    return out.str();
}

TEST(CsvPipelineTest, CsvThroughFullPipeline) {
    std::istringstream in(MakeCsvText(240));
    auto data = ReadCsv(in);
    ASSERT_TRUE(data.ok()) << data.status();

    const TransactionDatabase db = DatasetToTransactions(*data);
    EXPECT_EQ(db.num_transactions(), 240u);
    EXPECT_GE(db.num_items(), 3u);

    PipelineConfig config;
    config.miner.min_sup_rel = 0.1;
    config.miner.max_pattern_len = 3;
    config.mmrfs.coverage_delta = 2;
    PatternClassifierPipeline pipeline(config);
    ASSERT_TRUE(pipeline.Train(db, std::make_unique<C45Classifier>()).ok());
    // The concept is deterministic, so training accuracy should be ~perfect.
    EXPECT_GT(pipeline.Accuracy(db), 0.95);
}

TEST(CsvPipelineTest, RoundTripPreservesPipelineBehaviour) {
    std::istringstream in(MakeCsvText(120));
    auto data = ReadCsv(in);
    ASSERT_TRUE(data.ok());

    // Save → reload the CSV, rebuild the db: identical transactions.
    std::ostringstream saved;
    ASSERT_TRUE(WriteCsv(*data, saved).ok());
    std::istringstream reread_in(saved.str());
    auto reread = ReadCsv(reread_in);
    ASSERT_TRUE(reread.ok());

    const TransactionDatabase a = DatasetToTransactions(*data);
    const TransactionDatabase b = DatasetToTransactions(*reread);
    ASSERT_EQ(a.num_transactions(), b.num_transactions());
    for (std::size_t t = 0; t < a.num_transactions(); ++t) {
        EXPECT_EQ(a.transaction(t), b.transaction(t));
        EXPECT_EQ(a.label(t), b.label(t));
    }
}

}  // namespace
}  // namespace dfp
