// Golden-equivalence certificate for window pattern maintenance: the cheap
// incremental CanTree path must produce IDENTICAL pattern sets (itemset +
// exact window support) to re-mining the window from scratch — across 20
// seeded drifting streams, at every checkpoint, for the whole window
// lifecycle (growth, sliding eviction, churn). Extends the dfp_parallel /
// dfp_perf golden-equivalence harness style to the streaming layer.
#include "stream/window_miner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "fpm/fpgrowth.hpp"
#include "stream/streaming_db.hpp"
#include "testutil/drift_source.hpp"

namespace dfp::stream {
namespace {

/// Canonical form: sorted (itemset → support) map; mining order is
/// unspecified, support must be exact.
std::map<std::vector<ItemId>, std::uint64_t> Canon(
    const std::vector<Pattern>& patterns) {
    std::map<std::vector<ItemId>, std::uint64_t> canon;
    for (const Pattern& p : patterns) {
        EXPECT_TRUE(std::is_sorted(p.items.begin(), p.items.end()));
        EXPECT_TRUE(canon.emplace(p.items, p.support).second)
            << "duplicate pattern emitted";
    }
    return canon;
}

TEST(WindowMinerTest, KindNamesAndFactory) {
    EXPECT_STREQ(WindowMinerKindName(WindowMinerKind::kRemine), "remine");
    EXPECT_STREQ(WindowMinerKindName(WindowMinerKind::kIncremental),
                 "incremental");
    EXPECT_EQ(MakeWindowMiner(WindowMinerKind::kRemine, 4)->Name(), "remine");
    EXPECT_EQ(MakeWindowMiner(WindowMinerKind::kIncremental, 4)->Name(),
              "incremental");
}

TEST(WindowMinerTest, EmptyWindowMinesNothing) {
    for (const auto kind :
         {WindowMinerKind::kRemine, WindowMinerKind::kIncremental}) {
        auto miner = MakeWindowMiner(kind, 6);
        MinerConfig config;
        config.min_sup_rel = 0.5;
        const auto mined = miner->MineWindow(config);
        ASSERT_TRUE(mined.ok()) << mined.status();
        EXPECT_TRUE(mined->empty());
    }
}

TEST(WindowMinerTest, HandComputedSupports) {
    // Window: {0,1,2} ×2, {0,2} ×1, {1} ×1. min_sup_abs = 2.
    for (const auto kind :
         {WindowMinerKind::kRemine, WindowMinerKind::kIncremental}) {
        auto miner = MakeWindowMiner(kind, 4);
        miner->Insert({0, 1, 2});
        miner->Insert({0, 1, 2});
        miner->Insert({0, 2});
        miner->Insert({1});
        MinerConfig config;
        config.min_sup_rel = -1.0;
        config.min_sup_abs = 2;
        const auto mined = miner->MineWindow(config);
        ASSERT_TRUE(mined.ok()) << mined.status();
        const auto canon = Canon(*mined);
        const std::map<std::vector<ItemId>, std::uint64_t> want = {
            {{0}, 3},    {{1}, 3},    {{2}, 3},       {{0, 1}, 2},
            {{0, 2}, 3}, {{1, 2}, 2}, {{0, 1, 2}, 2},
        };
        EXPECT_EQ(canon, want) << WindowMinerKindName(kind);
    }
}

TEST(WindowMinerTest, EvictionUpdatesSupports) {
    for (const auto kind :
         {WindowMinerKind::kRemine, WindowMinerKind::kIncremental}) {
        auto miner = MakeWindowMiner(kind, 4);
        miner->Insert({0, 1});
        miner->Insert({0, 1});
        miner->Insert({0});
        miner->Evict({0, 1});
        EXPECT_EQ(miner->size(), 2u);
        MinerConfig config;
        config.min_sup_rel = -1.0;
        config.min_sup_abs = 1;
        const auto mined = miner->MineWindow(config);
        ASSERT_TRUE(mined.ok()) << mined.status();
        const auto canon = Canon(*mined);
        const std::map<std::vector<ItemId>, std::uint64_t> want = {
            {{0}, 2}, {{1}, 1}, {{0, 1}, 1}};
        EXPECT_EQ(canon, want) << WindowMinerKindName(kind);
    }
}

TEST(WindowMinerTest, HonoursSingletonAndLengthFilters) {
    for (const auto kind :
         {WindowMinerKind::kRemine, WindowMinerKind::kIncremental}) {
        auto miner = MakeWindowMiner(kind, 5);
        miner->Insert({0, 1, 2, 3});
        miner->Insert({0, 1, 2, 3});
        MinerConfig config;
        config.min_sup_rel = -1.0;
        config.min_sup_abs = 2;
        config.include_singletons = false;
        config.max_pattern_len = 2;
        const auto mined = miner->MineWindow(config);
        ASSERT_TRUE(mined.ok()) << mined.status();
        for (const Pattern& p : *mined) {
            EXPECT_GE(p.items.size(), 2u) << WindowMinerKindName(kind);
            EXPECT_LE(p.items.size(), 2u) << WindowMinerKindName(kind);
        }
        EXPECT_EQ(mined->size(), 6u);  // C(4,2) pairs, each support 2
    }
}

/// The headline certificate: 20 seeded drifting streams, sliding windows,
/// checkpointed equivalence between both maintenance strategies AND the
/// offline FP-growth ground truth on the materialized window.
TEST(WindowMinerGoldenTest, RemineAndIncrementalAgreeOn20SeededStreams) {
    constexpr std::uint64_t kStreams = 20;
    constexpr std::size_t kWindowCapacity = 160;
    constexpr std::size_t kBatch = 40;
    constexpr std::size_t kCheckEvery = 3;  // batches between checkpoints

    for (std::uint64_t seed = 1; seed <= kStreams; ++seed) {
        testutil::DriftSourceConfig source_config;
        source_config.num_phases = 2;
        source_config.rows_per_phase = 400;
        source_config.eval_rows = 10;
        source_config.attributes = 6;
        source_config.arity = 3;
        source_config.seed = seed;
        testutil::DriftSource source(source_config);

        StreamConfig stream_config;
        stream_config.num_items = source.num_items();
        stream_config.num_classes = source.num_classes();
        stream_config.window_capacity = kWindowCapacity;
        auto db = StreamingDatabase::Create(stream_config);
        ASSERT_TRUE(db.ok());

        auto remine = MakeWindowMiner(WindowMinerKind::kRemine,
                                      source.num_items());
        auto incremental = MakeWindowMiner(WindowMinerKind::kIncremental,
                                           source.num_items());

        MinerConfig mine_config;
        mine_config.min_sup_rel = 0.15;
        mine_config.max_pattern_len = 5;

        std::size_t batches = 0;
        while (!source.exhausted()) {
            TransactionBatch batch = source.NextBatch(kBatch);
            // Canonicalize exactly as the StreamingDatabase stores rows.
            for (auto& txn : batch.transactions) {
                std::sort(txn.begin(), txn.end());
                txn.erase(std::unique(txn.begin(), txn.end()), txn.end());
            }
            auto appended = (*db)->Append(batch);
            ASSERT_TRUE(appended.ok()) << appended.status();
            for (const auto& txn : batch.transactions) {
                remine->Insert(txn);
                incremental->Insert(txn);
            }
            for (const auto& txn : appended->evicted.transactions) {
                remine->Evict(txn);
                incremental->Evict(txn);
            }
            ASSERT_EQ(remine->size(), (*db)->window_size());
            ASSERT_EQ(incremental->size(), (*db)->window_size());

            if (++batches % kCheckEvery != 0) continue;
            const auto from_remine = remine->MineWindow(mine_config);
            const auto from_incremental = incremental->MineWindow(mine_config);
            ASSERT_TRUE(from_remine.ok()) << from_remine.status();
            ASSERT_TRUE(from_incremental.ok()) << from_incremental.status();
            const auto canon_remine = Canon(*from_remine);
            const auto canon_incremental = Canon(*from_incremental);
            ASSERT_EQ(canon_remine, canon_incremental)
                << "stream seed " << seed << ", batch " << batches;

            // Ground truth: offline FP-growth over the materialized window.
            const auto window = (*db)->SnapshotWindow();
            const auto offline = FpGrowthMiner().Mine(*window, mine_config);
            ASSERT_TRUE(offline.ok()) << offline.status();
            ASSERT_EQ(Canon(*offline), canon_incremental)
                << "stream seed " << seed << ", batch " << batches;
        }
        ASSERT_GE(batches, kCheckEvery) << "stream too short to certify";
    }
}

}  // namespace
}  // namespace dfp::stream
