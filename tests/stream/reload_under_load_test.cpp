// Reload-under-load regression: continuous predict traffic across 100 hot
// reloads. Every connection must observe monotonically non-decreasing model
// versions and zero requests may fail — a shed or error during a swap is a
// registry/engine regression, not load.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/model_io.hpp"
#include "core/pipeline.hpp"
#include "ml/nb/naive_bayes.hpp"
#include "serve/client.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "testutil/drift_source.hpp"

namespace dfp::stream {
namespace {

using serve::EngineConfig;
using serve::ModelRegistry;
using serve::PredictionServer;
using serve::ScoringEngine;
using serve::ServeClient;
using serve::ServerConfig;

struct Harness {
    explicit Harness(EngineConfig engine_config = {})
        : engine(registry, engine_config),
          server(registry, engine, FixPort(ServerConfig{}), "") {
        const Status st = server.Start();
        EXPECT_TRUE(st.ok()) << st;
    }
    ~Harness() {
        server.Stop();
        engine.Stop();
    }

    static ServerConfig FixPort(ServerConfig config) {
        config.port = 0;
        return config;
    }

    ModelRegistry registry;
    ScoringEngine engine;
    PredictionServer server;
};

/// Trains a pipeline model on `rows` and persists it under `tag`.
std::string TrainModelFile(std::vector<std::vector<ItemId>> rows,
                           std::vector<ClassLabel> labels,
                           std::size_t num_items, std::size_t num_classes,
                           const std::string& tag) {
    for (auto& txn : rows) {
        std::sort(txn.begin(), txn.end());
        txn.erase(std::unique(txn.begin(), txn.end()), txn.end());
    }
    const TransactionDatabase db = TransactionDatabase::FromTransactions(
        std::move(rows), std::move(labels), num_items, num_classes);
    PipelineConfig config;
    config.miner.min_sup_rel = 0.10;
    config.miner.max_pattern_len = 4;
    config.mmrfs.coverage_delta = 2;
    PatternClassifierPipeline pipeline(config);
    EXPECT_TRUE(
        pipeline.Train(db, std::make_unique<NaiveBayesClassifier>()).ok());
    const std::string path = ::testing::TempDir() + "/dfp_reload_" + tag +
                             "_" + std::to_string(::getpid()) + ".dfp";
    EXPECT_TRUE(SavePipelineModelToFile(pipeline, path).ok());
    return path;
}

struct ClientLog {
    std::uint64_t requests = 0;
    std::uint64_t failures = 0;
    std::uint64_t version_regressions = 0;
    std::uint64_t max_version = 0;
    std::set<std::uint64_t> versions_seen;
};

void ClientLoop(std::uint16_t port,
                const std::vector<std::vector<ItemId>>& queries,
                const std::atomic<bool>& stop, ClientLog* log) {
    auto client = ServeClient::Connect("127.0.0.1", port);
    ASSERT_TRUE(client.ok()) << client.status();
    std::uint64_t last_version = 0;
    for (std::size_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const auto prediction = client->Predict(queries[i % queries.size()]);
        ++log->requests;
        if (!prediction.ok()) {
            ++log->failures;
            continue;
        }
        if (prediction->model_version < last_version) {
            ++log->version_regressions;
        }
        last_version = prediction->model_version;
        log->max_version = std::max(log->max_version, last_version);
        log->versions_seen.insert(last_version);
    }
}

TEST(ReloadUnderLoadTest, HundredHotReloadsUnderContinuousTraffic) {
    constexpr std::size_t kReloads = 100;
    constexpr std::size_t kClients = 4;

    // Two models over the SAME item universe (two phases of one drift
    // source), so either can answer any query after a swap.
    testutil::DriftSourceConfig source_config;
    source_config.num_phases = 2;
    source_config.rows_per_phase = 400;
    source_config.eval_rows = 60;
    source_config.attributes = 8;
    source_config.arity = 3;
    source_config.seed = 17;
    testutil::DriftSource source(source_config);

    TransactionBatch phase0 = source.NextBatch(source_config.rows_per_phase);
    TransactionBatch phase1 = source.NextBatch(source_config.rows_per_phase);
    const std::string path_a = TrainModelFile(
        std::move(phase0.transactions), std::move(phase0.labels),
        source.num_items(), source.num_classes(), "a");
    const std::string path_b = TrainModelFile(
        std::move(phase1.transactions), std::move(phase1.labels),
        source.num_items(), source.num_classes(), "b");

    EngineConfig engine_config;
    engine_config.max_delay_ms = 0.0;
    Harness harness(engine_config);
    ASSERT_TRUE(harness.registry.Reload(path_a).ok());
    ASSERT_EQ(harness.registry.current_version(), 1u);

    std::vector<std::vector<ItemId>> queries;
    for (std::size_t phase = 0; phase < 2; ++phase) {
        const TransactionDatabase& eval = source.EvalSet(phase);
        for (std::size_t t = 0; t < eval.num_transactions(); ++t) {
            queries.push_back(eval.transaction(t));
        }
    }

    std::atomic<bool> stop{false};
    std::vector<ClientLog> logs(kClients);
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back(ClientLoop, harness.server.port(),
                             std::cref(queries), std::cref(stop), &logs[c]);
    }

    // 100 hot swaps, alternating bundles, under live traffic.
    for (std::size_t i = 0; i < kReloads; ++i) {
        const auto reloaded =
            harness.registry.Reload(i % 2 == 0 ? path_b : path_a);
        ASSERT_TRUE(reloaded.ok()) << "reload " << i << ": "
                                   << reloaded.status();
    }
    EXPECT_EQ(harness.registry.current_version(), kReloads + 1);

    stop.store(true);
    for (auto& thread : clients) thread.join();

    std::uint64_t total_requests = 0;
    std::set<std::uint64_t> all_versions;
    for (std::size_t c = 0; c < kClients; ++c) {
        total_requests += logs[c].requests;
        EXPECT_EQ(logs[c].failures, 0u)
            << "client " << c << " shed/errored during swaps";
        EXPECT_EQ(logs[c].version_regressions, 0u)
            << "client " << c << " observed a version go backwards";
        EXPECT_LE(logs[c].max_version, kReloads + 1);
        all_versions.insert(logs[c].versions_seen.begin(),
                            logs[c].versions_seen.end());
    }
    EXPECT_GT(total_requests, 200u) << "traffic too thin to certify swaps";
    EXPECT_GE(all_versions.size(), 2u) << "no request actually crossed a swap";
}

}  // namespace
}  // namespace dfp::stream
