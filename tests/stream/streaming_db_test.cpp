// StreamingDatabase unit suite: sequencing/versioning, canonicalization,
// all-or-nothing validation, FIFO window eviction, snapshot caching,
// compaction, replay, and the decay-weighted view.
#include "stream/streaming_db.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

namespace dfp::stream {
namespace {

TransactionBatch Batch(std::vector<std::vector<ItemId>> txns,
                       std::vector<ClassLabel> labels) {
    TransactionBatch batch;
    batch.transactions = std::move(txns);
    batch.labels = std::move(labels);
    return batch;
}

StreamConfig SmallConfig() {
    StreamConfig config;
    config.num_items = 10;
    config.num_classes = 2;
    config.window_capacity = 4;
    return config;
}

TEST(StreamingDbTest, ValidatesConfig) {
    StreamConfig config;
    EXPECT_FALSE(StreamingDatabase::ValidateConfig(config).ok());
    config.num_items = 4;
    EXPECT_FALSE(StreamingDatabase::ValidateConfig(config).ok());
    config.num_classes = 2;
    EXPECT_TRUE(StreamingDatabase::ValidateConfig(config).ok());
    config.window_capacity = 0;
    EXPECT_FALSE(StreamingDatabase::ValidateConfig(config).ok());
    config.window_capacity = 8;
    config.decay_half_life = -1.0;
    EXPECT_FALSE(StreamingDatabase::ValidateConfig(config).ok());
    config.decay_half_life = 4.0;
    config.decay_quantum = 0;
    EXPECT_FALSE(StreamingDatabase::ValidateConfig(config).ok());
}

TEST(StreamingDbTest, AppendAssignsSequencesAndVersions) {
    auto db = StreamingDatabase::Create(SmallConfig());
    ASSERT_TRUE(db.ok());
    auto r1 = (*db)->Append(Batch({{0, 1}, {2}}, {0, 1}));
    ASSERT_TRUE(r1.ok());
    EXPECT_EQ(r1->first_seq, 0u);
    EXPECT_EQ(r1->version, 1u);
    EXPECT_TRUE(r1->evicted.empty());

    auto r2 = (*db)->Append(Batch({{3}}, {0}));
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r2->first_seq, 2u);
    EXPECT_EQ(r2->version, 2u);
    EXPECT_EQ((*db)->total_appended(), 3u);
    EXPECT_EQ((*db)->window_size(), 3u);
}

TEST(StreamingDbTest, CanonicalizesRows) {
    auto db = StreamingDatabase::Create(SmallConfig());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Append(Batch({{5, 1, 3, 1, 5}}, {0})).ok());
    const TransactionBatch window = (*db)->WindowContents();
    ASSERT_EQ(window.size(), 1u);
    EXPECT_EQ(window.transactions[0], (std::vector<ItemId>{1, 3, 5}));
}

TEST(StreamingDbTest, RejectsBadBatchesAtomically) {
    auto db = StreamingDatabase::Create(SmallConfig());
    ASSERT_TRUE(db.ok());
    // Mismatched arrays.
    EXPECT_FALSE((*db)->Append(Batch({{1}}, {0, 1})).ok());
    // Out-of-universe item in the second row: nothing is appended.
    EXPECT_FALSE((*db)->Append(Batch({{1}, {99}}, {0, 0})).ok());
    // Out-of-range label.
    EXPECT_FALSE((*db)->Append(Batch({{1}}, {7})).ok());
    EXPECT_EQ((*db)->total_appended(), 0u);
    EXPECT_EQ((*db)->version(), 0u);
}

TEST(StreamingDbTest, WindowEvictsFifoAndReturnsEvicted) {
    auto db = StreamingDatabase::Create(SmallConfig());  // capacity 4
    ASSERT_TRUE(db.ok());
    for (ItemId i = 0; i < 4; ++i) {
        ASSERT_TRUE((*db)->Append(Batch({{i}}, {0})).ok());
    }
    auto r = (*db)->Append(Batch({{8}, {9}}, {1, 1}));
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->evicted.size(), 2u);
    EXPECT_EQ(r->evicted.transactions[0], (std::vector<ItemId>{0}));
    EXPECT_EQ(r->evicted.transactions[1], (std::vector<ItemId>{1}));
    EXPECT_EQ(r->evicted.labels[0], 0);
    EXPECT_EQ((*db)->window_size(), 4u);
    EXPECT_EQ((*db)->window_first_seq(), 2u);
}

TEST(StreamingDbTest, SnapshotWindowIsCachedBetweenAppends) {
    auto db = StreamingDatabase::Create(SmallConfig());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Append(Batch({{1}, {2}}, {0, 1})).ok());
    const auto snap1 = (*db)->SnapshotWindow();
    const auto snap2 = (*db)->SnapshotWindow();
    EXPECT_EQ(snap1.get(), snap2.get());
    EXPECT_EQ(snap1->num_transactions(), 2u);

    ASSERT_TRUE((*db)->Append(Batch({{3}}, {0})).ok());
    const auto snap3 = (*db)->SnapshotWindow();
    EXPECT_NE(snap1.get(), snap3.get());
    EXPECT_EQ(snap3->num_transactions(), 3u);
    // The old snapshot is still intact for whoever holds it.
    EXPECT_EQ(snap1->num_transactions(), 2u);
}

TEST(StreamingDbTest, SnapshotWindowMatchesContents) {
    auto db = StreamingDatabase::Create(SmallConfig());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Append(Batch({{0, 1}, {1, 2}, {2, 3}}, {0, 1, 0})).ok());
    const auto snap = (*db)->SnapshotWindow();
    ASSERT_EQ(snap->num_transactions(), 3u);
    EXPECT_EQ(snap->num_items(), 10u);
    EXPECT_EQ(snap->num_classes(), 2u);
    EXPECT_EQ(snap->transaction(1), (std::vector<ItemId>{1, 2}));
    EXPECT_EQ(snap->label(1), 1);
}

TEST(StreamingDbTest, CompactionTrimsRetainedRows) {
    StreamConfig config = SmallConfig();
    config.window_capacity = 4;
    config.compact_every = 6;
    auto db = StreamingDatabase::Create(config);
    ASSERT_TRUE(db.ok());
    // 5 appends: retained grows past the window (evicted prefix kept).
    for (ItemId i = 0; i < 5; ++i) {
        ASSERT_TRUE((*db)->Append(Batch({{i % 8}}, {0})).ok());
    }
    EXPECT_EQ((*db)->compactions(), 0u);
    EXPECT_EQ((*db)->retained_rows(), 5u);
    // The 6th row crosses compact_every: the evicted prefix is dropped.
    ASSERT_TRUE((*db)->Append(Batch({{5}}, {0})).ok());
    EXPECT_EQ((*db)->compactions(), 1u);
    EXPECT_EQ((*db)->retained_rows(), 4u);
    EXPECT_EQ((*db)->window_size(), 4u);
}

TEST(StreamingDbTest, ReplaySinceReturnsSuffixAndFailsWhenCompacted) {
    StreamConfig config = SmallConfig();
    config.window_capacity = 3;
    config.compact_every = 100;  // no compaction during this test
    auto db = StreamingDatabase::Create(config);
    ASSERT_TRUE(db.ok());
    for (ItemId i = 0; i < 5; ++i) {
        ASSERT_TRUE((*db)->Append(Batch({{i}}, {0})).ok());
    }
    auto replay = (*db)->ReplaySince(2);
    ASSERT_TRUE(replay.ok());
    ASSERT_EQ(replay->size(), 3u);
    EXPECT_EQ(replay->transactions[0], (std::vector<ItemId>{2}));
    // Past the end: empty, not an error.
    auto empty = (*db)->ReplaySince(100);
    ASSERT_TRUE(empty.ok());
    EXPECT_TRUE(empty->empty());

    // Force a compaction, then ask for a compacted-away seq.
    StreamConfig tight = SmallConfig();
    tight.window_capacity = 2;
    tight.compact_every = 3;
    auto db2 = StreamingDatabase::Create(tight);
    ASSERT_TRUE(db2.ok());
    for (ItemId i = 0; i < 6; ++i) {
        ASSERT_TRUE((*db2)->Append(Batch({{i}}, {0})).ok());
    }
    ASSERT_GT((*db2)->compactions(), 0u);
    const auto gone = (*db2)->ReplaySince(0);
    EXPECT_EQ(gone.status().code(), StatusCode::kOutOfRange);
}

TEST(StreamingDbTest, DecayedSnapshotReplicatesByAge) {
    StreamConfig config = SmallConfig();
    config.window_capacity = 8;
    config.decay_half_life = 1.0;  // weight halves every row of age
    config.decay_quantum = 4;
    auto db = StreamingDatabase::Create(config);
    ASSERT_TRUE(db.ok());
    // Ages 2, 1, 0 → weights 0.25, 0.5, 1.0 → replicas 1, 2, 4.
    ASSERT_TRUE((*db)->Append(Batch({{0}, {1}, {2}}, {0, 0, 0})).ok());
    auto decayed = (*db)->SnapshotDecayed();
    ASSERT_TRUE(decayed.ok());
    EXPECT_EQ(decayed->num_transactions(), 7u);
    std::size_t newest = 0;
    for (std::size_t t = 0; t < decayed->num_transactions(); ++t) {
        if (decayed->transaction(t) == std::vector<ItemId>{2}) ++newest;
    }
    EXPECT_EQ(newest, 4u);
}

TEST(StreamingDbTest, DecayedSnapshotRequiresHalfLife) {
    auto db = StreamingDatabase::Create(SmallConfig());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Append(Batch({{1}}, {0})).ok());
    EXPECT_EQ((*db)->SnapshotDecayed().status().code(),
              StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace dfp::stream
