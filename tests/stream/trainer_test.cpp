// ContinuousTrainer unit suite: config validation, bootstrap/schedule/drift
// retrain triggers, prequential drift detection across a concept change, and
// failpoint-injected reload failure (previous model keeps serving, retry
// armed and eventually succeeding).
#include "stream/trainer.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <string>

#include "common/failpoint.hpp"
#include "serve/registry.hpp"
#include "stream/drift.hpp"
#include "stream/streaming_db.hpp"
#include "testutil/drift_source.hpp"

namespace dfp::stream {
namespace {

class TrainerTest : public ::testing::Test {
  protected:
    void SetUp() override { FailpointRegistry::Get().DisableAll(); }
    void TearDown() override { FailpointRegistry::Get().DisableAll(); }

    static std::string ModelDir(const std::string& tag) {
        return ::testing::TempDir() + "/dfp_stream_" + tag + "_" +
               std::to_string(::getpid());
    }
};

testutil::DriftSourceConfig SourceConfig(std::uint64_t seed) {
    testutil::DriftSourceConfig config;
    config.num_phases = 2;
    config.rows_per_phase = 900;
    config.eval_rows = 250;
    config.attributes = 8;
    config.arity = 3;
    config.seed = seed;
    return config;
}

ContinuousTrainerConfig TrainerConfig(const std::string& model_dir) {
    ContinuousTrainerConfig config;
    config.pipeline.miner.min_sup_rel = 0.12;
    config.pipeline.miner.max_pattern_len = 4;
    config.pipeline.mmrfs.coverage_delta = 2;
    config.learner_type = "nb";
    config.min_window = 200;
    config.drift.window = 160;
    config.drift.min_observations = 80;
    config.drift.accuracy_drop = 0.12;
    config.drift.class_shift = 0.35;
    config.model_dir = model_dir;
    return config;
}

/// Accuracy of the currently served model over a held-out database, scored
/// through the same index path the engine uses.
double ServedAccuracy(const serve::ModelRegistry& registry,
                      const TransactionDatabase& eval) {
    const serve::ServablePtr snap = registry.Snapshot();
    if (snap == nullptr || eval.num_transactions() == 0) return 0.0;
    serve::PatternMatchIndex::Scratch scratch;
    std::size_t correct = 0;
    for (std::size_t t = 0; t < eval.num_transactions(); ++t) {
        snap->index.InitScratch(&scratch);
        snap->index.EncodeInto(eval.transaction(t), &scratch);
        if (snap->model.learner().Predict(scratch.encoded) == eval.label(t)) {
            ++correct;
        }
    }
    return static_cast<double>(correct) /
           static_cast<double>(eval.num_transactions());
}

StreamConfig StreamFor(const testutil::DriftSource& source,
                       std::size_t capacity) {
    StreamConfig config;
    config.num_items = source.num_items();
    config.num_classes = source.num_classes();
    config.window_capacity = capacity;
    return config;
}

TEST_F(TrainerTest, CreateValidatesConfig) {
    testutil::DriftSource source(SourceConfig(3));
    auto db = StreamingDatabase::Create(StreamFor(source, 256));
    ASSERT_TRUE(db.ok());
    serve::ModelRegistry registry;

    EXPECT_FALSE(
        ContinuousTrainer::Create(TrainerConfig(""), db->get(), &registry)
            .ok());
    EXPECT_FALSE(ContinuousTrainer::Create(TrainerConfig("/tmp/x"), nullptr,
                                           &registry)
                     .ok());
    ContinuousTrainerConfig bad_learner = TrainerConfig("/tmp/x");
    bad_learner.learner_type = "no-such-learner";
    EXPECT_FALSE(
        ContinuousTrainer::Create(bad_learner, db->get(), &registry).ok());
    ContinuousTrainerConfig decayed = TrainerConfig("/tmp/x");
    decayed.use_decayed_snapshot = true;  // stream has no decay configured
    EXPECT_FALSE(
        ContinuousTrainer::Create(decayed, db->get(), &registry).ok());
}

TEST_F(TrainerTest, BootstrapsFirstModelOnceWindowFills) {
    testutil::DriftSource source(SourceConfig(4));
    auto db = StreamingDatabase::Create(StreamFor(source, 400));
    ASSERT_TRUE(db.ok());
    serve::ModelRegistry registry;
    auto trainer = ContinuousTrainer::Create(TrainerConfig(ModelDir("boot")),
                                             db->get(), &registry);
    ASSERT_TRUE(trainer.ok()) << trainer.status();

    // Below min_window: the pump does nothing.
    ASSERT_TRUE((*trainer)->Ingest(source.NextBatch(100)).ok());
    auto pumped = (*trainer)->MaybeRetrain();
    ASSERT_TRUE(pumped.ok());
    EXPECT_FALSE(*pumped);
    EXPECT_EQ(registry.current_version(), 0u);

    // Window filled: bootstrap retrain publishes model v1.
    ASSERT_TRUE((*trainer)->Ingest(source.NextBatch(200)).ok());
    pumped = (*trainer)->MaybeRetrain();
    ASSERT_TRUE(pumped.ok()) << pumped.status();
    EXPECT_TRUE(*pumped);
    EXPECT_EQ(registry.current_version(), 1u);
    const TrainerStats stats = (*trainer)->stats();
    EXPECT_EQ(stats.retrains, 1u);
    EXPECT_EQ(stats.retrain_failures, 0u);
    EXPECT_GT(stats.last_model_version, 0u);

    // The bootstrapped model actually fits the phase it trained on.
    EXPECT_GE(ServedAccuracy(registry, source.EvalSet(0)), 0.70);
}

TEST_F(TrainerTest, ScheduleTriggersRetrainEveryNRows) {
    testutil::DriftSource source(SourceConfig(5));
    auto db = StreamingDatabase::Create(StreamFor(source, 400));
    ASSERT_TRUE(db.ok());
    serve::ModelRegistry registry;
    ContinuousTrainerConfig config = TrainerConfig(ModelDir("sched"));
    config.retrain_every = 300;
    config.drift_trigger = false;
    auto trainer = ContinuousTrainer::Create(config, db->get(), &registry);
    ASSERT_TRUE(trainer.ok());

    ASSERT_TRUE((*trainer)->Ingest(source.NextBatch(300)).ok());
    ASSERT_TRUE((*trainer)->MaybeRetrain().ok());  // bootstrap
    ASSERT_EQ(registry.current_version(), 1u);

    // 299 rows since retrain: no trigger. One more row: schedule fires.
    ASSERT_TRUE((*trainer)->Ingest(source.NextBatch(299)).ok());
    auto pumped = (*trainer)->MaybeRetrain();
    ASSERT_TRUE(pumped.ok());
    EXPECT_FALSE(*pumped);
    ASSERT_TRUE((*trainer)->Ingest(source.NextBatch(1)).ok());
    pumped = (*trainer)->MaybeRetrain();
    ASSERT_TRUE(pumped.ok()) << pumped.status();
    EXPECT_TRUE(*pumped);
    EXPECT_EQ(registry.current_version(), 2u);
    EXPECT_EQ((*trainer)->stats().schedule_triggers, 1u);
}

TEST_F(TrainerTest, DetectsDriftAndRecovers) {
    testutil::DriftSource source(SourceConfig(6));
    auto db = StreamingDatabase::Create(StreamFor(source, 500));
    ASSERT_TRUE(db.ok());
    serve::ModelRegistry registry;
    auto trainer = ContinuousTrainer::Create(TrainerConfig(ModelDir("drift")),
                                             db->get(), &registry);
    ASSERT_TRUE(trainer.ok());

    // Phase 0: fill the window and bootstrap.
    while (source.PhaseOf(source.position()) == 0 && !source.exhausted()) {
        ASSERT_TRUE((*trainer)->Ingest(source.NextBatch(50)).ok());
        ASSERT_TRUE((*trainer)->MaybeRetrain().ok());
    }
    const std::uint64_t phase0_version = registry.current_version();
    ASSERT_GT(phase0_version, 0u);
    const double phase0_acc = ServedAccuracy(registry, source.EvalSet(0));
    EXPECT_GE(phase0_acc, 0.70);

    // Phase 1: the concept changed. Prequential accuracy collapses, the
    // detector fires, the trainer retrains on the new window.
    while (!source.exhausted()) {
        ASSERT_TRUE((*trainer)->Ingest(source.NextBatch(50)).ok());
        ASSERT_TRUE((*trainer)->MaybeRetrain().ok());
    }
    const TrainerStats stats = (*trainer)->stats();
    EXPECT_GT(stats.drift_triggers, 0u);
    EXPECT_GT(registry.current_version(), phase0_version);
    const double phase1_acc = ServedAccuracy(registry, source.EvalSet(1));
    EXPECT_GE(phase1_acc, phase0_acc - 0.10)
        << "accuracy did not recover after drift";
}

TEST_F(TrainerTest, ReloadFailureLeavesPreviousModelServingAndRetries) {
    testutil::DriftSource source(SourceConfig(7));
    auto db = StreamingDatabase::Create(StreamFor(source, 400));
    ASSERT_TRUE(db.ok());
    serve::ModelRegistry registry;
    ContinuousTrainerConfig config = TrainerConfig(ModelDir("failpoint"));
    config.retrain_every = 200;
    config.drift_trigger = false;
    auto trainer = ContinuousTrainer::Create(config, db->get(), &registry);
    ASSERT_TRUE(trainer.ok());

    ASSERT_TRUE((*trainer)->Ingest(source.NextBatch(300)).ok());
    ASSERT_TRUE((*trainer)->MaybeRetrain().ok());
    ASSERT_EQ(registry.current_version(), 1u);

    // Arm a one-shot validation failure: the next reload fails after a full
    // train cycle, the previous version must keep serving.
    ASSERT_TRUE(FailpointRegistry::Get()
                    .Configure("serve.registry.validate=nth(1)", 1)
                    .ok());
    ASSERT_TRUE((*trainer)->Ingest(source.NextBatch(200)).ok());
    auto pumped = (*trainer)->MaybeRetrain();
    EXPECT_FALSE(pumped.ok());  // the triggered retrain failed to publish
    EXPECT_EQ(registry.current_version(), 1u) << "failed reload evicted model";
    TrainerStats stats = (*trainer)->stats();
    EXPECT_EQ(stats.retrain_failures, 1u);
    EXPECT_TRUE(stats.retry_pending);

    // The failpoint was one-shot: the armed retry succeeds on the next pump
    // without any new data.
    pumped = (*trainer)->MaybeRetrain();
    ASSERT_TRUE(pumped.ok()) << pumped.status();
    EXPECT_TRUE(*pumped);
    EXPECT_EQ(registry.current_version(), 2u);
    stats = (*trainer)->stats();
    EXPECT_FALSE(stats.retry_pending);
    EXPECT_EQ(stats.retrains, 2u);
}

TEST_F(TrainerTest, DecayedSnapshotTrainingWorksEndToEnd) {
    testutil::DriftSource source(SourceConfig(8));
    StreamConfig stream_config = StreamFor(source, 400);
    stream_config.decay_half_life = 200.0;
    stream_config.decay_quantum = 4;
    auto db = StreamingDatabase::Create(stream_config);
    ASSERT_TRUE(db.ok());
    serve::ModelRegistry registry;
    ContinuousTrainerConfig config = TrainerConfig(ModelDir("decay"));
    config.use_decayed_snapshot = true;
    // Also exercises the non-default maintenance strategy inside the trainer.
    config.window_miner = WindowMinerKind::kIncremental;
    auto trainer = ContinuousTrainer::Create(config, db->get(), &registry);
    ASSERT_TRUE(trainer.ok()) << trainer.status();

    ASSERT_TRUE((*trainer)->Ingest(source.NextBatch(400)).ok());
    auto pumped = (*trainer)->MaybeRetrain();
    ASSERT_TRUE(pumped.ok()) << pumped.status();
    EXPECT_TRUE(*pumped);
    EXPECT_GE(ServedAccuracy(registry, source.EvalSet(0)), 0.65);
}

}  // namespace
}  // namespace dfp::stream
