// The concept-drift certification scenario (ISSUE/DESIGN.md §16): a live
// loopback prediction server answers traffic from client threads while the
// main thread streams a seeded piecewise-stationary source through the
// ContinuousTrainer. Certified invariants:
//
//  * served accuracy recovers within tolerance after each of the 3 drifts
//    (4 phases), measured on each phase's held-out set;
//  * no prediction is dropped and none is mis-versioned during any hot swap —
//    every request succeeds and every connection observes monotonically
//    non-decreasing model versions bounded by the registry's;
//  * a failpoint-injected reload failure mid-stream leaves the previous
//    version serving with the trainer's retry armed; the next pump publishes.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.hpp"
#include "serve/client.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "stream/streaming_db.hpp"
#include "stream/trainer.hpp"
#include "testutil/drift_source.hpp"

namespace dfp::stream {
namespace {

using serve::EngineConfig;
using serve::ModelRegistry;
using serve::PredictionServer;
using serve::ScoringEngine;
using serve::ServeClient;
using serve::ServerConfig;

struct Harness {
    explicit Harness(EngineConfig engine_config = {})
        : engine(registry, engine_config),
          server(registry, engine, FixPort(ServerConfig{}), "") {
        const Status st = server.Start();
        EXPECT_TRUE(st.ok()) << st;
    }
    ~Harness() {
        server.Stop();
        engine.Stop();
    }

    static ServerConfig FixPort(ServerConfig config) {
        config.port = 0;
        return config;
    }

    ModelRegistry registry;
    ScoringEngine engine;
    PredictionServer server;
};

/// Per-connection traffic log. Counters only — a client may push tens of
/// thousands of requests through the scenario.
struct ClientLog {
    std::uint64_t requests = 0;
    std::uint64_t failures = 0;
    std::uint64_t version_regressions = 0;
    std::uint64_t max_version = 0;
    std::set<std::uint64_t> versions_seen;
};

/// Closed-loop predict traffic until `stop`; one connection per thread.
void ClientLoop(std::uint16_t port,
                const std::vector<std::vector<ItemId>>& queries,
                const std::atomic<bool>& stop, ClientLog* log) {
    auto client = ServeClient::Connect("127.0.0.1", port);
    ASSERT_TRUE(client.ok()) << client.status();
    std::uint64_t last_version = 0;
    for (std::size_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const auto prediction = client->Predict(queries[i % queries.size()]);
        ++log->requests;
        if (!prediction.ok()) {
            ++log->failures;
            continue;
        }
        if (prediction->model_version < last_version) {
            ++log->version_regressions;
        }
        last_version = prediction->model_version;
        log->max_version = std::max(log->max_version, last_version);
        log->versions_seen.insert(last_version);
    }
}

double ServedAccuracy(const ModelRegistry& registry,
                      const TransactionDatabase& eval) {
    const serve::ServablePtr snap = registry.Snapshot();
    if (snap == nullptr || eval.num_transactions() == 0) return 0.0;
    serve::PatternMatchIndex::Scratch scratch;
    std::size_t correct = 0;
    for (std::size_t t = 0; t < eval.num_transactions(); ++t) {
        snap->index.InitScratch(&scratch);
        snap->index.EncodeInto(eval.transaction(t), &scratch);
        if (snap->model.learner().Predict(scratch.encoded) == eval.label(t)) {
            ++correct;
        }
    }
    return static_cast<double>(correct) /
           static_cast<double>(eval.num_transactions());
}

class DriftScenarioTest : public ::testing::Test {
  protected:
    void SetUp() override { FailpointRegistry::Get().DisableAll(); }
    void TearDown() override { FailpointRegistry::Get().DisableAll(); }
};

TEST_F(DriftScenarioTest, LiveServerRecoversAcrossThreeDrifts) {
    constexpr std::size_t kBatch = 50;
    constexpr std::size_t kClients = 2;

    testutil::DriftSourceConfig source_config;
    source_config.num_phases = 4;  // 3 drifts
    source_config.rows_per_phase = 800;
    source_config.eval_rows = 250;
    source_config.attributes = 8;
    source_config.arity = 3;
    source_config.seed = 11;
    testutil::DriftSource source(source_config);

    StreamConfig stream_config;
    stream_config.num_items = source.num_items();
    stream_config.num_classes = source.num_classes();
    stream_config.window_capacity = 500;
    auto db = StreamingDatabase::Create(stream_config);
    ASSERT_TRUE(db.ok());

    EngineConfig engine_config;
    engine_config.max_delay_ms = 0.0;
    Harness harness(engine_config);

    ContinuousTrainerConfig trainer_config;
    trainer_config.pipeline.miner.min_sup_rel = 0.12;
    trainer_config.pipeline.miner.max_pattern_len = 4;
    trainer_config.pipeline.mmrfs.coverage_delta = 2;
    trainer_config.learner_type = "nb";
    trainer_config.min_window = 250;
    trainer_config.drift.window = 160;
    trainer_config.drift.min_observations = 80;
    trainer_config.drift.accuracy_drop = 0.12;
    trainer_config.drift.class_shift = 0.35;
    trainer_config.model_dir = ::testing::TempDir() + "/dfp_scenario_" +
                               std::to_string(::getpid());
    auto trainer = ContinuousTrainer::Create(trainer_config, db->get(),
                                             &harness.registry);
    ASSERT_TRUE(trainer.ok()) << trainer.status();

    // Query pool for the client threads: phase-0 held-out transactions. The
    // scenario asserts liveness and version discipline per request; accuracy
    // is measured separately against each phase's eval set.
    std::vector<std::vector<ItemId>> queries;
    const TransactionDatabase& pool = source.EvalSet(0);
    for (std::size_t t = 0; t < pool.num_transactions(); ++t) {
        queries.push_back(pool.transaction(t));
    }

    // Phase 0: stream until the bootstrap retrain publishes, then open
    // client traffic against the live server for the rest of the run.
    std::atomic<bool> stop{false};
    std::vector<ClientLog> logs(kClients);
    std::vector<std::thread> clients;
    std::vector<double> phase_accuracy;
    bool traffic_started = false;

    for (std::size_t phase = 0; phase < source_config.num_phases; ++phase) {
        while (!source.exhausted() &&
               source.PhaseOf(source.position()) == phase) {
            ASSERT_TRUE((*trainer)->Ingest(source.NextBatch(kBatch)).ok());
            const auto pumped = (*trainer)->MaybeRetrain();
            ASSERT_TRUE(pumped.ok()) << pumped.status();
            if (!traffic_started && harness.registry.current_version() > 0) {
                traffic_started = true;
                for (std::size_t c = 0; c < kClients; ++c) {
                    clients.emplace_back(ClientLoop, harness.server.port(),
                                         std::cref(queries), std::cref(stop),
                                         &logs[c]);
                }
            }
        }
        ASSERT_TRUE(traffic_started) << "phase 0 never bootstrapped a model";
        phase_accuracy.push_back(
            ServedAccuracy(harness.registry, source.EvalSet(phase)));
        std::printf("[scenario] phase %zu: served accuracy %.3f, model v%llu, "
                    "%llu drift triggers so far\n",
                    phase, phase_accuracy.back(),
                    static_cast<unsigned long long>(
                        harness.registry.current_version()),
                    static_cast<unsigned long long>(
                        (*trainer)->stats().drift_triggers));

        if (phase != 1) continue;
        // Mid-stream failure drill: the next reload is failpoint-killed after
        // a full train cycle. The previous version must keep serving (clients
        // are live right now) and the retry must publish on the next pump.
        const std::uint64_t version_before = harness.registry.current_version();
        ASSERT_TRUE(FailpointRegistry::Get()
                        .Configure("serve.registry.validate=nth(1)", 1)
                        .ok());
        EXPECT_FALSE((*trainer)->RetrainNow("drill").ok());
        EXPECT_EQ(harness.registry.current_version(), version_before)
            << "failed reload must not evict the serving model";
        EXPECT_TRUE((*trainer)->stats().retry_pending);
        const auto retried = (*trainer)->MaybeRetrain();
        ASSERT_TRUE(retried.ok()) << retried.status();
        EXPECT_TRUE(*retried);
        EXPECT_EQ(harness.registry.current_version(), version_before + 1);
        EXPECT_FALSE((*trainer)->stats().retry_pending);
    }

    stop.store(true);
    for (auto& thread : clients) thread.join();

    // (a) Accuracy recovered after every drift: each phase's end-of-phase
    // served accuracy is solid on that phase's held-out set and within
    // tolerance of the pre-drift level.
    ASSERT_EQ(phase_accuracy.size(), source_config.num_phases);
    EXPECT_GE(phase_accuracy[0], 0.70);
    for (std::size_t phase = 1; phase < phase_accuracy.size(); ++phase) {
        EXPECT_GE(phase_accuracy[phase], 0.65)
            << "accuracy did not recover in phase " << phase;
        EXPECT_GE(phase_accuracy[phase], phase_accuracy[0] - 0.12)
            << "phase " << phase << " recovery outside tolerance";
    }
    const TrainerStats stats = (*trainer)->stats();
    EXPECT_GE(stats.drift_triggers, 3u)
        << "each of the 3 drifts should fire the detector at least once";

    // (b) No prediction dropped or mis-versioned during any swap.
    const std::uint64_t final_version = harness.registry.current_version();
    std::set<std::uint64_t> all_versions;
    for (std::size_t c = 0; c < kClients; ++c) {
        EXPECT_GT(logs[c].requests, 100u) << "client " << c << " barely ran";
        EXPECT_EQ(logs[c].failures, 0u)
            << "client " << c << " had predictions dropped";
        EXPECT_EQ(logs[c].version_regressions, 0u)
            << "client " << c << " observed a version go backwards";
        EXPECT_LE(logs[c].max_version, final_version);
        all_versions.insert(logs[c].versions_seen.begin(),
                            logs[c].versions_seen.end());
    }
    // Traffic genuinely spanned hot swaps: more than one version answered.
    EXPECT_GE(all_versions.size(), 2u);
    EXPECT_EQ(stats.retrain_failures, 1u);  // exactly the injected drill
}

}  // namespace
}  // namespace dfp::stream
