// Deterministic concept-drifting stream source for tests and benches.
//
// Piecewise-stationary: the stream is a sequence of phases, each a seeded
// synthetic dataset (data/synthetic) with the SAME shape — rows, attributes,
// arity, classes — but a DIFFERENT generator seed. Identical shape means an
// identical schema and therefore an identical ItemEncoder and item universe
// across phases; a different seed means different planted concept patterns
// and different class-conditional distributions. Crossing a phase boundary is
// therefore a pure concept drift: the vocabulary stays fixed while the
// pattern→class mapping changes, which is exactly what the ContinuousTrainer
// must detect and retrain through.
//
// Every phase also carries a held-out evaluation database drawn from the same
// phase distribution (disjoint seed), so tests can measure "accuracy on the
// current concept" at any point in the stream.
//
// Deterministic in config.seed: batches, boundaries and eval sets are
// identical across runs, platforms, and sanitizers. Used by tests/stream/
// (scenario + golden-equivalence suites) and bench/bench_stream.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "data/encoder.hpp"
#include "data/transaction_db.hpp"
#include "stream/streaming_db.hpp"

namespace dfp::testutil {

struct DriftSourceConfig {
    std::size_t num_phases = 3;
    std::size_t rows_per_phase = 1800;
    std::size_t eval_rows = 300;  ///< held-out rows per phase
    std::size_t attributes = 8;
    std::size_t arity = 3;
    std::size_t classes = 2;
    double label_noise = 0.02;
    std::uint64_t seed = 1;
};

class DriftSource {
  public:
    explicit DriftSource(DriftSourceConfig config);

    std::size_t num_items() const { return num_items_; }
    std::size_t num_classes() const { return config_.classes; }
    std::size_t num_phases() const { return config_.num_phases; }
    std::uint64_t total_rows() const {
        return static_cast<std::uint64_t>(config_.num_phases) *
               config_.rows_per_phase;
    }

    /// Phase of the row at stream position `row` (0-based).
    std::size_t PhaseOf(std::uint64_t row) const {
        return static_cast<std::size_t>(row / config_.rows_per_phase);
    }

    /// Stream cursor: rows handed out so far.
    std::uint64_t position() const { return position_; }
    bool exhausted() const { return position_ >= total_rows(); }

    /// Next `n` rows (canonical transactions + labels), advancing the cursor;
    /// a batch may straddle a phase boundary. Returns fewer than `n` rows
    /// (possibly zero) at the end of the stream.
    stream::TransactionBatch NextBatch(std::size_t n);

    /// Rewinds the cursor to the start of the stream.
    void Reset() { position_ = 0; }

    /// Held-out evaluation database of one phase.
    const TransactionDatabase& EvalSet(std::size_t phase) const {
        return eval_sets_[phase];
    }

  private:
    DriftSourceConfig config_;
    std::size_t num_items_ = 0;
    /// All stream rows, phase-major: row r of the stream is stream_[r].
    std::vector<std::vector<ItemId>> stream_;
    std::vector<ClassLabel> labels_;
    std::vector<TransactionDatabase> eval_sets_;
    std::uint64_t position_ = 0;
};

}  // namespace dfp::testutil
