#include "testutil/drift_source.hpp"

#include <cassert>

#include "data/synthetic.hpp"

namespace dfp::testutil {

namespace {

SyntheticSpec PhaseSpec(const DriftSourceConfig& config, std::size_t phase) {
    SyntheticSpec spec;
    spec.name = "drift_phase";
    spec.classes = config.classes;
    spec.attributes = config.attributes;
    spec.arity = config.arity;
    spec.label_noise = config.label_noise;
    // Strong planted patterns and mild marginals: the concept lives in value
    // combinations, so a drifted phase genuinely requires re-mining.
    spec.carrier_prob = 0.75;
    spec.marginal_skew = 0.30;
    spec.leak_prob = 0.05;
    // A distinct seed per phase replants the concepts — that IS the drift.
    spec.seed = config.seed * 7919 + phase * 104729 + 17;
    return spec;
}

}  // namespace

DriftSource::DriftSource(DriftSourceConfig config) : config_(config) {
    assert(config_.num_phases > 0);
    stream_.reserve(config_.num_phases * config_.rows_per_phase);
    labels_.reserve(config_.num_phases * config_.rows_per_phase);
    eval_sets_.reserve(config_.num_phases);

    for (std::size_t phase = 0; phase < config_.num_phases; ++phase) {
        // One dataset per phase covering stream + eval rows: the generator
        // plants the phase's concepts from the seed, then draws rows i.i.d.
        // from them. The first rows_per_phase rows stream; the remaining
        // eval_rows form the held-out set of the same concept.
        SyntheticSpec spec = PhaseSpec(config_, phase);
        spec.rows = config_.rows_per_phase + config_.eval_rows;
        const Dataset data = GenerateSynthetic(spec);

        // The schema depends only on the shape (shared by every phase), so
        // the item universe is identical across phases.
        auto encoder = ItemEncoder::FromSchema(data);
        assert(encoder.ok());
        if (phase == 0) num_items_ = encoder->num_items();
        assert(encoder->num_items() == num_items_);

        std::vector<std::vector<ItemId>> eval_txns;
        std::vector<ClassLabel> eval_labels;
        eval_txns.reserve(config_.eval_rows);
        eval_labels.reserve(config_.eval_rows);
        for (std::size_t r = 0; r < data.num_rows(); ++r) {
            if (r < config_.rows_per_phase) {
                stream_.push_back(encoder->EncodeRow(data, r));
                labels_.push_back(data.label(r));
            } else {
                eval_txns.push_back(encoder->EncodeRow(data, r));
                eval_labels.push_back(data.label(r));
            }
        }
        eval_sets_.push_back(TransactionDatabase::FromTransactions(
            std::move(eval_txns), std::move(eval_labels), num_items_,
            config_.classes));
    }
}

stream::TransactionBatch DriftSource::NextBatch(std::size_t n) {
    stream::TransactionBatch batch;
    const std::uint64_t end =
        std::min<std::uint64_t>(position_ + n, total_rows());
    batch.transactions.reserve(static_cast<std::size_t>(end - position_));
    batch.labels.reserve(static_cast<std::size_t>(end - position_));
    for (; position_ < end; ++position_) {
        batch.transactions.push_back(
            stream_[static_cast<std::size_t>(position_)]);
        batch.labels.push_back(labels_[static_cast<std::size_t>(position_)]);
    }
    return batch;
}

}  // namespace dfp::testutil
