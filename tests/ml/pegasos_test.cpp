#include "ml/svm/pegasos.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dfp {
namespace {

TEST(PegasosTest, SeparableBlobs) {
    Rng rng(1);
    FeatureMatrix x(200, 2);
    std::vector<ClassLabel> y;
    for (std::size_t i = 0; i < 200; ++i) {
        const bool pos = i % 2 == 0;
        x.At(i, 0) = rng.Gaussian(pos ? 3.0 : 0.0, 0.4);
        x.At(i, 1) = rng.Gaussian(pos ? 3.0 : 0.0, 0.4);
        y.push_back(pos ? 1 : 0);
    }
    PegasosClassifier svm;
    ASSERT_TRUE(svm.Train(x, y, 2).ok());
    EXPECT_GT(svm.Accuracy(x, y), 0.97);
}

TEST(PegasosTest, MulticlassOneVsRest) {
    Rng rng(2);
    FeatureMatrix x(300, 3);
    std::vector<ClassLabel> y;
    for (std::size_t i = 0; i < 300; ++i) {
        const ClassLabel c = i % 3;
        for (std::size_t f = 0; f < 3; ++f) {
            x.At(i, f) = rng.Gaussian(f == c ? 2.5 : 0.0, 0.5);
        }
        y.push_back(c);
    }
    PegasosClassifier svm;
    ASSERT_TRUE(svm.Train(x, y, 3).ok());
    EXPECT_GT(svm.Accuracy(x, y), 0.95);
}

TEST(PegasosTest, BinaryFeatureSpace) {
    // The framework's actual regime: sparse 0/1 features.
    Rng rng(3);
    FeatureMatrix x(500, 20);
    std::vector<ClassLabel> y;
    for (std::size_t i = 0; i < 500; ++i) {
        const ClassLabel c = i % 2;
        for (std::size_t f = 0; f < 20; ++f) {
            const double p = (f < 3 && c == 1) ? 0.8 : 0.2;
            x.At(i, f) = rng.Bernoulli(p) ? 1.0 : 0.0;
        }
        y.push_back(c);
    }
    PegasosClassifier svm;
    ASSERT_TRUE(svm.Train(x, y, 2).ok());
    EXPECT_GT(svm.Accuracy(x, y), 0.85);
}

TEST(PegasosTest, DeterministicForSeed) {
    Rng rng(4);
    FeatureMatrix x(100, 2);
    std::vector<ClassLabel> y;
    for (std::size_t i = 0; i < 100; ++i) {
        x.At(i, 0) = rng.Uniform();
        x.At(i, 1) = rng.Uniform();
        y.push_back(x.At(i, 0) > 0.5 ? 1 : 0);
    }
    PegasosClassifier a;
    PegasosClassifier b;
    ASSERT_TRUE(a.Train(x, y, 2).ok());
    ASSERT_TRUE(b.Train(x, y, 2).ok());
    for (std::size_t i = 0; i < 100; ++i) {
        EXPECT_EQ(a.Predict(x.Row(i)), b.Predict(x.Row(i)));
    }
}

TEST(PegasosTest, RejectsBadInput) {
    PegasosClassifier svm;
    EXPECT_FALSE(svm.Train(FeatureMatrix(), {}, 2).ok());
    FeatureMatrix x(2, 1);
    EXPECT_FALSE(svm.Train(x, {0}, 2).ok());
}

}  // namespace
}  // namespace dfp
