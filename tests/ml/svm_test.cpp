#include "ml/svm/svm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ml/svm/smo.hpp"

namespace dfp {
namespace {

// Linearly separable 2-D blobs around (0,0) and (3,3).
void MakeBlobs(std::size_t n_per_class, double spread, std::uint64_t seed,
               FeatureMatrix* x, std::vector<int>* y_pm,
               std::vector<ClassLabel>* y_cl) {
    Rng rng(seed);
    *x = FeatureMatrix(2 * n_per_class, 2);
    y_pm->clear();
    y_cl->clear();
    for (std::size_t i = 0; i < 2 * n_per_class; ++i) {
        const bool pos = i < n_per_class;
        const double cx = pos ? 3.0 : 0.0;
        x->At(i, 0) = rng.Gaussian(cx, spread);
        x->At(i, 1) = rng.Gaussian(cx, spread);
        y_pm->push_back(pos ? 1 : -1);
        y_cl->push_back(pos ? 1 : 0);
    }
}

TEST(SmoTest, SeparableDataClassifiedPerfectly) {
    FeatureMatrix x;
    std::vector<int> y;
    std::vector<ClassLabel> yc;
    MakeBlobs(40, 0.3, 1, &x, &y, &yc);
    SmoConfig config;
    config.c = 10.0;
    auto model = TrainSmo(x, y, config);
    ASSERT_TRUE(model.ok()) << model.status();
    for (std::size_t i = 0; i < x.rows(); ++i) {
        EXPECT_GT(static_cast<double>(y[i]) * model->Decision(x.Row(i)), 0.0);
    }
}

TEST(SmoTest, KktConditionsSatisfied) {
    FeatureMatrix x;
    std::vector<int> y;
    std::vector<ClassLabel> yc;
    MakeBlobs(50, 0.8, 2, &x, &y, &yc);
    SmoConfig config;
    config.c = 1.0;
    auto model = TrainSmo(x, y, config);
    ASSERT_TRUE(model.ok());
    // Platt's loop terminates when no example violates KKT beyond tol; allow
    // modest slack for the bias averaging.
    EXPECT_LT(MaxKktViolation(*model, x, y, config.c), 10 * config.tol + 0.05);
}

TEST(SmoTest, DualConstraintHolds) {
    FeatureMatrix x;
    std::vector<int> y;
    std::vector<ClassLabel> yc;
    MakeBlobs(40, 1.0, 3, &x, &y, &yc);
    SmoConfig config;
    auto model = TrainSmo(x, y, config);
    ASSERT_TRUE(model.ok());
    double sum = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        EXPECT_GE(model->alpha[i], -1e-12);
        EXPECT_LE(model->alpha[i], config.c + 1e-12);
        sum += model->alpha[i] * y[i];
    }
    EXPECT_NEAR(sum, 0.0, 1e-6);
}

TEST(SmoTest, LinearWeightsAgreeWithSvExpansion) {
    FeatureMatrix x;
    std::vector<int> y;
    std::vector<ClassLabel> yc;
    MakeBlobs(30, 0.5, 4, &x, &y, &yc);
    auto model = TrainSmo(x, y, SmoConfig{});
    ASSERT_TRUE(model.ok());
    ASSERT_FALSE(model->w.empty());
    // f(x) via w must equal f(x) via the SV expansion.
    SmoModel expansion = *model;
    expansion.w.clear();
    for (std::size_t i = 0; i < x.rows(); i += 7) {
        EXPECT_NEAR(model->Decision(x.Row(i)), expansion.Decision(x.Row(i)), 1e-6);
    }
}

TEST(SmoTest, RejectsBadInput) {
    FeatureMatrix x(2, 1);
    EXPECT_FALSE(TrainSmo(x, {1, 0}, SmoConfig{}).ok());   // label not ±1
    EXPECT_FALSE(TrainSmo(x, {1}, SmoConfig{}).ok());      // size mismatch
    SmoConfig bad;
    bad.c = -1.0;
    EXPECT_FALSE(TrainSmo(x, {1, -1}, bad).ok());
    EXPECT_FALSE(TrainSmo(FeatureMatrix(), {}, SmoConfig{}).ok());
}

TEST(SmoTest, RbfSolvesXor) {
    // XOR is not linearly separable; RBF must nail it.
    FeatureMatrix x(4, 2);
    x.At(0, 0) = 0;
    x.At(0, 1) = 0;
    x.At(1, 0) = 1;
    x.At(1, 1) = 1;
    x.At(2, 0) = 0;
    x.At(2, 1) = 1;
    x.At(3, 0) = 1;
    x.At(3, 1) = 0;
    const std::vector<int> y = {-1, -1, 1, 1};
    SmoConfig config;
    config.c = 100.0;
    config.kernel.type = KernelType::kRbf;
    config.kernel.gamma = 2.0;
    auto model = TrainSmo(x, y, config);
    ASSERT_TRUE(model.ok());
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_GT(static_cast<double>(y[i]) * model->Decision(x.Row(i)), 0.0)
            << "XOR corner " << i;
    }
}

TEST(KernelTest, Values) {
    const std::vector<double> a = {1.0, 2.0};
    const std::vector<double> b = {3.0, -1.0};
    KernelParams linear;
    EXPECT_DOUBLE_EQ(KernelEval(linear, a, b), 1.0);
    KernelParams rbf;
    rbf.type = KernelType::kRbf;
    rbf.gamma = 0.1;
    EXPECT_NEAR(KernelEval(rbf, a, b), std::exp(-0.1 * (4.0 + 9.0)), 1e-12);
    EXPECT_DOUBLE_EQ(KernelEval(rbf, a, a), 1.0);
    KernelParams poly;
    poly.type = KernelType::kPolynomial;
    poly.gamma = 1.0;
    poly.coef0 = 1.0;
    poly.degree = 2;
    EXPECT_DOUBLE_EQ(KernelEval(poly, a, b), 4.0);  // (1+1)^2
}

TEST(SvmClassifierTest, BinaryViaClassifierInterface) {
    FeatureMatrix x;
    std::vector<int> y;
    std::vector<ClassLabel> yc;
    MakeBlobs(40, 0.4, 5, &x, &y, &yc);
    SvmClassifier svm;
    ASSERT_TRUE(svm.Train(x, yc, 2).ok());
    EXPECT_GT(svm.Accuracy(x, yc), 0.97);
}

TEST(SvmClassifierTest, ThreeClassOneVsOne) {
    Rng rng(6);
    const std::size_t per = 30;
    FeatureMatrix x(3 * per, 2);
    std::vector<ClassLabel> y;
    const double centers[3][2] = {{0, 0}, {4, 0}, {0, 4}};
    for (std::size_t c = 0; c < 3; ++c) {
        for (std::size_t i = 0; i < per; ++i) {
            const std::size_t r = c * per + i;
            x.At(r, 0) = rng.Gaussian(centers[c][0], 0.5);
            x.At(r, 1) = rng.Gaussian(centers[c][1], 0.5);
            y.push_back(static_cast<ClassLabel>(c));
        }
    }
    SvmClassifier svm;
    ASSERT_TRUE(svm.Train(x, y, 3).ok());
    EXPECT_GT(svm.Accuracy(x, y), 0.95);
}

TEST(SvmClassifierTest, MissingClassHandled) {
    // Class 2 absent from training: pairwise machines degrade gracefully.
    FeatureMatrix x(4, 1);
    x.At(0, 0) = 0;
    x.At(1, 0) = 0.1;
    x.At(2, 0) = 5;
    x.At(3, 0) = 5.1;
    const std::vector<ClassLabel> y = {0, 0, 1, 1};
    SvmClassifier svm;
    ASSERT_TRUE(svm.Train(x, y, 3).ok());
    EXPECT_EQ(svm.Predict(x.Row(0)), 0u);
    EXPECT_EQ(svm.Predict(x.Row(2)), 1u);
}

TEST(GridSearchTest, PicksAConfigFromGrid) {
    FeatureMatrix x;
    std::vector<int> y;
    std::vector<ClassLabel> yc;
    MakeBlobs(30, 1.2, 7, &x, &y, &yc);
    SvmGrid grid;
    grid.c_values = {0.01, 1.0};
    grid.folds = 3;
    const SmoConfig best = GridSearchSvm(x, yc, 2, SmoConfig{}, grid);
    EXPECT_TRUE(best.c == 0.01 || best.c == 1.0);
}

}  // namespace
}  // namespace dfp
