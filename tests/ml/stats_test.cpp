#include "ml/eval/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dfp {
namespace {

TEST(IncompleteBetaTest, BoundaryAndSymmetry) {
    EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
    // I_x(a,b) = 1 − I_{1−x}(b,a).
    const double x = 0.37;
    EXPECT_NEAR(RegularizedIncompleteBeta(2.5, 1.5, x),
                1.0 - RegularizedIncompleteBeta(1.5, 2.5, 1.0 - x), 1e-12);
}

TEST(IncompleteBetaTest, UniformSpecialCase) {
    // I_x(1,1) = x.
    for (double x : {0.1, 0.5, 0.9}) {
        EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-12);
    }
}

TEST(StudentTCdfTest, SymmetryAndKnownValues) {
    EXPECT_NEAR(StudentTCdf(0.0, 10), 0.5, 1e-12);
    // CDF(t) + CDF(-t) = 1.
    EXPECT_NEAR(StudentTCdf(1.3, 7) + StudentTCdf(-1.3, 7), 1.0, 1e-12);
    // df=1 is the Cauchy distribution: CDF(1) = 3/4.
    EXPECT_NEAR(StudentTCdf(1.0, 1), 0.75, 1e-9);
    // Large df approaches the normal: CDF(1.96, 1e6) ≈ 0.975.
    EXPECT_NEAR(StudentTCdf(1.96, 1e6), 0.975, 1e-3);
    // Critical value check: t_{0.975, 10} = 2.228.
    EXPECT_NEAR(StudentTCdf(2.228, 10), 0.975, 1e-3);
}

TEST(PairedTTestTest, ObviousDifference) {
    const std::vector<double> a = {0.9, 0.91, 0.92, 0.9, 0.89, 0.91};
    const std::vector<double> b = {0.7, 0.72, 0.69, 0.71, 0.7, 0.73};
    const auto result = PairedTTestTwoSided(a, b);
    EXPECT_GT(result.mean_difference, 0.15);
    EXPECT_LT(result.p_value, 0.001);
    EXPECT_EQ(result.degrees_of_freedom, 5u);
}

TEST(PairedTTestTest, NoDifference) {
    const std::vector<double> a = {0.8, 0.7, 0.9, 0.75};
    const std::vector<double> b = {0.79, 0.72, 0.88, 0.76};
    const auto result = PairedTTestTwoSided(a, b);
    EXPECT_GT(result.p_value, 0.2);
}

TEST(PairedTTestTest, DegenerateInputs) {
    EXPECT_DOUBLE_EQ(PairedTTestTwoSided({0.5}, {0.4}).p_value, 1.0);  // n < 2
    // Identical constant difference: zero variance, non-zero mean → p = 0.
    const auto constant = PairedTTestTwoSided({0.9, 0.9}, {0.8, 0.8});
    EXPECT_DOUBLE_EQ(constant.p_value, 0.0);
    // Exactly equal: p = 1.
    const auto equal = PairedTTestTwoSided({0.9, 0.8}, {0.9, 0.8});
    EXPECT_DOUBLE_EQ(equal.p_value, 1.0);
}

TEST(PairedTTestTest, HandComputedT) {
    // Differences: 1, 2, 3 → mean 2, sd 1, t = 2/(1/sqrt(3)) = 3.4641.
    const auto result = PairedTTestTwoSided({2, 4, 6}, {1, 2, 3});
    EXPECT_NEAR(result.t_statistic, 2.0 * std::sqrt(3.0), 1e-9);
}

}  // namespace
}  // namespace dfp
