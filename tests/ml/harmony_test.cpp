#include "ml/rules/harmony.hpp"

#include <gtest/gtest.h>

#include "data/encoder.hpp"
#include "data/synthetic.hpp"
#include "ml/rules/cba.hpp"

namespace dfp {
namespace {

// Item 0 ⇒ class 0, item 2 ⇒ class 1, item 1 is noise.
TransactionDatabase Toy() {
    return TransactionDatabase::FromTransactions(
        {
            {0, 1}, {0}, {0, 1}, {0},      // class 0
            {2, 1}, {2}, {2, 1}, {2, 0},  // class 1
        },
        {0, 0, 0, 0, 1, 1, 1, 1}, 3, 2);
}

HarmonyConfig ToyConfig() {
    HarmonyConfig config;
    config.miner.min_sup_abs = 2;
    return config;
}

TEST(HarmonyTest, LearnsObviousRules) {
    HarmonyClassifier harmony(ToyConfig());
    ASSERT_TRUE(harmony.Train(Toy()).ok());
    EXPECT_FALSE(harmony.rules().empty());
    EXPECT_EQ(harmony.Predict({2}), 1u);
    EXPECT_EQ(harmony.Predict({0}), 0u);
    EXPECT_GE(harmony.Accuracy(Toy()), 7.0 / 8.0);
}

TEST(HarmonyTest, EveryInstanceKeepsACoveringRule) {
    const auto db = Toy();
    HarmonyClassifier harmony(ToyConfig());
    ASSERT_TRUE(harmony.Train(db).ok());
    // Instance-centric guarantee: every instance that any candidate rule
    // correctly covers retains at least one correct covering rule.
    for (std::size_t t = 0; t < db.num_transactions(); ++t) {
        bool covered = false;
        for (const auto& rule : harmony.rules()) {
            if (rule.consequent == db.label(t) &&
                db.Contains(t, rule.antecedent)) {
                covered = true;
                break;
            }
        }
        EXPECT_TRUE(covered) << "instance " << t;
    }
}

TEST(HarmonyTest, RulesSortedByConfidence) {
    HarmonyClassifier harmony(ToyConfig());
    ASSERT_TRUE(harmony.Train(Toy()).ok());
    for (std::size_t i = 1; i < harmony.rules().size(); ++i) {
        EXPECT_GE(harmony.rules()[i - 1].confidence,
                  harmony.rules()[i].confidence);
    }
}

TEST(HarmonyTest, DefaultClassWhenNothingFires) {
    HarmonyClassifier harmony(ToyConfig());
    ASSERT_TRUE(harmony.Train(Toy()).ok());
    const ClassLabel c = harmony.Predict({});
    EXPECT_TRUE(c == 0 || c == 1);
}

TEST(HarmonyTest, EmptyDatabaseRejected) {
    HarmonyClassifier harmony;
    EXPECT_FALSE(
        harmony.Train(TransactionDatabase::FromTransactions({}, {}, 3, 2)).ok());
}

TEST(HarmonyTest, ComparableToCbaOnSyntheticData) {
    SyntheticSpec spec;
    spec.rows = 400;
    spec.attributes = 10;
    spec.arity = 3;
    spec.seed = 12;
    const Dataset data = GenerateSynthetic(spec);
    const auto encoder = ItemEncoder::FromSchema(data);
    const auto db = TransactionDatabase::FromDataset(data, *encoder);

    HarmonyConfig hc;
    hc.miner.min_sup_rel = 0.1;
    HarmonyClassifier harmony(hc);
    ASSERT_TRUE(harmony.Train(db).ok());

    CbaConfig cc;
    cc.miner.min_sup_rel = 0.1;
    CbaClassifier cba(cc);
    ASSERT_TRUE(cba.Train(db).ok());

    const auto counts = db.ClassCounts();
    const double majority =
        static_cast<double>(*std::max_element(counts.begin(), counts.end())) /
        static_cast<double>(db.num_transactions());
    EXPECT_GT(harmony.Accuracy(db), majority);
    // Both rule learners should be in the same ballpark on training data.
    EXPECT_GT(harmony.Accuracy(db), cba.Accuracy(db) - 0.15);
}

TEST(HarmonyTest, MoreRulesPerInstanceKeepsMore) {
    const auto db = Toy();
    HarmonyConfig one = ToyConfig();
    one.rules_per_instance = 1;
    HarmonyConfig three = ToyConfig();
    three.rules_per_instance = 3;
    HarmonyClassifier a(one);
    HarmonyClassifier b(three);
    ASSERT_TRUE(a.Train(db).ok());
    ASSERT_TRUE(b.Train(db).ok());
    EXPECT_GE(b.rules().size(), a.rules().size());
}

}  // namespace
}  // namespace dfp
