#include "ml/dtree/c45.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dfp {
namespace {

TEST(C45Test, LearnsSimpleThreshold) {
    FeatureMatrix x(20, 1);
    std::vector<ClassLabel> y;
    for (std::size_t i = 0; i < 20; ++i) {
        x.At(i, 0) = static_cast<double>(i);
        y.push_back(i < 10 ? 0 : 1);
    }
    C45Classifier tree;
    ASSERT_TRUE(tree.Train(x, y, 2).ok());
    EXPECT_DOUBLE_EQ(tree.Accuracy(x, y), 1.0);
    std::vector<double> probe = {3.0};
    EXPECT_EQ(tree.Predict(probe), 0u);
    probe[0] = 15.0;
    EXPECT_EQ(tree.Predict(probe), 1u);
}

TEST(C45Test, LearnsXorWithTwoLevels) {
    FeatureMatrix x(200, 2);
    std::vector<ClassLabel> y;
    Rng rng(1);
    for (std::size_t i = 0; i < 200; ++i) {
        const int a = static_cast<int>(rng.UniformInt(std::uint64_t{2}));
        const int b = static_cast<int>(rng.UniformInt(std::uint64_t{2}));
        x.At(i, 0) = a;
        x.At(i, 1) = b;
        y.push_back(static_cast<ClassLabel>(a ^ b));
    }
    C45Classifier tree;
    ASSERT_TRUE(tree.Train(x, y, 2).ok());
    EXPECT_DOUBLE_EQ(tree.Accuracy(x, y), 1.0);
    EXPECT_GE(tree.depth(), 2u);
}

TEST(C45Test, PureDataYieldsSingleLeaf) {
    FeatureMatrix x(10, 2);
    std::vector<ClassLabel> y(10, 1);
    C45Classifier tree;
    ASSERT_TRUE(tree.Train(x, y, 2).ok());
    EXPECT_EQ(tree.num_leaves(), 1u);
    EXPECT_EQ(tree.depth(), 0u);
    std::vector<double> probe = {0.0, 0.0};
    EXPECT_EQ(tree.Predict(probe), 1u);
}

TEST(C45Test, PruningShrinksTreeOnNoise) {
    // Pure-noise labels: an unpruned tree overfits, a pruned one collapses.
    Rng rng(5);
    FeatureMatrix x(300, 4);
    std::vector<ClassLabel> y;
    for (std::size_t i = 0; i < 300; ++i) {
        for (std::size_t f = 0; f < 4; ++f) x.At(i, f) = rng.Uniform();
        y.push_back(static_cast<ClassLabel>(rng.UniformInt(std::uint64_t{2})));
    }
    C45Config no_prune;
    no_prune.prune = false;
    C45Classifier raw(no_prune);
    ASSERT_TRUE(raw.Train(x, y, 2).ok());

    C45Classifier pruned;  // default prunes
    ASSERT_TRUE(pruned.Train(x, y, 2).ok());
    EXPECT_LT(pruned.num_leaves(), raw.num_leaves());
}

TEST(C45Test, MinLeafRespected) {
    FeatureMatrix x(20, 1);
    std::vector<ClassLabel> y;
    for (std::size_t i = 0; i < 20; ++i) {
        x.At(i, 0) = static_cast<double>(i);
        y.push_back(static_cast<ClassLabel>(i % 2));  // alternating: splits are
                                                      // only useful at size 1
    }
    C45Config config;
    config.min_leaf = 5;
    config.prune = false;
    C45Classifier tree(config);
    ASSERT_TRUE(tree.Train(x, y, 2).ok());
    // With alternating labels and min_leaf=5 no high-gain split exists; the
    // tree must stay tiny rather than memorizing.
    EXPECT_LE(tree.num_leaves(), 4u);
}

TEST(C45Test, MulticlassSplits) {
    FeatureMatrix x(30, 1);
    std::vector<ClassLabel> y;
    for (std::size_t i = 0; i < 30; ++i) {
        x.At(i, 0) = static_cast<double>(i);
        y.push_back(static_cast<ClassLabel>(i / 10));  // three bands
    }
    C45Classifier tree;
    ASSERT_TRUE(tree.Train(x, y, 3).ok());
    EXPECT_DOUBLE_EQ(tree.Accuracy(x, y), 1.0);
}

TEST(C45Test, RejectsBadInput) {
    C45Classifier tree;
    EXPECT_FALSE(tree.Train(FeatureMatrix(), {}, 2).ok());
    FeatureMatrix x(2, 1);
    EXPECT_FALSE(tree.Train(x, {0}, 2).ok());
}

TEST(C45Test, ToTextMentionsSplits) {
    FeatureMatrix x(20, 1);
    std::vector<ClassLabel> y;
    for (std::size_t i = 0; i < 20; ++i) {
        x.At(i, 0) = static_cast<double>(i);
        y.push_back(i < 10 ? 0 : 1);
    }
    C45Classifier tree;
    ASSERT_TRUE(tree.Train(x, y, 2).ok());
    const std::vector<std::string> names = {"age"};
    const std::string text = tree.ToText(&names);
    EXPECT_NE(text.find("age <="), std::string::npos);
    EXPECT_NE(text.find("class"), std::string::npos);
}

TEST(PessimisticErrorTest, BasicProperties) {
    // Upper bound exceeds the observed rate and shrinks with more data.
    EXPECT_GT(PessimisticErrorRate(1, 10, 0.25), 0.1);
    EXPECT_GT(PessimisticErrorRate(1, 10, 0.25), PessimisticErrorRate(10, 100, 0.25));
    // Zero errors still get a positive pessimistic estimate.
    EXPECT_GT(PessimisticErrorRate(0, 10, 0.25), 0.0);
    // Capped at 1.
    EXPECT_LE(PessimisticErrorRate(10, 10, 0.25), 1.0);
    // More confidence (smaller cf) → larger estimate.
    EXPECT_GT(PessimisticErrorRate(2, 20, 0.1), PessimisticErrorRate(2, 20, 0.4));
}

}  // namespace
}  // namespace dfp
