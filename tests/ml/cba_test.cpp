#include "ml/rules/cba.hpp"

#include <gtest/gtest.h>

#include "data/encoder.hpp"
#include "data/synthetic.hpp"

namespace dfp {
namespace {

// Item 0 ⇒ class 0, item 2 ⇒ class 1, item 1 is noise.
TransactionDatabase Toy() {
    return TransactionDatabase::FromTransactions(
        {
            {0, 1}, {0}, {0, 1}, {0},      // class 0
            {2, 1}, {2}, {2, 1}, {2, 0},  // class 1 (one overlap row)
        },
        {0, 0, 0, 0, 1, 1, 1, 1}, 3, 2);
}

TEST(CbaTest, LearnsObviousRules) {
    CbaConfig config;
    config.miner.min_sup_abs = 2;
    CbaClassifier cba(config);
    ASSERT_TRUE(cba.Train(Toy()).ok());
    EXPECT_FALSE(cba.rules().empty());
    EXPECT_EQ(cba.Predict({2}), 1u);
    EXPECT_EQ(cba.Predict({0}), 0u);
}

TEST(CbaTest, RulesSortedByConfidence) {
    CbaConfig config;
    config.miner.min_sup_abs = 2;
    CbaClassifier cba(config);
    ASSERT_TRUE(cba.Train(Toy()).ok());
    const auto& rules = cba.rules();
    for (std::size_t i = 1; i < rules.size(); ++i) {
        EXPECT_GE(rules[i - 1].confidence, rules[i].confidence);
    }
}

TEST(CbaTest, MinConfidenceFiltersWeakRules) {
    CbaConfig config;
    config.miner.min_sup_abs = 2;
    config.min_confidence = 0.99;
    CbaClassifier cba(config);
    ASSERT_TRUE(cba.Train(Toy()).ok());
    for (const auto& rule : cba.rules()) {
        EXPECT_GE(rule.confidence, 0.99);
    }
}

TEST(CbaTest, DefaultClassUsedWhenNoRuleFires) {
    CbaConfig config;
    config.miner.min_sup_abs = 2;
    CbaClassifier cba(config);
    ASSERT_TRUE(cba.Train(Toy()).ok());
    // A transaction with no known item falls back to the default class.
    const ClassLabel c = cba.Predict({});
    EXPECT_TRUE(c == 0 || c == 1);
}

TEST(CbaTest, TrainingAccuracyDecent) {
    CbaConfig config;
    config.miner.min_sup_abs = 2;
    CbaClassifier cba(config);
    const auto db = Toy();
    ASSERT_TRUE(cba.Train(db).ok());
    EXPECT_GE(cba.Accuracy(db), 7.0 / 8.0);
}

TEST(CbaTest, EmptyDatabaseRejected) {
    CbaClassifier cba;
    const auto empty =
        TransactionDatabase::FromTransactions({}, {}, 3, 2);
    EXPECT_FALSE(cba.Train(empty).ok());
}

TEST(CbaTest, WorksOnSyntheticData) {
    SyntheticSpec spec;
    spec.rows = 300;
    spec.attributes = 8;
    spec.arity = 3;
    spec.seed = 9;
    const Dataset data = GenerateSynthetic(spec);
    auto encoder = ItemEncoder::FromSchema(data);
    ASSERT_TRUE(encoder.ok());
    const auto db = TransactionDatabase::FromDataset(data, *encoder);
    CbaConfig config;
    config.miner.min_sup_rel = 0.1;
    CbaClassifier cba(config);
    ASSERT_TRUE(cba.Train(db).ok());
    // Beats the majority-class baseline on its own training data.
    const auto counts = db.ClassCounts();
    const double majority =
        static_cast<double>(*std::max_element(counts.begin(), counts.end())) /
        static_cast<double>(db.num_transactions());
    EXPECT_GT(cba.Accuracy(db), majority);
}

}  // namespace
}  // namespace dfp
