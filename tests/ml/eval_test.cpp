#include <gtest/gtest.h>

#include <algorithm>

#include "ml/dtree/c45.hpp"
#include "ml/eval/cross_validation.hpp"
#include "ml/eval/feature_filter.hpp"
#include "ml/eval/metrics.hpp"

namespace dfp {
namespace {

TEST(StratifiedFoldsTest, PartitionIsExactAndStratified) {
    std::vector<ClassLabel> y;
    for (int i = 0; i < 60; ++i) y.push_back(i < 40 ? 0 : 1);  // 40/20 split
    Rng rng(1);
    const auto folds = StratifiedFolds(y, 5, rng);
    ASSERT_EQ(folds.size(), 5u);
    std::vector<char> seen(60, 0);
    for (const auto& fold : folds) {
        EXPECT_EQ(fold.size(), 12u);
        std::size_t c1 = 0;
        for (std::size_t r : fold) {
            EXPECT_FALSE(seen[r]) << "row in two folds";
            seen[r] = 1;
            c1 += (y[r] == 1);
        }
        EXPECT_EQ(c1, 4u);  // 20 class-1 rows over 5 folds
    }
    EXPECT_EQ(std::count(seen.begin(), seen.end(), 1), 60);
}

TEST(StratifiedFoldsTest, UnevenSizesDifferByAtMostOnePerClass) {
    std::vector<ClassLabel> y(25, 0);
    Rng rng(2);
    const auto folds = StratifiedFolds(y, 4, rng);
    std::size_t mn = 100;
    std::size_t mx = 0;
    for (const auto& f : folds) {
        mn = std::min(mn, f.size());
        mx = std::max(mx, f.size());
    }
    EXPECT_LE(mx - mn, 1u);
}

TEST(CrossValidateTest, PerfectlyLearnableData) {
    FeatureMatrix x(40, 1);
    std::vector<ClassLabel> y;
    for (std::size_t i = 0; i < 40; ++i) {
        x.At(i, 0) = static_cast<double>(i);
        y.push_back(i < 20 ? 0 : 1);
    }
    const auto cv = CrossValidate(
        x, y, 2, []() { return std::make_unique<C45Classifier>(); }, 5, 3);
    EXPECT_EQ(cv.fold_accuracies.size(), 5u);
    EXPECT_GT(cv.mean_accuracy, 0.9);
}

TEST(ConfusionMatrixTest, CountsAndAccuracy) {
    ConfusionMatrix cm(2);
    cm.Add(0, 0);
    cm.Add(0, 0);
    cm.Add(0, 1);
    cm.Add(1, 1);
    EXPECT_EQ(cm.total(), 4u);
    EXPECT_EQ(cm.At(0, 1), 1u);
    EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.75);
    EXPECT_DOUBLE_EQ(cm.RecallOf(0), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(cm.PrecisionOf(1), 0.5);
}

TEST(ConfusionMatrixTest, MacroF1) {
    ConfusionMatrix cm(2);
    // Perfect classifier.
    for (int i = 0; i < 5; ++i) {
        cm.Add(0, 0);
        cm.Add(1, 1);
    }
    EXPECT_DOUBLE_EQ(cm.MacroF1(), 1.0);
}

TEST(ConfusionMatrixTest, EmptyIsSafe) {
    ConfusionMatrix cm(3);
    EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.0);
    EXPECT_DOUBLE_EQ(cm.MacroF1(), 0.0);
}

TEST(AccuracyOfTest, Basics) {
    EXPECT_DOUBLE_EQ(AccuracyOf({0, 1, 1}, {0, 1, 0}), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(AccuracyOf({}, {}), 0.0);
}

TEST(FeatureFilterTest, RelevancesAndSelection) {
    // Item 0 predicts the class exactly; item 1 is uniform noise.
    const auto db = TransactionDatabase::FromTransactions(
        {{0, 1}, {0}, {1}, {}}, {1, 1, 0, 0}, 2, 2);
    const auto rel = ItemRelevances(db, RelevanceMeasure::kInfoGain);
    ASSERT_EQ(rel.size(), 2u);
    EXPECT_NEAR(rel[0], 1.0, 1e-12);
    EXPECT_NEAR(rel[1], 0.0, 1e-12);

    const auto strong = SelectItemsByRelevance(db, RelevanceMeasure::kInfoGain, 0.5);
    EXPECT_EQ(strong, (std::vector<std::size_t>{0}));

    const auto top1 = TopKItems(db, RelevanceMeasure::kInfoGain, 1);
    EXPECT_EQ(top1, (std::vector<std::size_t>{0}));
    const auto top5 = TopKItems(db, RelevanceMeasure::kInfoGain, 5);
    EXPECT_EQ(top5.size(), 2u);  // capped at the universe size
}

}  // namespace
}  // namespace dfp
