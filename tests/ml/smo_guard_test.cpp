// SMO non-convergence detection and the Pegasos fallback path: exhausted
// pair-update budgets must be detected (not silently shipped as "trained"),
// the classifier must fall back to the primal solver, and the guard log must
// record both events.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/svm/smo.hpp"
#include "ml/svm/svm.hpp"
#include "obs/metrics.hpp"

namespace dfp {
namespace {

// 2-D XOR-ish data: not linearly separable, hard for an RBF SMO given only a
// handful of pair updates.
void MakeXor(std::size_t n, std::uint64_t seed, FeatureMatrix* x,
             std::vector<int>* y_pm, std::vector<ClassLabel>* y_cl) {
    Rng rng(seed);
    *x = FeatureMatrix(n, 2);
    y_pm->clear();
    y_cl->clear();
    for (std::size_t i = 0; i < n; ++i) {
        const double a = rng.Uniform() < 0.5 ? 1.0 : -1.0;
        const double b = rng.Uniform() < 0.5 ? 1.0 : -1.0;
        x->At(i, 0) = a + rng.Gaussian(0.0, 0.3);
        x->At(i, 1) = b + rng.Gaussian(0.0, 0.3);
        const bool pos = a * b > 0.0;
        y_pm->push_back(pos ? 1 : -1);
        y_cl->push_back(pos ? 1 : 0);
    }
}

SmoConfig HardRbfTinySteps() {
    SmoConfig config;
    config.kernel.type = KernelType::kRbf;
    config.kernel.gamma = 0.5;
    config.max_steps = 3;  // nowhere near enough for XOR
    return config;
}

TEST(SmoGuardTest, ExhaustedStepBudgetDetectedAsNonConvergence) {
    FeatureMatrix x;
    std::vector<int> y;
    std::vector<ClassLabel> yc;
    MakeXor(40, 1, &x, &y, &yc);
    const auto model = TrainSmo(x, y, HardRbfTinySteps());
    ASSERT_TRUE(model.ok()) << model.status();
    EXPECT_FALSE(model->converged);
    EXPECT_EQ(model->breach, BudgetBreach::kNone);  // budget ≠ step exhaustion
    EXPECT_LE(model->iterations, 3u);
}

TEST(SmoGuardTest, ClassifierFallsBackToPegasos) {
    FeatureMatrix x;
    std::vector<int> y;
    std::vector<ClassLabel> yc;
    MakeXor(40, 2, &x, &y, &yc);
    GuardLog::Get().Clear();
    SvmClassifier svm(HardRbfTinySteps());
    const Status st = svm.Train(x, yc, 2);
    ASSERT_TRUE(st.ok()) << st;

    const auto events = GuardLog::Get().Snapshot();
    bool saw_nonconverged = false;
    bool saw_fallback = false;
    for (const GuardEvent& e : events) {
        if (e.kind == "smo_nonconverged") saw_nonconverged = true;
        if (e.kind == "pegasos_fallback") saw_fallback = true;
    }
    EXPECT_TRUE(saw_nonconverged);
    EXPECT_TRUE(saw_fallback);

    const auto counters = obs::Registry::Get().Snapshot().counters;
    const auto it = counters.find("dfp.guard.smo_nonconverged");
    ASSERT_NE(it, counters.end());
    EXPECT_GE(it->second, 1u);
}

TEST(SmoGuardTest, FallbackCanBeDisabled) {
    FeatureMatrix x;
    std::vector<int> y;
    std::vector<ClassLabel> yc;
    MakeXor(40, 3, &x, &y, &yc);
    GuardLog::Get().Clear();
    SmoConfig config = HardRbfTinySteps();
    config.fallback_to_pegasos = false;
    SvmClassifier svm(config);
    const Status st = svm.Train(x, yc, 2);
    ASSERT_TRUE(st.ok()) << st;
    for (const GuardEvent& e : GuardLog::Get().Snapshot()) {
        EXPECT_NE(e.kind, "pegasos_fallback");
    }
}

TEST(SmoGuardTest, ConvergedSolveDoesNotFallBack) {
    // Easy separable blobs with a generous step budget: no guard events.
    Rng rng(4);
    FeatureMatrix x(40, 2);
    std::vector<ClassLabel> yc;
    for (std::size_t i = 0; i < 40; ++i) {
        const bool pos = i < 20;
        x.At(i, 0) = rng.Gaussian(pos ? 3.0 : 0.0, 0.3);
        x.At(i, 1) = rng.Gaussian(pos ? 3.0 : 0.0, 0.3);
        yc.push_back(pos ? 1 : 0);
    }
    GuardLog::Get().Clear();
    SvmClassifier svm;
    ASSERT_TRUE(svm.Train(x, yc, 2).ok());
    EXPECT_EQ(GuardLog::Get().size(), 0u);
}

TEST(SmoGuardTest, CancellationPropagatesFromSolver) {
    FeatureMatrix x;
    std::vector<int> y;
    std::vector<ClassLabel> yc;
    MakeXor(40, 5, &x, &y, &yc);
    CancelToken token;
    token.CancelAfterChecks(1);
    SmoConfig config;
    config.budget.cancel = &token;
    const auto model = TrainSmo(x, y, config);
    ASSERT_TRUE(model.ok()) << model.status();
    EXPECT_EQ(model->breach, BudgetBreach::kCancelled);

    token.Reset();
    token.CancelAfterChecks(1);
    SvmClassifier svm(config);
    const Status st = svm.Train(x, yc, 2);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kCancelled);
}

TEST(SmoGuardTest, ExpiredDeadlineKeepsPartialIterate) {
    FeatureMatrix x;
    std::vector<int> y;
    std::vector<ClassLabel> yc;
    MakeXor(100, 6, &x, &y, &yc);  // first sweep alone exceeds the stride
    SmoConfig config;
    config.kernel.type = KernelType::kRbf;
    config.budget.time_budget_ms = 0.0;
    const auto model = TrainSmo(x, y, config);
    ASSERT_TRUE(model.ok()) << model.status();
    EXPECT_EQ(model->breach, BudgetBreach::kDeadline);
    EXPECT_FALSE(model->converged);

    // The classifier keeps the truncated iterate instead of failing.
    SvmClassifier svm(config);
    const Status st = svm.Train(x, yc, 2);
    EXPECT_TRUE(st.ok()) << st;
}

}  // namespace
}  // namespace dfp
