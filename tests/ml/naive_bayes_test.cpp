#include "ml/nb/naive_bayes.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dfp {
namespace {

TEST(NaiveBayesTest, LearnsClassConditionalBits) {
    // Feature 0 on for class 1, feature 1 on for class 0 (with noise).
    Rng rng(1);
    FeatureMatrix x(400, 2);
    std::vector<ClassLabel> y;
    for (std::size_t i = 0; i < 400; ++i) {
        const ClassLabel c = i % 2;
        x.At(i, 0) = rng.Bernoulli(c == 1 ? 0.9 : 0.1) ? 1.0 : 0.0;
        x.At(i, 1) = rng.Bernoulli(c == 0 ? 0.9 : 0.1) ? 1.0 : 0.0;
        y.push_back(c);
    }
    NaiveBayesClassifier nb;
    ASSERT_TRUE(nb.Train(x, y, 2).ok());
    EXPECT_GT(nb.Accuracy(x, y), 0.9);
    std::vector<double> probe = {1.0, 0.0};
    EXPECT_EQ(nb.Predict(probe), 1u);
    probe = {0.0, 1.0};
    EXPECT_EQ(nb.Predict(probe), 0u);
}

TEST(NaiveBayesTest, PriorDominatesWithoutEvidence) {
    FeatureMatrix x(10, 1);
    std::vector<ClassLabel> y = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1};
    NaiveBayesClassifier nb;
    ASSERT_TRUE(nb.Train(x, y, 2).ok());
    std::vector<double> probe = {0.0};
    EXPECT_EQ(nb.Predict(probe), 0u);  // 8:2 prior
}

TEST(NaiveBayesTest, SmoothingHandlesUnseenCombination) {
    // Feature always on in training; an off value at test time must not
    // produce -inf for every class.
    FeatureMatrix x(4, 1);
    for (std::size_t i = 0; i < 4; ++i) x.At(i, 0) = 1.0;
    const std::vector<ClassLabel> y = {0, 0, 1, 1};
    NaiveBayesClassifier nb;
    ASSERT_TRUE(nb.Train(x, y, 2).ok());
    std::vector<double> probe = {0.0};
    const ClassLabel c = nb.Predict(probe);
    EXPECT_TRUE(c == 0 || c == 1);
}

TEST(NaiveBayesTest, ThreeClasses) {
    Rng rng(2);
    FeatureMatrix x(600, 3);
    std::vector<ClassLabel> y;
    for (std::size_t i = 0; i < 600; ++i) {
        const ClassLabel c = i % 3;
        for (std::size_t f = 0; f < 3; ++f) {
            x.At(i, f) = rng.Bernoulli(f == c ? 0.85 : 0.15) ? 1.0 : 0.0;
        }
        y.push_back(c);
    }
    NaiveBayesClassifier nb;
    ASSERT_TRUE(nb.Train(x, y, 3).ok());
    // Bayes-optimal accuracy for these class-conditionals is ≈ 0.80.
    EXPECT_GT(nb.Accuracy(x, y), 0.75);
}

TEST(NaiveBayesTest, RejectsBadInput) {
    NaiveBayesClassifier nb;
    EXPECT_FALSE(nb.Train(FeatureMatrix(), {}, 2).ok());
    FeatureMatrix x(2, 1);
    EXPECT_FALSE(nb.Train(x, {0}, 2).ok());
}

}  // namespace
}  // namespace dfp
