#include "ml/knn/knn.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dfp {
namespace {

TEST(KnnTest, NearestNeighbourOnBlobs) {
    Rng rng(1);
    FeatureMatrix x(100, 2);
    std::vector<ClassLabel> y;
    for (std::size_t i = 0; i < 100; ++i) {
        const bool pos = i % 2 == 0;
        x.At(i, 0) = rng.Gaussian(pos ? 3.0 : 0.0, 0.4);
        x.At(i, 1) = rng.Gaussian(pos ? 3.0 : 0.0, 0.4);
        y.push_back(pos ? 1 : 0);
    }
    KnnClassifier knn(3);
    ASSERT_TRUE(knn.Train(x, y, 2).ok());
    EXPECT_GT(knn.Accuracy(x, y), 0.95);
    std::vector<double> probe = {3.0, 3.0};
    EXPECT_EQ(knn.Predict(probe), 1u);
    probe = {0.0, 0.0};
    EXPECT_EQ(knn.Predict(probe), 0u);
}

TEST(KnnTest, KOneMemorizesTraining) {
    FeatureMatrix x(4, 1);
    for (std::size_t i = 0; i < 4; ++i) x.At(i, 0) = static_cast<double>(i);
    const std::vector<ClassLabel> y = {0, 1, 0, 1};
    KnnClassifier knn(1);
    ASSERT_TRUE(knn.Train(x, y, 2).ok());
    EXPECT_DOUBLE_EQ(knn.Accuracy(x, y), 1.0);
}

TEST(KnnTest, KLargerThanTrainingSetFallsBack) {
    FeatureMatrix x(3, 1);
    x.At(0, 0) = 0;
    x.At(1, 0) = 1;
    x.At(2, 0) = 2;
    const std::vector<ClassLabel> y = {1, 1, 0};
    KnnClassifier knn(50);  // > n: uses all rows → majority class
    ASSERT_TRUE(knn.Train(x, y, 2).ok());
    std::vector<double> probe = {5.0};
    EXPECT_EQ(knn.Predict(probe), 1u);
}

TEST(KnnTest, RejectsBadInput) {
    KnnClassifier knn;
    EXPECT_FALSE(knn.Train(FeatureMatrix(), {}, 2).ok());
    FeatureMatrix x(2, 1);
    EXPECT_FALSE(knn.Train(x, {0}, 2).ok());
}

}  // namespace
}  // namespace dfp
