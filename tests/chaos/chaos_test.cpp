// Chaos suite: a live loopback prediction server under seeded, randomized
// fault schedules (ISSUE/DESIGN.md §15). Invariants checked across seeds:
//
//  * the process never crashes or hangs — every injected fault surfaces as a
//    clean Status or error response;
//  * every prediction that does succeed is bit-identical to the offline
//    model's answer (faults may fail requests, never corrupt them);
//  * a reload that fails at ANY stage (torn read, validation, pre-swap,
//    post-publish) leaves the previous model serving;
//  * crash-atomic model saves never tear the target file, and the checksum
//    trailer catches at-rest corruption;
//  * the retrying client reaches 100% success under 10% socket fault
//    injection, inside its deadline budget.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.hpp"
#include "common/fileio.hpp"
#include "common/rng.hpp"
#include "core/model_io.hpp"
#include "core/pipeline.hpp"
#include "data/encoder.hpp"
#include "data/synthetic.hpp"
#include "ml/nb/naive_bayes.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace dfp::serve {
namespace {

TransactionDatabase Db(std::uint64_t seed) {
    SyntheticSpec spec;
    spec.rows = 120;
    spec.classes = 2;
    spec.attributes = 8;
    spec.arity = 3;
    spec.seed = seed;
    const Dataset data = GenerateSynthetic(spec);
    const auto encoder = ItemEncoder::FromSchema(data);
    return TransactionDatabase::FromDataset(data, *encoder);
}

std::string TrainModelFile(const TransactionDatabase& db, const std::string& tag) {
    PipelineConfig config;
    config.miner.min_sup_rel = 0.10;
    config.miner.max_pattern_len = 4;
    config.mmrfs.coverage_delta = 2;
    PatternClassifierPipeline pipeline(config);
    EXPECT_TRUE(
        pipeline.Train(db, std::make_unique<NaiveBayesClassifier>()).ok());
    const std::string path = ::testing::TempDir() + "/dfp_chaos_" + tag + "_" +
                             std::to_string(::getpid()) + ".dfp";
    EXPECT_TRUE(SavePipelineModelToFile(pipeline, path).ok());
    return path;
}

struct Harness {
    explicit Harness(EngineConfig engine_config = {},
                     ServerConfig server_config = {},
                     std::string default_model_path = "")
        : engine(registry, engine_config),
          server(registry, engine, FixPort(server_config),
                 std::move(default_model_path)) {
        const Status st = server.Start();
        EXPECT_TRUE(st.ok()) << st;
    }
    ~Harness() {
        server.Stop();
        engine.Stop();
    }

    static ServerConfig FixPort(ServerConfig config) {
        config.port = 0;
        return config;
    }

    ModelRegistry registry;
    ScoringEngine engine;
    PredictionServer server;
};

class ChaosTest : public ::testing::Test {
  protected:
    void SetUp() override { FailpointRegistry::Get().DisableAll(); }
    void TearDown() override { FailpointRegistry::Get().DisableAll(); }
};

/// Builds a randomized (but seed-deterministic) fault schedule touching the
/// socket, connection, and scoring layers.
std::string RandomSchedule(std::uint64_t seed) {
    Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
    const char* points[] = {
        "serve.socket.write", "serve.socket.read",  "serve.socket.accept",
        "serve.socket.connect", "serve.conn.handle", "serve.engine.score",
    };
    const char* kinds[] = {"error", "short", "eintr", "timeout", "delay(1)"};
    std::ostringstream spec;
    bool first = true;
    for (const char* point : points) {
        if (!rng.Bernoulli(0.6)) continue;  // each point armed 60% of the time
        if (!first) spec << ';';
        first = false;
        const double p = rng.Uniform(0.02, 0.2);
        spec << point << "=prob(" << p << "):"
             << kinds[rng.UniformInt(std::uint64_t{5})];
    }
    if (first) spec << "serve.socket.write=prob(0.1):error";  // never empty
    return spec.str();
}

TEST_F(ChaosTest, RandomizedFaultSchedulesAcrossSeeds) {
    const auto db = Db(21);
    const std::string model_path = TrainModelFile(db, "sweep");
    // Offline ground truth for bit-identity checks.
    auto offline = LoadPipelineModelFromFile(model_path);
    ASSERT_TRUE(offline.ok()) << offline.status();

    constexpr int kSeeds = 24;
    constexpr std::size_t kRequestsPerSeed = 40;
    std::size_t total_ok = 0;
    std::size_t total_failed = 0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        // The server must come up clean: arm the schedule only after the
        // model is installed and the listener is live (startup chaos is
        // covered by the reload/connect tests).
        EngineConfig engine_config;
        engine_config.max_delay_ms = 0.0;
        Harness harness(engine_config, {}, model_path);
        ASSERT_TRUE(harness.registry.Reload(model_path).ok());

        const std::string spec = RandomSchedule(seed);
        ASSERT_TRUE(FailpointRegistry::Get().Configure(spec, seed).ok())
            << spec;

        RetryPolicy retry;
        retry.max_attempts = 6;
        retry.initial_backoff_ms = 0.5;
        retry.max_backoff_ms = 10.0;
        retry.deadline_ms = 5000.0;
        retry.jitter_seed = seed;
        auto client = ServeClient::Connect("127.0.0.1", harness.server.port(),
                                           retry);
        if (!client.ok()) {
            // Injected connect faults can exhaust even the retry budget;
            // that is a clean failure, not a broken invariant.
            ++total_failed;
            FailpointRegistry::Get().DisableAll();
            continue;
        }
        for (std::size_t t = 0; t < kRequestsPerSeed; ++t) {
            const auto& txn = db.transaction(t % db.num_transactions());
            auto prediction = client->Predict(txn, /*deadline_ms=*/2000.0);
            if (prediction.ok()) {
                // Faults may fail a request; they must never corrupt one.
                EXPECT_EQ(prediction->label, offline->Predict(txn))
                    << "seed " << seed << " request " << t;
                ++total_ok;
            } else {
                ++total_failed;
            }
        }

        // Disarm and prove the server survived the storm: a clean client
        // must get a clean, correct answer.
        FailpointRegistry::Get().DisableAll();
        auto survivor =
            ServeClient::Connect("127.0.0.1", harness.server.port());
        ASSERT_TRUE(survivor.ok())
            << "seed " << seed << ": server died under chaos: "
            << survivor.status();
        auto after = survivor->Predict(db.transaction(0));
        ASSERT_TRUE(after.ok())
            << "seed " << seed << ": " << after.status();
        EXPECT_EQ(after->label, offline->Predict(db.transaction(0)));
    }
    // The retry client should ride through the vast majority of faults.
    EXPECT_GT(total_ok, static_cast<std::size_t>(kSeeds) * kRequestsPerSeed / 2)
        << "ok=" << total_ok << " failed=" << total_failed;
    std::remove(model_path.c_str());
}

TEST_F(ChaosTest, RetryClientReachesFullSuccessUnderSocketFaults) {
    obs::Registry::Get().ResetValues();
    const auto db = Db(22);
    const std::string model_path = TrainModelFile(db, "retry");
    auto offline = LoadPipelineModelFromFile(model_path);
    ASSERT_TRUE(offline.ok());

    EngineConfig engine_config;
    engine_config.max_delay_ms = 0.0;
    Harness harness(engine_config, {}, model_path);
    ASSERT_TRUE(harness.registry.Reload(model_path).ok());

    RetryPolicy retry;
    retry.max_attempts = 10;
    retry.initial_backoff_ms = 0.5;
    retry.max_backoff_ms = 10.0;
    retry.deadline_ms = 4000.0;
    retry.jitter_seed = 7;
    auto client = ServeClient::Connect("127.0.0.1", harness.server.port(), retry);
    ASSERT_TRUE(client.ok());
    // Transient socket faults only (the acceptance bar): 10% on both
    // directions of every socket op, plus connect failures on re-dial.
    ASSERT_TRUE(FailpointRegistry::Get()
                    .Configure("serve.socket.write=prob(0.1):error;"
                               "serve.socket.read=prob(0.1):timeout;"
                               "serve.socket.connect=prob(0.1):error",
                               /*seed=*/3)
                    .ok());

    constexpr std::size_t kRequests = 200;
    double worst_ms = 0.0;
    std::vector<double> latencies_ms;
    latencies_ms.reserve(kRequests);
    for (std::size_t t = 0; t < kRequests; ++t) {
        const auto& txn = db.transaction(t % db.num_transactions());
        const auto start = std::chrono::steady_clock::now();
        auto prediction = client->Predict(txn, /*deadline_ms=*/2000.0);
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();
        latencies_ms.push_back(ms);
        worst_ms = std::max(worst_ms, ms);
        ASSERT_TRUE(prediction.ok())
            << "request " << t << " failed despite retries: "
            << prediction.status();
        EXPECT_EQ(prediction->label, offline->Predict(txn));
    }
    FailpointRegistry::Get().DisableAll();

    // p99 stays inside the per-call retry deadline budget.
    std::sort(latencies_ms.begin(), latencies_ms.end());
    const double p99 = latencies_ms[latencies_ms.size() * 99 / 100];
    EXPECT_LE(p99, retry.deadline_ms) << "worst " << worst_ms << " ms";

    // The schedule actually fired, and retries actually happened.
    auto& metrics = obs::Registry::Get();
    EXPECT_GT(FailpointRegistry::Get().TotalTrips(), 0u);
    EXPECT_GT(metrics.GetCounter("dfp.serve.client.retries").value(), 0u);
    EXPECT_GT(metrics.GetCounter("dfp.serve.client.retry_success").value(), 0u);
    EXPECT_EQ(metrics.GetCounter("dfp.serve.client.retry_exhausted").value(), 0u);
    std::remove(model_path.c_str());
}

TEST_F(ChaosTest, ReloadFailureAtEveryStageLeavesPreviousModelServing) {
    obs::Registry::Get().ResetValues();
    const auto db = Db(23);
    const std::string model_path = TrainModelFile(db, "stages");

    EngineConfig engine_config;
    engine_config.max_delay_ms = 0.0;
    Harness harness(engine_config, {}, model_path);
    ASSERT_TRUE(harness.registry.Reload(model_path).ok());
    const std::uint64_t v1 = harness.registry.current_version();
    ASSERT_NE(v1, 0u);
    const ServablePtr before = harness.registry.Snapshot();

    auto client = ServeClient::Connect("127.0.0.1", harness.server.port());
    ASSERT_TRUE(client.ok());

    const char* stages[] = {
        "core.model_io.load",       // torn read of the bundle
        "serve.registry.validate",  // validation rejects the parsed model
        "serve.registry.swap",      // failure just before the commit point
        "serve.registry.publish",   // post-publish verification -> rollback
    };
    for (const char* stage : stages) {
        ASSERT_TRUE(FailpointRegistry::Get()
                        .Configure(std::string(stage) + "=always:error", 1)
                        .ok());
        auto reloaded = client->Reload(model_path);
        EXPECT_FALSE(reloaded.ok()) << stage << " did not fail";
        FailpointRegistry::Get().DisableAll();

        // Invariant: the previous version keeps serving, with the identical
        // snapshot object (no torn/half-swapped state).
        EXPECT_EQ(harness.registry.current_version(), v1) << stage;
        EXPECT_EQ(harness.registry.Snapshot().get(), before.get()) << stage;
        auto prediction = client->Predict(db.transaction(0));
        ASSERT_TRUE(prediction.ok()) << stage << ": " << prediction.status();
        EXPECT_EQ(prediction->model_version, v1) << stage;
    }
    // The post-publish stage rolled back (not merely failed).
    EXPECT_EQ(
        obs::Registry::Get().GetCounter("dfp.serve.reload_rollbacks").value(),
        1u);
    EXPECT_EQ(obs::Registry::Get().GetCounter("dfp.serve.reload_failures").value(),
              4u);

    // With chaos off, the same reload succeeds and bumps the version.
    auto healed = client->Reload(model_path);
    ASSERT_TRUE(healed.ok()) << healed.status();
    EXPECT_GT(*healed, v1);
    std::remove(model_path.c_str());
}

TEST_F(ChaosTest, TornModelLoadIsRejectedByChecksum) {
    const auto db = Db(24);
    const std::string model_path = TrainModelFile(db, "torn");
    ASSERT_TRUE(FailpointRegistry::Get()
                    .Configure("core.model_io.load=always:short", 1)
                    .ok());
    auto torn = LoadPipelineModelFromFile(model_path);
    ASSERT_FALSE(torn.ok());
    FailpointRegistry::Get().DisableAll();
    auto intact = LoadPipelineModelFromFile(model_path);
    EXPECT_TRUE(intact.ok()) << intact.status();
    std::remove(model_path.c_str());
}

TEST_F(ChaosTest, ChecksumTrailerCatchesAtRestCorruption) {
    const auto db = Db(25);
    const std::string model_path = TrainModelFile(db, "bitrot");
    std::string bundle;
    ASSERT_TRUE(ReadFileToString(model_path, &bundle).ok());
    ASSERT_NE(bundle.find("checksum fnv1a64 "), std::string::npos)
        << "file saves must carry the checksum trailer";

    // Flip one payload byte: the parse may or may not notice, the checksum
    // must.
    std::string corrupt = bundle;
    corrupt[bundle.size() / 3] ^= 0x20;
    ASSERT_TRUE(WriteFileAtomic(model_path, corrupt).ok());
    auto flipped = LoadPipelineModelFromFile(model_path);
    ASSERT_FALSE(flipped.ok());
    EXPECT_EQ(flipped.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(flipped.status().ToString().find("checksum"), std::string::npos)
        << flipped.status();

    // Truncation (simulated partial copy) is caught too.
    ASSERT_TRUE(
        WriteFileAtomic(model_path, bundle.substr(0, bundle.size() / 2)).ok());
    EXPECT_FALSE(LoadPipelineModelFromFile(model_path).ok());

    // Legacy bundles without a trailer still load (forward compatibility for
    // files written before the trailer existed).
    const std::size_t trailer = bundle.rfind("checksum fnv1a64 ");
    ASSERT_TRUE(WriteFileAtomic(model_path, bundle.substr(0, trailer)).ok());
    auto legacy = LoadPipelineModelFromFile(model_path);
    EXPECT_TRUE(legacy.ok()) << legacy.status();
    std::remove(model_path.c_str());
}

TEST_F(ChaosTest, SocketLayerSurvivesInjectedEintr) {
    // EINTR on every other read/write syscall: all bytes still arrive, in
    // order, with no duplicates — the retry loops must be airtight.
    ASSERT_TRUE(FailpointRegistry::Get()
                    .Configure("serve.socket.write=every(2):eintr;"
                               "serve.socket.read=every(2):eintr",
                               1)
                    .ok());
    int fds[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    Socket writer(fds[0]);
    Socket reader_socket(fds[1]);
    std::string sent;
    for (int i = 0; i < 50; ++i) {
        const std::string line = "line-" + std::to_string(i) + "\n";
        ASSERT_TRUE(writer.SendAll(line).ok());
        sent += line;
    }
    writer.Close();
    LineReader reader(reader_socket);
    std::string line;
    for (int i = 0; i < 50; ++i) {
        auto got = reader.ReadLine(&line);
        ASSERT_TRUE(got.ok()) << got.status();
        ASSERT_TRUE(*got) << "premature EOF at line " << i;
        EXPECT_EQ(line, "line-" + std::to_string(i));
    }
    auto eof = reader.ReadLine(&line);
    ASSERT_TRUE(eof.ok());
    EXPECT_FALSE(*eof);
    FailpointRegistry::Get().DisableAll();
}

TEST_F(ChaosTest, AcceptLoopSurvivesInjectedAcceptFaults) {
    obs::Registry::Get().ResetValues();
    const auto db = Db(26);
    const std::string model_path = TrainModelFile(db, "accept");
    EngineConfig engine_config;
    engine_config.max_delay_ms = 0.0;
    Harness harness(engine_config, {}, model_path);
    ASSERT_TRUE(harness.registry.Reload(model_path).ok());

    // Every second accept fails. A naive accept loop would exit on the first
    // injected error and the server would go dark.
    ASSERT_TRUE(FailpointRegistry::Get()
                    .Configure("serve.socket.accept=every(2):error", 1)
                    .ok());
    std::size_t connected = 0;
    for (int i = 0; i < 8; ++i) {
        RetryPolicy retry;
        retry.max_attempts = 4;
        retry.initial_backoff_ms = 0.5;
        retry.max_backoff_ms = 5.0;
        auto client =
            ServeClient::Connect("127.0.0.1", harness.server.port(), retry);
        if (!client.ok()) continue;
        if (client->Predict(db.transaction(0)).ok()) ++connected;
    }
    FailpointRegistry::Get().DisableAll();
    EXPECT_GT(connected, 0u) << "no connection ever made it through";
    EXPECT_GT(obs::Registry::Get().GetCounter("dfp.serve.accept_errors").value(),
              0u);
    // And with chaos off, the listener is fully healthy.
    auto after = ServeClient::Connect("127.0.0.1", harness.server.port());
    ASSERT_TRUE(after.ok()) << after.status();
    EXPECT_TRUE(after->Predict(db.transaction(0)).ok());
    std::remove(model_path.c_str());
}

TEST_F(ChaosTest, ReadyVerbAndHealthzTrackModelAndDrain) {
    const auto db = Db(27);
    const std::string model_path = TrainModelFile(db, "ready");
    EngineConfig engine_config;
    engine_config.max_delay_ms = 0.0;
    ServerConfig server_config;
    server_config.metrics_port = 0;  // ephemeral /healthz side-port
    auto harness =
        std::make_unique<Harness>(engine_config, server_config, model_path);

    auto probe_healthz = [&]() -> std::string {
        auto sock = TcpConnect("127.0.0.1", harness->server.metrics_port());
        EXPECT_TRUE(sock.ok()) << sock.status();
        EXPECT_TRUE(
            sock->SendAll("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").ok());
        LineReader reader(*sock);
        std::string status_line;
        auto got = reader.ReadLine(&status_line);
        EXPECT_TRUE(got.ok() && *got);
        return status_line;
    };

    ServeClient client(harness->server.dispatcher());
    // No model yet: not ready, 503.
    auto ready = client.Ready();
    ASSERT_TRUE(ready.ok()) << ready.status();
    EXPECT_FALSE(*ready);
    EXPECT_NE(probe_healthz().find("503"), std::string::npos);

    // Model installed: ready, 200.
    ASSERT_TRUE(harness->registry.Reload(model_path).ok());
    ready = client.Ready();
    ASSERT_TRUE(ready.ok());
    EXPECT_TRUE(*ready);
    EXPECT_NE(probe_healthz().find("200"), std::string::npos);

    // Draining: not ready again (load balancers stop routing before drain).
    harness->server.dispatcher().SetDraining(true);
    ready = client.Ready();
    ASSERT_TRUE(ready.ok());
    EXPECT_FALSE(*ready);
    EXPECT_NE(probe_healthz().find("503"), std::string::npos);
    harness->server.dispatcher().SetDraining(false);

    harness.reset();
    std::remove(model_path.c_str());
}

TEST_F(ChaosTest, ScoringFaultFailsOneRequestNotTheServer) {
    obs::Registry::Get().ResetValues();
    const auto db = Db(28);
    const std::string model_path = TrainModelFile(db, "score");
    EngineConfig engine_config;
    engine_config.max_delay_ms = 0.0;
    Harness harness(engine_config, {}, model_path);
    ASSERT_TRUE(harness.registry.Reload(model_path).ok());
    auto client = ServeClient::Connect("127.0.0.1", harness.server.port());
    ASSERT_TRUE(client.ok());

    // Allocation failure inside scoring: the worker must catch it and fail
    // that request alone, not unwind through the batch loop.
    ASSERT_TRUE(FailpointRegistry::Get()
                    .Configure("serve.engine.score=nth(2):alloc", 1)
                    .ok());
    std::size_t failures = 0;
    for (int i = 0; i < 4; ++i) {
        auto prediction = client->Predict(db.transaction(0));
        if (!prediction.ok()) {
            ++failures;
            EXPECT_EQ(prediction.status().code(),
                      StatusCode::kResourceExhausted);
        }
    }
    FailpointRegistry::Get().DisableAll();
    EXPECT_EQ(failures, 1u);
    EXPECT_EQ(obs::Registry::Get().GetCounter("dfp.serve.score_errors").value(),
              1u);
    // Server is intact.
    EXPECT_TRUE(client->Predict(db.transaction(1)).ok());
    std::remove(model_path.c_str());
}

}  // namespace
}  // namespace dfp::serve
