// Failpoint framework tests: spec grammar, per-seed determinism, firing
// modes, trip accounting, and the disabled fast path. The chaos suite proper
// (live server under randomized fault schedules) lives in chaos_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/failpoint.hpp"
#include "common/fileio.hpp"
#include "obs/metrics.hpp"

namespace dfp {
namespace {

class FailpointTest : public ::testing::Test {
  protected:
    void SetUp() override { FailpointRegistry::Get().DisableAll(); }
    void TearDown() override { FailpointRegistry::Get().DisableAll(); }
};

TEST_F(FailpointTest, DisabledByDefaultAndZeroAction) {
    EXPECT_FALSE(FailpointsEnabled());
    const FailpointAction action = DFP_FAILPOINT("test.never_armed");
    EXPECT_FALSE(action);
    EXPECT_EQ(action.kind, FailpointKind::kNone);
    // The disabled fast path never touches the registry: the site must not
    // even have been registered by the macro above.
    EXPECT_EQ(FailpointRegistry::Get().Find("test.never_armed"), nullptr);
}

TEST_F(FailpointTest, AlwaysModeFiresEveryHit) {
    ASSERT_TRUE(FailpointRegistry::Get()
                    .Configure("test.always=always:error", 1)
                    .ok());
    EXPECT_TRUE(FailpointsEnabled());
    for (int i = 0; i < 5; ++i) {
        const FailpointAction action = DFP_FAILPOINT("test.always");
        EXPECT_TRUE(action);
        EXPECT_EQ(action.kind, FailpointKind::kError);
    }
    Failpoint* fp = FailpointRegistry::Get().Find("test.always");
    ASSERT_NE(fp, nullptr);
    EXPECT_EQ(fp->hits(), 5u);
    EXPECT_EQ(fp->trips(), 5u);
}

TEST_F(FailpointTest, NthFiresExactlyOnce) {
    ASSERT_TRUE(
        FailpointRegistry::Get().Configure("test.nth=nth(3):timeout", 1).ok());
    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i) {
        fired.push_back(static_cast<bool>(DFP_FAILPOINT("test.nth")));
    }
    EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false}));
    EXPECT_EQ(FailpointRegistry::Get().Find("test.nth")->trips(), 1u);
}

TEST_F(FailpointTest, EveryFiresPeriodically) {
    ASSERT_TRUE(
        FailpointRegistry::Get().Configure("test.every=every(2):eintr", 1).ok());
    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i) {
        fired.push_back(static_cast<bool>(DFP_FAILPOINT("test.every")));
    }
    EXPECT_EQ(fired, (std::vector<bool>{false, true, false, true, false, true}));
}

TEST_F(FailpointTest, ProbIsDeterministicPerSeed) {
    auto draw_sequence = [](std::uint64_t seed) {
        EXPECT_TRUE(FailpointRegistry::Get()
                        .Configure("test.prob=prob(0.5):error", seed)
                        .ok());
        std::vector<bool> fired;
        for (int i = 0; i < 64; ++i) {
            fired.push_back(static_cast<bool>(DFP_FAILPOINT("test.prob")));
        }
        return fired;
    };
    const auto seed7_a = draw_sequence(7);
    const auto seed7_b = draw_sequence(7);
    const auto seed8 = draw_sequence(8);
    EXPECT_EQ(seed7_a, seed7_b) << "same seed must replay identically";
    EXPECT_NE(seed7_a, seed8) << "different seeds must diverge (p < 2^-64)";
    // prob(0.5) over 64 draws: both extremes are astronomically unlikely.
    const auto fires = static_cast<std::size_t>(
        std::count(seed7_a.begin(), seed7_a.end(), true));
    EXPECT_GT(fires, 10u);
    EXPECT_LT(fires, 54u);
}

TEST_F(FailpointTest, SeedStreamsAreIndependentPerName) {
    // Two prob points under one seed draw from distinct streams (seed ^
    // fnv1a(name)), so their fire patterns must not be correlated copies.
    ASSERT_TRUE(FailpointRegistry::Get()
                    .Configure("test.a=prob(0.5);test.b=prob(0.5)", 42)
                    .ok());
    std::vector<bool> a, b;
    for (int i = 0; i < 64; ++i) {
        a.push_back(static_cast<bool>(DFP_FAILPOINT("test.a")));
        b.push_back(static_cast<bool>(DFP_FAILPOINT("test.b")));
    }
    EXPECT_NE(a, b);
}

TEST_F(FailpointTest, DelayKindCarriesItsArgument) {
    ASSERT_TRUE(FailpointRegistry::Get()
                    .Configure("test.delay=always:delay(2.5)", 1)
                    .ok());
    const FailpointAction action = DFP_FAILPOINT("test.delay");
    ASSERT_TRUE(action);
    EXPECT_EQ(action.kind, FailpointKind::kDelay);
    EXPECT_DOUBLE_EQ(action.delay_ms, 2.5);
}

TEST_F(FailpointTest, MalformedSpecsArmNothing) {
    const char* bad_specs[] = {
        "missing_equals",          "=always",
        "test.x=definitely_not",   "test.x=prob(1.5)",
        "test.x=prob(abc)",        "test.x=nth(0)",
        "test.x=always:what",      "test.x=always:delay(-3)",
        "test.x=prob(0.5",
    };
    for (const char* spec : bad_specs) {
        EXPECT_FALSE(FailpointRegistry::Get().Configure(spec, 1).ok())
            << "accepted: " << spec;
        EXPECT_FALSE(FailpointsEnabled()) << "armed by: " << spec;
    }
}

TEST_F(FailpointTest, MalformedSpecLeavesPreviousScheduleIntact) {
    ASSERT_TRUE(
        FailpointRegistry::Get().Configure("test.keep=always:error", 1).ok());
    EXPECT_FALSE(
        FailpointRegistry::Get().Configure("test.keep=prob(nope)", 1).ok());
    EXPECT_TRUE(FailpointsEnabled());
    EXPECT_TRUE(static_cast<bool>(DFP_FAILPOINT("test.keep")));
}

TEST_F(FailpointTest, ReconfigureReplacesAndEmptySpecDisables) {
    ASSERT_TRUE(
        FailpointRegistry::Get().Configure("test.one=always:error", 1).ok());
    ASSERT_TRUE(
        FailpointRegistry::Get().Configure("test.two=always:error", 1).ok());
    // test.one was disarmed by the second Configure.
    EXPECT_FALSE(static_cast<bool>(DFP_FAILPOINT("test.one")));
    EXPECT_TRUE(static_cast<bool>(DFP_FAILPOINT("test.two")));
    ASSERT_TRUE(FailpointRegistry::Get().Configure("", 1).ok());
    EXPECT_FALSE(FailpointsEnabled());
}

TEST_F(FailpointTest, OffModeAndMultiPointSpecs) {
    ASSERT_TRUE(FailpointRegistry::Get()
                    .Configure(" test.x = always : short ; test.y = off ", 1)
                    .ok());
    const FailpointAction x = DFP_FAILPOINT("test.x");
    ASSERT_TRUE(x);
    EXPECT_EQ(x.kind, FailpointKind::kShortWrite);
    EXPECT_FALSE(static_cast<bool>(DFP_FAILPOINT("test.y")));
}

TEST_F(FailpointTest, TripsAreCountedInMetricsRegistry) {
    obs::Registry::Get().ResetValues();
    ASSERT_TRUE(
        FailpointRegistry::Get().Configure("test.counted=every(2)", 1).ok());
    for (int i = 0; i < 10; ++i) (void)DFP_FAILPOINT("test.counted");
    EXPECT_EQ(
        obs::Registry::Get().GetCounter("dfp.failpoint.test.counted").value(),
        5u);
    EXPECT_EQ(FailpointRegistry::Get().TotalTrips(), 5u);
    const auto stats = FailpointRegistry::Get().Snapshot();
    const auto it = std::find_if(
        stats.begin(), stats.end(),
        [](const FailpointRegistry::Stats& s) { return s.name == "test.counted"; });
    ASSERT_NE(it, stats.end());
    EXPECT_EQ(it->hits, 10u);
    EXPECT_EQ(it->trips, 5u);
}

TEST_F(FailpointTest, ConfiguresFromEnvironment) {
    ASSERT_EQ(::setenv("DFP_FAILPOINTS", "test.env=always:timeout", 1), 0);
    ASSERT_EQ(::setenv("DFP_FAILPOINT_SEED", "99", 1), 0);
    EXPECT_TRUE(ConfigureFailpointsFromEnv().ok());
    const FailpointAction action = DFP_FAILPOINT("test.env");
    ASSERT_TRUE(action);
    EXPECT_EQ(action.kind, FailpointKind::kTimeout);
    ::unsetenv("DFP_FAILPOINTS");
    ::unsetenv("DFP_FAILPOINT_SEED");
    // With the variable unset the call is a no-op (schedule unchanged).
    EXPECT_TRUE(ConfigureFailpointsFromEnv().ok());
    EXPECT_TRUE(FailpointsEnabled());
}

TEST_F(FailpointTest, WriteFileAtomicInjectedFailureLeavesTargetUntouched) {
    const std::string path = ::testing::TempDir() + "/dfp_fp_atomic_" +
                             std::to_string(::getpid()) + ".txt";
    ASSERT_TRUE(WriteFileAtomic(path, "original contents\n").ok());

    ASSERT_TRUE(FailpointRegistry::Get()
                    .Configure("common.fileio.write_atomic=always:short", 1)
                    .ok());
    EXPECT_FALSE(WriteFileAtomic(path, "replacement that must not land\n").ok());
    FailpointRegistry::Get().DisableAll();

    std::string contents;
    ASSERT_TRUE(ReadFileToString(path, &contents).ok());
    EXPECT_EQ(contents, "original contents\n") << "torn write reached the target";
    // No stray tmp file left behind either.
    std::string tmp_contents;
    EXPECT_FALSE(ReadFileToString(path + ".tmp", &tmp_contents).ok());
    std::remove(path.c_str());
}

TEST_F(FailpointTest, Fnv1a64MatchesReferenceVectors) {
    // Published FNV-1a 64 test vectors.
    EXPECT_EQ(Fnv1a64(""), 0xCBF29CE484222325ull);
    EXPECT_EQ(Fnv1a64("a"), 0xAF63DC4C8601EC8Cull);
    EXPECT_EQ(Fnv1a64("foobar"), 0x85944171F73967E8ull);
}

}  // namespace
}  // namespace dfp
