// Golden and property tests for the from-scratch CDF library (stats/dist).
//
// Golden values were generated with mpmath at 50-digit precision (Fisher /
// hypergeometric tails additionally cross-checked as exact rationals via
// Python fractions) and are asserted within the accuracy bounds documented
// in stats/dist.hpp.
#include "stats/dist.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace dfp {
namespace stats {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

::testing::AssertionResult RelNear(double actual, double expected,
                                   double rel_tol) {
    if (std::isnan(actual) || std::isnan(expected)) {
        return ::testing::AssertionFailure()
               << "NaN: actual=" << actual << " expected=" << expected;
    }
    if (expected == 0.0) {
        if (std::fabs(actual) <= rel_tol) return ::testing::AssertionSuccess();
        return ::testing::AssertionFailure()
               << "actual=" << actual << " expected exactly 0";
    }
    const double rel = std::fabs(actual - expected) / std::fabs(expected);
    if (rel <= rel_tol) return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "actual=" << actual << " expected=" << expected
           << " rel_err=" << rel << " tol=" << rel_tol;
}

TEST(LogGammaTest, GoldenValues) {
    const struct {
        double x;
        double expected;
    } kCases[] = {
        {0.5, 0.57236494292470009},   {1.0, 0.0},
        {1.5, -0.12078223763524522},  {2.0, 0.0},
        {3.7, 1.4280723266653881},    {10.0, 12.801827480081470},
        {100.25, 360.28455963776423}, {1e4, 82099.717496442377},
        {1e8, 1742068066.1038347},
    };
    for (const auto& c : kCases) {
        if (c.expected == 0.0) {
            EXPECT_NEAR(LogGamma(c.x), 0.0, 1e-13) << "x=" << c.x;
        } else {
            EXPECT_TRUE(RelNear(LogGamma(c.x), c.expected, 1e-13))
                << "x=" << c.x;
        }
    }
    EXPECT_EQ(LogGamma(0.0), kInf);
    EXPECT_TRUE(std::isnan(LogGamma(-3.0)));  // pole
}

TEST(LogFactorialTest, GoldenValuesAcrossTableBoundary) {
    const struct {
        std::size_t n;
        double expected;
    } kCases[] = {
        {0, 0.0},
        {1, 0.0},
        {5, 4.7874917427820460},
        {170, 706.57306224578735},
        {1000, 5912.1281784881633},
        {2047, 13564.326353384677},  // last table entry
        {5000, 37591.143508876767},  // LogGamma fallback
        {100000, 1051299.2218991219},
    };
    for (const auto& c : kCases) {
        if (c.expected == 0.0) {
            EXPECT_EQ(LogFactorial(c.n), 0.0) << "n=" << c.n;
        } else {
            EXPECT_TRUE(RelNear(LogFactorial(c.n), c.expected, 1e-14))
                << "n=" << c.n;
        }
    }
}

TEST(LogChooseTest, SmallValuesExactAndSymmetric) {
    EXPECT_TRUE(RelNear(LogChoose(5, 2), std::log(10.0), 1e-14));
    EXPECT_TRUE(RelNear(LogChoose(10, 3), std::log(120.0), 1e-14));
    EXPECT_EQ(LogChoose(7, 0), 0.0);
    EXPECT_EQ(LogChoose(7, 7), 0.0);
    EXPECT_EQ(LogChoose(3, 4), -kInf);
    for (std::size_t n = 1; n < 60; ++n) {
        for (std::size_t k = 0; k <= n; ++k) {
            EXPECT_DOUBLE_EQ(LogChoose(n, k), LogChoose(n, n - k));
        }
    }
}

TEST(RegularizedGammaTest, PAndQSumToOne) {
    const double as[] = {0.3, 0.5, 1.0, 2.5, 10.0, 100.0, 1000.0};
    const double xs[] = {0.1, 0.5, 1.0, 3.0, 10.0, 50.0, 200.0, 1500.0};
    for (double a : as) {
        for (double x : xs) {
            const double p = RegularizedGammaP(a, x);
            const double q = RegularizedGammaQ(a, x);
            EXPECT_GE(p, 0.0);
            EXPECT_LE(p, 1.0 + 1e-15);
            EXPECT_NEAR(p + q, 1.0, 1e-12) << "a=" << a << " x=" << x;
        }
    }
    EXPECT_EQ(RegularizedGammaP(1.0, 0.0), 0.0);
    EXPECT_EQ(RegularizedGammaQ(1.0, 0.0), 1.0);
    EXPECT_TRUE(std::isnan(RegularizedGammaP(0.0, 1.0)));
    EXPECT_TRUE(std::isnan(RegularizedGammaP(1.0, -1.0)));
}

TEST(ChiSquareTest, CdfGoldenValues) {
    const struct {
        double x;
        double dof;
        double expected;
    } kCases[] = {
        {0.001, 1, 0.025227120630039612}, {0.5, 1, 0.52049987781304654},
        {1.0, 1, 0.68268949213708590},    {3.841458820694124, 1, 0.95},
        {0.5, 2, 0.22119921692859513},    {5.0, 4, 0.71270250481635422},
        {10.0, 10, 0.55950671493478759},  {50.0, 30, 0.98759793928109942},
        {2.705543454095404, 1, 0.9},
    };
    for (const auto& c : kCases) {
        EXPECT_TRUE(RelNear(ChiSquareCdf(c.x, c.dof), c.expected, 1e-12))
            << "x=" << c.x << " dof=" << c.dof;
    }
}

TEST(ChiSquareTest, SurvivalGoldenValuesIncludingDeepTails) {
    const struct {
        double x;
        double dof;
        double expected;
    } kCases[] = {
        {3.841458820694124, 1, 0.05},
        {6.634896601021213, 1, 0.01},
        {100.0, 1, 1.5239706048321052e-23},
        {300.0, 2, 7.1750959731644104e-66},
        {50.0, 10, 2.6690834249044956e-7},
        {25.0, 1, 5.7330314375838782e-7},
        {0.001, 3, 0.99999159208094195},
    };
    for (const auto& c : kCases) {
        EXPECT_TRUE(RelNear(ChiSquareSurvival(c.x, c.dof), c.expected, 1e-12))
            << "x=" << c.x << " dof=" << c.dof;
    }
}

TEST(ChiSquareTest, CdfIsMonotoneInX) {
    for (double dof : {1.0, 2.0, 5.0, 10.0}) {
        double prev = 0.0;
        for (double x = 0.0; x <= 60.0; x += 0.25) {
            const double p = ChiSquareCdf(x, dof);
            EXPECT_GE(p, prev) << "x=" << x << " dof=" << dof;
            prev = p;
        }
    }
}

TEST(ChiSquareTest, OneDofSurvivalMatchesErfc) {
    // χ²(1) is the square of a standard normal: Q(x, 1) = erfc(√(x/2)).
    for (double x : {0.01, 0.5, 1.0, 3.84, 10.0, 30.0, 100.0}) {
        EXPECT_TRUE(RelNear(ChiSquareSurvival(x, 1.0),
                            Erfc(std::sqrt(0.5 * x)), 1e-12))
            << "x=" << x;
    }
}

TEST(ChiSquareTest, EvenDofClosedForm) {
    // dof = 2: survival is exactly exp(-x/2).
    for (double x : {0.1, 1.0, 5.0, 20.0, 100.0}) {
        EXPECT_TRUE(
            RelNear(ChiSquareSurvival(x, 2.0), std::exp(-0.5 * x), 1e-12));
    }
}

TEST(ErfTest, GoldenValues) {
    const struct {
        double x;
        double expected;
    } kCases[] = {
        {0.1, 0.88753708398171510},   {0.5, 0.47950012218695346},
        {1.0, 0.15729920705028513},   {2.0, 0.0046777349810472658},
        {5.0, 1.5374597944280349e-12}, {10.0, 2.0884875837625448e-45},
        {26.0, 5.6631924088561428e-296}, {-1.5, 1.9661051464753107},
    };
    for (const auto& c : kCases) {
        EXPECT_TRUE(RelNear(Erfc(c.x), c.expected, 1e-12)) << "x=" << c.x;
    }
    EXPECT_EQ(Erf(0.0), 0.0);
    for (double x : {0.2, 0.9, 2.5, 4.0}) {
        EXPECT_DOUBLE_EQ(Erf(-x), -Erf(x));
        EXPECT_NEAR(Erf(x) + Erfc(x), 1.0, 1e-14);
    }
}

TEST(NormalTest, CdfGoldenValues) {
    const struct {
        double z;
        double expected;
    } kCases[] = {
        {-8.0, 6.2209605742717841e-16}, {-3.0, 0.0013498980316300945},
        {-1.0, 0.15865525393145705},    {0.0, 0.5},
        {0.5, 0.69146246127401310},     {1.0, 0.84134474606854295},
        {1.959963984540054, 0.975},     {-37.0, 5.7255712225245768e-300},
    };
    for (const auto& c : kCases) {
        EXPECT_TRUE(RelNear(NormalCdf(c.z), c.expected, 1e-12))
            << "z=" << c.z;
    }
}

TEST(NormalTest, TailSymmetryIsBitwise) {
    for (double z : {0.0, 0.1, 0.7, 1.0, 1.96, 3.5, 8.0, 20.0, 37.0}) {
        EXPECT_EQ(NormalCdf(-z), NormalSurvival(z)) << "z=" << z;
        EXPECT_EQ(NormalCdf(z), NormalSurvival(-z)) << "z=" << z;
    }
}

TEST(NormalTest, QuantileGoldenValues) {
    const struct {
        double p;
        double expected;
    } kCases[] = {
        {1e-300, -37.047096299361199}, {1e-50, -14.933337534788603},
        {1e-16, -8.2220822161304356},  {1e-10, -6.3613409024040562},
        {0.001, -3.0902323061678135},  {0.025, -1.9599639845400542},
        {0.3, -0.52440051270804082},   {0.5, 0.0},
        {0.7, 0.52440051270804066},    {0.975, 1.9599639845400539},
        {0.999, 3.0902323061678133},
    };
    for (const auto& c : kCases) {
        if (c.expected == 0.0) {
            EXPECT_NEAR(NormalQuantile(c.p), 0.0, 1e-15);
        } else {
            EXPECT_TRUE(RelNear(NormalQuantile(c.p), c.expected, 1e-11))
                << "p=" << c.p;
        }
    }
    EXPECT_EQ(NormalQuantile(0.0), -kInf);
    EXPECT_EQ(NormalQuantile(1.0), kInf);
    EXPECT_TRUE(std::isnan(NormalQuantile(-0.1)));
}

TEST(NormalTest, QuantileRoundTripsThroughCdf) {
    for (double p : {1e-12, 1e-6, 0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999}) {
        EXPECT_TRUE(RelNear(NormalCdf(NormalQuantile(p)), p, 1e-12))
            << "p=" << p;
    }
}

TEST(HypergeomTest, PmfAndTailGoldenValues) {
    // (k, successes, draws, population) — exact rationals via Python comb().
    const struct {
        std::size_t k, succ, draws, pop;
        double pmf, upper, lower;
    } kCases[] = {
        {3, 10, 12, 40, 0.30730320853161161, 0.64473886650057628,
         0.66256434203103533},
        {0, 10, 12, 40, 0.015481563157084979, 1.0, 0.015481563157084979},
        {12, 30, 12, 40, 0.015481563157084979, 0.015481563157084979, 1.0},
        {5, 18, 14, 45, 0.24064478545476844, 0.76332188683294752,
         0.47732289862182091},
        {120, 400, 300, 1000, 0.056138869605571666, 0.52732418041043937,
         0.52881468919513229},
    };
    for (const auto& c : kCases) {
        EXPECT_TRUE(
            RelNear(HypergeomPmf(c.k, c.succ, c.draws, c.pop), c.pmf, 1e-11))
            << "k=" << c.k;
        EXPECT_TRUE(RelNear(HypergeomUpperTail(c.k, c.succ, c.draws, c.pop),
                            c.upper, 1e-10))
            << "k=" << c.k;
        EXPECT_TRUE(RelNear(HypergeomLowerTail(c.k, c.succ, c.draws, c.pop),
                            c.lower, 1e-10))
            << "k=" << c.k;
    }
}

TEST(HypergeomTest, TailsPartitionTheSupport) {
    // P[X >= k] + P[X <= k-1] = 1 for every k inside the support.
    const std::size_t succ = 18, draws = 14, pop = 45;
    for (std::size_t k = 1; k <= 14; ++k) {
        const double u = HypergeomUpperTail(k, succ, draws, pop);
        const double l = HypergeomLowerTail(k - 1, succ, draws, pop);
        EXPECT_NEAR(u + l, 1.0, 1e-12) << "k=" << k;
    }
    EXPECT_EQ(HypergeomPmf(15, succ, draws, pop), 0.0);  // outside support
    EXPECT_EQ(HypergeomUpperTail(15, succ, draws, pop), 0.0);
    EXPECT_EQ(HypergeomLowerTail(15, succ, draws, pop), 1.0);
}

TEST(HypergeomTest, AgreesWithNormalApproximationAtLargeN) {
    // ISSUE criterion: at large N the hypergeometric tail must converge to
    // the continuity-corrected normal tail. N=20000, K=10000, n=1000 →
    // mean 500, sd ≈ 15.41.
    const std::size_t pop = 20000, succ = 10000, draws = 1000;
    const double mean = static_cast<double>(draws) * 0.5;
    const double sd = std::sqrt(static_cast<double>(draws) * 0.25 *
                                static_cast<double>(pop - draws) /
                                static_cast<double>(pop - 1));
    for (double sigmas : {1.0, 2.0, 3.0}) {
        const auto k = static_cast<std::size_t>(mean + sigmas * sd + 1.0);
        const double exact = HypergeomUpperTail(k, succ, draws, pop);
        const double z = (static_cast<double>(k) - 0.5 - mean) / sd;
        const double approx = NormalSurvival(z);
        EXPECT_TRUE(RelNear(exact, approx, 0.05))
            << "sigmas=" << sigmas << " exact=" << exact
            << " approx=" << approx;
    }
}

TEST(FisherExactTest, GoldenValues) {
    // Exact rationals computed with Python fractions over comb().
    const struct {
        Table2x2 t;
        double greater, less, two_sided;
    } kCases[] = {
        {{8, 2, 1, 5}, 0.024475524475524476, 0.99912587412587413,
         0.034965034965034965},
        {{10, 10, 10, 10}, 0.62381443271804543, 0.62381443271804543, 1.0},
        {{2, 8, 5, 1}, 0.99912587412587413, 0.024475524475524476,
         0.034965034965034965},
        {{50, 950, 30, 2970}, 8.4591396591147822e-13, 0.99999999999984278,
         8.4591396591147822e-13},
        {{5, 0, 0, 5}, 0.0039682539682539683, 1.0, 0.0079365079365079365},
        {{1, 9, 11, 3}, 0.99996634809530219, 0.0013797280926100417,
         0.0027594561852200835},
    };
    for (const auto& c : kCases) {
        EXPECT_TRUE(RelNear(FisherExactGreater(c.t), c.greater, 1e-10));
        EXPECT_TRUE(RelNear(FisherExactLess(c.t), c.less, 1e-10));
        EXPECT_TRUE(RelNear(FisherExactTwoSided(c.t), c.two_sided, 1e-10));
    }
}

TEST(FisherExactTest, TailsAndPmfAreConsistent) {
    // P[X >= a] + P[X <= a] − P[X = a] = 1.
    const Table2x2 tables[] = {
        {8, 2, 1, 5}, {10, 10, 10, 10}, {3, 7, 9, 11}, {1, 1, 1, 1}};
    for (const Table2x2& t : tables) {
        const double pmf = HypergeomPmf(t.a, t.col1(), t.row1(), t.n());
        EXPECT_NEAR(FisherExactGreater(t) + FisherExactLess(t) - pmf, 1.0,
                    1e-12);
    }
}

TEST(ChiSquareStatisticTest, HandComputedTable) {
    // {8,2;1,5}: n=16, ad−bc=38 → 16·38²/(10·6·9·7) = 23104/3780.
    const Table2x2 t{8, 2, 1, 5};
    EXPECT_TRUE(RelNear(ChiSquareStatistic(t), 23104.0 / 3780.0, 1e-14));
    // Independent table → statistic 0.
    EXPECT_EQ(ChiSquareStatistic(Table2x2{5, 5, 5, 5}), 0.0);
    // Degenerate margins → 0 by convention.
    EXPECT_EQ(ChiSquareStatistic(Table2x2{0, 0, 3, 4}), 0.0);
    EXPECT_EQ(ChiSquareStatistic(Table2x2{3, 0, 4, 0}), 0.0);
}

}  // namespace
}  // namespace stats
}  // namespace dfp
