// Significance filter tests: p-value plumbing against hand-computed tables,
// correction thresholds, MMRFS mask semantics, the sig_test=none bit-identical
// certificate, end-to-end filtering on XOR-with-distractors, cancel/fail-open
// budget semantics, model provenance round-trips, and the dfp.stats.* report
// surface (satellite of DESIGN.md §18).
#include "stats/significance.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/budget.hpp"
#include "common/status.hpp"
#include "core/measures.hpp"
#include "core/mmrfs.hpp"
#include "core/model_io.hpp"
#include "core/pipeline.hpp"
#include "data/encoder.hpp"
#include "data/synthetic.hpp"
#include "data/transaction_db.hpp"
#include "fpm/itemset.hpp"
#include "ml/nb/naive_bayes.hpp"
#include "ml/svm/svm.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "stats/dist.hpp"

namespace dfp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TransactionDatabase XorDb(std::size_t rows, std::size_t distractors,
                          std::uint64_t seed) {
    const Dataset data = GenerateXor(rows, distractors, 0.0, seed);
    auto encoder = ItemEncoder::FromSchema(data);
    return TransactionDatabase::FromDataset(data, *encoder);
}

PipelineConfig DefaultConfig() {
    PipelineConfig config;
    config.miner.min_sup_rel = 0.1;
    config.miner.max_pattern_len = 4;
    config.mmrfs.coverage_delta = 3;
    return config;
}

std::string FeatureSpaceString(const PatternClassifierPipeline& pipeline) {
    std::ostringstream out;
    EXPECT_TRUE(SaveFeatureSpace(pipeline.feature_space(), out).ok());
    return out.str();
}

// 12-row database whose item-0 feature has the one-vs-rest table
// {a=4, b=1, c=3, d=4} against class 0 (item 0's majority class).
TransactionDatabase HandTableDb() {
    std::vector<std::vector<ItemId>> txns;
    std::vector<ClassLabel> labels;
    for (int i = 0; i < 4; ++i) { txns.push_back({0}); labels.push_back(0); }
    txns.push_back({0});
    labels.push_back(1);
    for (int i = 0; i < 3; ++i) { txns.push_back({1}); labels.push_back(0); }
    for (int i = 0; i < 4; ++i) { txns.push_back({1}); labels.push_back(1); }
    return TransactionDatabase::FromTransactions(std::move(txns),
                                                 std::move(labels),
                                                 /*num_items=*/2,
                                                 /*num_classes=*/2);
}

Pattern AttachedPattern(const TransactionDatabase& db, Itemset items) {
    std::vector<Pattern> patterns(1);
    patterns[0].items = std::move(items);
    AttachMetadata(db, &patterns);
    return patterns[0];
}

TEST(SignificanceParseTest, NamesRoundTrip) {
    for (SigTest t : {SigTest::kNone, SigTest::kChi2, SigTest::kFisher,
                      SigTest::kOddsRatio}) {
        auto parsed = ParseSigTest(SigTestName(t));
        ASSERT_TRUE(parsed.ok());
        EXPECT_EQ(*parsed, t);
    }
    for (Correction c : {Correction::kNone, Correction::kBonferroni,
                         Correction::kBenjaminiHochberg}) {
        auto parsed = ParseCorrection(CorrectionName(c));
        ASSERT_TRUE(parsed.ok());
        EXPECT_EQ(*parsed, c);
    }
    EXPECT_FALSE(ParseSigTest("chisq").ok());
    EXPECT_FALSE(ParseCorrection("holm").ok());
}

TEST(OneVsRestTableTest, MatchesHandCountedCells) {
    const auto db = HandTableDb();
    const Pattern p = AttachedPattern(db, {0});
    EXPECT_EQ(p.MajorityClass(), 0u);
    const stats::Table2x2 t = OneVsRestTable(StatsOfPattern(db, p), 0);
    EXPECT_EQ(t.a, 4u);
    EXPECT_EQ(t.b, 1u);
    EXPECT_EQ(t.c, 3u);
    EXPECT_EQ(t.d, 4u);
    EXPECT_EQ(t.n(), 12u);
    EXPECT_EQ(t.row1(), 5u);
    EXPECT_EQ(t.col1(), 7u);
}

TEST(PatternPValueTest, DispatchesToTheRightTestOnTheHandTable) {
    const auto db = HandTableDb();
    const Pattern p = AttachedPattern(db, {0});
    const stats::Table2x2 t{4, 1, 3, 4};

    EXPECT_DOUBLE_EQ(
        PatternPValue(SigTest::kChi2, db, p),
        stats::ChiSquareSurvival(stats::ChiSquareStatistic(t), 1.0));
    EXPECT_DOUBLE_EQ(PatternPValue(SigTest::kFisher, db, p),
                     stats::FisherExactGreater(t));
    // Odds: Haldane–Anscombe(+0.5) Wald z against ln(1).
    const double log_or = std::log(4.5) - std::log(1.5) - std::log(3.5) +
                          std::log(4.5);
    const double se =
        std::sqrt(1.0 / 4.5 + 1.0 / 1.5 + 1.0 / 3.5 + 1.0 / 4.5);
    EXPECT_DOUBLE_EQ(PatternPValue(SigTest::kOddsRatio, db, p),
                     stats::NormalSurvival(log_or / se));
    // kNone is "trivially significant".
    EXPECT_EQ(PatternPValue(SigTest::kNone, db, p), 0.0);
}

TEST(PatternPValueTest, DegenerateTablesAreInsignificant) {
    std::vector<std::vector<ItemId>> txns = {{0, 1}, {0, 1}, {0}, {0}};
    std::vector<ClassLabel> labels = {0, 0, 1, 1};
    const auto db = TransactionDatabase::FromTransactions(
        std::move(txns), std::move(labels), 3, 2);
    // Full-support feature (item 0 in every row).
    EXPECT_EQ(PatternPValue(SigTest::kChi2, db, AttachedPattern(db, {0})), 1.0);
    // Zero-support feature (item 2 nowhere).
    EXPECT_EQ(PatternPValue(SigTest::kFisher, db, AttachedPattern(db, {2})),
              1.0);

    // Single-class database: col1 spans everything.
    std::vector<std::vector<ItemId>> txns1 = {{0}, {1}, {0}};
    std::vector<ClassLabel> labels1 = {0, 0, 0};
    const auto db1 = TransactionDatabase::FromTransactions(
        std::move(txns1), std::move(labels1), 2, 1);
    EXPECT_EQ(PatternPValue(SigTest::kChi2, db1, AttachedPattern(db1, {0})),
              1.0);
}

TEST(CorrectionThresholdTest, HandComputedThresholds) {
    const std::vector<double> p = {0.001, 0.01, 0.02, 0.03, 0.2};
    EXPECT_DOUBLE_EQ(CorrectionThreshold(p, Correction::kNone, 0.05), 0.05);
    EXPECT_DOUBLE_EQ(CorrectionThreshold(p, Correction::kBonferroni, 0.05),
                     0.01);
    // BH: largest k with p_(k) <= k·0.05/5 is k=4 (0.03 <= 0.04).
    EXPECT_DOUBLE_EQ(
        CorrectionThreshold(p, Correction::kBenjaminiHochberg, 0.05), 0.03);
    // No discovery → -inf (nothing survives).
    EXPECT_EQ(CorrectionThreshold({0.9, 0.8}, Correction::kBenjaminiHochberg,
                                  0.05),
              -kInf);
    // Empty candidate sets degrade to the raw level for every correction.
    for (Correction c : {Correction::kNone, Correction::kBonferroni,
                         Correction::kBenjaminiHochberg}) {
        EXPECT_DOUBLE_EQ(CorrectionThreshold({}, c, 0.05), 0.05);
    }
}

TEST(RunSignificanceFilterTest, NoneKeepsEverythingWithoutTesting) {
    const auto db = XorDb(100, 2, 1);
    std::vector<Pattern> candidates(3);
    candidates[0].items = {0, 2};
    candidates[1].items = {1, 3};
    candidates[2].items = {0, 3};
    AttachMetadata(db, &candidates);
    SignificanceConfig config;  // test = kNone
    const SignificanceResult r = RunSignificanceFilter(db, candidates, config);
    EXPECT_EQ(r.tested, 0u);
    EXPECT_EQ(r.rejected, 0u);
    EXPECT_TRUE(r.p_values.empty());
    EXPECT_EQ(r.keep, std::vector<char>(3, 1));
}

TEST(RunSignificanceFilterTest, AlphaOneCorrectionNoneKeepsAll) {
    const auto db = XorDb(200, 3, 2);
    PatternClassifierPipeline miner(DefaultConfig());
    auto candidates = miner.MineCandidates(db);
    ASSERT_TRUE(candidates.ok());
    ASSERT_FALSE(candidates->empty());

    SignificanceConfig config;
    config.test = SigTest::kChi2;
    config.alpha = 1.0;
    config.correction = Correction::kNone;
    const SignificanceResult r = RunSignificanceFilter(db, *candidates, config);
    EXPECT_EQ(r.tested, candidates->size());
    EXPECT_EQ(r.rejected, 0u);
    EXPECT_DOUBLE_EQ(r.threshold, 1.0);
    for (double p : r.p_values) {
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
}

TEST(MmrfsMaskTest, AllOnesMaskIsBitIdenticalToNullMask) {
    const auto db = XorDb(300, 4, 3);
    PatternClassifierPipeline miner(DefaultConfig());
    auto candidates = miner.MineCandidates(db);
    ASSERT_TRUE(candidates.ok());
    ASSERT_FALSE(candidates->empty());

    MmrfsConfig base;
    base.coverage_delta = 3;
    const MmrfsResult unmasked = RunMmrfs(db, *candidates, base);

    const std::vector<char> all_ones(candidates->size(), 1);
    MmrfsConfig masked = base;
    masked.candidate_mask = &all_ones;
    const MmrfsResult with_mask = RunMmrfs(db, *candidates, masked);

    EXPECT_EQ(with_mask.selected, unmasked.selected);
    EXPECT_EQ(with_mask.gains, unmasked.gains);        // bitwise doubles
    EXPECT_EQ(with_mask.relevance, unmasked.relevance);
    EXPECT_EQ(with_mask.coverage, unmasked.coverage);
}

TEST(MmrfsMaskTest, MaskedOutCandidatesAreNeverScoredOrSelected) {
    const auto db = XorDb(300, 4, 4);
    PatternClassifierPipeline miner(DefaultConfig());
    auto candidates = miner.MineCandidates(db);
    ASSERT_TRUE(candidates.ok());
    ASSERT_GT(candidates->size(), 2u);

    // Mask out every even-indexed candidate.
    std::vector<char> mask(candidates->size(), 1);
    for (std::size_t i = 0; i < mask.size(); i += 2) mask[i] = 0;
    MmrfsConfig config;
    config.coverage_delta = 3;
    config.candidate_mask = &mask;
    const MmrfsResult result = RunMmrfs(db, *candidates, config);
    for (std::size_t i : result.selected) {
        EXPECT_EQ(mask[i], 1) << "selected a masked-out candidate " << i;
    }
    for (std::size_t i = 0; i < mask.size(); i += 2) {
        EXPECT_EQ(result.relevance[i], 0.0) << "scored masked-out " << i;
    }
}

TEST(SignificancePipelineTest, KeepAllFilterMatchesUnfilteredFeatureSpace) {
    // chi2 at alpha=1 + correction=none keeps every candidate, so the final
    // feature space must be byte-identical to the sig_test=none path — the
    // provenance line is the only difference in the trained artifact.
    const auto db = XorDb(300, 2, 5);

    PatternClassifierPipeline baseline(DefaultConfig());
    ASSERT_TRUE(baseline.Train(db, std::make_unique<NaiveBayesClassifier>())
                    .ok());
    EXPECT_TRUE(baseline.provenance().empty());

    PipelineConfig filtered_config = DefaultConfig();
    filtered_config.significance.test = SigTest::kChi2;
    filtered_config.significance.alpha = 1.0;
    filtered_config.significance.correction = Correction::kNone;
    PatternClassifierPipeline filtered(filtered_config);
    ASSERT_TRUE(filtered.Train(db, std::make_unique<NaiveBayesClassifier>())
                    .ok());

    EXPECT_EQ(FeatureSpaceString(filtered), FeatureSpaceString(baseline));
    EXPECT_EQ(filtered.stats().num_sig_rejected, 0u);
    ASSERT_FALSE(filtered.provenance().empty());
    EXPECT_EQ(filtered.provenance()[0].first, "sig_test");
    EXPECT_EQ(filtered.provenance()[0].second, "chi2");
}

TEST(SignificancePipelineTest, FiltersDistractorsAndKeepsAccuracy) {
    // XOR with 6 distractor attributes: distractor combinations are frequent
    // (mined) but label-independent, so chi2+BH rejects them while the XOR
    // value pairs survive with astronomically small p.
    const auto db = XorDb(400, 6, 6);

    PipelineConfig config = DefaultConfig();
    config.significance.test = SigTest::kChi2;
    config.significance.alpha = 0.05;
    config.significance.correction = Correction::kBenjaminiHochberg;
    PatternClassifierPipeline pipeline(config);
    ASSERT_TRUE(pipeline.Train(db, std::make_unique<SvmClassifier>()).ok());
    EXPECT_GT(pipeline.stats().num_sig_rejected, 0u);
    EXPECT_GT(pipeline.Accuracy(db), 0.9);

    // Fisher agrees on this regime (small tables, huge effects).
    PipelineConfig fisher_config = config;
    fisher_config.significance.test = SigTest::kFisher;
    PatternClassifierPipeline fisher(fisher_config);
    ASSERT_TRUE(fisher.Train(db, std::make_unique<SvmClassifier>()).ok());
    EXPECT_GT(fisher.stats().num_sig_rejected, 0u);
    EXPECT_GT(fisher.Accuracy(db), 0.9);
}

TEST(SignificancePipelineTest, PatAllDropsRejectedCandidates) {
    const auto db = XorDb(400, 6, 7);
    PipelineConfig config = DefaultConfig();
    config.feature_selection = false;  // Pat_All
    config.significance.test = SigTest::kChi2;
    config.significance.alpha = 0.05;
    config.significance.correction = Correction::kBenjaminiHochberg;
    PatternClassifierPipeline pipeline(config);
    ASSERT_TRUE(pipeline.Train(db, std::make_unique<NaiveBayesClassifier>())
                    .ok());
    const auto& stats = pipeline.stats();
    EXPECT_GT(stats.num_sig_rejected, 0u);
    EXPECT_EQ(pipeline.feature_space().num_patterns(),
              stats.num_candidates - stats.num_sig_rejected);
}

TEST(SignificanceBudgetTest, CancelTokenAbortsTheTrain) {
    const auto db = XorDb(200, 2, 8);
    PatternClassifierPipeline miner(DefaultConfig());
    auto candidates = miner.MineCandidates(db);
    ASSERT_TRUE(candidates.ok());
    ASSERT_FALSE(candidates->empty());

    CancelToken cancel;
    cancel.CancelAfterChecks(1);  // fires on the significance scan's first poll
    PipelineConfig config = DefaultConfig();
    config.significance.test = SigTest::kChi2;
    config.budget.cancel = &cancel;
    PatternClassifierPipeline pipeline(config);
    const Status status = pipeline.TrainWithCandidates(
        db, *candidates, std::make_unique<NaiveBayesClassifier>());
    EXPECT_EQ(status.code(), StatusCode::kCancelled);
    EXPECT_EQ(pipeline.budget_report().select_breach, BudgetBreach::kCancelled);
}

TEST(SignificanceBudgetTest, DeadlineFailsOpen) {
    const auto db = XorDb(200, 2, 9);
    PatternClassifierPipeline miner(DefaultConfig());
    auto candidates = miner.MineCandidates(db);
    ASSERT_TRUE(candidates.ok());
    ASSERT_FALSE(candidates->empty());

    SignificanceConfig config;
    config.test = SigTest::kChi2;
    config.budget.time_budget_ms = 0.0;  // already expired
    const SignificanceResult r = RunSignificanceFilter(db, *candidates, config);
    EXPECT_EQ(r.breach, BudgetBreach::kDeadline);
    EXPECT_EQ(r.rejected, 0u);
    EXPECT_EQ(r.threshold, kInf);
    EXPECT_EQ(r.keep, std::vector<char>(candidates->size(), 1));
}

TEST(SignificanceProvenanceTest, RoundTripsThroughModelBundles) {
    const auto db = XorDb(300, 2, 10);
    PipelineConfig config = DefaultConfig();
    config.significance.test = SigTest::kOddsRatio;
    config.significance.alpha = 0.01;
    config.significance.correction = Correction::kBonferroni;
    config.significance.min_odds_ratio = 1.5;
    PatternClassifierPipeline pipeline(config);
    ASSERT_TRUE(pipeline.Train(db, std::make_unique<NaiveBayesClassifier>())
                    .ok());

    std::ostringstream out;
    ASSERT_TRUE(SavePipelineModel(pipeline, out).ok());
    std::istringstream in(out.str());
    auto loaded = LoadPipelineModel(in);
    ASSERT_TRUE(loaded.ok());
    ASSERT_EQ(loaded->provenance().size(), pipeline.provenance().size());
    EXPECT_EQ(loaded->provenance(), pipeline.provenance());
    bool saw_min_or = false;
    for (const auto& [key, value] : loaded->provenance()) {
        if (key == "min_odds_ratio") {
            saw_min_or = true;
            EXPECT_EQ(value, "1.5");
        }
    }
    EXPECT_TRUE(saw_min_or);

    // Unfiltered bundles carry no provenance line and still load (legacy
    // format unchanged byte for byte).
    PatternClassifierPipeline plain(DefaultConfig());
    ASSERT_TRUE(plain.Train(db, std::make_unique<NaiveBayesClassifier>()).ok());
    std::ostringstream plain_out;
    ASSERT_TRUE(SavePipelineModel(plain, plain_out).ok());
    EXPECT_EQ(plain_out.str().find("provenance"), std::string::npos);
    std::istringstream plain_in(plain_out.str());
    auto plain_loaded = LoadPipelineModel(plain_in);
    ASSERT_TRUE(plain_loaded.ok());
    EXPECT_TRUE(plain_loaded->provenance().empty());
}

TEST(SignificanceReportTest, StatsMetricsFlowIntoReportsAndPrometheus) {
    obs::Registry::Get().ResetValues();
    const auto db = XorDb(300, 4, 11);
    PipelineConfig config = DefaultConfig();
    config.significance.test = SigTest::kChi2;
    config.significance.alpha = 0.05;
    config.significance.correction = Correction::kBenjaminiHochberg;
    PatternClassifierPipeline pipeline(config);
    ASSERT_TRUE(pipeline.Train(db, std::make_unique<NaiveBayesClassifier>())
                    .ok());

    const obs::RunReport report = obs::CollectRunReport("sig_report_test");
    const std::string json = obs::ReportToJsonString(report);
    EXPECT_NE(json.find("\"dfp.stats.candidates_tested\""), std::string::npos);
    EXPECT_NE(json.find("\"dfp.stats.rejected\""), std::string::npos);
    EXPECT_NE(json.find("\"dfp.stats.p_value\""), std::string::npos);
    EXPECT_NE(json.find("\"dfp.stats.correction_threshold\""),
              std::string::npos);
    EXPECT_NE(json.find("\"dfp.core.mmrfs.gain\""), std::string::npos);
    EXPECT_NE(json.find("\"dfp.core.pipeline.num_sig_rejected\""),
              std::string::npos);

    std::ostringstream table;
    obs::WriteReportTable(table, report);
    EXPECT_NE(table.str().find("dfp.stats.p_value"), std::string::npos);
    EXPECT_NE(table.str().find("dfp.stats.candidates_tested"),
              std::string::npos);

    const std::string prom = obs::RenderPrometheus(report.metrics);
    EXPECT_NE(prom.find("dfp_stats_candidates_tested"), std::string::npos);
    EXPECT_NE(prom.find("dfp_stats_p_value_bucket"), std::string::npos);
    EXPECT_NE(prom.find("dfp_core_mmrfs_gain_bucket"), std::string::npos);
}

}  // namespace
}  // namespace dfp
