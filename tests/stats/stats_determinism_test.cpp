// 20-seed determinism certificate for the significance filter: the parallel
// p-value scan writes disjoint per-candidate slots of a shared vector and the
// correction pass is serial, so keep-mask, p-values and threshold must be
// bit-identical at every thread count (DESIGN.md §18, mirroring the MMRFS
// certificate of §11/§17).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/model_io.hpp"
#include "core/pipeline.hpp"
#include "data/encoder.hpp"
#include "data/synthetic.hpp"
#include "data/transaction_db.hpp"
#include "ml/nb/naive_bayes.hpp"
#include "stats/significance.hpp"

namespace dfp {
namespace {

TransactionDatabase SeededDb(std::uint64_t seed) {
    // Small mixed corpus: XOR signal pairs + 4 distractor attributes give a
    // spread of p-values on both sides of any reasonable threshold.
    const Dataset data = GenerateXor(240, 4, 0.05, seed);
    auto encoder = ItemEncoder::FromSchema(data);
    return TransactionDatabase::FromDataset(data, *encoder);
}

PipelineConfig MiningConfig() {
    PipelineConfig config;
    config.miner.min_sup_rel = 0.1;
    config.miner.max_pattern_len = 3;
    config.mmrfs.coverage_delta = 3;
    return config;
}

TEST(StatsDeterminismTest, FilterIsBitIdenticalAcrossThreadCounts20Seeds) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const auto db = SeededDb(seed);
        PatternClassifierPipeline miner(MiningConfig());
        auto candidates = miner.MineCandidates(db);
        ASSERT_TRUE(candidates.ok()) << "seed " << seed;
        ASSERT_FALSE(candidates->empty()) << "seed " << seed;

        // Alternate the test per seed so chi2, fisher and odds all get the
        // multi-thread treatment.
        SignificanceConfig config;
        config.test = seed % 3 == 0   ? SigTest::kOddsRatio
                      : seed % 3 == 1 ? SigTest::kChi2
                                      : SigTest::kFisher;
        config.alpha = 0.05;
        config.correction = Correction::kBenjaminiHochberg;

        SignificanceConfig serial = config;
        serial.num_threads = 1;
        const SignificanceResult one =
            RunSignificanceFilter(db, *candidates, serial);

        SignificanceConfig parallel = config;
        parallel.num_threads = 8;
        const SignificanceResult eight =
            RunSignificanceFilter(db, *candidates, parallel);

        ASSERT_EQ(one.p_values.size(), eight.p_values.size());
        for (std::size_t i = 0; i < one.p_values.size(); ++i) {
            EXPECT_EQ(one.p_values[i], eight.p_values[i])  // bitwise
                << "seed " << seed << " candidate " << i;
        }
        EXPECT_EQ(one.keep, eight.keep) << "seed " << seed;
        EXPECT_EQ(one.threshold, eight.threshold) << "seed " << seed;
        EXPECT_EQ(one.rejected, eight.rejected) << "seed " << seed;
    }
}

TEST(StatsDeterminismTest, FilteredPipelineFeatureSpaceMatchesAcrossThreads) {
    // End-to-end: the whole filtered train (mine → significance → MMRFS)
    // must emit the same feature space at 1 and 8 threads.
    for (std::uint64_t seed : {3u, 7u, 12u}) {
        const auto db = SeededDb(seed);

        auto train = [&](std::size_t threads) {
            PipelineConfig config = MiningConfig();
            config.num_threads = threads;
            config.significance.test = SigTest::kChi2;
            config.significance.alpha = 0.05;
            config.significance.correction = Correction::kBenjaminiHochberg;
            PatternClassifierPipeline pipeline(config);
            EXPECT_TRUE(
                pipeline.Train(db, std::make_unique<NaiveBayesClassifier>())
                    .ok())
                << "seed " << seed << " threads " << threads;
            std::ostringstream out;
            EXPECT_TRUE(SaveFeatureSpace(pipeline.feature_space(), out).ok());
            return out.str();
        };

        EXPECT_EQ(train(1), train(8)) << "seed " << seed;
    }
}

}  // namespace
}  // namespace dfp
