// Determinism certificates for the parallel layer: every parallel call site
// must produce results identical to the serial path (num_threads == 1) for
// every thread count — miners' pattern sets (sorted, with supports), MMRFS's
// selected sequence, OvO SVM predictions, CV fold accuracies and the grid
// search winner. 20 random databases × threads ∈ {1, 2, 3, 5, 8, 16}
// (non-power-of-two and oversubscribed counts included).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/mmrfs.hpp"
#include "fpm/closed_miner.hpp"
#include "fpm/eclat.hpp"
#include "fpm/fpgrowth.hpp"
#include "ml/eval/cross_validation.hpp"
#include "ml/svm/svm.hpp"

namespace dfp {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 3, 5, 8, 16};
constexpr std::uint64_t kNumSeeds = 20;

TransactionDatabase RandomDb(std::uint64_t seed, std::size_t n = 40,
                             std::size_t items = 10, double density = 0.30) {
    Rng rng(seed);
    std::vector<std::vector<ItemId>> txns(n);
    std::vector<ClassLabel> labels(n);
    for (std::size_t t = 0; t < n; ++t) {
        for (ItemId i = 0; i < items; ++i) {
            if (rng.Bernoulli(density)) txns[t].push_back(i);
        }
        if (txns[t].empty()) txns[t].push_back(static_cast<ItemId>(t % items));
        labels[t] = static_cast<ClassLabel>(rng.UniformInt(std::uint64_t{2}));
    }
    return TransactionDatabase::FromTransactions(std::move(txns),
                                                 std::move(labels), items, 2);
}

std::map<Itemset, std::size_t> ToMap(const std::vector<Pattern>& patterns) {
    std::map<Itemset, std::size_t> m;
    for (const auto& p : patterns) m[p.items] = p.support;
    return m;
}

class MinerThreadEquivalenceTest : public ::testing::TestWithParam<const char*> {
  protected:
    std::unique_ptr<Miner> MakeNamed() const {
        const std::string name = GetParam();
        if (name == "fpgrowth") return std::make_unique<FpGrowthMiner>();
        if (name == "eclat") return std::make_unique<EclatMiner>();
        if (name == "closed") return std::make_unique<ClosedMiner>();
        return nullptr;
    }
};

TEST_P(MinerThreadEquivalenceTest, PatternSetIdenticalForEveryThreadCount) {
    const auto miner = MakeNamed();
    for (std::uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
        const auto db = RandomDb(seed);
        MinerConfig config;
        config.min_sup_rel = 0.10;

        config.num_threads = 1;
        const auto serial = miner->Mine(db, config);
        ASSERT_TRUE(serial.ok()) << serial.status();
        const auto want = ToMap(*serial);

        for (const std::size_t threads : kThreadCounts) {
            config.num_threads = threads;
            const auto got = miner->Mine(db, config);
            ASSERT_TRUE(got.ok()) << got.status();
            EXPECT_EQ(ToMap(*got), want)
                << miner->Name() << " diverges at num_threads=" << threads
                << " (seed " << seed << ")";
        }
    }
}

// Beyond the pattern *set*, the emitted *order* must match the serial code
// byte for byte: downstream stages (dedup, MMRFS tie-breaks) see a vector.
TEST_P(MinerThreadEquivalenceTest, EmissionOrderMatchesSerial) {
    const auto miner = MakeNamed();
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto db = RandomDb(seed);
        MinerConfig config;
        config.min_sup_rel = 0.10;
        config.num_threads = 1;
        const auto serial = miner->Mine(db, config);
        ASSERT_TRUE(serial.ok());
        config.num_threads = 8;
        const auto parallel = miner->Mine(db, config);
        ASSERT_TRUE(parallel.ok());
        ASSERT_EQ(serial->size(), parallel->size());
        for (std::size_t i = 0; i < serial->size(); ++i) {
            EXPECT_EQ((*serial)[i].items, (*parallel)[i].items)
                << miner->Name() << " order diverges at position " << i
                << " (seed " << seed << ")";
            EXPECT_EQ((*serial)[i].support, (*parallel)[i].support);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(ParallelMiners, MinerThreadEquivalenceTest,
                         ::testing::Values("fpgrowth", "eclat", "closed"));

TEST(MmrfsThreadEquivalenceTest, SelectedSequenceIdenticalForEveryThreadCount) {
    for (std::uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
        const auto db = RandomDb(seed);
        MinerConfig mine_config;
        mine_config.min_sup_rel = 0.10;
        auto mined = ClosedMiner().Mine(db, mine_config);
        ASSERT_TRUE(mined.ok());
        std::vector<Pattern> candidates = std::move(*mined);
        AttachMetadata(db, &candidates);

        MmrfsConfig config;
        config.coverage_delta = 2;
        config.num_threads = 1;
        const MmrfsResult want = RunMmrfs(db, candidates, config);

        for (const std::size_t threads : kThreadCounts) {
            config.num_threads = threads;
            const MmrfsResult got = RunMmrfs(db, candidates, config);
            EXPECT_EQ(got.selected, want.selected)
                << "selection diverges at num_threads=" << threads << " (seed "
                << seed << ")";
            EXPECT_EQ(got.relevance, want.relevance);
            EXPECT_EQ(got.gains, want.gains);
            EXPECT_EQ(got.coverage, want.coverage);
        }
    }
}

// Three overlapping Gaussian blobs → 3 OvO binary subproblems per model.
void MakeBlobs(std::uint64_t seed, std::size_t n_per_class, FeatureMatrix* x,
               std::vector<ClassLabel>* y) {
    Rng rng(seed);
    const std::size_t classes = 3;
    *x = FeatureMatrix(classes * n_per_class, 2);
    y->clear();
    for (std::size_t i = 0; i < classes * n_per_class; ++i) {
        const std::size_t c = i / n_per_class;
        x->At(i, 0) = rng.Gaussian(2.0 * static_cast<double>(c), 0.8);
        x->At(i, 1) = rng.Gaussian(c == 1 ? 2.0 : 0.0, 0.8);
        y->push_back(static_cast<ClassLabel>(c));
    }
}

TEST(SvmThreadEquivalenceTest, OvoPredictionsIdenticalForEveryThreadCount) {
    for (std::uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
        FeatureMatrix x;
        std::vector<ClassLabel> y;
        MakeBlobs(seed, 20, &x, &y);

        SmoConfig config;
        config.num_threads = 1;
        SvmClassifier serial(config);
        ASSERT_TRUE(serial.Train(x, y, 3).ok());
        std::vector<ClassLabel> want;
        want.reserve(x.rows());
        for (std::size_t r = 0; r < x.rows(); ++r) {
            want.push_back(serial.Predict(x.Row(r)));
        }

        for (const std::size_t threads : kThreadCounts) {
            config.num_threads = threads;
            SvmClassifier model(config);
            ASSERT_TRUE(model.Train(x, y, 3).ok());
            for (std::size_t r = 0; r < x.rows(); ++r) {
                EXPECT_EQ(model.Predict(x.Row(r)), want[r])
                    << "prediction diverges at row " << r << " num_threads="
                    << threads << " (seed " << seed << ")";
            }
        }
    }
}

TEST(CvThreadEquivalenceTest, FoldAccuraciesIdenticalForEveryThreadCount) {
    FeatureMatrix x;
    std::vector<ClassLabel> y;
    MakeBlobs(/*seed=*/3, 20, &x, &y);
    const ClassifierFactory factory = [] {
        return std::make_unique<SvmClassifier>();
    };
    const CvResult want = CrossValidate(x, y, 3, factory, /*folds=*/5,
                                        /*seed=*/17, /*num_threads=*/1);
    for (const std::size_t threads : kThreadCounts) {
        const CvResult got =
            CrossValidate(x, y, 3, factory, /*folds=*/5, /*seed=*/17, threads);
        EXPECT_EQ(got.fold_accuracies, want.fold_accuracies)
            << "folds diverge at num_threads=" << threads;
        EXPECT_DOUBLE_EQ(got.mean_accuracy, want.mean_accuracy);
    }
}

TEST(GridSearchThreadEquivalenceTest, WinnerIdenticalForEveryThreadCount) {
    FeatureMatrix x;
    std::vector<ClassLabel> y;
    MakeBlobs(/*seed=*/5, 15, &x, &y);
    SmoConfig base;
    SvmGrid grid;
    grid.c_values = {0.01, 0.1, 1.0, 10.0};
    grid.folds = 3;
    grid.num_threads = 1;
    const SmoConfig want = GridSearchSvm(x, y, 3, base, grid);
    for (const std::size_t threads : kThreadCounts) {
        grid.num_threads = threads;
        const SmoConfig got = GridSearchSvm(x, y, 3, base, grid);
        EXPECT_DOUBLE_EQ(got.c, want.c)
            << "grid winner diverges at num_threads=" << threads;
    }
}

}  // namespace
}  // namespace dfp
