// ThreadPool / TaskGroup / ParallelFor unit tests: coverage of the index
// space, help-while-waiting under nesting, counters, and metric publication.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/parallel.hpp"
#include "obs/metrics.hpp"

namespace dfp {
namespace {

TEST(ResolveNumThreadsTest, ZeroMeansHardwareConcurrency) {
    EXPECT_GE(ResolveNumThreads(0), 1u);
    EXPECT_EQ(ResolveNumThreads(1), 1u);
    EXPECT_EQ(ResolveNumThreads(7), 7u);
}

TEST(ParallelForTest, NullPoolRunsInline) {
    std::vector<int> hits(100, 0);
    ParallelFor(nullptr, hits.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
    });
    for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
    for (std::size_t workers : {2u, 4u, 8u}) {
        for (std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
            ThreadPool pool(workers);
            std::vector<std::atomic<int>> hits(n);
            ParallelFor(&pool, n, [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                    hits[i].fetch_add(1, std::memory_order_relaxed);
                }
            });
            for (std::size_t i = 0; i < n; ++i) {
                EXPECT_EQ(hits[i].load(), 1)
                    << "index " << i << " workers " << workers;
            }
        }
    }
}

TEST(ParallelForTest, MinGrainIsRespected) {
    ThreadPool pool(4);
    std::vector<std::size_t> chunk_sizes;
    std::mutex mu;
    ParallelFor(
        &pool, 100,
        [&](std::size_t begin, std::size_t end) {
            std::lock_guard<std::mutex> lock(mu);
            chunk_sizes.push_back(end - begin);
        },
        /*min_grain=*/25);
    std::size_t total = 0;
    for (std::size_t s : chunk_sizes) {
        total += s;
        EXPECT_GE(s, 25u);  // every chunk at least min_grain
    }
    EXPECT_EQ(total, 100u);
}

TEST(TaskGroupTest, WaitBlocksUntilAllTasksFinish) {
    ThreadPool pool(3);
    std::atomic<int> done{0};
    TaskGroup group(pool);
    for (int i = 0; i < 50; ++i) {
        group.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    group.Wait();
    EXPECT_EQ(done.load(), 50);
    EXPECT_GE(pool.tasks_executed(), 50u);
}

TEST(TaskGroupTest, WaitIsIdempotent) {
    ThreadPool pool(2);
    std::atomic<int> done{0};
    TaskGroup group(pool);
    group.Submit([&done] { done.fetch_add(1); });
    group.Wait();
    group.Wait();  // second wait must return immediately
    EXPECT_EQ(done.load(), 1);
}

// Nested fan-out (grid search → CV folds → OvO pairs in the real pipeline):
// inner Waits help-execute queued tasks, so a fixed-size pool cannot deadlock
// even when every worker is itself parked inside a Wait.
TEST(TaskGroupTest, NestedParallelRegionsDoNotDeadlock) {
    ThreadPool pool(2);
    std::atomic<int> leaf{0};
    TaskGroup outer(pool);
    for (int i = 0; i < 8; ++i) {
        outer.Submit([&pool, &leaf] {
            TaskGroup inner(pool);
            for (int j = 0; j < 8; ++j) {
                inner.Submit(
                    [&leaf] { leaf.fetch_add(1, std::memory_order_relaxed); });
            }
            inner.Wait();
        });
    }
    outer.Wait();
    EXPECT_EQ(leaf.load(), 64);
}

TEST(ThreadPoolTest, DestructorPublishesParallelMetrics) {
    auto& registry = obs::Registry::Get();
    const auto tasks_before = registry.GetCounter("dfp.parallel.tasks").value();
    {
        ThreadPool pool(3);
        TaskGroup group(pool);
        for (int i = 0; i < 20; ++i) group.Submit([] {});
        group.Wait();
    }
    EXPECT_GE(registry.GetCounter("dfp.parallel.tasks").value(),
              tasks_before + 20);
    EXPECT_DOUBLE_EQ(registry.GetGauge("dfp.parallel.workers").value(), 3.0);
}

// The scheduling telemetry added for the recursive decomposition: every task
// spawn is counted, steal_count mirrors steals, the queue high-water mark is
// recorded, and per-pool utilization lands in [0, 1]. The same busy/wall
// tallies accumulate into the process-wide counters FinishTrain diffs for
// dfp.parallel.train_utilization.
TEST(ThreadPoolTest, DestructorPublishesSchedulingTelemetry) {
    auto& registry = obs::Registry::Get();
    const auto spawned_before =
        registry.GetCounter("dfp.parallel.tasks_spawned").value();
    const auto busy_before = ThreadPool::ProcessBusyNs();
    const auto wall_before = ThreadPool::ProcessWorkerWallNs();
    {
        ThreadPool pool(2);
        TaskGroup group(pool);
        for (int i = 0; i < 32; ++i) group.Submit([] {});
        group.Wait();
        EXPECT_GE(pool.tasks_spawned(), 32u);
        EXPECT_GE(pool.max_queue_depth(), 1u);
        EXPECT_EQ(registry.GetCounter("dfp.parallel.steal_count").value(),
                  registry.GetCounter("dfp.parallel.steals").value());
    }
    EXPECT_GE(registry.GetCounter("dfp.parallel.tasks_spawned").value(),
              spawned_before + 32);
    EXPECT_GE(registry.GetGauge("dfp.parallel.max_queue_depth").value(), 1.0);
    const double utilization =
        registry.GetGauge("dfp.parallel.utilization").value();
    EXPECT_GE(utilization, 0.0);
    EXPECT_LE(utilization, 1.0);
    EXPECT_GE(ThreadPool::ProcessBusyNs(), busy_before);
    EXPECT_GT(ThreadPool::ProcessWorkerWallNs(), wall_before);
}

TEST(SharedMineProgressTest, TalliesAccumulateAcrossCallers) {
    SharedMineProgress progress;
    EXPECT_EQ(progress.AddEmitted(), 1u);
    EXPECT_EQ(progress.AddEmitted(4), 5u);
    EXPECT_EQ(progress.AddBytes(100), 100u);
    EXPECT_EQ(progress.AddBytes(28), 128u);
}

TEST(TaskBudgetTest, ReanchorsDeadlineToRemainingTime) {
    ExecutionBudget unlimited;
    DeadlineTimer no_deadline(unlimited.time_budget_ms);
    EXPECT_LT(TaskBudget(unlimited, no_deadline).time_budget_ms, 0.0);

    ExecutionBudget timed;
    timed.time_budget_ms = 10'000.0;
    timed.max_patterns = 42;
    DeadlineTimer timer(timed.time_budget_ms);
    const ExecutionBudget task = TaskBudget(timed, timer);
    EXPECT_EQ(task.max_patterns, 42u);  // caps/token pass through
    EXPECT_GE(task.time_budget_ms, 0.0);
    EXPECT_LE(task.time_budget_ms, 10'000.0);  // never more than the region's
}

}  // namespace
}  // namespace dfp
