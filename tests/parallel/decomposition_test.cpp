// Certificates for the recursive mining decomposition and the MMRFS
// incremental-redundancy cache (DESIGN.md §17):
//  * with the split threshold forced to 1 every conditional subproblem
//    re-submits to the TaskGroup, and the sharded merge must still reproduce
//    the serial pattern sequence byte for byte at every thread count;
//  * a budget cancelled mid-recursive-split must leave a well-formed partial
//    MineOutcome that is a *subsequence* of the serial emission sequence;
//  * RunMmrfs with the incremental cache on must equal the cache-off
//    (recompute-from-scratch) path bitwise on doubles, over 20 seeded pools.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "core/mmrfs.hpp"
#include "fpm/closed_miner.hpp"
#include "fpm/eclat.hpp"
#include "fpm/fpgrowth.hpp"

namespace dfp {
namespace {

TransactionDatabase RandomDb(std::uint64_t seed, std::size_t n = 60,
                             std::size_t items = 12, double density = 0.35) {
    Rng rng(seed);
    std::vector<std::vector<ItemId>> txns(n);
    std::vector<ClassLabel> labels(n);
    for (std::size_t t = 0; t < n; ++t) {
        for (ItemId i = 0; i < items; ++i) {
            if (rng.Bernoulli(density)) txns[t].push_back(i);
        }
        if (txns[t].empty()) txns[t].push_back(static_cast<ItemId>(t % items));
        labels[t] = static_cast<ClassLabel>(rng.UniformInt(std::uint64_t{2}));
    }
    return TransactionDatabase::FromTransactions(std::move(txns),
                                                 std::move(labels), items, 2);
}

std::unique_ptr<Miner> MakeMiner(const std::string& name) {
    if (name == "fpgrowth") return std::make_unique<FpGrowthMiner>();
    if (name == "eclat") return std::make_unique<EclatMiner>();
    if (name == "closed") return std::make_unique<ClosedMiner>();
    return nullptr;
}

using SplitCase = std::tuple<const char*, std::size_t>;  // miner × threads

class RecursiveSplitTest : public ::testing::TestWithParam<SplitCase> {
  protected:
    std::unique_ptr<Miner> MakeNamed() const {
        return MakeMiner(std::get<0>(GetParam()));
    }
    std::size_t Threads() const { return std::get<1>(GetParam()); }
};

// split_work_threshold = 1 forces a task split at every conditional
// subproblem with any remaining work — the maximally decomposed schedule.
// The DFS-keyed shard merge must still be the serial sequence, byte for byte.
TEST_P(RecursiveSplitTest, ForcedSplitsReproduceSerialEmissionOrder) {
    const auto miner = MakeNamed();
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const auto db = RandomDb(seed);
        MinerConfig config;
        config.min_sup_rel = 0.10;
        config.num_threads = 1;
        const auto serial = miner->Mine(db, config);
        ASSERT_TRUE(serial.ok()) << serial.status();

        config.num_threads = Threads();
        config.split_work_threshold = 1;
        const auto parallel = miner->Mine(db, config);
        ASSERT_TRUE(parallel.ok()) << parallel.status();
        ASSERT_EQ(serial->size(), parallel->size())
            << miner->Name() << " pattern count diverges under forced splits"
            << " (seed " << seed << ", threads " << Threads() << ")";
        for (std::size_t i = 0; i < serial->size(); ++i) {
            ASSERT_EQ((*serial)[i].items, (*parallel)[i].items)
                << miner->Name() << " order diverges at position " << i
                << " (seed " << seed << ", threads " << Threads() << ")";
            ASSERT_EQ((*serial)[i].support, (*parallel)[i].support);
        }
    }
}

// A cancellation fired mid-recursive-split: some tasks complete, some are
// truncated mid-subtree, some never start. The partial outcome must still be
// well-formed (exact supports, no duplicates, breach reported) and its
// pattern sequence a subsequence of the serial emission sequence — shards
// are contiguous serial runs, so the merge can only omit, never reorder.
TEST_P(RecursiveSplitTest, MidSplitCancellationYieldsSerialSubsequence) {
    const auto miner = MakeNamed();
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto db = RandomDb(seed, 40, 14, 0.45);
        MinerConfig config;
        config.min_sup_abs = 2;
        config.num_threads = 1;
        const auto serial = miner->Mine(db, config);
        ASSERT_TRUE(serial.ok()) << serial.status();

        CancelToken token;
        token.CancelAfterChecks(60 + 40 * seed);  // varied mid-mine fire points
        config.num_threads = Threads();
        config.split_work_threshold = 1;
        config.budget.cancel = &token;
        const auto outcome = miner->MineBudgeted(db, config);
        ASSERT_TRUE(outcome.ok()) << outcome.status();
        EXPECT_EQ(outcome->breach, BudgetBreach::kCancelled);

        std::set<Itemset> seen;
        for (const Pattern& p : outcome->patterns) {
            EXPECT_EQ(p.support, db.SupportOf(p.items)) << "support not exact";
            EXPECT_TRUE(seen.insert(p.items).second) << "duplicate pattern";
        }
        // Subsequence check: every partial pattern appears in the serial
        // sequence, in the serial order.
        std::size_t cursor = 0;
        for (const Pattern& p : outcome->patterns) {
            while (cursor < serial->size() &&
                   ((*serial)[cursor].items != p.items ||
                    (*serial)[cursor].support != p.support)) {
                ++cursor;
            }
            ASSERT_LT(cursor, serial->size())
                << miner->Name()
                << ": partial emission is not a subsequence of serial"
                << " (seed " << seed << ", threads " << Threads() << ")";
            ++cursor;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    MinersByThreads, RecursiveSplitTest,
    ::testing::Combine(::testing::Values("fpgrowth", "eclat", "closed"),
                       ::testing::Values(std::size_t{2}, std::size_t{3},
                                         std::size_t{8}, std::size_t{16})));

// The incremental-cache certificate: per-candidate cached max R(α,β) updated
// only against the newly selected β must equal the cache-off path — which
// recomputes max over all of Fs fresh each round — bitwise on every double
// in the result, across serial and parallel runs.
TEST(MmrfsIncrementalCacheTest, CacheOnEqualsCacheOffBitwise) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const auto db = RandomDb(seed);
        MinerConfig mine_config;
        mine_config.min_sup_rel = 0.10;
        auto mined = ClosedMiner().Mine(db, mine_config);
        ASSERT_TRUE(mined.ok());
        std::vector<Pattern> candidates = std::move(*mined);
        AttachMetadata(db, &candidates);

        MmrfsConfig config;
        config.coverage_delta = 2;
        config.incremental_cache = false;
        config.num_threads = 1;
        const MmrfsResult want = RunMmrfs(db, candidates, config);

        for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
            config.incremental_cache = true;
            config.num_threads = threads;
            const MmrfsResult got = RunMmrfs(db, candidates, config);
            EXPECT_EQ(got.selected, want.selected)
                << "selection diverges with cache on, threads=" << threads
                << " (seed " << seed << ")";
            // operator== on double vectors is exact — bitwise certificate.
            EXPECT_EQ(got.gains, want.gains);
            EXPECT_EQ(got.relevance, want.relevance);
            EXPECT_EQ(got.coverage, want.coverage);
        }
    }
}

}  // namespace
}  // namespace dfp
