// Fault injection into the *parallel* mining paths: cancellation, pattern
// caps and deadlines firing mid-fan-out must still yield well-formed partial
// results — every emitted pattern support-exact, no duplicates, breach
// reported — with the queue drained cleanly (no leaks under ASan, no races
// under TSan).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "core/mmrfs.hpp"
#include "fpm/closed_miner.hpp"
#include "fpm/eclat.hpp"
#include "fpm/fpgrowth.hpp"

namespace dfp {
namespace {

// Dense pseudo-random membership: min_sup = 1 enumeration is combinatorially
// explosive, so every budget fires mid-mine (same shape as miner_budget_test).
TransactionDatabase Explosive(std::size_t num_txns = 30,
                              std::size_t num_items = 20) {
    std::vector<std::vector<ItemId>> txns(num_txns);
    std::vector<ClassLabel> labels(num_txns);
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    for (std::size_t t = 0; t < num_txns; ++t) {
        for (ItemId i = 0; i < num_items; ++i) {
            state = state * 6364136223846793005ull + 1442695040888963407ull;
            if ((state >> 33) & 1) txns[t].push_back(i);
        }
        if (txns[t].empty()) txns[t].push_back(static_cast<ItemId>(t % num_items));
        labels[t] = static_cast<ClassLabel>(t % 2);
    }
    return TransactionDatabase::FromTransactions(std::move(txns),
                                                 std::move(labels), num_items, 2);
}

void ExpectWellFormedPartial(const TransactionDatabase& db,
                             const std::vector<Pattern>& patterns) {
    std::set<Itemset> seen;
    for (const Pattern& p : patterns) {
        EXPECT_EQ(p.support, db.SupportOf(p.items)) << "support not exact";
        EXPECT_TRUE(seen.insert(p.items).second) << "duplicate pattern emitted";
    }
}

using FaultCase = std::tuple<const char*, std::size_t>;  // miner × threads

class ParallelMinerFaultTest : public ::testing::TestWithParam<FaultCase> {
  protected:
    std::unique_ptr<Miner> MakeNamed() const {
        const std::string name = std::get<0>(GetParam());
        if (name == "fpgrowth") return std::make_unique<FpGrowthMiner>();
        if (name == "eclat") return std::make_unique<EclatMiner>();
        if (name == "closed") return std::make_unique<ClosedMiner>();
        return nullptr;
    }
    std::size_t Threads() const { return std::get<1>(GetParam()); }
};

TEST_P(ParallelMinerFaultTest, CancellationMidFanOutYieldsCleanPartial) {
    const auto db = Explosive();
    CancelToken token;
    token.CancelAfterChecks(100);
    MinerConfig config;
    config.min_sup_abs = 1;
    config.num_threads = Threads();
    config.budget.cancel = &token;
    const auto outcome = MakeNamed()->MineBudgeted(db, config);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_EQ(outcome->breach, BudgetBreach::kCancelled);
    ExpectWellFormedPartial(db, outcome->patterns);
}

TEST_P(ParallelMinerFaultTest, PatternCapTruncatesAcrossWorkers) {
    const auto db = Explosive();
    MinerConfig config;
    config.min_sup_abs = 1;
    config.num_threads = Threads();
    config.budget.max_patterns = 50;
    const auto outcome = MakeNamed()->MineBudgeted(db, config);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_EQ(outcome->breach, BudgetBreach::kPatternCap);
    // The cap is enforced against the shared tally; concurrent emissions may
    // overshoot by at most one pattern per worker before the breach lands.
    EXPECT_LE(outcome->patterns.size(), 50u + Threads());
    ExpectWellFormedPartial(db, outcome->patterns);
}

TEST_P(ParallelMinerFaultTest, ExpiredDeadlineDrainsTheQueue) {
    const auto db = Explosive();
    MinerConfig config;
    config.min_sup_abs = 1;
    config.num_threads = Threads();
    config.budget.time_budget_ms = 0.0;
    config.budget.max_patterns = 200'000;  // backstop for pathological clocks
    const auto outcome = MakeNamed()->MineBudgeted(db, config);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_TRUE(outcome->truncated());
    ExpectWellFormedPartial(db, outcome->patterns);
}

TEST_P(ParallelMinerFaultTest, MemoryCapStopsEveryWorker) {
    const auto db = Explosive();
    MinerConfig config;
    config.min_sup_abs = 1;
    config.num_threads = Threads();
    config.budget.max_memory_bytes = 4096;
    config.budget.max_patterns = 200'000;
    const auto outcome = MakeNamed()->MineBudgeted(db, config);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_TRUE(outcome->truncated());
    ExpectWellFormedPartial(db, outcome->patterns);
}

TEST_P(ParallelMinerFaultTest, StrictMineStillFailsClosedOnCancellation) {
    const auto db = Explosive();
    CancelToken token;
    token.CancelAfterChecks(100);
    MinerConfig config;
    config.min_sup_abs = 1;
    config.num_threads = Threads();
    config.budget.cancel = &token;
    const auto result = MakeNamed()->Mine(db, config);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

INSTANTIATE_TEST_SUITE_P(
    MinersByThreads, ParallelMinerFaultTest,
    ::testing::Combine(::testing::Values("fpgrowth", "eclat", "closed"),
                       ::testing::Values(std::size_t{2}, std::size_t{8})));

TEST(ParallelMmrfsFaultTest, CancellationKeepsValidPrefixOfSelections) {
    const auto db = Explosive(40, 12);
    MinerConfig mine_config;
    mine_config.min_sup_rel = 0.15;
    auto mined = ClosedMiner().Mine(db, mine_config);
    ASSERT_TRUE(mined.ok());
    std::vector<Pattern> candidates = std::move(*mined);
    AttachMetadata(db, &candidates);

    CancelToken token;
    token.CancelAfterChecks(40);
    MmrfsConfig config;
    config.coverage_delta = 4;
    config.num_threads = 4;
    config.budget.cancel = &token;
    const MmrfsResult result = RunMmrfs(db, candidates, config);
    EXPECT_EQ(result.breach, BudgetBreach::kCancelled);
    // Whatever was selected before the breach is individually valid.
    std::set<std::size_t> unique(result.selected.begin(), result.selected.end());
    EXPECT_EQ(unique.size(), result.selected.size()) << "duplicate selection";
    for (std::size_t idx : result.selected) EXPECT_LT(idx, candidates.size());
    EXPECT_EQ(result.gains.size(), result.selected.size());
}

}  // namespace
}  // namespace dfp
