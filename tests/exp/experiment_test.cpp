#include "exp/experiment.hpp"

#include <gtest/gtest.h>

#include "exp/scalability.hpp"
#include "ml/svm/svm.hpp"

namespace dfp {
namespace {

SyntheticSpec TinySpec() {
    SyntheticSpec spec;
    spec.rows = 150;
    spec.classes = 2;
    spec.attributes = 6;
    spec.arity = 3;
    spec.seed = 3;
    return spec;
}

TEST(ExperimentTest, NamesAreStable) {
    EXPECT_STREQ(ModelVariantName(ModelVariant::kItemAll), "Item_All");
    EXPECT_STREQ(ModelVariantName(ModelVariant::kPatFs), "Pat_FS");
    EXPECT_STREQ(LearnerKindName(LearnerKind::kC45), "c4.5");
    EXPECT_STREQ(LearnerKindName(LearnerKind::kSvmRbf), "svm-rbf");
}

TEST(ExperimentTest, PrepareTransactionsIsDeterministic) {
    const auto a = PrepareTransactions(TinySpec());
    const auto b = PrepareTransactions(TinySpec());
    ASSERT_EQ(a.num_transactions(), b.num_transactions());
    ASSERT_EQ(a.num_items(), b.num_items());
    for (std::size_t t = 0; t < a.num_transactions(); ++t) {
        EXPECT_EQ(a.transaction(t), b.transaction(t));
        EXPECT_EQ(a.label(t), b.label(t));
    }
}

TEST(ExperimentTest, MakeLearnerRespectsVariantAndKind) {
    ExperimentConfig config;
    auto rbf = MakeLearner(LearnerKind::kSvmLinear, ModelVariant::kItemRbf,
                           config, 20);
    EXPECT_NE(rbf->Name().find("rbf"), std::string::npos);
    auto linear =
        MakeLearner(LearnerKind::kSvmLinear, ModelVariant::kItemAll, config, 20);
    EXPECT_NE(linear->Name().find("linear"), std::string::npos);
    auto tree = MakeLearner(LearnerKind::kC45, ModelVariant::kPatFs, config, 20);
    EXPECT_EQ(tree->Name(), "c4.5");
    auto nb =
        MakeLearner(LearnerKind::kNaiveBayes, ModelVariant::kPatAll, config, 20);
    EXPECT_EQ(nb->Name(), "naive-bayes");
}

TEST(ExperimentTest, AutoRbfGammaScalesWithDimension) {
    ExperimentConfig config;
    config.rbf_gamma = 0.0;  // auto
    auto svm_small = MakeLearner(LearnerKind::kSvmRbf, ModelVariant::kItemRbf,
                                 config, 10);
    auto svm_large = MakeLearner(LearnerKind::kSvmRbf, ModelVariant::kItemRbf,
                                 config, 1000);
    const auto* a = dynamic_cast<SvmClassifier*>(svm_small.get());
    const auto* b = dynamic_cast<SvmClassifier*>(svm_large.get());
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_DOUBLE_EQ(a->config().kernel.gamma, 0.1);
    EXPECT_DOUBLE_EQ(b->config().kernel.gamma, 0.001);
}

TEST(ExperimentTest, MakePipelineConfigMapsFields) {
    ExperimentConfig config;
    config.min_sup_rel = 0.21;
    config.max_pattern_len = 3;
    config.coverage_delta = 7;
    const PipelineConfig with_fs = MakePipelineConfig(config, true);
    EXPECT_DOUBLE_EQ(with_fs.miner.min_sup_rel, 0.21);
    EXPECT_EQ(with_fs.miner.max_pattern_len, 3u);
    EXPECT_TRUE(with_fs.feature_selection);
    EXPECT_EQ(with_fs.mmrfs.coverage_delta, 7u);
    EXPECT_FALSE(MakePipelineConfig(config, false).feature_selection);
}

TEST(ExperimentTest, VariantCvIsDeterministic) {
    const auto db = PrepareTransactions(TinySpec());
    ExperimentConfig config;
    config.folds = 3;
    const auto a = RunVariantCv(db, ModelVariant::kPatFs, LearnerKind::kC45, config);
    const auto b = RunVariantCv(db, ModelVariant::kPatFs, LearnerKind::kC45, config);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
    EXPECT_DOUBLE_EQ(a.mean_selected, b.mean_selected);
}

TEST(ScalabilityTest, SweepRowsAreWellFormed) {
    const auto db = PrepareTransactions(TinySpec());
    ScalabilityConfig config;
    config.min_sups = {60, 90};
    config.probe_min_sup_one = false;
    config.max_features = 50;
    const auto rows = RunScalability(db, config);
    ASSERT_EQ(rows.size(), 2u);
    for (const auto& row : rows) {
        EXPECT_TRUE(row.feasible) << row.note;
        EXPECT_GE(row.svm_accuracy, 0.3);
        EXPECT_GE(row.c45_accuracy, 0.3);
        EXPECT_LE(row.selected, config.max_features);
    }
    // Fewer patterns at the higher threshold (anti-monotonicity).
    EXPECT_GE(rows[0].patterns, rows[1].patterns);
}

TEST(ScalabilityTest, MinSupOneProbeReportsBudget) {
    const auto db = PrepareTransactions(TinySpec());
    ScalabilityConfig config;
    config.min_sups = {};
    config.pattern_budget = 50;  // force the probe to trip
    const auto rows = RunScalability(db, config);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].min_sup, 1u);
    EXPECT_FALSE(rows[0].feasible);
    EXPECT_NE(rows[0].note.find("budget"), std::string::npos);
}

}  // namespace
}  // namespace dfp
