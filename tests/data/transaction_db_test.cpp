#include "data/transaction_db.hpp"

#include <gtest/gtest.h>

namespace dfp {
namespace {

// 4 transactions over 5 items, 2 classes.
TransactionDatabase Toy() {
    return TransactionDatabase::FromTransactions(
        {{0, 1, 2}, {0, 2}, {1, 3}, {0, 1, 4}}, {0, 0, 1, 1}, 5, 2);
}

TEST(TransactionDbTest, BasicShape) {
    const auto db = Toy();
    EXPECT_EQ(db.num_transactions(), 4u);
    EXPECT_EQ(db.num_items(), 5u);
    EXPECT_EQ(db.num_classes(), 2u);
}

TEST(TransactionDbTest, ItemCoversAndSupports) {
    const auto db = Toy();
    EXPECT_EQ(db.ItemSupport(0), 3u);
    EXPECT_EQ(db.ItemSupport(1), 3u);
    EXPECT_EQ(db.ItemSupport(2), 2u);
    EXPECT_EQ(db.ItemSupport(3), 1u);
    EXPECT_EQ(db.ItemSupport(4), 1u);
    EXPECT_EQ(db.ItemCover(0).ToIndices(), (std::vector<std::uint32_t>{0, 1, 3}));
}

TEST(TransactionDbTest, ClassCovers) {
    const auto db = Toy();
    EXPECT_EQ(db.ClassCover(0).ToIndices(), (std::vector<std::uint32_t>{0, 1}));
    EXPECT_EQ(db.ClassCover(1).ToIndices(), (std::vector<std::uint32_t>{2, 3}));
    EXPECT_EQ(db.ClassCounts(), (std::vector<std::size_t>{2, 2}));
}

TEST(TransactionDbTest, CoverOfItemset) {
    const auto db = Toy();
    EXPECT_EQ(db.SupportOf({0, 1}), 2u);  // rows 0 and 3
    EXPECT_EQ(db.SupportOf({0, 1, 2}), 1u);
    EXPECT_EQ(db.SupportOf({3, 4}), 0u);
    EXPECT_EQ(db.SupportOf({}), 4u);  // empty itemset covers everything
}

TEST(TransactionDbTest, ClassCountsOfCover) {
    const auto db = Toy();
    const auto counts = db.ClassCountsOf(db.CoverOf({0, 1}));
    EXPECT_EQ(counts, (std::vector<std::size_t>{1, 1}));
}

TEST(TransactionDbTest, TransactionsSortedAndDeduped) {
    const auto db = TransactionDatabase::FromTransactions(
        {{2, 0, 2, 1}}, {0}, 3, 1);
    EXPECT_EQ(db.transaction(0), (std::vector<ItemId>{0, 1, 2}));
}

TEST(TransactionDbTest, FilterByClass) {
    const auto db = Toy();
    const auto c1 = db.FilterByClass(1);
    EXPECT_EQ(c1.num_transactions(), 2u);
    EXPECT_EQ(c1.transaction(0), (std::vector<ItemId>{1, 3}));
    EXPECT_EQ(c1.num_items(), 5u);       // item universe unchanged
    EXPECT_EQ(c1.num_classes(), 2u);     // label space unchanged
    EXPECT_EQ(c1.label(0), 1u);
}

TEST(TransactionDbTest, SubsetKeepsOrder) {
    const auto db = Toy();
    const auto sub = db.Subset({3, 0});
    EXPECT_EQ(sub.num_transactions(), 2u);
    EXPECT_EQ(sub.transaction(0), (std::vector<ItemId>{0, 1, 4}));
    EXPECT_EQ(sub.label(1), 0u);
}

TEST(TransactionDbTest, Contains) {
    const auto db = Toy();
    EXPECT_TRUE(db.Contains(0, {0, 2}));
    EXPECT_FALSE(db.Contains(1, {0, 1}));
    EXPECT_TRUE(db.Contains(2, {}));
}

TEST(TransactionDbTest, ClassPriors) {
    const auto db = Toy();
    EXPECT_EQ(db.ClassPriors(), (std::vector<double>{0.5, 0.5}));
}

TEST(TransactionDbTest, ItemNamesFallback) {
    const auto db = Toy();
    EXPECT_EQ(db.ItemName(3), "item3");
    const auto named = TransactionDatabase::FromTransactions(
        {{0}}, {0}, 1, 1, {"color=red"});
    EXPECT_EQ(named.ItemName(0), "color=red");
}

}  // namespace
}  // namespace dfp
