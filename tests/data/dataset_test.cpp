#include "data/dataset.hpp"

#include <gtest/gtest.h>

namespace dfp {
namespace {

Dataset MakeToy() {
    Attribute color{"color", AttributeType::kCategorical, {"red", "green"}};
    Attribute weight{"weight", AttributeType::kNumeric, {}};
    Dataset data({color, weight}, {"no", "yes"});
    EXPECT_TRUE(data.AddRow({0, 1.5}, 0).ok());
    EXPECT_TRUE(data.AddRow({1, 2.5}, 1).ok());
    EXPECT_TRUE(data.AddRow({1, 3.5}, 1).ok());
    return data;
}

TEST(DatasetTest, BasicShape) {
    const Dataset data = MakeToy();
    EXPECT_EQ(data.num_rows(), 3u);
    EXPECT_EQ(data.num_attributes(), 2u);
    EXPECT_EQ(data.num_classes(), 2u);
    EXPECT_EQ(data.Code(0, 0), 0u);
    EXPECT_EQ(data.Code(1, 0), 1u);
    EXPECT_DOUBLE_EQ(data.Value(2, 1), 3.5);
    EXPECT_EQ(data.label(0), 0u);
    EXPECT_EQ(data.label(2), 1u);
}

TEST(DatasetTest, AddRowValidatesArity) {
    Dataset data = MakeToy();
    EXPECT_FALSE(data.AddRow({0}, 0).ok());            // too few values
    EXPECT_FALSE(data.AddRow({0, 1.0, 2.0}, 0).ok());  // too many
}

TEST(DatasetTest, AddRowValidatesCategoricalCode) {
    Dataset data = MakeToy();
    EXPECT_FALSE(data.AddRow({2, 1.0}, 0).ok());   // color code out of range
    EXPECT_FALSE(data.AddRow({-1, 1.0}, 0).ok());  // negative code
}

TEST(DatasetTest, AddRowValidatesLabel) {
    Dataset data = MakeToy();
    EXPECT_FALSE(data.AddRow({0, 1.0}, 2).ok());
}

TEST(DatasetTest, ClassCountsAndPriors) {
    const Dataset data = MakeToy();
    EXPECT_EQ(data.ClassCounts(), (std::vector<std::size_t>{1, 2}));
    const auto priors = data.ClassPriors();
    EXPECT_NEAR(priors[0], 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(priors[1], 2.0 / 3.0, 1e-12);
    EXPECT_EQ(data.MajorityClass(), 1u);
}

TEST(DatasetTest, SubsetPreservesSchemaAndOrder) {
    const Dataset data = MakeToy();
    const Dataset sub = data.Subset({2, 0});
    EXPECT_EQ(sub.num_rows(), 2u);
    EXPECT_DOUBLE_EQ(sub.Value(0, 1), 3.5);
    EXPECT_DOUBLE_EQ(sub.Value(1, 1), 1.5);
    EXPECT_EQ(sub.label(0), 1u);
    EXPECT_EQ(sub.label(1), 0u);
    EXPECT_EQ(sub.num_attributes(), 2u);
}

TEST(DatasetTest, AddAttributeValueDeduplicates) {
    Dataset data = MakeToy();
    EXPECT_EQ(data.AddAttributeValue(0, "red"), 0u);    // existing
    EXPECT_EQ(data.AddAttributeValue(0, "blue"), 2u);   // new
    EXPECT_EQ(data.attribute(0).arity(), 3u);
}

TEST(DatasetTest, IsFullyCategorical) {
    const Dataset mixed = MakeToy();
    EXPECT_FALSE(mixed.IsFullyCategorical());
    Attribute a{"a", AttributeType::kCategorical, {"x", "y"}};
    Dataset pure({a}, {"c0", "c1"});
    EXPECT_TRUE(pure.IsFullyCategorical());
}

TEST(DatasetTest, CellToString) {
    const Dataset data = MakeToy();
    EXPECT_EQ(data.CellToString(0, 0), "red");
    EXPECT_EQ(data.CellToString(0, 1), "1.5");
}

TEST(DatasetTest, EmptyDatasetBehaves) {
    Dataset data({}, {"a", "b"});
    EXPECT_EQ(data.num_rows(), 0u);
    EXPECT_EQ(data.MajorityClass(), 0u);
    EXPECT_EQ(data.ClassPriors(), (std::vector<double>{0.0, 0.0}));
}

}  // namespace
}  // namespace dfp
