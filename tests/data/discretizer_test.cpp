#include "data/discretizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"

namespace dfp {
namespace {

Dataset NumericDataset(const std::vector<double>& values,
                       const std::vector<ClassLabel>& labels,
                       std::size_t num_classes = 2) {
    Attribute a{"x", AttributeType::kNumeric, {}};
    std::vector<std::string> class_names;
    for (std::size_t c = 0; c < num_classes; ++c) {
        class_names.push_back("c" + std::to_string(c));
    }
    Dataset data({a}, class_names);
    for (std::size_t i = 0; i < values.size(); ++i) {
        EXPECT_TRUE(data.AddRow({values[i]}, labels[i]).ok());
    }
    return data;
}

TEST(EqualWidthTest, CutPointsAreEquallySpaced) {
    EqualWidthDiscretizer disc(4);
    const auto cuts = disc.FindCutPoints({0.0, 10.0, 5.0, 2.0}, {}, 2);
    ASSERT_EQ(cuts.size(), 3u);
    EXPECT_NEAR(cuts[0], 2.5, 1e-12);
    EXPECT_NEAR(cuts[1], 5.0, 1e-12);
    EXPECT_NEAR(cuts[2], 7.5, 1e-12);
}

TEST(EqualWidthTest, ConstantColumnYieldsNoCuts) {
    EqualWidthDiscretizer disc(4);
    EXPECT_TRUE(disc.FindCutPoints({3.0, 3.0, 3.0}, {}, 2).empty());
}

TEST(EqualFrequencyTest, BalancedPopulations) {
    EqualFrequencyDiscretizer disc(2);
    std::vector<double> values;
    for (int i = 0; i < 100; ++i) values.push_back(i);
    const auto cuts = disc.FindCutPoints(values, {}, 2);
    ASSERT_EQ(cuts.size(), 1u);
    // Half of the values on each side.
    const auto below = static_cast<std::size_t>(
        std::count_if(values.begin(), values.end(),
                      [&cuts](double v) { return v < cuts[0]; }));
    EXPECT_NEAR(static_cast<double>(below), 50.0, 2.0);
}

TEST(EqualFrequencyTest, HandlesHeavyTies) {
    EqualFrequencyDiscretizer disc(4);
    // 90% of mass at one value: duplicate cuts must be suppressed.
    std::vector<double> values(90, 5.0);
    for (int i = 0; i < 10; ++i) values.push_back(10.0 + i);
    const auto cuts = disc.FindCutPoints(values, {}, 2);
    for (std::size_t i = 1; i < cuts.size(); ++i) EXPECT_GT(cuts[i], cuts[i - 1]);
}

TEST(MdlTest, FindsObviousBoundary) {
    // Class 0 below 10, class 1 above 20: one clean boundary.
    std::vector<double> values;
    std::vector<ClassLabel> labels;
    for (int i = 0; i < 30; ++i) {
        values.push_back(i * 0.3);
        labels.push_back(0);
        values.push_back(20.0 + i * 0.3);
        labels.push_back(1);
    }
    MdlDiscretizer disc;
    const auto cuts = disc.FindCutPoints(values, labels, 2);
    ASSERT_EQ(cuts.size(), 1u);
    EXPECT_GT(cuts[0], 8.0);
    EXPECT_LT(cuts[0], 21.0);
}

TEST(MdlTest, RejectsUninformativeColumn) {
    // Labels independent of the value: MDL should refuse to split.
    Rng rng(3);
    std::vector<double> values;
    std::vector<ClassLabel> labels;
    for (int i = 0; i < 200; ++i) {
        values.push_back(rng.Uniform());
        labels.push_back(static_cast<ClassLabel>(rng.UniformInt(std::uint64_t{2})));
    }
    MdlDiscretizer disc;
    EXPECT_TRUE(disc.FindCutPoints(values, labels, 2).empty());
}

TEST(MdlTest, PureColumnNoCuts) {
    MdlDiscretizer disc;
    const auto cuts =
        disc.FindCutPoints({1.0, 2.0, 3.0, 4.0}, {1, 1, 1, 1}, 2);
    EXPECT_TRUE(cuts.empty());
}

TEST(MdlTest, MultiClassThreeBands) {
    std::vector<double> values;
    std::vector<ClassLabel> labels;
    for (int i = 0; i < 40; ++i) {
        values.push_back(i * 0.1);
        labels.push_back(0);
        values.push_back(10.0 + i * 0.1);
        labels.push_back(1);
        values.push_back(20.0 + i * 0.1);
        labels.push_back(2);
    }
    MdlDiscretizer disc;
    const auto cuts = disc.FindCutPoints(values, labels, 3);
    EXPECT_EQ(cuts.size(), 2u);
}

TEST(DiscretizationModelTest, BinOfRespectsIntervals) {
    DiscretizationModel model;
    model.cut_points = {{1.0, 2.0}};
    EXPECT_EQ(model.BinOf(0, 0.5), 0u);
    EXPECT_EQ(model.BinOf(0, 1.0), 1u);  // cuts[i-1] <= v < cuts[i]
    EXPECT_EQ(model.BinOf(0, 1.5), 1u);
    EXPECT_EQ(model.BinOf(0, 2.0), 2u);
    EXPECT_EQ(model.BinOf(0, 99.0), 2u);
}

TEST(DiscretizerTest, FitApplyMakesFullyCategorical) {
    std::vector<double> values;
    std::vector<ClassLabel> labels;
    for (int i = 0; i < 50; ++i) {
        values.push_back(i);
        labels.push_back(i < 25 ? 0 : 1);
    }
    Dataset data = NumericDataset(values, labels);
    MdlDiscretizer disc;
    const Dataset out = disc.FitApply(data);
    EXPECT_TRUE(out.IsFullyCategorical());
    EXPECT_EQ(out.num_rows(), data.num_rows());
    // Labels preserved.
    for (std::size_t r = 0; r < out.num_rows(); ++r) {
        EXPECT_EQ(out.label(r), data.label(r));
    }
}

TEST(DiscretizerTest, ApplyToUnseenDataUsesTrainCuts) {
    std::vector<double> values;
    std::vector<ClassLabel> labels;
    for (int i = 0; i < 50; ++i) {
        values.push_back(i);
        labels.push_back(i < 25 ? 0 : 1);
    }
    Dataset train = NumericDataset(values, labels);
    MdlDiscretizer disc;
    const DiscretizationModel model = disc.Fit(train);
    // Out-of-range test values map to the extreme bins, not out of range.
    Dataset test = NumericDataset({-100.0, 1000.0}, {0, 1});
    const Dataset out = Discretizer::Apply(model, test);
    EXPECT_TRUE(out.IsFullyCategorical());
    EXPECT_EQ(out.Code(0, 0), 0u);
    EXPECT_EQ(out.Code(1, 0), out.attribute(0).arity() - 1);
}

TEST(DiscretizerTest, CategoricalColumnsPassThrough) {
    Attribute cat{"c", AttributeType::kCategorical, {"a", "b"}};
    Attribute num{"n", AttributeType::kNumeric, {}};
    Dataset data({cat, num}, {"c0", "c1"});
    for (int i = 0; i < 30; ++i) {
        ASSERT_TRUE(
            data.AddRow({static_cast<double>(i % 2), static_cast<double>(i)},
                        i < 15 ? 0u : 1u)
                .ok());
    }
    MdlDiscretizer disc;
    const Dataset out = disc.FitApply(data);
    EXPECT_EQ(out.attribute(0).values, (std::vector<std::string>{"a", "b"}));
    for (std::size_t r = 0; r < out.num_rows(); ++r) {
        EXPECT_EQ(out.Code(r, 0), data.Code(r, 0));
    }
}

}  // namespace
}  // namespace dfp
