#include "data/chimerge.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dfp {
namespace {

TEST(ChiSquareTest, IdenticalDistributionsScoreZero) {
    EXPECT_NEAR(ChiSquareOfPair({10, 10}, {5, 5}), 0.0, 1e-12);
}

TEST(ChiSquareTest, DisjointClassesScoreHigh) {
    // Left pure class 0, right pure class 1: χ² = N for a 2x2 table.
    EXPECT_NEAR(ChiSquareOfPair({10, 0}, {0, 10}), 20.0, 1e-9);
}

TEST(ChiSquareTest, HandComputedValue) {
    // left (6,2), right (2,6): χ² = Σ (o-e)²/e with e = 4 everywhere.
    EXPECT_NEAR(ChiSquareOfPair({6, 2}, {2, 6}), 4 * (4.0 / 4.0), 1e-9);
}

TEST(ChiSquareCriticalTest, TableLookups) {
    EXPECT_NEAR(ChiSquareCritical(0.95, 1), 3.841, 1e-9);
    EXPECT_NEAR(ChiSquareCritical(0.90, 2), 4.605, 1e-9);
    EXPECT_NEAR(ChiSquareCritical(0.99, 3), 11.345, 1e-9);
    // df clamped into [1, 10].
    EXPECT_NEAR(ChiSquareCritical(0.95, 0), 3.841, 1e-9);
    EXPECT_NEAR(ChiSquareCritical(0.95, 99), 18.307, 1e-9);
}

TEST(ChiMergeTest, FindsObviousBoundary) {
    std::vector<double> values;
    std::vector<ClassLabel> labels;
    for (int i = 0; i < 40; ++i) {
        values.push_back(i * 0.1);
        labels.push_back(0);
        values.push_back(10.0 + i * 0.1);
        labels.push_back(1);
    }
    ChiMergeDiscretizer disc;
    const auto cuts = disc.FindCutPoints(values, labels, 2);
    ASSERT_FALSE(cuts.empty());
    // At least one cut separating the two bands.
    bool separating = false;
    for (double c : cuts) separating |= (c > 4.0 && c <= 10.0);
    EXPECT_TRUE(separating);
}

TEST(ChiMergeTest, StricterSignificanceMergesMoreNoise) {
    // ChiMerge famously overfits pure noise (its χ² test is uncorrected for
    // the multiple boundaries it inspects), so we assert the two properties
    // that do hold: the interval budget caps the output, and a stricter
    // significance threshold merges strictly more.
    Rng rng(4);
    std::vector<double> values;
    std::vector<ClassLabel> labels;
    for (int i = 0; i < 300; ++i) {
        values.push_back(rng.Uniform());
        labels.push_back(static_cast<ClassLabel>(rng.UniformInt(std::uint64_t{2})));
    }
    ChiMergeConfig loose;
    loose.significance = 0.90;
    ChiMergeConfig strict;
    strict.significance = 0.99;
    const auto loose_cuts =
        ChiMergeDiscretizer(loose).FindCutPoints(values, labels, 2);
    const auto strict_cuts =
        ChiMergeDiscretizer(strict).FindCutPoints(values, labels, 2);
    EXPECT_LT(loose_cuts.size(), ChiMergeConfig{}.max_intervals);
    EXPECT_LT(strict_cuts.size(), loose_cuts.size());
}

TEST(ChiMergeTest, MaxIntervalsEnforced) {
    // Strongly informative many-level column would otherwise keep many bins.
    std::vector<double> values;
    std::vector<ClassLabel> labels;
    for (int band = 0; band < 30; ++band) {
        for (int i = 0; i < 10; ++i) {
            values.push_back(band);
            labels.push_back(static_cast<ClassLabel>(band % 2));
        }
    }
    ChiMergeConfig config;
    config.max_intervals = 6;
    ChiMergeDiscretizer disc(config);
    const auto cuts = disc.FindCutPoints(values, labels, 2);
    EXPECT_LE(cuts.size() + 1, 6u);
}

TEST(ChiMergeTest, WorksAsDiscretizerOnDataset) {
    Attribute num{"x", AttributeType::kNumeric, {}};
    Dataset data({num}, {"c0", "c1"});
    for (int i = 0; i < 60; ++i) {
        ASSERT_TRUE(data.AddRow({static_cast<double>(i)}, i < 30 ? 0u : 1u).ok());
    }
    ChiMergeDiscretizer disc;
    const Dataset out = disc.FitApply(data);
    EXPECT_TRUE(out.IsFullyCategorical());
    EXPECT_GE(out.attribute(0).arity(), 2u);
}

}  // namespace
}  // namespace dfp
