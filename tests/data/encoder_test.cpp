#include "data/encoder.hpp"

#include <gtest/gtest.h>

namespace dfp {
namespace {

Dataset CategoricalToy() {
    Attribute a{"a", AttributeType::kCategorical, {"x", "y"}};
    Attribute b{"b", AttributeType::kCategorical, {"p", "q", "r"}};
    Dataset data({a, b}, {"c0", "c1"});
    EXPECT_TRUE(data.AddRow({0, 2}, 0).ok());
    EXPECT_TRUE(data.AddRow({1, 0}, 1).ok());
    return data;
}

TEST(ItemEncoderTest, DenseItemIds) {
    const Dataset data = CategoricalToy();
    auto enc = ItemEncoder::FromSchema(data);
    ASSERT_TRUE(enc.ok());
    EXPECT_EQ(enc->num_items(), 5u);  // 2 + 3
    EXPECT_EQ(enc->Encode(0, 0), 0u);
    EXPECT_EQ(enc->Encode(0, 1), 1u);
    EXPECT_EQ(enc->Encode(1, 0), 2u);
    EXPECT_EQ(enc->Encode(1, 2), 4u);
}

TEST(ItemEncoderTest, DecodeRoundTrip) {
    const Dataset data = CategoricalToy();
    auto enc = ItemEncoder::FromSchema(data);
    ASSERT_TRUE(enc.ok());
    for (std::size_t a = 0; a < data.num_attributes(); ++a) {
        for (std::uint32_t v = 0; v < data.attribute(a).arity(); ++v) {
            const auto [da, dv] = enc->Decode(enc->Encode(a, v));
            EXPECT_EQ(da, a);
            EXPECT_EQ(dv, v);
        }
    }
}

TEST(ItemEncoderTest, ItemNames) {
    const Dataset data = CategoricalToy();
    auto enc = ItemEncoder::FromSchema(data);
    ASSERT_TRUE(enc.ok());
    EXPECT_EQ(enc->ItemName(0), "a=x");
    EXPECT_EQ(enc->ItemName(4), "b=r");
}

TEST(ItemEncoderTest, EncodeRowIsSortedOneItemPerAttribute) {
    const Dataset data = CategoricalToy();
    auto enc = ItemEncoder::FromSchema(data);
    ASSERT_TRUE(enc.ok());
    const auto row0 = enc->EncodeRow(data, 0);
    EXPECT_EQ(row0, (std::vector<ItemId>{0, 4}));  // a=x, b=r
    const auto row1 = enc->EncodeRow(data, 1);
    EXPECT_EQ(row1, (std::vector<ItemId>{1, 2}));  // a=y, b=p
}

TEST(ItemEncoderTest, ConstantAttributesProduceNoItems) {
    Attribute a{"a", AttributeType::kCategorical, {"x", "y"}};
    Attribute constant{"const", AttributeType::kCategorical, {"only"}};
    Attribute b{"b", AttributeType::kCategorical, {"p", "q"}};
    Dataset data({a, constant, b}, {"c0", "c1"});
    ASSERT_TRUE(data.AddRow({1, 0, 0}, 0).ok());
    auto enc = ItemEncoder::FromSchema(data);
    ASSERT_TRUE(enc.ok());
    EXPECT_EQ(enc->num_items(), 4u);  // "const=only" omitted
    EXPECT_TRUE(enc->IsSkipped(1));
    EXPECT_FALSE(enc->IsSkipped(0));
    const auto row = enc->EncodeRow(data, 0);
    EXPECT_EQ(row, (std::vector<ItemId>{1, 2}));  // a=y, b=p
    // Decode still resolves the remaining items to the right attributes.
    EXPECT_EQ(enc->Decode(2), (std::pair<std::size_t, std::uint32_t>{2, 0}));
    EXPECT_EQ(enc->ItemName(2), "b=p");
}

TEST(ItemEncoderTest, RejectsNumericSchema) {
    Attribute n{"n", AttributeType::kNumeric, {}};
    Dataset data({n}, {"c0", "c1"});
    const auto enc = ItemEncoder::FromSchema(data);
    EXPECT_FALSE(enc.ok());
    EXPECT_EQ(enc.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace dfp
