#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include "data/csv.hpp"

namespace dfp {
namespace {

TEST(SyntheticTest, ShapeMatchesSpec) {
    SyntheticSpec spec;
    spec.rows = 200;
    spec.classes = 3;
    spec.attributes = 8;
    spec.arity = 4;
    spec.numeric_fraction = 0.25;
    const Dataset data = GenerateSynthetic(spec);
    EXPECT_EQ(data.num_rows(), 200u);
    EXPECT_EQ(data.num_classes(), 3u);
    EXPECT_EQ(data.num_attributes(), 8u);
    std::size_t numeric = 0;
    for (std::size_t a = 0; a < 8; ++a) {
        if (data.attribute(a).type == AttributeType::kNumeric) {
            ++numeric;
        } else {
            EXPECT_EQ(data.attribute(a).arity(), 4u);
        }
    }
    EXPECT_EQ(numeric, 2u);  // 25% of 8
}

TEST(SyntheticTest, DeterministicInSeed) {
    SyntheticSpec spec;
    spec.rows = 100;
    spec.seed = 99;
    const Dataset a = GenerateSynthetic(spec);
    const Dataset b = GenerateSynthetic(spec);
    ASSERT_EQ(a.num_rows(), b.num_rows());
    for (std::size_t r = 0; r < a.num_rows(); ++r) {
        EXPECT_EQ(a.label(r), b.label(r));
        for (std::size_t at = 0; at < a.num_attributes(); ++at) {
            EXPECT_DOUBLE_EQ(a.Value(r, at), b.Value(r, at));
        }
    }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
    SyntheticSpec spec;
    spec.rows = 100;
    spec.seed = 1;
    const Dataset a = GenerateSynthetic(spec);
    spec.seed = 2;
    const Dataset b = GenerateSynthetic(spec);
    std::size_t diffs = 0;
    for (std::size_t r = 0; r < a.num_rows(); ++r) {
        for (std::size_t at = 0; at < a.num_attributes(); ++at) {
            diffs += (a.Value(r, at) != b.Value(r, at));
        }
    }
    EXPECT_GT(diffs, 50u);
}

TEST(SyntheticTest, AllClassesRepresented) {
    SyntheticSpec spec;
    spec.rows = 500;
    spec.classes = 4;
    const Dataset data = GenerateSynthetic(spec);
    const auto counts = data.ClassCounts();
    for (std::size_t c = 0; c < 4; ++c) EXPECT_GT(counts[c], 0u);
}

TEST(SyntheticTest, ImbalanceSkewsPrior) {
    SyntheticSpec spec;
    spec.rows = 2000;
    spec.classes = 2;
    spec.class_imbalance = 0.5;
    spec.label_noise = 0.0;
    const Dataset data = GenerateSynthetic(spec);
    const auto counts = data.ClassCounts();
    EXPECT_GT(counts[0], counts[1] * 3 / 2);
}

TEST(XorTest, NoSingleFeatureIsInformativeButXorIs) {
    const Dataset data = GenerateXor(2000, 2, 0.0, 5);
    EXPECT_EQ(data.num_attributes(), 4u);
    // Label equals x XOR y exactly.
    for (std::size_t r = 0; r < data.num_rows(); ++r) {
        const int x = static_cast<int>(data.Value(r, 0));
        const int y = static_cast<int>(data.Value(r, 1));
        EXPECT_EQ(data.label(r), static_cast<ClassLabel>(x ^ y));
    }
    // Each single feature alone predicts ~50%.
    for (std::size_t a = 0; a < 2; ++a) {
        std::size_t match = 0;
        for (std::size_t r = 0; r < data.num_rows(); ++r) {
            match += (static_cast<ClassLabel>(data.Value(r, a)) == data.label(r));
        }
        const double rate = static_cast<double>(match) /
                            static_cast<double>(data.num_rows());
        EXPECT_NEAR(rate, 0.5, 0.05);
    }
}

TEST(XorTest, NoiseFlipsLabels) {
    const Dataset data = GenerateXor(5000, 0, 0.2, 5);
    std::size_t flipped = 0;
    for (std::size_t r = 0; r < data.num_rows(); ++r) {
        const int x = static_cast<int>(data.Value(r, 0));
        const int y = static_cast<int>(data.Value(r, 1));
        flipped += (data.label(r) != static_cast<ClassLabel>(x ^ y));
    }
    EXPECT_NEAR(static_cast<double>(flipped) / 5000.0, 0.2, 0.03);
}

TEST(RegistryTest, UciSpecsHavePublishedShapes) {
    const auto& specs = UciTableSpecs();
    EXPECT_EQ(specs.size(), 19u);
    // Spot-check a few published dataset shapes.
    auto find = [&specs](const std::string& name) -> const SyntheticSpec& {
        for (const auto& s : specs) {
            if (s.name == name) return s;
        }
        ADD_FAILURE() << "missing spec " << name;
        return specs.front();
    };
    EXPECT_EQ(find("austral").rows, 690u);
    EXPECT_EQ(find("austral").classes, 2u);
    EXPECT_EQ(find("iris").rows, 150u);
    EXPECT_EQ(find("iris").classes, 3u);
    EXPECT_EQ(find("sonar").attributes, 60u);
    EXPECT_EQ(find("zoo").classes, 7u);
}

TEST(RegistryTest, ScalabilitySpecs) {
    EXPECT_EQ(ChessSpec().rows, 3196u);
    EXPECT_EQ(ChessSpec().classes, 2u);
    EXPECT_EQ(WaveformSpec().rows, 5000u);
    EXPECT_EQ(WaveformSpec().classes, 3u);
    EXPECT_EQ(LetterSpec().rows, 20000u);
    EXPECT_EQ(LetterSpec().classes, 26u);
}

TEST(RegistryTest, LookupByName) {
    EXPECT_TRUE(GetSpecByName("breast").ok());
    EXPECT_TRUE(GetSpecByName("chess").ok());
    const auto missing = GetSpecByName("nope");
    EXPECT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dfp
