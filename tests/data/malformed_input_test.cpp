// Malformed-input corpus: every reader must fail with a typed Status
// (ParseError / InvalidArgument), never crash or index out of bounds.
#include <gtest/gtest.h>

#include <sstream>

#include "data/csv.hpp"
#include "data/transaction_db.hpp"

namespace dfp {
namespace {

Result<Dataset> Parse(const std::string& text, CsvOptions options = {}) {
    std::istringstream in(text);
    return ReadCsv(in, options);
}

TEST(MalformedCsvTest, EmptyInput) {
    const auto r = Parse("");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(MalformedCsvTest, WhitespaceOnlyInput) {
    const auto r = Parse("\n   \n\t\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(MalformedCsvTest, HeaderButNoDataRows) {
    const auto r = Parse("a,b,class\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(MalformedCsvTest, SingleColumnRejected) {
    CsvOptions options;
    options.has_header = false;
    const auto r = Parse("1\n2\n3\n", options);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(MalformedCsvTest, TruncatedRowRejected) {
    const auto r = Parse("a,b,class\n1,2,x\n1,y\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(MalformedCsvTest, OverlongRowRejected) {
    const auto r = Parse("a,b,class\n1,2,x\n1,2,3,y\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(MalformedCsvTest, ClassColumnOutOfRange) {
    CsvOptions options;
    options.class_column = 5;  // resolved against 3 columns: out of range
    const auto r = Parse("a,b,class\n1,2,x\n", options);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

    options.class_column = -4;
    const auto r2 = Parse("a,b,class\n1,2,x\n", options);
    ASSERT_FALSE(r2.ok());
    EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
}

TEST(MalformedCsvTest, NonNumericCellDemotesColumnToCategorical) {
    // A stray non-numeric cell must not crash numeric parsing: type inference
    // demotes the whole column to categorical instead.
    const auto r = Parse("a,b,class\n1.5,2,x\noops,3,y\n");
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->attribute(0).type, AttributeType::kCategorical);
    EXPECT_EQ(r->attribute(1).type, AttributeType::kNumeric);
    EXPECT_EQ(r->num_rows(), 2u);
}

TEST(MalformedCsvTest, CrlfLineEndingsParse) {
    const auto r = Parse("a,b,class\r\n1,2,x\r\n3,4,y\r\n");
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->num_rows(), 2u);
    ASSERT_EQ(r->class_names().size(), 2u);
    // The trailing \r must be trimmed, not folded into the class name.
    EXPECT_EQ(r->class_names()[0], "x");
    EXPECT_EQ(r->class_names()[1], "y");
}

TEST(MalformedCsvTest, DuplicateClassLabelsShareOneCode) {
    const auto r = Parse("a,b,class\n1,2,x\n3,4,x\n5,6,y\n");
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->num_classes(), 2u);
    EXPECT_EQ(r->label(0), r->label(1));
    EXPECT_NE(r->label(0), r->label(2));
}

TEST(CheckedTransactionDbTest, SizeMismatchRejected) {
    const auto r = TransactionDatabase::FromTransactionsChecked(
        {{0, 1}, {1}}, {0}, 2, 1);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckedTransactionDbTest, ItemIdOutOfRangeRejected) {
    const auto r = TransactionDatabase::FromTransactionsChecked(
        {{0, 7}}, {0}, 2, 1);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckedTransactionDbTest, UnknownLabelRejected) {
    const auto r = TransactionDatabase::FromTransactionsChecked(
        {{0}, {1}}, {0, 2}, 2, 2);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckedTransactionDbTest, WrongItemNameCountRejected) {
    const auto r = TransactionDatabase::FromTransactionsChecked(
        {{0}}, {0}, 2, 1, {"only-one-name"});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckedTransactionDbTest, ValidInputBuilds) {
    const auto r = TransactionDatabase::FromTransactionsChecked(
        {{0, 1}, {1}, {0}}, {0, 1, 0}, 2, 2);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->num_transactions(), 3u);
    EXPECT_EQ(r->SupportOf({1}), 2u);
}

}  // namespace
}  // namespace dfp
