#include "data/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dfp {
namespace {

TEST(CsvTest, ParsesMixedColumns) {
    std::istringstream in(
        "color,weight,label\n"
        "red,1.5,yes\n"
        "green,2.5,no\n"
        "red,3.0,yes\n");
    auto data = ReadCsv(in);
    ASSERT_TRUE(data.ok()) << data.status();
    EXPECT_EQ(data->num_rows(), 3u);
    EXPECT_EQ(data->num_attributes(), 2u);
    EXPECT_EQ(data->attribute(0).type, AttributeType::kCategorical);
    EXPECT_EQ(data->attribute(1).type, AttributeType::kNumeric);
    EXPECT_EQ(data->num_classes(), 2u);
    EXPECT_EQ(data->class_names()[0], "yes");
    EXPECT_EQ(data->label(1), 1u);
    EXPECT_DOUBLE_EQ(data->Value(2, 1), 3.0);
}

TEST(CsvTest, HeaderlessInput) {
    std::istringstream in("1,2,a\n3,4,b\n");
    CsvOptions options;
    options.has_header = false;
    auto data = ReadCsv(in, options);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data->num_rows(), 2u);
    EXPECT_EQ(data->attribute(0).name, "col0");
}

TEST(CsvTest, ClassColumnSelection) {
    std::istringstream in("label,x\nyes,1\nno,2\n");
    CsvOptions options;
    options.class_column = 0;
    auto data = ReadCsv(in, options);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data->num_attributes(), 1u);
    EXPECT_EQ(data->attribute(0).name, "x");
    EXPECT_EQ(data->class_names()[0], "yes");
}

TEST(CsvTest, NegativeClassColumnCountsFromEnd) {
    std::istringstream in("x,label\n1,yes\n2,no\n");
    CsvOptions options;
    options.class_column = -1;
    auto data = ReadCsv(in, options);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data->class_names()[1], "no");
}

TEST(CsvTest, RejectsRaggedRows) {
    std::istringstream in("a,b,c\n1,2,3\n1,2\n");
    const auto data = ReadCsv(in);
    EXPECT_FALSE(data.ok());
    EXPECT_EQ(data.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, RejectsEmptyInput) {
    std::istringstream in("");
    EXPECT_FALSE(ReadCsv(in).ok());
}

TEST(CsvTest, RejectsSingleColumn) {
    std::istringstream in("only\nx\n");
    EXPECT_FALSE(ReadCsv(in).ok());
}

TEST(CsvTest, SkipsBlankLines) {
    std::istringstream in("x,label\n\n1,yes\n\n2,no\n\n");
    auto data = ReadCsv(in);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data->num_rows(), 2u);
}

TEST(CsvTest, CustomDelimiter) {
    std::istringstream in("x;label\n1;yes\n2;no\n");
    CsvOptions options;
    options.delimiter = ';';
    auto data = ReadCsv(in, options);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data->num_rows(), 2u);
}

TEST(CsvTest, WriteReadRoundTrip) {
    std::istringstream in(
        "color,weight,label\nred,1.5,yes\ngreen,2.5,no\n");
    auto data = ReadCsv(in);
    ASSERT_TRUE(data.ok());

    std::ostringstream out;
    ASSERT_TRUE(WriteCsv(*data, out).ok());
    std::istringstream back(out.str());
    auto reread = ReadCsv(back);
    ASSERT_TRUE(reread.ok());
    EXPECT_EQ(reread->num_rows(), data->num_rows());
    EXPECT_EQ(reread->num_attributes(), data->num_attributes());
    for (std::size_t r = 0; r < data->num_rows(); ++r) {
        EXPECT_EQ(reread->label(r), data->label(r));
        for (std::size_t a = 0; a < data->num_attributes(); ++a) {
            EXPECT_EQ(reread->CellToString(r, a), data->CellToString(r, a));
        }
    }
}

TEST(CsvTest, LoadMissingFileIsNotFound) {
    const auto data = LoadCsvFile("/nonexistent/path.csv");
    EXPECT_FALSE(data.ok());
    EXPECT_EQ(data.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dfp
