// Certificates for the SMO kernel-row cache and shrinking.
//
// The cache claims *bit-identity*: cached rows hold exactly the values direct
// evaluation produces (KernelEval is deterministic and symmetric in its
// arguments), so the optimization trajectory — every alpha, the bias, the
// iteration count — must match with the cache on, off, or replaced by the
// full Gram matrix. These tests compare with operator== on doubles, no
// tolerance. Shrinking legitimately reorders float updates, so it is held to
// a convergence-quality bar instead.
#include "ml/svm/smo.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "ml/feature_matrix.hpp"
#include "obs/metrics.hpp"

namespace dfp {
namespace {

// Two overlapping Gaussian clouds: enough overlap that SMO does real work
// (bound and non-bound multipliers, many TakeStep error refreshes).
void MakeClouds(std::size_t n_per_class, std::size_t dims, double spread,
                std::uint64_t seed, FeatureMatrix* x, std::vector<int>* y) {
    Rng rng(seed);
    *x = FeatureMatrix(2 * n_per_class, dims);
    y->clear();
    for (std::size_t i = 0; i < 2 * n_per_class; ++i) {
        const bool pos = i < n_per_class;
        const double center = pos ? 1.0 : -1.0;
        for (std::size_t d = 0; d < dims; ++d) {
            x->At(i, d) = center + rng.Uniform(-spread, spread);
        }
        y->push_back(pos ? 1 : -1);
    }
}

SmoConfig RbfBase() {
    SmoConfig config;
    config.c = 1.0;
    config.kernel.type = KernelType::kRbf;
    config.kernel.gamma = 0.5;
    return config;
}

void ExpectBitIdentical(const SmoModel& a, const SmoModel& b,
                        const char* what) {
    ASSERT_EQ(a.alpha.size(), b.alpha.size()) << what;
    for (std::size_t i = 0; i < a.alpha.size(); ++i) {
        ASSERT_EQ(a.alpha[i], b.alpha[i]) << what << " alpha[" << i << "]";
    }
    EXPECT_EQ(a.bias, b.bias) << what;
    EXPECT_EQ(a.iterations, b.iterations) << what;
    EXPECT_EQ(a.converged, b.converged) << what;
}

TEST(SmoCacheTest, CacheOnOffAndGramAreBitIdentical) {
    FeatureMatrix x;
    std::vector<int> y;
    MakeClouds(/*n_per_class=*/120, /*dims=*/6, /*spread=*/1.6, /*seed=*/31,
               &x, &y);

    SmoConfig gram = RbfBase();
    gram.gram_limit = 10'000;  // full Gram matrix

    SmoConfig cached = RbfBase();
    cached.gram_limit = 0;  // force the on-demand path
    cached.cache_bytes = 1 << 20;

    SmoConfig direct = RbfBase();
    direct.gram_limit = 0;
    direct.cache_bytes = 0;  // no cache: every row evaluated in place

    auto m_gram = TrainSmo(x, y, gram);
    auto m_cached = TrainSmo(x, y, cached);
    auto m_direct = TrainSmo(x, y, direct);
    ASSERT_TRUE(m_gram.ok() && m_cached.ok() && m_direct.ok());
    ASSERT_TRUE(m_gram->converged);

    ExpectBitIdentical(*m_cached, *m_gram, "cached vs gram");
    ExpectBitIdentical(*m_direct, *m_gram, "direct vs gram");
}

TEST(SmoCacheTest, TinyCacheEvictsButStaysExact) {
    FeatureMatrix x;
    std::vector<int> y;
    MakeClouds(/*n_per_class=*/80, /*dims=*/4, /*spread=*/1.8, /*seed=*/32,
               &x, &y);

    SmoConfig reference = RbfBase();
    reference.gram_limit = 0;
    reference.cache_bytes = 0;

    SmoConfig tiny = RbfBase();
    tiny.gram_limit = 0;
    tiny.cache_bytes = 1;  // clamps to the 2-row minimum: constant eviction

    auto m_ref = TrainSmo(x, y, reference);
    auto m_tiny = TrainSmo(x, y, tiny);
    ASSERT_TRUE(m_ref.ok() && m_tiny.ok());
    ExpectBitIdentical(*m_tiny, *m_ref, "tiny cache vs direct");

    // A 2-row cache working over 160 examples must have evicted.
    auto& registry = obs::Registry::Get();
    EXPECT_GT(registry.GetCounter("dfp.svm.cache.evictions").value(), 0.0);
    EXPECT_GT(registry.GetCounter("dfp.svm.cache.misses").value(), 0.0);
}

TEST(SmoCacheTest, CacheCountersPublished) {
    FeatureMatrix x;
    std::vector<int> y;
    MakeClouds(/*n_per_class=*/60, /*dims=*/4, /*spread=*/1.5, /*seed=*/33,
               &x, &y);
    auto& registry = obs::Registry::Get();
    const double hits_before =
        registry.GetCounter("dfp.svm.cache.hits").value();

    SmoConfig config = RbfBase();
    config.gram_limit = 0;
    config.cache_bytes = 8 << 20;  // room for every row: all hits after fill
    auto model = TrainSmo(x, y, config);
    ASSERT_TRUE(model.ok());

    EXPECT_GT(registry.GetCounter("dfp.svm.cache.hits").value(), hits_before);
    EXPECT_GT(registry.GetGauge("dfp.svm.cache.rows").value(), 0.0);
}

TEST(SmoCacheTest, ShrinkingConvergesToSameQuality) {
    FeatureMatrix x;
    std::vector<int> y;
    MakeClouds(/*n_per_class=*/150, /*dims=*/6, /*spread=*/1.7, /*seed=*/34,
               &x, &y);

    SmoConfig plain = RbfBase();
    plain.gram_limit = 0;
    SmoConfig shrunk = plain;
    shrunk.shrinking = true;

    auto m_plain = TrainSmo(x, y, plain);
    auto m_shrunk = TrainSmo(x, y, shrunk);
    ASSERT_TRUE(m_plain.ok() && m_shrunk.ok());
    ASSERT_TRUE(m_plain->converged);
    ASSERT_TRUE(m_shrunk->converged);

    // Shrinking reorders float updates, so no bit-identity claim — but both
    // solves must end KKT-clean to the same tolerance...
    EXPECT_LT(MaxKktViolation(*m_shrunk, x, y, shrunk.c),
              10 * shrunk.tol + 0.05);
    // ...and agree on nearly every training-set prediction.
    std::size_t disagree = 0;
    for (std::size_t i = 0; i < x.rows(); ++i) {
        const bool a = m_plain->Decision(x.Row(i)) > 0.0;
        const bool b = m_shrunk->Decision(x.Row(i)) > 0.0;
        if (a != b) ++disagree;
    }
    EXPECT_LE(disagree, x.rows() / 100 + 1);
}

TEST(SmoCacheTest, ShrinkingOffIsDefaultAndBitIdenticalToCacheOff) {
    // With shrinking off (the default), the active-set plumbing must be
    // invisible: the linear-kernel path (primal weights, no row reads) gives
    // a quick end-to-end check that defaults didn't drift.
    FeatureMatrix x;
    std::vector<int> y;
    MakeClouds(/*n_per_class=*/50, /*dims=*/3, /*spread=*/1.2, /*seed=*/35,
               &x, &y);
    SmoConfig a;  // all defaults: linear kernel
    SmoConfig b;
    b.cache_bytes = 0;
    auto ma = TrainSmo(x, y, a);
    auto mb = TrainSmo(x, y, b);
    ASSERT_TRUE(ma.ok() && mb.ok());
    ExpectBitIdentical(*ma, *mb, "default vs cache-off (linear)");
}

}  // namespace
}  // namespace dfp
