// Golden-equivalence certificates for the allocation-aware mining core.
//
// The arena FP-tree, the hybrid tidset/diffset Eclat and the scratch-backed
// closed miner all claim "same patterns, same supports, same order" as the
// pre-arena implementations. This suite pins that claim against *reference
// miners written independently of the production data structures*:
//
//  * RefFpGrowth — the FP-growth enumeration over plain weighted transaction
//    lists (a conditional FP-tree is just a compression of its conditional
//    pattern base; emission order depends only on the per-level header order:
//    support desc, item asc, mined in reverse).
//  * RefEclat    — the plain copy-per-candidate tidset DFS (the pre-diffset
//    implementation).
//  * RefClosed   — the LCM closure-extension DFS with copy-per-extension
//    covers (the pre-scratch implementation).
//
// Each runs across 20 seeded synthetic databases spanning sparse and dense
// regimes, and the production miners must match item-for-item, support-for-
// support, in emission order.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/bitvector.hpp"
#include "common/rng.hpp"
#include "fpm/closed_miner.hpp"
#include "fpm/eclat.hpp"
#include "fpm/fpgrowth.hpp"

namespace dfp {
namespace {

struct RefPattern {
    Itemset items;
    std::size_t support = 0;
};

// ---------------------------------------------------------------------------
// Reference FP-growth over weighted transaction lists.

struct WeightedTxn {
    std::vector<ItemId> items;  // ordered by current-level rank
    std::size_t count = 1;
};

void RefGrow(const std::vector<WeightedTxn>& txns, std::size_t min_sup,
             std::size_t universe, Itemset& suffix,
             std::vector<RefPattern>* out) {
    std::vector<std::size_t> support(universe, 0);
    for (const WeightedTxn& t : txns) {
        for (ItemId i : t.items) support[i] += t.count;
    }
    // Header order: support desc, item asc.
    std::vector<ItemId> freq;
    for (ItemId i = 0; i < universe; ++i) {
        if (support[i] >= min_sup) freq.push_back(i);
    }
    std::stable_sort(freq.begin(), freq.end(), [&](ItemId a, ItemId b) {
        if (support[a] != support[b]) return support[a] > support[b];
        return a < b;
    });
    std::vector<std::size_t> rank(universe, universe);
    for (std::size_t r = 0; r < freq.size(); ++r) rank[freq[r]] = r;

    // Mine least-frequent first (reverse header order).
    for (std::size_t idx = freq.size(); idx-- > 0;) {
        const ItemId item = freq[idx];
        suffix.push_back(item);
        RefPattern p;
        p.items = suffix;
        std::sort(p.items.begin(), p.items.end());
        p.support = support[item];
        out->push_back(std::move(p));

        // Conditional base: the rank-ordered frequent prefix of every
        // transaction containing `item` (exactly the tree's prefix paths).
        std::vector<WeightedTxn> base;
        for (const WeightedTxn& t : txns) {
            std::vector<ItemId> kept;
            for (ItemId i : t.items) {
                if (rank[i] < idx) kept.push_back(i);
            }
            const bool has_item =
                std::find(t.items.begin(), t.items.end(), item) != t.items.end();
            if (has_item && !kept.empty()) {
                std::sort(kept.begin(), kept.end(), [&](ItemId a, ItemId b) {
                    return rank[a] < rank[b];
                });
                base.push_back(WeightedTxn{std::move(kept), t.count});
            }
        }
        if (!base.empty()) RefGrow(base, min_sup, universe, suffix, out);
        suffix.pop_back();
    }
}

std::vector<RefPattern> RefFpGrowth(const TransactionDatabase& db,
                                    std::size_t min_sup) {
    std::vector<WeightedTxn> txns;
    for (std::size_t t = 0; t < db.num_transactions(); ++t) {
        std::vector<ItemId> items;
        for (ItemId i = 0; i < db.num_items(); ++i) {
            if (db.ItemCover(i).Test(t)) items.push_back(i);
        }
        txns.push_back(WeightedTxn{std::move(items), 1});
    }
    std::vector<RefPattern> out;
    Itemset suffix;
    RefGrow(txns, min_sup, db.num_items(), suffix, &out);
    return out;
}

// ---------------------------------------------------------------------------
// Reference Eclat: copy-per-candidate tidset DFS.

void RefEclatDfs(const TransactionDatabase& db, std::size_t min_sup,
                 Itemset& prefix, const BitVector& cover,
                 const std::vector<ItemId>& candidates,
                 std::vector<RefPattern>* out) {
    for (std::size_t k = 0; k < candidates.size(); ++k) {
        const ItemId i = candidates[k];
        BitVector extended = cover;
        extended &= db.ItemCover(i);
        const std::size_t support = extended.Count();
        if (support < min_sup) continue;
        prefix.push_back(i);
        out->push_back(RefPattern{prefix, support});
        const std::vector<ItemId> rest(candidates.begin() + k + 1,
                                       candidates.end());
        if (!rest.empty()) {
            RefEclatDfs(db, min_sup, prefix, extended, rest, out);
        }
        prefix.pop_back();
    }
}

std::vector<RefPattern> RefEclat(const TransactionDatabase& db,
                                 std::size_t min_sup) {
    std::vector<ItemId> frequent;
    for (ItemId i = 0; i < db.num_items(); ++i) {
        if (db.ItemSupport(i) >= min_sup) frequent.push_back(i);
    }
    BitVector all(db.num_transactions());
    all.Fill();
    std::vector<RefPattern> out;
    Itemset prefix;
    RefEclatDfs(db, min_sup, prefix, all, frequent, &out);
    return out;
}

// ---------------------------------------------------------------------------
// Reference closed miner: LCM closure extension with copied covers.

void RefClosedDfs(const TransactionDatabase& db, std::size_t min_sup,
                  const std::vector<ItemId>& frequent, const Itemset& closed,
                  const BitVector& tidset, ItemId core,
                  std::vector<RefPattern>* out) {
    for (ItemId i : frequent) {
        if (i <= core) continue;
        if (std::binary_search(closed.begin(), closed.end(), i)) continue;
        BitVector extended = tidset;
        extended &= db.ItemCover(i);
        const std::size_t support = extended.Count();
        if (support < min_sup) continue;
        Itemset closure;
        bool prefix_ok = true;
        for (ItemId j : frequent) {
            if (std::binary_search(closed.begin(), closed.end(), j)) {
                closure.push_back(j);
                continue;
            }
            if (extended.IsSubsetOf(db.ItemCover(j))) {
                if (j < i) {
                    prefix_ok = false;
                    break;
                }
                closure.push_back(j);
            }
        }
        if (!prefix_ok) continue;
        std::sort(closure.begin(), closure.end());
        out->push_back(RefPattern{closure, support});
        RefClosedDfs(db, min_sup, frequent, closure, extended, i, out);
    }
}

std::vector<RefPattern> RefClosed(const TransactionDatabase& db,
                                  std::size_t min_sup) {
    const std::size_t n = db.num_transactions();
    std::vector<ItemId> frequent;
    for (ItemId i = 0; i < db.num_items(); ++i) {
        if (db.ItemSupport(i) >= min_sup) frequent.push_back(i);
    }
    Itemset root_closed;
    for (ItemId i : frequent) {
        if (db.ItemSupport(i) == n) root_closed.push_back(i);
    }
    std::vector<RefPattern> out;
    if (!root_closed.empty() && n >= min_sup) {
        out.push_back(RefPattern{root_closed, n});
    }
    for (ItemId i : frequent) {
        if (std::binary_search(root_closed.begin(), root_closed.end(), i)) {
            continue;
        }
        BitVector tidset = db.ItemCover(i);
        const std::size_t support = tidset.Count();
        if (support < min_sup) continue;
        Itemset closure;
        bool prefix_ok = true;
        for (ItemId j : frequent) {
            if (std::binary_search(root_closed.begin(), root_closed.end(), j)) {
                closure.push_back(j);
                continue;
            }
            if (tidset.IsSubsetOf(db.ItemCover(j))) {
                if (j < i) {
                    prefix_ok = false;
                    break;
                }
                closure.push_back(j);
            }
        }
        if (prefix_ok) {
            std::sort(closure.begin(), closure.end());
            out.push_back(RefPattern{closure, support});
            RefClosedDfs(db, min_sup, frequent, closure, tidset, i, &out);
        }
    }
    return out;
}

// ---------------------------------------------------------------------------

TransactionDatabase RandomDb(std::uint64_t seed, std::size_t rows,
                             std::size_t items, double density) {
    Rng rng(seed);
    std::vector<std::vector<ItemId>> txns(rows);
    std::vector<ClassLabel> labels(rows);
    for (std::size_t t = 0; t < rows; ++t) {
        for (ItemId i = 0; i < items; ++i) {
            if (rng.Bernoulli(density)) txns[t].push_back(i);
        }
        if (txns[t].empty()) txns[t].push_back(static_cast<ItemId>(t % items));
        labels[t] = static_cast<ClassLabel>(rng.UniformInt(std::uint64_t{2}));
    }
    return TransactionDatabase::FromTransactions(std::move(txns),
                                                 std::move(labels), items, 2);
}

// 20 seeded regimes: sparse wide, dense narrow and mid-density corpora.
struct DbSpec {
    std::uint64_t seed;
    std::size_t rows;
    std::size_t items;
    double density;
    double min_sup_rel;
};

std::vector<DbSpec> GoldenSpecs() {
    std::vector<DbSpec> specs;
    for (std::uint64_t s = 0; s < 7; ++s) {
        specs.push_back({100 + s, 120, 24, 0.12, 0.05});  // sparse
    }
    for (std::uint64_t s = 0; s < 7; ++s) {
        specs.push_back({200 + s, 80, 12, 0.55, 0.20});  // dense
    }
    for (std::uint64_t s = 0; s < 6; ++s) {
        specs.push_back({300 + s, 150, 18, 0.30, 0.10});  // mid
    }
    return specs;
}

void ExpectSameStream(const std::vector<Pattern>& got,
                      const std::vector<RefPattern>& want,
                      const char* miner, std::uint64_t seed) {
    ASSERT_EQ(got.size(), want.size()) << miner << " seed=" << seed;
    for (std::size_t p = 0; p < got.size(); ++p) {
        ASSERT_EQ(got[p].items, want[p].items)
            << miner << " seed=" << seed << " position=" << p;
        ASSERT_EQ(got[p].support, want[p].support)
            << miner << " seed=" << seed << " position=" << p;
    }
}

TEST(GoldenMinerTest, FpGrowthMatchesReferenceEnumeration) {
    FpGrowthMiner miner;
    for (const DbSpec& spec : GoldenSpecs()) {
        const auto db = RandomDb(spec.seed, spec.rows, spec.items, spec.density);
        MinerConfig config;
        config.min_sup_rel = spec.min_sup_rel;
        const auto got = miner.Mine(db, config);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        const auto want = RefFpGrowth(db, ResolveMinSup(config, spec.rows));
        ExpectSameStream(*got, want, "fpgrowth", spec.seed);
    }
}

TEST(GoldenMinerTest, EclatMatchesReferenceTidsetDfs) {
    EclatMiner miner;
    for (const DbSpec& spec : GoldenSpecs()) {
        const auto db = RandomDb(spec.seed, spec.rows, spec.items, spec.density);
        MinerConfig config;
        config.min_sup_rel = spec.min_sup_rel;
        const auto got = miner.Mine(db, config);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        const auto want = RefEclat(db, ResolveMinSup(config, spec.rows));
        ExpectSameStream(*got, want, "eclat", spec.seed);
    }
}

TEST(GoldenMinerTest, ClosedMatchesReferenceLcm) {
    ClosedMiner miner;
    for (const DbSpec& spec : GoldenSpecs()) {
        const auto db = RandomDb(spec.seed, spec.rows, spec.items, spec.density);
        MinerConfig config;
        config.min_sup_rel = spec.min_sup_rel;
        const auto got = miner.Mine(db, config);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        const auto want = RefClosed(db, ResolveMinSup(config, spec.rows));
        ExpectSameStream(*got, want, "closed", spec.seed);
    }
}

// The three production miners agree with each other on the *set* of frequent
// patterns (orders differ by design: FP-growth is suffix-major).
TEST(GoldenMinerTest, MinersAgreeOnPatternSets) {
    FpGrowthMiner fp;
    EclatMiner ec;
    for (const DbSpec& spec : GoldenSpecs()) {
        const auto db = RandomDb(spec.seed, spec.rows, spec.items, spec.density);
        MinerConfig config;
        config.min_sup_rel = spec.min_sup_rel;
        auto a = fp.Mine(db, config);
        auto b = ec.Mine(db, config);
        ASSERT_TRUE(a.ok() && b.ok());
        std::map<Itemset, std::size_t> ma;
        for (const Pattern& p : *a) ma[p.items] = p.support;
        std::map<Itemset, std::size_t> mb;
        for (const Pattern& p : *b) mb[p.items] = p.support;
        ASSERT_EQ(ma, mb) << "seed=" << spec.seed;
    }
}

}  // namespace
}  // namespace dfp
