// Arena / FlatVec unit tests: alignment, stack-like rewind reuse, chunk
// growth, reservation accounting and the published dfp.arena.* gauges.
#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace dfp {
namespace {

TEST(ArenaTest, AllocationsAreAligned) {
    Arena arena;
    for (const std::size_t align : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}, Arena::kMaxAlign}) {
        for (int i = 0; i < 16; ++i) {
            void* p = arena.Allocate(3, align);
            ASSERT_NE(p, nullptr);
            EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
                << "align=" << align;
        }
    }
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
    Arena arena(/*chunk_bytes=*/256);  // force several chunk spills
    std::vector<unsigned char*> blocks;
    for (int i = 0; i < 100; ++i) {
        auto* p = static_cast<unsigned char*>(arena.Allocate(40, 8));
        std::memset(p, i, 40);
        blocks.push_back(p);
    }
    for (int i = 0; i < 100; ++i) {
        for (int b = 0; b < 40; ++b) {
            ASSERT_EQ(blocks[static_cast<std::size_t>(i)][b], i)
                << "block " << i << " was overwritten";
        }
    }
}

TEST(ArenaTest, RewindReusesMemory) {
    Arena arena;
    (void)arena.Allocate(64);
    const Arena::Mark mark = arena.Position();
    void* first = arena.Allocate(128);
    const std::size_t used_after = arena.bytes_used();
    arena.Rewind(mark);
    void* second = arena.Allocate(128);
    EXPECT_EQ(first, second) << "rewound bytes must be handed out again";
    EXPECT_EQ(arena.bytes_used(), used_after);
}

TEST(ArenaTest, ResetKeepsReservation) {
    Arena arena;
    (void)arena.Allocate(100'000);  // spills past the default chunk
    const std::size_t reserved = arena.bytes_reserved();
    EXPECT_GE(reserved, 100'000u);
    arena.Reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    EXPECT_EQ(arena.bytes_reserved(), reserved) << "Reset must not free";
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedRoom) {
    Arena arena(/*chunk_bytes=*/128);
    auto* big = static_cast<unsigned char*>(arena.Allocate(10'000));
    std::memset(big, 0xAB, 10'000);  // must be fully addressable
    EXPECT_GE(arena.bytes_reserved(), 10'000u);
}

TEST(ArenaTest, ReleaseReturnsProcessReservation) {
    const std::size_t before = Arena::TotalReservedBytes();
    {
        Arena arena;
        (void)arena.Allocate(50'000);
        EXPECT_GT(Arena::TotalReservedBytes(), before);
        EXPECT_GE(Arena::PeakReservedBytes(), Arena::TotalReservedBytes());
        arena.Release();
        EXPECT_EQ(arena.bytes_reserved(), 0u);
    }
    EXPECT_EQ(Arena::TotalReservedBytes(), before)
        << "destruction/Release must return the reservation";
}

TEST(ArenaTest, MoveTransfersOwnership) {
    Arena a;
    void* p = a.Allocate(64);
    std::memset(p, 7, 64);
    const std::size_t reserved = a.bytes_reserved();
    Arena b = std::move(a);
    EXPECT_EQ(b.bytes_reserved(), reserved);
    EXPECT_EQ(static_cast<unsigned char*>(p)[63], 7);
}

TEST(FlatVecTest, PushBackPreservesContentsAcrossGrowth) {
    Arena arena;
    FlatVec<std::uint32_t> v;
    v.Attach(&arena);
    for (std::uint32_t i = 0; i < 1000; ++i) v.push_back(i * 3);
    ASSERT_EQ(v.size(), 1000u);
    for (std::uint32_t i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i * 3);
}

TEST(FlatVecTest, ResizeFillsAndClearKeepsCapacity) {
    Arena arena;
    FlatVec<int> v;
    v.Attach(&arena);
    v.resize(10, 42);
    for (int x : v) EXPECT_EQ(x, 42);
    const int* data = v.data();
    v.clear();
    EXPECT_TRUE(v.empty());
    v.resize(10, 7);
    EXPECT_EQ(v.data(), data) << "clear+refill must not reallocate";
}

TEST(FlatVecTest, CopyIsAView) {
    Arena arena;
    FlatVec<int> v;
    v.Attach(&arena);
    v.push_back(1);
    FlatVec<int> view = v;
    view[0] = 99;
    EXPECT_EQ(v[0], 99) << "copies alias the same arena storage";
}

TEST(ArenaMetricsTest, PublishSetsGauges) {
    Arena arena;
    (void)arena.Allocate(1024);
    PublishArenaMetrics();
    auto& registry = obs::Registry::Get();
    EXPECT_GT(registry.GetGauge("dfp.arena.bytes_reserved").value(), 0.0);
    EXPECT_GT(registry.GetGauge("dfp.arena.peak_bytes_reserved").value(), 0.0);
    EXPECT_GT(registry.GetGauge("dfp.arena.chunks_allocated").value(), 0.0);
}

}  // namespace
}  // namespace dfp
