// Serving equivalence certificates (ISSUE 5 acceptance):
//
//  * PatternMatchIndex::EncodeInto is bit-identical to FeatureSpace::Encode
//    on 20 seeded synthetic databases.
//  * ScoringEngine predictions are bit-identical to LoadedModel::Predict at
//    batch sizes {1, 7, 64} and thread counts {1, 8} — batching and
//    parallelism are pure scheduling, never numerics.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "core/model_io.hpp"
#include "core/pipeline.hpp"
#include "data/encoder.hpp"
#include "data/synthetic.hpp"
#include "ml/nb/naive_bayes.hpp"
#include "ml/svm/svm.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "serve/scoring_index.hpp"

namespace dfp::serve {
namespace {

TransactionDatabase Db(std::uint64_t seed, std::size_t rows = 200) {
    SyntheticSpec spec;
    spec.rows = rows;
    spec.classes = 2;
    spec.attributes = 8;
    spec.arity = 3;
    spec.seed = seed;
    const Dataset data = GenerateSynthetic(spec);
    const auto encoder = ItemEncoder::FromSchema(data);
    return TransactionDatabase::FromDataset(data, *encoder);
}

template <typename LearnerT>
LoadedModel TrainModel(const TransactionDatabase& db) {
    PipelineConfig config;
    config.miner.min_sup_rel = 0.10;
    config.miner.max_pattern_len = 4;
    config.mmrfs.coverage_delta = 2;
    PatternClassifierPipeline pipeline(config);
    EXPECT_TRUE(pipeline.Train(db, std::make_unique<LearnerT>()).ok());
    std::stringstream stream;
    EXPECT_TRUE(SavePipelineModel(pipeline, stream).ok());
    auto loaded = LoadPipelineModel(stream);
    EXPECT_TRUE(loaded.ok()) << loaded.status();
    return std::move(*loaded);
}

TEST(PatternMatchIndexTest, EncodesBitIdenticallyOn20SeededDbs) {
    for (std::uint64_t seed = 100; seed < 120; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const auto db = Db(seed, 120);
        LoadedModel model = TrainModel<NaiveBayesClassifier>(db);
        const FeatureSpace& space = model.feature_space();
        const PatternMatchIndex index = PatternMatchIndex::Build(space);
        ASSERT_EQ(index.dim(), space.dim());

        PatternMatchIndex::Scratch scratch;
        std::vector<double> reference(space.dim());
        for (std::size_t t = 0; t < db.num_transactions(); ++t) {
            space.Encode(db.transaction(t), reference);
            index.EncodeInto(db.transaction(t), &scratch);
            ASSERT_EQ(scratch.encoded, reference) << "row " << t;
        }
    }
}

TEST(PatternMatchIndexTest, HandlesEdgeTransactions) {
    const auto db = Db(7);
    LoadedModel model = TrainModel<NaiveBayesClassifier>(db);
    const FeatureSpace& space = model.feature_space();
    const PatternMatchIndex index = PatternMatchIndex::Build(space);
    PatternMatchIndex::Scratch scratch;
    std::vector<double> reference(space.dim());

    const std::vector<std::vector<ItemId>> edges = {
        {},                                           // empty transaction
        {0},                                          // single item
        {static_cast<ItemId>(space.num_items())},     // item beyond universe
        {0, static_cast<ItemId>(space.num_items() + 7)},  // mixed in/out
    };
    for (const auto& txn : edges) {
        space.Encode(txn, reference);
        index.EncodeInto(txn, &scratch);
        EXPECT_EQ(scratch.encoded, reference);
    }
    // Scratch reuse across many calls stays clean (generation stamping).
    for (std::size_t t = 0; t < db.num_transactions(); ++t) {
        space.Encode(db.transaction(t), reference);
        index.EncodeInto(db.transaction(t), &scratch);
        ASSERT_EQ(scratch.encoded, reference);
    }
}

TEST(ScoringEngineEquivalenceTest, MatchesLoadedModelAcrossBatchAndThreads) {
    // 20 seeded DBs × batch sizes {1,7,64} × threads {1,8}: every engine
    // prediction equals LoadedModel::Predict on the same transaction.
    for (std::uint64_t seed = 200; seed < 220; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const auto db = Db(seed, 100);
        ModelRegistry registry;
        {
            LoadedModel model = TrainModel<NaiveBayesClassifier>(db);
            registry.Install(std::move(model));
        }
        const ServablePtr snapshot = registry.Snapshot();
        ASSERT_NE(snapshot, nullptr);

        std::vector<ClassLabel> expected(db.num_transactions());
        for (std::size_t t = 0; t < db.num_transactions(); ++t) {
            expected[t] = snapshot->model.Predict(db.transaction(t));
        }

        for (std::size_t max_batch : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
            for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
                SCOPED_TRACE("max_batch " + std::to_string(max_batch) +
                             " threads " + std::to_string(threads));
                EngineConfig config;
                config.max_batch = max_batch;
                config.num_threads = threads;
                config.max_delay_ms = 0.0;
                ScoringEngine engine(registry, config);
                std::vector<std::future<Result<Prediction>>> futures;
                futures.reserve(db.num_transactions());
                for (std::size_t t = 0; t < db.num_transactions(); ++t) {
                    futures.push_back(engine.Submit(db.transaction(t)));
                }
                for (std::size_t t = 0; t < db.num_transactions(); ++t) {
                    auto prediction = futures[t].get();
                    ASSERT_TRUE(prediction.ok()) << prediction.status();
                    ASSERT_EQ(prediction->label, expected[t]) << "row " << t;
                    ASSERT_EQ(prediction->model_version, snapshot->version);
                }
            }
        }
    }
}

TEST(ScoringEngineEquivalenceTest, PredictBatchMatchesAndCanonicalizes) {
    const auto db = Db(42);
    ModelRegistry registry;
    registry.Install(TrainModel<SvmClassifier>(db));
    const ServablePtr snapshot = registry.Snapshot();

    EngineConfig config;
    config.num_threads = 8;
    ScoringEngine engine(registry, config);

    std::vector<std::vector<ItemId>> batch;
    std::vector<ClassLabel> expected;
    for (std::size_t t = 0; t < db.num_transactions(); ++t) {
        // Feed unsorted, duplicated items — the engine canonicalizes.
        std::vector<ItemId> txn = db.transaction(t);
        std::vector<ItemId> scrambled(txn.rbegin(), txn.rend());
        if (!txn.empty()) scrambled.push_back(txn.front());
        batch.push_back(std::move(scrambled));
        expected.push_back(snapshot->model.Predict(txn));
    }
    auto predictions = engine.PredictBatch(batch);
    ASSERT_TRUE(predictions.ok()) << predictions.status();
    ASSERT_EQ(predictions->size(), expected.size());
    for (std::size_t t = 0; t < expected.size(); ++t) {
        EXPECT_EQ((*predictions)[t].label, expected[t]) << "row " << t;
    }
}

}  // namespace
}  // namespace dfp::serve
