// Live serving telemetry (DESIGN.md §14): cross-thread request traces carry
// monotone stage timestamps through the engine; per-stage windowed latency
// histograms are registered and populated; the protocol {"op":"metrics"} verb
// and the HTTP side-port GET /metrics return byte-identical Prometheus
// payloads; trace_dump round-trips as valid Chrome trace-event JSON; sheds
// are traced with a kUnavailable outcome.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/model_io.hpp"
#include "core/pipeline.hpp"
#include "data/encoder.hpp"
#include "data/synthetic.hpp"
#include "ml/nb/naive_bayes.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/reqtrace.hpp"
#include "serve/client.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"

namespace dfp::serve {
namespace {

TransactionDatabase Db(std::uint64_t seed) {
    SyntheticSpec spec;
    spec.rows = 120;
    spec.classes = 2;
    spec.attributes = 8;
    spec.arity = 3;
    spec.seed = seed;
    const Dataset data = GenerateSynthetic(spec);
    const auto encoder = ItemEncoder::FromSchema(data);
    return TransactionDatabase::FromDataset(data, *encoder);
}

LoadedModel TrainModel(const TransactionDatabase& db) {
    PipelineConfig config;
    config.miner.min_sup_rel = 0.10;
    config.miner.max_pattern_len = 4;
    config.mmrfs.coverage_delta = 2;
    PatternClassifierPipeline pipeline(config);
    EXPECT_TRUE(
        pipeline.Train(db, std::make_unique<NaiveBayesClassifier>()).ok());
    std::stringstream stream;
    EXPECT_TRUE(SavePipelineModel(pipeline, stream).ok());
    auto loaded = LoadPipelineModel(stream);
    EXPECT_TRUE(loaded.ok()) << loaded.status();
    return std::move(*loaded);
}

EngineConfig ManualConfig() {
    EngineConfig config;
    config.manual_pump = true;
    config.max_batch = 4;
    config.queue_capacity = 8;
    return config;
}

class TelemetryTest : public ::testing::Test {
  protected:
    void SetUp() override {
        obs::Registry::Get().ResetValues();
        db_ = std::make_unique<TransactionDatabase>(Db(91));
        registry_.Install(TrainModel(*db_));
    }

    std::unique_ptr<TransactionDatabase> db_;
    ModelRegistry registry_;
};

TEST_F(TelemetryTest, TraceStagesAreMonotoneAcrossThreadHops) {
    ScoringEngine engine(registry_, ManualConfig());
    obs::RequestTrace trace;
    auto future = engine.Submit(db_->transaction(0), /*deadline_ms=*/-1.0,
                                /*cancel=*/nullptr, &trace);
    EXPECT_EQ(engine.PumpOnce(), 1u);
    ASSERT_TRUE(future.get().ok());
    trace.serialize_start_us = obs::NowMicros();
    trace.serialize_end_us = obs::NowMicros();
    engine.CommitTrace(trace);

    EXPECT_GT(trace.id, 0u);
    EXPECT_GT(trace.submit_us, 0.0);
    EXPECT_GE(trace.dequeue_us, trace.submit_us);
    EXPECT_GE(trace.score_start_us, trace.dequeue_us);
    EXPECT_GE(trace.score_end_us, trace.score_start_us);
    EXPECT_GE(trace.serialize_end_us, trace.serialize_start_us);
    EXPECT_EQ(trace.batch_size, 1u);
    EXPECT_EQ(trace.outcome, 0u);  // kOk
    EXPECT_NE(trace.submit_tid, 0u);
    EXPECT_NE(trace.score_tid, 0u);

    // The committed trace is in the ring.
    const auto dumped = engine.trace_ring().Dump();
    ASSERT_EQ(dumped.size(), 1u);
    EXPECT_EQ(dumped.front().id, trace.id);
    engine.Stop();
}

TEST_F(TelemetryTest, InternalTracesCommitThemselves) {
    ScoringEngine engine(registry_, ManualConfig());
    auto f1 = engine.Submit(db_->transaction(0));
    auto f2 = engine.Submit(db_->transaction(1));
    engine.PumpOnce();
    EXPECT_TRUE(f1.get().ok());
    EXPECT_TRUE(f2.get().ok());
    const auto dumped = engine.trace_ring().Dump();
    ASSERT_EQ(dumped.size(), 2u);
    for (const auto& trace : dumped) {
        EXPECT_EQ(trace.batch_size, 2u);
        EXPECT_EQ(trace.outcome, 0u);
    }
    engine.Stop();
}

TEST_F(TelemetryTest, ShedRequestsAreTracedWithUnavailableOutcome) {
    ScoringEngine engine(registry_, ManualConfig());  // capacity 8
    std::vector<std::future<Result<Prediction>>> admitted;
    for (std::size_t t = 0; t < 8; ++t) {
        admitted.push_back(engine.Submit(db_->transaction(t)));
    }
    auto shed = engine.Submit(db_->transaction(8));
    EXPECT_EQ(shed.get().status().code(), StatusCode::kUnavailable);
    const auto dumped = engine.trace_ring().Dump();
    ASSERT_EQ(dumped.size(), 1u);  // only the shed one is committed so far
    EXPECT_EQ(dumped.front().outcome,
              static_cast<std::uint16_t>(StatusCode::kUnavailable));
    while (engine.PumpOnce() > 0) {
    }
    for (auto& f : admitted) EXPECT_TRUE(f.get().ok());
    engine.Stop();
}

TEST_F(TelemetryTest, StageLatencyWindowsArePopulated) {
    ScoringEngine engine(registry_, ManualConfig());
    std::vector<std::future<Result<Prediction>>> futures;
    for (std::size_t t = 0; t < 6; ++t) {
        futures.push_back(engine.Submit(db_->transaction(t)));
    }
    while (engine.PumpOnce() > 0) {
    }
    for (auto& f : futures) EXPECT_TRUE(f.get().ok());

    const auto snap = obs::Registry::Get().Snapshot();
    for (const char* name :
         {"dfp.serve.latency.total", "dfp.serve.latency.queue",
          "dfp.serve.latency.batch_wait", "dfp.serve.latency.score"}) {
        const auto it = snap.windows.find(name);
        ASSERT_NE(it, snap.windows.end()) << name;
        EXPECT_EQ(it->second.count, 6u) << name;
    }
    // The fixed-bucket total histogram observes the same six requests.
    const auto hist = snap.histograms.find("dfp.serve.latency_ms");
    ASSERT_NE(hist, snap.histograms.end());
    EXPECT_EQ(hist->second.count, 6u);
    engine.Stop();
}

TEST_F(TelemetryTest, MetricsOpAndHttpPortServeIdenticalPayloads) {
    EngineConfig engine_config;  // real batcher: the server path needs one
    engine_config.max_delay_ms = 0.0;
    ScoringEngine engine(registry_, engine_config);
    ServerConfig server_config;
    server_config.port = 0;
    server_config.metrics_port = 0;
    PredictionServer server(registry_, engine, server_config);
    ASSERT_TRUE(server.Start().ok());
    ASSERT_NE(server.metrics_port(), 0);

    auto client = ServeClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status();
    ASSERT_TRUE(client->Predict(db_->transaction(0)).ok());

    // Freeze the registry between the two reads: no serve traffic in
    // between, and both reads happen back to back. Byte-identical is the
    // contract (same pure renderer over the same snapshot source).
    auto via_op = client->Metrics();
    ASSERT_TRUE(via_op.ok()) << via_op.status();

    auto http = TcpConnect("127.0.0.1", server.metrics_port());
    ASSERT_TRUE(http.ok());
    ASSERT_TRUE(http->SendAll("GET /metrics HTTP/1.1\r\n\r\n").ok());
    std::string response;
    char chunk[65536];
    for (;;) {
        auto n = http->Recv(chunk, sizeof(chunk));
        if (!n.ok() || *n == 0) break;
        response.append(chunk, *n);
    }
    const std::size_t body_at = response.find("\r\n\r\n");
    ASSERT_NE(body_at, std::string::npos);
    const std::string body = response.substr(body_at + 4);
    EXPECT_EQ(body, *via_op);
    EXPECT_NE(body.find("dfp_serve_requests"), std::string::npos);

    server.Stop();
    engine.Stop();
}

TEST_F(TelemetryTest, TraceDumpOpReturnsChromeTraceJson) {
    EngineConfig engine_config;
    engine_config.max_delay_ms = 0.0;
    ScoringEngine engine(registry_, engine_config);
    ServerConfig server_config;
    server_config.port = 0;
    PredictionServer server(registry_, engine, server_config);
    ASSERT_TRUE(server.Start().ok());

    auto client = ServeClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(client->Predict(db_->transaction(i)).ok());
    }
    auto dump = client->TraceDump();
    ASSERT_TRUE(dump.ok()) << dump.status();
    const obs::JsonValue* events = dump->Find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    // 3 requests x 4 stages (predict goes through the dispatcher, so
    // serialize is stamped too).
    EXPECT_EQ(events->array().size(), 12u);

    server.Stop();
    engine.Stop();
}

TEST_F(TelemetryTest, SubMillisecondBucketsInFixedLatencyHistogram) {
    ScoringEngine engine(registry_, ManualConfig());
    auto future = engine.Submit(db_->transaction(0));
    engine.PumpOnce();
    ASSERT_TRUE(future.get().ok());
    const auto snap = obs::Registry::Get().Snapshot();
    const auto it = snap.histograms.find("dfp.serve.latency_ms");
    ASSERT_NE(it, snap.histograms.end());
    ASSERT_FALSE(it->second.bounds.empty());
    // Explicit sub-millisecond resolution: the finest bound is 5 µs.
    EXPECT_DOUBLE_EQ(it->second.bounds.front(), 0.005);
    engine.Stop();
}

}  // namespace
}  // namespace dfp::serve
