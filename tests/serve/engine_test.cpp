// ScoringEngine unit tests: admission control (bounded queue + shedding),
// deadline/cancel handling via the budget primitives, graceful drain, and the
// dfp.serve.* metrics contract. Uses the manual_pump seam so batching is
// fully deterministic — no timing assumptions.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/model_io.hpp"
#include "core/pipeline.hpp"
#include "data/encoder.hpp"
#include "data/synthetic.hpp"
#include "ml/nb/naive_bayes.hpp"
#include "obs/metrics.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"

namespace dfp::serve {
namespace {

TransactionDatabase Db(std::uint64_t seed) {
    SyntheticSpec spec;
    spec.rows = 120;
    spec.classes = 2;
    spec.attributes = 8;
    spec.arity = 3;
    spec.seed = seed;
    const Dataset data = GenerateSynthetic(spec);
    const auto encoder = ItemEncoder::FromSchema(data);
    return TransactionDatabase::FromDataset(data, *encoder);
}

LoadedModel TrainModel(const TransactionDatabase& db) {
    PipelineConfig config;
    config.miner.min_sup_rel = 0.10;
    config.miner.max_pattern_len = 4;
    config.mmrfs.coverage_delta = 2;
    PatternClassifierPipeline pipeline(config);
    EXPECT_TRUE(
        pipeline.Train(db, std::make_unique<NaiveBayesClassifier>()).ok());
    std::stringstream stream;
    EXPECT_TRUE(SavePipelineModel(pipeline, stream).ok());
    auto loaded = LoadPipelineModel(stream);
    EXPECT_TRUE(loaded.ok()) << loaded.status();
    return std::move(*loaded);
}

EngineConfig ManualConfig() {
    EngineConfig config;
    config.manual_pump = true;
    config.max_batch = 4;
    config.queue_capacity = 8;
    return config;
}

class ScoringEngineTest : public ::testing::Test {
  protected:
    void SetUp() override {
        obs::Registry::Get().ResetValues();
        db_ = std::make_unique<TransactionDatabase>(Db(77));
        registry_.Install(TrainModel(*db_));
    }

    double Counter(const std::string& name) {
        return static_cast<double>(obs::Registry::Get().GetCounter(name).value());
    }

    std::unique_ptr<TransactionDatabase> db_;
    ModelRegistry registry_;
};

TEST_F(ScoringEngineTest, MicroBatchesRespectMaxBatch) {
    ScoringEngine engine(registry_, ManualConfig());
    std::vector<std::future<Result<Prediction>>> futures;
    for (std::size_t t = 0; t < 6; ++t) {
        futures.push_back(engine.Submit(db_->transaction(t)));
    }
    EXPECT_EQ(engine.queue_depth(), 6u);
    EXPECT_EQ(engine.PumpOnce(), 4u);  // capped at max_batch
    EXPECT_EQ(engine.queue_depth(), 2u);
    EXPECT_EQ(engine.PumpOnce(), 2u);
    EXPECT_EQ(engine.PumpOnce(), 0u);  // empty queue
    for (auto& f : futures) EXPECT_TRUE(f.get().ok());
    EXPECT_EQ(Counter("dfp.serve.predictions"), 6.0);
    EXPECT_EQ(Counter("dfp.serve.batches"), 2.0);
}

TEST_F(ScoringEngineTest, ShedsWhenQueueFull) {
    ScoringEngine engine(registry_, ManualConfig());  // capacity 8
    std::vector<std::future<Result<Prediction>>> admitted;
    for (std::size_t t = 0; t < 8; ++t) {
        admitted.push_back(engine.Submit(db_->transaction(t)));
    }
    auto shed = engine.Submit(db_->transaction(8));
    auto result = shed.get();  // resolved immediately, without a pump
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
    EXPECT_EQ(Counter("dfp.serve.shed"), 1.0);

    // The admitted 8 are unaffected.
    while (engine.PumpOnce() > 0) {
    }
    for (auto& f : admitted) EXPECT_TRUE(f.get().ok());
}

TEST_F(ScoringEngineTest, ExpiredDeadlineAnsweredWithoutScoring) {
    ScoringEngine engine(registry_, ManualConfig());
    // A deadline that has effectively already passed when the pump runs.
    auto doomed = engine.Submit(db_->transaction(0), /*deadline_ms=*/0.0);
    auto fine = engine.Submit(db_->transaction(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    engine.PumpOnce();

    auto doomed_result = doomed.get();
    ASSERT_FALSE(doomed_result.ok());
    EXPECT_EQ(doomed_result.status().code(), StatusCode::kCancelled);
    EXPECT_TRUE(fine.get().ok());
    EXPECT_EQ(Counter("dfp.serve.deadline_expired"), 1.0);
    EXPECT_EQ(Counter("dfp.serve.predictions"), 1.0);
}

TEST_F(ScoringEngineTest, CancelTokenHonoured) {
    ScoringEngine engine(registry_, ManualConfig());
    CancelToken cancel;
    auto cancelled = engine.Submit(db_->transaction(0), -1.0, &cancel);
    auto fine = engine.Submit(db_->transaction(1));
    cancel.Cancel();
    engine.PumpOnce();

    auto cancelled_result = cancelled.get();
    ASSERT_FALSE(cancelled_result.ok());
    EXPECT_EQ(cancelled_result.status().code(), StatusCode::kCancelled);
    EXPECT_TRUE(fine.get().ok());
    EXPECT_EQ(Counter("dfp.serve.cancelled"), 1.0);
}

TEST_F(ScoringEngineTest, NoModelIsFailedPrecondition) {
    ModelRegistry empty;
    ScoringEngine engine(empty, ManualConfig());
    auto future = engine.Submit({1, 2, 3});
    engine.PumpOnce();
    auto result = future.get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(Counter("dfp.serve.no_model"), 1.0);

    auto batch = engine.PredictBatch({{1, 2}});
    ASSERT_FALSE(batch.ok());
    EXPECT_EQ(batch.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ScoringEngineTest, StopDrainsEverythingAdmitted) {
    auto engine = std::make_unique<ScoringEngine>(registry_, ManualConfig());
    std::vector<std::future<Result<Prediction>>> futures;
    for (std::size_t t = 0; t < 7; ++t) {
        futures.push_back(engine->Submit(db_->transaction(t)));
    }
    engine->Stop();  // drains the queue before returning
    for (auto& f : futures) {
        auto result = f.get();
        ASSERT_TRUE(result.ok()) << result.status();
    }
    // Post-stop submissions shed with kUnavailable.
    auto late = engine->Submit(db_->transaction(0));
    auto late_result = late.get();
    ASSERT_FALSE(late_result.ok());
    EXPECT_EQ(late_result.status().code(), StatusCode::kUnavailable);
    EXPECT_TRUE(engine->stopped());
}

TEST_F(ScoringEngineTest, BackgroundBatcherServesWithDelayWindow) {
    // Non-manual mode: the batcher thread picks requests up on its own.
    EngineConfig config;
    config.max_batch = 16;
    config.max_delay_ms = 1.0;
    ScoringEngine engine(registry_, config);
    std::vector<std::future<Result<Prediction>>> futures;
    for (std::size_t t = 0; t < 32; ++t) {
        futures.push_back(engine.Submit(db_->transaction(t)));
    }
    for (auto& f : futures) EXPECT_TRUE(f.get().ok());
}

TEST_F(ScoringEngineTest, DefaultDeadlineApplied) {
    EngineConfig config = ManualConfig();
    config.default_deadline_ms = 0.0;  // everything expires immediately
    ScoringEngine engine(registry_, config);
    auto future = engine.Submit(db_->transaction(0));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    engine.PumpOnce();
    auto result = future.get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace dfp::serve
