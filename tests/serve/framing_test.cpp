// Wire-framing edge cases for the line-delimited protocol: truncated request
// lines at every byte offset (with and without a trailing newline), oversized
// lines against a bounded read buffer, and interleaved slow writers. The
// server must answer malformed framing with exactly one clean error line (or
// a silent drop on mid-line EOF) and keep serving everyone else.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>

#include "common/socket.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace dfp::serve {
namespace {

/// Listener + engine with no model: framing behavior is independent of
/// scoring, so these tests skip training entirely.
struct FramingHarness {
    explicit FramingHarness(ServerConfig server_config = {})
        : engine(registry, NoBatchDelay()), server(registry, engine,
                                                   FixPort(server_config)) {
        const Status st = server.Start();
        EXPECT_TRUE(st.ok()) << st;
    }
    ~FramingHarness() {
        server.Stop();
        engine.Stop();
    }

    static EngineConfig NoBatchDelay() {
        EngineConfig config;
        config.max_delay_ms = 0.0;
        return config;
    }
    static ServerConfig FixPort(ServerConfig config) {
        config.port = 0;
        return config;
    }

    Result<Socket> Raw() { return TcpConnect("127.0.0.1", server.port()); }

    ModelRegistry registry;
    ScoringEngine engine;
    PredictionServer server;
};

TEST(FramingTest, TruncatedJsonAtEveryOffsetGetsOneErrorLine) {
    FramingHarness harness;
    const std::string request = "{\"op\":\"health\"}";
    // One connection, every proper prefix in turn: each truncation must be
    // answered with a single error line and the connection must stay usable
    // for the next request (a parse error is not a framing error).
    auto socket = harness.Raw();
    ASSERT_TRUE(socket.ok()) << socket.status();
    LineReader reader(*socket);
    std::string line;
    for (std::size_t cut = 1; cut < request.size(); ++cut) {
        ASSERT_TRUE(socket->SendAll(request.substr(0, cut) + "\n").ok());
        auto got = reader.ReadLine(&line);
        ASSERT_TRUE(got.ok()) << "offset " << cut << ": " << got.status();
        ASSERT_TRUE(*got) << "offset " << cut << ": connection dropped";
        EXPECT_EQ(line.rfind("{\"ok\":false,\"error\":", 0), 0u)
            << "offset " << cut << ": " << line;
    }
    // The full line still works on the same battered connection.
    ASSERT_TRUE(socket->SendAll(request + "\n").ok());
    auto got = reader.ReadLine(&line);
    ASSERT_TRUE(got.ok() && *got);
    EXPECT_EQ(line.rfind("{\"ok\":true", 0), 0u) << line;
}

TEST(FramingTest, EofMidLineAtEveryOffsetIsASilentDrop) {
    FramingHarness harness;
    const std::string request = "{\"op\":\"health\"}";
    for (std::size_t cut = 1; cut <= request.size(); ++cut) {
        // No newline ever arrives: the server must not dispatch the partial
        // line, and must not wedge the handler on it either.
        auto socket = harness.Raw();
        ASSERT_TRUE(socket.ok()) << "offset " << cut << ": " << socket.status();
        ASSERT_TRUE(socket->SendAll(request.substr(0, cut)).ok());
        socket->Close();
    }
    // All those half-requests left the server fully healthy.
    auto client = ServeClient::Connect("127.0.0.1", harness.server.port());
    ASSERT_TRUE(client.ok()) << client.status();
    auto health = client->Health();
    ASSERT_TRUE(health.ok()) << health.status();
}

TEST(FramingTest, OversizedLineGetsOneErrorThenClose) {
    ServerConfig server_config;
    server_config.max_line_bytes = 256;
    FramingHarness harness(server_config);

    auto socket = harness.Raw();
    ASSERT_TRUE(socket.ok()) << socket.status();
    // 4x the bound, never a newline: the buffer must stop growing at the
    // bound, not at our patience.
    ASSERT_TRUE(socket->SendAll(std::string(1024, 'x')).ok());
    LineReader reader(*socket);
    std::string line;
    auto got = reader.ReadLine(&line);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_TRUE(*got);
    EXPECT_NE(line.find("\"error\":\"InvalidArgument\""), std::string::npos)
        << line;
    // After the one error line the server hangs up.
    got = reader.ReadLine(&line);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_FALSE(*got) << "connection survived an oversized line: " << line;

    // A well-behaved line under the bound is still served.
    auto client = ServeClient::Connect("127.0.0.1", harness.server.port());
    ASSERT_TRUE(client.ok());
    EXPECT_TRUE(client->Health().ok());
}

TEST(FramingTest, InterleavedSlowClientsDoNotCrossResponses) {
    FramingHarness harness;
    auto slow_a = harness.Raw();
    auto slow_b = harness.Raw();
    ASSERT_TRUE(slow_a.ok() && slow_b.ok());

    // Two clients trickle different requests one byte at a time, strictly
    // alternating, so the server is always holding two partial lines at once.
    const std::string request_a = "{\"op\":\"health\"}\n";
    const std::string request_b = "{\"op\":\"ready\"}\n";
    const std::size_t steps = std::max(request_a.size(), request_b.size());
    for (std::size_t i = 0; i < steps; ++i) {
        if (i < request_a.size()) {
            ASSERT_TRUE(slow_a->SendAll(request_a.substr(i, 1)).ok());
        }
        if (i < request_b.size()) {
            ASSERT_TRUE(slow_b->SendAll(request_b.substr(i, 1)).ok());
        }
    }
    LineReader reader_a(*slow_a);
    LineReader reader_b(*slow_b);
    std::string line_a;
    std::string line_b;
    auto got_a = reader_a.ReadLine(&line_a);
    auto got_b = reader_b.ReadLine(&line_b);
    ASSERT_TRUE(got_a.ok() && *got_a) << got_a.status();
    ASSERT_TRUE(got_b.ok() && *got_b) << got_b.status();
    // Each client gets its own op's response shape — no cross-wiring, no
    // concatenation of the two partial buffers.
    EXPECT_NE(line_a.find("\"serving\":"), std::string::npos) << line_a;
    EXPECT_NE(line_b.find("\"ready\":"), std::string::npos) << line_b;
    EXPECT_EQ(line_b.find("\"serving\":"), std::string::npos) << line_b;
}

}  // namespace
}  // namespace dfp::serve
