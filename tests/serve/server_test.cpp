// PredictionServer + protocol tests over a real loopback socket (port 0 →
// kernel-assigned, so parallel ctest runs never collide):
//  * protocol golden tests — exact response lines for every op and the error
//    shapes for malformed input;
//  * connection admission (max_connections shed with kUnavailable);
//  * drain-on-shutdown — a request in flight when Stop() lands still gets its
//    response before the connection closes;
//  * ServeClient over both transports agreeing with each other.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/model_io.hpp"
#include "core/pipeline.hpp"
#include "data/encoder.hpp"
#include "data/synthetic.hpp"
#include "ml/nb/naive_bayes.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace dfp::serve {
namespace {

TransactionDatabase Db(std::uint64_t seed) {
    SyntheticSpec spec;
    spec.rows = 150;
    spec.classes = 2;
    spec.attributes = 8;
    spec.arity = 3;
    spec.seed = seed;
    const Dataset data = GenerateSynthetic(spec);
    const auto encoder = ItemEncoder::FromSchema(data);
    return TransactionDatabase::FromDataset(data, *encoder);
}

std::string TrainModelFile(const TransactionDatabase& db, const std::string& tag) {
    PipelineConfig config;
    config.miner.min_sup_rel = 0.10;
    config.miner.max_pattern_len = 4;
    config.mmrfs.coverage_delta = 2;
    PatternClassifierPipeline pipeline(config);
    EXPECT_TRUE(
        pipeline.Train(db, std::make_unique<NaiveBayesClassifier>()).ok());
    const std::string path = ::testing::TempDir() + "/dfp_server_" + tag + "_" +
                             std::to_string(::getpid()) + ".dfp";
    EXPECT_TRUE(SavePipelineModelToFile(pipeline, path).ok());
    return path;
}

/// Server + engine + registry bundle used by most tests.
struct Harness {
    explicit Harness(EngineConfig engine_config = {}, ServerConfig server_config = {},
                     std::string default_model_path = "")
        : engine(registry, engine_config),
          server(registry, engine, FixPort(server_config),
                 std::move(default_model_path)) {
        const Status st = server.Start();
        EXPECT_TRUE(st.ok()) << st;
    }
    ~Harness() {
        server.Stop();
        engine.Stop();
    }

    static ServerConfig FixPort(ServerConfig config) {
        config.port = 0;  // always ephemeral in tests
        return config;
    }

    ServeClient Client() {
        auto client = ServeClient::Connect("127.0.0.1", server.port());
        EXPECT_TRUE(client.ok()) << client.status();
        return std::move(*client);
    }

    ModelRegistry registry;
    ScoringEngine engine;
    PredictionServer server;
};

TEST(ProtocolGoldenTest, ResponsesAreExactLines) {
    const auto db = Db(8);
    const std::string model_path = TrainModelFile(db, "golden");
    ModelRegistry registry;
    ASSERT_TRUE(registry.Reload(model_path).ok());
    const ServablePtr snapshot = registry.Snapshot();

    EngineConfig config;
    config.max_delay_ms = 0.0;
    ScoringEngine engine(registry, config);
    RequestDispatcher dispatcher(registry, engine, model_path);

    // predict: exact golden line (label known from the model itself).
    const std::vector<ItemId>& txn = db.transaction(0);
    std::ostringstream request;
    request << "{\"op\":\"predict\",\"id\":7,\"items\":[";
    for (std::size_t i = 0; i < txn.size(); ++i) {
        if (i > 0) request << ',';
        request << txn[i];
    }
    request << "]}";
    const std::string response = dispatcher.HandleLine(request.str());
    std::ostringstream expected_prefix;
    expected_prefix << "{\"ok\":true,\"label\":" << snapshot->model.Predict(txn)
                    << ",\"version\":1,\"latency_ms\":";
    EXPECT_EQ(response.rfind(expected_prefix.str(), 0), 0u) << response;
    EXPECT_NE(response.find(",\"id\":7}"), std::string::npos) << response;

    // health.
    EXPECT_EQ(dispatcher.HandleLine("{\"op\":\"health\"}"),
              "{\"ok\":true,\"serving\":true,\"version\":1,\"draining\":false}");

    // reload (uses the default path) bumps the version.
    EXPECT_EQ(dispatcher.HandleLine("{\"op\":\"reload\"}"),
              "{\"ok\":true,\"version\":2}");

    // stats carries dfp.serve.* counters.
    const std::string stats = dispatcher.HandleLine("{\"op\":\"stats\"}");
    EXPECT_EQ(stats.rfind("{\"ok\":true,\"stats\":", 0), 0u) << stats;
    EXPECT_NE(stats.find("dfp.serve.reloads"), std::string::npos) << stats;

    // Error shapes.
    EXPECT_EQ(dispatcher.HandleLine("this is not json").rfind(
                  "{\"ok\":false,\"error\":", 0),
              0u);
    const std::string unknown_op = dispatcher.HandleLine("{\"op\":\"explode\"}");
    EXPECT_NE(unknown_op.find("\"error\":\"InvalidArgument\""), std::string::npos)
        << unknown_op;
    const std::string bad_item =
        dispatcher.HandleLine("{\"op\":\"predict\",\"items\":[1,-4]}");
    EXPECT_NE(bad_item.find("\"ok\":false"), std::string::npos) << bad_item;
    const std::string no_items = dispatcher.HandleLine("{\"op\":\"predict\"}");
    EXPECT_NE(no_items.find("\"ok\":false"), std::string::npos) << no_items;

    engine.Stop();
    std::remove(model_path.c_str());
}

TEST(PredictionServerTest, ServesOverLoopback) {
    const auto db = Db(9);
    const std::string model_path = TrainModelFile(db, "loopback");
    EngineConfig engine_config;
    engine_config.max_delay_ms = 0.0;
    Harness harness(engine_config, {}, model_path);
    ASSERT_TRUE(harness.registry.Reload(model_path).ok());
    const ServablePtr snapshot = harness.registry.Snapshot();

    ServeClient client = harness.Client();
    // Single predictions agree with the local model.
    for (std::size_t t = 0; t < 20; ++t) {
        auto prediction = client.Predict(db.transaction(t));
        ASSERT_TRUE(prediction.ok()) << prediction.status();
        EXPECT_EQ(prediction->label, snapshot->model.Predict(db.transaction(t)));
        EXPECT_EQ(prediction->model_version, 1u);
    }
    // Batch too.
    std::vector<std::vector<ItemId>> batch;
    for (std::size_t t = 0; t < 32; ++t) batch.push_back(db.transaction(t));
    auto predictions = client.PredictBatch(batch);
    ASSERT_TRUE(predictions.ok()) << predictions.status();
    ASSERT_EQ(predictions->size(), batch.size());
    for (std::size_t t = 0; t < batch.size(); ++t) {
        EXPECT_EQ((*predictions)[t].label, snapshot->model.Predict(batch[t]));
    }
    // Health, stats, reload round the protocol out.
    auto health = client.Health();
    ASSERT_TRUE(health.ok()) << health.status();
    EXPECT_TRUE(health->Find("serving")->boolean());
    auto stats = client.Stats();
    ASSERT_TRUE(stats.ok()) << stats.status();
    auto version = client.Reload();
    ASSERT_TRUE(version.ok()) << version.status();
    EXPECT_EQ(*version, 2u);
    std::remove(model_path.c_str());
}

TEST(PredictionServerTest, InProcessAndTcpClientsAgree) {
    const auto db = Db(10);
    const std::string model_path = TrainModelFile(db, "agree");
    EngineConfig engine_config;
    engine_config.max_delay_ms = 0.0;
    Harness harness(engine_config, {}, model_path);
    ASSERT_TRUE(harness.registry.Reload(model_path).ok());

    ServeClient tcp = harness.Client();
    ServeClient local(harness.server.dispatcher());
    for (std::size_t t = 0; t < 25; ++t) {
        auto over_tcp = tcp.Predict(db.transaction(t));
        auto in_process = local.Predict(db.transaction(t));
        ASSERT_TRUE(over_tcp.ok());
        ASSERT_TRUE(in_process.ok());
        EXPECT_EQ(over_tcp->label, in_process->label);
    }
    std::remove(model_path.c_str());
}

TEST(PredictionServerTest, PredictWithoutModelIsFailedPrecondition) {
    EngineConfig engine_config;
    engine_config.max_delay_ms = 0.0;
    Harness harness(engine_config);
    ServeClient client = harness.Client();
    auto prediction = client.Predict({1, 2, 3});
    ASSERT_FALSE(prediction.ok());
    EXPECT_EQ(prediction.status().code(), StatusCode::kFailedPrecondition);
    auto health = client.Health();
    ASSERT_TRUE(health.ok());
    EXPECT_FALSE(health->Find("serving")->boolean());
}

TEST(PredictionServerTest, ShedsConnectionsBeyondLimit) {
    obs::Registry::Get().ResetValues();
    ServerConfig server_config;
    server_config.max_connections = 1;
    EngineConfig engine_config;
    engine_config.max_delay_ms = 0.0;
    Harness harness(engine_config, server_config);

    ServeClient first = harness.Client();  // occupies the only slot
    ASSERT_TRUE(first.Health().ok());
    // The next connection is answered with an unsolicited kUnavailable line
    // and closed — read it raw (sending first would race the server's close).
    auto second = TcpConnect("127.0.0.1", harness.server.port());
    ASSERT_TRUE(second.ok()) << second.status();
    LineReader reader(*second);
    std::string line;
    auto got = reader.ReadLine(&line);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_TRUE(*got);
    EXPECT_NE(line.find("\"error\":\"Unavailable\""), std::string::npos) << line;
    EXPECT_GE(obs::Registry::Get().GetCounter("dfp.serve.connections_shed").value(),
              1u);
}

TEST(PredictionServerTest, DrainOnShutdownFlushesInFlightResponse) {
    const auto db = Db(11);
    const std::string model_path = TrainModelFile(db, "drain");
    // A wide batching window keeps the request parked in the engine queue
    // long enough for Stop() to land while it is in flight.
    EngineConfig engine_config;
    engine_config.max_delay_ms = 150.0;
    engine_config.max_batch = 64;
    auto harness = std::make_unique<Harness>(engine_config, ServerConfig{}, model_path);
    ASSERT_TRUE(harness->registry.Reload(model_path).ok());
    const ServablePtr snapshot = harness->registry.Snapshot();
    const ClassLabel expected = snapshot->model.Predict(db.transaction(0));

    ServeClient client = harness->Client();
    Result<Prediction> prediction = Status::Internal("not yet");
    std::thread requester([&] { prediction = client.Predict(db.transaction(0)); });
    // Let the request reach the engine queue, then pull the plug.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    harness->server.Stop();   // drain: response must still arrive
    harness->engine.Stop();
    requester.join();

    ASSERT_TRUE(prediction.ok()) << prediction.status();
    EXPECT_EQ(prediction->label, expected);

    // After drain the port no longer accepts work.
    auto late = ServeClient::Connect("127.0.0.1", harness->server.port());
    if (late.ok()) {
        EXPECT_FALSE(late->Health().ok());
    }
    harness.reset();
    std::remove(model_path.c_str());
}

TEST(LineReaderTest, SplitsAndStripsLines) {
    // Socketpair gives LineReader a real fd without a server.
    int fds[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    Socket writer(fds[0]);
    Socket reader_socket(fds[1]);
    ASSERT_TRUE(writer.SendAll("alpha\r\nbeta\n\ngamma\n").ok());
    writer.Close();  // EOF after three payload lines + one empty

    LineReader reader(reader_socket);
    std::string line;
    auto got = reader.ReadLine(&line);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(*got);
    EXPECT_EQ(line, "alpha");  // '\r' stripped
    ASSERT_TRUE(*reader.ReadLine(&line));
    EXPECT_EQ(line, "beta");
    ASSERT_TRUE(*reader.ReadLine(&line));
    EXPECT_EQ(line, "");
    ASSERT_TRUE(*reader.ReadLine(&line));
    EXPECT_EQ(line, "gamma");
    got = reader.ReadLine(&line);
    ASSERT_TRUE(got.ok());
    EXPECT_FALSE(*got);  // clean EOF
}

}  // namespace
}  // namespace dfp::serve
