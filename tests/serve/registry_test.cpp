// ModelRegistry tests: versioned publish, reload error containment, and the
// hot-reload race certificate — concurrent scoring during reloads drops no
// responses and misroutes none (every response's label is correct for the
// model version it reports). Run under TSan via the tsan preset.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/model_io.hpp"
#include "core/pipeline.hpp"
#include "data/encoder.hpp"
#include "data/synthetic.hpp"
#include "ml/dtree/c45.hpp"
#include "ml/nb/naive_bayes.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"

namespace dfp::serve {
namespace {

TransactionDatabase Db(std::uint64_t seed) {
    SyntheticSpec spec;
    spec.rows = 150;
    spec.classes = 2;
    spec.attributes = 8;
    spec.arity = 3;
    spec.seed = seed;
    const Dataset data = GenerateSynthetic(spec);
    const auto encoder = ItemEncoder::FromSchema(data);
    return TransactionDatabase::FromDataset(data, *encoder);
}

template <typename LearnerT>
LoadedModel TrainModel(const TransactionDatabase& db, double min_sup = 0.10) {
    PipelineConfig config;
    config.miner.min_sup_rel = min_sup;
    config.miner.max_pattern_len = 4;
    config.mmrfs.coverage_delta = 2;
    PatternClassifierPipeline pipeline(config);
    EXPECT_TRUE(pipeline.Train(db, std::make_unique<LearnerT>()).ok());
    std::stringstream stream;
    EXPECT_TRUE(SavePipelineModel(pipeline, stream).ok());
    auto loaded = LoadPipelineModel(stream);
    EXPECT_TRUE(loaded.ok()) << loaded.status();
    return std::move(*loaded);
}

template <typename LearnerT>
std::string SaveModelFile(const TransactionDatabase& db, const std::string& tag,
                          double min_sup = 0.10) {
    PipelineConfig config;
    config.miner.min_sup_rel = min_sup;
    config.miner.max_pattern_len = 4;
    config.mmrfs.coverage_delta = 2;
    PatternClassifierPipeline pipeline(config);
    EXPECT_TRUE(pipeline.Train(db, std::make_unique<LearnerT>()).ok());
    const std::string path = ::testing::TempDir() + "/dfp_registry_" + tag + "_" +
                             std::to_string(::getpid()) + ".dfp";
    EXPECT_TRUE(SavePipelineModelToFile(pipeline, path).ok());
    return path;
}

TEST(ModelRegistryTest, EmptyUntilFirstInstall) {
    ModelRegistry registry;
    EXPECT_EQ(registry.Snapshot(), nullptr);
    EXPECT_EQ(registry.current_version(), 0u);
}

TEST(ModelRegistryTest, InstallPublishesMonotonicVersions) {
    const auto db = Db(3);
    ModelRegistry registry;
    auto v1 = registry.Install(TrainModel<NaiveBayesClassifier>(db));
    EXPECT_EQ(v1->version, 1u);
    EXPECT_EQ(registry.current_version(), 1u);
    auto v2 = registry.Install(TrainModel<C45Classifier>(db));
    EXPECT_EQ(v2->version, 2u);
    EXPECT_EQ(registry.current_version(), 2u);
    // The old snapshot stays alive and scorable for whoever still holds it.
    EXPECT_EQ(v1->model.Predict(db.transaction(0)),
              v1->model.Predict(db.transaction(0)));
}

TEST(ModelRegistryTest, ReloadFromFileAndFailureContainment) {
    const auto db = Db(4);
    ModelRegistry registry;
    const std::string good = SaveModelFile<NaiveBayesClassifier>(db, "good");
    auto loaded = registry.Reload(good);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ((*loaded)->version, 1u);
    EXPECT_EQ((*loaded)->source, good);

    // A failed reload (missing file, corrupt bundle) leaves v1 serving.
    EXPECT_FALSE(registry.Reload("/nonexistent/model.dfp").ok());
    const std::string corrupt = ::testing::TempDir() + "/dfp_registry_corrupt_" +
                                std::to_string(::getpid()) + ".dfp";
    {
        std::ofstream out(corrupt);
        out << "dfp-model v1 nb\nfeature-space 4 1\n2 0 99\n";  // item id oob
    }
    EXPECT_FALSE(registry.Reload(corrupt).ok());
    EXPECT_EQ(registry.current_version(), 1u);
    ASSERT_NE(registry.Snapshot(), nullptr);
    EXPECT_EQ(registry.Snapshot()->source, good);
    std::remove(good.c_str());
    std::remove(corrupt.c_str());
}

TEST(ModelRegistryTest, HotReloadRaceDropsAndMisroutesNothing) {
    // The acceptance race: scorer threads hammer the engine while a reloader
    // thread swaps between two models. Every response must carry a label that
    // is exactly what the version it reports would predict — no torn reads,
    // no dropped futures. ASan/TSan runs of this test certify the swap.
    const auto db = Db(5);
    // Two genuinely different models (different learners and supports), kept
    // as serialized bundles: every install parses the same bytes, so "what
    // version v would predict" is known exactly by v's parity.
    const auto bundle_of = [](LoadedModel model) {
        std::stringstream out;
        out << "dfp-model v1 " << model.learner().TypeId() << '\n';
        EXPECT_TRUE(SaveFeatureSpace(model.feature_space(), out).ok());
        EXPECT_TRUE(model.learner().SaveModel(out).ok());
        return out.str();
    };
    const std::string bundle_a = bundle_of(TrainModel<NaiveBayesClassifier>(db, 0.10));
    const std::string bundle_b = bundle_of(TrainModel<C45Classifier>(db, 0.15));
    const auto parse = [](const std::string& bundle) {
        std::stringstream in(bundle);
        auto loaded = LoadPipelineModel(in);
        EXPECT_TRUE(loaded.ok()) << loaded.status();
        return std::move(*loaded);
    };

    // Per-version expected labels, computed up front on private copies.
    std::vector<ClassLabel> expect_a(db.num_transactions());
    std::vector<ClassLabel> expect_b(db.num_transactions());
    {
        LoadedModel ref_a = parse(bundle_a);
        LoadedModel ref_b = parse(bundle_b);
        for (std::size_t t = 0; t < db.num_transactions(); ++t) {
            expect_a[t] = ref_a.Predict(db.transaction(t));
            expect_b[t] = ref_b.Predict(db.transaction(t));
        }
    }

    ModelRegistry registry;
    registry.Install(parse(bundle_a), "model-a");  // version 1

    EngineConfig config;
    config.max_batch = 8;
    config.max_delay_ms = 0.0;
    config.queue_capacity = 4096;
    ScoringEngine engine(registry, config);

    std::atomic<bool> done{false};
    std::atomic<std::size_t> reloads{0};
    std::thread reloader([&] {
        bool next_is_b = true;
        while (!done.load(std::memory_order_relaxed)) {
            registry.Install(parse(next_is_b ? bundle_b : bundle_a),
                             next_is_b ? "model-b" : "model-a");
            next_is_b = !next_is_b;
            reloads.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    });

    constexpr std::size_t kScorers = 4;
    constexpr std::size_t kRequestsPerScorer = 200;
    std::atomic<std::size_t> checked{0};
    std::vector<std::thread> scorers;
    std::atomic<bool> failed{false};
    for (std::size_t s = 0; s < kScorers; ++s) {
        scorers.emplace_back([&, s] {
            for (std::size_t r = 0; r < kRequestsPerScorer; ++r) {
                const std::size_t t = (s * 37 + r) % db.num_transactions();
                auto result = engine.Submit(db.transaction(t)).get();
                if (!result.ok()) {  // drops are a hard failure
                    failed.store(true);
                    return;
                }
                // Odd versions are model-a installs, even are model-b.
                const ClassLabel expected = (result->model_version % 2 == 1)
                                                ? expect_a[t]
                                                : expect_b[t];
                if (result->label != expected) {
                    failed.store(true);
                    return;
                }
                checked.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto& thread : scorers) thread.join();
    done.store(true);
    reloader.join();

    EXPECT_FALSE(failed.load());
    EXPECT_EQ(checked.load(), kScorers * kRequestsPerScorer);
    EXPECT_GE(reloads.load(), 1u);
    EXPECT_GE(registry.current_version(), 2u);
}

}  // namespace
}  // namespace dfp::serve
