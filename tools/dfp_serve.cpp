// dfp_serve: TCP prediction server for dfp-model v1 bundles.
//
//   dfp_serve --model m.dfp --port 7070
//
// Speaks one-line JSON requests (see src/serve/protocol.hpp):
//
//   $ printf '{"op":"predict","items":[3,7,12]}\n' | nc 127.0.0.1 7070
//   {"ok":true,"label":1,"version":1,"latency_ms":0.41}
//
// SIGINT/SIGTERM trigger a graceful drain: the listener closes, in-flight
// requests finish and their responses flush, then the process exits 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/client.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

void Usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s --model <bundle.dfp> [options]\n"
        "\n"
        "options:\n"
        "  --model <path>          dfp-model v1 bundle to serve (required;\n"
        "                          also the default target of {\"op\":\"reload\"})\n"
        "  --port <n>              TCP port on 127.0.0.1 (default 7070; 0 = ephemeral)\n"
        "  --threads <n>           scoring workers (default 1; 0 = all cores)\n"
        "  --max-batch <n>         micro-batch size cap (default 64)\n"
        "  --max-delay-ms <ms>     batch fill window (default 0.5)\n"
        "  --queue-capacity <n>    admission queue bound (default 1024)\n"
        "  --max-connections <n>   concurrent connection bound (default 64)\n"
        "  --deadline-ms <ms>      default per-request deadline (default: none)\n",
        argv0);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace dfp;
    using namespace dfp::serve;

    std::string model_path;
    ServerConfig server_config;
    EngineConfig engine_config;

    auto flag_value = [&](int& i, const char* flag) -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "error: %s requires a value\n", flag);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--model") == 0) {
            model_path = flag_value(i, "--model");
        } else if (std::strcmp(argv[i], "--port") == 0) {
            server_config.port =
                static_cast<std::uint16_t>(std::atoi(flag_value(i, "--port")));
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            engine_config.num_threads = static_cast<std::size_t>(
                std::strtoull(flag_value(i, "--threads"), nullptr, 10));
        } else if (std::strcmp(argv[i], "--max-batch") == 0) {
            engine_config.max_batch = static_cast<std::size_t>(
                std::strtoull(flag_value(i, "--max-batch"), nullptr, 10));
        } else if (std::strcmp(argv[i], "--max-delay-ms") == 0) {
            engine_config.max_delay_ms = std::atof(flag_value(i, "--max-delay-ms"));
        } else if (std::strcmp(argv[i], "--queue-capacity") == 0) {
            engine_config.queue_capacity = static_cast<std::size_t>(
                std::strtoull(flag_value(i, "--queue-capacity"), nullptr, 10));
        } else if (std::strcmp(argv[i], "--max-connections") == 0) {
            server_config.max_connections = static_cast<std::size_t>(
                std::strtoull(flag_value(i, "--max-connections"), nullptr, 10));
        } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
            engine_config.default_deadline_ms =
                std::atof(flag_value(i, "--deadline-ms"));
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            Usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
            Usage(argv[0]);
            return 2;
        }
    }
    if (model_path.empty()) {
        Usage(argv[0]);
        return 2;
    }

    ModelRegistry registry;
    auto loaded = registry.Reload(model_path);
    if (!loaded.ok()) {
        std::fprintf(stderr, "error: cannot load model '%s': %s\n",
                     model_path.c_str(), loaded.status().ToString().c_str());
        return 1;
    }
    std::printf("dfp_serve: loaded %s (version %llu, %zu items + %zu patterns)\n",
                model_path.c_str(),
                static_cast<unsigned long long>((*loaded)->version),
                (*loaded)->index.num_items(), (*loaded)->index.num_patterns());

    ScoringEngine engine(registry, engine_config);
    PredictionServer server(registry, engine, server_config, model_path);
    const Status started = server.Start();
    if (!started.ok()) {
        std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
        return 1;
    }
    std::printf("dfp_serve: listening on 127.0.0.1:%u (threads=%zu max_batch=%zu "
                "queue=%zu)\n",
                unsigned{server.port()}, engine_config.num_threads,
                engine_config.max_batch, engine_config.queue_capacity);

    std::signal(SIGINT, HandleStopSignal);
    std::signal(SIGTERM, HandleStopSignal);
    sigset_t wait_set;
    sigemptyset(&wait_set);
    while (g_stop_requested == 0) {
        sigsuspend(&wait_set);  // sleep until a signal arrives
    }

    std::printf("dfp_serve: draining...\n");
    server.Stop();
    engine.Stop();
    std::printf("dfp_serve: drained, bye\n");
    return 0;
}
