// dfp_serve: TCP prediction server for dfp-model v1 bundles.
//
//   dfp_serve --model m.dfp --port 7070
//
// Speaks one-line JSON requests (see src/serve/protocol.hpp):
//
//   $ printf '{"op":"predict","items":[3,7,12]}\n' | nc 127.0.0.1 7070
//   {"ok":true,"label":1,"version":1,"latency_ms":0.41}
//
// SIGINT/SIGTERM trigger a graceful drain: the listener closes, in-flight
// requests finish and their responses flush, then the process exits 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/failpoint.hpp"
#include "obs/export.hpp"
#include "obs/reqtrace.hpp"
#include "serve/client.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

void Usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s --model <bundle.dfp> [options]\n"
        "\n"
        "options:\n"
        "  --model <path>          dfp-model v1 bundle to serve (required;\n"
        "                          also the default target of {\"op\":\"reload\"})\n"
        "  --port <n>              TCP port on 127.0.0.1 (default 7070; 0 = ephemeral)\n"
        "  --threads <n>           scoring workers (default 1; 0 = all cores)\n"
        "  --max-batch <n>         micro-batch size cap (default 64)\n"
        "  --max-delay-ms <ms>     batch fill window (default 0.5)\n"
        "  --queue-capacity <n>    admission queue bound (default 1024)\n"
        "  --max-connections <n>   concurrent connection bound (default 64)\n"
        "  --deadline-ms <ms>      default per-request deadline (default: none)\n"
        "  --metrics-port <n>      HTTP side-port for GET /metrics\n"
        "                          (default: off; 0 = ephemeral)\n"
        "  --trace-out <path>      write a Chrome trace-event JSON of recent\n"
        "                          requests on drain (chrome://tracing)\n"
        "  --snapshot-out <path>   periodic JSON metrics snapshot file\n"
        "                          (atomic tmp+rename, every 2s + on drain)\n"
        "  --slow-ms <ms>          log requests slower than this end to end,\n"
        "                          with per-stage breakdown (default: off)\n"
        "  --io-timeout-s <s>      per-connection read/write deadline in\n"
        "                          seconds (slow-loris defense; default: off)\n"
        "  --failpoints <spec>     arm deterministic failpoints, e.g.\n"
        "                          'serve.socket.write=prob(0.1):error;\n"
        "                          serve.registry.swap=nth(3)' (chaos testing;\n"
        "                          see src/common/failpoint.hpp for grammar;\n"
        "                          also readable from $DFP_FAILPOINTS)\n"
        "  --seed <n>              seed for the failpoint schedules (default 1;\n"
        "                          same seed + spec => same fault sequence)\n",
        argv0);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace dfp;
    using namespace dfp::serve;

    std::string model_path;
    std::string trace_out;
    std::string snapshot_out;
    std::string failpoint_spec;
    std::uint64_t failpoint_seed = 1;
    ServerConfig server_config;
    EngineConfig engine_config;

    auto flag_value = [&](int& i, const char* flag) -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "error: %s requires a value\n", flag);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--model") == 0) {
            model_path = flag_value(i, "--model");
        } else if (std::strcmp(argv[i], "--port") == 0) {
            server_config.port =
                static_cast<std::uint16_t>(std::atoi(flag_value(i, "--port")));
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            engine_config.num_threads = static_cast<std::size_t>(
                std::strtoull(flag_value(i, "--threads"), nullptr, 10));
        } else if (std::strcmp(argv[i], "--max-batch") == 0) {
            engine_config.max_batch = static_cast<std::size_t>(
                std::strtoull(flag_value(i, "--max-batch"), nullptr, 10));
        } else if (std::strcmp(argv[i], "--max-delay-ms") == 0) {
            engine_config.max_delay_ms = std::atof(flag_value(i, "--max-delay-ms"));
        } else if (std::strcmp(argv[i], "--queue-capacity") == 0) {
            engine_config.queue_capacity = static_cast<std::size_t>(
                std::strtoull(flag_value(i, "--queue-capacity"), nullptr, 10));
        } else if (std::strcmp(argv[i], "--max-connections") == 0) {
            server_config.max_connections = static_cast<std::size_t>(
                std::strtoull(flag_value(i, "--max-connections"), nullptr, 10));
        } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
            engine_config.default_deadline_ms =
                std::atof(flag_value(i, "--deadline-ms"));
        } else if (std::strcmp(argv[i], "--metrics-port") == 0) {
            server_config.metrics_port = std::atoi(flag_value(i, "--metrics-port"));
        } else if (std::strcmp(argv[i], "--trace-out") == 0) {
            trace_out = flag_value(i, "--trace-out");
        } else if (std::strcmp(argv[i], "--snapshot-out") == 0) {
            snapshot_out = flag_value(i, "--snapshot-out");
        } else if (std::strcmp(argv[i], "--slow-ms") == 0) {
            engine_config.telemetry.slow_request_ms =
                std::atof(flag_value(i, "--slow-ms"));
        } else if (std::strcmp(argv[i], "--io-timeout-s") == 0) {
            const double seconds = std::atof(flag_value(i, "--io-timeout-s"));
            server_config.read_timeout_s = seconds;
            server_config.write_timeout_s = seconds;
        } else if (std::strcmp(argv[i], "--failpoints") == 0) {
            failpoint_spec = flag_value(i, "--failpoints");
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            failpoint_seed =
                std::strtoull(flag_value(i, "--seed"), nullptr, 10);
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            Usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
            Usage(argv[0]);
            return 2;
        }
    }
    if (model_path.empty()) {
        Usage(argv[0]);
        return 2;
    }

    if (!failpoint_spec.empty()) {
        const Status armed = FailpointRegistry::Get().Configure(failpoint_spec,
                                                                failpoint_seed);
        if (!armed.ok()) {
            std::fprintf(stderr, "error: bad --failpoints spec: %s\n",
                         armed.ToString().c_str());
            return 2;
        }
        std::printf("dfp_serve: failpoints armed (seed %llu): %s\n",
                    static_cast<unsigned long long>(failpoint_seed),
                    failpoint_spec.c_str());
    } else {
        // No flag: honour $DFP_FAILPOINTS / $DFP_FAILPOINT_SEED if present.
        ConfigureFailpointsFromEnv();
    }

    ModelRegistry registry;
    auto loaded = registry.Reload(model_path);
    if (!loaded.ok()) {
        std::fprintf(stderr, "error: cannot load model '%s': %s\n",
                     model_path.c_str(), loaded.status().ToString().c_str());
        return 1;
    }
    std::printf("dfp_serve: loaded %s (version %llu, %zu items + %zu patterns)\n",
                model_path.c_str(),
                static_cast<unsigned long long>((*loaded)->version),
                (*loaded)->index.num_items(), (*loaded)->index.num_patterns());

    ScoringEngine engine(registry, engine_config);
    PredictionServer server(registry, engine, server_config, model_path);
    const Status started = server.Start();
    if (!started.ok()) {
        std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
        return 1;
    }
    std::printf("dfp_serve: listening on 127.0.0.1:%u (threads=%zu max_batch=%zu "
                "queue=%zu)\n",
                unsigned{server.port()}, engine_config.num_threads,
                engine_config.max_batch, engine_config.queue_capacity);
    if (server.metrics_port() != 0) {
        std::printf("dfp_serve: metrics at http://127.0.0.1:%u/metrics\n",
                    unsigned{server.metrics_port()});
    }
    std::unique_ptr<dfp::obs::PeriodicSnapshotWriter> snapshot_writer;
    if (!snapshot_out.empty()) {
        snapshot_writer = std::make_unique<dfp::obs::PeriodicSnapshotWriter>(
            snapshot_out, /*period_seconds=*/2.0);
    }

    std::signal(SIGINT, HandleStopSignal);
    std::signal(SIGTERM, HandleStopSignal);
    sigset_t wait_set;
    sigemptyset(&wait_set);
    while (g_stop_requested == 0) {
        sigsuspend(&wait_set);  // sleep until a signal arrives
    }

    std::printf("dfp_serve: draining...\n");
    server.Stop();
    engine.Stop();
    if (snapshot_writer != nullptr) snapshot_writer->Stop();
    if (!trace_out.empty()) {
        const auto traces = engine.trace_ring().Dump();
        const Status written = dfp::obs::WriteFileAtomic(
            trace_out, dfp::obs::RenderChromeTrace(traces) + "\n");
        if (written.ok()) {
            std::printf("dfp_serve: wrote %zu request traces to %s\n",
                        traces.size(), trace_out.c_str());
        } else {
            std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
        }
    }
    for (const auto& fp : FailpointRegistry::Get().Snapshot()) {
        if (fp.trips > 0) {
            std::printf("dfp_serve: failpoint %s tripped %llu/%llu hits\n",
                        fp.name.c_str(),
                        static_cast<unsigned long long>(fp.trips),
                        static_cast<unsigned long long>(fp.hits));
        }
    }
    std::printf("dfp_serve: drained, bye\n");
    return 0;
}
