// dfp_serve: TCP prediction server for dfp-model v1 bundles.
//
//   dfp_serve --model m.dfp --port 7070
//
// Speaks one-line JSON requests (see src/serve/protocol.hpp):
//
//   $ printf '{"op":"predict","items":[3,7,12]}\n' | nc 127.0.0.1 7070
//   {"ok":true,"label":1,"version":1,"latency_ms":0.41}
//
// SIGINT/SIGTERM trigger a graceful drain: the listener closes, in-flight
// requests finish and their responses flush, then the process exits 0.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.hpp"
#include "data/encoder.hpp"
#include "data/synthetic.hpp"
#include "obs/export.hpp"
#include "obs/reqtrace.hpp"
#include "serve/client.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "stream/streaming_db.hpp"
#include "stream/trainer.hpp"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

void Usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s --model <bundle.dfp> [options]\n"
        "\n"
        "options:\n"
        "  --model <path>          dfp-model v1 bundle to serve (required;\n"
        "                          also the default target of {\"op\":\"reload\"})\n"
        "  --port <n>              TCP port on 127.0.0.1 (default 7070; 0 = ephemeral)\n"
        "  --threads <n>           scoring workers, also the retrain pipeline's\n"
        "                          thread budget under --stream-ingest\n"
        "                          (default 1; 0 = all cores)\n"
        "  --max-batch <n>         micro-batch size cap (default 64)\n"
        "  --max-delay-ms <ms>     batch fill window (default 0.5)\n"
        "  --queue-capacity <n>    admission queue bound (default 1024)\n"
        "  --max-connections <n>   concurrent connection bound (default 64)\n"
        "  --deadline-ms <ms>      default per-request deadline (default: none)\n"
        "  --metrics-port <n>      HTTP side-port for GET /metrics\n"
        "                          (default: off; 0 = ephemeral)\n"
        "  --trace-out <path>      write a Chrome trace-event JSON of recent\n"
        "                          requests on drain (chrome://tracing)\n"
        "  --snapshot-out <path>   periodic JSON metrics snapshot file\n"
        "                          (atomic tmp+rename, every 2s + on drain)\n"
        "  --slow-ms <ms>          log requests slower than this end to end,\n"
        "                          with per-stage breakdown (default: off)\n"
        "  --io-timeout-s <s>      per-connection read/write deadline in\n"
        "                          seconds (slow-loris defense; default: off)\n"
        "  --stream-ingest         manual soak mode: a background thread\n"
        "                          streams a rotating-seed synthetic source\n"
        "                          through the ContinuousTrainer, which\n"
        "                          retrains on drift and hot-reloads the\n"
        "                          serving model (DESIGN.md section 16)\n"
        "  --stream-rate <n>       soak ingest rate in rows/s (default 500)\n"
        "  --stream-drift-every <n> rows between synthetic concept drifts\n"
        "                          (seed rotation; default 5000)\n"
        "  --sig-test <t>          significance filter in front of MMRFS for\n"
        "                          --stream-ingest retrains: none|chi2|fisher|\n"
        "                          odds (default none; stats/significance.hpp)\n"
        "  --alpha <a>             significance level for --sig-test\n"
        "                          (default 0.05)\n"
        "  --correction <c>        multiple-testing correction for --sig-test:\n"
        "                          none|bonferroni|bh (default bh)\n"
        "  --failpoints <spec>     arm deterministic failpoints, e.g.\n"
        "                          'serve.socket.write=prob(0.1):error;\n"
        "                          serve.registry.swap=nth(3)' (chaos testing;\n"
        "                          see src/common/failpoint.hpp for grammar;\n"
        "                          also readable from $DFP_FAILPOINTS)\n"
        "  --seed <n>              seed for the failpoint schedules (default 1;\n"
        "                          same seed + spec => same fault sequence)\n",
        argv0);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace dfp;
    using namespace dfp::serve;

    std::string model_path;
    std::string trace_out;
    std::string snapshot_out;
    std::string failpoint_spec;
    std::uint64_t failpoint_seed = 1;
    bool stream_ingest = false;
    std::size_t stream_rate = 500;
    std::size_t stream_drift_every = 5000;
    std::string sig_test = "none";
    std::string correction = "bh";
    double alpha = 0.05;
    ServerConfig server_config;
    EngineConfig engine_config;

    auto flag_value = [&](int& i, const char* flag) -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "error: %s requires a value\n", flag);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--model") == 0) {
            model_path = flag_value(i, "--model");
        } else if (std::strcmp(argv[i], "--port") == 0) {
            server_config.port =
                static_cast<std::uint16_t>(std::atoi(flag_value(i, "--port")));
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            engine_config.num_threads = static_cast<std::size_t>(
                std::strtoull(flag_value(i, "--threads"), nullptr, 10));
        } else if (std::strcmp(argv[i], "--max-batch") == 0) {
            engine_config.max_batch = static_cast<std::size_t>(
                std::strtoull(flag_value(i, "--max-batch"), nullptr, 10));
        } else if (std::strcmp(argv[i], "--max-delay-ms") == 0) {
            engine_config.max_delay_ms = std::atof(flag_value(i, "--max-delay-ms"));
        } else if (std::strcmp(argv[i], "--queue-capacity") == 0) {
            engine_config.queue_capacity = static_cast<std::size_t>(
                std::strtoull(flag_value(i, "--queue-capacity"), nullptr, 10));
        } else if (std::strcmp(argv[i], "--max-connections") == 0) {
            server_config.max_connections = static_cast<std::size_t>(
                std::strtoull(flag_value(i, "--max-connections"), nullptr, 10));
        } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
            engine_config.default_deadline_ms =
                std::atof(flag_value(i, "--deadline-ms"));
        } else if (std::strcmp(argv[i], "--metrics-port") == 0) {
            server_config.metrics_port = std::atoi(flag_value(i, "--metrics-port"));
        } else if (std::strcmp(argv[i], "--trace-out") == 0) {
            trace_out = flag_value(i, "--trace-out");
        } else if (std::strcmp(argv[i], "--snapshot-out") == 0) {
            snapshot_out = flag_value(i, "--snapshot-out");
        } else if (std::strcmp(argv[i], "--slow-ms") == 0) {
            engine_config.telemetry.slow_request_ms =
                std::atof(flag_value(i, "--slow-ms"));
        } else if (std::strcmp(argv[i], "--io-timeout-s") == 0) {
            const double seconds = std::atof(flag_value(i, "--io-timeout-s"));
            server_config.read_timeout_s = seconds;
            server_config.write_timeout_s = seconds;
        } else if (std::strcmp(argv[i], "--stream-ingest") == 0) {
            stream_ingest = true;
        } else if (std::strcmp(argv[i], "--stream-rate") == 0) {
            stream_rate = static_cast<std::size_t>(
                std::strtoull(flag_value(i, "--stream-rate"), nullptr, 10));
        } else if (std::strcmp(argv[i], "--stream-drift-every") == 0) {
            stream_drift_every = static_cast<std::size_t>(std::strtoull(
                flag_value(i, "--stream-drift-every"), nullptr, 10));
        } else if (std::strcmp(argv[i], "--sig-test") == 0) {
            sig_test = flag_value(i, "--sig-test");
        } else if (std::strcmp(argv[i], "--alpha") == 0) {
            alpha = std::atof(flag_value(i, "--alpha"));
        } else if (std::strcmp(argv[i], "--correction") == 0) {
            correction = flag_value(i, "--correction");
        } else if (std::strcmp(argv[i], "--failpoints") == 0) {
            failpoint_spec = flag_value(i, "--failpoints");
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            failpoint_seed =
                std::strtoull(flag_value(i, "--seed"), nullptr, 10);
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            Usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
            Usage(argv[0]);
            return 2;
        }
    }
    if (model_path.empty()) {
        Usage(argv[0]);
        return 2;
    }
    // Validate the significance flags up front (typos fail fast, even when
    // --stream-ingest is off and they would otherwise go unused).
    const auto parsed_sig_test = ParseSigTest(sig_test);
    const auto parsed_correction = ParseCorrection(correction);
    if (!parsed_sig_test.ok() || !parsed_correction.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     (!parsed_sig_test.ok() ? parsed_sig_test.status()
                                            : parsed_correction.status())
                         .ToString()
                         .c_str());
        return 2;
    }

    if (!failpoint_spec.empty()) {
        const Status armed = FailpointRegistry::Get().Configure(failpoint_spec,
                                                                failpoint_seed);
        if (!armed.ok()) {
            std::fprintf(stderr, "error: bad --failpoints spec: %s\n",
                         armed.ToString().c_str());
            return 2;
        }
        std::printf("dfp_serve: failpoints armed (seed %llu): %s\n",
                    static_cast<unsigned long long>(failpoint_seed),
                    failpoint_spec.c_str());
    } else {
        // No flag: honour $DFP_FAILPOINTS / $DFP_FAILPOINT_SEED if present.
        ConfigureFailpointsFromEnv();
    }

    ModelRegistry registry;
    auto loaded = registry.Reload(model_path);
    if (!loaded.ok()) {
        std::fprintf(stderr, "error: cannot load model '%s': %s\n",
                     model_path.c_str(), loaded.status().ToString().c_str());
        return 1;
    }
    std::printf("dfp_serve: loaded %s (version %llu, %zu items + %zu patterns)\n",
                model_path.c_str(),
                static_cast<unsigned long long>((*loaded)->version),
                (*loaded)->index.num_items(), (*loaded)->index.num_patterns());

    ScoringEngine engine(registry, engine_config);
    PredictionServer server(registry, engine, server_config, model_path);
    const Status started = server.Start();
    if (!started.ok()) {
        std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
        return 1;
    }
    std::printf("dfp_serve: listening on 127.0.0.1:%u (threads=%zu max_batch=%zu "
                "queue=%zu)\n",
                unsigned{server.port()}, engine_config.num_threads,
                engine_config.max_batch, engine_config.queue_capacity);
    if (server.metrics_port() != 0) {
        std::printf("dfp_serve: metrics at http://127.0.0.1:%u/metrics\n",
                    unsigned{server.metrics_port()});
    }
    std::unique_ptr<dfp::obs::PeriodicSnapshotWriter> snapshot_writer;
    if (!snapshot_out.empty()) {
        snapshot_writer = std::make_unique<dfp::obs::PeriodicSnapshotWriter>(
            snapshot_out, /*period_seconds=*/2.0);
    }

    // --stream-ingest: a background soak streams a rotating-seed synthetic
    // source through the ContinuousTrainer, which retrains on drift and hot-
    // reloads the serving model through the same registry the server reads.
    std::atomic<bool> stream_stop{false};
    std::thread stream_thread;
    std::unique_ptr<stream::StreamingDatabase> stream_db;
    std::unique_ptr<stream::ContinuousTrainer> stream_trainer;
    if (stream_ingest) {
        // The item universe comes from the synthetic shape (shared by every
        // phase); the first scheduled retrain swaps a matching model in.
        SyntheticSpec shape;
        shape.classes = 2;
        shape.attributes = 10;
        shape.arity = 3;
        shape.rows = 1;
        const auto probe = ItemEncoder::FromSchema(GenerateSynthetic(shape));
        stream::StreamConfig stream_config;
        stream_config.num_items = probe->num_items();
        stream_config.num_classes = shape.classes;
        stream_config.window_capacity = 2048;
        auto created_db = stream::StreamingDatabase::Create(stream_config);
        if (!created_db.ok()) {
            std::fprintf(stderr, "error: %s\n",
                         created_db.status().ToString().c_str());
            return 1;
        }
        stream_db = std::move(*created_db);
        stream::ContinuousTrainerConfig trainer_config;
        trainer_config.pipeline.miner.min_sup_rel = 0.10;
        trainer_config.pipeline.miner.max_pattern_len = 4;
        trainer_config.pipeline.mmrfs.coverage_delta = 2;
        // Retrains use the same worker-thread budget as scoring: the mining
        // fan-out, MMRFS rounds and OvO training all parallelise, and the
        // retrained model is thread-count-invariant (DESIGN.md §17), so
        // --threads shortens the retrain critical path for free.
        trainer_config.pipeline.num_threads = engine_config.num_threads;
        // Optional significance filter on every retrain: candidates failing
        // the corrected test are masked out of MMRFS, and the rejection count
        // surfaces in TrainerStats::last_sig_rejected / dfp.stats.* metrics.
        trainer_config.pipeline.significance.test = *parsed_sig_test;
        trainer_config.pipeline.significance.alpha = alpha;
        trainer_config.pipeline.significance.correction = *parsed_correction;
        trainer_config.retrain_every = 1024;
        trainer_config.min_window = 512;
        trainer_config.model_dir =
            "/tmp/dfp_serve_stream_" + std::to_string(::getpid());
        auto created_trainer = stream::ContinuousTrainer::Create(
            trainer_config, stream_db.get(), &registry);
        if (!created_trainer.ok()) {
            std::fprintf(stderr, "error: %s\n",
                         created_trainer.status().ToString().c_str());
            return 1;
        }
        stream_trainer = std::move(*created_trainer);
        std::printf(
            "dfp_serve: stream-ingest soak on (%zu rows/s, drift every %zu "
            "rows, models in %s)\n",
            stream_rate, stream_drift_every,
            trainer_config.model_dir.c_str());
        if (*parsed_sig_test != SigTest::kNone) {
            std::printf(
                "dfp_serve: retrain significance filter: %s alpha=%g "
                "correction=%s\n",
                sig_test.c_str(), alpha, correction.c_str());
        }

        stream_thread = std::thread([&, shape] {
            constexpr std::size_t kBatch = 64;
            const auto batch_interval = std::chrono::duration<double>(
                static_cast<double>(kBatch) /
                static_cast<double>(std::max<std::size_t>(1, stream_rate)));
            std::uint64_t phase = 0;
            while (!stream_stop.load(std::memory_order_relaxed)) {
                SyntheticSpec spec = shape;
                spec.rows = stream_drift_every;
                spec.seed = 1 + phase * 104729;  // rotate the concept
                const Dataset data = GenerateSynthetic(spec);
                const auto encoder = ItemEncoder::FromSchema(data);
                std::size_t row = 0;
                while (row < data.num_rows() &&
                       !stream_stop.load(std::memory_order_relaxed)) {
                    stream::TransactionBatch batch;
                    const std::size_t end =
                        std::min(row + kBatch, data.num_rows());
                    for (; row < end; ++row) {
                        batch.transactions.push_back(
                            encoder->EncodeRow(data, row));
                        batch.labels.push_back(data.label(row));
                    }
                    const auto appended =
                        stream_trainer->Ingest(std::move(batch));
                    if (!appended.ok()) {
                        std::fprintf(stderr, "stream-ingest: %s\n",
                                     appended.status().ToString().c_str());
                        return;
                    }
                    const auto pumped = stream_trainer->MaybeRetrain();
                    if (!pumped.ok()) {
                        // A failed retrain keeps the previous model serving
                        // and stays armed for retry; the soak carries on.
                        std::fprintf(stderr, "stream-ingest: retrain: %s\n",
                                     pumped.status().ToString().c_str());
                    }
                    std::this_thread::sleep_for(batch_interval);
                }
                ++phase;
            }
        });
    }

    std::signal(SIGINT, HandleStopSignal);
    std::signal(SIGTERM, HandleStopSignal);
    sigset_t wait_set;
    sigemptyset(&wait_set);
    while (g_stop_requested == 0) {
        sigsuspend(&wait_set);  // sleep until a signal arrives
    }

    std::printf("dfp_serve: draining...\n");
    if (stream_thread.joinable()) {
        stream_stop.store(true);
        stream_thread.join();
        const stream::TrainerStats stats = stream_trainer->stats();
        std::printf(
            "dfp_serve: stream-ingest soak: %llu rows, %llu retrains "
            "(%llu drift, %llu schedule), %llu failures, model v%llu\n",
            static_cast<unsigned long long>(stats.ingested),
            static_cast<unsigned long long>(stats.retrains),
            static_cast<unsigned long long>(stats.drift_triggers),
            static_cast<unsigned long long>(stats.schedule_triggers),
            static_cast<unsigned long long>(stats.retrain_failures),
            static_cast<unsigned long long>(stats.last_model_version));
    }
    server.Stop();
    engine.Stop();
    if (snapshot_writer != nullptr) snapshot_writer->Stop();
    if (!trace_out.empty()) {
        const auto traces = engine.trace_ring().Dump();
        const Status written = dfp::obs::WriteFileAtomic(
            trace_out, dfp::obs::RenderChromeTrace(traces) + "\n");
        if (written.ok()) {
            std::printf("dfp_serve: wrote %zu request traces to %s\n",
                        traces.size(), trace_out.c_str());
        } else {
            std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
        }
    }
    for (const auto& fp : FailpointRegistry::Get().Snapshot()) {
        if (fp.trips > 0) {
            std::printf("dfp_serve: failpoint %s tripped %llu/%llu hits\n",
                        fp.name.c_str(),
                        static_cast<unsigned long long>(fp.trips),
                        static_cast<unsigned long long>(fp.hits));
        }
    }
    std::printf("dfp_serve: drained, bye\n");
    return 0;
}
