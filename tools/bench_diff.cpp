// bench_diff: compares a fresh BENCH_*.json against a committed baseline of
// per-metric tolerance bounds, exiting non-zero on any violation — the
// opt-in perf-regression gate (ctest label dfp_bench, -DDFP_BENCH_TESTS=ON).
//
//   bench_diff --bench BENCH_serving.json --baseline bench/baselines/serving.json
//
// Baseline schema (one entry per gauge to check; unlisted gauges are ignored):
//   { "metrics": {
//       "dfp.bench.serving.soak.preds_per_s": { "min": 5000 },
//       "dfp.bench.serving.soak.shed_rate":   { "max": 0.05 },
//       "dfp.bench.serving.index_speedup":    { "min": 3, "max": 1e9 } } }
//
// Bounds are absolute values, not ratios, so the file doubles as readable
// documentation of what the serving stack is expected to sustain. Keep them
// loose — this gate is for catching collapses (half the throughput, runaway
// shed rate), not 2% noise.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace {

dfp::Result<dfp::obs::JsonValue> LoadJsonFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) return dfp::Status::NotFound("cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return dfp::obs::ParseJson(buf.str());
}

}  // namespace

int main(int argc, char** argv) {
    std::string bench_path;
    std::string baseline_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--bench") == 0 && i + 1 < argc) {
            bench_path = argv[++i];
        } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
            baseline_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s --bench BENCH_x.json --baseline "
                         "bench/baselines/x.json\n",
                         argv[0]);
            return 2;
        }
    }
    if (bench_path.empty() || baseline_path.empty()) {
        std::fprintf(stderr, "error: --bench and --baseline are required\n");
        return 2;
    }

    auto bench = LoadJsonFile(bench_path);
    if (!bench.ok()) {
        std::fprintf(stderr, "error reading %s: %s\n", bench_path.c_str(),
                     bench.status().ToString().c_str());
        return 2;
    }
    auto baseline = LoadJsonFile(baseline_path);
    if (!baseline.ok()) {
        std::fprintf(stderr, "error reading %s: %s\n", baseline_path.c_str(),
                     baseline.status().ToString().c_str());
        return 2;
    }

    // Gauges live at .metrics.gauges in a RunReport document.
    const dfp::obs::JsonValue* metrics = bench->Find("metrics");
    const dfp::obs::JsonValue* gauges =
        metrics != nullptr ? metrics->Find("gauges") : nullptr;
    if (gauges == nullptr || !gauges->is_object()) {
        std::fprintf(stderr, "error: %s has no .metrics.gauges object\n",
                     bench_path.c_str());
        return 2;
    }
    const dfp::obs::JsonValue* checks = baseline->Find("metrics");
    if (checks == nullptr || !checks->is_object()) {
        std::fprintf(stderr, "error: %s has no .metrics object\n",
                     baseline_path.c_str());
        return 2;
    }

    int violations = 0;
    int checked = 0;
    for (const auto& [name, bounds] : checks->object()) {
        const dfp::obs::JsonValue* actual = gauges->Find(name);
        if (actual == nullptr || !actual->is_number()) {
            std::printf("FAIL  %-45s missing from %s\n", name.c_str(),
                        bench_path.c_str());
            ++violations;
            continue;
        }
        const double v = actual->number();
        const dfp::obs::JsonValue* lo = bounds.Find("min");
        const dfp::obs::JsonValue* hi = bounds.Find("max");
        bool ok = true;
        std::string why;
        if (lo != nullptr && lo->is_number() && v < lo->number()) {
            ok = false;
            why = "< min " + std::to_string(lo->number());
        }
        if (hi != nullptr && hi->is_number() && v > hi->number()) {
            ok = false;
            why = "> max " + std::to_string(hi->number());
        }
        ++checked;
        if (ok) {
            std::printf("ok    %-45s %g\n", name.c_str(), v);
        } else {
            std::printf("FAIL  %-45s %g %s\n", name.c_str(), v, why.c_str());
            ++violations;
        }
    }
    if (checked == 0 && violations == 0) {
        std::fprintf(stderr, "error: baseline lists no metrics\n");
        return 2;
    }
    std::printf("%d checked, %d violations\n", checked, violations);
    return violations == 0 ? 0 : 1;
}
