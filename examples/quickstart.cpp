// Quickstart: train a frequent-pattern classifier in ~40 lines.
//
//   1. get a class-labelled transaction database (here: synthetic data),
//   2. configure the pipeline (min_sup, MMRFS coverage δ),
//   3. train any learner on the augmented feature space I ∪ Fs,
//   4. predict.
//
// Build & run:  ./build/examples/quickstart
// With a machine-readable run report (metrics + nested phase timings):
//               ./build/examples/quickstart --report out.json
// With an execution budget (graceful degradation instead of runaway mining):
//               ./build/examples/quickstart --time-budget-ms 200 --max-patterns 5000
// Parallel mining/selection/training (results identical at any thread count;
// default 0 = one worker per hardware thread):
//               ./build/examples/quickstart --threads 4
// Serving smoke path (save → load → in-process scoring engine → verify the
// served predictions match offline exactly):
//               ./build/examples/quickstart --serve
// Statistical-significance filter in front of MMRFS (chi2 | fisher | odds,
// multiple-testing correction across the candidate set; DESIGN.md §18):
//               ./build/examples/quickstart --sig-test=chi2 --alpha 0.05 --correction=bh
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "core/model_io.hpp"
#include "core/pipeline.hpp"
#include "obs/export.hpp"
#include "data/encoder.hpp"
#include "data/synthetic.hpp"
#include "ml/svm/svm.hpp"
#include "obs/report.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

int main(int argc, char** argv) {
    using namespace dfp;

    // Optional flags:
    //   --report <path>          dump a JSON run report (metrics/guard/spans)
    //   --time-budget-ms <ms>    wall-clock budget for the whole Train
    //   --max-patterns <n>       cap on mined pattern candidates
    //   --threads <n>            worker threads (0 = hardware_concurrency)
    //   --metrics-out <path>     final Prometheus snapshot of every dfp.*
    //                            metric (atomic write; point a file-based
    //                            scraper at it)
    //   --sig-test <t>           significance filter: none|chi2|fisher|odds
    //   --alpha <a>              significance level (default 0.05)
    //   --correction <c>         multiple-testing correction: none|bonferroni|bh
    std::string report_path;
    std::string metrics_out;
    std::string sig_test = "none";
    std::string correction = "bh";
    double alpha = 0.05;
    double time_budget_ms = -1.0;
    std::size_t max_patterns = 0;
    std::size_t threads = 0;
    bool serve = false;
    auto flag_value = [&](int& i, const char* flag) -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "error: %s requires a value\n", flag);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--report") == 0) {
            report_path = flag_value(i, "--report");
        } else if (std::strncmp(argv[i], "--report=", 9) == 0) {
            report_path = argv[i] + 9;
        } else if (std::strcmp(argv[i], "--time-budget-ms") == 0) {
            time_budget_ms = std::atof(flag_value(i, "--time-budget-ms"));
        } else if (std::strncmp(argv[i], "--time-budget-ms=", 17) == 0) {
            time_budget_ms = std::atof(argv[i] + 17);
        } else if (std::strcmp(argv[i], "--max-patterns") == 0) {
            max_patterns = static_cast<std::size_t>(
                std::strtoull(flag_value(i, "--max-patterns"), nullptr, 10));
        } else if (std::strncmp(argv[i], "--max-patterns=", 15) == 0) {
            max_patterns = static_cast<std::size_t>(
                std::strtoull(argv[i] + 15, nullptr, 10));
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            threads = static_cast<std::size_t>(
                std::strtoull(flag_value(i, "--threads"), nullptr, 10));
        } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
            threads = static_cast<std::size_t>(
                std::strtoull(argv[i] + 10, nullptr, 10));
        } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
            metrics_out = flag_value(i, "--metrics-out");
        } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
            metrics_out = argv[i] + 14;
        } else if (std::strcmp(argv[i], "--sig-test") == 0) {
            sig_test = flag_value(i, "--sig-test");
        } else if (std::strncmp(argv[i], "--sig-test=", 11) == 0) {
            sig_test = argv[i] + 11;
        } else if (std::strcmp(argv[i], "--alpha") == 0) {
            alpha = std::atof(flag_value(i, "--alpha"));
        } else if (std::strncmp(argv[i], "--alpha=", 8) == 0) {
            alpha = std::atof(argv[i] + 8);
        } else if (std::strcmp(argv[i], "--correction") == 0) {
            correction = flag_value(i, "--correction");
        } else if (std::strncmp(argv[i], "--correction=", 13) == 0) {
            correction = argv[i] + 13;
        } else if (std::strcmp(argv[i], "--serve") == 0) {
            serve = true;
        }
    }
    if (!report_path.empty()) obs::EnableTracing(true);

    // 1. A dataset with hidden multi-attribute structure, split 80/20.
    SyntheticSpec spec;
    spec.name = "quickstart";
    spec.rows = 1000;
    spec.attributes = 12;
    spec.classes = 2;
    spec.seed = 7;
    const Dataset data = GenerateSynthetic(spec);
    const auto encoder = ItemEncoder::FromSchema(data);
    const auto db = TransactionDatabase::FromDataset(data, *encoder);

    std::vector<std::size_t> train_rows;
    std::vector<std::size_t> test_rows;
    for (std::size_t r = 0; r < db.num_transactions(); ++r) {
        (r % 5 == 0 ? test_rows : train_rows).push_back(r);
    }
    const auto train = db.Subset(train_rows);
    const auto test = db.Subset(test_rows);

    // 2. Pipeline: closed patterns at 10% per-class support, MMRFS with δ=4.
    PipelineConfig config;
    config.miner.min_sup_rel = 0.10;
    config.miner.max_pattern_len = 5;
    config.mmrfs.coverage_delta = 4;
    // Execution budget: Train degrades gracefully (min_sup escalation,
    // truncated stages) instead of running away; see pipeline.budget_report().
    config.budget.time_budget_ms = time_budget_ms;
    if (max_patterns > 0) config.budget.max_patterns = max_patterns;
    // 0 = hardware_concurrency; the resolved count lands in the run report
    // as the dfp.parallel.pipeline_threads gauge.
    config.num_threads = threads;
    // Optional significance filter in front of MMRFS: candidates whose
    // 2×2 association with the label fails the corrected test never reach
    // selection (stats/significance.hpp, DESIGN.md §18).
    {
        auto parsed_test = ParseSigTest(sig_test);
        auto parsed_corr = ParseCorrection(correction);
        if (!parsed_test.ok() || !parsed_corr.ok()) {
            std::fprintf(stderr, "error: %s\n",
                         (!parsed_test.ok() ? parsed_test.status()
                                            : parsed_corr.status())
                             .ToString()
                             .c_str());
            return 2;
        }
        config.significance.test = *parsed_test;
        config.significance.alpha = alpha;
        config.significance.correction = *parsed_corr;
    }

    // 3. Train a linear SVM on single items + selected patterns.
    PatternClassifierPipeline pipeline(config);
    const Status st = pipeline.Train(train, std::make_unique<SvmClassifier>());
    if (!st.ok()) {
        std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
        return 1;
    }

    // 4. Evaluate, and peek at what the pipeline built.
    std::printf("candidates mined : %zu closed patterns\n",
                pipeline.stats().num_candidates);
    if (config.significance.test != SigTest::kNone) {
        std::printf("significance     : %s/%s alpha=%g rejected %zu candidates\n",
                    sig_test.c_str(), correction.c_str(), alpha,
                    pipeline.stats().num_sig_rejected);
    }
    std::printf("features selected: %zu patterns (+ %zu single items)\n",
                pipeline.stats().num_selected, train.num_items());
    std::printf("test accuracy    : %.2f%%\n", 100.0 * pipeline.Accuracy(test));

    const BudgetReport& guard = pipeline.budget_report();
    if (guard.degraded()) {
        std::printf("budget           : degraded (mine=%s, select=%s, "
                    "%zu attempt(s), %zu min_sup escalation(s))\n",
                    BudgetBreachName(guard.mine_breach),
                    BudgetBreachName(guard.select_breach), guard.mine_attempts,
                    guard.minsup_escalations);
    }

    // Bonus: what does the pipeline say about one unseen transaction?
    const auto& example = test.transaction(0);
    std::printf("first test row   -> predicted class %u (true %u)\n",
                pipeline.Predict(example), test.label(0));

    // 5. Optional serving smoke path: persist the trained model, publish it
    //    through a ModelRegistry, and score the test split through the
    //    micro-batched ScoringEngine via an in-process ServeClient. The
    //    served accuracy must equal the offline LoadedModel accuracy exactly
    //    — serving is scheduling, never numerics.
    if (serve) {
        std::stringstream bundle;
        Status save = SavePipelineModel(pipeline, bundle);
        if (!save.ok()) {
            std::fprintf(stderr, "save failed: %s\n", save.ToString().c_str());
            return 1;
        }
        auto offline = LoadPipelineModel(bundle);
        if (!offline.ok()) {
            std::fprintf(stderr, "load failed: %s\n",
                         offline.status().ToString().c_str());
            return 1;
        }
        bundle.clear();
        bundle.seekg(0);
        auto served_model = LoadPipelineModel(bundle);
        if (!served_model.ok()) {
            std::fprintf(stderr, "load failed: %s\n",
                         served_model.status().ToString().c_str());
            return 1;
        }

        serve::ModelRegistry registry;
        registry.Install(std::move(*served_model), "quickstart");
        serve::EngineConfig engine_config;
        engine_config.num_threads = threads;
        serve::ScoringEngine engine(registry, engine_config);
        serve::RequestDispatcher dispatcher(registry, engine);
        serve::ServeClient client(dispatcher);

        std::size_t correct = 0;
        for (std::size_t t = 0; t < test.num_transactions(); ++t) {
            auto prediction = client.Predict(test.transaction(t));
            if (!prediction.ok()) {
                std::fprintf(stderr, "serve predict failed: %s\n",
                             prediction.status().ToString().c_str());
                return 1;
            }
            if (prediction->label == test.label(t)) ++correct;
        }
        const double served_accuracy =
            static_cast<double>(correct) /
            static_cast<double>(test.num_transactions());
        const double offline_accuracy = offline->Accuracy(test);
        std::printf("served accuracy  : %.2f%% over %zu requests (model v%llu)\n",
                    100.0 * served_accuracy, test.num_transactions(),
                    static_cast<unsigned long long>(registry.current_version()));
        if (served_accuracy != offline_accuracy) {
            std::fprintf(stderr,
                         "serving mismatch: served %.6f vs offline %.6f\n",
                         served_accuracy, offline_accuracy);
            return 1;
        }
        engine.Stop();
    }

    // 6. Optional run report: every dfp.* metric plus the nested span tree
    //    (train → mine[per-class] → pool_dedup → mmrfs → transform → learn).
    if (!report_path.empty()) {
        const obs::RunReport report = obs::CollectRunReport("quickstart");
        const Status wst = obs::WriteReportJsonFile(report, report_path);
        if (!wst.ok()) {
            std::fprintf(stderr, "report failed: %s\n", wst.ToString().c_str());
            return 1;
        }
        std::printf("run report       : wrote %s (%zu metrics)\n",
                    report_path.c_str(), report.metrics.TotalMetrics());
    }

    // 7. Optional Prometheus snapshot: the same text exposition a live
    //    dfp_serve --metrics-port would serve, flushed once at exit.
    if (!metrics_out.empty()) {
        const Status mst = obs::WritePrometheusFile(metrics_out);
        if (!mst.ok()) {
            std::fprintf(stderr, "metrics failed: %s\n", mst.ToString().c_str());
            return 1;
        }
        std::printf("metrics          : wrote %s\n", metrics_out.c_str());
    }
    return 0;
}
