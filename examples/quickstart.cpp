// Quickstart: train a frequent-pattern classifier in ~40 lines.
//
//   1. get a class-labelled transaction database (here: synthetic data),
//   2. configure the pipeline (min_sup, MMRFS coverage δ),
//   3. train any learner on the augmented feature space I ∪ Fs,
//   4. predict.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/pipeline.hpp"
#include "data/encoder.hpp"
#include "data/synthetic.hpp"
#include "ml/svm/svm.hpp"

int main() {
    using namespace dfp;

    // 1. A dataset with hidden multi-attribute structure, split 80/20.
    SyntheticSpec spec;
    spec.name = "quickstart";
    spec.rows = 1000;
    spec.attributes = 12;
    spec.classes = 2;
    spec.seed = 7;
    const Dataset data = GenerateSynthetic(spec);
    const auto encoder = ItemEncoder::FromSchema(data);
    const auto db = TransactionDatabase::FromDataset(data, *encoder);

    std::vector<std::size_t> train_rows;
    std::vector<std::size_t> test_rows;
    for (std::size_t r = 0; r < db.num_transactions(); ++r) {
        (r % 5 == 0 ? test_rows : train_rows).push_back(r);
    }
    const auto train = db.Subset(train_rows);
    const auto test = db.Subset(test_rows);

    // 2. Pipeline: closed patterns at 10% per-class support, MMRFS with δ=4.
    PipelineConfig config;
    config.miner.min_sup_rel = 0.10;
    config.miner.max_pattern_len = 5;
    config.mmrfs.coverage_delta = 4;

    // 3. Train a linear SVM on single items + selected patterns.
    PatternClassifierPipeline pipeline(config);
    const Status st = pipeline.Train(train, std::make_unique<SvmClassifier>());
    if (!st.ok()) {
        std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
        return 1;
    }

    // 4. Evaluate, and peek at what the pipeline built.
    std::printf("candidates mined : %zu closed patterns\n",
                pipeline.stats().num_candidates);
    std::printf("features selected: %zu patterns (+ %zu single items)\n",
                pipeline.stats().num_selected, train.num_items());
    std::printf("test accuracy    : %.2f%%\n", 100.0 * pipeline.Accuracy(test));

    // Bonus: what does the pipeline say about one unseen transaction?
    const auto& example = test.transaction(0);
    std::printf("first test row   -> predicted class %u (true %u)\n",
                pipeline.Predict(example), test.label(0));
    return 0;
}
