// A mini Table-1-style study on one synthetic UCI dataset: all five model
// variants (Item_All / Item_FS / Item_RBF / Pat_All / Pat_FS) under the SVM
// and C4.5 learners, with 10-fold cross validation.
//
// Usage: uci_study [dataset] [folds]
//   dataset — one of the registry names (austral, breast, sonar, iris, ...);
//             default "austral"
//   folds   — CV folds (default 10)
#include <cstdio>
#include <cstdlib>

#include "exp/experiment.hpp"
#include "common/string_util.hpp"
#include "exp/table_printer.hpp"

int main(int argc, char** argv) {
    using namespace dfp;

    const std::string name = argc > 1 ? argv[1] : "austral";
    auto spec = GetSpecByName(name);
    if (!spec.ok()) {
        std::fprintf(stderr, "%s\nknown datasets:", spec.status().ToString().c_str());
        for (const auto& s : UciTableSpecs()) std::fprintf(stderr, " %s", s.name.c_str());
        std::fprintf(stderr, " chess waveform letter\n");
        return 1;
    }

    ExperimentConfig config;
    config.folds = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 10;

    const auto db = PrepareTransactions(*spec);
    std::printf("dataset %s: %zu rows, %zu items, %zu classes\n\n",
                spec->name.c_str(), db.num_transactions(), db.num_items(),
                db.num_classes());

    TablePrinter table({"variant", "svm acc %", "c4.5 acc %", "#cand", "#sel"});
    for (ModelVariant variant :
         {ModelVariant::kItemAll, ModelVariant::kItemFs, ModelVariant::kItemRbf,
          ModelVariant::kPatAll, ModelVariant::kPatFs}) {
        const auto svm = RunVariantCv(db, variant, LearnerKind::kSvmLinear, config);
        const auto c45 = RunVariantCv(db, variant, LearnerKind::kC45, config);
        table.AddRow({ModelVariantName(variant),
                      svm.ok ? FormatPercent(svm.accuracy) : svm.error,
                      c45.ok ? FormatPercent(c45.accuracy) : c45.error,
                      StrFormat("%.0f", svm.mean_candidates),
                      StrFormat("%.0f", svm.mean_selected)});
    }
    table.Print();
    return 0;
}
