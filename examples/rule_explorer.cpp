// Pattern-analysis workbench: mine closed patterns from a dataset, rank them
// by information gain / Fisher score against their theoretical upper bounds,
// run MMRFS, and report the selected set with coverage statistics.
//
// Usage: rule_explorer [dataset] [min_sup_rel] [delta]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/bounds.hpp"
#include "core/measures.hpp"
#include "core/mmrfs.hpp"
#include "core/pipeline.hpp"
#include "exp/experiment.hpp"
#include "common/string_util.hpp"
#include "exp/table_printer.hpp"

int main(int argc, char** argv) {
    using namespace dfp;

    const std::string name = argc > 1 ? argv[1] : "breast";
    const double min_sup = argc > 2 ? std::atof(argv[2]) : 0.15;
    const std::size_t delta =
        argc > 3 ? static_cast<std::size_t>(std::atol(argv[3])) : 3;

    auto spec = GetSpecByName(name);
    if (!spec.ok()) {
        std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
        return 1;
    }
    const auto db = PrepareTransactions(*spec);
    std::printf("dataset %s: %zu rows, %zu items, %zu classes\n", name.c_str(),
                db.num_transactions(), db.num_items(), db.num_classes());

    PipelineConfig config;
    config.miner.min_sup_rel = min_sup;
    config.miner.max_pattern_len = 5;
    PatternClassifierPipeline pipeline(config);
    auto mined = pipeline.MineCandidates(db);
    if (!mined.ok()) {
        std::fprintf(stderr, "mining failed: %s\n", mined.status().ToString().c_str());
        return 1;
    }
    std::vector<Pattern> patterns = std::move(*mined);
    std::printf("mined %zu closed pattern candidates at min_sup=%.2f\n\n",
                patterns.size(), min_sup);

    // Rank by IG; show the top 10 against the theoretical bound.
    std::vector<std::size_t> order(patterns.size());
    std::vector<double> ig(patterns.size());
    for (std::size_t i = 0; i < patterns.size(); ++i) {
        order[i] = i;
        ig[i] = PatternRelevance(RelevanceMeasure::kInfoGain, db, patterns[i]);
    }
    std::sort(order.begin(), order.end(),
              [&ig](std::size_t a, std::size_t b) { return ig[a] > ig[b]; });

    const auto priors = db.ClassPriors();
    TablePrinter top({"pattern", "support", "IG", "IG_ub(theta)", "conf"});
    for (std::size_t k = 0; k < std::min<std::size_t>(10, order.size()); ++k) {
        const Pattern& p = patterns[order[k]];
        const double theta = p.RelativeSupport(db.num_transactions());
        top.AddRow({ItemsetToString(p.items, &db), StrFormat("%zu", p.support),
                    StrFormat("%.4f", ig[order[k]]),
                    StrFormat("%.4f", IgUpperBoundMulticlass(theta, priors)),
                    StrFormat("%.2f", p.Confidence())});
    }
    std::puts("top-10 patterns by information gain:");
    top.Print();

    // MMRFS selection with coverage stats.
    MmrfsConfig mmrfs;
    mmrfs.coverage_delta = delta;
    const auto result = RunMmrfs(db, patterns, mmrfs);
    std::printf("\nMMRFS (delta=%zu) selected %zu of %zu patterns\n", delta,
                result.selected.size(), patterns.size());
    std::size_t fully = 0;
    for (std::size_t c : result.coverage) fully += (c >= delta);
    std::printf("instances covered >= delta times: %zu / %zu\n", fully,
                db.num_transactions());

    TablePrinter sel({"#", "pattern", "gain", "majority class"});
    for (std::size_t k = 0;
         k < std::min<std::size_t>(10, result.selected.size()); ++k) {
        const Pattern& p = patterns[result.selected[k]];
        sel.AddRow({StrFormat("%zu", k + 1), ItemsetToString(p.items, &db),
                    StrFormat("%.4f", result.gains[k]),
                    StrFormat("%u", p.MajorityClass())});
    }
    std::puts("\nfirst selections (in MMRFS order):");
    sel.Print();
    return 0;
}
