// The paper's §3.1.1 motivation, run end to end.
//
// XOR data is the canonical case where no single feature carries any class
// information, yet the feature *combination* separates the classes perfectly.
// This demo shows the single-feature information gains (all ≈ 0), the pattern
// information gains (≈ 1 bit), and the accuracy gap between an items-only
// linear SVM and the frequent-pattern pipeline.
#include <cstdio>

#include "core/measures.hpp"
#include "core/pipeline.hpp"
#include "data/encoder.hpp"
#include "data/synthetic.hpp"
#include "ml/eval/feature_filter.hpp"
#include "ml/svm/svm.hpp"

int main() {
    using namespace dfp;

    const Dataset data = GenerateXor(/*rows=*/800, /*distractors=*/3,
                                     /*noise=*/0.02, /*seed=*/42);
    const auto encoder = ItemEncoder::FromSchema(data);
    const auto db = TransactionDatabase::FromDataset(data, *encoder);

    std::puts("== Single features (items) ==");
    const auto item_ig = ItemRelevances(db, RelevanceMeasure::kInfoGain);
    for (ItemId i = 0; i < db.num_items(); ++i) {
        std::printf("  IG(%-10s) = %.4f bits\n", db.ItemName(i).c_str(),
                    item_ig[i]);
    }

    std::puts("\n== Length-2 frequent patterns over {x, y} ==");
    PipelineConfig config;
    config.miner.min_sup_rel = 0.1;
    config.miner.max_pattern_len = 2;
    config.mmrfs.coverage_delta = 2;
    PatternClassifierPipeline pipeline(config);
    auto candidates = pipeline.MineCandidates(db);
    if (!candidates.ok()) {
        std::fprintf(stderr, "%s\n", candidates.status().ToString().c_str());
        return 1;
    }
    for (const Pattern& p : *candidates) {
        const double ig = PatternRelevance(RelevanceMeasure::kInfoGain, db, p);
        if (ig > 0.2) {
            std::printf("  IG(%-24s) = %.4f bits  support=%zu\n",
                        ItemsetToString(p.items, &db).c_str(), ig, p.support);
        }
    }

    std::puts("\n== Classification ==");
    // Items-only linear SVM: stuck at chance.
    PipelineConfig no_patterns = config;
    no_patterns.miner.min_sup_rel = 0.999;
    PatternClassifierPipeline items_only(no_patterns);
    (void)items_only.Train(db, std::make_unique<SvmClassifier>());
    std::printf("  linear SVM, items only        : %.1f%%\n",
                100.0 * items_only.Accuracy(db));

    // Pattern pipeline: separable.
    PatternClassifierPipeline with_patterns(config);
    (void)with_patterns.Train(db, std::make_unique<SvmClassifier>());
    std::printf("  linear SVM, items + patterns  : %.1f%%\n",
                100.0 * with_patterns.Accuracy(db));
    return 0;
}
