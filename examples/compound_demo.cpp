// The paper's second §6 extension direction: frequent-pattern-based
// classification of labeled graphs — the chemical-compound setting of its
// reference [7] (Deshpande et al.). Molecule-like random graphs carry hidden
// per-class "functional group" path motifs; the pipeline mines frequent
// labeled paths per class, MMR-selects the discriminative ones, and an SVM
// learns on "atom counts ∪ selected paths".
#include <cstdio>

#include "core/graph_pipeline.hpp"
#include "ml/svm/svm.hpp"

int main() {
    using namespace dfp;

    GraphSpec spec;
    spec.rows = 500;
    spec.classes = 2;
    spec.vertex_labels = 8;   // "atom types"
    spec.edge_labels = 3;     // "bond types"
    spec.motifs_per_class = 2;
    spec.motif_edges = 3;
    spec.carrier_prob = 0.85;
    spec.seed = 21;
    const GraphDatabase db = GenerateGraphs(spec);

    std::vector<std::size_t> train_rows;
    std::vector<std::size_t> test_rows;
    for (std::size_t i = 0; i < db.size(); ++i) {
        (i % 5 == 0 ? test_rows : train_rows).push_back(i);
    }
    const auto train = db.Subset(train_rows);
    const auto test = db.Subset(test_rows);

    GraphPipelineConfig config;
    config.miner.min_sup_rel = 0.25;
    config.miner.max_edges = 3;
    config.max_features = 60;

    GraphClassifierPipeline pipeline(config);
    const Status st = pipeline.Train(train, std::make_unique<SvmClassifier>());
    if (!st.ok()) {
        std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
        return 1;
    }

    std::printf("path candidates: %zu, selected: %zu\n", pipeline.num_candidates(),
                pipeline.features().size());
    std::puts("top selected path features (IG relevance):");
    for (std::size_t f = 0;
         f < std::min<std::size_t>(5, pipeline.features().size()); ++f) {
        const auto& feature = pipeline.features()[f];
        std::printf("  %-28s support=%zu  IG=%.3f\n",
                    feature.pattern.ToString().c_str(), feature.pattern.support,
                    feature.relevance);
    }
    std::printf("test accuracy: %.2f%%\n", 100.0 * pipeline.Accuracy(test));
    return 0;
}
