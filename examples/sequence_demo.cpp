// The paper's §6 extension: frequent-pattern-based classification over
// sequences. Hidden per-class motifs are planted into random event sequences;
// PrefixSpan mines frequent subsequences per class, MMR selection keeps the
// discriminative ones, and an SVM learns on "events ∪ subsequences".
#include <cstdio>

#include "core/sequence_pipeline.hpp"
#include "ml/svm/svm.hpp"

int main() {
    using namespace dfp;

    SequenceSpec spec;
    spec.rows = 800;
    spec.classes = 3;
    spec.alphabet = 14;
    spec.motifs_per_class = 2;
    spec.motif_len = 3;
    spec.carrier_prob = 0.8;
    spec.seed = 11;
    const SequenceDatabase db = GenerateSequences(spec);

    // 80/20 split.
    std::vector<std::size_t> train_rows;
    std::vector<std::size_t> test_rows;
    for (std::size_t i = 0; i < db.size(); ++i) {
        (i % 5 == 0 ? test_rows : train_rows).push_back(i);
    }
    const auto train = db.Subset(train_rows);
    const auto test = db.Subset(test_rows);

    SequencePipelineConfig config;
    config.miner.min_sup_rel = 0.25;
    config.miner.max_pattern_len = 4;
    config.max_features = 80;

    SequenceClassifierPipeline pipeline(config);
    const Status st = pipeline.Train(train, std::make_unique<SvmClassifier>());
    if (!st.ok()) {
        std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
        return 1;
    }

    std::printf("subsequence candidates: %zu, selected: %zu\n",
                pipeline.num_candidates(), pipeline.features().size());
    std::puts("top selected subsequences (IG relevance):");
    for (std::size_t f = 0; f < std::min<std::size_t>(5, pipeline.features().size());
         ++f) {
        const auto& feature = pipeline.features()[f];
        std::printf("  <");
        for (std::size_t i = 0; i < feature.items.size(); ++i) {
            std::printf("%s%u", i ? " " : "", feature.items[i]);
        }
        std::printf(">  support=%zu  IG=%.3f\n", feature.support, feature.relevance);
    }
    std::printf("test accuracy: %.2f%%\n", 100.0 * pipeline.Accuracy(test));
    return 0;
}
