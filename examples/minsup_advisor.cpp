// The Section 3.2 min_sup setting strategy as an interactive tool.
//
// Usage: minsup_advisor [p] [IG0] [n]
//   p   — positive-class prior (default 0.4)
//   IG0 — information-gain filtering threshold (default 0.05 bits)
//   n   — training set size (default 1000)
//
// Prints the theoretical IG upper-bound curve as ASCII art, the recommended
// θ* = argmax_θ {IG_ub(θ) ≤ IG0}, and the equivalent absolute min_sup.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/bounds.hpp"
#include "core/minsup_strategy.hpp"

int main(int argc, char** argv) {
    using namespace dfp;

    const double p = argc > 1 ? std::atof(argv[1]) : 0.4;
    const double ig0 = argc > 2 ? std::atof(argv[2]) : 0.05;
    const std::size_t n =
        argc > 3 ? static_cast<std::size_t>(std::atol(argv[3])) : 1000;
    if (p <= 0.0 || p >= 1.0) {
        std::fprintf(stderr, "prior p must be in (0,1)\n");
        return 1;
    }

    std::printf("class prior p = %.3f, IG threshold IG0 = %.3f bits, n = %zu\n\n",
                p, ig0, n);

    // ASCII plot of IG_ub(θ): 61 support samples, 40-char bars.
    std::puts("theta    IG_ub(theta)");
    for (int i = 0; i <= 60; i += 2) {
        const double theta = i / 60.0;
        const double bound = IgUpperBound(theta, p);
        const int bar = static_cast<int>(bound * 40.0 + 0.5);
        std::printf("%5.3f  %6.3f  |%s%s\n", theta, bound,
                    std::string(static_cast<std::size_t>(bar), '#').c_str(),
                    bound <= ig0 ? "   <= IG0" : "");
    }

    const auto rec = RecommendMinSup(ig0, {p, 1.0 - p}, n);
    std::printf("\nrecommended theta* = %.4f  (IG_ub(theta*) = %.4f <= IG0)\n",
                rec.theta_star, rec.bound_at_theta_star);
    std::printf("=> mine with min_sup = %zu of %zu transactions\n",
                rec.min_sup_abs, n);
    std::printf(
        "every pattern with support <= theta* would be rejected by the IG0\n"
        "filter anyway, so mining at this threshold loses no candidate.\n");

    const auto fisher = RecommendMinSupFisher(0.1, {p, 1.0 - p}, n);
    std::printf("\n(Fisher-score variant at F0 = 0.1: theta* = %.4f, min_sup = %zu)\n",
                fisher.theta_star, fisher.min_sup_abs);
    return 0;
}
