#include "stats/dist.hpp"

#include <array>
#include <cmath>
#include <limits>

namespace dfp {
namespace stats {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
// Series / continued-fraction convergence: stop when the running term no
// longer moves the sum at double precision.
constexpr double kConvergeEps = 1e-16;
constexpr int kMaxIter = 1000;
constexpr double kSqrt2Pi = 2.5066282746310005024;
constexpr double kLnPi = 1.1447298858494001741;
constexpr double kSqrt1_2 = 0.70710678118654752440;

// Series expansion of P(a, x), convergent (and fast) for x < a + 1:
// P(a, x) = x^a e^-x / Γ(a+1) · Σ_{n>=0} x^n / ((a+1)...(a+n)).
double GammaPSeries(double a, double x) {
    double term = 1.0 / a;
    double sum = term;
    for (int n = 1; n < kMaxIter; ++n) {
        term *= x / (a + static_cast<double>(n));
        sum += term;
        if (std::fabs(term) < std::fabs(sum) * kConvergeEps) break;
    }
    return sum * std::exp(a * std::log(x) - x - LogGamma(a));
}

// Lentz's continued fraction for Q(a, x), convergent for x >= a + 1:
// Q(a, x) = x^a e^-x / Γ(a) · 1/(x+1-a- 1·(1-a)/(x+3-a- 2·(2-a)/(...))).
double GammaQContinuedFraction(double a, double x) {
    constexpr double kTiny = 1e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / kTiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i < kMaxIter; ++i) {
        const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < kTiny) d = kTiny;
        c = b + an / c;
        if (std::fabs(c) < kTiny) c = kTiny;
        d = 1.0 / d;
        const double delta = d * c;
        h *= delta;
        if (std::fabs(delta - 1.0) < kConvergeEps) break;
    }
    return std::exp(a * std::log(x) - x - LogGamma(a)) * h;
}

}  // namespace

double LogGamma(double x) {
    if (std::isnan(x)) return x;
    if (x == 0.0) return kInf;
    if (x < 0.5) {
        // Reflection lnΓ(x) = ln π − ln|sin πx| − lnΓ(1−x) keeps the Lanczos
        // argument in its accurate range; negative integers are poles
        // (checked explicitly — sin(πx) rounds to a nonzero double there).
        if (x < 0.0 && x == std::floor(x)) return kNan;
        const double s = std::sin(M_PI * x);
        if (s == 0.0) return kNan;
        return kLnPi - std::log(std::fabs(s)) - LogGamma(1.0 - x);
    }
    // Lanczos approximation, g = 7, 9 coefficients (rel err < 1e-13).
    static constexpr double kCoef[9] = {
        0.99999999999980993,      676.5203681218851,     -1259.1392167224028,
        771.32342877765313,      -176.61502916214059,    12.507343278686905,
        -0.13857109526572012,    9.9843695780195716e-6,  1.5056327351493116e-7};
    const double z = x - 1.0;
    double sum = kCoef[0];
    for (int i = 1; i < 9; ++i) {
        sum += kCoef[i] / (z + static_cast<double>(i));
    }
    const double t = z + 7.5;  // z + g + 1/2
    return std::log(kSqrt2Pi) + (z + 0.5) * std::log(t) - t + std::log(sum);
}

double RegularizedGammaP(double a, double x) {
    if (!(a > 0.0) || std::isnan(x) || x < 0.0) return kNan;
    if (x == 0.0) return 0.0;
    if (x < a + 1.0) return GammaPSeries(a, x);
    return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
    if (!(a > 0.0) || std::isnan(x) || x < 0.0) return kNan;
    if (x == 0.0) return 1.0;
    if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
    return GammaQContinuedFraction(a, x);
}

double ChiSquareCdf(double x, double dof) {
    if (!(dof > 0.0) || std::isnan(x)) return kNan;
    if (x <= 0.0) return 0.0;
    return RegularizedGammaP(0.5 * dof, 0.5 * x);
}

double ChiSquareSurvival(double x, double dof) {
    if (!(dof > 0.0) || std::isnan(x)) return kNan;
    if (x <= 0.0) return 1.0;
    return RegularizedGammaQ(0.5 * dof, 0.5 * x);
}

double LogFactorial(std::size_t n) {
    // Cumulative long-double table: each entry adds one logl, so the
    // accumulated rounding stays below 1e-16 relative across the table.
    static constexpr std::size_t kTableSize = 2048;
    static const std::array<double, kTableSize> kTable = [] {
        std::array<double, kTableSize> t{};
        long double acc = 0.0L;
        t[0] = 0.0;
        for (std::size_t i = 1; i < kTableSize; ++i) {
            acc += std::log(static_cast<long double>(i));
            t[i] = static_cast<double>(acc);
        }
        return t;
    }();
    if (n < kTableSize) return kTable[n];
    return LogGamma(static_cast<double>(n) + 1.0);
}

double LogChoose(std::size_t n, std::size_t k) {
    if (k > n) return -kInf;
    return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

namespace {

// Hypergeometric support bounds for (successes, draws, population).
std::size_t HypergeomLow(std::size_t successes, std::size_t draws,
                         std::size_t population) {
    return draws + successes > population ? draws + successes - population : 0;
}

std::size_t HypergeomHigh(std::size_t successes, std::size_t draws) {
    return draws < successes ? draws : successes;
}

}  // namespace

double HypergeomLogPmf(std::size_t k, std::size_t successes, std::size_t draws,
                       std::size_t population) {
    if (successes > population || draws > population) return kNan;
    if (k < HypergeomLow(successes, draws, population) ||
        k > HypergeomHigh(successes, draws)) {
        return -kInf;
    }
    return LogChoose(successes, k) +
           LogChoose(population - successes, draws - k) -
           LogChoose(population, draws);
}

double HypergeomPmf(std::size_t k, std::size_t successes, std::size_t draws,
                    std::size_t population) {
    const double lp = HypergeomLogPmf(k, successes, draws, population);
    if (std::isnan(lp)) return kNan;
    return std::exp(lp);
}

double HypergeomUpperTail(std::size_t k, std::size_t successes,
                          std::size_t draws, std::size_t population) {
    if (successes > population || draws > population) return kNan;
    const std::size_t lo = HypergeomLow(successes, draws, population);
    const std::size_t hi = HypergeomHigh(successes, draws);
    if (k <= lo) return 1.0;
    if (k > hi) return 0.0;
    // Direct sum of exact PMF terms (long-double accumulator): a deep tail
    // keeps its relative precision instead of dissolving into 1 − CDF.
    long double sum = 0.0L;
    for (std::size_t j = hi + 1; j-- > k;) {
        sum += static_cast<long double>(
            std::exp(HypergeomLogPmf(j, successes, draws, population)));
    }
    const double p = static_cast<double>(sum);
    return p > 1.0 ? 1.0 : p;
}

double HypergeomLowerTail(std::size_t k, std::size_t successes,
                          std::size_t draws, std::size_t population) {
    if (successes > population || draws > population) return kNan;
    const std::size_t lo = HypergeomLow(successes, draws, population);
    const std::size_t hi = HypergeomHigh(successes, draws);
    if (k >= hi) return 1.0;
    if (k < lo) return 0.0;
    long double sum = 0.0L;
    for (std::size_t j = lo; j <= k; ++j) {
        sum += static_cast<long double>(
            std::exp(HypergeomLogPmf(j, successes, draws, population)));
    }
    const double p = static_cast<double>(sum);
    return p > 1.0 ? 1.0 : p;
}

double ChiSquareStatistic(const Table2x2& t) {
    const double a = static_cast<double>(t.a);
    const double b = static_cast<double>(t.b);
    const double c = static_cast<double>(t.c);
    const double d = static_cast<double>(t.d);
    const double r1 = a + b;
    const double r0 = c + d;
    const double c1 = a + c;
    const double c0 = b + d;
    if (r1 == 0.0 || r0 == 0.0 || c1 == 0.0 || c0 == 0.0) return 0.0;
    const double n = r1 + r0;
    const double diff = a * d - b * c;
    return n * diff * diff / (r1 * r0 * c1 * c0);
}

double FisherExactGreater(const Table2x2& t) {
    return HypergeomUpperTail(t.a, t.col1(), t.row1(), t.n());
}

double FisherExactLess(const Table2x2& t) {
    return HypergeomLowerTail(t.a, t.col1(), t.row1(), t.n());
}

double FisherExactTwoSided(const Table2x2& t) {
    const std::size_t successes = t.col1();
    const std::size_t draws = t.row1();
    const std::size_t population = t.n();
    if (population == 0) return 1.0;
    const std::size_t lo = HypergeomLow(successes, draws, population);
    const std::size_t hi = HypergeomHigh(successes, draws);
    // Method of small p-values (R's fisher.test): sum every outcome at most
    // as likely as the observed one, with a 1 + 1e-7 slack for ties that
    // differ only by rounding.
    const double observed = HypergeomLogPmf(t.a, successes, draws, population);
    const double cutoff = observed + 1e-7;
    long double sum = 0.0L;
    for (std::size_t j = lo; j <= hi; ++j) {
        const double lp = HypergeomLogPmf(j, successes, draws, population);
        if (lp <= cutoff) sum += static_cast<long double>(std::exp(lp));
    }
    const double p = static_cast<double>(sum);
    return p > 1.0 ? 1.0 : p;
}

double Erf(double x) {
    if (std::isnan(x)) return x;
    if (x < 0.0) return -Erf(-x);
    if (x == 0.0) return 0.0;
    const double x2 = x * x;
    if (x2 < 1.5) return GammaPSeries(0.5, x2);
    return 1.0 - GammaQContinuedFraction(0.5, x2);
}

double Erfc(double x) {
    if (std::isnan(x)) return x;
    if (x < 0.0) return 2.0 - Erfc(-x);
    const double x2 = x * x;
    if (x2 < 1.5) return 1.0 - (x == 0.0 ? 0.0 : GammaPSeries(0.5, x2));
    return GammaQContinuedFraction(0.5, x2);
}

double NormalCdf(double z) { return 0.5 * Erfc(-z * kSqrt1_2); }

double NormalSurvival(double z) { return 0.5 * Erfc(z * kSqrt1_2); }

double NormalQuantile(double p) {
    if (std::isnan(p) || p < 0.0 || p > 1.0) return kNan;
    if (p == 0.0) return -kInf;
    if (p == 1.0) return kInf;
    // Acklam's rational initializer (rel err ~1.15e-9 over (0, 1)).
    static constexpr double kA[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                     -2.759285104469687e+02, 1.383577518672690e+02,
                                     -3.066479806614716e+01, 2.506628277459239e+00};
    static constexpr double kB[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                     -1.556989798598866e+02, 6.680131188771972e+01,
                                     -1.328068155288572e+01};
    static constexpr double kC[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                     -2.400758277161838e+00, -2.549732539343734e+00,
                                     4.374664141464968e+00,  2.938163982698783e+00};
    static constexpr double kD[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                                     2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double kPLow = 0.02425;
    double x;
    if (p < kPLow) {
        const double q = std::sqrt(-2.0 * std::log(p));
        x = (((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q +
             kC[5]) /
            ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
    } else if (p <= 1.0 - kPLow) {
        const double q = p - 0.5;
        const double r = q * q;
        x = (((((kA[0] * r + kA[1]) * r + kA[2]) * r + kA[3]) * r + kA[4]) * r +
             kA[5]) *
            q /
            (((((kB[0] * r + kB[1]) * r + kB[2]) * r + kB[3]) * r + kB[4]) * r +
             1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q +
              kC[5]) /
            ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
    }
    // One Halley step against our own CDF lifts the initializer to full
    // double precision: e/φ(x) is the Newton step, the denominator the
    // second-order correction.
    const double e = NormalCdf(x) - p;
    const double u = e * kSqrt2Pi * std::exp(0.5 * x * x);
    if (std::isfinite(u)) x -= u / (1.0 + 0.5 * x * u);
    return x;
}

}  // namespace stats
}  // namespace dfp
