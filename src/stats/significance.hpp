// Statistical-significance filter over mined pattern candidates
// (DESIGN.md §18).
//
// MMRFS keeps patterns by marginal gain, but a gain barely above zero can be
// pure sampling noise ("Statistically Significant Discriminative Patterns
// Searching", PAPERS.md). This stage tests each candidate's 2×2 one-vs-rest
// contingency table — pattern presence X against its own majority class — for
// association with the label, corrects the whole candidate set for multiple
// testing, and hands MMRFS a keep-mask. Patterns that fail are never scored
// or selected; with SigTest::kNone the stage is skipped entirely and the
// pipeline is bit-identical to the unfiltered path (certified by
// tests/stats/significance_test.cpp).
//
// All three tests reduce to a p-value, so one correction pass covers them:
//  * kChi2      Pearson chi-square statistic (1 dof) → ChiSquareSurvival.
//  * kFisher    Fisher exact one-sided (greater): exact hypergeometric tail,
//               preferable for small cells where chi-square's asymptotics lie.
//  * kOddsRatio z-test that the odds ratio exceeds `min_odds_ratio`
//               (Haldane–Anscombe +0.5 smoothing; p = NormalSurvival(z)).
//               min_odds_ratio = 1 tests plain positive association; larger
//               values demand a minimum effect *size*, not just existence.
//
// The p-value scan fans out over the slotted ThreadPool exactly like the
// MMRFS relevance scan (disjoint per-candidate slots → bit-identical at any
// thread count; 20-seed certificate in tests/stats/stats_determinism_test.cpp)
// and is budget/cancel aware: a fired CancelToken propagates kCancelled; any
// other breach fails *open* (keeps every candidate, records the guard event)
// because dropping patterns on a deadline would silently change the model.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/budget.hpp"
#include "common/status.hpp"
#include "data/transaction_db.hpp"
#include "fpm/itemset.hpp"

namespace dfp {

/// Which per-pattern test to run. kNone disables the stage.
enum class SigTest { kNone, kChi2, kFisher, kOddsRatio };

/// Multiple-testing correction applied across the candidate set.
enum class Correction { kNone, kBonferroni, kBenjaminiHochberg };

const char* SigTestName(SigTest test);
const char* CorrectionName(Correction correction);

/// Parses "none" | "chi2" | "fisher" | "odds" (CLI flag values).
Result<SigTest> ParseSigTest(const std::string& name);
/// Parses "none" | "bonferroni" | "bh".
Result<Correction> ParseCorrection(const std::string& name);

struct SignificanceConfig {
    SigTest test = SigTest::kNone;
    /// Family-wise (Bonferroni) or false-discovery (BH) level.
    double alpha = 0.05;
    Correction correction = Correction::kBenjaminiHochberg;
    /// Null odds ratio for kOddsRatio (ignored by the other tests). 1.0 =
    /// "any positive association"; e.g. 1.5 demands a 50% odds lift.
    double min_odds_ratio = 1.0;
    /// Worker threads for the p-value scan; 1 = serial, 0 = hardware.
    std::size_t num_threads = 1;
    /// Execution limits for the scan (see fail-open semantics above).
    ExecutionBudget budget;
};

struct SignificanceResult {
    /// Per-candidate verdict, indexed like the input (1 = keep).
    std::vector<char> keep;
    /// Raw (uncorrected) p-value per candidate.
    std::vector<double> p_values;
    std::size_t tested = 0;    ///< candidates scanned
    std::size_t rejected = 0;  ///< candidates filtered out (keep == 0)
    /// Effective raw-p cutoff after correction (keep ⇔ p <= threshold).
    double threshold = 0.0;
    /// kNone on a complete scan. kCancelled means the caller must abort;
    /// any other breach means the filter failed open (keep all).
    BudgetBreach breach = BudgetBreach::kNone;
};

/// Raw p-value of one pattern under `test` (exposed for tests and benches).
/// The pattern must have metadata attached against `db`. Degenerate tables
/// (empty/full support, single-class database) return p = 1.
double PatternPValue(SigTest test, const TransactionDatabase& db,
                     const Pattern& pattern, double min_odds_ratio = 1.0);

/// The raw-p keep threshold implied by `correction` over `p_values` at level
/// `alpha`: alpha (none), alpha/m (Bonferroni), or the largest p_(k) with
/// p_(k) <= k·alpha/m (Benjamini–Hochberg; -inf when no k qualifies).
/// Exposed for tests; RunSignificanceFilter applies it internally.
double CorrectionThreshold(const std::vector<double>& p_values,
                           Correction correction, double alpha);

/// Runs the test on every candidate (parallel over config.num_threads),
/// applies the correction, publishes `dfp.stats.*` metrics. Candidates must
/// have metadata attached. With test == kNone returns an all-keep result
/// without touching the registry.
SignificanceResult RunSignificanceFilter(const TransactionDatabase& db,
                                         const std::vector<Pattern>& candidates,
                                         const SignificanceConfig& config);

}  // namespace dfp
