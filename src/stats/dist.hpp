// From-scratch special functions and distribution CDFs (DESIGN.md §18).
//
// The significance layer (stats/significance.hpp) needs exactly four
// distribution families: chi-square (Pearson test), hypergeometric (Fisher
// exact test), normal (odds-ratio z-bound) and the gamma/factorial machinery
// underneath them. Rather than vendoring dcdflib (the classic exemplar, see
// SNIPPETS.md snippet 2) we implement the few functions we need in modern
// C++: every routine below is pure, allocation-free, thread-safe, and
// carries a documented accuracy bound backed by golden tests against
// high-precision (mpmath, 50-digit) reference values
// (tests/stats/dist_test.cpp).
//
// Accuracy bounds (verified by the golden suite; "rel" = relative error):
//  * LogGamma            rel < 1e-13  for x in (0, 1e8]          (Lanczos g=7)
//  * RegularizedGammaP/Q rel < 1e-12  for a in (0, 1e4], typical inputs;
//                        the series/continued-fraction split at x = a+1 keeps
//                        both branches in their convergent regime
//  * ChiSquareCdf/Survival  inherits the gamma bound (rel < 1e-12)
//  * LogFactorial        rel < 1e-14  (long-double cumulative table for
//                        n < 2048, LogGamma above)
//  * HypergeomLogPmf     abs < 1e-11 in log space (nine LogFactorial terms)
//  * FisherExact*        rel < 1e-10  (sums of <= support-size exact PMFs)
//  * Erf/Erfc            rel < 1e-12  for |x| <= 26 (erfc underflows ~x=27)
//  * NormalCdf/Survival  rel < 1e-12  down to p ~ 1e-300
//  * NormalQuantile      rel < 1e-12  for p in [1e-300, 1-1e-16] (Acklam
//                        initializer + one Halley refinement step)
#pragma once

#include <cstddef>

namespace dfp {
namespace stats {

/// ln Γ(x) for x > 0 (Lanczos approximation, g = 7, 9 coefficients; the
/// reflection formula extends it to non-integer x < 0, which the library
/// itself never needs). Returns +inf at x = 0 and NaN for negative integers.
double LogGamma(double x);

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a), a > 0,
/// x >= 0. P is the chi-square CDF workhorse: series expansion for
/// x < a + 1, Lentz continued fraction for the complement otherwise, so the
/// returned branch is always the numerically small/stable one.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Chi-square CDF with `dof` degrees of freedom: P(dof/2, x/2).
double ChiSquareCdf(double x, double dof);

/// Chi-square survival function 1 - CDF, computed directly as Q(dof/2, x/2)
/// so deep tails keep full relative precision (no 1 - CDF cancellation).
double ChiSquareSurvival(double x, double dof);

/// ln n! — cumulative long-double table for n < 2048 (rel < 1e-16 across the
/// table), LogGamma(n + 1) above it.
double LogFactorial(std::size_t n);

/// ln C(n, k); -inf for k > n (the binomial coefficient is 0).
double LogChoose(std::size_t n, std::size_t k);

/// Hypergeometric log-PMF: drawing `draws` objects without replacement from
/// a population of `population` containing `successes` marked objects,
/// ln P[X = k]. Returns -inf outside the support
/// [max(0, draws + successes - population), min(draws, successes)].
double HypergeomLogPmf(std::size_t k, std::size_t successes,
                       std::size_t draws, std::size_t population);

/// P[X = k] (exp of the above; underflows gracefully to 0).
double HypergeomPmf(std::size_t k, std::size_t successes, std::size_t draws,
                    std::size_t population);

/// Upper tail P[X >= k] and lower tail P[X <= k], each a direct sum of exact
/// PMF terms over the support (never 1 - complement, so tiny tails keep
/// relative precision).
double HypergeomUpperTail(std::size_t k, std::size_t successes,
                          std::size_t draws, std::size_t population);
double HypergeomLowerTail(std::size_t k, std::size_t successes,
                          std::size_t draws, std::size_t population);

/// A 2×2 contingency table of a binary feature X against a binary class
/// split C (one-vs-rest in the significance layer):
///
///              C = c   C ≠ c
///   X = 1        a       b      (pattern present)
///   X = 0        c       d      (pattern absent)
struct Table2x2 {
    std::size_t a = 0;
    std::size_t b = 0;
    std::size_t c = 0;
    std::size_t d = 0;

    std::size_t n() const { return a + b + c + d; }
    std::size_t row1() const { return a + b; }  ///< support of X
    std::size_t col1() const { return a + c; }  ///< size of class c
};

/// Pearson chi-square statistic of the table (1 degree of freedom). Returns
/// 0 when any margin is zero (the test is undefined; callers treat the
/// pattern as non-significant).
double ChiSquareStatistic(const Table2x2& t);

/// Fisher exact test p-values on the table's hypergeometric null
/// (margins fixed, X ~ Hypergeom(population=n, successes=col1, draws=row1)):
///  * Greater:  P[X >= a] — "pattern over-represented in class c", the
///    one-sided test the significance filter uses.
///  * Less:     P[X <= a].
///  * TwoSided: sum of all PMFs <= PMF(a)·(1 + 1e-7) over the support —
///    the method-of-small-p-values convention (matches R's fisher.test).
double FisherExactGreater(const Table2x2& t);
double FisherExactLess(const Table2x2& t);
double FisherExactTwoSided(const Table2x2& t);

/// erf/erfc via the incomplete gamma: erf(x) = P(1/2, x²) for x >= 0.
/// erfc stays fully accurate in the far tail (continued-fraction branch).
double Erf(double x);
double Erfc(double x);

/// Standard normal CDF Φ(z) = erfc(-z/√2)/2 and survival 1 - Φ(z) =
/// erfc(z/√2)/2. Computing both through erfc makes the tail symmetry
/// NormalCdf(-z) == NormalSurvival(z) *bitwise*, not just approximate.
double NormalCdf(double z);
double NormalSurvival(double z);

/// Inverse CDF Φ⁻¹(p), p in (0, 1): Acklam's rational approximation
/// (rel ~1e-9) polished by one Halley step against NormalCdf above.
/// Returns ±inf at p = 0 / p = 1.
double NormalQuantile(double p);

}  // namespace stats
}  // namespace dfp
