#include "stats/significance.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>

#include "common/math_util.hpp"
#include "common/parallel.hpp"
#include "core/measures.hpp"
#include "obs/metrics.hpp"
#include "stats/dist.hpp"

namespace dfp {

const char* SigTestName(SigTest test) {
    switch (test) {
        case SigTest::kNone: return "none";
        case SigTest::kChi2: return "chi2";
        case SigTest::kFisher: return "fisher";
        case SigTest::kOddsRatio: return "odds";
    }
    return "unknown";
}

const char* CorrectionName(Correction correction) {
    switch (correction) {
        case Correction::kNone: return "none";
        case Correction::kBonferroni: return "bonferroni";
        case Correction::kBenjaminiHochberg: return "bh";
    }
    return "unknown";
}

Result<SigTest> ParseSigTest(const std::string& name) {
    if (name == "none") return SigTest::kNone;
    if (name == "chi2") return SigTest::kChi2;
    if (name == "fisher") return SigTest::kFisher;
    if (name == "odds") return SigTest::kOddsRatio;
    return Status::InvalidArgument("unknown significance test '" + name +
                                   "' (want none|chi2|fisher|odds)");
}

Result<Correction> ParseCorrection(const std::string& name) {
    if (name == "none") return Correction::kNone;
    if (name == "bonferroni") return Correction::kBonferroni;
    if (name == "bh") return Correction::kBenjaminiHochberg;
    return Status::InvalidArgument("unknown correction '" + name +
                                   "' (want none|bonferroni|bh)");
}

namespace {

// One-sided z-test that the table's odds ratio exceeds `min_odds_ratio`.
// Haldane–Anscombe +0.5 smoothing keeps the estimator and its standard error
// finite on zero cells; p = NormalSurvival(z) of the Wald statistic.
double OddsRatioPValue(const stats::Table2x2& t, double min_odds_ratio) {
    const double a = static_cast<double>(t.a) + 0.5;
    const double b = static_cast<double>(t.b) + 0.5;
    const double c = static_cast<double>(t.c) + 0.5;
    const double d = static_cast<double>(t.d) + 0.5;
    const double log_or = std::log(a) - std::log(b) - std::log(c) + std::log(d);
    const double se = std::sqrt(1.0 / a + 1.0 / b + 1.0 / c + 1.0 / d);
    const double z = (log_or - std::log(min_odds_ratio)) / se;
    return stats::NormalSurvival(z);
}

void FlushSignificanceMetrics(const SignificanceResult& result) {
    auto& registry = obs::Registry::Get();
    static auto& tested_c = registry.GetCounter("dfp.stats.candidates_tested");
    static auto& rejected_c = registry.GetCounter("dfp.stats.rejected");
    static auto& p_h = registry.GetHistogram(
        "dfp.stats.p_value", {1e-10, 1e-6, 1e-4, 0.001, 0.01, 0.05, 0.1, 0.5});
    tested_c.Inc(result.tested);
    rejected_c.Inc(result.rejected);
    double min_p = 1.0;
    for (double p : result.p_values) {
        min_p = std::min(min_p, p);
        p_h.Observe(p);
    }
    std::vector<double> scratch = result.p_values;
    registry.GetGauge("dfp.stats.min_p").Set(min_p);
    registry.GetGauge("dfp.stats.median_p").Set(MedianInPlace(scratch));
    // The raw threshold can be ±inf (BH with no discovery / fail-open);
    // clamp the gauge so report JSON stays finite. 0 = "rejects everything",
    // 1 = "keeps everything".
    registry.GetGauge("dfp.stats.correction_threshold")
        .Set(Clamp(result.threshold, 0.0, 1.0));
    registry.GetGauge("dfp.stats.kept")
        .Set(static_cast<double>(result.tested - result.rejected));
}

}  // namespace

double PatternPValue(SigTest test, const TransactionDatabase& db,
                     const Pattern& pattern, double min_odds_ratio) {
    if (test == SigTest::kNone) return 0.0;  // trivially kept
    const FeatureStats fs = StatsOfPattern(db, pattern);
    // Degenerate margins carry no information: an always/never-present
    // feature or a single-class database cannot discriminate.
    if (fs.n == 0 || fs.support == 0 || fs.support == fs.n) return 1.0;
    const stats::Table2x2 t = OneVsRestTable(fs, pattern.MajorityClass());
    if (t.col1() == 0 || t.col1() == t.n()) return 1.0;
    switch (test) {
        case SigTest::kChi2:
            return stats::ChiSquareSurvival(stats::ChiSquareStatistic(t), 1.0);
        case SigTest::kFisher:
            return stats::FisherExactGreater(t);
        case SigTest::kOddsRatio:
            return OddsRatioPValue(t, min_odds_ratio);
        case SigTest::kNone:
            break;
    }
    return 0.0;
}

double CorrectionThreshold(const std::vector<double>& p_values,
                           Correction correction, double alpha) {
    const double m = static_cast<double>(p_values.size());
    switch (correction) {
        case Correction::kNone:
            return alpha;
        case Correction::kBonferroni:
            return p_values.empty() ? alpha : alpha / m;
        case Correction::kBenjaminiHochberg: {
            if (p_values.empty()) return alpha;
            // Largest k with p_(k) <= k·alpha/m; every p at or below that
            // order statistic is declared a discovery.
            std::vector<double> sorted = p_values;
            std::sort(sorted.begin(), sorted.end());
            for (std::size_t k = sorted.size(); k-- > 0;) {
                if (sorted[k] <= alpha * static_cast<double>(k + 1) / m) {
                    return sorted[k];
                }
            }
            return -std::numeric_limits<double>::infinity();
        }
    }
    return alpha;
}

SignificanceResult RunSignificanceFilter(const TransactionDatabase& db,
                                         const std::vector<Pattern>& candidates,
                                         const SignificanceConfig& config) {
    SignificanceResult result;
    result.keep.assign(candidates.size(), 1);
    if (config.test == SigTest::kNone || candidates.empty()) return result;
    result.p_values.assign(candidates.size(), 1.0);
    result.tested = candidates.size();

    // Parallel p-value scan, structured like the MMRFS relevance scan: each
    // chunk writes only its own disjoint p_values slots (PatternPValue is
    // pure), so the doubles are bit-identical at any thread count. Each
    // chunk polls its own guard on the shared budget/deadline.
    const std::size_t threads =
        std::min(ResolveNumThreads(config.num_threads), candidates.size());
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    std::atomic<int> scan_breach{static_cast<int>(BudgetBreach::kNone)};
    DeadlineTimer timer(config.budget.time_budget_ms);
    ParallelFor(pool.get(), candidates.size(),
                [&](std::size_t begin, std::size_t end) {
                    BudgetGuard guard(TaskBudget(config.budget, timer),
                                      std::numeric_limits<std::size_t>::max(),
                                      /*clock_stride=*/1);
                    for (std::size_t i = begin; i < end; ++i) {
                        assert(candidates[i].cover.size() ==
                                   db.num_transactions() &&
                               "metadata not attached");
                        result.p_values[i] =
                            PatternPValue(config.test, db, candidates[i],
                                          config.min_odds_ratio);
                        if (guard.Check(0) != BudgetBreach::kNone) {
                            scan_breach.store(static_cast<int>(guard.breach()),
                                              std::memory_order_relaxed);
                            return;
                        }
                    }
                });

    const auto breach = static_cast<BudgetBreach>(
        scan_breach.load(std::memory_order_relaxed));
    if (breach != BudgetBreach::kNone) {
        // kCancelled: the caller aborts the train. Anything else fails open —
        // an interrupted scan must not silently drop patterns from the model.
        result.breach = breach;
        result.threshold = std::numeric_limits<double>::infinity();
        RecordBreach("stats.significance", breach,
                     static_cast<double>(candidates.size()));
        if (breach != BudgetBreach::kCancelled) {
            FlushSignificanceMetrics(result);
        }
        return result;
    }

    // The correction runs serially over the finished p-vector, so the keep
    // mask is a deterministic function of the (deterministic) p-values.
    result.threshold =
        CorrectionThreshold(result.p_values, config.correction, config.alpha);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (!(result.p_values[i] <= result.threshold)) {
            result.keep[i] = 0;
            ++result.rejected;
        }
    }
    FlushSignificanceMetrics(result);
    return result;
}

}  // namespace dfp
