// Fixed-size packed bit vector used for transaction cover sets.
//
// Pattern mining and MMRFS work over per-pattern cover sets (which rows of the
// database contain a pattern). Those sets are dense and of fixed universe size
// (the number of transactions), so a 64-bit-packed vector with popcount-based
// intersection counting is both the fastest and the simplest representation.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace dfp {

/// Fixed-universe bit set. All binary operations require equal sizes.
class BitVector {
  public:
    BitVector() = default;
    /// Creates a vector of `size` bits, all clear.
    explicit BitVector(std::size_t size);

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void Set(std::size_t i);
    void Clear(std::size_t i);
    bool Test(std::size_t i) const;

    /// Sets all bits to zero without changing size.
    void Reset();
    /// Sets all bits (respecting the tail mask).
    void Fill();

    /// Number of set bits.
    std::size_t Count() const;

    /// this &= other.
    BitVector& operator&=(const BitVector& other);
    /// this |= other.
    BitVector& operator|=(const BitVector& other);
    /// this ^= other.
    BitVector& operator^=(const BitVector& other);
    /// Clears every bit of this that is set in other (this &= ~other).
    BitVector& AndNot(const BitVector& other);

    friend BitVector operator&(BitVector a, const BitVector& b) { return a &= b; }
    friend BitVector operator|(BitVector a, const BitVector& b) { return a |= b; }
    friend BitVector operator^(BitVector a, const BitVector& b) { return a ^= b; }

    bool operator==(const BitVector& other) const = default;

    /// |this ∧ other| without materializing the intersection.
    std::size_t AndCount(const BitVector& other) const;
    /// |this ∧ ¬other| without materializing the difference (the diffset
    /// cardinality kernel of the hybrid Eclat).
    std::size_t AndNotCount(const BitVector& other) const;
    /// |this ∨ other| without materializing the union.
    std::size_t OrCount(const BitVector& other) const;

    /// this = a ∧ b, reusing this vector's existing word storage (the
    /// per-depth scratch path of the miners: no allocation when sizes match).
    void AssignAnd(const BitVector& a, const BitVector& b);
    /// this = a ∧ ¬b, reusing existing storage.
    void AssignAndNot(const BitVector& a, const BitVector& b);
    /// True iff every set bit of this is also set in other.
    bool IsSubsetOf(const BitVector& other) const;
    /// True iff the two vectors share no set bit.
    bool IsDisjointWith(const BitVector& other) const;

    /// Indices of set bits, ascending.
    std::vector<std::uint32_t> ToIndices() const;

    /// Calls fn(index) for every set bit, ascending.
    template <typename Fn>
    void ForEach(Fn&& fn) const {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t bits = words_[w];
            while (bits != 0) {
                const int tz = __builtin_ctzll(bits);
                fn(static_cast<std::uint32_t>(w * 64 + static_cast<std::size_t>(tz)));
                bits &= bits - 1;
            }
        }
    }

    /// "0101..."-style debug string (bit 0 first).
    std::string ToString() const;

    /// 64-bit hash of the contents (FNV-1a over words), for dedup maps.
    std::uint64_t Hash() const;

  private:
    void MaskTail();

    std::size_t size_ = 0;
    std::vector<std::uint64_t> words_;
};

}  // namespace dfp
