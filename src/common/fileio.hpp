// Crash-safe file writing shared by model persistence, metric snapshots and
// run reports.
//
// WriteFileAtomic is the tmp + rename pattern: the content lands in
// `<path>.tmp` first and a rename publishes it, so a concurrent reader (or a
// reader after a crash) sees the old file or the new one, never a torn mix.
// With `durable` set the tmp file is fsync'd before the rename and the parent
// directory fsync'd after it, which upgrades "atomic against readers" to
// "atomic against power loss" — model bundles want that; 2-second metric
// snapshots do not.
#pragma once

#include <string>
#include <string_view>

#include "common/status.hpp"

namespace dfp {

/// Writes `content` to `path` atomically via `<path>.tmp` + rename. On any
/// failure the tmp file is removed and the target is left untouched.
/// `durable` adds fsync(tmp) before the rename and fsync(parent dir) after.
Status WriteFileAtomic(const std::string& path, std::string_view content,
                       bool durable = false);

/// Reads the whole file into `*content`. NotFound when it cannot be opened.
Status ReadFileToString(const std::string& path, std::string* content);

}  // namespace dfp
