#include "common/fileio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/failpoint.hpp"

namespace dfp {

namespace {

Status ErrnoStatus(const std::string& what) {
    return Status::Internal(what + ": " + std::strerror(errno));
}

/// Writes the whole buffer to an fd, retrying short writes and EINTR.
Status WriteAll(int fd, std::string_view data) {
    std::size_t written = 0;
    while (written < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + written, data.size() - written);
        if (n < 0) {
            if (errno == EINTR) continue;
            return ErrnoStatus("write");
        }
        written += static_cast<std::size_t>(n);
    }
    return Status::Ok();
}

Status FsyncParentDir(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : path.substr(0, slash == 0 ? 1 : slash);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return ErrnoStatus("open(" + dir + ")");
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return ErrnoStatus("fsync(" + dir + ")");
    return Status::Ok();
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view content,
                       bool durable) {
    std::string_view to_write = content;
    bool injected_short = false;
    if (const auto fp = DFP_FAILPOINT("common.fileio.write_atomic"); fp) {
        fp.Sleep();
        switch (fp.kind) {
            case FailpointKind::kShortWrite:
                // A torn write: half the payload reaches the tmp file, then
                // the write "fails". The target must stay untouched.
                to_write = content.substr(0, content.size() / 2);
                injected_short = true;
                break;
            case FailpointKind::kDelay:
                break;
            default:
                return Status::Internal("injected write failure for " + path);
        }
    }

    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return ErrnoStatus("open(" + tmp + ")");
    Status st = WriteAll(fd, to_write);
    if (st.ok() && injected_short) {
        st = Status::Internal("injected short write for " + path);
    }
    if (st.ok() && durable && ::fsync(fd) != 0) {
        st = ErrnoStatus("fsync(" + tmp + ")");
    }
    if (::close(fd) != 0 && st.ok()) st = ErrnoStatus("close(" + tmp + ")");
    if (!st.ok()) {
        std::remove(tmp.c_str());
        return st;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return ErrnoStatus("rename " + tmp + " -> " + path);
    }
    if (durable) DFP_RETURN_NOT_OK(FsyncParentDir(path));
    return Status::Ok();
}

Status ReadFileToString(const std::string& path, std::string* content) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("cannot open '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) return Status::Internal("read failed for '" + path + "'");
    *content = buf.str();
    return Status::Ok();
}

}  // namespace dfp
