// Deterministic, seedable random number generation.
//
// Everything in the library that involves randomness (synthetic data, CV fold
// shuffles, SMO working-set tie-breaks) takes an explicit Rng so that every
// experiment is reproducible from a single seed. xoshiro256** is used for its
// speed and statistical quality; seeding goes through SplitMix64 as its
// authors recommend.
#pragma once

#include <cstdint>
#include <cmath>
#include <cassert>
#include <vector>

namespace dfp {

/// xoshiro256** PRNG with SplitMix64 seeding. Not cryptographic.
class Rng {
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

    void Seed(std::uint64_t seed) {
        // SplitMix64 expansion of the scalar seed into the 256-bit state.
        std::uint64_t x = seed;
        for (auto& s : state_) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            s = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~std::uint64_t{0}; }

    result_type operator()() { return Next(); }

    std::uint64_t Next() {
        const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = Rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double Uniform() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

    /// Uniform double in [lo, hi).
    double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

    /// Uniform integer in [0, n). n must be > 0.
    std::uint64_t UniformInt(std::uint64_t n) {
        assert(n > 0);
        // Lemire's nearly-divisionless bounded generation.
        __uint128_t m = static_cast<__uint128_t>(Next()) * n;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < n) {
            const std::uint64_t threshold = (0 - n) % n;
            while (lo < threshold) {
                m = static_cast<__uint128_t>(Next()) * n;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
        assert(lo <= hi);
        return lo + static_cast<std::int64_t>(
                        UniformInt(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /// Bernoulli draw with success probability p.
    bool Bernoulli(double p) { return Uniform() < p; }

    /// Standard normal via Box–Muller (one value per call; no caching).
    double Gaussian() {
        double u1 = Uniform();
        while (u1 <= 0.0) u1 = Uniform();
        const double u2 = Uniform();
        return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    }

    double Gaussian(double mean, double stddev) { return mean + stddev * Gaussian(); }

    /// Samples an index according to (unnormalized, non-negative) weights.
    std::size_t Categorical(const std::vector<double>& weights) {
        double total = 0.0;
        for (double w : weights) total += w;
        assert(total > 0.0);
        double r = Uniform() * total;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            r -= weights[i];
            if (r <= 0.0) return i;
        }
        return weights.size() - 1;
    }

    /// In-place Fisher–Yates shuffle.
    template <typename T>
    void Shuffle(std::vector<T>& v) {
        for (std::size_t i = v.size(); i > 1; --i) {
            const std::size_t j = static_cast<std::size_t>(UniformInt(i));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    static std::uint64_t Rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

}  // namespace dfp
