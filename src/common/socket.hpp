// Minimal blocking TCP socket utilities for the serving subsystem.
//
// Deliberately small: RAII fd ownership, full-buffer send, a buffered line
// reader, and listen/accept/connect helpers that return Status instead of
// errno soup. Everything is blocking — the prediction server uses a
// thread-per-connection model (DESIGN.md §13), so readiness APIs (epoll et
// al.) would buy nothing but complexity here.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace dfp {

/// Move-only RAII wrapper around a socket file descriptor.
class Socket {
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { Close(); }

    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;
    Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket& operator=(Socket&& other) noexcept {
        if (this != &other) {
            Close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    void Close();

    /// shutdown(SHUT_RD): unblocks a recv() in progress on another thread
    /// (subsequent reads see EOF) while writes still flush. The server's
    /// graceful drain uses this to stop connection handlers without cutting
    /// off responses in flight.
    void ShutdownRead();
    /// shutdown(SHUT_RDWR): also unblocks accept() on a listening socket.
    void ShutdownBoth();

    /// Writes the whole buffer (retrying short sends; SIGPIPE suppressed).
    Status SendAll(std::string_view data);

    /// One recv(): returns bytes read, 0 on orderly EOF. With a receive
    /// timeout set (below), a timed-out recv fails with kUnavailable.
    Result<std::size_t> Recv(char* buf, std::size_t len);

    /// SO_RCVTIMEO: bounds how long a blocking recv may wait. Used by the
    /// metrics HTTP side-port so one slow scraper cannot wedge the serve
    /// loop; 0 disables the timeout.
    Status SetRecvTimeout(double seconds);

    /// SO_SNDTIMEO: bounds how long a blocking send may wait for buffer
    /// space. The prediction server's slow-loris defense: a client that
    /// stops reading its response cannot pin a handler thread forever. A
    /// timed-out send fails with kUnavailable; 0 disables the timeout.
    Status SetSendTimeout(double seconds);

  private:
    int fd_ = -1;
};

/// Buffered reader of '\n'-terminated lines from a socket. A trailing '\r'
/// is stripped so telnet-style clients work.
class LineReader {
  public:
    explicit LineReader(Socket& socket) : socket_(&socket) {}

    /// Reads the next line into `*line` (terminator stripped). Returns true
    /// on a line, false on clean EOF, error Status on socket failure or when
    /// a line exceeds `max_line_bytes` (malicious framing).
    Result<bool> ReadLine(std::string* line,
                          std::size_t max_line_bytes = kDefaultMaxLineBytes);

    /// 16 MiB — far above any sane predict_batch request.
    static constexpr std::size_t kDefaultMaxLineBytes = std::size_t{16} << 20;

    /// Bytes buffered but not yet returned as a line. Nonzero after a failed
    /// ReadLine means a response frame was partially received — the retry
    /// layer uses this to refuse to resend (DESIGN.md §15).
    std::size_t buffered_bytes() const { return buffer_.size(); }

  private:
    Socket* socket_;
    std::string buffer_;
};

/// Binds + listens on 127.0.0.1:`port` (port 0 = kernel-assigned ephemeral
/// port; read it back with LocalPort). SO_REUSEADDR is set.
Result<Socket> TcpListen(std::uint16_t port, int backlog = 64);

/// The locally bound port of a socket (listen or connected).
Result<std::uint16_t> LocalPort(const Socket& socket);

/// Blocking accept. Fails with kUnavailable once the listener is shut down.
Result<Socket> TcpAccept(Socket& listener);

/// Blocking connect to `host`:`port` (numeric IPv4 or a resolvable name).
Result<Socket> TcpConnect(const std::string& host, std::uint16_t port);

}  // namespace dfp
