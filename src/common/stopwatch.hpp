// Wall-clock stopwatch for the experiment harness and benchmarks.
#pragma once

#include <chrono>

namespace dfp {

/// Monotonic wall-clock timer. Starts running on construction.
class Stopwatch {
  public:
    Stopwatch() : start_(Clock::now()) {}

    /// Restarts the timer.
    void Reset() { start_ = Clock::now(); }

    /// Seconds elapsed since construction / last Reset().
    double ElapsedSeconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /// Milliseconds elapsed since construction / last Reset().
    double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace dfp
