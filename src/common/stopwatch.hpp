// Wall-clock stopwatch for the benches' *outer* measurement loops.
//
// Library code (pipeline phases, miners, selection, learning) should time
// itself with obs::Span instead, which feeds the same number into the trace
// tree and run reports; reach for a bare Stopwatch only where a timing tree
// makes no sense (e.g. wrapping a whole bench sweep).
#pragma once

#include <chrono>

namespace dfp {

/// Monotonic wall-clock timer. Starts running on construction.
class Stopwatch {
  public:
    Stopwatch() : start_(Clock::now()) {}

    /// Restarts the timer.
    void Reset() { start_ = Clock::now(); }

    /// Seconds elapsed since construction / last Reset().
    double ElapsedSeconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /// Milliseconds elapsed since construction / last Reset().
    double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace dfp
