#include "common/budget.hpp"

#include "obs/metrics.hpp"

namespace dfp {

const char* BudgetBreachName(BudgetBreach breach) {
    switch (breach) {
        case BudgetBreach::kNone: return "none";
        case BudgetBreach::kDeadline: return "deadline";
        case BudgetBreach::kPatternCap: return "pattern_cap";
        case BudgetBreach::kMemoryCap: return "memory_cap";
        case BudgetBreach::kCancelled: return "cancelled";
    }
    return "unknown";
}

GuardLog& GuardLog::Get() {
    static GuardLog* log = new GuardLog();
    return *log;
}

void GuardLog::Record(std::string_view stage, std::string_view kind, double value) {
    {
        std::lock_guard<std::mutex> lock(mu_);
        events_.push_back(GuardEvent{std::string(stage), std::string(kind), value});
    }
    obs::Registry::Get().GetCounter(std::string("dfp.guard.") + std::string(kind))
        .Inc();
}

std::vector<GuardEvent> GuardLog::Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
}

std::vector<GuardEvent> GuardLog::Drain() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<GuardEvent> out;
    out.swap(events_);
    return out;
}

void GuardLog::Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
}

std::size_t GuardLog::size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

void RecordBreach(std::string_view stage, BudgetBreach breach, double value) {
    if (breach == BudgetBreach::kNone) return;
    GuardLog::Get().Record(stage, BudgetBreachName(breach), value);
}

}  // namespace dfp
