// Status / Result error-handling primitives, in the style of Arrow / RocksDB.
//
// Library code returns Status (or Result<T>) for recoverable errors instead of
// throwing; exceptions are reserved for programming errors at API boundaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace dfp {

/// Coarse error taxonomy for recoverable failures.
enum class StatusCode {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kOutOfRange,
    kFailedPrecondition,
    kResourceExhausted,
    kParseError,
    kInternal,
    kCancelled,
    kUnavailable,
};

/// Returns a short human-readable name for a StatusCode ("Ok", "ParseError", ...).
inline const char* StatusCodeName(StatusCode code) {
    switch (code) {
        case StatusCode::kOk: return "Ok";
        case StatusCode::kInvalidArgument: return "InvalidArgument";
        case StatusCode::kNotFound: return "NotFound";
        case StatusCode::kOutOfRange: return "OutOfRange";
        case StatusCode::kFailedPrecondition: return "FailedPrecondition";
        case StatusCode::kResourceExhausted: return "ResourceExhausted";
        case StatusCode::kParseError: return "ParseError";
        case StatusCode::kInternal: return "Internal";
        case StatusCode::kCancelled: return "Cancelled";
        case StatusCode::kUnavailable: return "Unavailable";
    }
    return "Unknown";
}

/// Lightweight success-or-error value. Copyable; Ok status carries no message.
class Status {
  public:
    Status() : code_(StatusCode::kOk) {}
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message)) {}

    static Status Ok() { return Status(); }
    static Status InvalidArgument(std::string m) {
        return Status(StatusCode::kInvalidArgument, std::move(m));
    }
    static Status NotFound(std::string m) {
        return Status(StatusCode::kNotFound, std::move(m));
    }
    static Status OutOfRange(std::string m) {
        return Status(StatusCode::kOutOfRange, std::move(m));
    }
    static Status FailedPrecondition(std::string m) {
        return Status(StatusCode::kFailedPrecondition, std::move(m));
    }
    static Status ResourceExhausted(std::string m) {
        return Status(StatusCode::kResourceExhausted, std::move(m));
    }
    static Status ParseError(std::string m) {
        return Status(StatusCode::kParseError, std::move(m));
    }
    static Status Internal(std::string m) {
        return Status(StatusCode::kInternal, std::move(m));
    }
    static Status Cancelled(std::string m) {
        return Status(StatusCode::kCancelled, std::move(m));
    }
    /// Transient overload/shutdown rejection: retrying later may succeed.
    /// The serving layer sheds load with this code (DESIGN.md §13).
    static Status Unavailable(std::string m) {
        return Status(StatusCode::kUnavailable, std::move(m));
    }

    bool ok() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string& message() const { return message_; }

    /// "Ok" or "<CodeName>: <message>".
    std::string ToString() const {
        if (ok()) return "Ok";
        return std::string(StatusCodeName(code_)) + ": " + message_;
    }

    friend std::ostream& operator<<(std::ostream& os, const Status& s) {
        return os << s.ToString();
    }

  private:
    StatusCode code_;
    std::string message_;
};

namespace internal {

/// Aborts with the carried error. An assert() would compile out under NDEBUG
/// and turn dereference-on-error into silent UB in release builds; misusing a
/// Result is a programming error that must die loudly in every build type.
[[noreturn]] inline void DieOnResultMisuse(const char* what, const Status& status) {
    std::fprintf(stderr, "dfp: fatal Result misuse: %s (status: %s)\n", what,
                 status.ToString().c_str());
    std::fflush(stderr);
    std::abort();
}

}  // namespace internal

/// A value of type T or an error Status. Dereference only when ok();
/// dereferencing an error aborts (in all build types) with the carried Status.
template <typename T>
class Result {
  public:
    Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
    Result(Status status) : status_(std::move(status)) {  // NOLINT
        if (status_.ok()) {
            internal::DieOnResultMisuse("Result constructed from Ok status without a value",
                                        status_);
        }
    }

    bool ok() const { return status_.ok(); }
    const Status& status() const { return status_; }

    T& value() & {
        CheckOk();
        return *value_;
    }
    const T& value() const& {
        CheckOk();
        return *value_;
    }
    T&& value() && {
        CheckOk();
        return std::move(*value_);
    }

    T& operator*() & { return value(); }
    const T& operator*() const& { return value(); }
    T* operator->() { return &value(); }
    const T* operator->() const { return &value(); }

    /// Returns the contained value or `fallback` if this holds an error.
    T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  private:
    void CheckOk() const {
        if (!ok()) {
            internal::DieOnResultMisuse("value() called on an error Result", status_);
        }
    }

    std::optional<T> value_;
    Status status_;
};

}  // namespace dfp

/// Propagates a non-Ok Status from an expression, Arrow-style.
#define DFP_RETURN_NOT_OK(expr)                       \
    do {                                              \
        ::dfp::Status _st = (expr);                   \
        if (!_st.ok()) return _st;                    \
    } while (0)
