// Minimal leveled logging for the experiment harness.
//
// The library itself stays silent by default (level = kWarn); benches and
// examples raise the level for progress reporting. Not thread-safe by design —
// the library is single-threaded per pipeline.
#pragma once

#include <string>

namespace dfp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits `msg` to stderr if `level` >= the global level.
void LogMessage(LogLevel level, const std::string& msg);

}  // namespace dfp

#define DFP_LOG_DEBUG(msg) ::dfp::LogMessage(::dfp::LogLevel::kDebug, (msg))
#define DFP_LOG_INFO(msg) ::dfp::LogMessage(::dfp::LogLevel::kInfo, (msg))
#define DFP_LOG_WARN(msg) ::dfp::LogMessage(::dfp::LogLevel::kWarn, (msg))
#define DFP_LOG_ERROR(msg) ::dfp::LogMessage(::dfp::LogLevel::kError, (msg))
