// Minimal leveled logging for the experiment harness.
//
// The library stays silent by default (level = kWarn); benches and examples
// raise the level for progress reporting. Thread-safe: the level is an atomic
// and sink invocation is serialized by a mutex. The initial level honors the
// DFP_LOG_LEVEL environment variable ("debug", "info", "warn", "error",
// "off"); an explicit SetLogLevel call overrides it.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace dfp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a level name ("debug"/"info"/"warn"/"error"/"off", case-insensitive,
/// or the numeric value). Returns false (leaving *out untouched) on garbage.
bool ParseLogLevel(std::string_view text, LogLevel* out);

/// Receives every emitted message (after level filtering).
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replaces the output sink; nullptr restores the default stderr sink.
/// Tests use this to capture log output.
void SetLogSink(LogSink sink);

/// Emits `msg` through the sink if `level` >= the global level.
void LogMessage(LogLevel level, const std::string& msg);

}  // namespace dfp

#define DFP_LOG_DEBUG(msg) ::dfp::LogMessage(::dfp::LogLevel::kDebug, (msg))
#define DFP_LOG_INFO(msg) ::dfp::LogMessage(::dfp::LogLevel::kInfo, (msg))
#define DFP_LOG_WARN(msg) ::dfp::LogMessage(::dfp::LogLevel::kWarn, (msg))
#define DFP_LOG_ERROR(msg) ::dfp::LogMessage(::dfp::LogLevel::kError, (msg))
