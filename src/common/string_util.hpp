// String helpers used by the CSV loader and the table printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dfp {

/// Splits on a single delimiter character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins elements with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` parses fully as a finite double; stores it in *out.
bool ParseDouble(std::string_view s, double* out);

/// True if `s` parses fully as a long; stores it in *out.
bool ParseInt(std::string_view s, long* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace dfp
