// Tiny token-stream helpers for the text model format (core/model_io).
//
// Everything is whitespace-separated tokens; doubles round-trip exactly via
// max_digits10 precision.
#pragma once

#include <istream>
#include <limits>
#include <ostream>
#include <string>

#include "common/status.hpp"

namespace dfp {

/// Upper bound on any single count read from an untrusted model stream
/// (pattern counts, weight-vector sizes, SV counts, tree nodes). Real models
/// are orders of magnitude below this; a malformed count above it must fail
/// with InvalidArgument instead of driving a multi-gigabyte allocation into
/// std::bad_alloc / abort.
inline constexpr std::size_t kMaxModelElements = std::size_t{1} << 24;

/// Writes a double with enough precision to round-trip exactly.
inline void WriteDouble(std::ostream& out, double v) {
    const auto old = out.precision(std::numeric_limits<double>::max_digits10);
    out << v;
    out.precision(old);
}

/// Sequential whitespace-token reader with Status-based errors.
class TokenReader {
  public:
    explicit TokenReader(std::istream& in) : in_(in) {}

    /// Reads a token and checks it equals `literal`.
    Status Expect(const std::string& literal) {
        std::string token;
        if (!(in_ >> token)) {
            return Status::ParseError("unexpected end of model stream, wanted '" +
                                      literal + "'");
        }
        if (token != literal) {
            return Status::ParseError("expected '" + literal + "', got '" + token +
                                      "'");
        }
        return Status::Ok();
    }

    Status Read(std::string* out) {
        if (!(in_ >> *out)) return Status::ParseError("unexpected end of model stream");
        return Status::Ok();
    }

    Status Read(double* out) {
        if (!(in_ >> *out)) return Status::ParseError("malformed double in model");
        return Status::Ok();
    }

    Status Read(std::size_t* out) {
        long long v = 0;
        if (!(in_ >> v) || v < 0) {
            return Status::ParseError("malformed count in model");
        }
        *out = static_cast<std::size_t>(v);
        return Status::Ok();
    }

    Status Read(std::int32_t* out) {
        long long v = 0;
        if (!(in_ >> v)) return Status::ParseError("malformed int in model");
        *out = static_cast<std::int32_t>(v);
        return Status::Ok();
    }

    Status Read(std::uint32_t* out) {
        long long v = 0;
        if (!(in_ >> v) || v < 0) {
            return Status::ParseError("malformed unsigned in model");
        }
        *out = static_cast<std::uint32_t>(v);
        return Status::Ok();
    }

    /// Reads an element count from untrusted input, rejecting anything above
    /// `max_value` (default kMaxModelElements) so the caller can size a
    /// container without risking an allocation abort.
    Status ReadCount(std::size_t* out, std::size_t max_value = kMaxModelElements) {
        DFP_RETURN_NOT_OK(Read(out));
        if (*out > max_value) {
            return Status::InvalidArgument("model count " + std::to_string(*out) +
                                           " exceeds sanity cap " +
                                           std::to_string(max_value));
        }
        return Status::Ok();
    }

    /// Reads `n` doubles into a pre-sized span-like container.
    template <typename Container>
    Status ReadDoubles(std::size_t n, Container* out) {
        out->resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            DFP_RETURN_NOT_OK(Read(&(*out)[i]));
        }
        return Status::Ok();
    }

  private:
    std::istream& in_;
};

}  // namespace dfp
