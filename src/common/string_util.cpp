#include "common/string_util.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace dfp {

std::vector<std::string> Split(std::string_view s, char delim) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = s.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            break;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string_view Trim(std::string_view s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) out += sep;
        out += parts[i];
    }
    return out;
}

bool ParseDouble(std::string_view s, double* out) {
    const std::string buf(Trim(s));
    if (buf.empty()) return false;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size() || errno == ERANGE || !std::isfinite(v)) {
        return false;
    }
    *out = v;
    return true;
}

bool ParseInt(std::string_view s, long* out) {
    const std::string buf(Trim(s));
    if (buf.empty()) return false;
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(buf.c_str(), &end, 10);
    if (end != buf.c_str() + buf.size() || errno == ERANGE) return false;
    *out = v;
    return true;
}

std::string StrFormat(const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
    }
    va_end(args2);
    return out;
}

}  // namespace dfp
