#include "common/arena.hpp"

#include <atomic>
#include <cstdlib>
#include <new>
#include <utility>

#include "obs/metrics.hpp"

namespace dfp {

namespace {

std::atomic<std::size_t> g_total_reserved{0};
std::atomic<std::size_t> g_peak_reserved{0};
std::atomic<std::uint64_t> g_chunks_allocated{0};

void AddReserved(std::size_t bytes) {
    const std::size_t total =
        g_total_reserved.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::size_t peak = g_peak_reserved.load(std::memory_order_relaxed);
    while (total > peak && !g_peak_reserved.compare_exchange_weak(
                               peak, total, std::memory_order_relaxed)) {
    }
}

void SubReserved(std::size_t bytes) {
    g_total_reserved.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace

Arena::Arena(std::size_t chunk_bytes)
    : chunk_bytes_(chunk_bytes < 256 ? 256 : chunk_bytes) {}

Arena::Arena(Arena&& other) noexcept
    : chunks_(std::move(other.chunks_)),
      current_(other.current_),
      used_(other.used_),
      chunk_bytes_(other.chunk_bytes_),
      reserved_(other.reserved_) {
    other.chunks_.clear();
    other.current_ = 0;
    other.used_ = 0;
    other.reserved_ = 0;
}

Arena& Arena::operator=(Arena&& other) noexcept {
    if (this != &other) {
        Release();
        chunks_ = std::move(other.chunks_);
        current_ = other.current_;
        used_ = other.used_;
        chunk_bytes_ = other.chunk_bytes_;
        reserved_ = other.reserved_;
        other.chunks_.clear();
        other.current_ = 0;
        other.used_ = 0;
        other.reserved_ = 0;
    }
    return *this;
}

Arena::~Arena() { Release(); }

void Arena::Release() {
    for (Chunk& c : chunks_) std::free(c.data);
    SubReserved(reserved_);
    chunks_.clear();
    current_ = 0;
    used_ = 0;
    reserved_ = 0;
}

void Arena::AddChunk(std::size_t min_bytes) {
    // Geometric growth keeps the chunk count logarithmic; the next chunk is
    // at least double the last reserved one and large enough for min_bytes.
    std::size_t size = chunk_bytes_;
    if (!chunks_.empty()) size = chunks_.back().size * 2;
    if (size < min_bytes) size = min_bytes;
    Chunk chunk;
    chunk.data = static_cast<unsigned char*>(std::malloc(size));
    if (chunk.data == nullptr) throw std::bad_alloc();
    chunk.size = size;
    chunks_.push_back(chunk);
    reserved_ += size;
    AddReserved(size);
    g_chunks_allocated.fetch_add(1, std::memory_order_relaxed);
}

void* Arena::Allocate(std::size_t bytes, std::size_t align) {
    assert(align != 0 && (align & (align - 1)) == 0 && align <= kMaxAlign);
    if (bytes == 0) bytes = 1;
    while (true) {
        if (current_ < chunks_.size()) {
            Chunk& chunk = chunks_[current_];
            const std::size_t aligned = (used_ + align - 1) & ~(align - 1);
            if (aligned + bytes <= chunk.size) {
                used_ = aligned + bytes;
                return chunk.data + aligned;
            }
            // Current chunk exhausted: move to the next reserved chunk if it
            // fits, otherwise reserve a bigger one.
            if (current_ + 1 < chunks_.size() &&
                bytes <= chunks_[current_ + 1].size) {
                ++current_;
                used_ = 0;
                continue;
            }
        }
        // Reserve a fresh chunk at the end and bump into it. Intervening
        // too-small chunks are skipped (they are reused after a Reset).
        AddChunk(bytes + align);
        current_ = chunks_.size() - 1;
        used_ = 0;
    }
}

void Arena::Rewind(Mark mark) {
    assert(mark.chunk <= current_);
    current_ = mark.chunk < chunks_.size() ? mark.chunk : 0;
    used_ = mark.used;
}

std::size_t Arena::bytes_used() const {
    std::size_t total = used_;
    for (std::size_t c = 0; c < current_ && c < chunks_.size(); ++c) {
        total += chunks_[c].size;  // earlier chunks count as fully used
    }
    return total;
}

std::size_t Arena::TotalReservedBytes() {
    return g_total_reserved.load(std::memory_order_relaxed);
}

std::size_t Arena::PeakReservedBytes() {
    return g_peak_reserved.load(std::memory_order_relaxed);
}

std::uint64_t Arena::TotalChunksAllocated() {
    return g_chunks_allocated.load(std::memory_order_relaxed);
}

void PublishArenaMetrics() {
    auto& registry = obs::Registry::Get();
    registry.GetGauge("dfp.arena.bytes_reserved")
        .Set(static_cast<double>(Arena::TotalReservedBytes()));
    registry.GetGauge("dfp.arena.peak_bytes_reserved")
        .Set(static_cast<double>(Arena::PeakReservedBytes()));
    registry.GetGauge("dfp.arena.chunks_allocated")
        .Set(static_cast<double>(Arena::TotalChunksAllocated()));
}

}  // namespace dfp
