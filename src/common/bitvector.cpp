#include "common/bitvector.hpp"

#include <algorithm>
#include <cassert>

namespace dfp {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t WordCount(std::size_t bits) { return (bits + kWordBits - 1) / kWordBits; }
}  // namespace

BitVector::BitVector(std::size_t size) : size_(size), words_(WordCount(size), 0) {}

void BitVector::Set(std::size_t i) {
    assert(i < size_);
    words_[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
}

void BitVector::Clear(std::size_t i) {
    assert(i < size_);
    words_[i / kWordBits] &= ~(std::uint64_t{1} << (i % kWordBits));
}

bool BitVector::Test(std::size_t i) const {
    assert(i < size_);
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitVector::Reset() { std::fill(words_.begin(), words_.end(), 0); }

void BitVector::Fill() {
    std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
    MaskTail();
}

void BitVector::MaskTail() {
    const std::size_t rem = size_ % kWordBits;
    if (rem != 0 && !words_.empty()) {
        words_.back() &= (std::uint64_t{1} << rem) - 1;
    }
}

std::size_t BitVector::Count() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
}

BitVector& BitVector::operator&=(const BitVector& other) {
    assert(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) {
    assert(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
}

BitVector& BitVector::operator^=(const BitVector& other) {
    assert(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
    return *this;
}

BitVector& BitVector::AndNot(const BitVector& other) {
    assert(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
    return *this;
}

std::size_t BitVector::AndCount(const BitVector& other) const {
    assert(size_ == other.size_);
    std::size_t n = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        n += static_cast<std::size_t>(__builtin_popcountll(words_[i] & other.words_[i]));
    }
    return n;
}

std::size_t BitVector::AndNotCount(const BitVector& other) const {
    assert(size_ == other.size_);
    std::size_t n = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        n += static_cast<std::size_t>(
            __builtin_popcountll(words_[i] & ~other.words_[i]));
    }
    return n;
}

void BitVector::AssignAnd(const BitVector& a, const BitVector& b) {
    assert(a.size_ == b.size_);
    size_ = a.size_;
    words_.resize(a.words_.size());
    for (std::size_t i = 0; i < words_.size(); ++i) {
        words_[i] = a.words_[i] & b.words_[i];
    }
}

void BitVector::AssignAndNot(const BitVector& a, const BitVector& b) {
    assert(a.size_ == b.size_);
    size_ = a.size_;
    words_.resize(a.words_.size());
    for (std::size_t i = 0; i < words_.size(); ++i) {
        words_[i] = a.words_[i] & ~b.words_[i];
    }
}

std::size_t BitVector::OrCount(const BitVector& other) const {
    assert(size_ == other.size_);
    std::size_t n = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        n += static_cast<std::size_t>(__builtin_popcountll(words_[i] | other.words_[i]));
    }
    return n;
}

bool BitVector::IsSubsetOf(const BitVector& other) const {
    assert(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
        if ((words_[i] & ~other.words_[i]) != 0) return false;
    }
    return true;
}

bool BitVector::IsDisjointWith(const BitVector& other) const {
    assert(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
        if ((words_[i] & other.words_[i]) != 0) return false;
    }
    return true;
}

std::vector<std::uint32_t> BitVector::ToIndices() const {
    std::vector<std::uint32_t> out;
    out.reserve(Count());
    ForEach([&out](std::uint32_t i) { out.push_back(i); });
    return out;
}

std::string BitVector::ToString() const {
    std::string s(size_, '0');
    ForEach([&s](std::uint32_t i) { s[i] = '1'; });
    return s;
}

std::uint64_t BitVector::Hash() const {
    std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
    for (std::uint64_t w : words_) {
        h ^= w;
        h *= 1099511628211ull;  // FNV prime
    }
    return h ^ size_;
}

}  // namespace dfp
