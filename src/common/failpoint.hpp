// Deterministic failpoints: named fault-injection sites for chaos testing.
//
// A failpoint is a named site in production code where a test (or an operator
// rehearsing an incident) can inject a fault on demand:
//
//     if (auto fp = DFP_FAILPOINT("serve.socket.write"); fp) {
//         if (fp.kind == FailpointKind::kError) return Status::Internal(...);
//         ...
//     }
//
// Sites interpret the action themselves, because only the site knows what a
// realistic fault looks like there: a socket write can be short, a recv can
// see EINTR, a model load can observe a torn file, an allocation can fail.
//
// Properties:
//  * Zero-cost when disabled. DFP_FAILPOINT compiles to one relaxed atomic
//    load and a predictable branch; no registry lookup, no lock, no string
//    work. Production binaries keep the sites compiled in (they are the whole
//    point: the shipped code path is the tested code path).
//  * Deterministic per seed. Every probabilistic draw comes from a
//    per-failpoint xoshiro stream seeded with `seed ^ fnv1a(name)`, so a
//    schedule replays identically regardless of registration order or which
//    other failpoints exist. (Under concurrency the *order* of hits across
//    threads is the scheduler's, but each failpoint's fire/no-fire sequence
//    by hit index is fixed.)
//  * Observable. Every trip bumps `dfp.failpoint.<name>` in the metrics
//    registry and the per-failpoint trip counter, so chaos runs and bench
//    soaks can report exactly which faults actually fired.
//
// Schedules are configured from a spec string (CLI flag `--failpoints`, env
// DFP_FAILPOINTS, or tests):
//
//     point=mode[:kind[:arg]] [; point=... ]
//
//   modes:  always | prob(P) | nth(N) (fires once, on the Nth hit, 1-based)
//           | every(N) (every Nth hit) | off
//   kinds:  error (default) | short | eintr | timeout | alloc | delay(MS)
//           | abort
//
//   e.g. "serve.socket.write=prob(0.1):error;core.model_io.load=nth(2):short"
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace dfp {

/// What the site should pretend happened. Sites handle the kinds that make
/// sense for them and treat the rest as kError.
enum class FailpointKind : std::uint8_t {
    kNone = 0,
    kError,       ///< fail with an injected error Status
    kShortWrite,  ///< truncate the I/O (short write / torn read)
    kEintr,       ///< behave as if the syscall returned EINTR
    kTimeout,     ///< behave as a timed-out I/O (kUnavailable)
    kAllocFail,   ///< throw std::bad_alloc
    kDelay,       ///< sleep delay_ms, then proceed normally
    kAbort,       ///< std::abort() — crash rehearsal for external harnesses
};

const char* FailpointKindName(FailpointKind kind);

/// The evaluated outcome of one DFP_FAILPOINT hit. Falsy = proceed normally.
struct FailpointAction {
    FailpointKind kind = FailpointKind::kNone;
    double delay_ms = 0.0;

    explicit operator bool() const { return kind != FailpointKind::kNone; }

    /// Convenience for kDelay (and the delay component of other kinds):
    /// sleeps delay_ms if set. Returns *this so sites can chain.
    const FailpointAction& Sleep() const;
};

/// One named injection site's armed schedule + counters. Thread-safe.
class Failpoint {
  public:
    enum class Mode : std::uint8_t { kOff = 0, kAlways, kProb, kNth, kEvery };

    explicit Failpoint(std::string name) : name_(std::move(name)) {}

    /// Installs a schedule; resets hit/trip counters and reseeds the draw
    /// stream from `seed ^ fnv1a(name)`.
    void Arm(Mode mode, double param, FailpointKind kind, double delay_ms,
             std::uint64_t seed);
    void Disarm();

    /// Counts a hit and decides (deterministically) whether to fire.
    FailpointAction Evaluate();

    const std::string& name() const { return name_; }
    std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
    std::uint64_t trips() const { return trips_.load(std::memory_order_relaxed); }

  private:
    const std::string name_;
    mutable std::mutex mu_;  ///< guards mode/rng; Evaluate is syscall-adjacent
    Mode mode_ = Mode::kOff;
    double param_ = 0.0;  ///< prob p, or N for nth/every
    FailpointKind kind_ = FailpointKind::kError;
    double delay_ms_ = 0.0;
    Rng rng_{0};
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> trips_{0};
};

/// Process-global registry of failpoints. Sites self-register on first hit
/// (while enabled); Configure() creates the named points up front so a spec
/// can arm a site before it is ever reached.
class FailpointRegistry {
  public:
    static FailpointRegistry& Get();

    /// Parses and installs a schedule. Disarms everything first, so each
    /// Configure call fully replaces the previous schedule; an empty spec is
    /// equivalent to DisableAll(). On a malformed spec nothing is armed.
    Status Configure(std::string_view spec, std::uint64_t seed);

    /// Disarms every failpoint and clears the global enabled flag.
    void DisableAll();

    /// The named failpoint, or null if it has never been registered.
    Failpoint* Find(std::string_view name);

    /// Registers (or finds) a failpoint. References stay valid forever.
    Failpoint& GetOrCreate(std::string_view name);

    struct Stats {
        std::string name;
        std::uint64_t hits = 0;
        std::uint64_t trips = 0;
    };
    std::vector<Stats> Snapshot() const;

    /// Total trips across all failpoints since the last Configure.
    std::uint64_t TotalTrips() const;

  private:
    FailpointRegistry() = default;

    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Failpoint>, std::less<>> points_;
};

/// True when any failpoint is armed (one relaxed atomic load).
bool FailpointsEnabled();

/// Slow path behind DFP_FAILPOINT: registry lookup + Evaluate. Only called
/// while failpoints are enabled.
FailpointAction EvaluateFailpoint(const char* name);

/// Reads DFP_FAILPOINTS / DFP_FAILPOINT_SEED from the environment and
/// configures the registry from them. No-op when DFP_FAILPOINTS is unset.
Status ConfigureFailpointsFromEnv();

/// FNV-1a 64-bit hash (failpoint seeding and model-bundle checksums).
std::uint64_t Fnv1a64(std::string_view bytes);

#define DFP_FAILPOINT(name)                          \
    (::dfp::FailpointsEnabled() ? ::dfp::EvaluateFailpoint(name) \
                                : ::dfp::FailpointAction{})

}  // namespace dfp
