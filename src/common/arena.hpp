// Bump-pointer arena allocation for the mining hot paths.
//
// The FP-growth recursion builds and discards one conditional tree per header
// entry per level; with node-per-heap-allocation layouts the allocator lock
// becomes the bottleneck the moment the miners fan out over threads
// (BENCH_parallel.json before this change: 1.08x at 4 threads). An Arena
// turns that churn into pointer bumps over a few large chunks that are
// *reset* (rewound) instead of freed, so a per-task scratch arena gives each
// worker allocator-free mining with perfect cache locality.
//
//  * Arena      — chunked bump allocator. Allocate() is a bump; Reset()
//                 rewinds to the first chunk and keeps the memory; Mark()/
//                 Rewind() give stack-like reclamation for recursive builds.
//  * FlatVec<T> — a minimal growable span over arena memory for trivially
//                 copyable T. Growth allocates a fresh block from the arena
//                 (the old block is dead until the next Reset — bounded waste
//                 by the usual doubling argument); callers that know their
//                 sizes use reserve() and never waste a byte.
//
// Process-wide reservation totals are tracked in atomics and published as
// `dfp.arena.*` gauges/counters by PublishArenaMetrics() (bench reports call
// it so every BENCH_*.json records the arena footprint).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

namespace dfp {

/// Chunked bump-pointer allocator. Not thread-safe: one Arena per task.
class Arena {
  public:
    static constexpr std::size_t kDefaultChunkBytes = std::size_t{1} << 16;
    static constexpr std::size_t kMaxAlign = alignof(std::max_align_t);

    explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes);
    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;
    Arena(Arena&& other) noexcept;
    Arena& operator=(Arena&& other) noexcept;
    ~Arena();

    /// Bump-allocates `bytes` aligned to `align` (a power of two ≤ kMaxAlign).
    /// Never returns null: overflowing the current chunk grabs a new one
    /// (at least twice the previous chunk's size, so chunk count stays
    /// logarithmic in total usage).
    void* Allocate(std::size_t bytes, std::size_t align = kMaxAlign);

    /// Typed array allocation (uninitialized; T must be trivially
    /// default-constructible or the caller must construct in place).
    template <typename T>
    T* AllocateArray(std::size_t n) {
        static_assert(std::is_trivially_copyable_v<T>,
                      "Arena arrays hold trivially copyable types only");
        return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
    }

    /// Position marker for stack-like reclamation across a recursion level.
    struct Mark {
        std::size_t chunk = 0;
        std::size_t used = 0;
    };

    Mark Position() const { return Mark{current_, used_}; }

    /// Rewinds the bump pointer to `mark`. Chunks past the mark stay reserved
    /// (they are reused by later allocations); contents become garbage.
    void Rewind(Mark mark);

    /// Rewinds to the start, keeping every reserved chunk for reuse.
    void Reset() { Rewind(Mark{0, 0}); }

    /// Frees every chunk (memory returned to the OS allocator).
    void Release();

    /// Bytes handed out since the last Reset/Rewind past them.
    std::size_t bytes_used() const;
    /// Bytes reserved from the OS across all chunks.
    std::size_t bytes_reserved() const { return reserved_; }

    /// Process-wide total of bytes_reserved() over all live arenas.
    static std::size_t TotalReservedBytes();
    /// Process-wide high-water mark of TotalReservedBytes().
    static std::size_t PeakReservedBytes();
    /// Lifetime count of chunk allocations across all arenas.
    static std::uint64_t TotalChunksAllocated();

  private:
    struct Chunk {
        unsigned char* data = nullptr;
        std::size_t size = 0;
    };

    void AddChunk(std::size_t min_bytes);

    std::vector<Chunk> chunks_;
    std::size_t current_ = 0;  // index of the chunk being bumped
    std::size_t used_ = 0;     // bytes used in chunks_[current_]
    std::size_t chunk_bytes_;  // size of the next chunk to reserve
    std::size_t reserved_ = 0;
};

/// Publishes the arena totals as `dfp.arena.bytes_reserved` /
/// `dfp.arena.peak_bytes_reserved` gauges and the `dfp.arena.chunks_allocated`
/// counter value as a gauge (the registry's counters are monotonic per
/// process; a gauge snapshot keeps bench runs comparable after ResetValues).
void PublishArenaMetrics();

/// Minimal vector-like span over arena memory. Trivially copyable elements
/// only; no destructors are ever run. Copying the FlatVec copies the *view*
/// (data pointer + size), which is what the index-based FP-tree wants.
template <typename T>
class FlatVec {
    static_assert(std::is_trivially_copyable_v<T>);

  public:
    FlatVec() = default;

    void Attach(Arena* arena) { arena_ = arena; }

    /// Ensures capacity for `n` elements (single arena allocation; contents
    /// preserved on growth).
    void reserve(std::size_t n) {
        if (n <= capacity_) return;
        T* fresh = arena_->AllocateArray<T>(n);
        if (size_ != 0) std::memcpy(fresh, data_, size_ * sizeof(T));
        data_ = fresh;
        capacity_ = n;
    }

    void resize(std::size_t n, T fill = T{}) {
        reserve(n);
        for (std::size_t i = size_; i < n; ++i) data_[i] = fill;
        size_ = n;
    }

    void push_back(T v) {
        if (size_ == capacity_) {
            reserve(capacity_ == 0 ? std::size_t{8} : capacity_ * 2);
        }
        data_[size_++] = v;
    }

    void clear() { size_ = 0; }

    T& operator[](std::size_t i) {
        assert(i < size_);
        return data_[i];
    }
    const T& operator[](std::size_t i) const {
        assert(i < size_);
        return data_[i];
    }
    T& back() { return data_[size_ - 1]; }

    T* data() { return data_; }
    const T* data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T* begin() { return data_; }
    T* end() { return data_ + size_; }
    const T* begin() const { return data_; }
    const T* end() const { return data_ + size_; }

  private:
    Arena* arena_ = nullptr;
    T* data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t capacity_ = 0;
};

}  // namespace dfp
