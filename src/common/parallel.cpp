#include "common/parallel.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"

namespace dfp {

namespace {

using Clock = std::chrono::steady_clock;

// How long an idle worker sleeps before rescanning the queues. The wake
// condition variable makes this a backstop, not the wake path.
constexpr auto kIdleWait = std::chrono::milliseconds(10);

// Process-lifetime tallies across every pool, folded in by ~ThreadPool.
std::atomic<std::uint64_t> g_process_busy_ns{0};
std::atomic<std::uint64_t> g_process_worker_wall_ns{0};

}  // namespace

std::size_t ResolveNumThreads(std::size_t requested) {
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t num_workers) {
    const std::size_t n = std::max<std::size_t>(1, num_workers);
    queues_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        queues_.push_back(std::make_unique<WorkerQueue>());
    }
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
}

ThreadPool::~ThreadPool() {
    shutdown_.store(true, std::memory_order_release);
    wake_cv_.notify_all();
    for (std::thread& t : workers_) t.join();

    auto& registry = obs::Registry::Get();
    registry.GetCounter("dfp.parallel.tasks")
        .Inc(tasks_executed_.load(std::memory_order_relaxed));
    registry.GetCounter("dfp.parallel.tasks_spawned")
        .Inc(tasks_spawned_.load(std::memory_order_relaxed));
    const std::uint64_t steals = steals_.load(std::memory_order_relaxed);
    registry.GetCounter("dfp.parallel.steals").Inc(steals);
    registry.GetCounter("dfp.parallel.steal_count").Inc(steals);
    registry.GetGauge("dfp.parallel.workers")
        .Set(static_cast<double>(num_workers()));
    registry.GetGauge("dfp.parallel.max_queue_depth")
        .Set(static_cast<double>(
            max_queue_depth_.load(std::memory_order_relaxed)));
    const std::uint64_t wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             created_)
            .count());
    const std::uint64_t busy = busy_ns_.load(std::memory_order_relaxed);
    g_process_busy_ns.fetch_add(busy, std::memory_order_relaxed);
    g_process_worker_wall_ns.fetch_add(
        wall_ns * static_cast<std::uint64_t>(num_workers()),
        std::memory_order_relaxed);
    if (wall_ns > 0) {
        registry.GetGauge("dfp.parallel.utilization")
            .Set(static_cast<double>(busy) /
                 (static_cast<double>(wall_ns) *
                  static_cast<double>(num_workers())));
    }
}

std::uint64_t ThreadPool::ProcessBusyNs() {
    return g_process_busy_ns.load(std::memory_order_relaxed);
}

std::uint64_t ThreadPool::ProcessWorkerWallNs() {
    return g_process_worker_wall_ns.load(std::memory_order_relaxed);
}

void ThreadPool::Submit(Task task, std::size_t queue) {
    const std::size_t q =
        queue < queues_.size()
            ? queue
            : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                  queues_.size();
    {
        std::lock_guard<std::mutex> lock(queues_[q]->mu);
        queues_[q]->tasks.push_back(std::move(task));
    }
    tasks_spawned_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t depth =
        queued_.fetch_add(1, std::memory_order_release) + 1;
    std::uint64_t seen = max_queue_depth_.load(std::memory_order_relaxed);
    while (depth > seen && !max_queue_depth_.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }
    wake_cv_.notify_one();
}

bool ThreadPool::RunOneTask(std::size_t self, std::size_t slot) {
    Task task;
    const std::size_t n = queues_.size();
    for (std::size_t probe = 0; probe < n; ++probe) {
        const std::size_t q = (self + probe) % n;
        WorkerQueue& wq = *queues_[q];
        std::lock_guard<std::mutex> lock(wq.mu);
        if (wq.tasks.empty()) continue;
        if (probe == 0) {
            // Own queue: LIFO, the most recently pushed (cache-warm) task —
            // for recursive mining splits this walks the subtree depth-first,
            // exactly the order the serial miner would visit it.
            task = std::move(wq.tasks.back());
            wq.tasks.pop_back();
        } else {
            // Steal: FIFO, the oldest task of the victim (largest subtree).
            task = std::move(wq.tasks.front());
            wq.tasks.pop_front();
            steals_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
    }
    if (!task) return false;
    queued_.fetch_sub(1, std::memory_order_relaxed);
    const auto start = Clock::now();
    task(slot);
    busy_ns_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 start)
                .count()),
        std::memory_order_relaxed);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

std::size_t ThreadPool::AcquireHelperSlot() {
    std::uint64_t mask = helper_slots_.load(std::memory_order_relaxed);
    for (;;) {
        std::size_t bit = 0;
        while (bit < kMaxHelperSlots && ((mask >> bit) & 1u) != 0) ++bit;
        if (bit == kMaxHelperSlots) return kNoQueue;
        const std::uint64_t want = mask | (std::uint64_t{1} << bit);
        if (helper_slots_.compare_exchange_weak(mask, want,
                                                std::memory_order_acquire,
                                                std::memory_order_relaxed)) {
            return num_workers() + bit;
        }
    }
}

void ThreadPool::ReleaseHelperSlot(std::size_t slot) {
    const std::size_t bit = slot - num_workers();
    helper_slots_.fetch_and(~(std::uint64_t{1} << bit),
                            std::memory_order_release);
}

void ThreadPool::WorkerLoop(std::size_t index) {
    for (;;) {
        if (RunOneTask(index, index)) continue;
        // Queues were empty on the last scan: drain-then-exit on shutdown,
        // otherwise sleep until a submit (or the idle backstop) wakes us.
        if (shutdown_.load(std::memory_order_acquire)) return;
        std::unique_lock<std::mutex> lock(wake_mu_);
        wake_cv_.wait_for(lock, kIdleWait, [this] {
            return shutdown_.load(std::memory_order_acquire) ||
                   queued_.load(std::memory_order_acquire) > 0;
        });
    }
}

void TaskGroup::Submit(std::function<void()> fn) {
    SubmitSlotted([fn = std::move(fn)](std::size_t) { fn(); });
}

void TaskGroup::SubmitSlotted(std::function<void(std::size_t)> fn,
                              std::size_t from_queue) {
    pending_.fetch_add(1, std::memory_order_acq_rel);
    pool_.Submit(
        [this, fn = std::move(fn)](std::size_t slot) {
            fn(slot);
            // Decrement *under* done_mu_: Wait() only returns after observing
            // pending_ == 0 while holding the lock, which the last task can
            // only have released on its way out — so by the time the caller
            // destroys the group, no task will touch the mutex or cv again.
            // A task that spawned children bumped pending_ before reaching
            // this line, so the count never dips to zero while descendants
            // are still queued.
            std::lock_guard<std::mutex> lock(done_mu_);
            if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                done_cv_.notify_all();
            }
        },
        from_queue);
}

void TaskGroup::Wait() {
    {
        // The already-done fast path must still synchronise through done_mu_:
        // the last task decrements pending_ and broadcasts *under* the lock,
        // so an unsynchronised load could observe 0 and let the caller
        // destroy the group while that task is still inside notify_all() /
        // the unlock — acquiring the mutex orders our return (and the
        // group's destruction) after the straggler has fully let go.
        std::lock_guard<std::mutex> lock(done_mu_);
        if (pending_.load(std::memory_order_acquire) == 0) return;
    }
    // Borrow an execution slot so tasks run here can use WorkerLocal scratch
    // without clashing with any worker. If all helper slots are taken (> 16
    // threads blocked in Wait at once), skip helping and just block.
    const std::size_t slot = pool_.AcquireHelperSlot();
    std::size_t probe = 0;
    for (;;) {
        if (slot != ThreadPool::kNoQueue) {
            // Help: execute queued tasks (this group's or anyone's) instead
            // of blocking a thread the fixed-size pool may need.
            while (pending_.load(std::memory_order_acquire) > 0) {
                if (!pool_.RunOneTask(probe++ % pool_.num_workers(), slot)) {
                    break;
                }
            }
        }
        // Destruction-safe exit: conclude "done" only while holding done_mu_
        // (see SubmitSlotted). A timeout loops back to helping — stragglers
        // may have queued nested work this thread can run.
        std::unique_lock<std::mutex> lock(done_mu_);
        if (done_cv_.wait_for(lock, kIdleWait, [this] {
                return pending_.load(std::memory_order_acquire) == 0;
            })) {
            break;
        }
    }
    if (slot != ThreadPool::kNoQueue) pool_.ReleaseHelperSlot(slot);
}

void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 std::size_t min_grain) {
    if (n == 0) return;
    const std::size_t workers = pool == nullptr ? 1 : pool->num_workers();
    const std::size_t grain = std::max<std::size_t>(1, min_grain);
    // ≈ 4 chunks per worker so steals can balance uneven chunk costs.
    const std::size_t target_chunks = workers * 4;
    const std::size_t chunk =
        std::max(grain, (n + target_chunks - 1) / target_chunks);
    if (workers <= 1 || chunk >= n) {
        body(0, n);
        return;
    }
    TaskGroup group(*pool);
    for (std::size_t begin = 0; begin < n; begin += chunk) {
        const std::size_t end = std::min(n, begin + chunk);
        group.Submit([&body, begin, end] { body(begin, end); });
    }
    group.Wait();
}

ExecutionBudget TaskBudget(const ExecutionBudget& budget,
                           const DeadlineTimer& timer) {
    ExecutionBudget b = budget;
    if (!timer.unlimited()) b.time_budget_ms = timer.remaining_ms();
    return b;
}

}  // namespace dfp
