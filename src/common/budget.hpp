// Budgeted execution and graceful degradation primitives.
//
// The paper's Tables 3–5 show what happens when min_sup is set too low:
// pattern enumeration explodes combinatorially. A production pipeline must
// survive that instead of hanging or OOMing, so every long-running stage
// (mining DFS/level loops, MMRFS greedy selection, SMO pair updates) threads
// an ExecutionBudget through a BudgetGuard and checks it cooperatively:
//
//  * ExecutionBudget — declarative limits: wall-clock deadline, pattern cap,
//    estimated-memory cap, and an optional shared CancelToken.
//  * BudgetGuard     — the armed per-operation checker. Check() is designed
//    for hot loops: a few branches per call, clock reads amortized over
//    kClockStride calls. The first breach is sticky.
//  * CancelToken     — thread-safe cooperative cancellation, with a
//    deterministic fault-injection fuse (CancelAfterChecks) so every
//    degradation path is unit-testable without timing races.
//  * GuardLog        — process-wide log of degradation events; every Record()
//    also bumps the matching `dfp.guard.<kind>` counter so guard activity
//    flows into run reports (obs/report.hpp renders a "guard" section).
//  * MineOutcome<P>  — partial results + the breach that stopped enumeration.
//    A truncated mine is still *sound*: every emitted pattern has its exact
//    support; the set is merely incomplete.
//  * BudgetReport    — per-Train summary of what was truncated, where, and
//    how the pipeline degraded (min_sup escalations, retries).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dfp {

/// Why an operation stopped early. kNone means it ran to completion.
enum class BudgetBreach {
    kNone = 0,
    kDeadline,    ///< wall-clock budget exhausted
    kPatternCap,  ///< pattern-count cap reached
    kMemoryCap,   ///< estimated memory cap exceeded
    kCancelled,   ///< CancelToken fired
};

/// Short identifier ("deadline", "pattern_cap", ...) used for guard events
/// and `dfp.guard.*` metric names.
const char* BudgetBreachName(BudgetBreach breach);

/// Thread-safe cooperative cancellation. Shared by the caller with any number
/// of budget-guarded operations; Cancel() makes every subsequent Poll()/
/// cancelled() observation true.
class CancelToken {
  public:
    void Cancel() { cancelled_.store(true, std::memory_order_release); }
    bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

    /// Clears the flag and disarms the fuse (for token reuse in tests).
    void Reset() {
        cancelled_.store(false, std::memory_order_release);
        fuse_.store(-1, std::memory_order_release);
    }

    /// Deterministic fault-injection seam: the token fires on the `checks`-th
    /// Poll() observation. CancelAfterChecks(1) fires on the first check.
    void CancelAfterChecks(std::int64_t checks) {
        fuse_.store(checks, std::memory_order_release);
    }

    /// Counts one cooperative check (burning the fuse if armed) and returns
    /// whether the token has fired.
    bool Poll() {
        if (fuse_.load(std::memory_order_relaxed) >= 0 &&
            fuse_.fetch_sub(1, std::memory_order_relaxed) <= 1) {
            Cancel();
        }
        return cancelled();
    }

  private:
    std::atomic<bool> cancelled_{false};
    /// Remaining Poll()s before auto-cancel; negative = disarmed.
    std::atomic<std::int64_t> fuse_{-1};
};

/// Declarative execution limits. Default-constructed = unlimited, so adding a
/// budget field to a config struct changes nothing until a caller opts in.
struct ExecutionBudget {
    /// Wall-clock budget in milliseconds; negative = unlimited.
    double time_budget_ms = -1.0;
    /// Additional pattern cap applied on top of any per-algorithm cap.
    std::size_t max_patterns = std::numeric_limits<std::size_t>::max();
    /// Estimated-memory cap in bytes; 0 = unlimited. Estimates are coarse
    /// (emitted patterns + per-level index structures), by design.
    std::size_t max_memory_bytes = 0;
    /// Optional cancellation token (borrowed, not owned; may be null).
    CancelToken* cancel = nullptr;

    bool Unlimited() const {
        return time_budget_ms < 0.0 &&
               max_patterns == std::numeric_limits<std::size_t>::max() &&
               max_memory_bytes == 0 && cancel == nullptr;
    }
};

/// Wall-clock deadline resolved at construction. Used by the pipeline to
/// derive per-stage remaining budgets from one overall deadline.
class DeadlineTimer {
  public:
    /// `budget_ms` < 0 means no deadline.
    explicit DeadlineTimer(double budget_ms) : limited_(budget_ms >= 0.0) {
        if (limited_) {
            deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                           std::chrono::duration<double, std::milli>(
                                               budget_ms));
        }
    }

    bool unlimited() const { return !limited_; }

    /// Milliseconds until the deadline, clamped to >= 0. Unlimited timers
    /// report a negative value (the ExecutionBudget convention).
    double remaining_ms() const {
        if (!limited_) return -1.0;
        const double ms =
            std::chrono::duration<double, std::milli>(deadline_ - Clock::now())
                .count();
        return ms > 0.0 ? ms : 0.0;
    }

    bool expired() const { return limited_ && Clock::now() >= deadline_; }

  private:
    using Clock = std::chrono::steady_clock;
    bool limited_;
    Clock::time_point deadline_{};
};

/// Armed budget checker for one operation. Cheap enough for mining DFS loops:
/// pattern/memory caps and the cancel flag are checked every call; the clock
/// only every kClockStride calls (so micro-bench timings don't regress when
/// budgets are enabled but not firing).
class BudgetGuard {
  public:
    /// `pattern_cap` is the per-algorithm cap (e.g. MinerConfig::max_patterns);
    /// the effective cap is its min with budget.max_patterns. `clock_stride`
    /// is how many Check() calls share one clock read: keep the default in
    /// hot per-pattern loops; pass 1 when each check covers substantial work
    /// (an SGD epoch, a greedy selection round).
    explicit BudgetGuard(
        const ExecutionBudget& budget,
        std::size_t pattern_cap = std::numeric_limits<std::size_t>::max(),
        std::uint64_t clock_stride = kClockStride)
        : cancel_(budget.cancel),
          timer_(budget.time_budget_ms),
          pattern_cap_(std::min(pattern_cap, budget.max_patterns)),
          memory_cap_(budget.max_memory_bytes),
          clock_stride_(clock_stride == 0 ? 1 : clock_stride) {}

    /// Cooperative check: `emitted` results so far, `est_bytes` the coarse
    /// memory estimate. Returns kNone or the (sticky) first breach.
    BudgetBreach Check(std::size_t emitted, std::size_t est_bytes = 0) {
        if (breach_ != BudgetBreach::kNone) return breach_;
        ++checks_;
        if (emitted >= pattern_cap_) return breach_ = BudgetBreach::kPatternCap;
        if (memory_cap_ != 0 && est_bytes > memory_cap_) {
            return breach_ = BudgetBreach::kMemoryCap;
        }
        if (cancel_ != nullptr && cancel_->Poll()) {
            return breach_ = BudgetBreach::kCancelled;
        }
        if (!timer_.unlimited() && checks_ % clock_stride_ == 0 &&
            timer_.expired()) {
            return breach_ = BudgetBreach::kDeadline;
        }
        return BudgetBreach::kNone;
    }

    BudgetBreach breach() const { return breach_; }
    bool ok() const { return breach_ == BudgetBreach::kNone; }
    std::uint64_t checks() const { return checks_; }

    /// Clock reads happen on every kClockStride-th Check() call.
    static constexpr std::uint64_t kClockStride = 64;

  private:
    CancelToken* cancel_;
    DeadlineTimer timer_;
    std::size_t pattern_cap_;
    std::size_t memory_cap_;
    std::uint64_t clock_stride_;
    BudgetBreach breach_ = BudgetBreach::kNone;
    std::uint64_t checks_ = 0;
};

/// Partial mining result: whatever was enumerated before `breach` fired.
/// Every pattern carries its exact support (truncated ≠ unsound).
template <typename PatternT>
struct MineOutcome {
    std::vector<PatternT> patterns;
    BudgetBreach breach = BudgetBreach::kNone;

    bool complete() const { return breach == BudgetBreach::kNone; }
    bool truncated() const { return !complete(); }
};

/// One degradation event: which stage, what kind ("deadline", "cancelled",
/// "minsup_escalated", "smo_nonconverged", ...), and a scalar detail (e.g.
/// patterns kept, escalated min_sup).
struct GuardEvent {
    std::string stage;
    std::string kind;
    double value = 0.0;
};

/// Process-wide, thread-safe log of guard events. Record() also bumps the
/// `dfp.guard.<kind>` counter so events show up in metric snapshots; run
/// reports drain the structured log into their "guard" section.
class GuardLog {
  public:
    static GuardLog& Get();

    void Record(std::string_view stage, std::string_view kind, double value = 0.0);

    std::vector<GuardEvent> Snapshot() const;
    /// Moves all events out (run-report collection).
    std::vector<GuardEvent> Drain();
    void Clear();
    std::size_t size() const;

  private:
    GuardLog() = default;

    mutable std::mutex mu_;
    std::vector<GuardEvent> events_;
};

/// Records `breach` (when != kNone) under `stage` with a scalar detail.
void RecordBreach(std::string_view stage, BudgetBreach breach, double value = 0.0);

/// Summary of how one pipeline Train run degraded under its budget.
struct BudgetReport {
    /// Mining attempts (1 = no retry).
    std::size_t mine_attempts = 0;
    /// min_sup escalations along the IG_ub ladder.
    std::size_t minsup_escalations = 0;
    /// Last escalated relative min_sup (< 0 when never escalated).
    double escalated_min_sup_rel = -1.0;
    /// Breach accepted for the final candidate set (kNone = complete mine).
    BudgetBreach mine_breach = BudgetBreach::kNone;
    /// Feature selection stopped early.
    BudgetBreach select_breach = BudgetBreach::kNone;
    /// Guard events observed during the run (mining, selection, learning).
    std::vector<GuardEvent> events;

    bool mine_truncated() const { return mine_breach != BudgetBreach::kNone; }
    bool select_truncated() const { return select_breach != BudgetBreach::kNone; }
    bool degraded() const {
        return mine_truncated() || select_truncated() || minsup_escalations > 0;
    }
};

}  // namespace dfp
