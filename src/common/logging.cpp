#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/string_util.hpp"

namespace dfp {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::once_flag g_env_once;

// The sink is guarded by a mutex: replacement and invocation are serialized,
// so concurrent LogMessage calls cannot interleave writes or race a swap.
std::mutex g_sink_mu;
LogSink g_sink;  // empty = default stderr sink

const char* LevelName(LogLevel level) {
    switch (level) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}

// DFP_LOG_LEVEL is read once, lazily, before the first level access; an
// explicit SetLogLevel afterwards wins.
void EnsureEnvInit() {
    std::call_once(g_env_once, [] {
        const char* env = std::getenv("DFP_LOG_LEVEL");
        LogLevel level;
        if (env != nullptr && ParseLogLevel(env, &level)) {
            g_level.store(static_cast<int>(level), std::memory_order_relaxed);
        }
    });
}

}  // namespace

bool ParseLogLevel(std::string_view text, LogLevel* out) {
    std::string lower;
    lower.reserve(text.size());
    for (char c : Trim(text)) {
        lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a')
                                             : c);
    }
    if (lower == "debug") {
        *out = LogLevel::kDebug;
    } else if (lower == "info") {
        *out = LogLevel::kInfo;
    } else if (lower == "warn" || lower == "warning") {
        *out = LogLevel::kWarn;
    } else if (lower == "error") {
        *out = LogLevel::kError;
    } else if (lower == "off" || lower == "none") {
        *out = LogLevel::kOff;
    } else {
        long v = 0;
        if (!ParseInt(lower, &v) || v < 0 ||
            v > static_cast<long>(LogLevel::kOff)) {
            return false;
        }
        *out = static_cast<LogLevel>(v);
    }
    return true;
}

void SetLogLevel(LogLevel level) {
    EnsureEnvInit();  // consume the env var so it cannot clobber this later
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
    EnsureEnvInit();
    return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void SetLogSink(LogSink sink) {
    std::lock_guard<std::mutex> lock(g_sink_mu);
    g_sink = std::move(sink);
}

void LogMessage(LogLevel level, const std::string& msg) {
    const LogLevel threshold = GetLogLevel();
    if (level < threshold || threshold == LogLevel::kOff) return;
    std::lock_guard<std::mutex> lock(g_sink_mu);
    if (g_sink) {
        g_sink(level, msg);
    } else {
        std::fprintf(stderr, "[dfp %s] %s\n", LevelName(level), msg.c_str());
    }
}

}  // namespace dfp
