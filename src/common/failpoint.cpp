#include "common/failpoint.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/string_util.hpp"
#include "obs/metrics.hpp"

namespace dfp {

namespace {

/// Set while at least one failpoint is armed. DFP_FAILPOINT's fast path.
std::atomic<bool> g_failpoints_enabled{false};

}  // namespace

const char* FailpointKindName(FailpointKind kind) {
    switch (kind) {
        case FailpointKind::kNone: return "none";
        case FailpointKind::kError: return "error";
        case FailpointKind::kShortWrite: return "short";
        case FailpointKind::kEintr: return "eintr";
        case FailpointKind::kTimeout: return "timeout";
        case FailpointKind::kAllocFail: return "alloc";
        case FailpointKind::kDelay: return "delay";
        case FailpointKind::kAbort: return "abort";
    }
    return "unknown";
}

const FailpointAction& FailpointAction::Sleep() const {
    if (delay_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
    }
    return *this;
}

std::uint64_t Fnv1a64(std::string_view bytes) {
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ull;
    }
    return h;
}

void Failpoint::Arm(Mode mode, double param, FailpointKind kind,
                    double delay_ms, std::uint64_t seed) {
    std::lock_guard<std::mutex> lock(mu_);
    mode_ = mode;
    param_ = param;
    kind_ = kind;
    delay_ms_ = delay_ms;
    rng_.Seed(seed ^ Fnv1a64(name_));
    hits_.store(0, std::memory_order_relaxed);
    trips_.store(0, std::memory_order_relaxed);
}

void Failpoint::Disarm() {
    std::lock_guard<std::mutex> lock(mu_);
    mode_ = Mode::kOff;
}

FailpointAction Failpoint::Evaluate() {
    bool fire = false;
    FailpointAction action;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (mode_ == Mode::kOff) return {};
        const std::uint64_t hit =
            hits_.fetch_add(1, std::memory_order_relaxed) + 1;  // 1-based
        switch (mode_) {
            case Mode::kOff: break;
            case Mode::kAlways: fire = true; break;
            case Mode::kProb: fire = rng_.Bernoulli(param_); break;
            case Mode::kNth:
                fire = hit == static_cast<std::uint64_t>(param_);
                break;
            case Mode::kEvery: {
                const auto n = static_cast<std::uint64_t>(param_);
                fire = n > 0 && hit % n == 0;
                break;
            }
        }
        if (fire) {
            action.kind = kind_;
            action.delay_ms = delay_ms_;
        }
    }
    if (fire) {
        trips_.fetch_add(1, std::memory_order_relaxed);
        obs::Registry::Get().GetCounter("dfp.failpoint." + name_).Inc();
        if (action.kind == FailpointKind::kAbort) {
            std::fprintf(stderr, "dfp: failpoint '%s' aborting (injected)\n",
                         name_.c_str());
            std::fflush(stderr);
            std::abort();
        }
    }
    return action;
}

FailpointRegistry& FailpointRegistry::Get() {
    static FailpointRegistry* registry = new FailpointRegistry();
    return *registry;
}

Failpoint& FailpointRegistry::GetOrCreate(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(name);
    if (it == points_.end()) {
        it = points_
                 .emplace(std::string(name),
                          std::make_unique<Failpoint>(std::string(name)))
                 .first;
    }
    return *it->second;
}

Failpoint* FailpointRegistry::Find(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = points_.find(name);
    return it == points_.end() ? nullptr : it->second.get();
}

std::vector<FailpointRegistry::Stats> FailpointRegistry::Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Stats> out;
    out.reserve(points_.size());
    for (const auto& [name, fp] : points_) {
        out.push_back(Stats{name, fp->hits(), fp->trips()});
    }
    return out;
}

std::uint64_t FailpointRegistry::TotalTrips() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t total = 0;
    for (const auto& [name, fp] : points_) total += fp->trips();
    return total;
}

void FailpointRegistry::DisableAll() {
    g_failpoints_enabled.store(false, std::memory_order_release);
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, fp] : points_) fp->Disarm();
}

namespace {

struct ParsedPoint {
    std::string name;
    Failpoint::Mode mode = Failpoint::Mode::kOff;
    double param = 0.0;
    FailpointKind kind = FailpointKind::kError;
    double delay_ms = 0.0;
};

/// "prob(0.1)" -> {"prob", "0.1"}; "always" -> {"always", ""}.
Status SplitCall(std::string_view token, std::string* head, std::string* arg) {
    const std::size_t open = token.find('(');
    if (open == std::string_view::npos) {
        *head = std::string(token);
        arg->clear();
        return Status::Ok();
    }
    if (token.back() != ')') {
        return Status::InvalidArgument("failpoint spec: unbalanced '(' in '" +
                                       std::string(token) + "'");
    }
    *head = std::string(token.substr(0, open));
    *arg = std::string(token.substr(open + 1, token.size() - open - 2));
    return Status::Ok();
}

Status ParseNumber(const std::string& text, const std::string& where,
                   double* out) {
    char* end = nullptr;
    *out = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("failpoint spec: bad number '" + text +
                                       "' in " + where);
    }
    return Status::Ok();
}

Status ParseOnePoint(std::string_view entry, ParsedPoint* out) {
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
        return Status::InvalidArgument(
            "failpoint spec: expected 'name=mode[:kind]', got '" +
            std::string(entry) + "'");
    }
    out->name = std::string(Trim(entry.substr(0, eq)));
    std::string rest(Trim(entry.substr(eq + 1)));

    std::string mode_token = rest;
    std::string kind_token;
    // Split on the ':' between mode and kind; a ':' inside parentheses (none
    // of the grammar's args contain one) is not a concern.
    if (const std::size_t colon = rest.find(':'); colon != std::string::npos) {
        mode_token = std::string(Trim(std::string_view(rest).substr(0, colon)));
        kind_token = std::string(Trim(std::string_view(rest).substr(colon + 1)));
    }

    std::string head;
    std::string arg;
    DFP_RETURN_NOT_OK(SplitCall(mode_token, &head, &arg));
    if (head == "off") {
        out->mode = Failpoint::Mode::kOff;
    } else if (head == "always") {
        out->mode = Failpoint::Mode::kAlways;
    } else if (head == "prob") {
        out->mode = Failpoint::Mode::kProb;
        DFP_RETURN_NOT_OK(ParseNumber(arg, "prob()", &out->param));
        if (out->param < 0.0 || out->param > 1.0) {
            return Status::InvalidArgument(
                "failpoint spec: prob() needs a probability in [0,1]");
        }
    } else if (head == "nth" || head == "every") {
        out->mode =
            head == "nth" ? Failpoint::Mode::kNth : Failpoint::Mode::kEvery;
        DFP_RETURN_NOT_OK(ParseNumber(arg, head + "()", &out->param));
        if (out->param < 1.0) {
            return Status::InvalidArgument("failpoint spec: " + head +
                                           "() needs N >= 1");
        }
    } else {
        return Status::InvalidArgument("failpoint spec: unknown mode '" + head +
                                       "'");
    }

    if (!kind_token.empty()) {
        DFP_RETURN_NOT_OK(SplitCall(kind_token, &head, &arg));
        if (head == "error") {
            out->kind = FailpointKind::kError;
        } else if (head == "short") {
            out->kind = FailpointKind::kShortWrite;
        } else if (head == "eintr") {
            out->kind = FailpointKind::kEintr;
        } else if (head == "timeout") {
            out->kind = FailpointKind::kTimeout;
        } else if (head == "alloc") {
            out->kind = FailpointKind::kAllocFail;
        } else if (head == "abort") {
            out->kind = FailpointKind::kAbort;
        } else if (head == "delay") {
            out->kind = FailpointKind::kDelay;
            DFP_RETURN_NOT_OK(ParseNumber(arg, "delay()", &out->delay_ms));
            if (out->delay_ms < 0.0) {
                return Status::InvalidArgument(
                    "failpoint spec: delay() needs ms >= 0");
            }
        } else {
            return Status::InvalidArgument("failpoint spec: unknown kind '" +
                                           head + "'");
        }
    }
    return Status::Ok();
}

}  // namespace

Status FailpointRegistry::Configure(std::string_view spec, std::uint64_t seed) {
    // Parse everything before touching any state, so a malformed spec arms
    // nothing (and leaves a previously armed schedule intact).
    std::vector<ParsedPoint> parsed;
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        std::size_t end = spec.find(';', begin);
        if (end == std::string_view::npos) end = spec.size();
        const std::string entry(Trim(spec.substr(begin, end - begin)));
        begin = end + 1;
        if (entry.empty()) continue;
        ParsedPoint point;
        DFP_RETURN_NOT_OK(ParseOnePoint(entry, &point));
        parsed.push_back(std::move(point));
    }

    DisableAll();
    bool any_armed = false;
    for (const ParsedPoint& point : parsed) {
        Failpoint& fp = GetOrCreate(point.name);
        if (point.mode == Failpoint::Mode::kOff) continue;
        fp.Arm(point.mode, point.param, point.kind, point.delay_ms, seed);
        any_armed = true;
    }
    g_failpoints_enabled.store(any_armed, std::memory_order_release);
    return Status::Ok();
}

bool FailpointsEnabled() {
    return g_failpoints_enabled.load(std::memory_order_relaxed);
}

FailpointAction EvaluateFailpoint(const char* name) {
    return FailpointRegistry::Get().GetOrCreate(name).Evaluate();
}

Status ConfigureFailpointsFromEnv() {
    const char* spec = std::getenv("DFP_FAILPOINTS");
    if (spec == nullptr || *spec == '\0') return Status::Ok();
    std::uint64_t seed = 1;
    if (const char* seed_env = std::getenv("DFP_FAILPOINT_SEED");
        seed_env != nullptr && *seed_env != '\0') {
        seed = std::strtoull(seed_env, nullptr, 10);
    }
    return FailpointRegistry::Get().Configure(spec, seed);
}

}  // namespace dfp
