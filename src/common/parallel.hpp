// Fixed-size work-stealing thread pool for the mining → selection → learning
// hot paths.
//
// Design constraints (DESIGN.md §11):
//  * Determinism. The pool schedules *when* tasks run, never *what they
//    compute*: every parallel call site fans out over an index space decided
//    up front, each task writes only its own slot, and results are merged in
//    task-index order. With `num_threads == 1` callers bypass the pool
//    entirely and run today's serial code, instruction for instruction.
//  * Budget cooperation. Workers never block inside a task: each parallel
//    region gives every task its own BudgetGuard built from one shared
//    ExecutionBudget (same CancelToken, same wall-clock deadline, shared
//    atomic emitted/memory tallies), so a breach observed by one task is
//    observed by all others within a clock stride — the queue drains and
//    partial results flow back through the normal MineOutcome path.
//  * Observability. The pool publishes `dfp.parallel.*` metrics on
//    destruction: tasks executed, steals, workers, and worker utilization
//    (busy time / wall time summed over workers).
//
// Concurrency model: one mutex-guarded deque per worker plus round-robin
// external submission. Workers pop LIFO from their own deque (cache-friendly
// for the mining DFS fan-out) and steal FIFO from siblings. This is
// deliberately lock-based rather than a lock-free Chase–Lev deque: tasks here
// are coarse (a whole conditional subtree, an SMO pair solve, a CV fold), so
// queue overhead is noise, and the mutexes make the pool trivially clean
// under ThreadSanitizer.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/budget.hpp"

namespace dfp {

/// Resolves a requested thread count: 0 = one worker per hardware thread
/// (at least 1), anything else is taken literally.
std::size_t ResolveNumThreads(std::size_t requested);

class TaskGroup;

/// Fixed-size work-stealing pool. Construction spawns the workers; the
/// destructor drains nothing — it waits only for tasks already *running* and
/// asserts the queues are empty (every submit happens through a TaskGroup,
/// and TaskGroup::Wait returns only when its tasks finished).
class ThreadPool {
  public:
    /// Spawns `num_workers` workers (minimum 1).
    explicit ThreadPool(std::size_t num_workers);
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;
    /// Joins all workers and flushes `dfp.parallel.*` metrics.
    ~ThreadPool();

    std::size_t num_workers() const { return workers_.size(); }

    /// Lifetime totals (exposed for tests; also published as metrics).
    std::uint64_t tasks_executed() const {
        return tasks_executed_.load(std::memory_order_relaxed);
    }
    std::uint64_t steals() const {
        return steals_.load(std::memory_order_relaxed);
    }

  private:
    friend class TaskGroup;

    using Task = std::function<void()>;

    struct WorkerQueue {
        std::mutex mu;
        std::deque<Task> tasks;
    };

    /// Enqueues one task (round-robin across worker queues) and wakes a
    /// worker. Called by TaskGroup.
    void Submit(Task task);

    /// Runs one queued task on the calling thread if any is available.
    /// `self` is the preferred queue index (the worker's own; external
    /// helpers pass a rotating index). Returns false when every queue was
    /// empty at the time of the scan.
    bool RunOneTask(std::size_t self);

    void WorkerLoop(std::size_t index);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex wake_mu_;
    std::condition_variable wake_cv_;
    std::atomic<bool> shutdown_{false};
    std::atomic<std::size_t> next_queue_{0};
    std::atomic<std::uint64_t> queued_{0};  // tasks submitted, not yet started

    // Lifetime tallies, flushed to the obs registry by the destructor.
    std::atomic<std::uint64_t> tasks_executed_{0};
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<std::uint64_t> busy_ns_{0};
    std::chrono::steady_clock::time_point created_ = std::chrono::steady_clock::now();
};

/// A batch of tasks whose completion can be awaited. Wait() *helps*: while
/// tasks of any group are pending in the pool it executes them on the calling
/// thread, so nested parallel regions (grid search → CV folds → OvO pairs)
/// cannot deadlock the fixed-size pool.
class TaskGroup {
  public:
    explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;
    /// Waits for stragglers (Wait() is idempotent and called here defensively).
    ~TaskGroup() { Wait(); }

    /// Enqueues `fn`. Exceptions must not escape `fn` (tasks run on pool
    /// threads; the mining/learning call sites report failures through their
    /// Status/breach slots instead).
    void Submit(std::function<void()> fn);

    /// Blocks until every task submitted to this group has finished, running
    /// queued tasks on the calling thread while it waits.
    void Wait();

  private:
    ThreadPool& pool_;
    std::atomic<std::size_t> pending_{0};
    std::mutex done_mu_;
    std::condition_variable done_cv_;
};

/// Splits [0, n) into contiguous chunks (≈ 4 per worker, never smaller than
/// `min_grain`) and runs `body(begin, end)` for each, blocking until all
/// chunks finished. With a null pool, one worker, or a single chunk the body
/// runs inline on the calling thread — the serial path, exactly.
///
/// `body` must only write to disjoint, index-addressed state: chunk
/// boundaries are deterministic, execution order is not.
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 std::size_t min_grain = 1);

/// Shared tallies that let per-task BudgetGuards enforce *global* caps across
/// a parallel region: tasks add their emissions here and pass the running
/// totals to BudgetGuard::Check(), so a pattern/memory cap fires pool-wide
/// (approximately — concurrent emissions may overshoot by at most one pattern
/// per worker) and a deadline/cancel breach is observed by every task.
struct SharedMineProgress {
    std::atomic<std::size_t> emitted{0};
    std::atomic<std::size_t> est_bytes{0};

    std::size_t AddEmitted(std::size_t n = 1) {
        return emitted.fetch_add(n, std::memory_order_relaxed) + n;
    }
    std::size_t AddBytes(std::size_t n) {
        return est_bytes.fetch_add(n, std::memory_order_relaxed) + n;
    }
};

/// Builds the per-task budget for a parallel region: same caps and token as
/// `budget`, with the wall-clock deadline re-anchored to the time remaining
/// on `timer` (so late-starting tasks share the region's single deadline
/// instead of getting a fresh window).
ExecutionBudget TaskBudget(const ExecutionBudget& budget,
                           const DeadlineTimer& timer);

}  // namespace dfp
