// Fixed-size work-stealing thread pool for the mining → selection → learning
// hot paths.
//
// Design constraints (DESIGN.md §11, §17):
//  * Determinism. The pool schedules *when* tasks run, never *what they
//    compute*: every parallel call site either fans out over an index space
//    decided up front (each task writes only its own slot, results merged in
//    task-index order) or emits into keyed shards merged in canonical key
//    order (the recursive mining decomposition, DESIGN.md §17). With
//    `num_threads == 1` callers bypass the pool entirely and run today's
//    serial code, instruction for instruction.
//  * Budget cooperation. Workers never block inside a task: each parallel
//    region gives every task its own BudgetGuard built from one shared
//    ExecutionBudget (same CancelToken, same wall-clock deadline, shared
//    atomic emitted/memory tallies), so a breach observed by one task is
//    observed by all others within a clock stride — the queue drains and
//    partial results flow back through the normal MineOutcome path.
//  * Recursive decomposition. Tasks may submit further tasks into the same
//    TaskGroup from inside the pool (a mining subtree re-submitting its
//    children). Submissions from a worker go to that worker's own queue
//    (LIFO pop → depth-first locality); the spawning worker never waits for
//    its children — only the region's single TaskGroup::Wait does, and it
//    *helps* (executes queued tasks) instead of idling.
//  * Execution slots. Every task runs under an exclusive *slot index*
//    (workers own slots [0, num_workers); threads helping from Wait() borrow
//    one of kMaxHelperSlots extra slots), so per-slot scratch state — arenas,
//    per-depth buffers — is reused across tasks without locks or races
//    (WorkerLocal<T> below).
//  * Observability. The pool publishes `dfp.parallel.*` metrics on
//    destruction: tasks executed/spawned, steals (`steal_count`), the queue
//    depth high-water mark, workers, and worker utilization (busy time /
//    wall time summed over workers). Process-lifetime busy/wall tallies are
//    exposed so the pipeline can report a per-train utilization gauge across
//    the many short-lived pools a train creates.
//
// Concurrency model: one mutex-guarded deque per worker plus round-robin
// external submission. Workers pop LIFO from their own deque (cache-friendly
// for the mining DFS fan-out) and steal FIFO from siblings. This is
// deliberately lock-based rather than a lock-free Chase–Lev deque: tasks here
// are coarse (a conditional subtree above the split threshold, an SMO pair
// solve, a CV fold), so queue overhead is noise, and the mutexes make the
// pool trivially clean under ThreadSanitizer.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/budget.hpp"

namespace dfp {

/// Resolves a requested thread count: 0 = one worker per hardware thread
/// (at least 1), anything else is taken literally.
std::size_t ResolveNumThreads(std::size_t requested);

class TaskGroup;

/// Fixed-size work-stealing pool. Construction spawns the workers; the
/// destructor drains nothing — it waits only for tasks already *running* and
/// asserts the queues are empty (every submit happens through a TaskGroup,
/// and TaskGroup::Wait returns only when its tasks finished).
class ThreadPool {
  public:
    /// Sentinel for "no preferred queue" (round-robin submission).
    static constexpr std::size_t kNoQueue = static_cast<std::size_t>(-1);
    /// Extra execution slots for non-worker threads helping from Wait().
    static constexpr std::size_t kMaxHelperSlots = 16;

    /// Spawns `num_workers` workers (minimum 1).
    explicit ThreadPool(std::size_t num_workers);
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;
    /// Joins all workers and flushes `dfp.parallel.*` metrics.
    ~ThreadPool();

    std::size_t num_workers() const { return workers_.size(); }

    /// Upper bound (exclusive) on the slot index any task of this pool can
    /// observe: workers plus helper slots. Sizes WorkerLocal scratch.
    std::size_t num_slots() const {
        return workers_.size() + kMaxHelperSlots;
    }

    /// Lifetime totals (exposed for tests; also published as metrics).
    std::uint64_t tasks_executed() const {
        return tasks_executed_.load(std::memory_order_relaxed);
    }
    std::uint64_t tasks_spawned() const {
        return tasks_spawned_.load(std::memory_order_relaxed);
    }
    std::uint64_t steals() const {
        return steals_.load(std::memory_order_relaxed);
    }
    std::uint64_t max_queue_depth() const {
        return max_queue_depth_.load(std::memory_order_relaxed);
    }

    /// Process-lifetime tallies across all pools, accumulated when each pool
    /// is destroyed: worker busy nanoseconds and worker wall nanoseconds
    /// (wall time × workers). A caller spanning several short-lived pools
    /// (one pipeline Train) diffs these to compute its own utilization.
    static std::uint64_t ProcessBusyNs();
    static std::uint64_t ProcessWorkerWallNs();

  private:
    friend class TaskGroup;

    /// Tasks receive the exclusive execution-slot index they run under.
    using Task = std::function<void(std::size_t)>;

    struct WorkerQueue {
        std::mutex mu;
        std::deque<Task> tasks;
    };

    /// Enqueues one task and wakes a worker. `queue` selects the target
    /// worker queue (a worker submitting its own children passes its index
    /// for LIFO locality); kNoQueue means round-robin. Called by TaskGroup.
    void Submit(Task task, std::size_t queue);

    /// Runs one queued task on the calling thread if any is available.
    /// `self` is the preferred queue index; `slot` the exclusive execution
    /// slot the task runs under. Returns false when every queue was empty at
    /// the time of the scan.
    bool RunOneTask(std::size_t self, std::size_t slot);

    /// Borrows / returns a helper execution slot for a non-worker thread
    /// helping from Wait(). AcquireHelperSlot returns kNoQueue when all
    /// helper slots are taken (the caller then waits without helping — rare:
    /// it needs > kMaxHelperSlots distinct threads blocked in Wait at once).
    std::size_t AcquireHelperSlot();
    void ReleaseHelperSlot(std::size_t slot);

    void WorkerLoop(std::size_t index);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex wake_mu_;
    std::condition_variable wake_cv_;
    std::atomic<bool> shutdown_{false};
    std::atomic<std::size_t> next_queue_{0};
    std::atomic<std::uint64_t> queued_{0};  // tasks submitted, not yet started
    std::atomic<std::uint64_t> helper_slots_{0};  // bitmask of borrowed slots

    // Lifetime tallies, flushed to the obs registry by the destructor.
    std::atomic<std::uint64_t> tasks_executed_{0};
    std::atomic<std::uint64_t> tasks_spawned_{0};
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<std::uint64_t> max_queue_depth_{0};
    std::atomic<std::uint64_t> busy_ns_{0};
    std::chrono::steady_clock::time_point created_ = std::chrono::steady_clock::now();
};

/// A batch of tasks whose completion can be awaited. Wait() *helps*: while
/// tasks of any group are pending in the pool it executes them on the calling
/// thread (under a borrowed helper slot), so nested parallel regions (grid
/// search → CV folds → OvO pairs) cannot deadlock the fixed-size pool, and
/// recursive mining splits keep every thread busy until the frontier drains.
class TaskGroup {
  public:
    explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;
    /// Waits for stragglers (Wait() is idempotent and called here defensively).
    ~TaskGroup() { Wait(); }

    /// Enqueues `fn` (round-robin). Exceptions must not escape `fn` (tasks
    /// run on pool threads; the mining/learning call sites report failures
    /// through their Status/breach slots instead).
    void Submit(std::function<void()> fn);

    /// Enqueues a slot-aware task: `fn` receives the exclusive execution
    /// slot it runs under (index into WorkerLocal scratch). `from_queue` is
    /// the submitting worker's own queue for LIFO locality (pass the slot a
    /// running task received if it is < num_workers()), or
    /// ThreadPool::kNoQueue for round-robin. Tasks may call SubmitSlotted on
    /// their own group from inside the pool — that is the recursive mining
    /// decomposition path; the group's Wait() returns only after the whole
    /// spawn tree finished.
    void SubmitSlotted(std::function<void(std::size_t)> fn,
                       std::size_t from_queue = ThreadPool::kNoQueue);

    /// Blocks until every task submitted to this group has finished, running
    /// queued tasks on the calling thread while it waits.
    void Wait();

  private:
    ThreadPool& pool_;
    std::atomic<std::size_t> pending_{0};
    std::mutex done_mu_;
    std::condition_variable done_cv_;
};

/// Splits [0, n) into contiguous chunks (≈ 4 per worker, never smaller than
/// `min_grain`) and runs `body(begin, end)` for each, blocking until all
/// chunks finished. With a null pool, one worker, or a single chunk the body
/// runs inline on the calling thread — the serial path, exactly.
///
/// `body` must only write to disjoint, index-addressed state: chunk
/// boundaries are deterministic, execution order is not.
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 std::size_t min_grain = 1);

/// Per-execution-slot scratch storage, lazily constructed on first use. A
/// slot is exclusive to one running task at a time (see ThreadPool), so the
/// returned reference is race-free for the duration of the task without any
/// locking — this is how mining workers own an arena each (per-worker
/// arenas, DESIGN.md §17) instead of constructing scratch per task.
template <typename T>
class WorkerLocal {
  public:
    explicit WorkerLocal(std::size_t num_slots) : slots_(num_slots) {}

    /// Scratch for `slot`; constructed on first use by that slot.
    T& At(std::size_t slot) {
        auto& p = slots_[slot];
        if (p == nullptr) p = std::make_unique<T>();
        return *p;
    }

    std::size_t size() const { return slots_.size(); }

  private:
    std::vector<std::unique_ptr<T>> slots_;
};

/// Shared tallies that let per-task BudgetGuards enforce *global* caps across
/// a parallel region: tasks add their emissions here and pass the running
/// totals to BudgetGuard::Check(), so a pattern/memory cap fires pool-wide
/// (approximately — concurrent emissions may overshoot by at most one pattern
/// per execution slot) and a deadline/cancel breach is observed by every task.
struct SharedMineProgress {
    std::atomic<std::size_t> emitted{0};
    std::atomic<std::size_t> est_bytes{0};

    std::size_t AddEmitted(std::size_t n = 1) {
        return emitted.fetch_add(n, std::memory_order_relaxed) + n;
    }
    std::size_t AddBytes(std::size_t n) {
        return est_bytes.fetch_add(n, std::memory_order_relaxed) + n;
    }
};

/// Builds the per-task budget for a parallel region: same caps and token as
/// `budget`, with the wall-clock deadline re-anchored to the time remaining
/// on `timer` (so late-starting tasks share the region's single deadline
/// instead of getting a fresh window).
ExecutionBudget TaskBudget(const ExecutionBudget& budget,
                           const DeadlineTimer& timer);

}  // namespace dfp
