// Small numeric helpers shared by the measure / bound code.
//
// All entropies in this library are in bits (log base 2), matching the
// information-gain plots in the paper.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace dfp {

/// x * log2(x) with the 0 log 0 = 0 convention.
inline double XLog2X(double x) {
    return (x <= 0.0) ? 0.0 : x * std::log2(x);
}

/// Entropy (bits) of a Bernoulli(p) variable; 0 at p ∈ {0, 1}.
inline double BinaryEntropy(double p) {
    if (p <= 0.0 || p >= 1.0) return 0.0;
    return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

/// Entropy (bits) of a discrete distribution given unnormalized non-negative
/// weights. Returns 0 for an all-zero input.
inline double Entropy(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return 0.0;
    double h = 0.0;
    for (double w : weights) h -= XLog2X(w / total);
    return h;
}

/// Entropy (bits) of a distribution given integer counts.
inline double EntropyCounts(const std::vector<std::size_t>& counts) {
    double total = 0.0;
    for (auto c : counts) total += static_cast<double>(c);
    if (total <= 0.0) return 0.0;
    double h = 0.0;
    for (auto c : counts) h -= XLog2X(static_cast<double>(c) / total);
    return h;
}

/// Approximate floating-point equality with absolute tolerance.
inline bool AlmostEqual(double a, double b, double eps = 1e-9) {
    return std::fabs(a - b) <= eps;
}

/// Clamps x into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
    return x < lo ? lo : (x > hi ? hi : x);
}

/// Median via nth_element, partially reordering `v` (callers pass scratch).
/// Even sizes average the two middle order statistics; empty input gives 0.
inline double MedianInPlace(std::vector<double>& v) {
    if (v.empty()) return 0.0;
    const std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                     v.end());
    double m = v[mid];
    if (v.size() % 2 == 0) {
        const double lo = *std::max_element(
            v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
        m = 0.5 * (lo + m);
    }
    return m;
}

}  // namespace dfp
