#include "common/socket.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dfp {

namespace {

Status ErrnoStatus(const std::string& what) {
    return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

void Socket::Close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void Socket::ShutdownRead() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::ShutdownBoth() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Status Socket::SendAll(std::string_view data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return ErrnoStatus("send");
        }
        sent += static_cast<std::size_t>(n);
    }
    return Status::Ok();
}

Result<std::size_t> Socket::Recv(char* buf, std::size_t len) {
    for (;;) {
        const ssize_t n = ::recv(fd_, buf, len, 0);
        if (n >= 0) return static_cast<std::size_t>(n);
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            return Status::Unavailable("recv timed out");
        }
        return ErrnoStatus("recv");
    }
}

Status Socket::SetRecvTimeout(double seconds) {
    if (seconds < 0.0) seconds = 0.0;
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
        return ErrnoStatus("setsockopt(SO_RCVTIMEO)");
    }
    return Status::Ok();
}

Result<bool> LineReader::ReadLine(std::string* line, std::size_t max_line_bytes) {
    for (;;) {
        const std::size_t newline = buffer_.find('\n');
        if (newline != std::string::npos) {
            line->assign(buffer_, 0, newline);
            buffer_.erase(0, newline + 1);
            if (!line->empty() && line->back() == '\r') line->pop_back();
            return true;
        }
        if (buffer_.size() > max_line_bytes) {
            return Status::InvalidArgument("line exceeds max length");
        }
        char chunk[4096];
        auto n = socket_->Recv(chunk, sizeof(chunk));
        if (!n.ok()) return n.status();
        if (*n == 0) {
            // Clean EOF; a partial unterminated line is discarded.
            return false;
        }
        buffer_.append(chunk, *n);
    }
}

Result<Socket> TcpListen(std::uint16_t port, int backlog) {
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid()) return ErrnoStatus("socket");
    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        return ErrnoStatus("bind");
    }
    if (::listen(sock.fd(), backlog) != 0) return ErrnoStatus("listen");
    return sock;
}

Result<std::uint16_t> LocalPort(const Socket& socket) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
        return ErrnoStatus("getsockname");
    }
    return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

Result<Socket> TcpAccept(Socket& listener) {
    for (;;) {
        const int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd >= 0) return Socket(fd);
        if (errno == EINTR) continue;
        // EINVAL = listener shut down (the server's stop path); EBADF = closed.
        if (errno == EINVAL || errno == EBADF) {
            return Status::Unavailable("listener closed");
        }
        return ErrnoStatus("accept");
    }
}

Result<Socket> TcpConnect(const std::string& host, std::uint16_t port) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                                 &hints, &res);
    if (rc != 0) {
        return Status::NotFound("resolve '" + host + "': " + gai_strerror(rc));
    }
    Status last = Status::Internal("no addresses for '" + host + "'");
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        Socket sock(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
        if (!sock.valid()) {
            last = ErrnoStatus("socket");
            continue;
        }
        if (::connect(sock.fd(), ai->ai_addr, ai->ai_addrlen) == 0) {
            ::freeaddrinfo(res);
            return sock;
        }
        last = ErrnoStatus("connect");
    }
    ::freeaddrinfo(res);
    return last;
}

}  // namespace dfp
