#include "common/socket.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/failpoint.hpp"

namespace dfp {

namespace {

Status ErrnoStatus(const std::string& what) {
    return Status::Internal(what + ": " + std::strerror(errno));
}

Status SetTimeoutOpt(int fd, int opt, const char* opt_name, double seconds) {
    if (seconds < 0.0) seconds = 0.0;
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    if (::setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof(tv)) != 0) {
        return ErrnoStatus(std::string("setsockopt(") + opt_name + ")");
    }
    return Status::Ok();
}

/// connect(2) interrupted by a signal is NOT restartable by calling connect
/// again (the second call fails with EALREADY while the handshake proceeds
/// in the background). The portable recovery is to wait for writability and
/// then read the final disposition from SO_ERROR.
Status FinishInterruptedConnect(int fd) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    for (;;) {
        const int rc = ::poll(&pfd, 1, -1);
        if (rc > 0) break;
        if (rc < 0 && errno == EINTR) continue;
        return ErrnoStatus("poll(connect)");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
        return ErrnoStatus("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
        return Status::Internal(std::string("connect: ") + std::strerror(err));
    }
    return Status::Ok();
}

}  // namespace

void Socket::Close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void Socket::ShutdownRead() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::ShutdownBoth() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Status Socket::SendAll(std::string_view data) {
    // The failpoint is evaluated once per frame, before the first byte goes
    // out: an injected hard failure therefore never leaves a half-sent frame
    // behind (the retry layer depends on "error => peer saw nothing of this
    // frame"). Short writes and EINTR exercise the retry loop below and
    // still deliver the full frame.
    std::size_t injected_short = 0;
    int injected_eintr = 0;
    if (const auto fp = DFP_FAILPOINT("serve.socket.write"); fp) {
        fp.Sleep();
        switch (fp.kind) {
            case FailpointKind::kShortWrite:
                injected_short = std::max<std::size_t>(1, data.size() / 2);
                break;
            case FailpointKind::kEintr:
                injected_eintr = 1;
                break;
            case FailpointKind::kTimeout:
                return Status::Unavailable("send timed out (injected)");
            case FailpointKind::kDelay:
                break;
            default:
                return Status::Internal("send: injected failure");
        }
    }
    std::size_t sent = 0;
    bool first = true;
    while (sent < data.size()) {
        if (injected_eintr > 0) {
            // As if send() returned -1/EINTR: make no progress, retry.
            --injected_eintr;
            continue;
        }
        std::size_t len = data.size() - sent;
        if (first && injected_short != 0) len = std::min(len, injected_short);
        first = false;
        // MSG_NOSIGNAL: a peer that closed mid-response must surface as EPIPE,
        // not a process-killing SIGPIPE.
        const ssize_t n = ::send(fd_, data.data() + sent, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // SO_SNDTIMEO elapsed: the peer stopped draining its receive
                // window (slow-loris) — give up on the connection.
                return Status::Unavailable("send timed out");
            }
            return ErrnoStatus("send");
        }
        sent += static_cast<std::size_t>(n);
    }
    return Status::Ok();
}

Result<std::size_t> Socket::Recv(char* buf, std::size_t len) {
    int injected_eintr = 0;
    if (const auto fp = DFP_FAILPOINT("serve.socket.read"); fp) {
        fp.Sleep();
        switch (fp.kind) {
            case FailpointKind::kShortWrite:
                len = 1;  // short read: one byte per call, framing reassembles
                break;
            case FailpointKind::kEintr:
                injected_eintr = 1;
                break;
            case FailpointKind::kTimeout:
                return Status::Unavailable("recv timed out (injected)");
            case FailpointKind::kDelay:
                break;
            default:
                return Status::Internal("recv: injected failure");
        }
    }
    for (;;) {
        if (injected_eintr > 0) {
            --injected_eintr;
            continue;  // as if recv() returned -1/EINTR
        }
        const ssize_t n = ::recv(fd_, buf, len, 0);
        if (n >= 0) return static_cast<std::size_t>(n);
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            return Status::Unavailable("recv timed out");
        }
        return ErrnoStatus("recv");
    }
}

Status Socket::SetRecvTimeout(double seconds) {
    return SetTimeoutOpt(fd_, SO_RCVTIMEO, "SO_RCVTIMEO", seconds);
}

Status Socket::SetSendTimeout(double seconds) {
    return SetTimeoutOpt(fd_, SO_SNDTIMEO, "SO_SNDTIMEO", seconds);
}

Result<bool> LineReader::ReadLine(std::string* line, std::size_t max_line_bytes) {
    for (;;) {
        const std::size_t newline = buffer_.find('\n');
        if (newline != std::string::npos) {
            line->assign(buffer_, 0, newline);
            buffer_.erase(0, newline + 1);
            if (!line->empty() && line->back() == '\r') line->pop_back();
            return true;
        }
        if (buffer_.size() > max_line_bytes) {
            return Status::InvalidArgument("line exceeds max length");
        }
        char chunk[4096];
        auto n = socket_->Recv(chunk, sizeof(chunk));
        if (!n.ok()) return n.status();
        if (*n == 0) {
            // Clean EOF; a partial unterminated line is discarded.
            return false;
        }
        buffer_.append(chunk, *n);
    }
}

Result<Socket> TcpListen(std::uint16_t port, int backlog) {
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid()) return ErrnoStatus("socket");
    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        return ErrnoStatus("bind");
    }
    // Clamp to a sane backlog: 0/negative would make the kernel silently
    // refuse bursts, and huge values just waste kernel memory.
    backlog = std::clamp(backlog, 1, 1024);
    if (::listen(sock.fd(), backlog) != 0) return ErrnoStatus("listen");
    return sock;
}

Result<std::uint16_t> LocalPort(const Socket& socket) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
        return ErrnoStatus("getsockname");
    }
    return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

Result<Socket> TcpAccept(Socket& listener) {
    int injected_eintr = 0;
    if (const auto fp = DFP_FAILPOINT("serve.socket.accept"); fp) {
        fp.Sleep();
        switch (fp.kind) {
            case FailpointKind::kEintr:
                injected_eintr = 1;
                break;
            case FailpointKind::kDelay:
                break;
            default:
                return Status::Internal("accept: injected failure");
        }
    }
    for (;;) {
        if (injected_eintr > 0) {
            --injected_eintr;
            continue;  // as if accept() returned -1/EINTR
        }
        const int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd >= 0) return Socket(fd);
        if (errno == EINTR) continue;
        // Transient per-connection failures (the handshake died before we
        // picked it up, or an fd/buffer shortage): the listener itself is
        // fine, so report them as retryable instead of tearing down the
        // accept loop.
        if (errno == ECONNABORTED || errno == EMFILE || errno == ENFILE ||
            errno == ENOBUFS || errno == ENOMEM) {
            return Status::ResourceExhausted(std::string("accept: ") +
                                            std::strerror(errno));
        }
        // EINVAL = listener shut down (the server's stop path); EBADF = closed.
        if (errno == EINVAL || errno == EBADF) {
            return Status::Unavailable("listener closed");
        }
        return ErrnoStatus("accept");
    }
}

Result<Socket> TcpConnect(const std::string& host, std::uint16_t port) {
    if (const auto fp = DFP_FAILPOINT("serve.socket.connect"); fp) {
        fp.Sleep();
        if (fp.kind != FailpointKind::kDelay) {
            return Status::Unavailable("connect refused (injected)");
        }
    }
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                                 &hints, &res);
    if (rc != 0) {
        return Status::NotFound("resolve '" + host + "': " + gai_strerror(rc));
    }
    Status last = Status::Internal("no addresses for '" + host + "'");
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        Socket sock(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
        if (!sock.valid()) {
            last = ErrnoStatus("socket");
            continue;
        }
        if (::connect(sock.fd(), ai->ai_addr, ai->ai_addrlen) == 0) {
            ::freeaddrinfo(res);
            return sock;
        }
        if (errno == EINTR) {
            // The handshake keeps going; wait it out instead of failing.
            last = FinishInterruptedConnect(sock.fd());
            if (last.ok()) {
                ::freeaddrinfo(res);
                return sock;
            }
            continue;
        }
        last = ErrnoStatus("connect");
    }
    ::freeaddrinfo(res);
    return last;
}

}  // namespace dfp
