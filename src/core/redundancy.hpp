// Pattern redundancy (Definition 4 / Eq. 9 of the paper).
//
// Two patterns are redundant when they cover largely the same transactions:
//   R(α, β) = Jaccard(cover(α), cover(β)) · min(S(α), S(β))
// i.e. the weaker pattern's relevance, discounted by how much the covers
// overlap. A non-closed pattern and its closure have Jaccard 1, which is why
// the framework mines *closed* patterns: the non-closed ones are completely
// redundant.
#pragma once

#include "common/bitvector.hpp"
#include "fpm/itemset.hpp"

namespace dfp {

/// Jaccard similarity |A∧B| / |A∨B| of two cover sets (0 when both empty).
double CoverJaccard(const BitVector& a, const BitVector& b);

/// Eq. 9: Jaccard(covers) × min(relevance_a, relevance_b).
double Redundancy(const Pattern& a, const Pattern& b, double relevance_a,
                  double relevance_b);

}  // namespace dfp
