#include "core/minsup_strategy.hpp"

#include <algorithm>
#include <cmath>

#include "core/bounds.hpp"

namespace dfp {

namespace {

// Largest θ in [0, theta_max] with bound(θ) ≤ threshold, for a bound that is
// monotone non-decreasing on that interval. Bisection to ~1e-7 resolution.
template <typename BoundFn>
double LargestThetaBelow(BoundFn bound, double threshold, double theta_max) {
    if (bound(theta_max) <= threshold) return theta_max;
    if (bound(0.0) > threshold) return 0.0;
    double lo = 0.0;
    double hi = theta_max;
    for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (bound(mid) <= threshold) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return lo;
}

// The monotone-increasing region shared by every class's one-vs-rest bound:
// [0, min over non-degenerate classes of min(p_c, 1−p_c)].
double MonotoneCeiling(const std::vector<double>& priors) {
    double ceiling = 0.5;
    for (double p : priors) {
        if (p <= 0.0 || p >= 1.0) continue;
        ceiling = std::min(ceiling, std::min(p, 1.0 - p));
    }
    return ceiling;
}

MinSupRecommendation MakeRecommendation(double theta_star, double bound_value,
                                        std::size_t n) {
    MinSupRecommendation rec;
    rec.theta_star = theta_star;
    rec.bound_at_theta_star = bound_value;
    rec.min_sup_abs = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(theta_star * static_cast<double>(n))));
    return rec;
}

}  // namespace

MinSupRecommendation RecommendMinSup(double ig0, const std::vector<double>& priors,
                                     std::size_t n) {
    auto bound = [&priors](double theta) {
        double b = 0.0;
        for (double p : priors) b = std::max(b, IgUpperBound(theta, p));
        return b;
    };
    const double theta_star = LargestThetaBelow(bound, ig0, MonotoneCeiling(priors));
    return MakeRecommendation(theta_star, bound(theta_star), n);
}

MinSupRecommendation RecommendMinSupFisher(double fisher0,
                                           const std::vector<double>& priors,
                                           std::size_t n) {
    auto bound = [&priors](double theta) {
        double b = 0.0;
        for (double p : priors) b = std::max(b, FisherUpperBound(theta, p));
        return b;
    };
    // Fr_ub diverges at θ = p, so stay strictly inside the monotone window.
    const double ceiling = MonotoneCeiling(priors) * (1.0 - 1e-9);
    const double theta_star = LargestThetaBelow(bound, fisher0, ceiling);
    return MakeRecommendation(theta_star, bound(theta_star), n);
}

std::vector<MinSupRecommendation> MinSupEscalationLadder(
    double theta_start, const std::vector<double>& priors, std::size_t n,
    std::size_t rungs) {
    std::vector<MinSupRecommendation> ladder;
    if (rungs == 0 || n == 0) return ladder;
    auto bound = [&priors](double theta) {
        double b = 0.0;
        for (double p : priors) b = std::max(b, IgUpperBound(theta, p));
        return b;
    };
    const double ceiling = MonotoneCeiling(priors);
    const double theta0 = std::clamp(theta_start, 0.0, ceiling);
    const double b0 = bound(theta0);
    const double b_top = bound(ceiling);
    std::size_t prev_abs = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(theta0 * static_cast<double>(n))));
    for (std::size_t k = 1; k <= rungs; ++k) {
        const double t = static_cast<double>(k) / static_cast<double>(rungs);
        const double target = b0 + t * (b_top - b0);
        double theta = LargestThetaBelow(bound, target, ceiling);
        std::size_t abs = static_cast<std::size_t>(
            std::ceil(theta * static_cast<double>(n)));
        // Guarantee progress even when the bound is flat or degenerate: every
        // rung must raise the absolute threshold, falling back to doubling.
        if (abs <= prev_abs) {
            abs = std::max(prev_abs + 1, prev_abs * 2);
            theta = std::min(1.0, static_cast<double>(abs) / static_cast<double>(n));
        }
        if (abs > n) break;
        MinSupRecommendation rec;
        rec.theta_star = theta;
        rec.min_sup_abs = abs;
        rec.bound_at_theta_star = bound(std::min(theta, ceiling));
        ladder.push_back(rec);
        prev_abs = abs;
    }
    return ladder;
}

std::vector<std::pair<double, double>> IgBoundCurve(
    const std::vector<double>& priors, std::size_t points) {
    std::vector<std::pair<double, double>> curve;
    curve.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double theta =
            static_cast<double>(i) / static_cast<double>(points - 1);
        double b = 0.0;
        for (double p : priors) b = std::max(b, IgUpperBound(theta, p));
        curve.emplace_back(theta, b);
    }
    return curve;
}

}  // namespace dfp
