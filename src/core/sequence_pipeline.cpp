#include "core/sequence_pipeline.hpp"

#include <algorithm>
#include <set>

#include "core/cover_select.hpp"
#include "ml/feature_matrix.hpp"

namespace dfp {

namespace {

struct Candidate {
    Sequence items;
    BitVector cover;
    double relevance = 0.0;
};

// IG of a cover against the sequence labels.
double CoverInformationGain(const SequenceDatabase& db, const BitVector& cover) {
    FeatureStats stats;
    stats.n = db.size();
    stats.support = cover.Count();
    stats.class_totals = db.ClassCounts();
    stats.class_support.assign(db.num_classes(), 0);
    cover.ForEach(
        [&](std::uint32_t t) { stats.class_support[db.label(t)]++; });
    return InformationGain(stats);
}

}  // namespace

Status SequenceClassifierPipeline::Train(const SequenceDatabase& train,
                                         std::unique_ptr<Classifier> learner) {
    if (learner == nullptr) {
        return Status::InvalidArgument("sequence pipeline requires a learner");
    }
    if (train.size() == 0) {
        return Status::InvalidArgument("empty sequence database");
    }
    num_items_ = train.num_items();

    // 1. Feature generation: PrefixSpan per class partition, pooled + deduped.
    std::set<Sequence> seen;
    std::vector<Sequence> pooled;
    auto mine_into = [&](const SequenceDatabase& part) -> Status {
        auto mined = MineSequences(part, config_.miner);
        if (!mined.ok()) return mined.status();
        for (SequentialPattern& p : *mined) {
            if (p.items.size() < config_.min_pattern_len) continue;
            if (seen.insert(p.items).second) pooled.push_back(std::move(p.items));
        }
        return Status::Ok();
    };
    if (config_.per_class_mining) {
        for (ClassLabel c = 0; c < train.num_classes(); ++c) {
            const SequenceDatabase part = train.FilterByClass(c);
            if (part.size() == 0) continue;
            DFP_RETURN_NOT_OK(mine_into(part));
        }
    } else {
        DFP_RETURN_NOT_OK(mine_into(train));
    }
    num_candidates_ = pooled.size();

    // 2. Covers + relevance, then MMR-greedy selection (Eq. 9 redundancy).
    std::vector<Candidate> candidates;
    candidates.reserve(pooled.size());
    for (Sequence& items : pooled) {
        Candidate c;
        c.cover = BitVector(train.size());
        for (std::size_t t = 0; t < train.size(); ++t) {
            if (IsSubsequence(items, train.sequence(t))) c.cover.Set(t);
        }
        c.relevance = CoverInformationGain(train, c.cover);
        c.items = std::move(items);
        candidates.push_back(std::move(c));
    }
    std::vector<BitVector> covers;
    std::vector<double> relevance;
    covers.reserve(candidates.size());
    for (const Candidate& c : candidates) {
        covers.push_back(c.cover);
        relevance.push_back(c.relevance);
    }
    const auto chosen = GreedyMmrSelect(covers, relevance, config_.max_features);
    features_.clear();
    for (std::size_t i : chosen) {
        features_.push_back({std::move(candidates[i].items),
                             candidates[i].cover.Count(),
                             candidates[i].relevance});
    }

    // 3. Learn on item presence ∪ selected subsequences.
    FeatureMatrix x(train.size(), num_items_ + features_.size());
    std::vector<double> row(x.cols());
    for (std::size_t t = 0; t < train.size(); ++t) {
        Encode(train.sequence(t), &row);
        auto dst = x.MutableRow(t);
        std::copy(row.begin(), row.end(), dst.begin());
    }
    DFP_RETURN_NOT_OK(learner->Train(x, train.labels(), train.num_classes()));
    learner_ = std::move(learner);
    return Status::Ok();
}

void SequenceClassifierPipeline::Encode(const Sequence& sequence,
                                        std::vector<double>* out) const {
    out->assign(num_items_ + features_.size(), 0.0);
    for (ItemId item : sequence) {
        if (item < num_items_) (*out)[item] = 1.0;
    }
    for (std::size_t f = 0; f < features_.size(); ++f) {
        if (IsSubsequence(features_[f].items, sequence)) {
            (*out)[num_items_ + f] = 1.0;
        }
    }
}

ClassLabel SequenceClassifierPipeline::Predict(const Sequence& sequence) const {
    std::vector<double> encoded;
    Encode(sequence, &encoded);
    return learner_->Predict(encoded);
}

double SequenceClassifierPipeline::Accuracy(const SequenceDatabase& test) const {
    if (test.size() == 0) return 0.0;
    std::size_t correct = 0;
    for (std::size_t t = 0; t < test.size(); ++t) {
        if (Predict(test.sequence(t)) == test.label(t)) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(test.size());
}

}  // namespace dfp
