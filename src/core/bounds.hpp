// Theoretical upper bounds on discriminative power as a function of support
// (Section 3.1.2 of the paper).
//
// For a binary class variable with prior p = P(c = 1) and a binary feature X
// with support θ = P(x = 1), the conditional class distribution on the X = 1
// branch, q = P(c = 1 | x = 1), is constrained to the feasible interval
//   q ∈ [max(0, (p − (1 − θ))/θ), min(1, p/θ)].
// H(C|X) is concave in q, so its minimum over the interval is attained at an
// endpoint; evaluating both endpoints yields the *exact* bounds
//   IG_ub(θ)  = H(p) − min_q H(C|X)         (Eq. 2–3 generalized to all θ)
//   Fr_ub(θ)  = Z*/(Y − Z*),  Z* = θ·max over endpoints of (p − q)²,
//               Y = p(1−p)(1−θ)              (Eq. 5–6 generalized)
// matching the paper's case analysis (q = 1 for θ ≤ p, q = p/θ for θ > p, and
// symmetric cases). Fr_ub diverges to +inf as θ → p from below.
//
// For m > 2 classes an exact closed form does not exist; IgUpperBoundMulticlass
// evaluates the concave minimum over capped-simplex vertices reachable by
// greedy class packings (exact for m = 2; a tight practical bound otherwise).
#pragma once

#include <cstddef>
#include <vector>

namespace dfp {

/// Exact IG upper bound (bits) for support θ and binary class prior p.
/// Both arguments in [0, 1]. Returns 0 at θ ∈ {0, 1} and H(p) at θ = p.
double IgUpperBound(double theta, double p);

/// Exact Fisher-score upper bound for support θ and binary class prior p.
/// Returns +inf when the within-class variance can reach zero (θ in the
/// divergence window around p where a pure covered branch absorbs a class).
double FisherUpperBound(double theta, double p);

/// Practical IG upper bound for an m-class prior. Exact for m = 2.
double IgUpperBoundMulticlass(double theta, const std::vector<double>& priors);

/// One-vs-rest IG bound certificate for multiclass data: the IG of X w.r.t.
/// the indicator of any single class c is ≤ IgUpperBound(θ, p_c). This is the
/// rigorously provable multiclass statement used by the property tests.
double IgUpperBoundOneVsRest(double theta, double class_prior);

}  // namespace dfp
