#include "core/direct_miner.hpp"

#include <algorithm>
#include <queue>

#include "common/string_util.hpp"

namespace dfp {

namespace {

// Min-heap of (ig, insertion-id) keeping the k best patterns.
struct Scored {
    double ig;
    Pattern pattern;
};

struct ScoredGreater {
    bool operator()(const Scored& a, const Scored& b) const { return a.ig > b.ig; }
};

using TopK =
    std::priority_queue<Scored, std::vector<Scored>, ScoredGreater>;

struct SearchContext {
    const TransactionDatabase* db;
    std::size_t min_sup;
    std::size_t max_len;
    std::size_t top_k;
    std::size_t max_nodes;
    bool include_singletons;
    std::vector<ItemId> frequent;
    TopK heap;
    DirectMinerStats stats;
};

double CurrentThreshold(const SearchContext& ctx) {
    return ctx.heap.size() < ctx.top_k ? -1.0 : ctx.heap.top().ig;
}

void Offer(SearchContext& ctx, const Itemset& items, const BitVector& cover,
           std::size_t support) {
    if (!ctx.include_singletons && items.size() < 2) return;
    Pattern p;
    p.items = items;
    p.cover = cover;
    p.support = support;
    p.class_counts = ctx.db->ClassCountsOf(cover);
    const double ig = InformationGain(StatsOfPattern(*ctx.db, p));
    if (ctx.heap.size() < ctx.top_k) {
        ctx.heap.push({ig, std::move(p)});
    } else if (ig > ctx.heap.top().ig) {
        ctx.heap.pop();
        ctx.heap.push({ig, std::move(p)});
    }
}

// DFS with the sub-cover IG bound. Returns false on node-budget exhaustion.
bool Search(SearchContext& ctx, Itemset& prefix, const BitVector& cover,
            std::size_t first_candidate) {
    for (std::size_t k = first_candidate; k < ctx.frequent.size(); ++k) {
        if (ctx.stats.nodes_explored >= ctx.max_nodes) return false;
        ++ctx.stats.nodes_explored;
        const ItemId item = ctx.frequent[k];
        BitVector extended = cover;
        extended &= ctx.db->ItemCover(item);
        const std::size_t support = extended.Count();
        if (support < ctx.min_sup) {
            ++ctx.stats.nodes_pruned_support;
            continue;
        }
        prefix.push_back(item);
        Offer(ctx, prefix, extended, support);
        if (prefix.size() < ctx.max_len) {
            const double bound = SubCoverIgBound(*ctx.db, extended, ctx.min_sup);
            if (bound > CurrentThreshold(ctx)) {
                if (!Search(ctx, prefix, extended, k + 1)) {
                    prefix.pop_back();
                    return false;
                }
            } else {
                ++ctx.stats.nodes_pruned_bound;
            }
        }
        prefix.pop_back();
    }
    return true;
}

}  // namespace

double SubCoverIgBound(const TransactionDatabase& db, const BitVector& cover,
                       std::size_t min_sup) {
    const auto counts = db.ClassCountsOf(cover);
    const auto totals = db.ClassCounts();
    const std::size_t n = db.num_transactions();

    double best = 0.0;
    auto evaluate = [&](const std::vector<std::size_t>& class_support) {
        FeatureStats stats;
        stats.n = n;
        stats.class_totals = totals;
        stats.class_support = class_support;
        stats.support = 0;
        for (auto c : class_support) stats.support += c;
        best = std::max(best, InformationGain(stats));
    };

    const std::size_t m = counts.size();
    std::vector<std::size_t> candidate(m, 0);
    for (std::size_t c = 0; c < m; ++c) {
        if (counts[c] == 0) continue;
        // Pure class-c sub-cover (the classic DDPMine bound).
        std::fill(candidate.begin(), candidate.end(), 0);
        candidate[c] = counts[c];
        evaluate(candidate);
        // Complement: everything in the cover except class c.
        candidate = counts;
        candidate[c] = 0;
        evaluate(candidate);
    }
    evaluate(counts);  // the cover itself
    (void)min_sup;     // feasibility is ignored: dropping it keeps the bound valid
    return best;
}

Result<std::vector<Pattern>> MineTopKDiscriminative(
    const TransactionDatabase& db, const DirectMinerConfig& config,
    DirectMinerStats* stats) {
    SearchContext ctx;
    ctx.db = &db;
    ctx.min_sup = ResolveMinSup(config.miner, db.num_transactions());
    ctx.max_len = config.miner.max_pattern_len;
    ctx.top_k = std::max<std::size_t>(config.top_k, 1);
    ctx.max_nodes = config.max_nodes;
    ctx.include_singletons = config.miner.include_singletons;
    for (ItemId i = 0; i < db.num_items(); ++i) {
        if (db.ItemSupport(i) >= ctx.min_sup) ctx.frequent.push_back(i);
    }

    BitVector all(db.num_transactions());
    all.Fill();
    Itemset prefix;
    const bool completed = Search(ctx, prefix, all, 0);
    if (stats != nullptr) *stats = ctx.stats;
    if (!completed) {
        return Status::ResourceExhausted(
            StrFormat("direct miner exceeded node budget (%zu)", config.max_nodes));
    }

    std::vector<Scored> scored;
    while (!ctx.heap.empty()) {
        scored.push_back(ctx.heap.top());
        ctx.heap.pop();
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) { return a.ig > b.ig; });
    std::vector<Pattern> out;
    out.reserve(scored.size());
    for (Scored& s : scored) out.push_back(std::move(s.pattern));
    return out;
}

}  // namespace dfp
