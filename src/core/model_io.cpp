#include "core/model_io.hpp"

#include <fstream>
#include <ostream>
#include <set>

#include "common/serialize.hpp"
#include "ml/dtree/c45.hpp"
#include "ml/nb/naive_bayes.hpp"
#include "ml/svm/pegasos.hpp"
#include "ml/svm/svm.hpp"

namespace dfp {

namespace {
constexpr const char* kMagic = "dfp-model";
constexpr const char* kVersion = "v1";
}  // namespace

Status SaveFeatureSpace(const FeatureSpace& space, std::ostream& out) {
    out << "feature-space " << space.num_items() << ' ' << space.num_patterns()
        << '\n';
    for (const Pattern& p : space.patterns()) {
        out << p.items.size();
        for (ItemId i : p.items) out << ' ' << i;
        out << '\n';
    }
    if (!out) return Status::Internal("feature-space write failed");
    return Status::Ok();
}

Result<FeatureSpace> LoadFeatureSpace(std::istream& in) {
    TokenReader reader(in);
    DFP_RETURN_NOT_OK(reader.Expect("feature-space"));
    std::size_t num_items = 0;
    std::size_t num_patterns = 0;
    DFP_RETURN_NOT_OK(reader.ReadCount(&num_items));
    DFP_RETURN_NOT_OK(reader.ReadCount(&num_patterns));
    // Untrusted input: patterns are parsed incrementally (a lying header
    // count fails at EOF instead of driving a huge up-front allocation) and
    // each one is validated against the declared item universe. Prediction
    // (FeatureSpace::Encode, serve::PatternMatchIndex) relies on every
    // pattern being a sorted duplicate-free subset of [0, num_items).
    std::vector<Pattern> patterns;
    patterns.reserve(std::min(num_patterns, std::size_t{4096}));
    std::set<Itemset> seen;
    for (std::size_t n = 0; n < num_patterns; ++n) {
        Pattern p;
        std::size_t len = 0;
        DFP_RETURN_NOT_OK(reader.ReadCount(&len));
        if (len < 2) return Status::InvalidArgument("pattern of length < 2 in model");
        if (len > num_items) {
            return Status::InvalidArgument(
                "pattern longer than the item universe");
        }
        p.items.resize(len);
        for (ItemId& item : p.items) {
            DFP_RETURN_NOT_OK(reader.Read(&item));
        }
        for (std::size_t i = 0; i < len; ++i) {
            if (p.items[i] >= num_items) {
                return Status::InvalidArgument(
                    "pattern item id " + std::to_string(p.items[i]) +
                    " outside the item universe of " + std::to_string(num_items));
            }
            if (i > 0 && p.items[i] <= p.items[i - 1]) {
                return Status::InvalidArgument(
                    "pattern items not strictly ascending");
            }
        }
        if (!seen.insert(p.items).second) {
            return Status::InvalidArgument("duplicate pattern in model");
        }
        patterns.push_back(std::move(p));
    }
    return FeatureSpace::Build(num_items, std::move(patterns));
}

Result<std::unique_ptr<Classifier>> MakeLearnerByTypeId(const std::string& id) {
    if (id == "svm") return std::unique_ptr<Classifier>(new SvmClassifier());
    if (id == "c4.5") return std::unique_ptr<Classifier>(new C45Classifier());
    if (id == "nb") return std::unique_ptr<Classifier>(new NaiveBayesClassifier());
    if (id == "pegasos") {
        return std::unique_ptr<Classifier>(new PegasosClassifier());
    }
    return Status::NotFound("unknown learner type id '" + id + "'");
}

Status SavePipelineModel(const PatternClassifierPipeline& pipeline,
                         std::ostream& out) {
    const Classifier* learner = pipeline.learner();
    if (learner == nullptr) {
        return Status::FailedPrecondition("pipeline has no trained learner");
    }
    if (learner->TypeId().empty()) {
        return Status::FailedPrecondition("learner '" + learner->Name() +
                                          "' is not serializable");
    }
    out << kMagic << ' ' << kVersion << ' ' << learner->TypeId() << '\n';
    DFP_RETURN_NOT_OK(SaveFeatureSpace(pipeline.feature_space(), out));
    return learner->SaveModel(out);
}

ClassLabel LoadedModel::Predict(const std::vector<ItemId>& transaction) const {
    // Encode scratch is reused across calls — Predict is the serving-adjacent
    // hot path and a per-call dim()-sized allocation is measurable there.
    if (encode_buffer_.size() != space_.dim()) {
        encode_buffer_.assign(space_.dim(), 0.0);
    }
    space_.Encode(transaction, encode_buffer_);
    return learner_->Predict(encode_buffer_);
}

double LoadedModel::Accuracy(const TransactionDatabase& test) const {
    if (test.num_transactions() == 0) return 0.0;
    std::size_t correct = 0;
    for (std::size_t t = 0; t < test.num_transactions(); ++t) {
        if (Predict(test.transaction(t)) == test.label(t)) ++correct;
    }
    return static_cast<double>(correct) /
           static_cast<double>(test.num_transactions());
}

Result<LoadedModel> LoadPipelineModel(std::istream& in) {
    TokenReader reader(in);
    DFP_RETURN_NOT_OK(reader.Expect(kMagic));
    DFP_RETURN_NOT_OK(reader.Expect(kVersion));
    std::string type_id;
    DFP_RETURN_NOT_OK(reader.Read(&type_id));
    auto space = LoadFeatureSpace(in);
    if (!space.ok()) return space.status();
    auto learner = MakeLearnerByTypeId(type_id);
    if (!learner.ok()) return learner.status();
    DFP_RETURN_NOT_OK((*learner)->LoadModel(in));
    return LoadedModel(std::move(*space), std::move(*learner));
}

Status SavePipelineModelToFile(const PatternClassifierPipeline& pipeline,
                               const std::string& path) {
    std::ofstream out(path);
    if (!out) return Status::NotFound("cannot open '" + path + "' for writing");
    return SavePipelineModel(pipeline, out);
}

Result<LoadedModel> LoadPipelineModelFromFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) return Status::NotFound("cannot open '" + path + "'");
    return LoadPipelineModel(in);
}

}  // namespace dfp
