#include "core/model_io.hpp"

#include <cstdio>
#include <cstring>
#include <ostream>
#include <set>
#include <sstream>

#include "common/failpoint.hpp"
#include "common/fileio.hpp"
#include "common/serialize.hpp"
#include "ml/dtree/c45.hpp"
#include "ml/nb/naive_bayes.hpp"
#include "ml/svm/pegasos.hpp"
#include "ml/svm/svm.hpp"

namespace dfp {

namespace {
constexpr const char* kMagic = "dfp-model";
constexpr const char* kVersion = "v1";
}  // namespace

Status SaveFeatureSpace(const FeatureSpace& space, std::ostream& out) {
    out << "feature-space " << space.num_items() << ' ' << space.num_patterns()
        << '\n';
    for (const Pattern& p : space.patterns()) {
        out << p.items.size();
        for (ItemId i : p.items) out << ' ' << i;
        out << '\n';
    }
    if (!out) return Status::Internal("feature-space write failed");
    return Status::Ok();
}

namespace {

// Body of the feature-space format, after the "feature-space" tag has been
// consumed (LoadPipelineModel peeks one token ahead of the tag to accept the
// optional provenance line).
Result<FeatureSpace> LoadFeatureSpaceAfterTag(std::istream& in) {
    TokenReader reader(in);
    std::size_t num_items = 0;
    std::size_t num_patterns = 0;
    DFP_RETURN_NOT_OK(reader.ReadCount(&num_items));
    DFP_RETURN_NOT_OK(reader.ReadCount(&num_patterns));
    // Untrusted input: patterns are parsed incrementally (a lying header
    // count fails at EOF instead of driving a huge up-front allocation) and
    // each one is validated against the declared item universe. Prediction
    // (FeatureSpace::Encode, serve::PatternMatchIndex) relies on every
    // pattern being a sorted duplicate-free subset of [0, num_items).
    std::vector<Pattern> patterns;
    patterns.reserve(std::min(num_patterns, std::size_t{4096}));
    std::set<Itemset> seen;
    for (std::size_t n = 0; n < num_patterns; ++n) {
        Pattern p;
        std::size_t len = 0;
        DFP_RETURN_NOT_OK(reader.ReadCount(&len));
        if (len < 2) return Status::InvalidArgument("pattern of length < 2 in model");
        if (len > num_items) {
            return Status::InvalidArgument(
                "pattern longer than the item universe");
        }
        p.items.resize(len);
        for (ItemId& item : p.items) {
            DFP_RETURN_NOT_OK(reader.Read(&item));
        }
        for (std::size_t i = 0; i < len; ++i) {
            if (p.items[i] >= num_items) {
                return Status::InvalidArgument(
                    "pattern item id " + std::to_string(p.items[i]) +
                    " outside the item universe of " + std::to_string(num_items));
            }
            if (i > 0 && p.items[i] <= p.items[i - 1]) {
                return Status::InvalidArgument(
                    "pattern items not strictly ascending");
            }
        }
        if (!seen.insert(p.items).second) {
            return Status::InvalidArgument("duplicate pattern in model");
        }
        patterns.push_back(std::move(p));
    }
    return FeatureSpace::Build(num_items, std::move(patterns));
}

}  // namespace

Result<FeatureSpace> LoadFeatureSpace(std::istream& in) {
    TokenReader reader(in);
    DFP_RETURN_NOT_OK(reader.Expect("feature-space"));
    return LoadFeatureSpaceAfterTag(in);
}

Result<std::unique_ptr<Classifier>> MakeLearnerByTypeId(const std::string& id) {
    if (id == "svm") return std::unique_ptr<Classifier>(new SvmClassifier());
    if (id == "c4.5") return std::unique_ptr<Classifier>(new C45Classifier());
    if (id == "nb") return std::unique_ptr<Classifier>(new NaiveBayesClassifier());
    if (id == "pegasos") {
        return std::unique_ptr<Classifier>(new PegasosClassifier());
    }
    return Status::NotFound("unknown learner type id '" + id + "'");
}

Status SavePipelineModel(const PatternClassifierPipeline& pipeline,
                         std::ostream& out) {
    const Classifier* learner = pipeline.learner();
    if (learner == nullptr) {
        return Status::FailedPrecondition("pipeline has no trained learner");
    }
    if (learner->TypeId().empty()) {
        return Status::FailedPrecondition("learner '" + learner->Name() +
                                          "' is not serializable");
    }
    out << kMagic << ' ' << kVersion << ' ' << learner->TypeId() << '\n';
    // Provenance is emitted only when present (significance-filtered runs):
    // unfiltered bundles stay byte-identical to the pre-provenance format.
    if (!pipeline.provenance().empty()) {
        out << "provenance " << pipeline.provenance().size();
        for (const auto& [key, value] : pipeline.provenance()) {
            out << ' ' << key << '=' << value;
        }
        out << '\n';
    }
    DFP_RETURN_NOT_OK(SaveFeatureSpace(pipeline.feature_space(), out));
    return learner->SaveModel(out);
}

ClassLabel LoadedModel::Predict(const std::vector<ItemId>& transaction) const {
    // Encode scratch is reused across calls — Predict is the serving-adjacent
    // hot path and a per-call dim()-sized allocation is measurable there.
    if (encode_buffer_.size() != space_.dim()) {
        encode_buffer_.assign(space_.dim(), 0.0);
    }
    space_.Encode(transaction, encode_buffer_);
    return learner_->Predict(encode_buffer_);
}

double LoadedModel::Accuracy(const TransactionDatabase& test) const {
    if (test.num_transactions() == 0) return 0.0;
    std::size_t correct = 0;
    for (std::size_t t = 0; t < test.num_transactions(); ++t) {
        if (Predict(test.transaction(t)) == test.label(t)) ++correct;
    }
    return static_cast<double>(correct) /
           static_cast<double>(test.num_transactions());
}

Result<LoadedModel> LoadPipelineModel(std::istream& in) {
    TokenReader reader(in);
    DFP_RETURN_NOT_OK(reader.Expect(kMagic));
    DFP_RETURN_NOT_OK(reader.Expect(kVersion));
    std::string type_id;
    DFP_RETURN_NOT_OK(reader.Read(&type_id));
    // Optional provenance line between the header and the feature space.
    std::string token;
    DFP_RETURN_NOT_OK(reader.Read(&token));
    std::vector<std::pair<std::string, std::string>> provenance;
    if (token == "provenance") {
        std::size_t count = 0;
        DFP_RETURN_NOT_OK(reader.ReadCount(&count, /*max_value=*/64));
        provenance.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            std::string kv;
            DFP_RETURN_NOT_OK(reader.Read(&kv));
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0) {
                return Status::InvalidArgument(
                    "malformed provenance entry '" + kv + "'");
            }
            provenance.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
        }
        DFP_RETURN_NOT_OK(reader.Read(&token));
    }
    if (token != "feature-space") {
        return Status::ParseError("expected 'feature-space', got '" + token +
                                  "'");
    }
    auto space = LoadFeatureSpaceAfterTag(in);
    if (!space.ok()) return space.status();
    auto learner = MakeLearnerByTypeId(type_id);
    if (!learner.ok()) return learner.status();
    DFP_RETURN_NOT_OK((*learner)->LoadModel(in));
    LoadedModel model(std::move(*space), std::move(*learner));
    model.set_provenance(std::move(provenance));
    return model;
}

namespace {

constexpr const char* kChecksumTag = "checksum fnv1a64";

std::string ChecksumTrailer(std::string_view payload) {
    char line[64];
    std::snprintf(line, sizeof(line), "checksum fnv1a64 %016llx %zu\n",
                  static_cast<unsigned long long>(Fnv1a64(payload)),
                  payload.size());
    return line;
}

/// Strips and verifies the checksum trailer, leaving `*bundle` = payload.
/// Bundles written before the trailer existed (no "checksum" line) pass
/// through unchanged — the loader stays readable on legacy files.
Status VerifyChecksumTrailer(std::string* bundle, const std::string& path) {
    // The trailer is the final '\n'-terminated line; find the line start.
    if (bundle->empty() || bundle->back() != '\n') return Status::Ok();
    const std::size_t prev_nl = bundle->find_last_of('\n', bundle->size() - 2);
    const std::size_t line_start = prev_nl == std::string::npos ? 0
                                                                : prev_nl + 1;
    if (bundle->compare(line_start, std::strlen(kChecksumTag), kChecksumTag) !=
        0) {
        return Status::Ok();  // legacy bundle, no trailer
    }
    unsigned long long stored_sum = 0;
    std::size_t stored_len = 0;
    if (std::sscanf(bundle->c_str() + line_start, "checksum fnv1a64 %llx %zu",
                    &stored_sum, &stored_len) != 2) {
        return Status::InvalidArgument("malformed checksum trailer in '" +
                                       path + "'");
    }
    bundle->resize(line_start);
    if (stored_len != bundle->size() ||
        stored_sum != static_cast<unsigned long long>(Fnv1a64(*bundle))) {
        return Status::InvalidArgument(
            "checksum mismatch in '" + path +
            "': file is truncated or corrupt (expected " +
            std::to_string(stored_len) + " payload bytes, have " +
            std::to_string(bundle->size()) + ")");
    }
    return Status::Ok();
}

}  // namespace

Status SavePipelineModelToFile(const PatternClassifierPipeline& pipeline,
                               const std::string& path) {
    // Serialize to memory first, then publish with WriteFileAtomic
    // (tmp + fsync + rename): a crash mid-save can never leave a torn or
    // half-written bundle at `path` — either the old file or the complete new
    // one. The FNV-1a trailer lets the loader detect truncation/corruption
    // that happened after the rename (disk errors, manual edits).
    std::ostringstream out;
    DFP_RETURN_NOT_OK(SavePipelineModel(pipeline, out));
    std::string bundle = out.str();
    bundle += ChecksumTrailer(bundle);
    return WriteFileAtomic(path, bundle, /*durable=*/true);
}

Result<LoadedModel> LoadPipelineModelFromFile(const std::string& path) {
    std::string bundle;
    DFP_RETURN_NOT_OK(ReadFileToString(path, &bundle));
    if (const auto fp = DFP_FAILPOINT("core.model_io.load"); fp) {
        fp.Sleep();
        switch (fp.kind) {
            case FailpointKind::kShortWrite:
                // Simulated torn read: drop the back half of the bundle. The
                // checksum (or the incremental parser) must reject it.
                bundle.resize(bundle.size() / 2);
                break;
            case FailpointKind::kDelay:
                break;
            default:
                return Status::Internal("injected load failure for '" + path +
                                        "'");
        }
    }
    DFP_RETURN_NOT_OK(VerifyChecksumTrailer(&bundle, path));
    std::istringstream in(bundle);
    return LoadPipelineModel(in);
}

}  // namespace dfp
