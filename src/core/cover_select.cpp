#include "core/cover_select.hpp"

#include <algorithm>
#include <cassert>

#include "core/redundancy.hpp"

namespace dfp {

std::vector<std::size_t> GreedyMmrSelect(const std::vector<BitVector>& covers,
                                         const std::vector<double>& relevance,
                                         std::size_t max_features) {
    assert(covers.size() == relevance.size());
    const std::size_t n = covers.size();
    std::vector<char> done(n, 0);
    std::vector<double> max_red(n, 0.0);
    std::vector<std::size_t> chosen;
    while (chosen.size() < std::min(max_features, n)) {
        std::size_t best = n;
        double best_gain = 0.0;  // require strictly positive marginal gain
        for (std::size_t i = 0; i < n; ++i) {
            if (done[i]) continue;
            const double gain = relevance[i] - max_red[i];
            if (gain > best_gain) {
                best_gain = gain;
                best = i;
            }
        }
        if (best == n) break;
        done[best] = 1;
        chosen.push_back(best);
        for (std::size_t i = 0; i < n; ++i) {
            if (done[i]) continue;
            const double r = CoverJaccard(covers[i], covers[best]) *
                             std::min(relevance[i], relevance[best]);
            max_red[i] = std::max(max_red[i], r);
        }
    }
    return chosen;
}

}  // namespace dfp
