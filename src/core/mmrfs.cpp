#include "core/mmrfs.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <memory>

#include "common/parallel.hpp"
#include "core/redundancy.hpp"
#include "obs/metrics.hpp"

namespace dfp {

namespace {

// Flushes one selection run's tallies to the registry: how many greedy rounds
// ran, the accept/discard split, the gain distribution of accepted features
// and how many instances were still under δ coverage at the stop.
void FlushMmrfsMetrics(std::size_t iterations, std::size_t accepted,
                       std::size_t discarded, const std::vector<double>& gains,
                       std::size_t under_covered, std::size_t pool_size,
                       std::size_t redundancy_evals) {
    auto& registry = obs::Registry::Get();
    static auto& iter_c = registry.GetCounter("dfp.core.mmrfs.iterations");
    static auto& accept_c = registry.GetCounter("dfp.core.mmrfs.accepted");
    static auto& discard_c = registry.GetCounter("dfp.core.mmrfs.discarded");
    static auto& red_c =
        registry.GetCounter("dfp.core.mmrfs.redundancy_evals");
    static auto& gain_h = registry.GetHistogram(
        "dfp.core.mmrfs.gain",
        {0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0});
    iter_c.Inc(iterations);
    accept_c.Inc(accepted);
    discard_c.Inc(discarded);
    red_c.Inc(redundancy_evals);
    for (double g : gains) gain_h.Observe(g);
    registry.GetGauge("dfp.core.mmrfs.under_covered_final")
        .Set(static_cast<double>(under_covered));
    registry.GetGauge("dfp.core.mmrfs.pool_size")
        .Set(static_cast<double>(pool_size));
}

}  // namespace

MmrfsResult RunMmrfs(const TransactionDatabase& db,
                     const std::vector<Pattern>& candidates,
                     const MmrfsConfig& config) {
    const std::size_t n = db.num_transactions();
    MmrfsResult result;
    result.coverage.assign(n, 0);
    result.relevance.resize(candidates.size());
    if (candidates.empty() || n == 0) return result;
    assert((config.candidate_mask == nullptr ||
            config.candidate_mask->size() == candidates.size()) &&
           "candidate_mask must match the candidate count");
    const std::vector<char>* mask = config.candidate_mask;
    auto masked_out = [mask](std::size_t i) {
        return mask != nullptr && (*mask)[i] == 0;
    };

    // The effective feature cap folds budget.max_patterns into max_features;
    // selections emitted so far play the "pattern count" role for the guard.
    // Every check covers an O(|F|) scan, so read the clock on each one.
    BudgetGuard guard(config.budget, config.max_features, /*clock_stride=*/1);

    // Candidate-scan parallelism: relevance scoring and the per-round
    // redundancy refresh write disjoint per-candidate slots, so the fan-out
    // is deterministic regardless of thread count. The pool lives for the
    // whole selection run (one greedy round per ParallelFor).
    const std::size_t threads =
        std::min(ResolveNumThreads(config.num_threads), candidates.size());
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

    if (pool == nullptr) {
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            if (masked_out(i)) continue;  // filtered: stays at relevance 0
            assert(candidates[i].cover.size() == n && "metadata not attached");
            result.relevance[i] =
                PatternRelevance(config.relevance, db, candidates[i]);
            if (guard.Check(0) != BudgetBreach::kNone &&
                guard.breach() != BudgetBreach::kPatternCap) {
                // Deadline/cancel during scoring: nothing selected yet, bail.
                result.breach = guard.breach();
                RecordBreach("core.mmrfs", result.breach, 0.0);
                return result;
            }
        }
    } else {
        // Parallel scoring: each chunk polls its own guard on the shared
        // budget so deadline/cancel still interrupts the scan; scores are
        // identical to the serial path (PatternRelevance is pure).
        std::atomic<int> scoring_breach{static_cast<int>(BudgetBreach::kNone)};
        DeadlineTimer timer(config.budget.time_budget_ms);
        ParallelFor(pool.get(), candidates.size(),
                    [&](std::size_t begin, std::size_t end) {
                        BudgetGuard chunk_guard(TaskBudget(config.budget, timer),
                                                std::numeric_limits<
                                                    std::size_t>::max(),
                                                /*clock_stride=*/1);
                        for (std::size_t i = begin; i < end; ++i) {
                            if (masked_out(i)) continue;
                            assert(candidates[i].cover.size() == n &&
                                   "metadata not attached");
                            result.relevance[i] = PatternRelevance(
                                config.relevance, db, candidates[i]);
                            if (chunk_guard.Check(0) != BudgetBreach::kNone) {
                                scoring_breach.store(
                                    static_cast<int>(chunk_guard.breach()),
                                    std::memory_order_relaxed);
                                return;
                            }
                        }
                    });
        const auto breach =
            static_cast<BudgetBreach>(scoring_breach.load(std::memory_order_relaxed));
        if (breach != BudgetBreach::kNone) {
            result.breach = breach;
            RecordBreach("core.mmrfs", result.breach, 0.0);
            return result;
        }
    }

    // Per-candidate running state: selected/discarded flag and the current
    // max_{β ∈ Fs} R(α, β), updated incrementally as Fs grows so each
    // selection round is a single O(|F|) scan.
    std::vector<char> done(candidates.size(), 0);
    std::vector<double> max_red(candidates.size(), 0.0);
    if (mask != nullptr) {
        // Masked-out candidates enter the greedy loop pre-discarded.
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            if ((*mask)[i] == 0) done[i] = 1;
        }
    }

    // An instance is "correctly covered" by α when α is present in it and α's
    // majority class matches its label. Precompute per-candidate majority.
    std::vector<ClassLabel> majority(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        majority[i] = candidates[i].MajorityClass();
    }

    std::size_t under_covered = 0;  // instances with coverage < δ
    for (std::size_t t = 0; t < n; ++t) under_covered += (config.coverage_delta > 0);

    auto correctly_covers_needy = [&](std::size_t i) {
        bool hit = false;
        candidates[i].cover.ForEach([&](std::uint32_t t) {
            if (!hit && db.label(t) == majority[i] &&
                result.coverage[t] < config.coverage_delta) {
                hit = true;
            }
        });
        return hit;
    };

    // Greedy loop, one fused parallel pass per round: refresh each remaining
    // candidate's cached max_{β ∈ Fs} R(α, β) against the β selected *last*
    // round (nothing else changed — the incremental-cache invariant), compute
    // its marginal gain, and take a chunk-local argmax. Chunk argmaxes merge
    // in chunk-index order with a strict `>`, which keeps the lowest-index
    // candidate among equal gains — exactly the serial left-to-right scan's
    // tie-break, for any chunking. With incremental_cache off the max is
    // recomputed over all of Fs in selection order instead: the same max()
    // over the same doubles, so the certificate path is bitwise identical.
    std::size_t iterations = 0;
    std::size_t redundancy_evals = 0;
    std::size_t last_selected = candidates.size();  // none yet
    const std::size_t chunk_size = std::max<std::size_t>(
        64, (candidates.size() + threads * 4 - 1) / (threads * 4));
    const std::size_t num_chunks =
        (candidates.size() + chunk_size - 1) / chunk_size;
    struct ChunkBest {
        double gain = -std::numeric_limits<double>::infinity();
        std::size_t idx = 0;
        std::size_t evals = 0;
    };
    std::vector<ChunkBest> chunk_best(num_chunks);
    while (under_covered > 0 && result.selected.size() < config.max_features) {
        if (guard.Check(result.selected.size()) != BudgetBreach::kNone) {
            result.breach = guard.breach();
            break;
        }
        ++iterations;
        chunk_best.assign(num_chunks, ChunkBest{});
        ParallelFor(
            pool.get(), num_chunks,
            [&](std::size_t cb, std::size_t ce) {
                for (std::size_t c = cb; c < ce; ++c) {
                    const std::size_t begin = c * chunk_size;
                    const std::size_t end =
                        std::min(candidates.size(), begin + chunk_size);
                    ChunkBest local;
                    local.idx = candidates.size();
                    for (std::size_t i = begin; i < end; ++i) {
                        if (done[i]) continue;
                        if (config.incremental_cache) {
                            if (last_selected < candidates.size()) {
                                const double r = Redundancy(
                                    candidates[i], candidates[last_selected],
                                    result.relevance[i],
                                    result.relevance[last_selected]);
                                ++local.evals;
                                max_red[i] = std::max(max_red[i], r);
                            }
                        } else if (!result.selected.empty()) {
                            double m = 0.0;
                            for (std::size_t s : result.selected) {
                                const double r = Redundancy(
                                    candidates[i], candidates[s],
                                    result.relevance[i], result.relevance[s]);
                                ++local.evals;
                                m = std::max(m, r);
                            }
                            max_red[i] = m;
                        }
                        const double gain = result.relevance[i] - max_red[i];
                        if (gain > local.gain) {
                            local.gain = gain;
                            local.idx = i;
                        }
                    }
                    chunk_best[c] = local;
                }
            },
            /*min_grain=*/1);
        std::size_t best = candidates.size();
        double best_gain = -std::numeric_limits<double>::infinity();
        for (const ChunkBest& cb : chunk_best) {
            redundancy_evals += cb.evals;
            if (cb.idx < candidates.size() && cb.gain > best_gain) {
                best_gain = cb.gain;
                best = cb.idx;
            }
        }
        if (best == candidates.size()) break;  // pool exhausted
        done[best] = 1;

        if (!correctly_covers_needy(best)) {
            // Discard, don't select: Fs is unchanged, so the next round has
            // no new β to fold into the cache.
            last_selected = candidates.size();
            continue;
        }

        result.selected.push_back(best);
        result.gains.push_back(best_gain);
        last_selected = best;
        // Update coverage over correctly covered instances.
        candidates[best].cover.ForEach([&](std::uint32_t t) {
            if (db.label(t) != majority[best]) return;
            if (result.coverage[t] == config.coverage_delta - 1) --under_covered;
            if (result.coverage[t] < config.coverage_delta) ++result.coverage[t];
        });
    }
    if (result.breach != BudgetBreach::kNone) {
        RecordBreach("core.mmrfs", result.breach,
                     static_cast<double>(result.selected.size()));
    }
    FlushMmrfsMetrics(iterations, result.selected.size(),
                      iterations - result.selected.size(), result.gains,
                      under_covered, candidates.size(), redundancy_evals);
    return result;
}

std::vector<Pattern> SelectPatterns(const TransactionDatabase& db,
                                    const std::vector<Pattern>& candidates,
                                    const MmrfsConfig& config) {
    const MmrfsResult result = RunMmrfs(db, candidates, config);
    std::vector<Pattern> out;
    out.reserve(result.selected.size());
    for (std::size_t i : result.selected) out.push_back(candidates[i]);
    return out;
}

std::vector<std::size_t> TopKByRelevance(const TransactionDatabase& db,
                                         const std::vector<Pattern>& candidates,
                                         RelevanceMeasure measure, std::size_t k) {
    std::vector<std::pair<double, std::size_t>> scored;
    scored.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        scored.emplace_back(PatternRelevance(measure, db, candidates[i]), i);
    }
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
    });
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < std::min(k, scored.size()); ++i) {
        out.push_back(scored[i].second);
    }
    return out;
}

}  // namespace dfp
