// Trained-model persistence.
//
// A trained PatternClassifierPipeline is a FeatureSpace (item universe +
// selected pattern itemsets) plus a learner. Both serialize to a line-oriented
// text format ("dfp-model v1"), human-inspectable and stable across platforms.
// Covers and training-time metadata are not persisted — prediction only needs
// the itemsets. One exception: when the significance filter shaped the model,
// an optional "provenance <n> key=value ..." line after the header records
// how (sig_test/alpha/correction/...), so a served model can always answer
// "which test pruned these patterns". Models trained without the filter have
// no provenance line and their bundles are byte-identical to the pre-filter
// format; the loader accepts both.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "core/feature_space.hpp"
#include "core/pipeline.hpp"
#include "ml/classifier.hpp"

namespace dfp {

/// Serializes a feature space (item count + pattern itemsets).
Status SaveFeatureSpace(const FeatureSpace& space, std::ostream& out);
Result<FeatureSpace> LoadFeatureSpace(std::istream& in);

/// Creates an untrained learner from its TypeId ("svm", "c4.5", "nb",
/// "pegasos"). Returns NotFound for unknown ids.
Result<std::unique_ptr<Classifier>> MakeLearnerByTypeId(const std::string& id);

/// Serializes a trained pipeline (feature space + learner).
Status SavePipelineModel(const PatternClassifierPipeline& pipeline,
                         std::ostream& out);

/// A loaded predictor: feature space + learner, predicting raw transactions.
///
/// Predict reuses an internal encode buffer, so a LoadedModel must not be
/// shared across threads without external synchronization. Concurrent scoring
/// goes through serve::ScoringEngine, which keeps per-worker scratch instead.
class LoadedModel {
  public:
    LoadedModel(FeatureSpace space, std::unique_ptr<Classifier> learner)
        : space_(std::move(space)), learner_(std::move(learner)) {}

    ClassLabel Predict(const std::vector<ItemId>& transaction) const;
    double Accuracy(const TransactionDatabase& test) const;
    const FeatureSpace& feature_space() const { return space_; }
    const Classifier& learner() const { return *learner_; }
    /// Training provenance carried in the bundle (empty on legacy models and
    /// models trained without the significance filter): sig_test, alpha,
    /// correction, sig_rejected, ... — see PatternClassifierPipeline::
    /// provenance().
    const std::vector<std::pair<std::string, std::string>>& provenance() const {
        return provenance_;
    }
    void set_provenance(
        std::vector<std::pair<std::string, std::string>> provenance) {
        provenance_ = std::move(provenance);
    }

  private:
    FeatureSpace space_;
    std::unique_ptr<Classifier> learner_;
    std::vector<std::pair<std::string, std::string>> provenance_;
    mutable std::vector<double> encode_buffer_;  // scratch for Predict
};

/// Deserializes a pipeline model saved with SavePipelineModel.
Result<LoadedModel> LoadPipelineModel(std::istream& in);

/// File-path conveniences, hardened for crash safety (DESIGN.md §15):
/// * Save is atomic (tmp + fsync + rename + parent-dir fsync) and appends an
///   FNV-1a 64 checksum trailer ("checksum fnv1a64 <hex> <bytes>") — a crash
///   mid-save leaves the previous file intact, never a torn bundle.
/// * Load verifies the trailer (InvalidArgument on mismatch) and still
///   accepts legacy trailer-less bundles.
/// The stream APIs above stay trailer-free: the trailer is a property of the
/// at-rest file, not of the serialization format.
Status SavePipelineModelToFile(const PatternClassifierPipeline& pipeline,
                               const std::string& path);
Result<LoadedModel> LoadPipelineModelFromFile(const std::string& path);

}  // namespace dfp
