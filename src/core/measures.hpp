// Discriminative measures of binary (pattern) features w.r.t. the class label.
//
// A pattern α induces the binary feature X = 1{α ⊆ transaction}. Its
// discriminative power is measured against the class label C by information
// gain IG(C|X) = H(C) − H(C|X) (in bits) or by the Fisher score (Eq. 4 of the
// paper, with the population-variance convention used in its derivation).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/transaction_db.hpp"
#include "fpm/itemset.hpp"
#include "stats/dist.hpp"

namespace dfp {

/// Sufficient statistics of one binary feature vs. the class label.
struct FeatureStats {
    std::size_t n = 0;        ///< total transactions
    std::size_t support = 0;  ///< |X = 1|
    std::vector<std::size_t> class_totals;   ///< n_c per class
    std::vector<std::size_t> class_support;  ///< |X = 1 ∧ C = c| per class

    double theta() const {
        return n == 0 ? 0.0 : static_cast<double>(support) / static_cast<double>(n);
    }
};

/// Builds FeatureStats for the feature "row ∈ cover" against db's labels.
FeatureStats StatsOfCover(const TransactionDatabase& db, const BitVector& cover);

/// Builds FeatureStats for a mined pattern (requires attached metadata).
FeatureStats StatsOfPattern(const TransactionDatabase& db, const Pattern& pattern);

/// One-vs-rest 2×2 contingency table of the binary feature against class
/// `c`: rows X = 1 / X = 0, columns C = c / C ≠ c. Classes outside the
/// database's range count as empty. This is the significance layer's input
/// (stats/significance.hpp).
stats::Table2x2 OneVsRestTable(const FeatureStats& fs, ClassLabel c);

/// H(C) in bits.
double ClassEntropy(const FeatureStats& stats);

/// IG(C|X) = H(C) − H(C|X) in bits. Non-negative (up to rounding).
double InformationGain(const FeatureStats& stats);

/// Fisher score (Eq. 4) of the binary feature. Returns +inf when the
/// within-class variance is zero but the between-class spread is not, and 0
/// when both vanish.
double FisherScore(const FeatureStats& stats);

/// Gini impurity reduction of the split X=0 / X=1 (extra measure, used by the
/// ablation benches).
double GiniGain(const FeatureStats& stats);

/// Relevance measure selector for MMRFS (Definition 3).
enum class RelevanceMeasure { kInfoGain, kFisher, kGini };

const char* RelevanceMeasureName(RelevanceMeasure m);

/// Dispatches to the chosen measure.
double Relevance(RelevanceMeasure measure, const FeatureStats& stats);

/// Convenience: relevance of a pattern w.r.t. db's labels.
double PatternRelevance(RelevanceMeasure measure, const TransactionDatabase& db,
                        const Pattern& pattern);

}  // namespace dfp
