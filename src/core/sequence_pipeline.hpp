// Frequent-pattern-based classification over sequences (the paper's §6
// extension direction, built on the PrefixSpan miner).
//
// Same three steps as the itemset pipeline: per-class mining of frequent
// subsequences, MMR-style selection (information gain relevance discounted by
// cover-Jaccard redundancy, Eq. 9 applied verbatim to subsequence covers),
// and learning on the feature space "item presence ∪ selected subsequences".
#pragma once

#include <memory>
#include <vector>

#include "common/bitvector.hpp"
#include "common/status.hpp"
#include "core/measures.hpp"
#include "fpm/prefixspan.hpp"
#include "ml/classifier.hpp"

namespace dfp {

struct SequencePipelineConfig {
    PrefixSpanConfig miner;
    bool per_class_mining = true;
    /// Minimum subsequence length kept as a feature (1-item subsequences
    /// duplicate the item-presence coordinates).
    std::size_t min_pattern_len = 2;
    /// Maximum number of selected subsequence features.
    std::size_t max_features = 200;
};

/// A selected subsequence feature with its training metadata.
struct SequenceFeature {
    Sequence items;
    std::size_t support = 0;
    double relevance = 0.0;
};

/// Mines, selects and learns; predicts raw sequences.
class SequenceClassifierPipeline {
  public:
    explicit SequenceClassifierPipeline(SequencePipelineConfig config)
        : config_(std::move(config)) {}

    Status Train(const SequenceDatabase& train, std::unique_ptr<Classifier> learner);
    ClassLabel Predict(const Sequence& sequence) const;
    double Accuracy(const SequenceDatabase& test) const;

    const std::vector<SequenceFeature>& features() const { return features_; }
    std::size_t num_candidates() const { return num_candidates_; }

  private:
    void Encode(const Sequence& sequence, std::vector<double>* out) const;

    SequencePipelineConfig config_;
    std::vector<SequenceFeature> features_;
    std::size_t num_candidates_ = 0;
    std::size_t num_items_ = 0;
    std::unique_ptr<Classifier> learner_;
};

}  // namespace dfp
