#include "core/redundancy.hpp"

#include <algorithm>

namespace dfp {

double CoverJaccard(const BitVector& a, const BitVector& b) {
    const std::size_t unions = a.OrCount(b);
    if (unions == 0) return 0.0;
    return static_cast<double>(a.AndCount(b)) / static_cast<double>(unions);
}

double Redundancy(const Pattern& a, const Pattern& b, double relevance_a,
                  double relevance_b) {
    return CoverJaccard(a.cover, b.cover) * std::min(relevance_a, relevance_b);
}

}  // namespace dfp
