// Frequent-pattern-based classification over labeled graphs (the second §6
// extension direction; the compound-classification setting of the paper's
// reference [7], built on the labeled-path miner).
//
// Same three steps: per-class frequent-path mining, MMR selection over path
// covers (Eq. 9), and learning on "vertex-label counts ∪ selected paths".
#pragma once

#include <memory>
#include <vector>

#include "common/status.hpp"
#include "data/graph.hpp"
#include "fpm/pathminer.hpp"
#include "ml/classifier.hpp"

namespace dfp {

struct GraphPipelineConfig {
    PathMinerConfig miner;
    bool per_class_mining = true;
    /// Minimum edges per path feature (0-edge paths duplicate the
    /// vertex-label-count coordinates).
    std::size_t min_pattern_edges = 1;
    std::size_t max_features = 150;
};

struct GraphFeature {
    PathPattern pattern;
    double relevance = 0.0;
};

/// Mines, selects, and learns; predicts raw labeled graphs.
class GraphClassifierPipeline {
  public:
    explicit GraphClassifierPipeline(GraphPipelineConfig config)
        : config_(std::move(config)) {}

    Status Train(const GraphDatabase& train, std::unique_ptr<Classifier> learner);
    ClassLabel Predict(const LabeledGraph& graph) const;
    double Accuracy(const GraphDatabase& test) const;

    const std::vector<GraphFeature>& features() const { return features_; }
    std::size_t num_candidates() const { return num_candidates_; }

  private:
    void Encode(const LabeledGraph& graph, std::vector<double>* out) const;

    GraphPipelineConfig config_;
    std::vector<GraphFeature> features_;
    std::size_t num_candidates_ = 0;
    std::size_t num_vertex_labels_ = 0;
    std::unique_ptr<Classifier> learner_;
};

}  // namespace dfp
