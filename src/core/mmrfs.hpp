// MMRFS — Maximal-Marginal-Relevance Feature Selection (Algorithm 1).
//
// Greedy selection over mined patterns: start from the most relevant pattern,
// then repeatedly take the pattern with the largest marginal gain
//     g(α) = S(α) − max_{β ∈ Fs} R(α, β)
// accepting it only if it *correctly covers* (pattern present AND the
// pattern's majority class equals the instance label) at least one training
// instance that is not yet covered δ times. Selection stops when every
// instance is covered δ times, the candidate pool empties, or an explicit
// feature cap is hit. The database-coverage parameter δ thus sizes the
// selected set automatically, as in CMAR.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "common/budget.hpp"
#include "core/measures.hpp"
#include "data/transaction_db.hpp"
#include "fpm/itemset.hpp"

namespace dfp {

struct MmrfsConfig {
    /// Relevance measure S (Definition 3).
    RelevanceMeasure relevance = RelevanceMeasure::kInfoGain;
    /// Database coverage δ: stop once every instance is covered δ times.
    std::size_t coverage_delta = 3;
    /// Hard cap on |Fs| (the paper's algorithm has none; useful in sweeps).
    std::size_t max_features = std::numeric_limits<std::size_t>::max();
    /// Worker threads for the per-candidate work inside each greedy round:
    /// the relevance scan and the fused redundancy-refresh + marginal-gain
    /// argmax run over sharded candidate ranges (chunk-local argmaxes merged
    /// in chunk order reproduce the serial lowest-index tie-break exactly;
    /// only the coverage update stays serial). The selected sequence is
    /// identical for every thread count. 1 = serial; 0 = hardware_concurrency.
    std::size_t num_threads = 1;
    /// Incremental-redundancy caching: keep max_{β ∈ Fs} R(α, β) per
    /// candidate α and update it only against the β *newly added* last round,
    /// making each round O(|F|) instead of O(|F|·|Fs|). Off recomputes the
    /// max over all of Fs from scratch every round — same doubles bitwise
    /// (max over an identical value sequence), kept as the certificate path
    /// the dfp_parallel suite asserts `==` against (DESIGN.md §17).
    bool incremental_cache = true;
    /// Optional per-candidate keep-mask from the significance filter
    /// (stats/significance.hpp). Masked-out candidates (mask value 0) are
    /// never relevance-scored, never scanned in greedy rounds and never
    /// selected — exactly as if pre-discarded — but candidate *indices* are
    /// preserved, so MmrfsResult::selected still indexes the original vector.
    /// Null (the default) leaves the unfiltered code path untouched,
    /// instruction for instruction. Size must equal the candidate count.
    /// Borrowed, not owned.
    const std::vector<char>* candidate_mask = nullptr;
    /// Execution limits; a breach stops the greedy loop early, keeping the
    /// features selected so far (each selection is individually valid).
    ExecutionBudget budget;
};

struct MmrfsResult {
    /// Indices into the candidate vector, in selection order.
    std::vector<std::size_t> selected;
    /// Marginal gain of each selected pattern at the time of selection.
    std::vector<double> gains;
    /// Relevance S(α) of every candidate (by candidate index).
    std::vector<double> relevance;
    /// Per-instance final coverage counts.
    std::vector<std::size_t> coverage;
    /// kNone when selection ran to its natural stop; otherwise the budget
    /// breach that truncated the greedy loop.
    BudgetBreach breach = BudgetBreach::kNone;
};

/// Runs Algorithm 1. Candidates must have metadata attached against `db`
/// (cover + class_counts). Runs in O(|F| · |Fs|) redundancy evaluations.
MmrfsResult RunMmrfs(const TransactionDatabase& db,
                     const std::vector<Pattern>& candidates,
                     const MmrfsConfig& config);

/// Convenience: returns the selected patterns themselves.
std::vector<Pattern> SelectPatterns(const TransactionDatabase& db,
                                    const std::vector<Pattern>& candidates,
                                    const MmrfsConfig& config);

/// Baselines for the selection ablation bench: take the top-k candidates by
/// relevance alone (no redundancy term), or k uniformly random candidates.
std::vector<std::size_t> TopKByRelevance(const TransactionDatabase& db,
                                         const std::vector<Pattern>& candidates,
                                         RelevanceMeasure measure, std::size_t k);

}  // namespace dfp
