#include "core/pipeline.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/string_util.hpp"
#include "core/minsup_strategy.hpp"
#include "fpm/apriori.hpp"
#include "fpm/closed_miner.hpp"
#include "fpm/eclat.hpp"
#include "fpm/fpgrowth.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dfp {

std::unique_ptr<Miner> MakeMiner(MinerKind kind) {
    switch (kind) {
        case MinerKind::kClosed: return std::make_unique<ClosedMiner>();
        case MinerKind::kFpGrowth: return std::make_unique<FpGrowthMiner>();
        case MinerKind::kApriori: return std::make_unique<AprioriMiner>();
        case MinerKind::kEclat: return std::make_unique<EclatMiner>();
    }
    return nullptr;
}

namespace {

// Hash of a sorted itemset for candidate dedup across class partitions.
struct ItemsetHash {
    std::size_t operator()(const Itemset& items) const {
        std::size_t h = 1469598103934665603ull;
        for (ItemId i : items) {
            h ^= i;
            h *= 1099511628211ull;
        }
        return h;
    }
};

// Mirrors a finished run's stats into the registry (the struct stays the
// caller-facing façade; the registry carries the same numbers into reports).
void PublishPipelineStats(const PipelineStats& stats) {
    auto& registry = obs::Registry::Get();
    registry.GetGauge("dfp.core.pipeline.num_candidates")
        .Set(static_cast<double>(stats.num_candidates));
    registry.GetGauge("dfp.core.pipeline.num_selected")
        .Set(static_cast<double>(stats.num_selected));
    registry.GetGauge("dfp.core.pipeline.num_sig_rejected")
        .Set(static_cast<double>(stats.num_sig_rejected));
    registry.GetGauge("dfp.core.pipeline.mine_seconds").Set(stats.mine_seconds);
    registry.GetGauge("dfp.core.pipeline.significance_seconds")
        .Set(stats.significance_seconds);
    registry.GetGauge("dfp.core.pipeline.select_seconds")
        .Set(stats.select_seconds);
    registry.GetGauge("dfp.core.pipeline.transform_seconds")
        .Set(stats.transform_seconds);
    registry.GetGauge("dfp.core.pipeline.learn_seconds").Set(stats.learn_seconds);
    registry.GetCounter("dfp.core.pipeline.train_runs").Inc();
}

}  // namespace

Result<MineOutcome<Pattern>> PatternClassifierPipeline::MineCandidatesBudgeted(
    const TransactionDatabase& train, const MinerConfig& mine_config) const {
    const std::unique_ptr<Miner> miner = MakeMiner(config_.miner_kind);
    MinerConfig partition_config = mine_config;
    // Single items are always part of the feature space I ∪ F; keeping them as
    // pattern candidates would only duplicate coordinates.
    partition_config.include_singletons = false;

    // One deadline shared by all partitions: each gets the remaining clock,
    // not a fresh window.
    DeadlineTimer timer(mine_config.budget.time_budget_ms);
    MineOutcome<Pattern> outcome;
    std::vector<std::vector<Pattern>> partitions;
    auto mine_one = [&](const TransactionDatabase& part,
                        obs::Span& span) -> Status {
        partition_config.budget.time_budget_ms = timer.remaining_ms();
        auto mined = miner->MineBudgeted(part, partition_config);
        if (!mined.ok()) return mined.status();
        MineOutcome<Pattern> part_outcome = std::move(mined).value();
        span.Annotate("patterns",
                      static_cast<double>(part_outcome.patterns.size()));
        if (part_outcome.breach != BudgetBreach::kNone &&
            outcome.breach == BudgetBreach::kNone) {
            outcome.breach = part_outcome.breach;
        }
        partitions.push_back(std::move(part_outcome.patterns));
        return Status::Ok();
    };

    if (config_.per_class_mining) {
        for (ClassLabel c = 0; c < train.num_classes(); ++c) {
            // A fired token stops everything; other breaches still let later
            // partitions mine with whatever budget remains.
            if (outcome.breach == BudgetBreach::kCancelled) break;
            TransactionDatabase partition = train.FilterByClass(c);
            if (partition.num_transactions() == 0) continue;
            obs::Span span(
                StrFormat("mine.class_%u", static_cast<unsigned>(c)));
            DFP_RETURN_NOT_OK(mine_one(partition, span));
        }
    } else {
        obs::Span span("mine.all");
        DFP_RETURN_NOT_OK(mine_one(train, span));
    }

    // Pool the per-class results, dropping itemsets already seen in an earlier
    // partition, then re-anchor metadata (cover, per-class counts, support) on
    // the full training database.
    obs::Span pool_span("pool_dedup");
    std::unordered_set<Itemset, ItemsetHash> seen;
    for (auto& mined : partitions) {
        for (Pattern& p : mined) {
            if (seen.insert(p.items).second) {
                outcome.patterns.push_back(std::move(p));
            }
        }
    }
    AttachMetadata(train, &outcome.patterns);
    pool_span.Annotate("pooled", static_cast<double>(outcome.patterns.size()));
    return outcome;
}

Result<std::vector<Pattern>> PatternClassifierPipeline::MineCandidates(
    const TransactionDatabase& train) const {
    auto mined = MineCandidatesBudgeted(train, config_.miner);
    if (!mined.ok()) return mined.status();
    MineOutcome<Pattern> outcome = std::move(mined).value();
    if (outcome.breach == BudgetBreach::kCancelled) {
        return Status::Cancelled(
            StrFormat("candidate mining cancelled after %zu patterns",
                      outcome.patterns.size()));
    }
    if (outcome.truncated()) {
        return Status::ResourceExhausted(
            StrFormat("candidate mining stopped by budget (%s) after %zu "
                      "patterns",
                      BudgetBreachName(outcome.breach),
                      outcome.patterns.size()));
    }
    return std::move(outcome.patterns);
}

Status PatternClassifierPipeline::Train(const TransactionDatabase& train,
                                        std::unique_ptr<Classifier> learner) {
    if (learner == nullptr) {
        return Status::InvalidArgument("pipeline requires a learner");
    }
    if (train.num_transactions() == 0) {
        return Status::InvalidArgument("empty training database");
    }
    obs::Span train_span("train");
    budget_report_ = BudgetReport{};
    // One thread knob for the whole run, mirrored into every stage and the
    // run report (quickstart --threads lands here).
    const std::size_t resolved_threads = ResolveNumThreads(config_.num_threads);
    obs::Registry::Get()
        .GetGauge("dfp.parallel.pipeline_threads")
        .Set(static_cast<double>(resolved_threads));
    const std::size_t guard_mark = GuardLog::Get().size();
    // Worker-utilization bookends: the stage pools fold their busy/wall time
    // into process-wide counters when they retire, so the delta across Train
    // is exactly this run's pools (DESIGN.md §17).
    const std::uint64_t busy_mark = ThreadPool::ProcessBusyNs();
    const std::uint64_t wall_mark = ThreadPool::ProcessWorkerWallNs();
    // One wall-clock deadline for the whole run; every stage gets whatever
    // remains of it.
    DeadlineTimer timer(config_.budget.time_budget_ms);
    const std::size_t n = train.num_transactions();

    {
        obs::Span mine_span("mine");
        MinerConfig mc = config_.miner;
        mc.num_threads = resolved_threads;
        // Fold the pipeline-wide caps/token into the miner's own budget; the
        // tighter constraint wins.
        if (mc.budget.cancel == nullptr) mc.budget.cancel = config_.budget.cancel;
        mc.budget.max_patterns =
            std::min(mc.budget.max_patterns, config_.budget.max_patterns);
        if (config_.budget.max_memory_bytes != 0 &&
            (mc.budget.max_memory_bytes == 0 ||
             config_.budget.max_memory_bytes < mc.budget.max_memory_bytes)) {
            mc.budget.max_memory_bytes = config_.budget.max_memory_bytes;
        }

        std::vector<MinSupRecommendation> ladder;
        std::size_t rung = 0;
        for (;;) {
            ++budget_report_.mine_attempts;
            mc.budget.time_budget_ms = timer.remaining_ms();
            auto mined = MineCandidatesBudgeted(train, mc);
            if (!mined.ok()) return mined.status();
            MineOutcome<Pattern> outcome = std::move(mined).value();
            if (outcome.breach == BudgetBreach::kCancelled) {
                budget_report_.mine_breach = outcome.breach;
                FinalizeReport(guard_mark);
                return Status::Cancelled(StrFormat(
                    "pipeline training cancelled during mining (%zu patterns "
                    "pooled)",
                    outcome.patterns.size()));
            }
            // A deadline breach is final — re-mining has no clock left. The
            // pattern/memory cap is what min_sup escalation can relieve.
            const bool capped = outcome.breach == BudgetBreach::kPatternCap ||
                                outcome.breach == BudgetBreach::kMemoryCap;
            const bool retry =
                capped && config_.degrade.escalate_min_sup &&
                budget_report_.mine_attempts <=
                    config_.degrade.max_mine_retries &&
                !timer.expired();
            if (retry && ladder.empty()) {
                std::vector<double> priors(train.num_classes(), 0.0);
                for (std::size_t t = 0; t < n; ++t) {
                    priors[train.label(t)] += 1.0;
                }
                for (double& p : priors) p /= static_cast<double>(n);
                const double theta_start =
                    static_cast<double>(ResolveMinSup(mc, n)) /
                    static_cast<double>(n);
                ladder = MinSupEscalationLadder(theta_start, priors, n,
                                                config_.degrade.ladder_rungs);
            }
            if (!retry || rung >= ladder.size()) {
                // Accept the (possibly truncated) pool.
                budget_report_.mine_breach = outcome.breach;
                if (outcome.breach != BudgetBreach::kNone) {
                    RecordBreach("core.pipeline.mine", outcome.breach,
                                 static_cast<double>(outcome.patterns.size()));
                }
                candidates_ = std::move(outcome.patterns);
                break;
            }
            const MinSupRecommendation& next = ladder[rung++];
            mc.min_sup_rel = -1.0;
            mc.min_sup_abs = next.min_sup_abs;
            ++budget_report_.minsup_escalations;
            budget_report_.escalated_min_sup_rel = next.theta_star;
            GuardLog::Get().Record("core.pipeline", "minsup_escalated",
                                   next.theta_star);
            DFP_LOG_WARN(StrFormat(
                "pipeline: mining breached budget (%s); escalating min_sup to "
                "%zu (θ=%.4g) and re-mining (attempt %zu)",
                BudgetBreachName(outcome.breach), next.min_sup_abs,
                next.theta_star, budget_report_.mine_attempts + 1));
        }
        mine_span.Annotate("candidates", static_cast<double>(candidates_.size()));
        stats_.mine_seconds = mine_span.ElapsedSeconds();
    }
    stats_.num_candidates = candidates_.size();

    return FinishTrain(train, std::move(learner), timer, resolved_threads,
                       guard_mark, busy_mark, wall_mark);
}

Status PatternClassifierPipeline::TrainWithCandidates(
    const TransactionDatabase& train, std::vector<Pattern> candidates,
    std::unique_ptr<Classifier> learner) {
    if (learner == nullptr) {
        return Status::InvalidArgument("pipeline requires a learner");
    }
    if (train.num_transactions() == 0) {
        return Status::InvalidArgument("empty training database");
    }
    obs::Span train_span("train");
    budget_report_ = BudgetReport{};
    const std::size_t resolved_threads = ResolveNumThreads(config_.num_threads);
    obs::Registry::Get()
        .GetGauge("dfp.parallel.pipeline_threads")
        .Set(static_cast<double>(resolved_threads));
    const std::size_t guard_mark = GuardLog::Get().size();
    const std::uint64_t busy_mark = ThreadPool::ProcessBusyNs();
    const std::uint64_t wall_mark = ThreadPool::ProcessWorkerWallNs();
    DeadlineTimer timer(config_.budget.time_budget_ms);

    {
        // Mirror the mining path's pooling: dedup by itemset, drop singletons
        // (redundant next to the single-item block of I ∪ F), re-anchor
        // cover/support/class counts on this training database.
        obs::Span pool_span("pool_dedup");
        std::unordered_set<Itemset, ItemsetHash> seen;
        candidates_.clear();
        candidates_.reserve(candidates.size());
        for (Pattern& p : candidates) {
            if (p.items.size() <= 1) continue;
            if (seen.insert(p.items).second) {
                candidates_.push_back(std::move(p));
            }
        }
        AttachMetadata(train, &candidates_);
        pool_span.Annotate("pooled", static_cast<double>(candidates_.size()));
        stats_.mine_seconds = pool_span.ElapsedSeconds();
    }
    stats_.num_candidates = candidates_.size();

    return FinishTrain(train, std::move(learner), timer, resolved_threads,
                       guard_mark, busy_mark, wall_mark);
}

Status PatternClassifierPipeline::FinishTrain(const TransactionDatabase& train,
                                              std::unique_ptr<Classifier> learner,
                                              DeadlineTimer& timer,
                                              std::size_t resolved_threads,
                                              std::size_t guard_mark,
                                              std::uint64_t busy_mark,
                                              std::uint64_t wall_mark) {
    provenance_.clear();
    stats_.num_sig_rejected = 0;
    stats_.significance_seconds = 0.0;
    SignificanceResult sig;
    const std::vector<char>* sig_mask = nullptr;
    if (config_.significance.test != SigTest::kNone && !candidates_.empty()) {
        obs::Span sig_span("significance");
        SignificanceConfig sig_config = config_.significance;
        sig_config.num_threads = resolved_threads;
        if (sig_config.budget.cancel == nullptr) {
            sig_config.budget.cancel = config_.budget.cancel;
        }
        sig_config.budget.time_budget_ms = timer.remaining_ms();
        sig = RunSignificanceFilter(train, candidates_, sig_config);
        if (sig.breach == BudgetBreach::kCancelled) {
            budget_report_.select_breach = sig.breach;
            FinalizeReport(guard_mark);
            return Status::Cancelled(
                "pipeline training cancelled during significance filtering");
        }
        // Non-cancel breach = the filter failed open (kept everything, guard
        // event already recorded); a null mask reproduces that exactly.
        if (sig.breach == BudgetBreach::kNone) sig_mask = &sig.keep;
        stats_.num_sig_rejected = sig.rejected;
        stats_.significance_seconds = sig_span.ElapsedSeconds();
        sig_span.Annotate("rejected", static_cast<double>(sig.rejected));
        provenance_.emplace_back("sig_test",
                                 SigTestName(config_.significance.test));
        provenance_.emplace_back(
            "alpha", StrFormat("%g", config_.significance.alpha));
        provenance_.emplace_back(
            "correction", CorrectionName(config_.significance.correction));
        if (config_.significance.test == SigTest::kOddsRatio) {
            provenance_.emplace_back(
                "min_odds_ratio",
                StrFormat("%g", config_.significance.min_odds_ratio));
        }
        provenance_.emplace_back("sig_rejected", std::to_string(sig.rejected));
    }

    std::vector<Pattern> features;
    {
        obs::Span select_span("mmrfs");
        if (config_.feature_selection) {
            MmrfsConfig sc = config_.mmrfs;
            sc.num_threads = resolved_threads;
            if (sc.budget.cancel == nullptr) {
                sc.budget.cancel = config_.budget.cancel;
            }
            sc.budget.time_budget_ms = timer.remaining_ms();
            sc.candidate_mask = sig_mask;
            const MmrfsResult selection = RunMmrfs(train, candidates_, sc);
            if (selection.breach == BudgetBreach::kCancelled) {
                budget_report_.select_breach = selection.breach;
                FinalizeReport(guard_mark);
                return Status::Cancelled(
                    "pipeline training cancelled during feature selection");
            }
            // Deadline/cap breach: the greedily selected prefix is still a
            // valid (if smaller) feature set — keep it.
            budget_report_.select_breach = selection.breach;
            features.reserve(selection.selected.size());
            for (std::size_t i : selection.selected) {
                features.push_back(candidates_[i]);
            }
        } else if (sig_mask != nullptr) {
            // Pat_All with the filter on: the keep-mask is the whole story.
            features.reserve(candidates_.size() - sig.rejected);
            for (std::size_t i = 0; i < candidates_.size(); ++i) {
                if ((*sig_mask)[i] != 0) features.push_back(candidates_[i]);
            }
        } else {
            features = candidates_;
        }
        select_span.Annotate("selected", static_cast<double>(features.size()));
        stats_.select_seconds = select_span.ElapsedSeconds();
    }
    stats_.num_selected = features.size();

    FeatureMatrix x;
    {
        obs::Span transform_span("transform");
        const std::size_t items =
            config_.include_single_items ? train.num_items() : 0;
        feature_space_ = FeatureSpace::Build(items, std::move(features));
        x = feature_space_.Transform(train);
        transform_span.Annotate("dim", static_cast<double>(feature_space_.dim()));
        stats_.transform_seconds = transform_span.ElapsedSeconds();
    }

    {
        obs::Span learn_span("learn");
        num_classes_ = train.num_classes();
        ExecutionBudget learn_budget = config_.budget;
        learn_budget.time_budget_ms = timer.remaining_ms();
        learner->SetExecutionBudget(learn_budget);
        learner->SetNumThreads(resolved_threads);
        const Status learned = learner->Train(x, train.labels(), num_classes_);
        if (!learned.ok()) {
            FinalizeReport(guard_mark);
            return learned;
        }
        stats_.learn_seconds = learn_span.ElapsedSeconds();
    }
    learner_ = std::move(learner);
    FinalizeReport(guard_mark);
    // Fraction of worker wall time the run's pools spent executing tasks
    // (1.0 when the run was serial and no pool existed): the at-a-glance
    // "did the fan-out actually keep the workers fed" gauge per train.
    const std::uint64_t busy_ns = ThreadPool::ProcessBusyNs() - busy_mark;
    const std::uint64_t wall_ns = ThreadPool::ProcessWorkerWallNs() - wall_mark;
    obs::Registry::Get()
        .GetGauge("dfp.parallel.train_utilization")
        .Set(wall_ns > 0 ? static_cast<double>(busy_ns) /
                               static_cast<double>(wall_ns)
                         : 1.0);
    PublishPipelineStats(stats_);
    if (budget_report_.degraded()) {
        DFP_LOG_WARN(StrFormat(
            "pipeline: trained degraded (mine=%s after %zu attempt(s), "
            "select=%s, %zu escalation(s), %zu guard event(s))",
            BudgetBreachName(budget_report_.mine_breach),
            budget_report_.mine_attempts,
            BudgetBreachName(budget_report_.select_breach),
            budget_report_.minsup_escalations, budget_report_.events.size()));
    }
    DFP_LOG_DEBUG(StrFormat(
        "pipeline: mined %zu candidates (%.3fs), selected %zu (%.3fs), "
        "dim %zu, learned in %.3fs",
        stats_.num_candidates, stats_.mine_seconds, stats_.num_selected,
        stats_.select_seconds, feature_space_.dim(), stats_.learn_seconds));
    return Status::Ok();
}

void PatternClassifierPipeline::FinalizeReport(std::size_t guard_mark) {
    // Collects the guard events recorded since Train started (the log is
    // process-wide; run reports drain it separately).
    std::vector<GuardEvent> events = GuardLog::Get().Snapshot();
    const std::size_t from = std::min(guard_mark, events.size());
    budget_report_.events.assign(
        std::make_move_iterator(events.begin() +
                                static_cast<std::ptrdiff_t>(from)),
        std::make_move_iterator(events.end()));
}

ClassLabel PatternClassifierPipeline::Predict(
    const std::vector<ItemId>& transaction) const {
    if (encode_buffer_.size() != feature_space_.dim()) {
        encode_buffer_.assign(feature_space_.dim(), 0.0);
    }
    feature_space_.Encode(transaction, encode_buffer_);
    return learner_->Predict(encode_buffer_);
}

double PatternClassifierPipeline::Accuracy(const TransactionDatabase& test) const {
    if (test.num_transactions() == 0) return 0.0;
    std::size_t correct = 0;
    for (std::size_t t = 0; t < test.num_transactions(); ++t) {
        if (Predict(test.transaction(t)) == test.label(t)) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(test.num_transactions());
}

}  // namespace dfp
