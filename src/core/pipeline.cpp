#include "core/pipeline.hpp"

#include <unordered_set>

#include "fpm/apriori.hpp"
#include "fpm/closed_miner.hpp"
#include "fpm/eclat.hpp"
#include "fpm/fpgrowth.hpp"

namespace dfp {

std::unique_ptr<Miner> MakeMiner(MinerKind kind) {
    switch (kind) {
        case MinerKind::kClosed: return std::make_unique<ClosedMiner>();
        case MinerKind::kFpGrowth: return std::make_unique<FpGrowthMiner>();
        case MinerKind::kApriori: return std::make_unique<AprioriMiner>();
        case MinerKind::kEclat: return std::make_unique<EclatMiner>();
    }
    return nullptr;
}

namespace {

// Hash of a sorted itemset for candidate dedup across class partitions.
struct ItemsetHash {
    std::size_t operator()(const Itemset& items) const {
        std::size_t h = 1469598103934665603ull;
        for (ItemId i : items) {
            h ^= i;
            h *= 1099511628211ull;
        }
        return h;
    }
};

}  // namespace

Result<std::vector<Pattern>> PatternClassifierPipeline::MineCandidates(
    const TransactionDatabase& train) const {
    const std::unique_ptr<Miner> miner = MakeMiner(config_.miner_kind);
    MinerConfig mine_config = config_.miner;
    // Single items are always part of the feature space I ∪ F; keeping them as
    // pattern candidates would only duplicate coordinates.
    mine_config.include_singletons = false;

    std::vector<Pattern> pooled;
    std::unordered_set<Itemset, ItemsetHash> seen;
    auto pool = [&pooled, &seen](std::vector<Pattern>&& mined) {
        for (Pattern& p : mined) {
            if (seen.insert(p.items).second) pooled.push_back(std::move(p));
        }
    };

    if (config_.per_class_mining) {
        for (ClassLabel c = 0; c < train.num_classes(); ++c) {
            TransactionDatabase partition = train.FilterByClass(c);
            if (partition.num_transactions() == 0) continue;
            auto mined = miner->Mine(partition, mine_config);
            if (!mined.ok()) return mined.status();
            pool(std::move(mined).value());
        }
    } else {
        auto mined = miner->Mine(train, mine_config);
        if (!mined.ok()) return mined.status();
        pool(std::move(mined).value());
    }
    // Metadata (cover, per-class counts, support) is re-anchored on the full
    // training database regardless of which partition produced the pattern.
    AttachMetadata(train, &pooled);
    return pooled;
}

Status PatternClassifierPipeline::Train(const TransactionDatabase& train,
                                        std::unique_ptr<Classifier> learner) {
    if (learner == nullptr) {
        return Status::InvalidArgument("pipeline requires a learner");
    }
    if (train.num_transactions() == 0) {
        return Status::InvalidArgument("empty training database");
    }
    Stopwatch watch;
    auto mined = MineCandidates(train);
    if (!mined.ok()) return mined.status();
    candidates_ = std::move(mined).value();
    stats_.mine_seconds = watch.ElapsedSeconds();
    stats_.num_candidates = candidates_.size();

    watch.Reset();
    std::vector<Pattern> features;
    if (config_.feature_selection) {
        features = SelectPatterns(train, candidates_, config_.mmrfs);
    } else {
        features = candidates_;
    }
    stats_.select_seconds = watch.ElapsedSeconds();
    stats_.num_selected = features.size();

    watch.Reset();
    const std::size_t items = config_.include_single_items ? train.num_items() : 0;
    feature_space_ = FeatureSpace::Build(items, std::move(features));
    const FeatureMatrix x = feature_space_.Transform(train);
    stats_.transform_seconds = watch.ElapsedSeconds();

    watch.Reset();
    num_classes_ = train.num_classes();
    DFP_RETURN_NOT_OK(learner->Train(x, train.labels(), num_classes_));
    stats_.learn_seconds = watch.ElapsedSeconds();
    learner_ = std::move(learner);
    return Status::Ok();
}

ClassLabel PatternClassifierPipeline::Predict(
    const std::vector<ItemId>& transaction) const {
    std::vector<double> encoded(feature_space_.dim(), 0.0);
    feature_space_.Encode(transaction, encoded);
    return learner_->Predict(encoded);
}

double PatternClassifierPipeline::Accuracy(const TransactionDatabase& test) const {
    if (test.num_transactions() == 0) return 0.0;
    std::size_t correct = 0;
    for (std::size_t t = 0; t < test.num_transactions(); ++t) {
        if (Predict(test.transaction(t)) == test.label(t)) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(test.num_transactions());
}

}  // namespace dfp
