#include "core/pipeline.hpp"

#include <unordered_set>

#include "common/logging.hpp"
#include "common/string_util.hpp"
#include "fpm/apriori.hpp"
#include "fpm/closed_miner.hpp"
#include "fpm/eclat.hpp"
#include "fpm/fpgrowth.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dfp {

std::unique_ptr<Miner> MakeMiner(MinerKind kind) {
    switch (kind) {
        case MinerKind::kClosed: return std::make_unique<ClosedMiner>();
        case MinerKind::kFpGrowth: return std::make_unique<FpGrowthMiner>();
        case MinerKind::kApriori: return std::make_unique<AprioriMiner>();
        case MinerKind::kEclat: return std::make_unique<EclatMiner>();
    }
    return nullptr;
}

namespace {

// Hash of a sorted itemset for candidate dedup across class partitions.
struct ItemsetHash {
    std::size_t operator()(const Itemset& items) const {
        std::size_t h = 1469598103934665603ull;
        for (ItemId i : items) {
            h ^= i;
            h *= 1099511628211ull;
        }
        return h;
    }
};

// Mirrors a finished run's stats into the registry (the struct stays the
// caller-facing façade; the registry carries the same numbers into reports).
void PublishPipelineStats(const PipelineStats& stats) {
    auto& registry = obs::Registry::Get();
    registry.GetGauge("dfp.core.pipeline.num_candidates")
        .Set(static_cast<double>(stats.num_candidates));
    registry.GetGauge("dfp.core.pipeline.num_selected")
        .Set(static_cast<double>(stats.num_selected));
    registry.GetGauge("dfp.core.pipeline.mine_seconds").Set(stats.mine_seconds);
    registry.GetGauge("dfp.core.pipeline.select_seconds")
        .Set(stats.select_seconds);
    registry.GetGauge("dfp.core.pipeline.transform_seconds")
        .Set(stats.transform_seconds);
    registry.GetGauge("dfp.core.pipeline.learn_seconds").Set(stats.learn_seconds);
    registry.GetCounter("dfp.core.pipeline.train_runs").Inc();
}

}  // namespace

Result<std::vector<Pattern>> PatternClassifierPipeline::MineCandidates(
    const TransactionDatabase& train) const {
    const std::unique_ptr<Miner> miner = MakeMiner(config_.miner_kind);
    MinerConfig mine_config = config_.miner;
    // Single items are always part of the feature space I ∪ F; keeping them as
    // pattern candidates would only duplicate coordinates.
    mine_config.include_singletons = false;

    std::vector<std::vector<Pattern>> partitions;
    if (config_.per_class_mining) {
        for (ClassLabel c = 0; c < train.num_classes(); ++c) {
            TransactionDatabase partition = train.FilterByClass(c);
            if (partition.num_transactions() == 0) continue;
            obs::Span span(
                StrFormat("mine.class_%u", static_cast<unsigned>(c)));
            auto mined = miner->Mine(partition, mine_config);
            if (!mined.ok()) return mined.status();
            span.Annotate("patterns", static_cast<double>(mined->size()));
            partitions.push_back(std::move(mined).value());
        }
    } else {
        obs::Span span("mine.all");
        auto mined = miner->Mine(train, mine_config);
        if (!mined.ok()) return mined.status();
        span.Annotate("patterns", static_cast<double>(mined->size()));
        partitions.push_back(std::move(mined).value());
    }

    // Pool the per-class results, dropping itemsets already seen in an earlier
    // partition, then re-anchor metadata (cover, per-class counts, support) on
    // the full training database.
    obs::Span pool_span("pool_dedup");
    std::vector<Pattern> pooled;
    std::unordered_set<Itemset, ItemsetHash> seen;
    for (auto& mined : partitions) {
        for (Pattern& p : mined) {
            if (seen.insert(p.items).second) pooled.push_back(std::move(p));
        }
    }
    AttachMetadata(train, &pooled);
    pool_span.Annotate("pooled", static_cast<double>(pooled.size()));
    return pooled;
}

Status PatternClassifierPipeline::Train(const TransactionDatabase& train,
                                        std::unique_ptr<Classifier> learner) {
    if (learner == nullptr) {
        return Status::InvalidArgument("pipeline requires a learner");
    }
    if (train.num_transactions() == 0) {
        return Status::InvalidArgument("empty training database");
    }
    obs::Span train_span("train");

    {
        obs::Span mine_span("mine");
        auto mined = MineCandidates(train);
        if (!mined.ok()) return mined.status();
        candidates_ = std::move(mined).value();
        mine_span.Annotate("candidates", static_cast<double>(candidates_.size()));
        stats_.mine_seconds = mine_span.ElapsedSeconds();
    }
    stats_.num_candidates = candidates_.size();

    std::vector<Pattern> features;
    {
        obs::Span select_span("mmrfs");
        if (config_.feature_selection) {
            features = SelectPatterns(train, candidates_, config_.mmrfs);
        } else {
            features = candidates_;
        }
        select_span.Annotate("selected", static_cast<double>(features.size()));
        stats_.select_seconds = select_span.ElapsedSeconds();
    }
    stats_.num_selected = features.size();

    FeatureMatrix x;
    {
        obs::Span transform_span("transform");
        const std::size_t items =
            config_.include_single_items ? train.num_items() : 0;
        feature_space_ = FeatureSpace::Build(items, std::move(features));
        x = feature_space_.Transform(train);
        transform_span.Annotate("dim", static_cast<double>(feature_space_.dim()));
        stats_.transform_seconds = transform_span.ElapsedSeconds();
    }

    {
        obs::Span learn_span("learn");
        num_classes_ = train.num_classes();
        DFP_RETURN_NOT_OK(learner->Train(x, train.labels(), num_classes_));
        stats_.learn_seconds = learn_span.ElapsedSeconds();
    }
    learner_ = std::move(learner);
    PublishPipelineStats(stats_);
    DFP_LOG_DEBUG(StrFormat(
        "pipeline: mined %zu candidates (%.3fs), selected %zu (%.3fs), "
        "dim %zu, learned in %.3fs",
        stats_.num_candidates, stats_.mine_seconds, stats_.num_selected,
        stats_.select_seconds, feature_space_.dim(), stats_.learn_seconds));
    return Status::Ok();
}

ClassLabel PatternClassifierPipeline::Predict(
    const std::vector<ItemId>& transaction) const {
    std::vector<double> encoded(feature_space_.dim(), 0.0);
    feature_space_.Encode(transaction, encoded);
    return learner_->Predict(encoded);
}

double PatternClassifierPipeline::Accuracy(const TransactionDatabase& test) const {
    if (test.num_transactions() == 0) return 0.0;
    std::size_t correct = 0;
    for (std::size_t t = 0; t < test.num_transactions(); ++t) {
        if (Predict(test.transaction(t)) == test.label(t)) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(test.num_transactions());
}

}  // namespace dfp
