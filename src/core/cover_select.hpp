// Cover-based MMR feature selection, shared by the sequence and graph
// pipelines.
//
// Works on any pattern language: given each candidate's cover (the rows it
// matches) and relevance, greedily selects by marginal gain
//     g(α) = S(α) − max_{β selected} Jaccard(cover α, cover β)·min(S(α),S(β))
// — Eq. 9's redundancy applied verbatim — stopping when no candidate has
// positive marginal gain or the feature budget is reached.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bitvector.hpp"

namespace dfp {

/// Returns indices of the selected candidates, in selection order.
std::vector<std::size_t> GreedyMmrSelect(const std::vector<BitVector>& covers,
                                         const std::vector<double>& relevance,
                                         std::size_t max_features);

}  // namespace dfp
