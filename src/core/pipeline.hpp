// End-to-end frequent-pattern-based classification (Section 3's three steps:
// feature generation → feature selection → model learning).
#pragma once

#include <memory>
#include <vector>

#include "common/status.hpp"
#include "core/feature_space.hpp"
#include "core/mmrfs.hpp"
#include "data/transaction_db.hpp"
#include "fpm/miner.hpp"
#include "ml/classifier.hpp"

namespace dfp {

/// Which miner generates the feature candidates.
enum class MinerKind { kClosed, kFpGrowth, kApriori, kEclat };

std::unique_ptr<Miner> MakeMiner(MinerKind kind);

struct PipelineConfig {
    /// Mining parameters (min_sup, budget, ...).
    MinerConfig miner;
    MinerKind miner_kind = MinerKind::kClosed;
    /// Mine each class partition separately (the paper's feature-generation
    /// step) and pool the results; otherwise mine the whole database once.
    bool per_class_mining = true;
    /// Run MMRFS (Pat_FS). When false all candidates become features (Pat_All).
    bool feature_selection = true;
    MmrfsConfig mmrfs;
    /// Include the single items I in the feature space (the paper always does).
    bool include_single_items = true;
};

/// Timing and size diagnostics of one training run.
///
/// Thin façade over the observability registry: `Train` fills these fields
/// from its `obs::Span` phase timings and mirrors them into
/// `dfp.core.pipeline.*` gauges, so run reports (obs/report.hpp) and this
/// struct always agree. Enable `obs::EnableTracing(true)` before `Train` to
/// additionally capture the nested span tree
/// (train → mine[per-class] → pool_dedup → mmrfs → transform → learn).
struct PipelineStats {
    std::size_t num_candidates = 0;  ///< |F| after per-class pooling + dedup
    std::size_t num_selected = 0;    ///< |Fs|
    double mine_seconds = 0.0;
    double select_seconds = 0.0;
    double transform_seconds = 0.0;
    double learn_seconds = 0.0;
};

/// Trains "classifier on I ∪ Fs" and predicts on raw transactions.
class PatternClassifierPipeline {
  public:
    explicit PatternClassifierPipeline(PipelineConfig config)
        : config_(std::move(config)) {}

    /// Mines, selects, transforms and trains. The pipeline takes ownership of
    /// the learner. Fails (propagating miner/learner status) without partial
    /// state on error.
    Status Train(const TransactionDatabase& train,
                 std::unique_ptr<Classifier> learner);

    /// Predicts the class of a raw transaction (sorted item list).
    ClassLabel Predict(const std::vector<ItemId>& transaction) const;

    /// Accuracy over a held-out database.
    double Accuracy(const TransactionDatabase& test) const;

    const PipelineStats& stats() const { return stats_; }
    const FeatureSpace& feature_space() const { return feature_space_; }
    const std::vector<Pattern>& candidates() const { return candidates_; }
    const Classifier* learner() const { return learner_.get(); }

    /// Mines and pools candidates exactly as Train does, without training —
    /// for benches that inspect the candidate set.
    Result<std::vector<Pattern>> MineCandidates(
        const TransactionDatabase& train) const;

  private:
    PipelineConfig config_;
    PipelineStats stats_;
    FeatureSpace feature_space_;
    std::vector<Pattern> candidates_;
    std::unique_ptr<Classifier> learner_;
    std::size_t num_classes_ = 0;
    std::vector<double> encode_buffer_;  // scratch for Predict
};

}  // namespace dfp
