// End-to-end frequent-pattern-based classification (Section 3's three steps:
// feature generation → feature selection → model learning).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/budget.hpp"
#include "common/status.hpp"
#include "core/feature_space.hpp"
#include "core/mmrfs.hpp"
#include "data/transaction_db.hpp"
#include "fpm/miner.hpp"
#include "ml/classifier.hpp"
#include "stats/significance.hpp"

namespace dfp {

/// Which miner generates the feature candidates.
enum class MinerKind { kClosed, kFpGrowth, kApriori, kEclat };

std::unique_ptr<Miner> MakeMiner(MinerKind kind);

struct PipelineConfig {
    /// Mining parameters (min_sup, budget, ...).
    MinerConfig miner;
    MinerKind miner_kind = MinerKind::kClosed;
    /// Mine each class partition separately (the paper's feature-generation
    /// step) and pool the results; otherwise mine the whole database once.
    bool per_class_mining = true;
    /// Run MMRFS (Pat_FS). When false all candidates become features (Pat_All).
    bool feature_selection = true;
    MmrfsConfig mmrfs;
    /// Statistical-significance filter over the candidate set, run before
    /// MMRFS (stats/significance.hpp, DESIGN.md §18). Default test = kNone:
    /// the stage is skipped and the pipeline is bit-identical to the
    /// unfiltered path. With a test enabled, candidates failing the corrected
    /// test are masked out of selection (or dropped from Pat_All when
    /// feature_selection is off), and the trained model records
    /// sig_test/alpha/correction provenance (core/model_io).
    SignificanceConfig significance;
    /// Include the single items I in the feature space (the paper always does).
    bool include_single_items = true;
    /// Worker threads for every stage (mining fan-out, MMRFS scoring, OvO
    /// SVM): Train copies this into the miner/MMRFS configs and calls
    /// learner->SetNumThreads(). Trained models and selections are identical
    /// for every thread count (DESIGN.md §11). 1 = serial (the default);
    /// 0 = hardware_concurrency.
    std::size_t num_threads = 1;
    /// Overall Train budget: one wall-clock deadline shared by mining,
    /// selection and learning; the cancel token and pattern/memory caps are
    /// merged into every stage's own budget. Default = unlimited.
    ExecutionBudget budget;
    /// How Train degrades when the mining budget fires.
    struct DegradePolicy {
        /// Escalate min_sup along the IG_ub ladder (core/minsup_strategy) and
        /// re-mine when the pattern/memory cap fires; otherwise (or once the
        /// ladder/retries are exhausted) accept the truncated candidate set.
        bool escalate_min_sup = true;
        /// Re-mines allowed after the initial attempt.
        std::size_t max_mine_retries = 3;
        /// Rungs requested from MinSupEscalationLadder.
        std::size_t ladder_rungs = 4;
    } degrade;
};

/// Timing and size diagnostics of one training run.
///
/// Thin façade over the observability registry: `Train` fills these fields
/// from its `obs::Span` phase timings and mirrors them into
/// `dfp.core.pipeline.*` gauges, so run reports (obs/report.hpp) and this
/// struct always agree. Enable `obs::EnableTracing(true)` before `Train` to
/// additionally capture the nested span tree
/// (train → mine[per-class] → pool_dedup → mmrfs → transform → learn).
struct PipelineStats {
    std::size_t num_candidates = 0;  ///< |F| after per-class pooling + dedup
    std::size_t num_selected = 0;    ///< |Fs|
    /// Candidates rejected by the significance filter (0 when disabled).
    std::size_t num_sig_rejected = 0;
    double mine_seconds = 0.0;
    double significance_seconds = 0.0;
    double select_seconds = 0.0;
    double transform_seconds = 0.0;
    double learn_seconds = 0.0;
};

/// Trains "classifier on I ∪ Fs" and predicts on raw transactions.
class PatternClassifierPipeline {
  public:
    explicit PatternClassifierPipeline(PipelineConfig config)
        : config_(std::move(config)) {}

    /// Mines, selects, transforms and trains. The pipeline takes ownership of
    /// the learner. Under config.budget, degrades gracefully instead of
    /// failing: truncated mining escalates min_sup and retries (per
    /// config.degrade), stage breaches are accepted as partial results, and
    /// budget_report() records what happened. A fired CancelToken (or a hard
    /// miner/learner error) still fails with a non-Ok Status.
    Status Train(const TransactionDatabase& train,
                 std::unique_ptr<Classifier> learner);

    /// Train with an externally mined candidate pool, skipping the mining
    /// stage: dedups the pool, re-anchors metadata (cover, per-class counts,
    /// support) on `train`, then runs the same selection → transform → learn
    /// tail as Train. Candidates need only their itemsets filled. This is the
    /// streaming entry point: stream::ContinuousTrainer feeds it patterns
    /// maintained incrementally over the sliding window (DESIGN.md §16).
    Status TrainWithCandidates(const TransactionDatabase& train,
                               std::vector<Pattern> candidates,
                               std::unique_ptr<Classifier> learner);

    /// Predicts the class of a raw transaction (sorted item list).
    ClassLabel Predict(const std::vector<ItemId>& transaction) const;

    /// Accuracy over a held-out database.
    double Accuracy(const TransactionDatabase& test) const;

    const PipelineStats& stats() const { return stats_; }
    /// How the last Train run degraded under its budget (empty when it ran
    /// to completion without breaches, escalations or retries).
    const BudgetReport& budget_report() const { return budget_report_; }
    const FeatureSpace& feature_space() const { return feature_space_; }
    const std::vector<Pattern>& candidates() const { return candidates_; }
    const Classifier* learner() const { return learner_.get(); }
    /// Key/value provenance of the last Train run, persisted into saved
    /// models (core/model_io). Empty unless the significance filter ran:
    /// sig_test, alpha, correction, sig_rejected (+ min_odds_ratio for odds).
    const std::vector<std::pair<std::string, std::string>>& provenance() const {
        return provenance_;
    }

    /// Mines and pools candidates exactly as Train does, without training —
    /// for benches that inspect the candidate set. Strict semantics: a
    /// budget breach becomes Cancelled / ResourceExhausted.
    Result<std::vector<Pattern>> MineCandidates(
        const TransactionDatabase& train) const;

  private:
    /// Budget-aware single mining attempt over all class partitions: pools,
    /// dedups and re-anchors metadata like MineCandidates, but returns the
    /// partial pool plus the first breach instead of failing.
    Result<MineOutcome<Pattern>> MineCandidatesBudgeted(
        const TransactionDatabase& train, const MinerConfig& mine_config) const;

    /// Shared selection → transform → learn tail. Consumes candidates_ (set
    /// by the caller), fills stats_/feature_space_/learner_, publishes the
    /// run's stats and finalizes budget_report_ on every exit path. `timer`
    /// carries the remaining run deadline; `busy_mark`/`wall_mark` are the
    /// ThreadPool::ProcessBusyNs()/ProcessWorkerWallNs() values at Train
    /// entry, diffed on success into the per-train
    /// dfp.parallel.train_utilization gauge.
    Status FinishTrain(const TransactionDatabase& train,
                       std::unique_ptr<Classifier> learner,
                       DeadlineTimer& timer, std::size_t resolved_threads,
                       std::size_t guard_mark, std::uint64_t busy_mark,
                       std::uint64_t wall_mark);

    /// Moves the guard events recorded since `guard_mark` into
    /// budget_report_.events (call before every return from a Train flavour).
    void FinalizeReport(std::size_t guard_mark);

    PipelineConfig config_;
    PipelineStats stats_;
    BudgetReport budget_report_;
    std::vector<std::pair<std::string, std::string>> provenance_;
    FeatureSpace feature_space_;
    std::vector<Pattern> candidates_;
    std::unique_ptr<Classifier> learner_;
    std::size_t num_classes_ = 0;
    mutable std::vector<double> encode_buffer_;  // scratch for Predict
};

}  // namespace dfp
