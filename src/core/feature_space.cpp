#include "core/feature_space.hpp"

#include <algorithm>

namespace dfp {

FeatureSpace FeatureSpace::Build(std::size_t num_items,
                                 std::vector<Pattern> patterns) {
    FeatureSpace fs;
    fs.num_items_ = num_items;
    patterns.erase(std::remove_if(patterns.begin(), patterns.end(),
                                  [](const Pattern& p) { return p.length() <= 1; }),
                   patterns.end());
    fs.patterns_ = std::move(patterns);
    return fs;
}

FeatureSpace FeatureSpace::ItemsOnly(std::size_t num_items) {
    FeatureSpace fs;
    fs.num_items_ = num_items;
    return fs;
}

void FeatureSpace::Encode(const std::vector<ItemId>& transaction,
                          std::span<double> out) const {
    std::fill(out.begin(), out.end(), 0.0);
    for (ItemId i : transaction) {
        if (i < num_items_) out[i] = 1.0;
    }
    for (std::size_t p = 0; p < patterns_.size(); ++p) {
        const Itemset& items = patterns_[p].items;
        if (std::includes(transaction.begin(), transaction.end(), items.begin(),
                          items.end())) {
            out[num_items_ + p] = 1.0;
        }
    }
}

FeatureMatrix FeatureSpace::Transform(const TransactionDatabase& db) const {
    FeatureMatrix x(db.num_transactions(), dim());
    for (std::size_t t = 0; t < db.num_transactions(); ++t) {
        Encode(db.transaction(t), x.MutableRow(t));
    }
    return x;
}

}  // namespace dfp
