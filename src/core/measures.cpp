#include "core/measures.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "common/math_util.hpp"

namespace dfp {

FeatureStats StatsOfCover(const TransactionDatabase& db, const BitVector& cover) {
    FeatureStats s;
    s.n = db.num_transactions();
    s.support = cover.Count();
    s.class_totals = db.ClassCounts();
    s.class_support = db.ClassCountsOf(cover);
    return s;
}

FeatureStats StatsOfPattern(const TransactionDatabase& db, const Pattern& pattern) {
    assert(pattern.cover.size() == db.num_transactions() &&
           "pattern metadata not attached; call AttachMetadata first");
    FeatureStats s;
    s.n = db.num_transactions();
    s.support = pattern.support;
    s.class_totals = db.ClassCounts();
    s.class_support = pattern.class_counts;
    return s;
}

stats::Table2x2 OneVsRestTable(const FeatureStats& fs, ClassLabel c) {
    const std::size_t in_class =
        c < fs.class_totals.size() ? fs.class_totals[c] : 0;
    const std::size_t hit =
        c < fs.class_support.size() ? fs.class_support[c] : 0;
    stats::Table2x2 t;
    t.a = hit;
    t.b = fs.support - hit;
    t.c = in_class - hit;
    t.d = (fs.n - fs.support) - t.c;
    return t;
}

double ClassEntropy(const FeatureStats& stats) {
    return EntropyCounts(stats.class_totals);
}

double InformationGain(const FeatureStats& stats) {
    if (stats.n == 0) return 0.0;
    const double n = static_cast<double>(stats.n);
    const double n1 = static_cast<double>(stats.support);
    const double n0 = n - n1;

    std::vector<std::size_t> c0(stats.class_totals.size());
    for (std::size_t c = 0; c < c0.size(); ++c) {
        c0[c] = stats.class_totals[c] - stats.class_support[c];
    }
    const double h_cond = (n1 / n) * EntropyCounts(stats.class_support) +
                          (n0 / n) * EntropyCounts(c0);
    const double ig = ClassEntropy(stats) - h_cond;
    return ig < 0.0 ? 0.0 : ig;  // clamp away negative rounding noise
}

double FisherScore(const FeatureStats& stats) {
    if (stats.n == 0) return 0.0;
    const double mu = stats.theta();
    double numerator = 0.0;
    double denominator = 0.0;
    for (std::size_t c = 0; c < stats.class_totals.size(); ++c) {
        const double nc = static_cast<double>(stats.class_totals[c]);
        if (nc == 0.0) continue;
        const double mu_c = static_cast<double>(stats.class_support[c]) / nc;
        numerator += nc * (mu_c - mu) * (mu_c - mu);
        // Population variance of a Bernoulli feature within class c.
        denominator += nc * mu_c * (1.0 - mu_c);
    }
    if (denominator <= 0.0) {
        return numerator <= 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
    }
    return numerator / denominator;
}

double GiniGain(const FeatureStats& stats) {
    if (stats.n == 0) return 0.0;
    auto gini = [](const std::vector<double>& counts) {
        double total = 0.0;
        for (double c : counts) total += c;
        if (total <= 0.0) return 0.0;
        double g = 1.0;
        for (double c : counts) g -= (c / total) * (c / total);
        return g;
    };
    const std::size_t m = stats.class_totals.size();
    std::vector<double> all(m);
    std::vector<double> on(m);
    std::vector<double> off(m);
    for (std::size_t c = 0; c < m; ++c) {
        all[c] = static_cast<double>(stats.class_totals[c]);
        on[c] = static_cast<double>(stats.class_support[c]);
        off[c] = all[c] - on[c];
    }
    const double n = static_cast<double>(stats.n);
    const double n1 = static_cast<double>(stats.support);
    const double split = (n1 / n) * gini(on) + ((n - n1) / n) * gini(off);
    const double gain = gini(all) - split;
    return gain < 0.0 ? 0.0 : gain;
}

const char* RelevanceMeasureName(RelevanceMeasure m) {
    switch (m) {
        case RelevanceMeasure::kInfoGain: return "info-gain";
        case RelevanceMeasure::kFisher: return "fisher";
        case RelevanceMeasure::kGini: return "gini";
    }
    return "?";
}

double Relevance(RelevanceMeasure measure, const FeatureStats& stats) {
    switch (measure) {
        case RelevanceMeasure::kInfoGain: return InformationGain(stats);
        case RelevanceMeasure::kFisher: return FisherScore(stats);
        case RelevanceMeasure::kGini: return GiniGain(stats);
    }
    return 0.0;
}

double PatternRelevance(RelevanceMeasure measure, const TransactionDatabase& db,
                        const Pattern& pattern) {
    return Relevance(measure, StatsOfPattern(db, pattern));
}

}  // namespace dfp
