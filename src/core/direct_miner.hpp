// Direct discriminative pattern mining (branch-and-bound top-k search).
//
// The paper's framework is two-step: enumerate frequent patterns, then select
// discriminative ones. Its follow-up line of work (DDPMine, Cheng et al.
// ICDE'08) integrates the two: search the itemset lattice directly for the
// top-k highest-information-gain patterns, pruning any branch whose best
// achievable IG cannot beat the current k-th best. The pruning bound is the
// natural sharpening of this paper's Section 3.1.2 analysis: a superset of α
// covers a subset of cover(α), and among all sub-covers the most informative
// are "all class-c rows of cover(α)" — so
//     IG(β) ≤ max_c IG(feature covering exactly the class-c rows of cover(α))
// for every β ⊇ α.
#pragma once

#include "common/status.hpp"
#include "core/measures.hpp"
#include "data/transaction_db.hpp"
#include "fpm/itemset.hpp"
#include "fpm/miner.hpp"

namespace dfp {

struct DirectMinerConfig {
    /// Number of top patterns to return.
    std::size_t top_k = 50;
    /// Support floor (patterns below it are never considered), plus length and
    /// exploration-budget limits. min_sup prunes exactly as in the paper: the
    /// IG of any pattern below θ* is bounded by IG_ub(θ*).
    MinerConfig miner;
    /// Nodes explored before giving up with ResourceExhausted.
    std::size_t max_nodes = 5'000'000;
};

struct DirectMinerStats {
    std::size_t nodes_explored = 0;
    std::size_t nodes_pruned_bound = 0;    ///< cut by the IG upper bound
    std::size_t nodes_pruned_support = 0;  ///< cut by min_sup
};

/// Mines the top-k patterns by information gain directly. Returned patterns
/// have metadata attached and are sorted by descending IG.
Result<std::vector<Pattern>> MineTopKDiscriminative(
    const TransactionDatabase& db, const DirectMinerConfig& config,
    DirectMinerStats* stats = nullptr);

/// The branch-and-bound bound: best achievable IG of any pattern whose cover
/// is a subset of `cover` (exposed for tests).
double SubCoverIgBound(const TransactionDatabase& db, const BitVector& cover,
                       std::size_t min_sup);

}  // namespace dfp
