// The min_sup setting strategy of Section 3.2.
//
// Instead of guessing a support threshold, the user picks a discriminative-
// power threshold (information gain IG0 or Fisher score F0, for which mature
// feature-selection guidance exists) and the strategy maps it to the largest
// support threshold θ* whose theoretical upper bound stays below it:
//     θ* = argmax_θ { IG_ub(θ) ≤ IG0 }          (Eq. 8)
// Every pattern with support ≤ θ* would be filtered by the measure threshold
// anyway (IG(θ) ≤ IG_ub(θ) ≤ IG_ub(θ*) ≤ IG0), so mining with min_sup = θ*
// provably loses no feature candidate while pruning the search space.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace dfp {

/// Output of the strategy.
struct MinSupRecommendation {
    /// θ* as a relative support in [0, 1].
    double theta_star = 0.0;
    /// ceil(θ* · n), clamped to ≥ 1 — ready to use as MinerConfig::min_sup_abs.
    std::size_t min_sup_abs = 1;
    /// The bound value at θ* (≤ the requested threshold by construction).
    double bound_at_theta_star = 0.0;
};

/// Maps an information-gain threshold to θ*. `priors` is the training class
/// distribution; `n` the number of training transactions. The bound used is
/// max over classes of the one-vs-rest IG bound, which is monotone increasing
/// on the searched interval [0, min_c min(p_c, 1−p_c)].
MinSupRecommendation RecommendMinSup(double ig0, const std::vector<double>& priors,
                                     std::size_t n);

/// Same strategy driven by a Fisher-score threshold (the paper notes either
/// measure works; Fr_ub is also monotone increasing below the smallest prior).
MinSupRecommendation RecommendMinSupFisher(double fisher0,
                                           const std::vector<double>& priors,
                                           std::size_t n);

/// Samples IG_ub(θ) (binary / one-vs-rest-max) at `points` equally spaced
/// supports — the "compute the bound as a function of θ" step of the strategy,
/// also used to print the Figure 2 curve.
std::vector<std::pair<double, double>> IgBoundCurve(
    const std::vector<double>& priors, std::size_t points);

/// Principled degradation ladder for budget-exhausted mining: starting from
/// the threshold θ_start that proved too explosive, returns up to `rungs`
/// strictly coarser thresholds climbing toward the IG bound's monotone
/// ceiling. Rung k is the largest θ whose IG_ub stays below a bound target
/// equally spaced between IG_ub(θ_start) and IG_ub(ceiling) — so each retry
/// gives up discriminative-power headroom in even steps rather than blindly
/// doubling min_sup. Each rung's min_sup_abs is guaranteed strictly greater
/// than its predecessor's (with a doubling fallback when the bound is flat),
/// and rungs that would exceed n are dropped.
std::vector<MinSupRecommendation> MinSupEscalationLadder(
    double theta_start, const std::vector<double>& priors, std::size_t n,
    std::size_t rungs = 4);

}  // namespace dfp
