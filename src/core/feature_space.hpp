// The augmented feature space B^{d'} over I ∪ Fs (Section 2).
//
// After feature selection, the training data is mapped into a binary space
// whose first d coordinates are the single items and whose remaining |Fs|
// coordinates indicate pattern containment. The same mapping is applied to
// unseen instances at prediction time.
#pragma once

#include <vector>

#include "data/transaction_db.hpp"
#include "fpm/itemset.hpp"
#include "ml/feature_matrix.hpp"

namespace dfp {

/// Immutable item+pattern → vector encoder.
class FeatureSpace {
  public:
    FeatureSpace() = default;

    /// Builds the space over `num_items` single items plus the given patterns.
    /// Patterns of length ≤ 1 are dropped (they duplicate item coordinates).
    static FeatureSpace Build(std::size_t num_items, std::vector<Pattern> patterns);

    /// Builds an items-only space (the Item_* baselines).
    static FeatureSpace ItemsOnly(std::size_t num_items);

    std::size_t num_items() const { return num_items_; }
    std::size_t num_patterns() const { return patterns_.size(); }
    /// d' = |I| + |Fs|.
    std::size_t dim() const { return num_items_ + patterns_.size(); }

    const std::vector<Pattern>& patterns() const { return patterns_; }

    /// Encodes one transaction (sorted item list) into `out` (size dim()).
    void Encode(const std::vector<ItemId>& transaction, std::span<double> out) const;

    /// Encodes a whole database into a dense matrix.
    FeatureMatrix Transform(const TransactionDatabase& db) const;

  private:
    std::size_t num_items_ = 0;
    std::vector<Pattern> patterns_;
};

}  // namespace dfp
