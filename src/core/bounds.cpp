#include "core/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_util.hpp"

namespace dfp {

namespace {

// Feasible interval of q = P(c=1 | x=1) given prior p and support θ.
struct QInterval {
    double lo;
    double hi;
};

QInterval FeasibleQ(double theta, double p) {
    return {std::max(0.0, (p - (1.0 - theta)) / theta), std::min(1.0, p / theta)};
}

// H(C|X) in bits for binary class with prior p, support θ, covered-branch
// conditional q.
double ConditionalEntropy(double theta, double p, double q) {
    const double r = (p - theta * q) / (1.0 - theta);  // P(c=1 | x=0)
    return theta * BinaryEntropy(q) + (1.0 - theta) * BinaryEntropy(Clamp(r, 0.0, 1.0));
}

}  // namespace

double IgUpperBound(double theta, double p) {
    theta = Clamp(theta, 0.0, 1.0);
    p = Clamp(p, 0.0, 1.0);
    if (p <= 0.0 || p >= 1.0) return 0.0;  // H(C) = 0: nothing to gain
    if (theta <= 0.0 || theta >= 1.0) return 0.0;
    const QInterval q = FeasibleQ(theta, p);
    // H(C|X) is concave in q, so its minimum over the feasible interval is at
    // an endpoint (the paper's q = 1 / q = p/θ cases are these endpoints).
    const double h_min =
        std::min(ConditionalEntropy(theta, p, q.lo), ConditionalEntropy(theta, p, q.hi));
    const double ig = BinaryEntropy(p) - h_min;
    return ig < 0.0 ? 0.0 : ig;
}

double FisherUpperBound(double theta, double p) {
    theta = Clamp(theta, 0.0, 1.0);
    p = Clamp(p, 0.0, 1.0);
    if (p <= 0.0 || p >= 1.0) return 0.0;
    if (theta <= 0.0) return 0.0;
    if (theta >= 1.0) return 0.0;  // constant feature: no spread
    const QInterval q = FeasibleQ(theta, p);
    // Fr = Z/(Y−Z) is increasing in Z = θ(p−q)², so maximize |p−q| over the
    // feasible endpoints (Eq. 6 is the q = 1 instance of this).
    const double dev = std::max(std::fabs(p - q.lo), std::fabs(p - q.hi));
    const double z = theta * dev * dev;
    const double y = p * (1.0 - p) * (1.0 - theta);
    if (y - z <= 0.0) {
        // A feasible q makes the within-class variance vanish: unbounded score.
        return std::numeric_limits<double>::infinity();
    }
    return z / (y - z);
}

double IgUpperBoundOneVsRest(double theta, double class_prior) {
    return IgUpperBound(theta, class_prior);
}

double IgUpperBoundMulticlass(double theta, const std::vector<double>& priors) {
    const std::size_t m = priors.size();
    if (m == 0) return 0.0;
    if (m <= 2) {
        const double p = priors.empty() ? 0.0 : priors[0];
        return IgUpperBound(theta, p);
    }
    theta = Clamp(theta, 0.0, 1.0);
    if (theta <= 0.0 || theta >= 1.0) return 0.0;
    const double h_c = Entropy(priors);

    // Classes sorted by descending prior for the greedy packings.
    std::vector<std::size_t> order(m);
    for (std::size_t i = 0; i < m; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&priors](std::size_t a, std::size_t b) { return priors[a] > priors[b]; });

    // Evaluate H(C|X) at the vertex where classes are packed fully into the
    // covered branch in `order`, with `frac` allowed to be split.
    auto vertex_entropy = [&](const std::vector<std::size_t>& pack_order) {
        std::vector<double> covered(m, 0.0);   // θ·q_i
        std::vector<double> uncovered = priors;  // (1−θ)·r_i mass
        double remaining = theta;
        for (std::size_t idx : pack_order) {
            if (remaining <= 0.0) break;
            const double take = std::min(priors[idx], remaining);
            covered[idx] = take;
            uncovered[idx] = priors[idx] - take;
            remaining -= take;
        }
        // Normalize branch masses into distributions via Entropy()'s internal
        // normalization; weight by branch probability.
        return theta * Entropy(covered) + (1.0 - theta) * Entropy(uncovered);
    };

    double h_min = vertex_entropy(order);
    // Also try promoting each class to the front of the packing, which covers
    // the "pure in class j" vertices the binary analysis corresponds to.
    for (std::size_t j = 0; j < m; ++j) {
        std::vector<std::size_t> promoted;
        promoted.push_back(j);
        for (std::size_t idx : order) {
            if (idx != j) promoted.push_back(idx);
        }
        h_min = std::min(h_min, vertex_entropy(promoted));
    }
    const double ig = h_c - h_min;
    return ig < 0.0 ? 0.0 : ig;
}

}  // namespace dfp
