#include "core/graph_pipeline.hpp"

#include <algorithm>
#include <set>

#include "core/cover_select.hpp"
#include "core/measures.hpp"
#include "ml/feature_matrix.hpp"

namespace dfp {

namespace {

// IG of a cover against the graph labels.
double CoverInformationGain(const GraphDatabase& db, const BitVector& cover) {
    FeatureStats stats;
    stats.n = db.size();
    stats.support = cover.Count();
    stats.class_totals = db.ClassCounts();
    stats.class_support.assign(db.num_classes(), 0);
    cover.ForEach([&](std::uint32_t t) { stats.class_support[db.label(t)]++; });
    return InformationGain(stats);
}

}  // namespace

Status GraphClassifierPipeline::Train(const GraphDatabase& train,
                                      std::unique_ptr<Classifier> learner) {
    if (learner == nullptr) {
        return Status::InvalidArgument("graph pipeline requires a learner");
    }
    if (train.size() == 0) {
        return Status::InvalidArgument("empty graph database");
    }
    num_vertex_labels_ = train.num_vertex_labels();

    // 1. Feature generation: frequent paths per class partition, pooled.
    std::set<PathPattern> seen;
    std::vector<PathPattern> pooled;
    auto mine_into = [&](const GraphDatabase& part) -> Status {
        auto mined = MinePaths(part, config_.miner);
        if (!mined.ok()) return mined.status();
        for (PathPattern& p : *mined) {
            if (p.length() < config_.min_pattern_edges) continue;
            if (seen.insert(p).second) pooled.push_back(std::move(p));
        }
        return Status::Ok();
    };
    if (config_.per_class_mining) {
        for (ClassLabel c = 0; c < train.num_classes(); ++c) {
            const GraphDatabase part = train.FilterByClass(c);
            if (part.size() == 0) continue;
            DFP_RETURN_NOT_OK(mine_into(part));
        }
    } else {
        DFP_RETURN_NOT_OK(mine_into(train));
    }
    num_candidates_ = pooled.size();

    // 2. Covers + relevance over the full training set, MMR selection.
    std::vector<BitVector> covers;
    std::vector<double> relevance;
    covers.reserve(pooled.size());
    for (const PathPattern& p : pooled) {
        BitVector cover(train.size());
        for (std::size_t g = 0; g < train.size(); ++g) {
            if (ContainsPath(train.graph(g), p)) cover.Set(g);
        }
        relevance.push_back(CoverInformationGain(train, cover));
        covers.push_back(std::move(cover));
    }
    const auto chosen = GreedyMmrSelect(covers, relevance, config_.max_features);
    features_.clear();
    for (std::size_t i : chosen) {
        PathPattern p = pooled[i];
        p.support = covers[i].Count();
        features_.push_back({std::move(p), relevance[i]});
    }

    // 3. Learn on vertex-label counts ∪ selected paths.
    FeatureMatrix x(train.size(), num_vertex_labels_ + features_.size());
    std::vector<double> row(x.cols());
    for (std::size_t g = 0; g < train.size(); ++g) {
        Encode(train.graph(g), &row);
        auto dst = x.MutableRow(g);
        std::copy(row.begin(), row.end(), dst.begin());
    }
    DFP_RETURN_NOT_OK(learner->Train(x, train.labels(), train.num_classes()));
    learner_ = std::move(learner);
    return Status::Ok();
}

void GraphClassifierPipeline::Encode(const LabeledGraph& graph,
                                     std::vector<double>* out) const {
    out->assign(num_vertex_labels_ + features_.size(), 0.0);
    for (std::size_t v = 0; v < graph.num_vertices(); ++v) {
        const VertexLabel vl = graph.vertex_label(v);
        if (vl < num_vertex_labels_) (*out)[vl] += 1.0;
    }
    for (std::size_t f = 0; f < features_.size(); ++f) {
        if (ContainsPath(graph, features_[f].pattern)) {
            (*out)[num_vertex_labels_ + f] = 1.0;
        }
    }
}

ClassLabel GraphClassifierPipeline::Predict(const LabeledGraph& graph) const {
    std::vector<double> encoded;
    Encode(graph, &encoded);
    return learner_->Predict(encoded);
}

double GraphClassifierPipeline::Accuracy(const GraphDatabase& test) const {
    if (test.size() == 0) return 0.0;
    std::size_t correct = 0;
    for (std::size_t g = 0; g < test.size(); ++g) {
        if (Predict(test.graph(g)) == test.label(g)) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(test.size());
}

}  // namespace dfp
