#include "exp/table_printer.hpp"

#include <algorithm>
#include <cstdio>

#include "common/string_util.hpp"

namespace dfp {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            width[c] = std::max(width[c], row[c].size());
        }
    }
    auto render = [&width](const std::vector<std::string>& cells) {
        std::string line;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            line += cells[c];
            line.append(width[c] - cells[c].size(), ' ');
            if (c + 1 < cells.size()) line += " | ";
        }
        line += "\n";
        return line;
    };
    std::string out = render(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c) {
        total += width[c] + (c + 1 < width.size() ? 3 : 0);
    }
    out.append(total, '-');
    out += "\n";
    for (const auto& row : rows_) out += render(row);
    return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatPercent(double fraction) {
    return StrFormat("%.2f", fraction * 100.0);
}

}  // namespace dfp
