#include "exp/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "core/feature_space.hpp"
#include "data/discretizer.hpp"
#include "ml/dtree/c45.hpp"
#include "ml/eval/cross_validation.hpp"
#include "ml/eval/feature_filter.hpp"
#include "ml/nb/naive_bayes.hpp"
#include "ml/svm/svm.hpp"

namespace dfp {

const char* ModelVariantName(ModelVariant v) {
    switch (v) {
        case ModelVariant::kItemAll: return "Item_All";
        case ModelVariant::kItemFs: return "Item_FS";
        case ModelVariant::kItemRbf: return "Item_RBF";
        case ModelVariant::kPatAll: return "Pat_All";
        case ModelVariant::kPatFs: return "Pat_FS";
    }
    return "?";
}

const char* LearnerKindName(LearnerKind k) {
    switch (k) {
        case LearnerKind::kSvmLinear: return "svm-linear";
        case LearnerKind::kSvmRbf: return "svm-rbf";
        case LearnerKind::kC45: return "c4.5";
        case LearnerKind::kNaiveBayes: return "naive-bayes";
    }
    return "?";
}

std::unique_ptr<Classifier> MakeLearner(LearnerKind kind, ModelVariant variant,
                                        const ExperimentConfig& config,
                                        std::size_t num_features) {
    SmoConfig smo;
    smo.c = config.svm_c;
    if (variant == ModelVariant::kItemRbf || kind == LearnerKind::kSvmRbf) {
        smo.kernel.type = KernelType::kRbf;
        smo.kernel.gamma =
            config.rbf_gamma > 0.0
                ? config.rbf_gamma
                : 1.0 / static_cast<double>(std::max<std::size_t>(num_features, 1));
        return std::make_unique<SvmClassifier>(smo);
    }
    switch (kind) {
        case LearnerKind::kSvmLinear:
        case LearnerKind::kSvmRbf:
            return std::make_unique<SvmClassifier>(smo);
        case LearnerKind::kC45:
            return std::make_unique<C45Classifier>();
        case LearnerKind::kNaiveBayes:
            return std::make_unique<NaiveBayesClassifier>();
    }
    return nullptr;
}

TransactionDatabase DatasetToTransactions(const Dataset& data) {
    const MdlDiscretizer discretizer;
    const Dataset categorical = discretizer.FitApply(data);
    auto encoder = ItemEncoder::FromSchema(categorical);
    // FitApply leaves no numeric attribute behind, so FromSchema cannot fail.
    return TransactionDatabase::FromDataset(categorical, *encoder);
}

TransactionDatabase PrepareTransactions(const SyntheticSpec& spec) {
    return DatasetToTransactions(GenerateSynthetic(spec));
}

PipelineConfig MakePipelineConfig(const ExperimentConfig& config,
                                  bool feature_selection) {
    PipelineConfig pc;
    pc.miner.min_sup_rel = config.min_sup_rel;
    pc.miner.max_pattern_len = config.max_pattern_len;
    pc.miner.max_patterns = config.mining_budget;
    pc.miner_kind = MinerKind::kClosed;
    pc.per_class_mining = true;
    pc.feature_selection = feature_selection;
    pc.mmrfs.coverage_delta = config.coverage_delta;
    pc.mmrfs.relevance = RelevanceMeasure::kInfoGain;
    return pc;
}

namespace {

// Evaluates an Item_* variant on one train/test split.
double EvaluateItemFold(const TransactionDatabase& db,
                        const std::vector<std::size_t>& train_rows,
                        const std::vector<std::size_t>& test_rows,
                        ModelVariant variant, LearnerKind learner,
                        const ExperimentConfig& config) {
    const TransactionDatabase train = db.Subset(train_rows);
    const FeatureSpace space = FeatureSpace::ItemsOnly(db.num_items());

    std::vector<std::size_t> cols;
    if (variant == ModelVariant::kItemFs) {
        const auto keep = static_cast<std::size_t>(std::ceil(
            config.item_fs_keep_fraction * static_cast<double>(db.num_items())));
        cols = TopKItems(train, RelevanceMeasure::kInfoGain,
                         std::max<std::size_t>(keep, 1));
    } else {
        cols.resize(db.num_items());
        for (std::size_t i = 0; i < cols.size(); ++i) cols[i] = i;
    }

    FeatureMatrix train_x = space.Transform(train).SelectCols(cols);
    auto model = MakeLearner(learner, variant, config, cols.size());
    if (!model->Train(train_x, train.labels(), db.num_classes()).ok()) return 0.0;

    std::size_t correct = 0;
    std::vector<double> full(space.dim(), 0.0);
    std::vector<double> projected(cols.size(), 0.0);
    for (std::size_t t : test_rows) {
        space.Encode(db.transaction(t), full);
        for (std::size_t j = 0; j < cols.size(); ++j) projected[j] = full[cols[j]];
        if (model->Predict(projected) == db.label(t)) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(test_rows.size());
}

// Evaluates a Pat_* variant on one train/test split; accumulates stats.
double EvaluatePatternFold(const TransactionDatabase& db,
                           const std::vector<std::size_t>& train_rows,
                           const std::vector<std::size_t>& test_rows,
                           ModelVariant variant, LearnerKind learner,
                           const ExperimentConfig& config, VariantOutcome* out) {
    const TransactionDatabase train = db.Subset(train_rows);
    PatternClassifierPipeline pipeline(
        MakePipelineConfig(config, variant == ModelVariant::kPatFs));
    const Status st =
        pipeline.Train(train, MakeLearner(learner, variant, config, db.num_items()));
    if (!st.ok()) {
        out->error = st.ToString();
        return 0.0;
    }
    out->mean_candidates += static_cast<double>(pipeline.stats().num_candidates);
    out->mean_selected += static_cast<double>(pipeline.stats().num_selected);
    out->mine_select_seconds +=
        pipeline.stats().mine_seconds + pipeline.stats().select_seconds;

    std::size_t correct = 0;
    for (std::size_t t : test_rows) {
        if (pipeline.Predict(db.transaction(t)) == db.label(t)) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(test_rows.size());
}

}  // namespace

VariantOutcome RunVariantCv(const TransactionDatabase& db, ModelVariant variant,
                            LearnerKind learner, const ExperimentConfig& config) {
    VariantOutcome outcome;
    Rng rng(config.seed);
    const auto folds = StratifiedFolds(db.labels(), config.folds, rng);

    double total_acc = 0.0;
    std::size_t evaluated = 0;
    for (std::size_t f = 0; f < folds.size(); ++f) {
        if (folds[f].empty()) continue;
        std::vector<std::size_t> train_rows;
        for (std::size_t g = 0; g < folds.size(); ++g) {
            if (g == f) continue;
            train_rows.insert(train_rows.end(), folds[g].begin(), folds[g].end());
        }
        double acc = 0.0;
        if (variant == ModelVariant::kPatAll || variant == ModelVariant::kPatFs) {
            acc = EvaluatePatternFold(db, train_rows, folds[f], variant, learner,
                                      config, &outcome);
            if (!outcome.error.empty()) return outcome;  // mining blew the budget
        } else {
            acc = EvaluateItemFold(db, train_rows, folds[f], variant, learner,
                                   config);
        }
        total_acc += acc;
        ++evaluated;
    }
    if (evaluated == 0) {
        outcome.error = "no non-empty folds";
        return outcome;
    }
    outcome.ok = true;
    outcome.accuracy = total_acc / static_cast<double>(evaluated);
    outcome.mean_candidates /= static_cast<double>(evaluated);
    outcome.mean_selected /= static_cast<double>(evaluated);
    return outcome;
}

}  // namespace dfp
