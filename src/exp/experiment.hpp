// Shared experiment harness for the paper's tables and figures.
//
// Wires together dataset preparation (synthetic generation → MDL
// discretization → item encoding) and the five model variants of Tables 1–2:
//   Item_All  — all single features
//   Item_FS   — IG-selected single features
//   Item_RBF  — all single features under an RBF-kernel SVM
//   Pat_All   — single features + every mined frequent (closed) pattern
//   Pat_FS    — single features + MMRFS-selected patterns
// evaluated with stratified k-fold cross validation, mining and selection
// redone inside every training fold (no test leakage).
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "data/transaction_db.hpp"
#include "ml/classifier.hpp"

namespace dfp {

enum class ModelVariant { kItemAll, kItemFs, kItemRbf, kPatAll, kPatFs };
enum class LearnerKind { kSvmLinear, kSvmRbf, kC45, kNaiveBayes };

const char* ModelVariantName(ModelVariant v);
const char* LearnerKindName(LearnerKind k);

struct ExperimentConfig {
    std::size_t folds = 10;
    std::uint64_t seed = 42;
    /// Per-class-partition relative min_sup for pattern mining.
    double min_sup_rel = 0.10;
    std::size_t max_pattern_len = 5;
    /// MMRFS database-coverage δ (small values regularize: every extra unit
    /// of required coverage admits weaker patterns).
    std::size_t coverage_delta = 2;
    /// Item_FS keeps the top fraction of items by information gain.
    double item_fs_keep_fraction = 0.5;
    double svm_c = 1.0;
    /// RBF kernel width; <= 0 means "auto": 1/num_features (LIBSVM default).
    double rbf_gamma = 0.0;
    /// Mining abort budget per fold.
    std::size_t mining_budget = 2'000'000;
};

/// One variant × learner CV outcome.
struct VariantOutcome {
    bool ok = false;
    std::string error;
    double accuracy = 0.0;
    /// Mean pattern-candidate / selected-feature counts across folds
    /// (0 for Item variants).
    double mean_candidates = 0.0;
    double mean_selected = 0.0;
    /// Total mining + selection seconds across folds.
    double mine_select_seconds = 0.0;
};

/// Builds the learner for a variant (Item_RBF forces the RBF SVM).
/// `num_features` sizes the auto RBF gamma (1/d) when config.rbf_gamma <= 0.
std::unique_ptr<Classifier> MakeLearner(LearnerKind kind, ModelVariant variant,
                                        const ExperimentConfig& config,
                                        std::size_t num_features);

/// Generates the spec'd dataset, MDL-discretizes numeric attributes and
/// encodes it as a transaction database.
TransactionDatabase PrepareTransactions(const SyntheticSpec& spec);

/// Discretizes + encodes an already-materialized dataset.
TransactionDatabase DatasetToTransactions(const Dataset& data);

/// Runs stratified k-fold CV of one variant with one learner.
VariantOutcome RunVariantCv(const TransactionDatabase& db, ModelVariant variant,
                            LearnerKind learner, const ExperimentConfig& config);

/// PipelineConfig matching `config` for the Pat_* variants.
PipelineConfig MakePipelineConfig(const ExperimentConfig& config,
                                  bool feature_selection);

}  // namespace dfp
