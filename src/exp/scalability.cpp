#include "exp/scalability.hpp"

#include <algorithm>
#include <cstdio>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/string_util.hpp"
#include "core/feature_space.hpp"
#include "core/mmrfs.hpp"
#include "exp/table_printer.hpp"
#include "fpm/closed_miner.hpp"
#include "fpm/fpgrowth.hpp"
#include "ml/dtree/c45.hpp"
#include "ml/eval/cross_validation.hpp"
#include "ml/svm/pegasos.hpp"
#include "obs/trace.hpp"

namespace dfp {

namespace {

// Trains one learner on the selected feature space and returns test accuracy.
double EvaluateLearner(Classifier* learner, const FeatureSpace& space,
                       const FeatureMatrix& train_x,
                       const std::vector<ClassLabel>& train_y,
                       const TransactionDatabase& db,
                       const std::vector<std::size_t>& test_rows,
                       std::size_t num_classes) {
    if (!learner->Train(train_x, train_y, num_classes).ok()) return 0.0;
    std::size_t correct = 0;
    std::vector<double> encoded(space.dim());
    for (std::size_t t : test_rows) {
        space.Encode(db.transaction(t), encoded);
        if (learner->Predict(encoded) == db.label(t)) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(test_rows.size());
}

}  // namespace

std::vector<ScalabilityRow> RunScalability(const TransactionDatabase& db,
                                           const ScalabilityConfig& config) {
    std::vector<ScalabilityRow> rows;

    if (config.probe_min_sup_one) {
        // The paper's min_sup = 1 row: enumerating every feature combination.
        ScalabilityRow probe;
        probe.min_sup = 1;
        MinerConfig mc;
        mc.min_sup_abs = 1;
        mc.max_patterns = config.pattern_budget;
        Stopwatch watch;
        const auto attempt = FpGrowthMiner().Mine(db, mc);
        if (attempt.ok()) {
            probe.feasible = true;
            probe.patterns = attempt->size();
            probe.time_seconds = watch.ElapsedSeconds();
            probe.note = "enumeration only (no selection/learning)";
        } else {
            probe.note = StrFormat("N/A — enumeration exceeded %zu-pattern budget",
                                   config.pattern_budget);
        }
        rows.push_back(std::move(probe));
    }

    // Stratified 80/20 split shared by all sweep points.
    Rng rng(config.seed);
    const std::size_t folds = 5;  // 4 folds train (80%), 1 fold test
    const auto fold_rows = StratifiedFolds(db.labels(), folds, rng);
    std::vector<std::size_t> train_rows;
    for (std::size_t f = 1; f < folds; ++f) {
        train_rows.insert(train_rows.end(), fold_rows[f].begin(),
                          fold_rows[f].end());
    }
    const std::vector<std::size_t>& test_rows = fold_rows[0];
    const TransactionDatabase train = db.Subset(train_rows);

    for (std::size_t min_sup : config.min_sups) {
        ScalabilityRow row;
        row.min_sup = min_sup;
        obs::Span row_span(StrFormat("scalability.min_sup_%zu", min_sup));
        double mine_seconds = 0.0;

        // 1. Closed-pattern mining over the full database (paper's #Patterns).
        std::vector<Pattern> patterns;
        {
            obs::Span mine_span("mine");
            MinerConfig mc;
            mc.min_sup_abs = min_sup;
            mc.max_pattern_len = config.max_pattern_len;
            mc.max_patterns = config.pattern_budget;
            mc.include_singletons = false;
            auto mined = ClosedMiner().Mine(db, mc);
            if (!mined.ok()) {
                row.note = mined.status().ToString();
                rows.push_back(std::move(row));
                continue;
            }
            patterns = std::move(*mined);
            AttachMetadata(db, &patterns);
            mine_span.Annotate("patterns", static_cast<double>(patterns.size()));
            mine_seconds = mine_span.ElapsedSeconds();
        }
        row.patterns = patterns.size();

        // 2. MMRFS feature selection (time column = mining + selection).
        MmrfsResult selection;
        {
            obs::Span select_span("select");
            MmrfsConfig fs;
            fs.coverage_delta = config.coverage_delta;
            fs.max_features = config.max_features;
            selection = RunMmrfs(db, patterns, fs);
            select_span.Annotate("selected",
                                 static_cast<double>(selection.selected.size()));
            row.time_seconds = mine_seconds + select_span.ElapsedSeconds();
        }
        row.selected = selection.selected.size();

        // 3. Accuracy on the held-out 20%: re-anchor the selected patterns on
        // the training split and train both learners on I ∪ Fs.
        {
            obs::Span eval_span("evaluate");
            std::vector<Pattern> selected;
            selected.reserve(selection.selected.size());
            for (std::size_t idx : selection.selected) {
                selected.push_back(patterns[idx]);
            }
            const FeatureSpace space =
                FeatureSpace::Build(db.num_items(), std::move(selected));
            const FeatureMatrix train_x = space.Transform(train);

            PegasosClassifier svm;
            row.svm_accuracy = EvaluateLearner(&svm, space, train_x,
                                               train.labels(), db, test_rows,
                                               db.num_classes());
            C45Classifier c45;
            row.c45_accuracy = EvaluateLearner(&c45, space, train_x,
                                               train.labels(), db, test_rows,
                                               db.num_classes());
        }
        row.feasible = true;
        rows.push_back(std::move(row));
    }
    return rows;
}

void PrintScalability(const std::string& dataset, const TransactionDatabase& db,
                      const std::vector<ScalabilityRow>& rows) {
    std::printf("%s: %zu instances, %zu classes, %zu items\n", dataset.c_str(),
                db.num_transactions(), db.num_classes(), db.num_items());
    TablePrinter table({"min_sup", "#Patterns", "#Selected", "Time (s)",
                        "SVM (%)", "C4.5 (%)"});
    for (const auto& row : rows) {
        if (!row.feasible && row.patterns == 0) {
            table.AddRow({StrFormat("%zu", row.min_sup), "N/A", "N/A", "N/A",
                          "N/A", "N/A"});
            continue;
        }
        if (!row.feasible) continue;
        if (row.min_sup == 1 && row.svm_accuracy == 0.0) {
            table.AddRow({"1", StrFormat("%zu", row.patterns), "-",
                          StrFormat("%.3f", row.time_seconds), "-", "-"});
            continue;
        }
        table.AddRow({StrFormat("%zu", row.min_sup),
                      StrFormat("%zu", row.patterns),
                      StrFormat("%zu", row.selected),
                      StrFormat("%.3f", row.time_seconds),
                      FormatPercent(row.svm_accuracy),
                      FormatPercent(row.c45_accuracy)});
    }
    table.Print();
    for (const auto& row : rows) {
        if (!row.note.empty()) {
            std::printf("  min_sup=%zu: %s\n", row.min_sup, row.note.c_str());
        }
    }
}

}  // namespace dfp
