// Fixed-width text tables for the bench harnesses (paper-style output).
#pragma once

#include <string>
#include <vector>

namespace dfp {

/// Accumulates rows and renders an aligned, pipe-separated table.
class TablePrinter {
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void AddRow(std::vector<std::string> cells);

    std::string ToString() const;
    /// Writes ToString() to stdout.
    void Print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// "%.2f"-formatted percentage (accuracy in [0,1] → "91.14").
std::string FormatPercent(double fraction);

}  // namespace dfp
