// Shared harness for the scalability experiments (Tables 3–5).
//
// For each min_sup value: mine closed patterns over the whole database
// (global mining — the paper's thresholds exceed any class-partition size),
// run MMRFS, report pattern count and mining+selection time, then train the
// pattern classifier on a stratified 80/20 split and report SVM and C4.5
// accuracy. A min_sup = 1 row attempts full enumeration under a pattern
// budget, reproducing the paper's "cannot complete" entry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/transaction_db.hpp"

namespace dfp {

struct ScalabilityConfig {
    /// Absolute min_sup values to sweep (the paper's table rows).
    std::vector<std::size_t> min_sups;
    /// Pattern budget used both for the sweep and the min_sup=1 probe.
    std::size_t pattern_budget = 2'000'000;
    /// MMRFS database-coverage δ and feature cap (keeps learners tractable).
    std::size_t coverage_delta = 3;
    std::size_t max_features = 400;
    std::size_t max_pattern_len = 6;
    double train_fraction = 0.8;
    std::uint64_t seed = 77;
    /// Try full enumeration at min_sup = 1 first (paper row).
    bool probe_min_sup_one = true;
};

struct ScalabilityRow {
    std::size_t min_sup = 0;
    bool feasible = false;
    std::string note;         ///< set when infeasible ("budget exceeded ...")
    std::size_t patterns = 0;  ///< closed pattern count
    double time_seconds = 0.0;  ///< mining + feature selection
    double svm_accuracy = 0.0;
    double c45_accuracy = 0.0;
    std::size_t selected = 0;  ///< |Fs| after MMRFS
};

/// Runs the sweep. `db` is the full prepared database.
std::vector<ScalabilityRow> RunScalability(const TransactionDatabase& db,
                                           const ScalabilityConfig& config);

/// Prints the paper-style table.
void PrintScalability(const std::string& dataset,
                      const TransactionDatabase& db,
                      const std::vector<ScalabilityRow>& rows);

}  // namespace dfp
