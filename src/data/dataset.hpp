// Tabular dataset representation (the paper's relational-data setting).
//
// A Dataset is a schema of categorical/numeric attributes plus a class label
// per row. Categorical cells store a value code (index into the attribute's
// value-name list); numeric cells store the raw double. The frequent-pattern
// pipeline first discretizes numeric attributes (Discretizer) and then maps
// every (attribute, value) pair to an item (ItemEncoder), exactly as in
// Section 2 of the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace dfp {

using ClassLabel = std::uint32_t;

enum class AttributeType { kCategorical, kNumeric };

/// Schema entry for one column.
struct Attribute {
    std::string name;
    AttributeType type = AttributeType::kCategorical;
    /// Value names for categorical attributes; index == value code.
    std::vector<std::string> values;

    std::size_t arity() const { return values.size(); }
};

/// Column-major table of attribute values with one class label per row.
class Dataset {
  public:
    Dataset() = default;

    /// Creates an empty dataset with the given schema and class names.
    Dataset(std::vector<Attribute> attributes, std::vector<std::string> class_names);

    std::size_t num_rows() const { return labels_.size(); }
    std::size_t num_attributes() const { return attributes_.size(); }
    std::size_t num_classes() const { return class_names_.size(); }

    const std::vector<Attribute>& attributes() const { return attributes_; }
    const Attribute& attribute(std::size_t a) const { return attributes_[a]; }
    const std::vector<std::string>& class_names() const { return class_names_; }
    const std::vector<ClassLabel>& labels() const { return labels_; }
    ClassLabel label(std::size_t row) const { return labels_[row]; }

    /// Raw cell value: value code for categorical, measurement for numeric.
    double Value(std::size_t row, std::size_t attr) const {
        return columns_[attr][row];
    }
    /// Categorical value code of a cell; attribute must be categorical.
    std::uint32_t Code(std::size_t row, std::size_t attr) const {
        return static_cast<std::uint32_t>(columns_[attr][row]);
    }

    /// Appends a row. `values` must have one entry per attribute (codes for
    /// categorical attributes). Returns InvalidArgument on arity mismatch or
    /// out-of-range code/label.
    Status AddRow(const std::vector<double>& values, ClassLabel label);

    /// Registers a value name on a categorical attribute; returns its code.
    std::uint32_t AddAttributeValue(std::size_t attr, std::string value_name);

    /// Per-class row counts.
    std::vector<std::size_t> ClassCounts() const;
    /// Per-class fractions (empty dataset → all zero).
    std::vector<double> ClassPriors() const;
    /// Label occurring most often (ties → smallest label); 0 for empty data.
    ClassLabel MajorityClass() const;

    /// Copies the selected rows (in the given order) into a new dataset that
    /// shares the schema.
    Dataset Subset(const std::vector<std::size_t>& rows) const;

    /// True if every attribute is categorical.
    bool IsFullyCategorical() const;

    /// Human-readable rendering of one cell ("red", "3.25", ...).
    std::string CellToString(std::size_t row, std::size_t attr) const;

  private:
    std::vector<Attribute> attributes_;
    std::vector<std::string> class_names_;
    std::vector<std::vector<double>> columns_;  // columns_[attr][row]
    std::vector<ClassLabel> labels_;
};

}  // namespace dfp
