#include "data/graph.hpp"

#include <algorithm>
#include <cassert>

#include "common/rng.hpp"
#include "common/string_util.hpp"

namespace dfp {

Status LabeledGraph::AddEdge(std::size_t u, std::size_t v, EdgeLabel label) {
    if (u >= num_vertices() || v >= num_vertices()) {
        return Status::InvalidArgument(
            StrFormat("edge (%zu,%zu) out of range for %zu vertices", u, v,
                      num_vertices()));
    }
    if (u == v) return Status::InvalidArgument("self-loops are not supported");
    adjacency_[u].push_back({static_cast<std::uint32_t>(v), label});
    adjacency_[v].push_back({static_cast<std::uint32_t>(u), label});
    ++num_edges_;
    return Status::Ok();
}

GraphDatabase::GraphDatabase(std::vector<LabeledGraph> graphs,
                             std::vector<ClassLabel> labels,
                             std::size_t num_vertex_labels,
                             std::size_t num_edge_labels, std::size_t num_classes)
    : graphs_(std::move(graphs)),
      labels_(std::move(labels)),
      num_vertex_labels_(num_vertex_labels),
      num_edge_labels_(num_edge_labels),
      num_classes_(num_classes) {
    assert(graphs_.size() == labels_.size());
}

std::vector<std::size_t> GraphDatabase::ClassCounts() const {
    std::vector<std::size_t> counts(num_classes_, 0);
    for (ClassLabel y : labels_) counts[y]++;
    return counts;
}

GraphDatabase GraphDatabase::FilterByClass(ClassLabel c) const {
    std::vector<std::size_t> rows;
    for (std::size_t i = 0; i < size(); ++i) {
        if (labels_[i] == c) rows.push_back(i);
    }
    return Subset(rows);
}

GraphDatabase GraphDatabase::Subset(const std::vector<std::size_t>& rows) const {
    std::vector<LabeledGraph> graphs;
    std::vector<ClassLabel> labels;
    graphs.reserve(rows.size());
    for (std::size_t r : rows) {
        graphs.push_back(graphs_[r]);
        labels.push_back(labels_[r]);
    }
    return GraphDatabase(std::move(graphs), std::move(labels), num_vertex_labels_,
                         num_edge_labels_, num_classes_);
}

GraphDatabase GenerateGraphs(const GraphSpec& spec) {
    Rng rng(spec.seed);

    // Per-class path motifs: alternating vertex/edge labels, v0 e0 v1 ... vk.
    struct Motif {
        std::vector<VertexLabel> vertices;
        std::vector<EdgeLabel> edges;
    };
    std::vector<std::vector<Motif>> motifs(spec.classes);
    for (std::size_t c = 0; c < spec.classes; ++c) {
        for (std::size_t m = 0; m < spec.motifs_per_class; ++m) {
            Motif motif;
            for (std::size_t i = 0; i <= spec.motif_edges; ++i) {
                motif.vertices.push_back(
                    static_cast<VertexLabel>(rng.UniformInt(spec.vertex_labels)));
            }
            for (std::size_t i = 0; i < spec.motif_edges; ++i) {
                motif.edges.push_back(
                    static_cast<EdgeLabel>(rng.UniformInt(spec.edge_labels)));
            }
            motifs[c].push_back(std::move(motif));
        }
    }

    std::vector<LabeledGraph> graphs;
    std::vector<ClassLabel> labels;
    for (std::size_t r = 0; r < spec.rows; ++r) {
        const auto c = static_cast<ClassLabel>(rng.UniformInt(spec.classes));
        const std::size_t n = static_cast<std::size_t>(
            rng.UniformInt(static_cast<std::int64_t>(spec.vertices_min),
                           static_cast<std::int64_t>(spec.vertices_max)));
        std::vector<VertexLabel> vertex_labels(n);
        for (auto& vl : vertex_labels) {
            vl = static_cast<VertexLabel>(rng.UniformInt(spec.vertex_labels));
        }
        LabeledGraph g(std::move(vertex_labels));
        // Random spanning tree keeps the backbone connected.
        for (std::size_t v = 1; v < n; ++v) {
            const auto u = static_cast<std::size_t>(rng.UniformInt(v));
            (void)g.AddEdge(u, v,
                            static_cast<EdgeLabel>(rng.UniformInt(spec.edge_labels)));
        }
        // Extra density.
        for (std::size_t u = 0; u < n; ++u) {
            for (std::size_t v = u + 1; v < n; ++v) {
                if (rng.Bernoulli(spec.extra_edge_prob / static_cast<double>(n))) {
                    (void)g.AddEdge(
                        u, v,
                        static_cast<EdgeLabel>(rng.UniformInt(spec.edge_labels)));
                }
            }
        }
        // Plant this class's motifs: walk a random simple path, overwrite its
        // vertex labels with the motif's, and add the motif's edges along it
        // (the backbone is rebuilt once with the relabeled vertices).
        std::vector<VertexLabel> relabel(g.num_vertices());
        for (std::size_t v = 0; v < g.num_vertices(); ++v) {
            relabel[v] = g.vertex_label(v);
        }
        std::vector<std::pair<std::pair<std::size_t, std::size_t>, EdgeLabel>>
            extra_edges;
        for (const auto& motif : motifs[c]) {
            if (!rng.Bernoulli(spec.carrier_prob)) continue;
            // Random simple walk of motif length; add missing edges with the
            // motif's edge labels and overwrite vertex labels on the walk.
            std::vector<std::size_t> walk;
            std::size_t current =
                static_cast<std::size_t>(rng.UniformInt(g.num_vertices()));
            walk.push_back(current);
            for (std::size_t step = 0; step < motif.edges.size(); ++step) {
                std::size_t next = current;
                for (int tries = 0; tries < 8; ++tries) {
                    const auto candidate =
                        static_cast<std::size_t>(rng.UniformInt(g.num_vertices()));
                    if (std::find(walk.begin(), walk.end(), candidate) ==
                        walk.end()) {
                        next = candidate;
                        break;
                    }
                }
                if (next == current) break;  // graph too small for the walk
                extra_edges.push_back({{current, next}, motif.edges[step]});
                walk.push_back(next);
                current = next;
            }
            for (std::size_t i = 0; i < walk.size() && i < motif.vertices.size();
                 ++i) {
                relabel[walk[i]] = motif.vertices[i];
            }
        }
        LabeledGraph planted(std::move(relabel));
        for (std::size_t v = 0; v < g.num_vertices(); ++v) {
            for (const auto& e : g.neighbours(v)) {
                if (e.to > v) (void)planted.AddEdge(v, e.to, e.label);
            }
        }
        for (const auto& [uv, el] : extra_edges) {
            (void)planted.AddEdge(uv.first, uv.second, el);
        }

        ClassLabel y = c;
        if (rng.Bernoulli(spec.label_noise)) {
            y = static_cast<ClassLabel>(rng.UniformInt(spec.classes));
        }
        graphs.push_back(std::move(planted));
        labels.push_back(y);
    }
    return GraphDatabase(std::move(graphs), std::move(labels), spec.vertex_labels,
                         spec.edge_labels, spec.classes);
}

}  // namespace dfp
