#include "data/dataset.hpp"

#include <algorithm>

#include "common/string_util.hpp"

namespace dfp {

Dataset::Dataset(std::vector<Attribute> attributes, std::vector<std::string> class_names)
    : attributes_(std::move(attributes)),
      class_names_(std::move(class_names)),
      columns_(attributes_.size()) {}

Status Dataset::AddRow(const std::vector<double>& values, ClassLabel label) {
    if (values.size() != attributes_.size()) {
        return Status::InvalidArgument(StrFormat(
            "row has %zu values, schema has %zu attributes", values.size(),
            attributes_.size()));
    }
    if (label >= class_names_.size()) {
        return Status::InvalidArgument(
            StrFormat("label %u out of range (%zu classes)", label, class_names_.size()));
    }
    for (std::size_t a = 0; a < attributes_.size(); ++a) {
        if (attributes_[a].type == AttributeType::kCategorical) {
            const auto code = static_cast<std::size_t>(values[a]);
            if (values[a] < 0 || code >= attributes_[a].arity()) {
                return Status::InvalidArgument(StrFormat(
                    "value code %.0f out of range for attribute '%s' (arity %zu)",
                    values[a], attributes_[a].name.c_str(), attributes_[a].arity()));
            }
        }
    }
    for (std::size_t a = 0; a < attributes_.size(); ++a) {
        columns_[a].push_back(values[a]);
    }
    labels_.push_back(label);
    return Status::Ok();
}

std::uint32_t Dataset::AddAttributeValue(std::size_t attr, std::string value_name) {
    auto& vals = attributes_[attr].values;
    const auto it = std::find(vals.begin(), vals.end(), value_name);
    if (it != vals.end()) return static_cast<std::uint32_t>(it - vals.begin());
    vals.push_back(std::move(value_name));
    return static_cast<std::uint32_t>(vals.size() - 1);
}

std::vector<std::size_t> Dataset::ClassCounts() const {
    std::vector<std::size_t> counts(num_classes(), 0);
    for (ClassLabel y : labels_) counts[y]++;
    return counts;
}

std::vector<double> Dataset::ClassPriors() const {
    std::vector<double> priors(num_classes(), 0.0);
    if (labels_.empty()) return priors;
    const auto counts = ClassCounts();
    for (std::size_t c = 0; c < priors.size(); ++c) {
        priors[c] = static_cast<double>(counts[c]) / static_cast<double>(labels_.size());
    }
    return priors;
}

ClassLabel Dataset::MajorityClass() const {
    const auto counts = ClassCounts();
    std::size_t best = 0;
    for (std::size_t c = 1; c < counts.size(); ++c) {
        if (counts[c] > counts[best]) best = c;
    }
    return static_cast<ClassLabel>(best);
}

Dataset Dataset::Subset(const std::vector<std::size_t>& rows) const {
    Dataset out(attributes_, class_names_);
    std::vector<double> row_values(attributes_.size());
    for (std::size_t r : rows) {
        for (std::size_t a = 0; a < attributes_.size(); ++a) {
            row_values[a] = columns_[a][r];
        }
        // Values came from this dataset, so re-validation cannot fail.
        (void)out.AddRow(row_values, labels_[r]);
    }
    return out;
}

bool Dataset::IsFullyCategorical() const {
    return std::all_of(attributes_.begin(), attributes_.end(), [](const Attribute& a) {
        return a.type == AttributeType::kCategorical;
    });
}

std::string Dataset::CellToString(std::size_t row, std::size_t attr) const {
    const Attribute& a = attributes_[attr];
    if (a.type == AttributeType::kCategorical) {
        return a.values[Code(row, attr)];
    }
    return StrFormat("%g", Value(row, attr));
}

}  // namespace dfp
