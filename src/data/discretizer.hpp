// Discretization of numeric attributes into categorical bins.
//
// The paper states "continuous attributes are discretized first" before the
// (attribute, value) → item mapping. We provide the three standard schemes:
//  * EqualWidth     — unsupervised, fixed number of equal-width intervals.
//  * EqualFrequency — unsupervised, quantile cut points.
//  * MDL (Fayyad–Irani 1993) — supervised recursive entropy minimization with
//    the MDL stopping criterion; this is what Weka applies by default and the
//    usual choice for associative classification preprocessing.
//
// A Discretizer is fit on training data only and then applied to train and
// test alike (cut points are part of the learned model, so no test leakage).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "data/dataset.hpp"

namespace dfp {

/// Per-attribute discretization model: ascending cut points. A value v maps to
/// bin i where cuts[i-1] <= v < cuts[i] (bin 0 is (-inf, cuts[0])).
struct DiscretizationModel {
    /// cut_points[attr] is empty for attributes left untouched (categorical).
    std::vector<std::vector<double>> cut_points;

    /// Bin index for a raw value of attribute `attr`.
    std::uint32_t BinOf(std::size_t attr, double value) const;
};

/// Strategy interface: computes cut points for one numeric column.
class Discretizer {
  public:
    virtual ~Discretizer() = default;

    /// Human-readable scheme name ("mdl", "equal-width:5", ...).
    virtual std::string Name() const = 0;

    /// Computes ascending cut points for one column. `values` and `labels`
    /// are parallel; unsupervised schemes ignore `labels`.
    virtual std::vector<double> FindCutPoints(
        const std::vector<double>& values,
        const std::vector<ClassLabel>& labels,
        std::size_t num_classes) const = 0;

    /// Fits a model over all numeric attributes of `data`.
    DiscretizationModel Fit(const Dataset& data) const;

    /// Applies a fitted model: numeric attributes become categorical bins
    /// named "[a,b)"-style; categorical attributes pass through.
    static Dataset Apply(const DiscretizationModel& model, const Dataset& data);

    /// Fit + Apply on the same data (convenience for unsupervised pipelines).
    Dataset FitApply(const Dataset& data) const;
};

/// Fixed number of equal-width intervals over [min, max].
class EqualWidthDiscretizer : public Discretizer {
  public:
    explicit EqualWidthDiscretizer(std::size_t bins) : bins_(bins) {}
    std::string Name() const override;
    std::vector<double> FindCutPoints(const std::vector<double>& values,
                                      const std::vector<ClassLabel>& labels,
                                      std::size_t num_classes) const override;

  private:
    std::size_t bins_;
};

/// Quantile-based bins with (approximately) equal populations.
class EqualFrequencyDiscretizer : public Discretizer {
  public:
    explicit EqualFrequencyDiscretizer(std::size_t bins) : bins_(bins) {}
    std::string Name() const override;
    std::vector<double> FindCutPoints(const std::vector<double>& values,
                                      const std::vector<ClassLabel>& labels,
                                      std::size_t num_classes) const override;

  private:
    std::size_t bins_;
};

/// Fayyad–Irani recursive minimal-entropy partitioning with the MDL stopping
/// criterion. Supervised; may return zero cut points (attribute collapses to
/// a single bin) when no split passes the MDL test.
class MdlDiscretizer : public Discretizer {
  public:
    std::string Name() const override { return "mdl"; }
    std::vector<double> FindCutPoints(const std::vector<double>& values,
                                      const std::vector<ClassLabel>& labels,
                                      std::size_t num_classes) const override;
};

}  // namespace dfp
