// ChiMerge supervised discretization (Kerber, AAAI'92).
//
// A second supervised scheme next to Fayyad–Irani MDL: bottom-up merging of
// adjacent intervals whose class distributions are statistically
// indistinguishable (χ² below the significance threshold), until every
// adjacent pair differs significantly or the interval budget is reached.
#pragma once

#include "data/discretizer.hpp"

namespace dfp {

struct ChiMergeConfig {
    /// Significance level for the χ² stopping test (0.90, 0.95 or 0.99).
    double significance = 0.95;
    /// Never merge below this many intervals.
    std::size_t min_intervals = 2;
    /// Keep merging (regardless of χ²) while above this many intervals.
    std::size_t max_intervals = 12;
};

class ChiMergeDiscretizer : public Discretizer {
  public:
    explicit ChiMergeDiscretizer(ChiMergeConfig config = {}) : config_(config) {}

    std::string Name() const override;
    std::vector<double> FindCutPoints(const std::vector<double>& values,
                                      const std::vector<ClassLabel>& labels,
                                      std::size_t num_classes) const override;

  private:
    ChiMergeConfig config_;
};

/// χ² statistic of two adjacent intervals' class-count rows (exposed for
/// tests). Cells with zero expectation contribute nothing.
double ChiSquareOfPair(const std::vector<std::size_t>& left,
                       const std::vector<std::size_t>& right);

/// Critical χ² value at the given significance for df degrees of freedom
/// (tabulated for df 1..10 at 0.90 / 0.95 / 0.99, clamped otherwise).
double ChiSquareCritical(double significance, std::size_t df);

}  // namespace dfp
