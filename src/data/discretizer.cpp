#include "data/discretizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/math_util.hpp"
#include "common/string_util.hpp"

namespace dfp {

std::uint32_t DiscretizationModel::BinOf(std::size_t attr, double value) const {
    const auto& cuts = cut_points[attr];
    const auto it = std::upper_bound(cuts.begin(), cuts.end(), value);
    return static_cast<std::uint32_t>(it - cuts.begin());
}

DiscretizationModel Discretizer::Fit(const Dataset& data) const {
    DiscretizationModel model;
    model.cut_points.resize(data.num_attributes());
    for (std::size_t a = 0; a < data.num_attributes(); ++a) {
        if (data.attribute(a).type != AttributeType::kNumeric) continue;
        std::vector<double> column(data.num_rows());
        for (std::size_t r = 0; r < data.num_rows(); ++r) column[r] = data.Value(r, a);
        model.cut_points[a] = FindCutPoints(column, data.labels(), data.num_classes());
    }
    return model;
}

Dataset Discretizer::Apply(const DiscretizationModel& model, const Dataset& data) {
    std::vector<Attribute> schema = data.attributes();
    for (std::size_t a = 0; a < schema.size(); ++a) {
        if (schema[a].type != AttributeType::kNumeric) continue;
        const auto& cuts = model.cut_points[a];
        schema[a].type = AttributeType::kCategorical;
        schema[a].values.clear();
        for (std::size_t b = 0; b <= cuts.size(); ++b) {
            const std::string lo = (b == 0) ? "-inf" : StrFormat("%.6g", cuts[b - 1]);
            const std::string hi =
                (b == cuts.size()) ? "+inf" : StrFormat("%.6g", cuts[b]);
            schema[a].values.push_back("[" + lo + "," + hi + ")");
        }
    }
    Dataset out(std::move(schema), data.class_names());
    std::vector<double> row(data.num_attributes());
    for (std::size_t r = 0; r < data.num_rows(); ++r) {
        for (std::size_t a = 0; a < data.num_attributes(); ++a) {
            if (data.attribute(a).type == AttributeType::kNumeric) {
                row[a] = model.BinOf(a, data.Value(r, a));
            } else {
                row[a] = data.Value(r, a);
            }
        }
        (void)out.AddRow(row, data.label(r));
    }
    return out;
}

Dataset Discretizer::FitApply(const Dataset& data) const {
    return Apply(Fit(data), data);
}

std::string EqualWidthDiscretizer::Name() const {
    return StrFormat("equal-width:%zu", bins_);
}

std::vector<double> EqualWidthDiscretizer::FindCutPoints(
    const std::vector<double>& values, const std::vector<ClassLabel>&,
    std::size_t) const {
    if (values.empty() || bins_ <= 1) return {};
    const auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
    const double mn = *mn_it;
    const double mx = *mx_it;
    if (mn == mx) return {};
    std::vector<double> cuts;
    cuts.reserve(bins_ - 1);
    for (std::size_t b = 1; b < bins_; ++b) {
        cuts.push_back(mn + (mx - mn) * static_cast<double>(b) /
                                static_cast<double>(bins_));
    }
    return cuts;
}

std::string EqualFrequencyDiscretizer::Name() const {
    return StrFormat("equal-freq:%zu", bins_);
}

std::vector<double> EqualFrequencyDiscretizer::FindCutPoints(
    const std::vector<double>& values, const std::vector<ClassLabel>&,
    std::size_t) const {
    if (values.empty() || bins_ <= 1) return {};
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    std::vector<double> cuts;
    for (std::size_t b = 1; b < bins_; ++b) {
        const std::size_t idx = b * sorted.size() / bins_;
        const double cut = sorted[idx];
        // Skip duplicate cut points caused by ties in the data.
        if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
    }
    // Drop a final cut equal to the max (would create an empty top bin).
    while (!cuts.empty() && cuts.back() >= sorted.back()) cuts.pop_back();
    return cuts;
}

namespace {

// One (value, label) observation, sorted by value for the MDL recursion.
struct Obs {
    double value;
    ClassLabel label;
};

// Entropy (bits) of the label distribution of obs[lo, hi).
double RangeEntropy(const std::vector<Obs>& obs, std::size_t lo, std::size_t hi,
                    std::size_t num_classes, std::size_t* distinct_out) {
    std::vector<std::size_t> counts(num_classes, 0);
    for (std::size_t i = lo; i < hi; ++i) counts[obs[i].label]++;
    std::size_t distinct = 0;
    for (auto c : counts) distinct += (c > 0);
    if (distinct_out != nullptr) *distinct_out = distinct;
    return EntropyCounts(counts);
}

// Recursive Fayyad–Irani partitioning of obs[lo, hi); appends accepted cut
// values to *cuts.
void MdlPartition(const std::vector<Obs>& obs, std::size_t lo, std::size_t hi,
                  std::size_t num_classes, std::vector<double>* cuts) {
    const auto n = static_cast<double>(hi - lo);
    if (hi - lo < 2) return;

    std::size_t k_all = 0;
    const double h_all = RangeEntropy(obs, lo, hi, num_classes, &k_all);
    if (k_all <= 1) return;  // already pure

    // Scan boundary candidates: positions where the value changes. Track class
    // counts incrementally on the left side.
    std::vector<std::size_t> left(num_classes, 0);
    std::vector<std::size_t> total(num_classes, 0);
    for (std::size_t i = lo; i < hi; ++i) total[obs[i].label]++;

    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best_split = 0;  // split between best_split-1 and best_split
    double best_h_left = 0.0;
    double best_h_right = 0.0;

    for (std::size_t i = lo; i + 1 < hi; ++i) {
        left[obs[i].label]++;
        if (obs[i].value == obs[i + 1].value) continue;  // not a boundary
        const auto n_left = static_cast<double>(i + 1 - lo);
        const auto n_right = n - n_left;
        std::vector<std::size_t> right(num_classes);
        for (std::size_t c = 0; c < num_classes; ++c) right[c] = total[c] - left[c];
        const double h_left = EntropyCounts(left);
        const double h_right = EntropyCounts(right);
        const double cost = (n_left / n) * h_left + (n_right / n) * h_right;
        if (cost < best_cost) {
            best_cost = cost;
            best_split = i + 1;
            best_h_left = h_left;
            best_h_right = h_right;
        }
    }
    if (best_split == 0) return;  // constant column: no boundary found

    // MDL acceptance test (Fayyad & Irani 1993):
    //   gain > log2(n-1)/n + delta/n
    //   delta = log2(3^k - 2) - (k*H - k1*H1 - k2*H2)
    const double gain = h_all - best_cost;
    std::size_t k1 = 0;
    std::size_t k2 = 0;
    (void)RangeEntropy(obs, lo, best_split, num_classes, &k1);
    (void)RangeEntropy(obs, best_split, hi, num_classes, &k2);
    const double delta =
        std::log2(std::pow(3.0, static_cast<double>(k_all)) - 2.0) -
        (static_cast<double>(k_all) * h_all - static_cast<double>(k1) * best_h_left -
         static_cast<double>(k2) * best_h_right);
    const double threshold = (std::log2(n - 1.0) + delta) / n;
    if (gain <= threshold) return;

    // Cut point is the midpoint between the two boundary values (Weka style).
    cuts->push_back((obs[best_split - 1].value + obs[best_split].value) / 2.0);
    MdlPartition(obs, lo, best_split, num_classes, cuts);
    MdlPartition(obs, best_split, hi, num_classes, cuts);
}

}  // namespace

std::vector<double> MdlDiscretizer::FindCutPoints(
    const std::vector<double>& values, const std::vector<ClassLabel>& labels,
    std::size_t num_classes) const {
    std::vector<Obs> obs(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) obs[i] = {values[i], labels[i]};
    std::sort(obs.begin(), obs.end(),
              [](const Obs& a, const Obs& b) { return a.value < b.value; });
    std::vector<double> cuts;
    MdlPartition(obs, 0, obs.size(), num_classes, &cuts);
    std::sort(cuts.begin(), cuts.end());
    return cuts;
}

}  // namespace dfp
