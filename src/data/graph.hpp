// Labeled graphs and class-labelled graph databases.
//
// Substrate for the paper's third pattern language (§6 names graphs; its
// reference [7], Deshpande et al., classifies chemical compounds with
// frequent substructures). Vertices and edges carry small integer labels
// (atom / bond types in the chemistry reading).
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "data/dataset.hpp"

namespace dfp {

using VertexLabel = std::uint32_t;
using EdgeLabel = std::uint32_t;

/// Undirected labeled graph with adjacency lists.
class LabeledGraph {
  public:
    struct Edge {
        std::uint32_t to;
        EdgeLabel label;
    };

    LabeledGraph() = default;
    explicit LabeledGraph(std::vector<VertexLabel> vertex_labels)
        : vertex_labels_(std::move(vertex_labels)),
          adjacency_(vertex_labels_.size()) {}

    std::size_t num_vertices() const { return vertex_labels_.size(); }
    std::size_t num_edges() const { return num_edges_; }
    VertexLabel vertex_label(std::size_t v) const { return vertex_labels_[v]; }
    const std::vector<Edge>& neighbours(std::size_t v) const {
        return adjacency_[v];
    }

    /// Adds an undirected edge; duplicate edges are allowed (multigraph).
    Status AddEdge(std::size_t u, std::size_t v, EdgeLabel label);

  private:
    std::vector<VertexLabel> vertex_labels_;
    std::vector<std::vector<Edge>> adjacency_;
    std::size_t num_edges_ = 0;
};

/// Class-labelled collection of graphs.
class GraphDatabase {
  public:
    GraphDatabase() = default;
    GraphDatabase(std::vector<LabeledGraph> graphs, std::vector<ClassLabel> labels,
                  std::size_t num_vertex_labels, std::size_t num_edge_labels,
                  std::size_t num_classes);

    std::size_t size() const { return labels_.size(); }
    const LabeledGraph& graph(std::size_t i) const { return graphs_[i]; }
    ClassLabel label(std::size_t i) const { return labels_[i]; }
    const std::vector<ClassLabel>& labels() const { return labels_; }
    std::size_t num_vertex_labels() const { return num_vertex_labels_; }
    std::size_t num_edge_labels() const { return num_edge_labels_; }
    std::size_t num_classes() const { return num_classes_; }

    std::vector<std::size_t> ClassCounts() const;
    GraphDatabase FilterByClass(ClassLabel c) const;
    GraphDatabase Subset(const std::vector<std::size_t>& rows) const;

  private:
    std::vector<LabeledGraph> graphs_;
    std::vector<ClassLabel> labels_;
    std::size_t num_vertex_labels_ = 0;
    std::size_t num_edge_labels_ = 0;
    std::size_t num_classes_ = 0;
};

/// Synthetic molecule-like graph generator: random backbone graphs with
/// class-specific "functional group" path motifs attached (the graph
/// analogue of the itemset generator's concepts).
struct GraphSpec {
    std::size_t rows = 300;
    std::size_t classes = 2;
    std::size_t vertex_labels = 6;
    std::size_t edge_labels = 3;
    std::size_t vertices_min = 8;
    std::size_t vertices_max = 16;
    double extra_edge_prob = 0.15;  ///< density beyond the random spanning tree
    std::size_t motifs_per_class = 2;
    std::size_t motif_edges = 3;  ///< motif path length (edges)
    double carrier_prob = 0.75;
    double label_noise = 0.02;
    std::uint64_t seed = 1;
};

GraphDatabase GenerateGraphs(const GraphSpec& spec);

}  // namespace dfp
