// Class-labelled transaction database — the representation mined by src/fpm.
//
// Holds horizontal transactions (sorted item lists), per-item vertical cover
// bit vectors (for fast support counting and pattern-cover computation), and
// per-class cover bit vectors (for per-class mining and the discriminative
// measures).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvector.hpp"
#include "common/status.hpp"
#include "data/dataset.hpp"
#include "data/encoder.hpp"

namespace dfp {

/// Immutable-after-build transaction database with labels and vertical index.
class TransactionDatabase {
  public:
    TransactionDatabase() = default;

    /// Builds from a fully-categorical dataset via the given encoder.
    static TransactionDatabase FromDataset(const Dataset& data,
                                           const ItemEncoder& encoder);

    /// Builds directly from raw transactions. Item ids must be < num_items;
    /// labels must be < num_classes. Transactions are sorted and deduplicated.
    static TransactionDatabase FromTransactions(
        std::vector<std::vector<ItemId>> transactions, std::vector<ClassLabel> labels,
        std::size_t num_items, std::size_t num_classes,
        std::vector<std::string> item_names = {});

    /// Validating variant of FromTransactions for untrusted inputs: returns
    /// InvalidArgument (instead of asserting / indexing out of bounds) when
    /// sizes mismatch, an item id is >= num_items, a label is >= num_classes,
    /// or item_names has the wrong length.
    static Result<TransactionDatabase> FromTransactionsChecked(
        std::vector<std::vector<ItemId>> transactions, std::vector<ClassLabel> labels,
        std::size_t num_items, std::size_t num_classes,
        std::vector<std::string> item_names = {});

    std::size_t num_transactions() const { return labels_.size(); }
    std::size_t num_items() const { return num_items_; }
    std::size_t num_classes() const { return num_classes_; }

    const std::vector<ItemId>& transaction(std::size_t t) const {
        return transactions_[t];
    }
    const std::vector<std::vector<ItemId>>& transactions() const {
        return transactions_;
    }
    ClassLabel label(std::size_t t) const { return labels_[t]; }
    const std::vector<ClassLabel>& labels() const { return labels_; }

    /// Rows containing `item`.
    const BitVector& ItemCover(ItemId item) const { return item_covers_[item]; }
    /// Rows labelled with class `c`.
    const BitVector& ClassCover(ClassLabel c) const { return class_covers_[c]; }

    /// Absolute support of `item`.
    std::size_t ItemSupport(ItemId item) const { return item_covers_[item].Count(); }

    /// Cover of an itemset (intersection of item covers). Empty itemset covers
    /// every transaction.
    BitVector CoverOf(const std::vector<ItemId>& items) const;
    /// Absolute support of an itemset.
    std::size_t SupportOf(const std::vector<ItemId>& items) const;
    /// Per-class counts of a cover set.
    std::vector<std::size_t> ClassCountsOf(const BitVector& cover) const;

    /// Per-class transaction counts.
    std::vector<std::size_t> ClassCounts() const;
    /// Per-class fractions.
    std::vector<double> ClassPriors() const;

    /// "attr=val" name of an item (falls back to "item<i>").
    std::string ItemName(ItemId item) const;

    /// New database with only the transactions of class `c` (labels kept).
    TransactionDatabase FilterByClass(ClassLabel c) const;
    /// New database with the selected rows, in order.
    TransactionDatabase Subset(const std::vector<std::size_t>& rows) const;

    /// True if transaction `t` contains all of `items` (items must be sorted).
    bool Contains(std::size_t t, const std::vector<ItemId>& items) const;

  private:
    void BuildIndexes();

    std::size_t num_items_ = 0;
    std::size_t num_classes_ = 0;
    std::vector<std::vector<ItemId>> transactions_;
    std::vector<ClassLabel> labels_;
    std::vector<std::string> item_names_;
    std::vector<BitVector> item_covers_;
    std::vector<BitVector> class_covers_;
};

}  // namespace dfp
