// Synthetic stand-ins for the paper's UCI datasets.
//
// The paper evaluates on 19 UCI classification datasets (Tables 1–2) plus
// chess, waveform and letter-recognition (Tables 3–5). Those files are not
// available offline, so we generate seeded synthetic datasets that reproduce
// each dataset's published *shape* (rows, attributes, classes, item-universe
// size) under a planted-pattern model:
//
//   * every class has a few hidden multi-attribute "concept" patterns that
//     appear with high probability in its rows and low probability elsewhere —
//     this is exactly the structure frequent-pattern-based classification
//     exploits (combinations are informative);
//   * single-attribute marginals are only mildly class-skewed, so single
//     features carry some but limited signal (matching the Item_All vs Pat_FS
//     gap the paper reports);
//   * optional numeric attributes with class-dependent Gaussians exercise the
//     discretizers;
//   * optional label noise bounds achievable accuracy away from 100%.
//
// See DESIGN.md §4 for why this substitution preserves the experiments' shape.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "data/dataset.hpp"

namespace dfp {

/// Parameters of one synthetic dataset.
struct SyntheticSpec {
    std::string name;
    std::size_t rows = 500;
    std::size_t classes = 2;
    std::size_t attributes = 10;
    /// Values per categorical attribute (uniform arity).
    std::size_t arity = 3;
    /// Fraction of attributes that are numeric (Gaussian per class).
    double numeric_fraction = 0.0;
    /// Hidden concept patterns per class.
    std::size_t patterns_per_class = 3;
    /// XOR-style templates per adjacent class pair: an attribute set shared by
    /// two classes where the parity of hidden per-attribute bits decides the
    /// class. Single items stay marginally uninformative while the value
    /// combinations are decisive — the regime where pattern features are
    /// strictly stronger than any linear combination of single features.
    std::size_t xor_patterns_per_class = 2;
    std::size_t pattern_len_min = 2;
    std::size_t pattern_len_max = 4;
    /// Probability that a row of class c expresses each of c's patterns.
    double carrier_prob = 0.6;
    /// Probability that a row also expresses one random pattern of another class.
    double leak_prob = 0.1;
    /// Strength of single-attribute marginal skew toward a class-preferred
    /// value, in [0, 1). 0 = uniform marginals (single features useless).
    double marginal_skew = 0.25;
    /// Fraction of rows whose label is replaced by a uniform random label.
    double label_noise = 0.02;
    /// Probability that a class adopts the globally-preferred value of an
    /// attribute instead of its own random one. Non-zero values create
    /// globally frequent items, which many-class datasets (letter) need for
    /// any pattern to clear a whole-database support threshold.
    double shared_preference = 0.0;
    /// Probability that a row is a "background carrier" expressing the global
    /// preferred value on ~70% of categorical attributes, independent of its
    /// class. Creates class-neutral inter-attribute correlation (frequent but
    /// non-discriminative patterns — the "stop words" of §3.2).
    double background_prob = 0.0;
    /// Std-dev of the per-class offset applied to numeric attribute means.
    /// Small values keep single numeric features weak; large values make them
    /// individually separable (iris/wine-like data).
    double numeric_class_sep = 0.35;
    /// Dirichlet-ish imbalance of the class prior. 0 = balanced.
    double class_imbalance = 0.0;
    std::uint64_t seed = 1;
    /// Per-class relative min_sup the table benches mine this dataset with.
    /// Attribute-heavy datasets need a higher floor to keep the candidate
    /// space enumerable (the paper likewise tunes min_sup per dataset).
    double bench_min_sup = 0.10;
};

/// Generates a dataset according to `spec`. Deterministic in spec.seed.
Dataset GenerateSynthetic(const SyntheticSpec& spec);

/// The d-dimensional noisy-XOR dataset from the paper's §3.1.1 motivation:
/// label = x0 XOR x1, plus `distractors` irrelevant binary attributes, with
/// `noise` label-flip probability. No single feature is informative.
Dataset GenerateXor(std::size_t rows, std::size_t distractors, double noise,
                    std::uint64_t seed);

/// Specs mimicking the 19 UCI datasets of Tables 1–2 (published shapes).
const std::vector<SyntheticSpec>& UciTableSpecs();

/// Specs of the three scalability datasets of Tables 3–5.
SyntheticSpec ChessSpec();
SyntheticSpec WaveformSpec();
SyntheticSpec LetterSpec();

/// Looks up a spec by dataset name across all registries above.
Result<SyntheticSpec> GetSpecByName(const std::string& name);

}  // namespace dfp
