// CSV loading/saving for Dataset.
//
// Columns are auto-typed: a column is numeric iff every non-empty cell parses
// as a finite double; otherwise it is categorical with value codes assigned in
// first-appearance order. The class column is always categorical.
#pragma once

#include <iosfwd>
#include <string>

#include "common/status.hpp"
#include "data/dataset.hpp"

namespace dfp {

struct CsvOptions {
    char delimiter = ',';
    bool has_header = true;
    /// Index of the class column; negative counts from the end (-1 = last).
    int class_column = -1;
};

/// Parses CSV text into a Dataset. Returns ParseError on malformed input.
Result<Dataset> ReadCsv(std::istream& in, const CsvOptions& options = {});

/// Loads a CSV file. Returns NotFound if the file cannot be opened.
Result<Dataset> LoadCsvFile(const std::string& path, const CsvOptions& options = {});

/// Writes a Dataset as CSV (class label in the last column, header included).
Status WriteCsv(const Dataset& data, std::ostream& out, char delimiter = ',');

/// Saves a Dataset to a CSV file.
Status SaveCsvFile(const Dataset& data, const std::string& path,
                   char delimiter = ',');

}  // namespace dfp
