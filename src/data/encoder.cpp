#include "data/encoder.hpp"

#include <algorithm>

namespace dfp {

Result<ItemEncoder> ItemEncoder::FromSchema(const Dataset& data) {
    if (!data.IsFullyCategorical()) {
        return Status::FailedPrecondition(
            "ItemEncoder requires a fully-categorical dataset; discretize first");
    }
    ItemEncoder enc;
    enc.offsets_.resize(data.num_attributes());
    enc.skipped_.assign(data.num_attributes(), false);
    ItemId next = 0;
    for (std::size_t a = 0; a < data.num_attributes(); ++a) {
        const Attribute& attr = data.attribute(a);
        enc.offsets_[a] = next;
        // Constant attributes (e.g. a numeric column the MDL discretizer
        // refused to cut) carry no information: the single (att, val) item
        // would appear in every transaction and bloat every closed pattern.
        if (attr.arity() < 2) {
            enc.skipped_[a] = true;
            continue;
        }
        for (const std::string& v : attr.values) {
            enc.item_names_.push_back(attr.name + "=" + v);
        }
        next += static_cast<ItemId>(attr.arity());
    }
    return enc;
}

std::pair<std::size_t, std::uint32_t> ItemEncoder::Decode(ItemId item) const {
    // offsets_ is ascending; find the last attribute whose offset is <= item.
    const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), item);
    const std::size_t attr = static_cast<std::size_t>(it - offsets_.begin()) - 1;
    return {attr, item - offsets_[attr]};
}

std::vector<ItemId> ItemEncoder::EncodeRow(const Dataset& data, std::size_t row) const {
    std::vector<ItemId> items;
    items.reserve(data.num_attributes());
    for (std::size_t a = 0; a < data.num_attributes(); ++a) {
        if (skipped_[a]) continue;
        items.push_back(Encode(a, data.Code(row, a)));
    }
    // One item per attribute and attributes are offset-ordered, so the list is
    // already sorted ascending.
    return items;
}

}  // namespace dfp
