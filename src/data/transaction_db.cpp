#include "data/transaction_db.hpp"

#include <algorithm>
#include <cassert>

#include "common/string_util.hpp"

namespace dfp {

TransactionDatabase TransactionDatabase::FromDataset(const Dataset& data,
                                                     const ItemEncoder& encoder) {
    std::vector<std::vector<ItemId>> txns;
    txns.reserve(data.num_rows());
    for (std::size_t r = 0; r < data.num_rows(); ++r) {
        txns.push_back(encoder.EncodeRow(data, r));
    }
    std::vector<std::string> names(encoder.num_items());
    for (ItemId i = 0; i < encoder.num_items(); ++i) names[i] = encoder.ItemName(i);
    return FromTransactions(std::move(txns), data.labels(), encoder.num_items(),
                            data.num_classes(), std::move(names));
}

TransactionDatabase TransactionDatabase::FromTransactions(
    std::vector<std::vector<ItemId>> transactions, std::vector<ClassLabel> labels,
    std::size_t num_items, std::size_t num_classes,
    std::vector<std::string> item_names) {
    assert(transactions.size() == labels.size());
    TransactionDatabase db;
    db.num_items_ = num_items;
    db.num_classes_ = num_classes;
    db.transactions_ = std::move(transactions);
    db.labels_ = std::move(labels);
    db.item_names_ = std::move(item_names);
    for (auto& t : db.transactions_) {
        std::sort(t.begin(), t.end());
        t.erase(std::unique(t.begin(), t.end()), t.end());
        assert(t.empty() || t.back() < num_items);
    }
    db.BuildIndexes();
    return db;
}

Result<TransactionDatabase> TransactionDatabase::FromTransactionsChecked(
    std::vector<std::vector<ItemId>> transactions, std::vector<ClassLabel> labels,
    std::size_t num_items, std::size_t num_classes,
    std::vector<std::string> item_names) {
    if (transactions.size() != labels.size()) {
        return Status::InvalidArgument(
            StrFormat("%zu transactions but %zu labels", transactions.size(),
                      labels.size()));
    }
    if (!item_names.empty() && item_names.size() != num_items) {
        return Status::InvalidArgument(
            StrFormat("%zu item names but %zu items", item_names.size(),
                      num_items));
    }
    for (std::size_t t = 0; t < transactions.size(); ++t) {
        for (ItemId i : transactions[t]) {
            if (i >= num_items) {
                return Status::InvalidArgument(StrFormat(
                    "transaction %zu: item id %u >= num_items %zu", t,
                    static_cast<unsigned>(i), num_items));
            }
        }
        if (labels[t] >= num_classes) {
            return Status::InvalidArgument(
                StrFormat("transaction %zu: label %u >= num_classes %zu", t,
                          static_cast<unsigned>(labels[t]), num_classes));
        }
    }
    return FromTransactions(std::move(transactions), std::move(labels),
                            num_items, num_classes, std::move(item_names));
}

void TransactionDatabase::BuildIndexes() {
    item_covers_.assign(num_items_, BitVector(num_transactions()));
    class_covers_.assign(num_classes_, BitVector(num_transactions()));
    for (std::size_t t = 0; t < num_transactions(); ++t) {
        for (ItemId i : transactions_[t]) item_covers_[i].Set(t);
        class_covers_[labels_[t]].Set(t);
    }
}

BitVector TransactionDatabase::CoverOf(const std::vector<ItemId>& items) const {
    if (items.empty()) {
        BitVector all(num_transactions());
        all.Fill();
        return all;
    }
    BitVector cover = item_covers_[items[0]];
    for (std::size_t i = 1; i < items.size(); ++i) cover &= item_covers_[items[i]];
    return cover;
}

std::size_t TransactionDatabase::SupportOf(const std::vector<ItemId>& items) const {
    return CoverOf(items).Count();
}

std::vector<std::size_t> TransactionDatabase::ClassCountsOf(
    const BitVector& cover) const {
    std::vector<std::size_t> counts(num_classes_, 0);
    for (std::size_t c = 0; c < num_classes_; ++c) {
        counts[c] = cover.AndCount(class_covers_[c]);
    }
    return counts;
}

std::vector<std::size_t> TransactionDatabase::ClassCounts() const {
    std::vector<std::size_t> counts(num_classes_, 0);
    for (ClassLabel y : labels_) counts[y]++;
    return counts;
}

std::vector<double> TransactionDatabase::ClassPriors() const {
    std::vector<double> priors(num_classes_, 0.0);
    if (labels_.empty()) return priors;
    const auto counts = ClassCounts();
    for (std::size_t c = 0; c < num_classes_; ++c) {
        priors[c] =
            static_cast<double>(counts[c]) / static_cast<double>(labels_.size());
    }
    return priors;
}

std::string TransactionDatabase::ItemName(ItemId item) const {
    if (item < item_names_.size() && !item_names_[item].empty()) {
        return item_names_[item];
    }
    return StrFormat("item%u", item);
}

TransactionDatabase TransactionDatabase::FilterByClass(ClassLabel c) const {
    std::vector<std::size_t> rows;
    for (std::size_t t = 0; t < num_transactions(); ++t) {
        if (labels_[t] == c) rows.push_back(t);
    }
    return Subset(rows);
}

TransactionDatabase TransactionDatabase::Subset(
    const std::vector<std::size_t>& rows) const {
    std::vector<std::vector<ItemId>> txns;
    std::vector<ClassLabel> labels;
    txns.reserve(rows.size());
    labels.reserve(rows.size());
    for (std::size_t r : rows) {
        txns.push_back(transactions_[r]);
        labels.push_back(labels_[r]);
    }
    return FromTransactions(std::move(txns), std::move(labels), num_items_,
                            num_classes_, item_names_);
}

bool TransactionDatabase::Contains(std::size_t t,
                                   const std::vector<ItemId>& items) const {
    const auto& txn = transactions_[t];
    return std::includes(txn.begin(), txn.end(), items.begin(), items.end());
}

}  // namespace dfp
