#include "data/synthetic.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

#include "common/rng.hpp"
#include "common/string_util.hpp"

namespace dfp {

namespace {

// A hidden concept pattern: specific values on a subset of attributes.
// Categorical attributes carry a value code; numeric attributes carry a
// center — carrier rows land near it, so discretization turns the concept
// into a co-occurring bin combination (the structure pattern mining finds).
struct Concept {
    std::vector<std::size_t> attrs;
    std::vector<double> values;
};

// Draws a concept over any attributes (mixed categorical/numeric).
Concept DrawConcept(const SyntheticSpec& spec, std::size_t num_attrs,
                    const std::vector<bool>& is_numeric, Rng& rng) {
    Concept c;
    const std::size_t max_len = std::min(spec.pattern_len_max, num_attrs);
    const std::size_t min_len = std::min(spec.pattern_len_min, max_len);
    const std::size_t len = static_cast<std::size_t>(
        rng.UniformInt(static_cast<std::int64_t>(min_len),
                       static_cast<std::int64_t>(max_len)));
    std::vector<std::size_t> pool(num_attrs);
    for (std::size_t a = 0; a < num_attrs; ++a) pool[a] = a;
    rng.Shuffle(pool);
    c.attrs.assign(pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(len));
    std::sort(c.attrs.begin(), c.attrs.end());
    for (std::size_t a : c.attrs) {
        if (is_numeric[a]) {
            c.values.push_back(rng.Uniform(0.0, static_cast<double>(spec.arity)));
        } else {
            c.values.push_back(static_cast<double>(rng.UniformInt(spec.arity)));
        }
    }
    return c;
}

// An XOR-style template shared by two classes: over the attribute set, each
// attribute has two alternative values; a carrier row draws one hidden bit per
// attribute subject to "XOR of bits == class parity". Every single (attr,
// value) item then appears equally often in both classes, but the value
// combinations separate them.
struct XorTemplate {
    std::vector<std::size_t> attrs;
    std::vector<std::array<double, 2>> values;  // two alternatives per attr
    ClassLabel even_class = 0;                  // parity-0 class
    ClassLabel odd_class = 1;                   // parity-1 class
};

XorTemplate DrawXorTemplate(const SyntheticSpec& spec, std::size_t num_attrs,
                            const std::vector<bool>& is_numeric, ClassLabel even,
                            ClassLabel odd, Rng& rng) {
    XorTemplate t;
    t.even_class = even;
    t.odd_class = odd;
    const std::size_t max_len = std::min(spec.pattern_len_max, num_attrs);
    const std::size_t len =
        std::max<std::size_t>(2, std::min(spec.pattern_len_min, max_len));
    std::vector<std::size_t> pool(num_attrs);
    for (std::size_t a = 0; a < num_attrs; ++a) pool[a] = a;
    rng.Shuffle(pool);
    t.attrs.assign(pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(len));
    std::sort(t.attrs.begin(), t.attrs.end());
    for (std::size_t a : t.attrs) {
        if (is_numeric[a]) {
            // Centers far apart so they land in different discretizer bins.
            const double lo = rng.Uniform(0.0, static_cast<double>(spec.arity) / 3.0);
            const double hi = lo + static_cast<double>(spec.arity) / 2.0;
            t.values.push_back({lo, hi});
        } else {
            const auto v0 = static_cast<double>(rng.UniformInt(spec.arity));
            auto v1 = static_cast<double>(rng.UniformInt(spec.arity - 1));
            if (v1 >= v0) v1 += 1.0;
            t.values.push_back({v0, v1});
        }
    }
    return t;
}

}  // namespace

Dataset GenerateSynthetic(const SyntheticSpec& spec) {
    assert(spec.classes >= 2);
    assert(spec.arity >= 2);
    Rng rng(spec.seed);

    // ---- Schema ----------------------------------------------------------
    const auto num_numeric = static_cast<std::size_t>(
        std::round(spec.numeric_fraction * static_cast<double>(spec.attributes)));
    std::vector<Attribute> schema(spec.attributes);
    std::vector<std::size_t> cat_attrs;
    std::vector<std::size_t> num_attrs;
    for (std::size_t a = 0; a < spec.attributes; ++a) {
        schema[a].name = StrFormat("a%zu", a);
        if (a < spec.attributes - num_numeric) {
            schema[a].type = AttributeType::kCategorical;
            for (std::size_t v = 0; v < spec.arity; ++v) {
                schema[a].values.push_back(StrFormat("v%zu", v));
            }
            cat_attrs.push_back(a);
        } else {
            schema[a].type = AttributeType::kNumeric;
            num_attrs.push_back(a);
        }
    }
    std::vector<std::string> class_names;
    for (std::size_t c = 0; c < spec.classes; ++c) {
        class_names.push_back(StrFormat("c%zu", c));
    }

    // ---- Hidden structure -------------------------------------------------
    // Per-class preferred value and per-attribute skew strength (jittered so
    // item supports spread out, which makes pattern counts vary smoothly with
    // min_sup in the scalability benches).
    std::vector<std::vector<std::uint32_t>> preferred(spec.classes);
    std::vector<double> attr_skew(spec.attributes, 0.0);
    for (std::size_t a = 0; a < spec.attributes; ++a) {
        attr_skew[a] = spec.marginal_skew * rng.Uniform(0.5, 1.5);
        attr_skew[a] = std::min(attr_skew[a], 0.97);
    }
    std::vector<std::uint32_t> global_preferred(spec.attributes);
    for (std::size_t a = 0; a < spec.attributes; ++a) {
        global_preferred[a] = static_cast<std::uint32_t>(rng.UniformInt(spec.arity));
    }
    for (std::size_t c = 0; c < spec.classes; ++c) {
        preferred[c].resize(spec.attributes);
        for (std::size_t a = 0; a < spec.attributes; ++a) {
            preferred[c][a] =
                rng.Bernoulli(spec.shared_preference)
                    ? global_preferred[a]
                    : static_cast<std::uint32_t>(rng.UniformInt(spec.arity));
        }
    }
    // Per-class numeric means: a shared per-attribute base with a modest
    // class offset. Keeping single numeric attributes only weakly informative
    // matters twofold: it matches the paper's setting (single features are
    // weak, combinations are strong), and it prevents every discretized bin
    // from correlating with every other one, which would blow up the closed
    // pattern count on attribute-heavy datasets like sonar.
    std::vector<std::vector<double>> num_mean(spec.classes,
                                              std::vector<double>(spec.attributes, 0.0));
    for (std::size_t a : num_attrs) {
        const double base = rng.Uniform(0.0, static_cast<double>(spec.arity));
        for (std::size_t c = 0; c < spec.classes; ++c) {
            num_mean[c][a] = base + rng.Gaussian(0.0, spec.numeric_class_sep);
        }
    }
    std::vector<bool> is_numeric(spec.attributes, false);
    for (std::size_t a : num_attrs) is_numeric[a] = true;
    std::vector<std::vector<Concept>> concepts(spec.classes);
    for (std::size_t c = 0; c < spec.classes; ++c) {
        for (std::size_t k = 0; k < spec.patterns_per_class; ++k) {
            concepts[c].push_back(DrawConcept(spec, spec.attributes, is_numeric, rng));
        }
    }
    std::vector<XorTemplate> xor_templates;
    if (spec.classes >= 2 && spec.attributes >= 2) {
        for (ClassLabel c = 0; c < spec.classes; ++c) {
            const auto next = static_cast<ClassLabel>((c + 1) % spec.classes);
            for (std::size_t k = 0; k < spec.xor_patterns_per_class; ++k) {
                xor_templates.push_back(
                    DrawXorTemplate(spec, spec.attributes, is_numeric, c, next, rng));
            }
        }
    }

    // ---- Class prior -------------------------------------------------------
    std::vector<double> prior(spec.classes, 1.0);
    for (std::size_t c = 0; c < spec.classes; ++c) {
        prior[c] = std::pow(1.0 - spec.class_imbalance, static_cast<double>(c));
    }

    // ---- Rows ---------------------------------------------------------------
    Dataset data(std::move(schema), std::move(class_names));
    std::vector<double> row(spec.attributes);
    for (std::size_t r = 0; r < spec.rows; ++r) {
        const auto c = static_cast<ClassLabel>(rng.Categorical(prior));
        // Base draw from the class-skewed marginals.
        for (std::size_t a = 0; a < spec.attributes; ++a) {
            if (data.attribute(a).type == AttributeType::kCategorical) {
                if (rng.Bernoulli(attr_skew[a])) {
                    row[a] = preferred[c][a];
                } else {
                    row[a] = static_cast<double>(rng.UniformInt(spec.arity));
                }
            } else {
                row[a] = rng.Gaussian(num_mean[c][a], 0.9);
            }
        }
        // Background carriers: class-neutral co-occurrence of the globally
        // preferred values (frequent, non-discriminative structure).
        if (spec.background_prob > 0.0 && rng.Bernoulli(spec.background_prob)) {
            for (std::size_t a : cat_attrs) {
                if (rng.Bernoulli(0.85)) row[a] = global_preferred[a];
            }
        }
        // Express this class's concept patterns. Numeric concept attributes
        // land near the concept center so discretized bins co-occur.
        auto express = [&](const Concept& cpt) {
            for (std::size_t i = 0; i < cpt.attrs.size(); ++i) {
                const std::size_t a = cpt.attrs[i];
                row[a] = is_numeric[a] ? rng.Gaussian(cpt.values[i], 0.18)
                                       : cpt.values[i];
            }
        };
        for (const Concept& cpt : concepts[c]) {
            if (rng.Bernoulli(spec.carrier_prob)) express(cpt);
        }
        // Express XOR templates this class participates in: draw hidden bits
        // whose parity encodes the class.
        for (const XorTemplate& t : xor_templates) {
            if (c != t.even_class && c != t.odd_class) continue;
            if (!rng.Bernoulli(spec.carrier_prob)) continue;
            const int parity = (c == t.odd_class) ? 1 : 0;
            int acc = 0;
            for (std::size_t i = 0; i + 1 < t.attrs.size(); ++i) {
                const int bit = static_cast<int>(rng.UniformInt(std::uint64_t{2}));
                acc ^= bit;
                const std::size_t a = t.attrs[i];
                const double v = t.values[i][static_cast<std::size_t>(bit)];
                row[a] = is_numeric[a] ? rng.Gaussian(v, 0.15) : v;
            }
            const int last = acc ^ parity;
            const std::size_t a = t.attrs.back();
            const double v = t.values.back()[static_cast<std::size_t>(last)];
            row[a] = is_numeric[a] ? rng.Gaussian(v, 0.15) : v;
        }
        // Cross-class leakage: occasionally express a pattern of another class
        // so patterns are discriminative but not perfectly so.
        if (spec.classes > 1 && rng.Bernoulli(spec.leak_prob)) {
            auto other = static_cast<std::size_t>(rng.UniformInt(spec.classes - 1));
            if (other >= c) ++other;
            if (!concepts[other].empty()) {
                express(concepts[other][rng.UniformInt(concepts[other].size())]);
            }
        }
        ClassLabel y = c;
        if (rng.Bernoulli(spec.label_noise)) {
            y = static_cast<ClassLabel>(rng.UniformInt(spec.classes));
        }
        (void)data.AddRow(row, y);
    }
    return data;
}

Dataset GenerateXor(std::size_t rows, std::size_t distractors, double noise,
                    std::uint64_t seed) {
    Rng rng(seed);
    std::vector<Attribute> schema(2 + distractors);
    for (std::size_t a = 0; a < schema.size(); ++a) {
        schema[a].name = (a == 0) ? "x" : (a == 1 ? "y" : StrFormat("noise%zu", a - 2));
        schema[a].type = AttributeType::kCategorical;
        schema[a].values = {"0", "1"};
    }
    Dataset data(std::move(schema), {"neg", "pos"});
    std::vector<double> row(2 + distractors);
    for (std::size_t r = 0; r < rows; ++r) {
        for (double& v : row) v = static_cast<double>(rng.UniformInt(std::uint64_t{2}));
        auto y = static_cast<ClassLabel>(
            (static_cast<int>(row[0]) ^ static_cast<int>(row[1])));
        if (rng.Bernoulli(noise)) y = 1 - y;
        (void)data.AddRow(row, y);
    }
    return data;
}

namespace {

SyntheticSpec MakeUciSpec(const std::string& name, std::size_t rows,
                          std::size_t attributes, std::size_t classes,
                          std::size_t arity, double numeric_fraction,
                          double marginal_skew, double label_noise,
                          std::uint64_t seed) {
    SyntheticSpec s;
    s.name = name;
    s.rows = rows;
    s.attributes = attributes;
    s.classes = classes;
    s.arity = arity;
    s.numeric_fraction = numeric_fraction;
    s.patterns_per_class = 3;
    s.pattern_len_min = 2;
    s.pattern_len_max = 4;
    s.carrier_prob = 0.65;
    s.leak_prob = 0.12;
    s.marginal_skew = marginal_skew;
    s.label_noise = label_noise;
    s.seed = seed;
    // Wider schemas span exponentially more combinations; raise the mining
    // floor with the attribute count so the benches stay enumerable.
    if (attributes >= 30) {
        s.bench_min_sup = 0.30;
    } else if (attributes >= 20) {
        s.bench_min_sup = 0.20;
    } else if (attributes >= 15) {
        s.bench_min_sup = 0.15;
    }
    return s;
}

}  // namespace

const std::vector<SyntheticSpec>& UciTableSpecs() {
    // Shapes (rows / attributes / classes) follow the published UCI datasets
    // used in Tables 1-2 of the paper. Skew / noise / separation are tuned per
    // dataset so the Item_All baselines land in the paper's accuracy range
    // (74%..100%) and the pattern structure carries the remaining headroom.
    static const std::vector<SyntheticSpec> kSpecs = [] {
        std::vector<SyntheticSpec> specs = {
            MakeUciSpec("anneal", 898, 38, 5, 3, 0.15, 0.45, 0.005, 101),
            MakeUciSpec("austral", 690, 14, 2, 3, 0.30, 0.25, 0.060, 102),
            MakeUciSpec("auto", 205, 25, 6, 3, 0.30, 0.45, 0.040, 103),
            MakeUciSpec("breast", 699, 9, 2, 4, 0.00, 0.45, 0.010, 104),
            MakeUciSpec("cleve", 303, 13, 2, 3, 0.40, 0.25, 0.080, 105),
            MakeUciSpec("diabetes", 768, 8, 2, 4, 0.75, 0.15, 0.200, 106),
            MakeUciSpec("glass", 214, 9, 6, 4, 0.60, 0.45, 0.080, 107),
            MakeUciSpec("heart", 270, 13, 2, 3, 0.40, 0.25, 0.090, 108),
            MakeUciSpec("hepatic", 155, 19, 2, 3, 0.30, 0.30, 0.060, 109),
            MakeUciSpec("horse", 368, 22, 2, 3, 0.25, 0.25, 0.100, 110),
            MakeUciSpec("iono", 351, 34, 2, 3, 0.50, 0.30, 0.030, 111),
            MakeUciSpec("iris", 150, 4, 3, 4, 1.00, 0.30, 0.020, 112),
            MakeUciSpec("labor", 57, 16, 2, 3, 0.30, 0.35, 0.020, 113),
            MakeUciSpec("lymph", 148, 18, 4, 3, 0.10, 0.30, 0.030, 114),
            MakeUciSpec("pima", 768, 8, 2, 4, 0.75, 0.15, 0.210, 115),
            MakeUciSpec("sonar", 208, 60, 2, 3, 0.80, 0.15, 0.100, 116),
            MakeUciSpec("vehicle", 846, 18, 4, 4, 0.60, 0.25, 0.150, 117),
            MakeUciSpec("wine", 178, 13, 3, 3, 0.90, 0.35, 0.005, 118),
            MakeUciSpec("zoo", 101, 16, 7, 2, 0.00, 0.80, 0.000, 119),
        };
        auto by_name = [&specs](const char* name) -> SyntheticSpec& {
            for (auto& s : specs) {
                if (s.name == name) return s;
            }
            return specs.front();
        };
        // Strongly numerically-separable datasets (iris/wine-like). With only
        // a handful of attributes, heavy concept/XOR overwriting would erase
        // the class-conditional means MDL needs, so keep planting light.
        by_name("iris").numeric_class_sep = 2.5;
        by_name("iris").patterns_per_class = 1;
        by_name("iris").xor_patterns_per_class = 1;
        by_name("iris").carrier_prob = 0.45;
        by_name("wine").numeric_class_sep = 1.4;
        by_name("glass").numeric_class_sep = 1.0;
        by_name("auto").numeric_class_sep = 0.8;
        // Nearly-deterministic zoo: single features dominate, few templates.
        by_name("zoo").patterns_per_class = 2;
        by_name("zoo").xor_patterns_per_class = 1;
        // Datasets where the paper reports the largest Pat_FS gains: give
        // conjunctions more of the signal.
        for (const char* name : {"austral", "cleve", "hepatic", "horse", "lymph",
                                 "sonar", "auto"}) {
            by_name(name).xor_patterns_per_class = 3;
            by_name(name).carrier_prob = 0.75;
        }
        return specs;
    }();
    return kSpecs;
}

SyntheticSpec ChessSpec() {
    // Chess (kr-vs-kp): 3196 rows, 36 attributes, 2 classes, 73 items. Dense:
    // strongly skewed binary attributes make high-support itemsets abundant,
    // which is what makes min_sup sweeps in the 2000..3000 range interesting.
    SyntheticSpec s = MakeUciSpec("chess", 3196, 36, 2, 2, 0.0, 0.85, 0.02, 201);
    s.patterns_per_class = 4;
    s.pattern_len_max = 5;
    s.carrier_prob = 0.7;
    return s;
}

SyntheticSpec WaveformSpec() {
    // Waveform: 5000 rows, 21 attributes, 3 classes (discretized ~100 items).
    SyntheticSpec s = MakeUciSpec("waveform", 5000, 21, 3, 5, 0.0, 0.30, 0.12, 202);
    s.patterns_per_class = 4;
    s.carrier_prob = 0.6;
    return s;
}

SyntheticSpec LetterSpec() {
    // Letter recognition: 20000 rows, 16 attributes, 26 classes (~106 items).
    SyntheticSpec s = MakeUciSpec("letter", 20000, 16, 26, 7, 0.0, 0.45, 0.08, 203);
    s.patterns_per_class = 2;
    s.pattern_len_max = 3;
    s.carrier_prob = 0.60;
    s.leak_prob = 0.15;
    // Letters share common strokes: without globally frequent, co-occurring
    // values nothing clears a 15% whole-database support threshold across 26
    // classes.
    s.shared_preference = 0.55;
    s.background_prob = 0.75;
    return s;
}

Result<SyntheticSpec> GetSpecByName(const std::string& name) {
    for (const auto& s : UciTableSpecs()) {
        if (s.name == name) return s;
    }
    if (name == "chess") return ChessSpec();
    if (name == "waveform") return WaveformSpec();
    if (name == "letter") return LetterSpec();
    return Status::NotFound("no synthetic spec named '" + name + "'");
}

}  // namespace dfp
