#include "data/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/string_util.hpp"

namespace dfp {

namespace {

// Resolves a possibly-negative class column index against a column count.
Result<std::size_t> ResolveClassColumn(int class_column, std::size_t num_columns) {
    long idx = class_column;
    if (idx < 0) idx += static_cast<long>(num_columns);
    if (idx < 0 || idx >= static_cast<long>(num_columns)) {
        return Status::InvalidArgument(
            StrFormat("class column %d out of range for %zu columns", class_column,
                      num_columns));
    }
    return static_cast<std::size_t>(idx);
}

}  // namespace

Result<Dataset> ReadCsv(std::istream& in, const CsvOptions& options) {
    std::vector<std::vector<std::string>> rows;
    std::string line;
    std::size_t num_columns = 0;
    while (std::getline(in, line)) {
        if (Trim(line).empty()) continue;
        auto fields = Split(line, options.delimiter);
        for (auto& f : fields) f = std::string(Trim(f));
        if (num_columns == 0) {
            num_columns = fields.size();
        } else if (fields.size() != num_columns) {
            return Status::ParseError(
                StrFormat("row %zu has %zu fields, expected %zu", rows.size() + 1,
                          fields.size(), num_columns));
        }
        rows.push_back(std::move(fields));
    }
    if (rows.empty()) return Status::ParseError("empty CSV input");
    if (num_columns < 2) {
        return Status::ParseError("CSV needs at least one attribute and a class column");
    }

    std::vector<std::string> header;
    if (options.has_header) {
        header = rows.front();
        rows.erase(rows.begin());
        if (rows.empty()) return Status::ParseError("CSV has a header but no data rows");
    } else {
        for (std::size_t c = 0; c < num_columns; ++c) {
            header.push_back(StrFormat("col%zu", c));
        }
    }

    auto class_col_result = ResolveClassColumn(options.class_column, num_columns);
    if (!class_col_result.ok()) return class_col_result.status();
    const std::size_t class_col = *class_col_result;

    // Type inference: numeric iff every cell parses as double.
    std::vector<bool> numeric(num_columns, true);
    for (const auto& row : rows) {
        for (std::size_t c = 0; c < num_columns; ++c) {
            double v = 0.0;
            if (!ParseDouble(row[c], &v)) numeric[c] = false;
        }
    }
    numeric[class_col] = false;

    std::vector<Attribute> schema;
    std::vector<std::size_t> attr_cols;
    for (std::size_t c = 0; c < num_columns; ++c) {
        if (c == class_col) continue;
        Attribute a;
        a.name = header[c];
        a.type = numeric[c] ? AttributeType::kNumeric : AttributeType::kCategorical;
        schema.push_back(std::move(a));
        attr_cols.push_back(c);
    }

    // Collect class names in first-appearance order.
    std::vector<std::string> class_names;
    auto class_code = [&class_names](const std::string& name) -> ClassLabel {
        for (std::size_t i = 0; i < class_names.size(); ++i) {
            if (class_names[i] == name) return static_cast<ClassLabel>(i);
        }
        class_names.push_back(name);
        return static_cast<ClassLabel>(class_names.size() - 1);
    };
    std::vector<ClassLabel> labels;
    labels.reserve(rows.size());
    for (const auto& row : rows) labels.push_back(class_code(row[class_col]));

    Dataset data(std::move(schema), class_names);
    std::vector<double> values(attr_cols.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        for (std::size_t a = 0; a < attr_cols.size(); ++a) {
            const std::string& cell = rows[r][attr_cols[a]];
            if (data.attribute(a).type == AttributeType::kNumeric) {
                double v = 0.0;
                if (!ParseDouble(cell, &v)) {
                    return Status::ParseError(
                        StrFormat("row %zu: '%s' is not numeric", r + 1, cell.c_str()));
                }
                values[a] = v;
            } else {
                values[a] = data.AddAttributeValue(a, cell);
            }
        }
        DFP_RETURN_NOT_OK(data.AddRow(values, labels[r]));
    }
    return data;
}

Result<Dataset> LoadCsvFile(const std::string& path, const CsvOptions& options) {
    std::ifstream in(path);
    if (!in) return Status::NotFound("cannot open file: " + path);
    return ReadCsv(in, options);
}

Status WriteCsv(const Dataset& data, std::ostream& out, char delimiter) {
    for (std::size_t a = 0; a < data.num_attributes(); ++a) {
        out << data.attribute(a).name << delimiter;
    }
    out << "class\n";
    for (std::size_t r = 0; r < data.num_rows(); ++r) {
        for (std::size_t a = 0; a < data.num_attributes(); ++a) {
            out << data.CellToString(r, a) << delimiter;
        }
        out << data.class_names()[data.label(r)] << "\n";
    }
    if (!out) return Status::Internal("CSV write failed");
    return Status::Ok();
}

Status SaveCsvFile(const Dataset& data, const std::string& path, char delimiter) {
    std::ofstream out(path);
    if (!out) return Status::NotFound("cannot open file for writing: " + path);
    return WriteCsv(data, out, delimiter);
}

}  // namespace dfp
