// (attribute, value) → item mapping (Section 2 of the paper).
//
// Every pair (att, val) of a fully-categorical dataset is mapped to a distinct
// item o_i ∈ I. A row then becomes the set of items it satisfies — exactly one
// item per attribute — turning the table into a transaction database over
// which frequent itemsets are mined.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "data/dataset.hpp"

namespace dfp {

using ItemId = std::uint32_t;

/// Bidirectional mapping between (attribute, value-code) pairs and item ids.
/// Item ids are dense: 0..num_items()-1, ordered by (attribute, value).
class ItemEncoder {
  public:
    ItemEncoder() = default;

    /// Builds the mapping from a fully-categorical schema. Constant
    /// attributes (arity < 2) are skipped — they would map to an item present
    /// in every transaction, which carries no information and pollutes every
    /// closed pattern. Returns FailedPrecondition if any attribute is numeric.
    static Result<ItemEncoder> FromSchema(const Dataset& data);

    /// True if attribute `attr` produces no items (constant column).
    bool IsSkipped(std::size_t attr) const { return skipped_[attr]; }

    std::size_t num_items() const { return item_names_.size(); }
    std::size_t num_attributes() const { return offsets_.size(); }

    /// Item id for (attribute, value-code).
    ItemId Encode(std::size_t attr, std::uint32_t code) const {
        return offsets_[attr] + code;
    }

    /// Inverse of Encode: (attribute index, value code) of an item.
    std::pair<std::size_t, std::uint32_t> Decode(ItemId item) const;

    /// "attribute=value" display name of an item.
    const std::string& ItemName(ItemId item) const { return item_names_[item]; }

    /// Encodes one row into its (sorted) item list: one item per attribute.
    std::vector<ItemId> EncodeRow(const Dataset& data, std::size_t row) const;

  private:
    std::vector<ItemId> offsets_;         // first item id of each attribute
    std::vector<bool> skipped_;            // constant attributes (no items)
    std::vector<std::string> item_names_;  // display names, by item id
};

}  // namespace dfp
