#include "data/chimerge.hpp"

#include <algorithm>
#include <limits>

#include "common/string_util.hpp"

namespace dfp {

double ChiSquareOfPair(const std::vector<std::size_t>& left,
                       const std::vector<std::size_t>& right) {
    const std::size_t classes = left.size();
    double n_left = 0.0;
    double n_right = 0.0;
    std::vector<double> column(classes, 0.0);
    for (std::size_t c = 0; c < classes; ++c) {
        n_left += static_cast<double>(left[c]);
        n_right += static_cast<double>(right[c]);
        column[c] = static_cast<double>(left[c] + right[c]);
    }
    const double total = n_left + n_right;
    if (total <= 0.0) return 0.0;
    double chi2 = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
        const double e_left = n_left * column[c] / total;
        const double e_right = n_right * column[c] / total;
        if (e_left > 0.0) {
            const double d = static_cast<double>(left[c]) - e_left;
            chi2 += d * d / e_left;
        }
        if (e_right > 0.0) {
            const double d = static_cast<double>(right[c]) - e_right;
            chi2 += d * d / e_right;
        }
    }
    return chi2;
}

double ChiSquareCritical(double significance, std::size_t df) {
    df = std::min<std::size_t>(std::max<std::size_t>(df, 1), 10);
    static const double k90[] = {2.706, 4.605, 6.251, 7.779, 9.236,
                                 10.645, 12.017, 13.362, 14.684, 15.987};
    static const double k95[] = {3.841, 5.991, 7.815, 9.488, 11.070,
                                 12.592, 14.067, 15.507, 16.919, 18.307};
    static const double k99[] = {6.635, 9.210, 11.345, 13.277, 15.086,
                                 16.812, 18.475, 20.090, 21.666, 23.209};
    const double* table = k95;
    if (significance <= 0.90) {
        table = k90;
    } else if (significance >= 0.99) {
        table = k99;
    }
    return table[df - 1];
}

std::string ChiMergeDiscretizer::Name() const {
    return StrFormat("chimerge:%.2f", config_.significance);
}

std::vector<double> ChiMergeDiscretizer::FindCutPoints(
    const std::vector<double>& values, const std::vector<ClassLabel>& labels,
    std::size_t num_classes) const {
    if (values.size() < 2) return {};

    // Initial intervals: one per distinct value, with class histograms.
    struct Interval {
        double lo;                        // smallest value in the interval
        std::vector<std::size_t> counts;  // class histogram
    };
    std::vector<std::pair<double, ClassLabel>> sorted(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
        sorted[i] = {values[i], labels[i]};
    }
    std::sort(sorted.begin(), sorted.end());

    std::vector<Interval> intervals;
    for (const auto& [v, y] : sorted) {
        if (intervals.empty() || intervals.back().lo != v) {
            intervals.push_back({v, std::vector<std::size_t>(num_classes, 0)});
        }
        intervals.back().counts[y]++;
    }
    if (intervals.size() <= config_.min_intervals) return {};

    const double threshold =
        ChiSquareCritical(config_.significance, num_classes - 1);
    while (intervals.size() > config_.min_intervals) {
        // Find the adjacent pair with the smallest χ².
        double best_chi2 = std::numeric_limits<double>::infinity();
        std::size_t best = 0;
        for (std::size_t i = 0; i + 1 < intervals.size(); ++i) {
            const double chi2 =
                ChiSquareOfPair(intervals[i].counts, intervals[i + 1].counts);
            if (chi2 < best_chi2) {
                best_chi2 = chi2;
                best = i;
            }
        }
        const bool over_budget = intervals.size() > config_.max_intervals;
        if (best_chi2 > threshold && !over_budget) break;
        // Merge best and best+1.
        for (std::size_t c = 0; c < num_classes; ++c) {
            intervals[best].counts[c] += intervals[best + 1].counts[c];
        }
        intervals.erase(intervals.begin() + static_cast<std::ptrdiff_t>(best) + 1);
    }

    std::vector<double> cuts;
    for (std::size_t i = 1; i < intervals.size(); ++i) {
        cuts.push_back(intervals[i].lo);
    }
    return cuts;
}

}  // namespace dfp
