// Window pattern maintenance: mine the current sliding window, two ways.
//
// The streaming trainer needs frequent itemsets over the live window on every
// retrain. Two strategies implement one interface (DESIGN.md §16):
//
//  * RemineWindowMiner — materialize the window as a TransactionDatabase and
//    run an arena miner from scratch. Zero maintenance cost per append, full
//    mining cost per retrain; benefits from everything PR 4 did to the
//    mining core.
//  * IncrementalWindowMiner — maintain a CanTree (Leung et al.): an FP-tree
//    whose paths follow the FIXED ascending ItemId order instead of the
//    support-descending order. Support order changes as the window slides,
//    which would force restructuring; canonical order never changes, so
//    inserting or evicting a transaction is one O(length) path walk with
//    count increments/decrements. Mining pattern-grows directly off the
//    maintained tree — no window re-scan, no tree rebuild.
//
// Both produce IDENTICAL pattern sets (items + exact window support) for the
// same window and MinerConfig — certified over 20 seeded streams by
// tests/stream/window_miner_test.cpp, benchmarked by bench/bench_stream.cpp.
// Semantics are all-frequent-itemsets (FP-growth's), not closed.
//
// Removals must be exact: Evict() expects a transaction currently in the
// window (canonicalized), which FIFO window eviction guarantees.
//
// Not thread-safe; the owner serializes Insert/Evict/MineWindow (the
// ContinuousTrainer holds its own mutex across them).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "fpm/miner.hpp"

namespace dfp::stream {

class WindowMiner {
  public:
    virtual ~WindowMiner() = default;

    /// "remine" or "incremental".
    virtual std::string Name() const = 0;

    /// Adds one canonical (sorted, duplicate-free) transaction.
    virtual void Insert(const std::vector<ItemId>& txn) = 0;

    /// Removes one transaction previously inserted and not yet evicted.
    virtual void Evict(const std::vector<ItemId>& txn) = 0;

    /// Transactions currently represented.
    virtual std::size_t size() const = 0;

    /// Mines all frequent itemsets of the current window. Honours
    /// config.min_sup_rel/min_sup_abs (resolved against size()),
    /// include_singletons, max_pattern_len and max_patterns; budgets are not
    /// consulted (window mining is bounded by the window itself). Patterns
    /// carry items + exact window support; order is unspecified.
    virtual Result<std::vector<Pattern>> MineWindow(const MinerConfig& config) = 0;
};

enum class WindowMinerKind { kRemine, kIncremental };

const char* WindowMinerKindName(WindowMinerKind kind);

/// `num_items` bounds the item universe (CanTree header table size).
std::unique_ptr<WindowMiner> MakeWindowMiner(WindowMinerKind kind,
                                             std::size_t num_items);

}  // namespace dfp::stream
