#include "stream/streaming_db.hpp"

#include <algorithm>
#include <cmath>

#include "common/string_util.hpp"
#include "obs/metrics.hpp"

namespace dfp::stream {

StreamingDatabase::StreamingDatabase(StreamConfig config)
    : config_(config) {
    if (config_.compact_every == 0) {
        config_.compact_every = config_.window_capacity;
    }
}

Status StreamingDatabase::ValidateConfig(const StreamConfig& config) {
    if (config.num_items == 0) {
        return Status::InvalidArgument("stream config needs num_items > 0");
    }
    if (config.num_classes == 0) {
        return Status::InvalidArgument("stream config needs num_classes > 0");
    }
    if (config.window_capacity == 0) {
        return Status::InvalidArgument(
            "stream config needs window_capacity > 0");
    }
    if (config.decay_half_life < 0.0) {
        return Status::InvalidArgument("decay_half_life must be >= 0");
    }
    if (config.decay_half_life > 0.0 && config.decay_quantum == 0) {
        return Status::InvalidArgument("decay_quantum must be > 0");
    }
    return Status::Ok();
}

Result<std::unique_ptr<StreamingDatabase>> StreamingDatabase::Create(
    StreamConfig config) {
    DFP_RETURN_NOT_OK(ValidateConfig(config));
    return std::make_unique<StreamingDatabase>(config);
}

Result<AppendResult> StreamingDatabase::Append(TransactionBatch batch) {
    if (batch.transactions.size() != batch.labels.size()) {
        return Status::InvalidArgument(
            StrFormat("batch has %zu transactions but %zu labels",
                      batch.transactions.size(), batch.labels.size()));
    }
    // Validate + canonicalize before taking the lock; a bad row rejects the
    // whole batch (appends are all-or-nothing, like FromTransactionsChecked).
    for (std::size_t t = 0; t < batch.size(); ++t) {
        auto& txn = batch.transactions[t];
        std::sort(txn.begin(), txn.end());
        txn.erase(std::unique(txn.begin(), txn.end()), txn.end());
        if (!txn.empty() && txn.back() >= config_.num_items) {
            return Status::InvalidArgument(
                StrFormat("batch row %zu: item id %u >= num_items %zu", t,
                          static_cast<unsigned>(txn.back()), config_.num_items));
        }
        if (batch.labels[t] >= config_.num_classes) {
            return Status::InvalidArgument(
                StrFormat("batch row %zu: label %u >= num_classes %zu", t,
                          static_cast<unsigned>(batch.labels[t]),
                          config_.num_classes));
        }
    }

    std::lock_guard<std::mutex> lock(mu_);
    AppendResult result;
    result.first_seq = next_seq_;
    for (std::size_t t = 0; t < batch.size(); ++t) {
        rows_.push_back(Entry{std::move(batch.transactions[t]), batch.labels[t]});
    }
    next_seq_ += batch.size();
    delta_rows_ += batch.size();
    ++version_;
    result.version = version_;

    // FIFO eviction: advance the window start past capacity and hand the
    // evicted rows back (they stay in the log until compaction).
    while (next_seq_ - window_begin_seq_ > config_.window_capacity) {
        const std::size_t idx =
            static_cast<std::size_t>(window_begin_seq_ - retained_first_seq_);
        result.evicted.transactions.push_back(rows_[idx].items);
        result.evicted.labels.push_back(rows_[idx].label);
        ++window_begin_seq_;
    }

    if (delta_rows_ >= config_.compact_every) CompactLocked();
    auto& registry = obs::Registry::Get();
    registry.GetCounter("dfp.stream.appended_total").Inc(batch.size());
    registry.GetCounter("dfp.stream.evicted_total")
        .Inc(result.evicted.size());
    PublishGaugesLocked();
    return result;
}

std::size_t StreamingDatabase::WindowSizeLocked() const {
    return static_cast<std::size_t>(next_seq_ - window_begin_seq_);
}

std::shared_ptr<const TransactionDatabase> StreamingDatabase::BuildWindowLocked()
    const {
    const std::size_t begin =
        static_cast<std::size_t>(window_begin_seq_ - retained_first_seq_);
    std::vector<std::vector<ItemId>> txns;
    std::vector<ClassLabel> labels;
    const std::size_t n = WindowSizeLocked();
    txns.reserve(n);
    labels.reserve(n);
    for (std::size_t k = begin; k < rows_.size(); ++k) {
        txns.push_back(rows_[k].items);
        labels.push_back(rows_[k].label);
    }
    return std::make_shared<const TransactionDatabase>(
        TransactionDatabase::FromTransactions(std::move(txns), std::move(labels),
                                              config_.num_items,
                                              config_.num_classes));
}

std::shared_ptr<const TransactionDatabase> StreamingDatabase::SnapshotWindow()
    const {
    std::lock_guard<std::mutex> lock(mu_);
    if (window_cache_version_ != version_ || window_cache_ == nullptr) {
        window_cache_ = BuildWindowLocked();
        window_cache_version_ = version_;
    }
    return window_cache_;
}

Result<TransactionDatabase> StreamingDatabase::SnapshotDecayed() const {
    if (config_.decay_half_life <= 0.0) {
        return Status::FailedPrecondition(
            "decayed view disabled (decay_half_life == 0)");
    }
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t begin =
        static_cast<std::size_t>(window_begin_seq_ - retained_first_seq_);
    std::vector<std::vector<ItemId>> txns;
    std::vector<ClassLabel> labels;
    for (std::size_t k = begin; k < rows_.size(); ++k) {
        // Newest row (last) has age 0; the quantized replica count rounds the
        // decayed weight to the nearest 1/quantum.
        const double age = static_cast<double>(rows_.size() - 1 - k);
        const double weight =
            std::pow(0.5, age / config_.decay_half_life);
        const auto replicas = static_cast<std::uint32_t>(std::llround(
            weight * static_cast<double>(config_.decay_quantum)));
        for (std::uint32_t r = 0; r < replicas; ++r) {
            txns.push_back(rows_[k].items);
            labels.push_back(rows_[k].label);
        }
    }
    return TransactionDatabase::FromTransactions(std::move(txns),
                                                 std::move(labels),
                                                 config_.num_items,
                                                 config_.num_classes);
}

TransactionBatch StreamingDatabase::WindowContents() const {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t begin =
        static_cast<std::size_t>(window_begin_seq_ - retained_first_seq_);
    TransactionBatch out;
    out.transactions.reserve(rows_.size() - begin);
    out.labels.reserve(rows_.size() - begin);
    for (std::size_t k = begin; k < rows_.size(); ++k) {
        out.transactions.push_back(rows_[k].items);
        out.labels.push_back(rows_[k].label);
    }
    return out;
}

Result<TransactionBatch> StreamingDatabase::ReplaySince(std::uint64_t seq) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (seq < retained_first_seq_) {
        return Status::OutOfRange(
            StrFormat("seq %llu predates the oldest retained row %llu "
                      "(compacted away)",
                      static_cast<unsigned long long>(seq),
                      static_cast<unsigned long long>(retained_first_seq_)));
    }
    TransactionBatch out;
    if (seq >= next_seq_) return out;
    const std::size_t begin = static_cast<std::size_t>(seq - retained_first_seq_);
    out.transactions.reserve(rows_.size() - begin);
    out.labels.reserve(rows_.size() - begin);
    for (std::size_t k = begin; k < rows_.size(); ++k) {
        out.transactions.push_back(rows_[k].items);
        out.labels.push_back(rows_[k].label);
    }
    return out;
}

void StreamingDatabase::CompactLocked() {
    // Drop the logically-evicted prefix and fold the window into the cached
    // TransactionDatabase, so the next snapshot is free.
    const std::size_t drop =
        static_cast<std::size_t>(window_begin_seq_ - retained_first_seq_);
    rows_.erase(rows_.begin(),
                rows_.begin() + static_cast<std::ptrdiff_t>(drop));
    retained_first_seq_ = window_begin_seq_;
    delta_rows_ = 0;
    ++compactions_;
    window_cache_ = BuildWindowLocked();
    window_cache_version_ = version_;
}

void StreamingDatabase::PublishGaugesLocked() const {
    auto& registry = obs::Registry::Get();
    registry.GetGauge("dfp.stream.window_size")
        .Set(static_cast<double>(WindowSizeLocked()));
    registry.GetGauge("dfp.stream.retained_rows")
        .Set(static_cast<double>(rows_.size()));
    registry.GetGauge("dfp.stream.version").Set(static_cast<double>(version_));
    registry.GetGauge("dfp.stream.compactions")
        .Set(static_cast<double>(compactions_));
}

std::uint64_t StreamingDatabase::version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return version_;
}

std::uint64_t StreamingDatabase::total_appended() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_seq_;
}

std::size_t StreamingDatabase::window_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return WindowSizeLocked();
}

std::uint64_t StreamingDatabase::window_first_seq() const {
    std::lock_guard<std::mutex> lock(mu_);
    return window_begin_seq_;
}

std::uint64_t StreamingDatabase::compactions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return compactions_;
}

std::size_t StreamingDatabase::retained_rows() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rows_.size();
}

}  // namespace dfp::stream
