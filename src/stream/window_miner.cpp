#include "stream/window_miner.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

#include "common/string_util.hpp"
#include "data/transaction_db.hpp"
#include "fpm/fpgrowth.hpp"
#include "obs/metrics.hpp"

namespace dfp::stream {

namespace {

// ---------------------------------------------------------------------------
// Remine: keep the raw window, rebuild a TransactionDatabase and run the
// arena FP-growth miner per MineWindow call.
// ---------------------------------------------------------------------------
class RemineWindowMiner final : public WindowMiner {
  public:
    explicit RemineWindowMiner(std::size_t num_items) : num_items_(num_items) {}

    std::string Name() const override { return "remine"; }

    void Insert(const std::vector<ItemId>& txn) override {
        window_.push_back(txn);
    }

    void Evict(const std::vector<ItemId>& txn) override {
        // Window eviction is FIFO, so the front matches in practice; fall
        // back to a linear scan so out-of-order removal stays correct.
        if (!window_.empty() && window_.front() == txn) {
            window_.pop_front();
            return;
        }
        const auto it = std::find(window_.begin(), window_.end(), txn);
        assert(it != window_.end() && "evicting a transaction not in the window");
        if (it != window_.end()) window_.erase(it);
    }

    std::size_t size() const override { return window_.size(); }

    Result<std::vector<Pattern>> MineWindow(const MinerConfig& config) override {
        std::vector<std::vector<ItemId>> txns(window_.begin(), window_.end());
        std::vector<ClassLabel> labels(txns.size(), 0);
        const TransactionDatabase db = TransactionDatabase::FromTransactions(
            std::move(txns), std::move(labels), num_items_, /*num_classes=*/1);
        MinerConfig strict = config;
        strict.budget = ExecutionBudget{};  // window mining is window-bounded
        return FpGrowthMiner().Mine(db, strict);
    }

  private:
    std::size_t num_items_;
    std::deque<std::vector<ItemId>> window_;
};

// ---------------------------------------------------------------------------
// Incremental: CanTree maintenance + pattern growth off the maintained tree.
//
// Paths follow ascending ItemId order, so every canonical transaction maps
// to exactly one root→node path: Insert/Evict are one walk with count
// updates, never a restructure. Nodes whose count drops to zero are kept in
// place (skipped while mining) and garbage-collected by a rebuild when they
// outnumber the live nodes.
// ---------------------------------------------------------------------------
class IncrementalWindowMiner final : public WindowMiner {
  public:
    explicit IncrementalWindowMiner(std::size_t num_items)
        : num_items_(num_items),
          item_support_(num_items, 0),
          header_(num_items) {
        nodes_.push_back(Node{});  // root (item == kNoItem, count unused)
    }

    std::string Name() const override { return "incremental"; }

    void Insert(const std::vector<ItemId>& txn) override {
        std::uint32_t cur = 0;
        for (const ItemId item : txn) {
            cur = ChildOrCreate(cur, item);
            Node& node = nodes_[cur];
            if (node.count == 0) --zero_nodes_;
            ++node.count;
            ++item_support_[item];
        }
        ++size_;
    }

    void Evict(const std::vector<ItemId>& txn) override {
        std::uint32_t cur = 0;
        for (const ItemId item : txn) {
            const std::uint32_t child = FindChild(cur, item);
            assert(child != 0 && "evicting a transaction not in the tree");
            if (child == 0) return;
            Node& node = nodes_[child];
            assert(node.count > 0);
            --node.count;
            if (node.count == 0) ++zero_nodes_;
            --item_support_[item];
            cur = child;
        }
        assert(size_ > 0);
        --size_;
        MaybeGarbageCollect();
    }

    std::size_t size() const override { return size_; }

    Result<std::vector<Pattern>> MineWindow(const MinerConfig& config) override {
        const std::size_t min_sup = ResolveMinSup(config, size_);
        const std::size_t max_len = config.max_pattern_len;
        std::vector<Pattern> patterns;
        std::vector<ItemId> suffix;  // chosen items, descending
        scratch_.assign(num_items_, 0);

        for (ItemId i = 0; i < num_items_; ++i) {
            if (item_support_[i] < min_sup) continue;
            if (config.include_singletons && max_len >= 1) {
                Pattern p;
                p.items = {i};
                p.support = item_support_[i];
                patterns.push_back(std::move(p));
                if (patterns.size() > config.max_patterns) break;
            }
            if (max_len < 2) continue;
            // Conditional pattern base of i: for every live node holding i,
            // the ancestor items (all < i) with that node's count.
            Base base;
            for (const std::uint32_t idx : header_[i]) {
                const Node& node = nodes_[idx];
                if (node.count == 0) continue;
                BasePath path;
                path.count = node.count;
                for (std::uint32_t a = node.parent; a != 0;
                     a = nodes_[a].parent) {
                    path.items.push_back(nodes_[a].item);
                }
                if (path.items.empty()) continue;
                std::reverse(path.items.begin(), path.items.end());
                base.push_back(std::move(path));
            }
            suffix.assign(1, i);
            const Status st =
                MineBase(base, min_sup, max_len, config.max_patterns, &suffix,
                         &patterns);
            if (!st.ok()) return st;
            if (patterns.size() > config.max_patterns) break;
        }
        if (patterns.size() > config.max_patterns) {
            return Status::ResourceExhausted(
                StrFormat("window mining exceeded max_patterns %zu",
                          config.max_patterns));
        }
        obs::Registry::Get()
            .GetGauge("dfp.stream.cantree_nodes")
            .Set(static_cast<double>(nodes_.size() - 1));
        return patterns;
    }

  private:
    static constexpr ItemId kNoItem = ~ItemId{0};

    struct Node {
        ItemId item = kNoItem;
        std::uint32_t count = 0;
        std::uint32_t parent = 0;
        /// Children sorted by item for binary-search descent.
        std::vector<std::pair<ItemId, std::uint32_t>> children;
    };

    struct BasePath {
        std::vector<ItemId> items;  // ascending, all < the conditioned item
        std::uint64_t count = 0;
    };
    using Base = std::vector<BasePath>;

    std::uint32_t FindChild(std::uint32_t parent, ItemId item) const {
        const auto& kids = nodes_[parent].children;
        const auto it = std::lower_bound(
            kids.begin(), kids.end(), item,
            [](const auto& kv, ItemId want) { return kv.first < want; });
        return (it != kids.end() && it->first == item) ? it->second : 0;
    }

    std::uint32_t ChildOrCreate(std::uint32_t parent, ItemId item) {
        if (const std::uint32_t found = FindChild(parent, item); found != 0) {
            return found;
        }
        const auto idx = static_cast<std::uint32_t>(nodes_.size());
        nodes_.push_back(Node{item, 0, parent, {}});
        ++zero_nodes_;
        auto& kids = nodes_[parent].children;
        kids.insert(std::lower_bound(kids.begin(), kids.end(), item,
                                     [](const auto& kv, ItemId want) {
                                         return kv.first < want;
                                     }),
                    {item, idx});
        header_[item].push_back(idx);
        return idx;
    }

    /// Pattern growth over a conditional base: every frequent item j in the
    /// base extends the suffix; recursion conditions the base on j (prefix
    /// items < j). Emitted items are ascending because suffix is descending.
    Status MineBase(const Base& base, std::size_t min_sup, std::size_t max_len,
                    std::size_t max_patterns, std::vector<ItemId>* suffix,
                    std::vector<Pattern>* patterns) {
        // Weighted item frequencies within the base (scratch_ is shared
        // across recursion levels; each level resets only what it touched).
        std::vector<ItemId> touched;
        for (const BasePath& path : base) {
            for (const ItemId j : path.items) {
                if (scratch_[j] == 0) touched.push_back(j);
                scratch_[j] += path.count;
            }
        }
        std::sort(touched.begin(), touched.end());
        std::vector<std::pair<ItemId, std::uint64_t>> frequent;
        for (const ItemId j : touched) {
            if (scratch_[j] >= min_sup) frequent.emplace_back(j, scratch_[j]);
            scratch_[j] = 0;
        }

        for (const auto& [j, freq] : frequent) {
            Pattern p;
            p.items.reserve(suffix->size() + 1);
            p.items.push_back(j);
            p.items.insert(p.items.end(), suffix->rbegin(), suffix->rend());
            p.support = freq;
            patterns->push_back(std::move(p));
            if (patterns->size() > max_patterns) {
                return Status::ResourceExhausted(
                    StrFormat("window mining exceeded max_patterns %zu",
                              max_patterns));
            }
            if (suffix->size() + 1 >= max_len) continue;
            Base conditioned;
            for (const BasePath& path : base) {
                const auto it = std::lower_bound(path.items.begin(),
                                                 path.items.end(), j);
                if (it == path.items.end() || *it != j ||
                    it == path.items.begin()) {
                    continue;
                }
                conditioned.push_back(
                    BasePath{{path.items.begin(), it}, path.count});
            }
            if (conditioned.empty()) continue;
            suffix->push_back(j);
            const Status st = MineBase(conditioned, min_sup, max_len,
                                       max_patterns, suffix, patterns);
            suffix->pop_back();
            if (!st.ok()) return st;
        }
        return Status::Ok();
    }

    /// Rebuilds the tree from its live paths once dead (zero-count) nodes
    /// dominate, reclaiming memory after heavy churn. O(live tree).
    void MaybeGarbageCollect() {
        if (nodes_.size() < 64 || zero_nodes_ * 2 < nodes_.size()) return;
        // A node's "terminal count" (count minus the sum of child counts) is
        // the number of window transactions ending exactly there; re-insert
        // each terminal path into a fresh tree.
        std::vector<std::pair<std::vector<ItemId>, std::uint64_t>> live_paths;
        std::vector<ItemId> path;
        CollectLive(0, &path, &live_paths);

        nodes_.clear();
        nodes_.push_back(Node{});
        for (auto& lists : header_) lists.clear();
        std::fill(item_support_.begin(), item_support_.end(), 0);
        zero_nodes_ = 0;
        const std::size_t restored = size_;
        size_ = 0;
        for (const auto& [items, count] : live_paths) {
            for (std::uint64_t c = 0; c < count; ++c) Insert(items);
        }
        assert(size_ == restored);
        (void)restored;
        obs::Registry::Get().GetCounter("dfp.stream.cantree_gcs").Inc();
    }

    void CollectLive(
        std::uint32_t idx, std::vector<ItemId>* path,
        std::vector<std::pair<std::vector<ItemId>, std::uint64_t>>* out) const {
        const Node& node = nodes_[idx];
        std::uint64_t child_total = 0;
        for (const auto& [item, child] : node.children) {
            (void)item;
            if (nodes_[child].count == 0) continue;
            path->push_back(nodes_[child].item);
            CollectLive(child, path, out);
            path->pop_back();
            child_total += nodes_[child].count;
        }
        if (idx != 0 && node.count > child_total) {
            out->emplace_back(*path, node.count - child_total);
        }
    }

    std::size_t num_items_;
    std::size_t size_ = 0;
    std::vector<Node> nodes_;
    std::vector<std::uint64_t> item_support_;
    std::vector<std::vector<std::uint32_t>> header_;  ///< per-item node lists
    std::size_t zero_nodes_ = 0;
    std::vector<std::uint64_t> scratch_;  ///< per-mine item-frequency scratch
};

}  // namespace

const char* WindowMinerKindName(WindowMinerKind kind) {
    switch (kind) {
        case WindowMinerKind::kRemine: return "remine";
        case WindowMinerKind::kIncremental: return "incremental";
    }
    return "unknown";
}

std::unique_ptr<WindowMiner> MakeWindowMiner(WindowMinerKind kind,
                                             std::size_t num_items) {
    switch (kind) {
        case WindowMinerKind::kRemine:
            return std::make_unique<RemineWindowMiner>(num_items);
        case WindowMinerKind::kIncremental:
            return std::make_unique<IncrementalWindowMiner>(num_items);
    }
    return nullptr;
}

}  // namespace dfp::stream
