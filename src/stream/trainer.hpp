// Continuous retraining: stream → window mine → train → hot reload.
//
// The ContinuousTrainer closes the loop between the StreamingDatabase and the
// serving ModelRegistry (DESIGN.md §16):
//
//   Ingest(batch)        appends to the stream, keeps the WindowMiner in sync
//                        with the sliding window (insert + evict), and feeds
//                        the DriftDetector prequentially: every labelled row
//                        is scored by the *served* model before it becomes
//                        training data (test-then-train), so live accuracy is
//                        measured on data the model has never seen.
//   MaybeRetrain()       the pump. Retrains when (in priority order) a prior
//                        retrain is awaiting retry, no model is serving yet
//                        (bootstrap), the row-count schedule fires
//                        (retrain_every), or the DriftDetector reports drift.
//   RetrainNow(trigger)  mines the window incrementally, runs the pipeline's
//                        selection → transform → learn tail
//                        (TrainWithCandidates), persists a versioned bundle
//                        and publishes it through ModelRegistry::Reload() —
//                        the same validate-then-swap path operators use, so
//                        every streaming model passes the same gauntlet. A
//                        failed reload (e.g. an injected failpoint) leaves
//                        the previous version serving and arms a retry; the
//                        next pump tries again.
//
// Threading: Ingest and MaybeRetrain may be called from different threads.
// The heavy train/save/reload work runs outside the ingest mutex, so
// appending never stalls behind a retrain; retrains themselves serialize.
// Serving reads only the registry and is never blocked by any of this.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.hpp"
#include "core/pipeline.hpp"
#include "serve/registry.hpp"
#include "stream/drift.hpp"
#include "stream/streaming_db.hpp"
#include "stream/window_miner.hpp"

namespace dfp::stream {

struct ContinuousTrainerConfig {
    /// Selection / transform / learn knobs; `pipeline.miner` also supplies
    /// the window-mining parameters (min_sup, max_pattern_len, ...).
    PipelineConfig pipeline;
    /// Learner TypeId for every retrain ("nb", "svm", "c4.5", "pegasos").
    std::string learner_type = "nb";
    /// Window pattern maintenance strategy. Remine is the default: on
    /// window-sized workloads bench_stream measured mining a fresh
    /// descending-frequency FP-tree 1.5-2x faster than mining the
    /// incrementally maintained CanTree, whose fixed item order leaves
    /// bushier conditional bases (see BENCH_stream.json / DESIGN.md §16).
    /// The incremental path stays available for eviction-heavy windows where
    /// O(row) maintenance matters more than per-mine speed; the
    /// golden-equivalence suite certifies both emit identical pattern sets.
    WindowMinerKind window_miner = WindowMinerKind::kRemine;
    /// Scheduled retraining: rows ingested between retrains (0 = drift/
    /// bootstrap only). Row counts, not wall clock, keep tests deterministic.
    std::size_t retrain_every = 0;
    /// Minimum window size before any retrain (schedule or drift).
    std::size_t min_window = 64;
    /// Consult the DriftDetector in MaybeRetrain().
    bool drift_trigger = true;
    DriftDetectorConfig drift;
    /// Train on SnapshotDecayed() instead of the plain window (requires
    /// decay_half_life > 0 in the stream config).
    bool use_decayed_snapshot = false;
    /// Directory for versioned model bundles (stream_model_v<N>.dfp).
    std::string model_dir;
    /// ModelRegistry::Reload attempts per retrain before arming a retry.
    std::size_t max_reload_attempts = 1;
};

struct TrainerStats {
    std::uint64_t ingested = 0;          ///< rows accepted by Ingest
    std::uint64_t retrains = 0;          ///< successful train+publish cycles
    std::uint64_t retrain_failures = 0;  ///< failed cycles (retry armed)
    std::uint64_t drift_triggers = 0;
    std::uint64_t schedule_triggers = 0;
    std::uint64_t last_stream_version = 0;  ///< stream version last trained on
    std::uint64_t last_model_version = 0;   ///< registry version last published
    /// Candidates the significance filter rejected in the last retrain
    /// (0 when pipeline.significance.test == kNone; stats/significance.hpp).
    std::uint64_t last_sig_rejected = 0;
    double last_retrain_seconds = 0.0;
    bool retry_pending = false;
};

class ContinuousTrainer {
  public:
    /// `db` and `registry` must outlive the trainer; all stream appends must
    /// go through Ingest so the window miner stays in sync.
    static Result<std::unique_ptr<ContinuousTrainer>> Create(
        ContinuousTrainerConfig config, StreamingDatabase* db,
        serve::ModelRegistry* registry);

    /// Appends one labelled batch. Scores each row against the served model
    /// first (prequential drift signal), then inserts into the stream and
    /// the window miner. Returns the stream's AppendResult.
    Result<AppendResult> Ingest(TransactionBatch batch);

    /// Retrains if a trigger is armed (retry > bootstrap > schedule > drift).
    /// Returns true when a retrain ran and published, false when nothing
    /// triggered, and the failure Status when a triggered retrain failed
    /// (the previous model keeps serving; the retry stays armed).
    Result<bool> MaybeRetrain();

    /// Unconditional retrain; `trigger` labels the run in logs/metrics.
    Status RetrainNow(const std::string& trigger);

    /// Current drift verdict (also exports the drift gauges).
    DriftVerdict CheckDrift() const;

    TrainerStats stats() const;
    const ContinuousTrainerConfig& config() const { return config_; }

  private:
    ContinuousTrainer(ContinuousTrainerConfig config, StreamingDatabase* db,
                      serve::ModelRegistry* registry);

    std::string ModelPath(std::uint64_t stream_version) const;

    ContinuousTrainerConfig config_;
    StreamingDatabase* db_;
    serve::ModelRegistry* registry_;

    /// Guards miner_, drift_, stats_, rows_since_retrain_, retry_pending_
    /// and scratch_. Held for O(batch)/O(window-mine) work only — never for
    /// training or reloads.
    mutable std::mutex mu_;
    std::unique_ptr<WindowMiner> miner_;
    DriftDetector drift_;
    serve::PatternMatchIndex::Scratch scratch_;  ///< prequential scoring
    TrainerStats stats_;
    std::size_t rows_since_retrain_ = 0;
    bool retry_pending_ = false;

    std::mutex retrain_mu_;  ///< serializes RetrainNow end to end
};

}  // namespace dfp::stream
