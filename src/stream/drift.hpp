// Concept-drift detection over the live stream (DESIGN.md §16).
//
// Two cheap, deterministic signals, both computed from what the serving path
// already produces:
//
//  * Prequential accuracy drop — every labelled transaction is scored by the
//    currently served model *before* it enters the training window
//    (test-then-train). A rolling window of correctness bits estimates live
//    accuracy; when it falls more than `accuracy_drop` below the baseline
//    recorded at the last retrain, the stream has drifted.
//  * Class-distribution shift — the total-variation distance between the
//    rolling label histogram and the baseline class distribution. Catches
//    prior drift even when the model still happens to score well (and drift
//    before any model is serving, when no accuracy signal exists).
//
// The detector is a pure accumulator: ObservePrediction/ObserveLabel feed it,
// Check() renders a verdict, SetBaseline()+ResetRecent() re-arm it after a
// retrain. It never triggers before `min_observations` labels, so a fresh
// window can't alarm on noise. Not thread-safe — the ContinuousTrainer
// serializes access under its own mutex.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "data/transaction_db.hpp"

namespace dfp::stream {

struct DriftDetectorConfig {
    /// Rolling-window length (observations) for both signals.
    std::size_t window = 256;
    /// Labels required in the rolling window before Check() may trigger.
    std::size_t min_observations = 64;
    /// Trigger when recent accuracy < baseline accuracy - accuracy_drop.
    /// Negative disables the accuracy signal.
    double accuracy_drop = 0.15;
    /// Trigger when TV(recent labels, baseline labels) exceeds this.
    /// Negative disables the class-shift signal.
    double class_shift = 0.30;
};

struct DriftVerdict {
    bool drifted = false;
    /// "accuracy_drop", "class_shift", or "" when not drifted.
    std::string reason;
    double recent_accuracy = -1.0;  ///< -1 when no predictions observed
    double class_shift = 0.0;       ///< TV distance; 0 without a baseline
};

class DriftDetector {
  public:
    DriftDetector(DriftDetectorConfig config, std::size_t num_classes);

    /// Feeds one prequential outcome (served prediction vs true label).
    void ObservePrediction(bool correct);

    /// Feeds one arriving label (label < num_classes, enforced upstream).
    void ObserveLabel(ClassLabel label);

    /// Records the post-retrain reference: training-window accuracy and
    /// class distribution (normalized internally; pass raw counts or
    /// frequencies). Until the first baseline only the observation-count
    /// guard applies and Check() never triggers.
    void SetBaseline(double accuracy, std::vector<double> class_distribution);

    /// Clears the rolling windows (call after a retrain: the old stream's
    /// mistakes must not indict the new model).
    void ResetRecent();

    DriftVerdict Check() const;

    /// Rolling accuracy (-1 when no predictions observed yet).
    double recent_accuracy() const;
    /// Rolling label histogram, normalized (all zeros when empty).
    std::vector<double> RecentClassDistribution() const;
    std::size_t labels_observed() const { return recent_labels_.size(); }
    bool has_baseline() const { return has_baseline_; }

  private:
    double ClassShiftLocked() const;

    DriftDetectorConfig config_;
    std::size_t num_classes_;

    std::deque<std::uint8_t> recent_correct_;
    std::size_t correct_sum_ = 0;
    std::deque<ClassLabel> recent_labels_;
    std::vector<std::size_t> label_counts_;

    bool has_baseline_ = false;
    double baseline_accuracy_ = 0.0;
    std::vector<double> baseline_dist_;
};

}  // namespace dfp::stream
