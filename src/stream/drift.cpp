#include "stream/drift.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"

namespace dfp::stream {

DriftDetector::DriftDetector(DriftDetectorConfig config, std::size_t num_classes)
    : config_(config),
      num_classes_(num_classes),
      label_counts_(num_classes, 0) {
    if (config_.window == 0) config_.window = 1;
}

void DriftDetector::ObservePrediction(bool correct) {
    recent_correct_.push_back(correct ? 1 : 0);
    correct_sum_ += correct ? 1 : 0;
    if (recent_correct_.size() > config_.window) {
        correct_sum_ -= recent_correct_.front();
        recent_correct_.pop_front();
    }
}

void DriftDetector::ObserveLabel(ClassLabel label) {
    recent_labels_.push_back(label);
    ++label_counts_[label];
    if (recent_labels_.size() > config_.window) {
        --label_counts_[recent_labels_.front()];
        recent_labels_.pop_front();
    }
}

void DriftDetector::SetBaseline(double accuracy,
                                std::vector<double> class_distribution) {
    baseline_accuracy_ = accuracy;
    baseline_dist_ = std::move(class_distribution);
    baseline_dist_.resize(num_classes_, 0.0);
    double total = 0.0;
    for (const double v : baseline_dist_) total += v;
    if (total > 0.0) {
        for (double& v : baseline_dist_) v /= total;
    }
    has_baseline_ = true;
}

void DriftDetector::ResetRecent() {
    recent_correct_.clear();
    correct_sum_ = 0;
    recent_labels_.clear();
    std::fill(label_counts_.begin(), label_counts_.end(), 0);
}

double DriftDetector::recent_accuracy() const {
    if (recent_correct_.empty()) return -1.0;
    return static_cast<double>(correct_sum_) /
           static_cast<double>(recent_correct_.size());
}

std::vector<double> DriftDetector::RecentClassDistribution() const {
    std::vector<double> dist(num_classes_, 0.0);
    if (recent_labels_.empty()) return dist;
    const double n = static_cast<double>(recent_labels_.size());
    for (std::size_t c = 0; c < num_classes_; ++c) {
        dist[c] = static_cast<double>(label_counts_[c]) / n;
    }
    return dist;
}

double DriftDetector::ClassShiftLocked() const {
    if (!has_baseline_ || recent_labels_.empty()) return 0.0;
    const std::vector<double> recent = RecentClassDistribution();
    double l1 = 0.0;
    for (std::size_t c = 0; c < num_classes_; ++c) {
        l1 += std::fabs(recent[c] - baseline_dist_[c]);
    }
    return 0.5 * l1;  // total-variation distance
}

DriftVerdict DriftDetector::Check() const {
    DriftVerdict verdict;
    verdict.recent_accuracy = recent_accuracy();
    verdict.class_shift = ClassShiftLocked();

    auto& registry = obs::Registry::Get();
    registry.GetGauge("dfp.stream.recent_accuracy")
        .Set(verdict.recent_accuracy);
    registry.GetGauge("dfp.stream.class_shift").Set(verdict.class_shift);

    if (!has_baseline_ || recent_labels_.size() < config_.min_observations) {
        return verdict;
    }
    if (config_.accuracy_drop >= 0.0 && verdict.recent_accuracy >= 0.0 &&
        recent_correct_.size() >= config_.min_observations &&
        verdict.recent_accuracy < baseline_accuracy_ - config_.accuracy_drop) {
        verdict.drifted = true;
        verdict.reason = "accuracy_drop";
        return verdict;
    }
    if (config_.class_shift >= 0.0 &&
        verdict.class_shift > config_.class_shift) {
        verdict.drifted = true;
        verdict.reason = "class_shift";
    }
    return verdict;
}

}  // namespace dfp::stream
