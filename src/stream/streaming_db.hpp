// Versioned, append-only streaming transaction store (DESIGN.md §16).
//
// The offline TransactionDatabase is immutable after build — the right shape
// for mining, the wrong shape for data that never stops arriving. The
// StreamingDatabase sits in front of it:
//
//  * Appends are batches of labelled transactions. Every transaction gets a
//    monotonically increasing sequence number and every append bumps the
//    store version, so consumers can name exactly which data a model was
//    trained on ("window ending at seq S, version V").
//  * Storage is a delta log: appended rows accumulate behind the last
//    compaction point while the compacted prefix holds older rows. When the
//    log grows past `compact_every` rows, compaction physically drops rows
//    that have left the window and folds the survivors into a fresh cached
//    TransactionDatabase — appends stay O(batch), memory stays O(window),
//    and the structure is append-only between compactions (ReplaySince can
//    hand back any still-retained suffix).
//  * The *window* is a bounded suffix: the most recent `window_capacity`
//    transactions. Append returns the rows it evicted so window-maintenance
//    structures (stream::WindowMiner) can stay in sync incrementally.
//  * SnapshotWindow() materializes the window as a regular
//    TransactionDatabase — the bridge back into the arena miners and the
//    training pipeline. The snapshot is cached and shared: repeated calls
//    between appends return the same immutable database for free.
//    SnapshotDecayed() is the decay-weighted view: row weights
//    0.5^(age/half_life) are quantized to integer multiplicities, so recent
//    rows count more without any change to the miners (see §16 for the
//    approximation bound).
//
// Thread-safe: appends and snapshots may race (internal mutex). The typical
// topology is one ingest thread appending while the ContinuousTrainer
// snapshots — neither blocks serving, which never touches this class.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.hpp"
#include "data/transaction_db.hpp"

namespace dfp::stream {

/// One ingest unit: parallel transaction/label arrays.
struct TransactionBatch {
    std::vector<std::vector<ItemId>> transactions;
    std::vector<ClassLabel> labels;

    std::size_t size() const { return labels.size(); }
    bool empty() const { return labels.empty(); }
};

struct StreamConfig {
    /// Fixed item universe / label arity — appends outside are rejected.
    std::size_t num_items = 0;
    std::size_t num_classes = 0;
    /// Sliding-window bound (transactions). Appends beyond it evict FIFO.
    std::size_t window_capacity = 4096;
    /// Delta-log rows between compactions; 0 = window_capacity.
    std::size_t compact_every = 0;
    /// Half-life of the decay-weighted view, in transactions of age; 0
    /// disables SnapshotDecayed(). The newest window row weighs 1.0, a row
    /// `a` transactions older weighs 0.5^(a / half_life).
    double decay_half_life = 0.0;
    /// Quantization steps for decayed multiplicities: a weight w becomes
    /// round(w * quantum) replicas (rows quantized to 0 drop out).
    std::uint32_t decay_quantum = 8;
};

/// What one Append did: the sequence range assigned and the rows evicted
/// from the window (FIFO order, canonicalized) for incremental maintenance.
struct AppendResult {
    std::uint64_t first_seq = 0;  ///< seq of the first appended transaction
    std::uint64_t version = 0;    ///< store version after this append
    TransactionBatch evicted;
};

class StreamingDatabase {
  public:
    /// Constructs with a trusted config (compact_every == 0 resolves to
    /// window_capacity). For untrusted configs, check ValidateConfig first
    /// or go through Create.
    explicit StreamingDatabase(StreamConfig config);
    StreamingDatabase(const StreamingDatabase&) = delete;
    StreamingDatabase& operator=(const StreamingDatabase&) = delete;

    /// num_items/num_classes/window_capacity must be > 0; decay knobs sane.
    static Status ValidateConfig(const StreamConfig& config);

    /// Checked construction for untrusted configs.
    static Result<std::unique_ptr<StreamingDatabase>> Create(StreamConfig config);

    /// Appends one batch. Transactions are canonicalized (sorted, item-level
    /// dedup); item ids and labels are validated against the config. On
    /// success the batch is durable in the log and the window advanced;
    /// eviction and compaction happen inside this call.
    Result<AppendResult> Append(TransactionBatch batch);

    /// The current window as an immutable TransactionDatabase (the input to
    /// re-mining and retraining). Cached: between appends, every caller
    /// shares one instance; after an append the next call rebuilds (O(window)).
    std::shared_ptr<const TransactionDatabase> SnapshotWindow() const;

    /// Decay-weighted view: each window row is replicated
    /// round(0.5^(age/half_life) * quantum) times (newest age = 0). Requires
    /// decay_half_life > 0. Supports measured on this snapshot approximate
    /// decayed supports to within the quantization step. Not cached.
    Result<TransactionDatabase> SnapshotDecayed() const;

    /// Copies out the window contents (tests, window-miner seeding).
    TransactionBatch WindowContents() const;

    /// Append-only replay: every retained transaction with seq >= `seq`, in
    /// sequence order. Fails (kOutOfRange) when `seq` predates the oldest
    /// retained row — it was compacted away.
    Result<TransactionBatch> ReplaySince(std::uint64_t seq) const;

    const StreamConfig& config() const { return config_; }

    std::uint64_t version() const;         ///< bumps once per Append
    std::uint64_t total_appended() const;  ///< transactions ever appended
    std::size_t window_size() const;
    std::uint64_t window_first_seq() const;  ///< seq of the oldest window row
    std::uint64_t compactions() const;
    /// Retained rows (window + not-yet-compacted evicted prefix).
    std::size_t retained_rows() const;

  private:
    struct Entry {
        std::vector<ItemId> items;
        ClassLabel label = 0;
    };

    std::size_t WindowSizeLocked() const;
    std::shared_ptr<const TransactionDatabase> BuildWindowLocked() const;
    void CompactLocked();
    void PublishGaugesLocked() const;

    StreamConfig config_;
    mutable std::mutex mu_;
    /// Retained rows in sequence order: entry k has seq retained_first_seq_+k.
    /// The prefix before window_begin_seq_ is the logically-evicted part of
    /// the delta log awaiting compaction.
    std::deque<Entry> rows_;
    std::uint64_t retained_first_seq_ = 0;  ///< seq of rows_.front()
    std::uint64_t next_seq_ = 0;
    std::uint64_t version_ = 0;
    std::uint64_t window_begin_seq_ = 0;  ///< first seq inside the window
    std::size_t delta_rows_ = 0;          ///< rows appended since compaction
    std::uint64_t compactions_ = 0;
    /// Cached window snapshot, valid while snapshot_version_ == version_.
    mutable std::shared_ptr<const TransactionDatabase> window_cache_;
    mutable std::uint64_t window_cache_version_ = ~std::uint64_t{0};
};

}  // namespace dfp::stream
